// Ablation: the security margin of the §4 knock melody.
//
// An attacker who knows the knock *ports* but not their order fires
// random knock packets; the FSM opens only on the exact sequence.  We
// measure the probability of accidental opening within a fixed number of
// knock attempts as the sequence lengthens — the out-of-band
// authentication analogue of password length.
#include <cstdio>
#include <vector>

#include "audio/audio.h"
#include "bench_util.h"
#include "mdn/music_fsm.h"

namespace {

using namespace mdn;

// Pure-FSM Monte Carlo: the audio path is already validated elsewhere;
// here the question is combinatorial.
double break_probability(std::size_t sequence_length, int attempts,
                         int trials, std::uint64_t seed) {
  // Knock sequence 0,1,2,...,n-1 over an alphabet of n symbols.
  std::vector<std::size_t> sequence(sequence_length);
  for (std::size_t i = 0; i < sequence_length; ++i) sequence[i] = i;

  audio::Rng rng(seed);
  int broken = 0;
  for (int t = 0; t < trials; ++t) {
    auto fsm = core::make_knock_fsm(sequence);
    bool open = false;
    fsm.on_enter(sequence_length, [&] { open = true; });
    for (int a = 0; a < attempts && !open; ++a) {
      fsm.feed(rng.below(sequence_length), 0);
    }
    if (open) ++broken;
  }
  return static_cast<double>(broken) / trials;
}

}  // namespace

int main() {
  bench::print_header("Ablation (§4 security)",
                      "probability a random-knock attacker opens the "
                      "port, vs sequence length");

  constexpr int kTrials = 2000;
  const std::vector<int> budgets{10, 100, 1000};
  std::printf("\n%10s", "length");
  for (int b : budgets) std::printf("  %8d knocks", b);
  std::printf("\n");

  double p3_100 = 0.0, p6_100 = 1.0;
  for (std::size_t len : {2u, 3u, 4u, 6u}) {
    std::printf("%10zu", len);
    for (int b : budgets) {
      const double p = break_probability(len, b, kTrials, 17 + len);
      if (len == 3 && b == 100) p3_100 = p;
      if (len == 6 && b == 100) p6_100 = p;
      std::printf("  %14.4f", p);
    }
    std::printf("\n");
  }

  bench::print_claim(
      "the paper's 3-knock melody resists casual probing but yields to "
      "a determined random attacker (~100 knocks)",
      p3_100 > 0.5);
  bench::print_claim(
      "lengthening the melody to 6 knocks restores a comfortable margin "
      "at the same attacker budget",
      p6_100 < 0.05);
  return 0;
}
