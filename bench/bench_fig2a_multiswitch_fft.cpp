// Fig 2a: "FFT of audio from 5 switches" — five switches play their plan
// frequencies simultaneously; the listener's FFT shows five disjoint,
// attributable peaks.
#include <cstdio>
#include <map>
#include <memory>

#include "audio/audio.h"
#include "bench_util.h"
#include "mdn/mdn.h"
#include "mp/mp.h"
#include "net/net.h"

int main() {
  using namespace mdn;
  constexpr double kSampleRate = 48000.0;
  bench::print_header("Figure 2a",
                      "FFT of audio captured while 5 switches play "
                      "simultaneously");

  net::EventLoop loop;
  audio::AcousticChannel channel(kSampleRate);
  // Mild machine-room ambience so the peaks sit on a realistic floor.
  channel.add_ambient(
      audio::generate_machine_room(10, 2.0, kSampleRate, 0.02, 1), true, 0.0);

  core::FrequencyPlan plan({.base_hz = 600.0, .spacing_hz = 20.0});
  std::vector<core::DeviceId> devices;
  std::vector<std::unique_ptr<mp::PiSpeakerBridge>> bridges;
  for (int i = 0; i < 5; ++i) {
    // Each switch gets a 10-symbol set; all five play symbol i (so peaks
    // are spread across the grid, as in the figure).
    devices.push_back(plan.add_device("zodiac-" + std::to_string(i), 10));
    const auto spk =
        channel.add_source("spk-" + std::to_string(i), 0.4 + 0.15 * i);
    bridges.push_back(
        std::make_unique<mp::PiSpeakerBridge>(loop, channel, spk, 0));
    mp::MpMessage msg;
    msg.frequency_hz = plan.frequency(devices.back(), i);
    msg.duration_s = 0.3;
    msg.intensity_db_spl = 80.0;
    bridges.back()->play(msg);
  }
  loop.run();

  core::ToneDetectorConfig cfg;
  cfg.sample_rate = kSampleRate;
  cfg.min_amplitude = 0.01;
  core::ToneDetector detector(cfg);
  const auto block = channel.render(0.1, 0.1);
  const auto tones = detector.detect(block.samples());

  std::printf("\n%14s %14s %-14s %s\n", "freq (Hz)", "amplitude", "device",
              "symbol");
  std::map<core::DeviceId, int> attributed;
  for (const auto& t : tones) {
    const auto hit = plan.identify(t.frequency_hz);
    if (hit) {
      ++attributed[hit->device];
      std::printf("%14.1f %14.4f %-14s %zu\n", t.frequency_hz, t.amplitude,
                  plan.device_name(hit->device).c_str(), hit->symbol);
    } else {
      std::printf("%14.1f %14.4f %-14s\n", t.frequency_hz, t.amplitude,
                  "(unattributed)");
    }
  }

  bench::print_claim(
      "five switches playing at once are individually identifiable "
      "from one FFT (5 attributed peaks)",
      attributed.size() == 5);
  return attributed.size() == 5 ? 0 : 1;
}
