// Fleet traffic: the TrafficGen workload engine driving §5 detection at
// fleet scale — ≥100 switches in acoustic rooms, ≥64K concurrent flows
// with Zipf skew and churn, scan overlays, and the obs::Scoreboard
// attributing detection precision/recall per (room mic, watched tone).
//
// Usage: bench_fleet_traffic [--smoke]
//   --smoke  small fleet for CI (seconds, same claims / kv key set)
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "mdn/mdn.h"
#include "net/net.h"
#include "obs/obs.h"

namespace {

using namespace mdn;

struct Params {
  std::size_t rooms = 8;
  std::size_t switches_per_room = 13;  // 104 switches
  std::size_t flows = 65536;
  double rate_pps = 50000.0;
  double duration_s = 4.0;
  double churn_fpm = 6000.0;
  std::size_t scan_count = 4;
  double scan_pps = 600.0;
  std::vector<double> skews = {0.0, 0.9, 1.26};
};

Params smoke_params() {
  Params p;
  p.rooms = 2;
  p.switches_per_room = 2;
  p.flows = 4096;
  p.rate_pps = 4000.0;
  p.duration_s = 2.5;
  p.churn_fpm = 1200.0;
  p.scan_count = 1;
  p.skews = {0.0, 1.26};
  return p;
}

struct RunResult {
  std::uint64_t trace_digest = 0;
  std::uint64_t packets = 0;
  std::uint64_t scan_packets = 0;
  std::uint64_t churn_events = 0;
  std::uint64_t batches = 0;
  std::uint64_t loop_events = 0;
  std::uint64_t emitted = 0;
  std::uint64_t detected = 0;
  std::uint64_t false_positives = 0;
  std::uint64_t hh_alerts = 0;
  std::uint64_t ps_alerts = 0;
  double recall = 0.0;
  double precision = 0.0;
  double latency_p50_ms = 0.0;
  double wall_s = 0.0;
  std::size_t switches = 0;
  std::size_t watched_cells = 0;
  std::string scoreboard;  ///< full render — the byte-identity artifact
  // Latency attribution over the run's journal (obs::LatencyProfiler).
  std::uint64_t attributed = 0;        ///< detections with a cause chain
  std::uint64_t capture_count = 0;
  std::uint64_t ring_wait_count = 0;
  double capture_p50_ms = 0.0;
  double capture_p99_ms = 0.0;
  double ring_wait_p99_ms = 0.0;
  std::string stage_prom;  ///< per-stage families — byte-identity artifact
  // Registry time series sampled at a fixed sim cadence (obs::Timeline).
  double timeline_packets_delta = 0.0;
  std::string timeline_jsonl;
};

RunResult run_fleet(const Params& p, double skew, double churn_fpm) {
  obs::Journal::global().enable(1u << 18);
  obs::Journal::global().clear();

  net::EventLoop loop;
  core::FleetConfig fcfg;
  fcfg.rooms = p.rooms;
  fcfg.switches_per_room = p.switches_per_room;
  // Tone trains are rate-policed per emitter; the heavy-hitter window
  // threshold is set so a Zipf-dominant bin's tone share crosses it and
  // a uniform bin's share cannot.
  fcfg.emitter_min_gap = 50 * net::kMillisecond;
  fcfg.hh.window_s = 2.0;
  fcfg.hh.threshold = 6;
  core::Fleet fleet(loop, fcfg);

  net::TrafficGenConfig tcfg;
  tcfg.population.total_flows = p.flows;
  tcfg.population.zipf_skew = skew;
  tcfg.rate_pps = p.rate_pps;
  tcfg.churn_fpm = churn_fpm;
  tcfg.stop = net::from_seconds(p.duration_s);
  tcfg.seed = 42;
  tcfg.scan_count = p.scan_count;
  tcfg.scan_pps = p.scan_pps;
  net::TrafficGen gen(loop, tcfg);
  for (std::size_t s = 0; s < fleet.switch_count(); ++s) {
    gen.add_target(fleet.switch_at(s));
  }

  fleet.start();
  gen.start();
  // Keep listening a few blocks past the last packet so in-flight tones
  // (bridge processing delay + tone length) are heard.
  fleet.stop_at(net::from_seconds(p.duration_s + 0.15));

  // Sample the workload instruments on a fixed sim-time grid: the
  // series (and its derived packet delta) must replay byte-identically
  // with the trace.
  obs::Timeline timeline({.capacity = 64});
  timeline.track_counter(obs::Registry::global(), "net/trafficgen/packets");
  timeline.track_counter(obs::Registry::global(),
                         "net/trafficgen/churn_events");
  timeline.track_gauge(obs::Registry::global(), "net/trafficgen/flows_live");
  const net::SimTime sample_end = net::from_seconds(p.duration_s + 0.15);
  loop.schedule_periodic(100 * net::kMillisecond, 100 * net::kMillisecond,
                         [&loop, &timeline, sample_end] {
                           timeline.sample(loop.now());
                           // Stop with the fleet so the loop can drain.
                           return loop.now() < sample_end;
                         });

  const std::uint64_t dispatched_before =
      obs::Registry::global().counter("net/loop/events_dispatched").value();
  const auto t0 = std::chrono::steady_clock::now();
  loop.run();
  const double wall_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();

  obs::ScoreboardConfig scfg;
  scfg.watch_hz = fleet.watch_hz();
  scfg.tolerance_hz = 10.0;
  scfg.mics = fleet.room_count();
  const auto board = obs::Scoreboard::build(obs::Journal::global(), scfg);
  const auto g = board.grand_totals();

  // Attribute every detection's cause chain to pipeline stages; on the
  // inline controller path a tagged detection decomposes into capture
  // (tone start -> block end) plus a zero-width ring wait.
  obs::LatencyProfiler profiler(obs::Journal::global());
  profiler.profile(obs::JournalKind::kToneDetected);
  const auto capture = profiler.stage_stats(obs::LatencyStage::kCapture);
  const auto ring_wait = profiler.stage_stats(obs::LatencyStage::kRingWait);

  RunResult r;
  r.trace_digest = gen.trace_digest();
  r.packets = gen.packets();
  r.scan_packets = gen.scan_packets();
  r.churn_events = gen.churn_events();
  r.batches = gen.batches();
  r.loop_events =
      obs::Registry::global().counter("net/loop/events_dispatched").value() -
      dispatched_before;
  r.emitted = g.emitted;
  r.detected = g.detected;
  r.false_positives = g.false_positives;
  r.hh_alerts = fleet.hh_alert_count();
  r.ps_alerts = fleet.ps_alert_count();
  r.recall = g.recall();
  r.precision = g.precision();
  r.latency_p50_ms = g.latency_quantile(0.5) * 1e3;
  r.wall_s = wall_s;
  r.switches = fleet.switch_count();
  r.watched_cells = fleet.watched_tone_count();
  r.scoreboard = board.render();
  r.attributed = profiler.actions_profiled();
  r.capture_count = capture.count;
  r.ring_wait_count = ring_wait.count;
  r.capture_p50_ms = capture.p50_ns / 1e6;
  r.capture_p99_ms = capture.p99_ns / 1e6;
  r.ring_wait_p99_ms = ring_wait.p99_ns / 1e6;
  r.stage_prom = profiler.to_prometheus();
  r.timeline_packets_delta = timeline.rollup(0).delta;
  r.timeline_jsonl = timeline.to_timeline_jsonl();
  return r;
}

std::string key(const char* what, double skew, double churn) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%s s=%.2f c=%.0f", what, skew, churn);
  return buf;
}

int usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s [--smoke]\n"
               "  --smoke  small fleet for CI (same claims / kv key set)\n",
               prog);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
      continue;
    }
    std::fprintf(stderr, "bench_fleet_traffic: unknown argument '%s'\n",
                 argv[i]);
    return usage(argv[0]);
  }
  const Params p = smoke ? smoke_params() : Params{};

  bench::print_header(
      "Fleet traffic",
      "TrafficGen workload engine (Zipf + churn) driving heavy-hitter and "
      "port-scan detection across acoustic rooms");
  bench::print_kv("switches", static_cast<double>(
                                  p.rooms * p.switches_per_room));
  bench::print_kv("concurrent flows", static_cast<double>(p.flows));
  bench::print_kv("aggregate rate", p.rate_pps, "pps");
  bench::print_kv("churn", p.churn_fpm, "flows/min");

  // Sweep skew × churn; precision/recall lands in one table.
  std::vector<std::vector<double>> rows;
  RunResult uniform_quiet, zipf_quiet, zipf_churn;
  double total_packets = 0.0, total_loop_events = 0.0, total_wall = 0.0;
  for (double skew : p.skews) {
    for (double churn : {0.0, p.churn_fpm}) {
      const RunResult r = run_fleet(p, skew, churn);
      rows.push_back({skew, churn, static_cast<double>(r.packets),
                      r.recall, r.precision,
                      static_cast<double>(r.false_positives),
                      r.latency_p50_ms, static_cast<double>(r.hh_alerts),
                      static_cast<double>(r.ps_alerts)});
      bench::print_kv(key("recall", skew, churn), r.recall);
      bench::print_kv(key("precision", skew, churn), r.precision);
      if (skew == 0.0 && churn == 0.0) uniform_quiet = r;
      if (skew == p.skews.back() && churn == 0.0) zipf_quiet = r;
      if (skew == p.skews.back() && churn == p.churn_fpm) zipf_churn = r;
      total_packets += static_cast<double>(r.packets);
      total_loop_events += static_cast<double>(r.loop_events);
      total_wall += r.wall_s;
    }
  }
  bench::print_series(
      "scoreboard precision/recall vs zipf skew and churn",
      {"skew", "churn_fpm", "packets", "recall", "precision", "fp",
       "p50_ms", "hh_alerts", "ps_alerts"},
      rows, "%14.3f");

  // Determinism: replay the highest-skew churning config with the same
  // seed; the flow trace digest and the full scoreboard render must be
  // byte-identical.
  const RunResult replay =
      run_fleet(p, p.skews.back(), p.churn_fpm);
  const bool deterministic =
      replay.trace_digest == zipf_churn.trace_digest &&
      replay.scoreboard == zipf_churn.scoreboard &&
      replay.packets == zipf_churn.packets;
  // The derived observability artifacts must replay too: per-stage
  // latency families are a pure function of the sim-time schedule, and
  // the timeline's windowed packet delta must match even though the
  // process-wide trafficgen counters keep absolute values across runs.
  const bool obs_deterministic =
      replay.stage_prom == zipf_churn.stage_prom &&
      replay.timeline_packets_delta == zipf_churn.timeline_packets_delta;

  bench::print_kv("packets_total", total_packets);
  bench::print_kv("watched_tone_cells",
                  static_cast<double>(zipf_churn.watched_cells));
  bench::print_kv("emitted (zipf+churn)",
                  static_cast<double>(zipf_churn.emitted));
  bench::print_kv("detected (zipf+churn)",
                  static_cast<double>(zipf_churn.detected));
  bench::print_kv("attributed detections (zipf+churn)",
                  static_cast<double>(zipf_churn.attributed));
  bench::print_kv("stage capture p50 (zipf+churn)",
                  zipf_churn.capture_p50_ms, "ms");
  bench::print_kv("stage capture p99 (zipf+churn)",
                  zipf_churn.capture_p99_ms, "ms");
  bench::print_kv("stage ring_wait p99 (zipf+churn)",
                  zipf_churn.ring_wait_p99_ms, "ms");
  bench::print_kv("timeline packet delta (zipf+churn)",
                  zipf_churn.timeline_packets_delta);
  bench::events_per_sec("packet", total_packets, total_wall);
  bench::events_per_sec("loop", total_loop_events, total_wall);

  const double expected =
      p.rate_pps * p.duration_s * static_cast<double>(p.skews.size()) * 2.0;
  const bool load_ok = total_packets >= 0.9 * expected;
  const bool heard = zipf_churn.recall > 0.2 && zipf_churn.detected > 0;
  const bool hh_separates = zipf_quiet.hh_alerts > uniform_quiet.hh_alerts;
  const bool scans_seen = zipf_churn.ps_alerts >= 1;
  // Every attributed detection carries exactly one capture hop and one
  // ring-wait hop (the inline path's chain is emitted->ingested->
  // detected), and capture — the whole tone-to-block-end span — must
  // agree with the scoreboard's end-to-end latency.  The two histograms
  // bucket in different units, so compare quantiles with slack.
  const bool stages_cover =
      zipf_churn.attributed > 0 &&
      zipf_churn.capture_count == zipf_churn.attributed &&
      zipf_churn.ring_wait_count == zipf_churn.attributed;
  const bool stages_match_scoreboard =
      zipf_churn.latency_p50_ms > 0.0 &&
      std::abs(zipf_churn.capture_p50_ms - zipf_churn.latency_p50_ms) <=
          0.35 * zipf_churn.latency_p50_ms;

  bench::print_claim(
      "traffic engine delivered the configured aggregate packet load",
      load_ok);
  bench::print_claim(
      "same seed reproduces a byte-identical flow trace and scoreboard",
      deterministic);
  bench::print_claim(
      "zipf skew raises heavy-hitter alerts over the uniform workload",
      hh_separates);
  bench::print_claim("port scans detected at the targeted switches",
                     scans_seen);
  bench::print_claim(
      "fleet microphones hear the tone workload (recall above floor)",
      heard);
  bench::print_claim(
      "latency attribution decomposes every tagged detection into "
      "capture + ring-wait stages",
      stages_cover);
  bench::print_claim(
      "capture-stage p50 agrees with the scoreboard's end-to-end latency",
      stages_match_scoreboard);
  bench::print_claim(
      "stage histograms and timeline packet delta replay deterministically",
      obs_deterministic);
  if (!smoke) {
    bench::print_claim(
        "fleet scale: >=100 switches, >=64K flows, >=1000 watched cells",
        zipf_churn.switches >= 100 && p.flows >= 65536 &&
            zipf_churn.watched_cells >= 1000);
  }

  // The sampled time series from the gated zipf+churn run rides along
  // as a CI artifact (fleet_traffic.timeline.jsonl, next to the report).
  if (obs::write_file("fleet_traffic.timeline.jsonl",
                      zipf_churn.timeline_jsonl)) {
    std::printf("wrote fleet_traffic.timeline.jsonl\n");
  }

  const bool ok = load_ok && deterministic && hh_separates && scans_seen &&
                  heard && stages_cover && stages_match_scoreboard &&
                  obs_deterministic;
  return ok ? 0 : 1;
}
