// Ablation: goodput of the melody codec vs symbol timing, checked
// against the §2 data point that air-acoustic transfer takes "up to six
// seconds to send a 20 bytes packet over a single hop".
#include <cstdio>
#include <vector>

#include "audio/audio.h"
#include "bench_util.h"
#include "mdn/mdn.h"
#include "mp/mp.h"
#include "net/net.h"

namespace {

using namespace mdn;
constexpr double kSampleRate = 48000.0;

struct Result {
  double airtime_s = 0.0;
  double goodput_bps = 0.0;  // payload bits per second
  bool delivered = false;
};

Result run(double tone_s, double gap_s, std::size_t payload_bytes) {
  net::EventLoop loop;
  audio::AcousticChannel channel(kSampleRate);
  audio::Rng rng(3);
  channel.add_ambient(
      audio::make_pink_noise(1.0, 0.003, kSampleRate, rng), true, 0.0);

  core::FrequencyPlan plan({.base_hz = 1000.0, .spacing_hz = 20.0});
  const auto dev = plan.add_device("s1", core::kMelodyAlphabetSize);
  const auto spk = channel.add_source("pi", 0.5);
  mp::PiSpeakerBridge bridge(loop, channel, spk, 0);
  mp::MpEmitter emitter(loop, bridge, 0);

  core::MdnController::Config ccfg;
  ccfg.detector.sample_rate = kSampleRate;
  core::MdnController controller(loop, channel, ccfg);

  core::MelodyCodecConfig cfg;
  cfg.tone_duration_s = tone_s;
  cfg.gap_s = gap_s;
  cfg.max_payload = 128;
  core::MelodyEncoder encoder(loop, emitter, plan, dev, cfg);
  core::MelodyDecoder decoder(controller, plan, dev, cfg);
  controller.start();

  std::vector<std::uint8_t> payload(payload_bytes);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 7 + 1);
  }
  Result r;
  r.airtime_s = encoder.send(payload);
  loop.schedule_at(net::from_seconds(r.airtime_s + 0.5),
                   [&] { controller.stop(); });
  loop.run();

  r.delivered =
      decoder.frames_ok() == 1 && decoder.messages().front() == payload;
  r.goodput_bps =
      r.delivered ? static_cast<double>(payload_bytes * 8) / r.airtime_s
                  : 0.0;
  return r;
}

}  // namespace

int main() {
  bench::print_header("Ablation (§2 context)",
                      "melody-codec goodput vs symbol timing, 20-byte "
                      "payload");

  struct Timing {
    double tone_s;
    double gap_s;
  };
  const std::vector<Timing> timings{
      {0.03, 0.12}, {0.06, 0.12}, {0.06, 0.20}, {0.10, 0.15}, {0.10, 0.30}};

  std::printf("\n%12s %12s %14s %14s %12s\n", "tone (ms)", "gap (ms)",
              "airtime (s)", "goodput (bps)", "delivered");
  double default_airtime = 0.0;
  bool default_ok = false;
  for (const auto& t : timings) {
    const Result r = run(t.tone_s, t.gap_s, 20);
    std::printf("%12.0f %12.0f %14.2f %14.1f %12s\n", t.tone_s * 1e3,
                t.gap_s * 1e3, r.airtime_s, r.goodput_bps,
                r.delivered ? "yes" : "NO");
    if (t.tone_s == 0.06 && t.gap_s == 0.12) {
      default_airtime = r.airtime_s;
      default_ok = r.delivered;
    }
  }

  bench::print_claim(
      "a 20-byte payload takes single-digit seconds over one acoustic "
      "hop (the related-work regime: 'up to six seconds')",
      default_ok && default_airtime > 2.0 && default_airtime < 10.0);
  return 0;
}
