// Ablation for the §3 finding "a distance of approximately 20 Hz between
// frequencies is needed to accurately differentiate them".
//
// Two tones play simultaneously at a candidate spacing; the detector
// must report two distinct peaks at the right frequencies.  The sweep
// runs at several analysis-window lengths: resolvability is a property
// of spacing x window, and ~20 Hz is achievable with windows of a few
// hundred milliseconds — the regime the paper's listener operates in.
#include <cstdio>
#include <vector>

#include "audio/audio.h"
#include "bench_util.h"
#include "dsp/fft.h"
#include "mdn/tone_detector.h"

namespace {

using namespace mdn;
constexpr double kSampleRate = 48000.0;

// Fraction of trials (over random base frequencies) in which both tones
// are resolved within 6 Hz.
double resolution_rate(double spacing_hz, std::size_t window_samples) {
  audio::Rng rng(1234);
  const double window_s =
      static_cast<double>(window_samples) / kSampleRate;
  int resolved = 0;
  constexpr int kTrials = 20;
  for (int t = 0; t < kTrials; ++t) {
    const double f0 = rng.uniform(600.0, 4000.0);
    audio::ToneSpec a;
    a.frequency_hz = f0;
    a.amplitude = 0.1;
    a.duration_s = window_s;
    audio::ToneSpec b = a;
    b.frequency_hz = f0 + spacing_hz;
    b.phase_rad = rng.uniform(0.0, 6.28);
    audio::Waveform mix = audio::make_tone(a, kSampleRate);
    mix.mix_at(audio::make_tone(b, kSampleRate), 0);
    mix.mix_at(audio::make_white_noise(window_s, 0.005, kSampleRate, rng),
               0);

    core::ToneDetectorConfig cfg;
    cfg.sample_rate = kSampleRate;
    cfg.fft_size = std::max<std::size_t>(
        8192, dsp::next_power_of_two(window_samples));
    cfg.window = dsp::WindowKind::kHann;  // narrower main lobe than
                                          // Blackman: resolution study
    cfg.min_amplitude = 0.03;
    core::ToneDetector det(cfg);
    const auto tones = det.detect(mix.samples());

    // Two *distinct* peaks are required: with tiny spacings the tones
    // merge into one lobe that would otherwise match both targets.
    int idx_a = -1, idx_b = -1;
    for (std::size_t p = 0; p < tones.size(); ++p) {
      if (std::abs(tones[p].frequency_hz - f0) < 6.0) {
        idx_a = static_cast<int>(p);
      }
      if (std::abs(tones[p].frequency_hz - (f0 + spacing_hz)) < 6.0) {
        idx_b = static_cast<int>(p);
      }
    }
    if (idx_a >= 0 && idx_b >= 0 && idx_a != idx_b) ++resolved;
  }
  return static_cast<double>(resolved) / kTrials;
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation (§3)",
      "minimum frequency spacing for simultaneous tones vs analysis "
      "window");

  const std::vector<double> spacings{5.0, 10.0, 15.0, 20.0, 30.0, 50.0,
                                     100.0};
  const std::vector<std::size_t> windows{2400, 4800, 9600, 16384, 32768};

  std::printf("\n%14s", "spacing (Hz)");
  for (auto w : windows) {
    std::printf("   %6.0f ms  ",
                1000.0 * static_cast<double>(w) / kSampleRate);
  }
  std::printf("\n");
  double rate_20hz_long = 0.0;
  double rate_20hz_50ms = 0.0;
  for (double s : spacings) {
    std::printf("%14.0f", s);
    for (auto w : windows) {
      const double r = resolution_rate(s, w);
      if (s == 20.0 && w == 32768) rate_20hz_long = r;
      if (s == 20.0 && w == 2400) rate_20hz_50ms = r;
      std::printf("   %8.2f   ", r);
    }
    std::printf("\n");
  }

  bench::print_claim(
      "20 Hz spacing is reliably resolvable with a long enough window "
      "(the paper's finding)",
      rate_20hz_long >= 0.9);
  bench::print_claim(
      "20 Hz spacing is NOT resolvable inside a single 50 ms block "
      "(physics: main lobe wider than the gap)",
      rate_20hz_50ms <= 0.2);
  return 0;
}
