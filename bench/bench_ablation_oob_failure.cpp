// The §1 motivation experiment: "data plane or hardware failures could
// cut off network management traffic as well".
//
// A bottleneck queue congests while the in-band OpenFlow session to the
// switch is down (the management network shares the failed fabric).  An
// in-band polling monitor goes blind; the Music-Defined listener — whose
// channel is air, not the fabric — still hears the congested tone.
#include <cstdio>
#include <string>

#include "audio/audio.h"
#include "bench_util.h"
#include "mdn/mdn.h"
#include "mp/mp.h"
#include "net/net.h"
#include "sdn/sdn.h"

namespace {

using namespace mdn;
constexpr double kSampleRate = 48000.0;

struct Outcome {
  bool inband_saw = false;
  double inband_at_s = -1.0;
  bool mdn_saw = false;
  double mdn_at_s = -1.0;
  std::uint64_t failed_polls = 0;
};

Outcome run(bool management_failure) {
  net::Network net;
  audio::AcousticChannel channel(kSampleRate);
  core::FrequencyPlan plan({.base_hz = 500.0, .spacing_hz = 100.0});

  auto& sw = net.add_switch("s1");
  auto& h1 = net.add_host("h1", net::make_ipv4(10, 0, 0, 1));
  auto& h2 = net.add_host("h2", net::make_ipv4(10, 0, 0, 2));
  net::LinkSpec fast;
  fast.rate_bps = 1e9;
  net::LinkSpec slow;
  slow.rate_bps = 8e6;
  slow.queue_capacity = 300;
  net.connect(h1, sw, fast);
  const std::size_t out = net.connect(h2, sw, slow);
  net::FlowEntry fwd;
  fwd.priority = 1;
  fwd.actions = {net::Action::output(out)};
  sw.flow_table().add(fwd, 0);

  sdn::Controller null_controller;
  sdn::ControlChannel sdn_channel(net.loop(), net::kMillisecond);
  const auto dpid = sdn_channel.attach(sw, null_controller);

  // In-band baseline: poll the queue over the OpenFlow session.
  sdn::PollingQueueMonitor poller(sdn_channel, dpid, out, 75);
  poller.start();

  // Out-of-band MDN: the switch sings its queue band.
  const auto spk = channel.add_source("s1-speaker", 0.5);
  mp::PiSpeakerBridge bridge(net.loop(), channel, spk, 0);
  mp::MpEmitter emitter(net.loop(), bridge, 0);
  core::MdnController::Config ccfg;
  ccfg.detector.sample_rate = kSampleRate;
  core::MdnController controller(net.loop(), channel, ccfg);
  const auto dev = plan.add_device("s1", 3);
  core::QueueToneConfig qcfg;
  qcfg.port_index = out;
  core::QueueToneReporter reporter(sw, emitter, plan, dev, qcfg);

  Outcome o;
  controller.watch(plan.frequency(dev, 2), [&](const core::ToneEvent& ev) {
    if (!o.mdn_saw) {
      o.mdn_saw = true;
      o.mdn_at_s = ev.time_s;
    }
  });
  reporter.start();
  controller.start();

  // Management failure strikes before congestion builds.
  if (management_failure) {
    net.loop().schedule_at(net::from_seconds(0.5), [&] {
      sdn_channel.set_session_up(dpid, false);
    });
  }

  // Offered load 1.5x the bottleneck from t=1 s.
  net::SourceConfig scfg;
  scfg.flow = {h1.ip(), h2.ip(), 40000, 80, net::IpProto::kTcp};
  scfg.start = net::kSecond;
  scfg.stop = net::from_seconds(4.0);
  net::CbrSource source(h1, scfg, 1500.0);
  source.start();

  net.loop().schedule_at(net::from_seconds(5.0), [&] {
    controller.stop();
    reporter.stop();
    poller.stop();
  });
  net.loop().run();

  o.inband_saw = poller.congestion_seen();
  o.inband_at_s = poller.congestion_seen_at_s();
  o.failed_polls = poller.failed_polls();
  return o;
}

void report(const std::string& label, const Outcome& o) {
  std::printf("\n-- %s --\n", label.c_str());
  bench::print_kv("in-band poller saw congestion",
                  o.inband_saw ? 1.0 : 0.0, "");
  bench::print_kv("in-band detection time", o.inband_at_s, "s");
  bench::print_kv("in-band failed polls",
                  static_cast<double>(o.failed_polls), "");
  bench::print_kv("MDN listener heard congested tone",
                  o.mdn_saw ? 1.0 : 0.0, "");
  bench::print_kv("MDN detection time", o.mdn_at_s, "s");
}

}  // namespace

int main() {
  bench::print_header("Ablation (§1 motivation)",
                      "in-band vs music-defined congestion visibility "
                      "under a management-path failure");

  const Outcome healthy = run(false);
  report("healthy management network", healthy);
  const Outcome failed = run(true);
  report("management session down (in-band cut off)", failed);

  bench::print_claim(
      "with a healthy fabric, both in-band polling and MDN see the "
      "congestion",
      healthy.inband_saw && healthy.mdn_saw);
  bench::print_claim(
      "after the management-path failure only MDN still sees it — the "
      "paper's case for sound as an out-of-band channel",
      !failed.inband_saw && failed.mdn_saw && failed.failed_polls > 0);
  return (!failed.inband_saw && failed.mdn_saw) ? 0 : 1;
}
