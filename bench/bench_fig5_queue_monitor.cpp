// Fig 5c-d: queue-size monitoring.  A burst fills the bottleneck queue;
// the switch plays 500/600/700 Hz depending on occupancy (<25, 25-75,
// >75 packets); after the traffic ends the queue drains and the 500 Hz
// tone returns.
#include <cstdio>

#include "audio/audio.h"
#include "bench_util.h"
#include "mdn/mdn.h"
#include "mp/mp.h"
#include "net/net.h"

int main() {
  using namespace mdn;
  constexpr double kSampleRate = 48000.0;
  bench::print_header("Figure 5c-d",
                      "Queue monitoring: queue length and the 500/600/"
                      "700 Hz band tones");

  net::Network net;
  audio::AcousticChannel channel(kSampleRate);
  // Paper's exact tone values: 500, 600, 700 Hz.
  core::FrequencyPlan plan({.base_hz = 500.0, .spacing_hz = 100.0});

  auto& sw = net.add_switch("s1");
  auto& h1 = net.add_host("h1", net::make_ipv4(10, 0, 0, 1));
  auto& h2 = net.add_host("h2", net::make_ipv4(10, 0, 0, 2));
  net::LinkSpec fast;
  fast.rate_bps = 1e9;
  net::LinkSpec slow;
  slow.rate_bps = 8e6;  // 1000 pps bottleneck
  slow.queue_capacity = 200;
  net.connect(h1, sw, fast);
  const std::size_t out = net.connect(h2, sw, slow);
  net::FlowEntry fwd;
  fwd.priority = 1;
  fwd.actions = {net::Action::output(out)};
  sw.flow_table().add(fwd, 0);

  const auto spk = channel.add_source("s1-speaker", 0.5);
  mp::PiSpeakerBridge bridge(net.loop(), channel, spk, 0);
  mp::MpEmitter emitter(net.loop(), bridge, 0);

  core::MdnController::Config ccfg;
  ccfg.detector.sample_rate = kSampleRate;
  core::MdnController controller(net.loop(), channel, ccfg);

  const auto dev = plan.add_device("s1", 3);
  core::QueueToneConfig qcfg;
  qcfg.port_index = out;
  core::QueueToneReporter reporter(sw, emitter, plan, dev, qcfg);
  core::QueueMonitorApp monitor(controller, plan, dev);

  reporter.start();
  controller.start();

  // Burst at +100 pkts/s over the bottleneck for 2 s, then drain.
  net::SourceConfig scfg;
  scfg.flow = {h1.ip(), h2.ip(), 40000, 80, net::IpProto::kTcp};
  scfg.start = 300 * net::kMillisecond;
  scfg.stop = net::from_seconds(2.3);
  net::CbrSource burst(h1, scfg, 1100.0);
  burst.start();

  net.loop().schedule_at(net::from_seconds(5.0), [&] {
    controller.stop();
    reporter.stop();
  });
  net.loop().run();

  // Fig 5c: queue samples.
  std::vector<std::vector<double>> rows;
  for (const auto& s : reporter.samples()) {
    rows.push_back({s.time_s, static_cast<double>(s.backlog),
                    reporter.frequency_for_band(s.band)});
  }
  bench::print_series("Fig 5c: queue length (sampled every 300 ms)",
                      {"t (s)", "queue (pkts)", "tone (Hz)"}, rows,
                      "%14.1f");

  // Fig 5d: band tones the controller heard.
  std::vector<std::vector<double>> tone_rows;
  for (const auto& ev : monitor.events()) {
    tone_rows.push_back({ev.time_s, static_cast<double>(ev.band),
                         ev.frequency_hz});
  }
  bench::print_series("Fig 5d: band tones heard by the controller",
                      {"t (s)", "band", "freq (Hz)"}, tone_rows, "%14.1f");

  bool saw0 = false, saw1 = false, saw2 = false;
  for (const auto& ev : monitor.events()) {
    saw0 |= ev.band == 0;
    saw1 |= ev.band == 1;
    saw2 |= ev.band == 2;
  }
  const bool ends_low =
      !monitor.events().empty() && monitor.events().back().band == 0;
  bench::print_claim("all three queue bands audible as the queue fills",
                     saw0 && saw1 && saw2);
  bench::print_claim(
      "after the burst the controller hears 500 Hz again (queue drained)",
      ends_low);
  return (saw0 && saw1 && saw2 && ends_low) ? 0 : 1;
}
