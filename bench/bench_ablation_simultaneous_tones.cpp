// Ablation for the §5 claim: "With our inexpensive testbed hardware
// alone, we could distinguish up to 1000 distinct frequencies played
// simultaneously only considering the human-hearable frequency range."
//
// N tones on the 20 Hz plan grid play at once; we measure the fraction
// the detector identifies.  A long analysis window (0.7 s) stands in for
// the paper's offline measurement of a sustained chord.
#include <cstdio>
#include <set>
#include <vector>

#include "audio/audio.h"
#include "bench_util.h"
#include "mdn/frequency_plan.h"
#include "mdn/tone_detector.h"

namespace {

using namespace mdn;
constexpr double kSampleRate = 48000.0;

double identification_rate(std::size_t n_tones) {
  core::FrequencyPlan plan(
      {.base_hz = 500.0, .spacing_hz = 20.0, .max_hz = 20500.0});
  const auto dev = plan.add_device("orchestra", n_tones);

  const std::size_t window = 32768;  // ~0.68 s
  const double dur = static_cast<double>(window) / kSampleRate;
  audio::Waveform mix(kSampleRate, window);
  audio::Rng rng(42);
  for (std::size_t i = 0; i < n_tones; ++i) {
    audio::ToneSpec spec;
    spec.frequency_hz = plan.frequency(dev, i);
    spec.amplitude = 0.02;  // keep the sum well below clipping
    spec.duration_s = dur;
    spec.phase_rad = rng.uniform(0.0, 6.28);
    mix.mix_at(audio::make_tone(spec, kSampleRate), 0);
  }

  core::ToneDetectorConfig cfg;
  cfg.sample_rate = kSampleRate;
  cfg.fft_size = window;
  cfg.window = dsp::WindowKind::kHann;
  cfg.min_amplitude = 0.01;
  cfg.match_tolerance_hz = 8.0;
  core::ToneDetector det(cfg);
  const auto tones = det.detect(mix.samples());

  std::set<std::size_t> identified;
  for (const auto& t : tones) {
    const auto hit = plan.identify(t.frequency_hz, 8.0);
    if (hit && hit->device == dev) identified.insert(hit->symbol);
  }
  return static_cast<double>(identified.size()) /
         static_cast<double>(n_tones);
}

}  // namespace

int main() {
  bench::print_header("Ablation (§5)",
                      "fraction of N simultaneous plan tones correctly "
                      "identified");

  const std::vector<std::size_t> counts{10, 50, 100, 250, 500, 750, 1000};
  std::printf("\n%16s %16s\n", "tones", "identified");
  double rate_1000 = 0.0;
  for (std::size_t n : counts) {
    const double r = identification_rate(n);
    if (n == 1000) rate_1000 = r;
    std::printf("%16zu %16.3f\n", n, r);
  }

  bench::print_claim(
      "~1000 simultaneous frequencies distinguishable in the audible band",
      rate_1000 >= 0.95);
  return 0;
}
