// Shared output helpers for the figure-reproduction benches.
//
// Every bench prints (a) a header identifying the paper figure it
// regenerates, (b) the data series behind that figure as aligned columns
// (ready to plot), and (c) a PASS/FAIL style summary of the qualitative
// claim the paper makes about the figure.
//
// In addition, everything printed through these helpers is accumulated
// into a JSON report that is written on exit as "<figure>.bench.json"
// (override the path with MDN_BENCH_JSON=<path>, or disable with
// MDN_BENCH_JSON=0).  The report always carries the obs registry under
// the stable "metrics" key, so every BENCH run ships its per-stage
// counter/histogram breakdown and perf-trajectory tooling can diff runs.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "obs/obs.h"

namespace mdn::bench {

namespace detail {

struct Claim {
  std::string text;
  bool held = false;
  /// Worker/thread count the claim was measured at; -1 when the claim
  /// has no thread dimension (the default for single-threaded benches).
  int threads = -1;
};

struct Report {
  std::string name;  // sanitized first header, e.g. "figure_2b"
  std::vector<std::pair<std::string, double>> kv;
  std::vector<Claim> claims;
  bool written = false;
};

inline Report& report() {
  static Report r;
  return r;
}

inline std::string sanitize(const std::string& s) {
  std::string out;
  for (char c : s) {
    if ((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9')) {
      out += c;
    } else if (c >= 'A' && c <= 'Z') {
      out += static_cast<char>(c - 'A' + 'a');
    } else if (!out.empty() && out.back() != '_') {
      out += '_';
    }
  }
  while (!out.empty() && out.back() == '_') out.pop_back();
  return out;
}

}  // namespace detail

/// Serialises the accumulated report (plus the global metrics registry
/// under "metrics") to `path`.  Never throws; returns false on I/O error.
inline bool write_json(const std::string& path) {
  detail::Report& r = detail::report();
  std::string out = "{\"bench\":\"" + obs::json_escape(r.name) + "\",";
  out += "\"claims\":[";
  for (std::size_t i = 0; i < r.claims.size(); ++i) {
    if (i > 0) out += ',';
    out += "{\"claim\":\"" + obs::json_escape(r.claims[i].text) +
           "\",\"reproduced\":" + (r.claims[i].held ? "true" : "false");
    if (r.claims[i].threads >= 0) {
      out += ",\"threads\":" + std::to_string(r.claims[i].threads);
    }
    out += "}";
  }
  out += "],\"kv\":{";
  for (std::size_t i = 0; i < r.kv.size(); ++i) {
    if (i > 0) out += ',';
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9g", r.kv[i].second);
    out += "\"" + obs::json_escape(r.kv[i].first) + "\":" + buf;
  }
  // The stable key downstream tooling diffs: the whole obs registry.
  out += "},\"metrics\":" + obs::to_json(obs::Registry::global().snapshot());
  out += "}\n";
  r.written = true;
  return obs::write_file(path, out);
}

namespace detail {

inline void write_json_at_exit() {
  Report& r = report();
  if (r.written || r.name.empty()) return;
  const char* env = std::getenv("MDN_BENCH_JSON");
  std::string path = env != nullptr ? env : r.name + ".bench.json";
  if (path.empty() || path == "0" || path == "off") return;
  write_json(path);
}

}  // namespace detail

inline void print_header(const std::string& figure,
                         const std::string& description) {
  detail::Report& r = detail::report();
  if (r.name.empty()) {
    r.name = detail::sanitize(figure);
    // Construct the global registry before registering the hook: exit
    // teardown runs in reverse order, so the registry must come first
    // for the hook to snapshot it while still alive.
    (void)obs::Registry::global();
    std::atexit(&detail::write_json_at_exit);
  }
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", figure.c_str(), description.c_str());
  std::printf("================================================================\n");
}

inline void print_series(const std::string& title,
                         const std::vector<std::string>& columns,
                         const std::vector<std::vector<double>>& rows,
                         const char* fmt = "%14.4f") {
  std::printf("\n-- %s --\n", title.c_str());
  for (const auto& c : columns) std::printf("%14s", c.c_str());
  std::printf("\n");
  for (const auto& row : rows) {
    for (double v : row) std::printf(fmt, v);
    std::printf("\n");
  }
}

inline void print_claim(const std::string& claim, bool held) {
  detail::report().claims.push_back({claim, held, -1});
  std::printf("[%s] %s\n", held ? "REPRODUCED" : "DIVERGED  ", claim.c_str());
}

/// Claim measured at a specific worker/thread count; the JSON entry
/// carries a "threads" field so trajectory tooling can diff scaling runs
/// point-by-point.
inline void print_claim_at(const std::string& claim, bool held,
                           int threads) {
  detail::report().claims.push_back({claim, held, threads});
  std::printf("[%s] [T=%d] %s\n", held ? "REPRODUCED" : "DIVERGED  ",
              threads, claim.c_str());
}

inline void print_kv(const std::string& key, double value,
                     const std::string& unit = "") {
  detail::report().kv.emplace_back(key, value);
  std::printf("  %-44s %12.4f %s\n", key.c_str(), value, unit.c_str());
}

/// Uniform throughput reporting for the fleet benches: emits the kv
/// "<what>_events_per_sec" from a raw count and wall-clock seconds, so
/// bench_compare.py can gate every bench's throughput under one
/// tolerance key shape.  Returns the computed rate (0 when wall_s <= 0).
inline double events_per_sec(const std::string& what, double events,
                             double wall_s) {
  const double rate = wall_s > 0.0 ? events / wall_s : 0.0;
  print_kv(what + "_events_per_sec", rate, "events/s");
  return rate;
}

}  // namespace mdn::bench
