// Shared output helpers for the figure-reproduction benches.
//
// Every bench prints (a) a header identifying the paper figure it
// regenerates, (b) the data series behind that figure as aligned columns
// (ready to plot), and (c) a PASS/FAIL style summary of the qualitative
// claim the paper makes about the figure.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace mdn::bench {

inline void print_header(const std::string& figure,
                         const std::string& description) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", figure.c_str(), description.c_str());
  std::printf("================================================================\n");
}

inline void print_series(const std::string& title,
                         const std::vector<std::string>& columns,
                         const std::vector<std::vector<double>>& rows,
                         const char* fmt = "%14.4f") {
  std::printf("\n-- %s --\n", title.c_str());
  for (const auto& c : columns) std::printf("%14s", c.c_str());
  std::printf("\n");
  for (const auto& row : rows) {
    for (double v : row) std::printf(fmt, v);
    std::printf("\n");
  }
}

inline void print_claim(const std::string& claim, bool held) {
  std::printf("[%s] %s\n", held ? "REPRODUCED" : "DIVERGED  ", claim.c_str());
}

inline void print_kv(const std::string& key, double value,
                     const std::string& unit = "") {
  std::printf("  %-44s %12.4f %s\n", key.c_str(), value, unit.c_str());
}

}  // namespace mdn::bench
