// Ablation for the §3 finding that ~30 ms was the shortest usable tone:
// detection rate vs tone duration, at the controller's 50 ms listening
// hop and against mild room noise.
#include <cstdio>
#include <vector>

#include "audio/audio.h"
#include "bench_util.h"
#include "mdn/controller.h"
#include "net/event_loop.h"

namespace {

using namespace mdn;
constexpr double kSampleRate = 48000.0;

double detection_rate(double duration_s, double intensity_db) {
  constexpr int kTrials = 20;
  int detected = 0;
  for (int t = 0; t < kTrials; ++t) {
    net::EventLoop loop;
    audio::AcousticChannel channel(kSampleRate);
    audio::Rng rng(static_cast<std::uint64_t>(t) * 977 + 13);
    channel.add_ambient(
        audio::make_pink_noise(1.0, 0.005, kSampleRate, rng), true, 0.0);
    const auto spk = channel.add_source("spk", 0.5);

    core::MdnController::Config cfg;
    cfg.detector.sample_rate = kSampleRate;
    core::MdnController controller(loop, channel, cfg);
    int heard = 0;
    const double freq = 700.0 + 20.0 * t;
    controller.watch(freq, [&](const core::ToneEvent&) { ++heard; });
    controller.start();

    audio::ToneSpec spec;
    spec.frequency_hz = freq;
    spec.duration_s = duration_s;
    spec.amplitude = audio::spl_to_amplitude(intensity_db);
    // Random offset against the listener's hop grid — short tones can
    // straddle a block boundary, which is exactly what limits them.
    const double start = 0.1 + 0.05 * rng.uniform();
    channel.emit(spk, audio::make_tone(spec, kSampleRate), start);

    loop.schedule_at(net::from_seconds(0.5), [&] { controller.stop(); });
    loop.run();
    if (heard > 0) ++detected;
  }
  return static_cast<double>(detected) / kTrials;
}

}  // namespace

int main() {
  bench::print_header("Ablation (§3)",
                      "tone detection rate vs tone duration (50 ms "
                      "listening hop)");

  const std::vector<double> durations_ms{5.0,  10.0, 20.0, 30.0,
                                         50.0, 100.0};
  std::printf("\n%16s %16s %16s\n", "duration (ms)", "rate @ 70 dB",
              "rate @ 50 dB");
  double rate_30ms = 0.0, rate_5ms = 0.0;
  for (double ms : durations_ms) {
    const double loud = detection_rate(ms / 1000.0, 70.0);
    const double quiet = detection_rate(ms / 1000.0, 50.0);
    if (ms == 30.0) rate_30ms = loud;
    if (ms == 5.0) rate_5ms = loud;
    std::printf("%16.0f %16.2f %16.2f\n", ms, loud, quiet);
  }

  bench::print_claim(
      "~30 ms tones are reliably detected (the paper's shortest tone)",
      rate_30ms >= 0.9);
  bench::print_claim("very short (5 ms) tones degrade detection",
                     rate_5ms < rate_30ms);
  return 0;
}
