// Fig 3: port knocking.  (a) cumulative bytes sent by host 1 vs received
// by host 2 — the receive curve stays flat until the third knock opens
// the port (~34 s in the paper's run); (b) mel-scaled spectrogram of the
// three knock tones.
#include <cstdio>
#include <memory>

#include "audio/audio.h"
#include "bench_util.h"
#include "dsp/dsp.h"
#include "mdn/mdn.h"
#include "mp/mp.h"
#include "net/net.h"
#include "obs/obs.h"
#include "sdn/sdn.h"

int main() {
  using namespace mdn;
  constexpr double kSampleRate = 48000.0;
  bench::print_header("Figure 3",
                      "Port knocking: bytes sent/received and the knock-"
                      "tone spectrogram");

  // Flight recorder on: at the end we explain the opening FlowMod back
  // to the three knock tones and score emitted vs detected.
  obs::Journal& journal = obs::Journal::global();
  journal.enable();
  journal.clear();

  net::Network net;
  audio::AcousticChannel channel(kSampleRate);
  net::Host* h1 = nullptr;
  net::Host* h2 = nullptr;
  auto switches = net::build_chain(net, 1, &h1, &h2);
  net::Switch& sw = *switches.front();

  sdn::Controller null_controller;
  sdn::ControlChannel sdn_channel(net.loop(), net::kMillisecond);
  const auto dpid = sdn_channel.attach(sw, null_controller);

  core::FrequencyPlan plan({.base_hz = 500.0, .spacing_hz = 20.0});
  const auto dev = plan.add_device("s1", 3);
  const auto spk = channel.add_source("s1-speaker", 0.5);
  mp::PiSpeakerBridge bridge(net.loop(), channel, spk,
                             2 * net::kMillisecond);
  mp::MpEmitter emitter(net.loop(), bridge, 0);

  core::MdnController::Config ccfg;
  ccfg.detector.sample_rate = kSampleRate;
  ccfg.keep_recording = true;
  core::MdnController controller(net.loop(), channel, ccfg);

  core::PortKnockingConfig cfg;
  cfg.knock_ports = {7001, 7002, 7003};
  cfg.protected_port = 8080;
  // The chain builder wires s1: port 0 = h1, port 1 = h2.
  cfg.open_out_port = 1;
  cfg.tone_duration_s = 0.2;
  core::PortKnockingApp app(sw, emitter, controller, sdn_channel, dpid,
                            plan, dev, cfg);
  controller.start();

  // Fig 3a timeline (the paper's sender hammers the closed port for
  // ~34 s before the third knock lands).  Sender: 10 pps to :8080.
  net::SourceConfig scfg;
  scfg.flow = {h1->ip(), h2->ip(), 40000, 8080, net::IpProto::kTcp};
  scfg.start = 0;
  scfg.stop = net::from_seconds(45.0);
  net::CbrSource sender(*h1, scfg, 10.0);
  sender.start();

  const auto knock = [&](std::uint16_t port, double at_s) {
    net.loop().schedule_at(net::from_seconds(at_s), [&net, h1, h2, port] {
      net::Packet p;
      p.flow = {h1->ip(), h2->ip(), 40001, port, net::IpProto::kTcp};
      p.size_bytes = 64;
      h1->send(p);
      (void)net;
    });
  };
  knock(7001, 32.0);
  knock(7002, 33.0);
  knock(7003, 34.0);

  net.loop().schedule_at(net::from_seconds(45.0),
                         [&] { controller.stop(); });
  net.loop().run();

  // ---- Fig 3a series: cumulative bytes, sampled every second. --------
  std::vector<std::vector<double>> rows;
  std::size_t ti = 0, ri = 0;
  const auto& tx = h1->tx_series();
  const auto& rx = h2->rx_series();
  for (double t = 1.0; t <= 45.0; t += 1.0) {
    const net::SimTime limit = net::from_seconds(t);
    while (ti + 1 < tx.size() && tx[ti + 1].time <= limit) ++ti;
    while (ri + 1 < rx.size() && rx[ri + 1].time <= limit) ++ri;
    const double sent =
        tx.empty() || tx[ti].time > limit ? 0.0
                                          : static_cast<double>(tx[ti].bytes);
    const double recvd =
        rx.empty() || rx[ri].time > limit ? 0.0
                                          : static_cast<double>(rx[ri].bytes);
    rows.push_back({t, sent, recvd});
  }
  bench::print_series("Fig 3a: cumulative bytes", {"t (s)", "sent", "recvd"},
                      rows, "%14.0f");

  // ---- Fig 3b: mel spectrogram of the knock window. ------------------
  const auto& rec = controller.recording();
  const std::size_t w_start = rec.index_at(31.5);
  const std::size_t w_len = rec.index_at(35.0) - w_start;
  const auto window = rec.slice(w_start, w_len);
  const auto lin = dsp::stft(window.samples(), kSampleRate,
                             {.fft_size = 4096, .hop = 2048});
  const auto mel = dsp::mel_spectrogram(lin, 40, 200.0, 2000.0);
  std::printf("\n-- Fig 3b: mel spectrogram (knock window, peak band per "
              "frame) --\n");
  std::printf("%14s %14s %14s %14s\n", "t (s)", "mel band", "centre (Hz)",
              "amplitude");
  for (std::size_t f = 0; f < mel.frames.size(); ++f) {
    const std::size_t b = mel.argmax_band(f);
    if (mel.frames[f][b] < 0.01) continue;  // silence frames
    std::printf("%14.2f %14zu %14.1f %14.4f\n",
                31.5 + mel.frame_times_s[f], b, mel.band_centers_hz[b],
                mel.frames[f][b]);
  }

  // ---- Summary --------------------------------------------------------
  std::printf("\n");
  bench::print_kv("port opened at", app.opened_at_s(), "s");
  bench::print_kv("knocks heard", static_cast<double>(app.knocks_heard()),
                  "");
  bench::print_kv("bytes sent", static_cast<double>(h1->tx_bytes()), "B");
  bench::print_kv("bytes received", static_cast<double>(h2->rx_bytes()),
                  "B");

  const bool opened_after_third = app.opened() && app.opened_at_s() > 34.0 &&
                                  app.opened_at_s() < 35.0;
  // Received bytes before the knock: only the knock packets themselves.
  double recvd_at_30s = 0.0;
  for (const auto& s : rx) {
    if (s.time <= net::from_seconds(30.0)) {
      recvd_at_30s = static_cast<double>(s.bytes);
    }
  }
  bench::print_claim(
      "receiver gets (almost) nothing while the sender transmits for ~34 s",
      recvd_at_30s == 0.0);
  bench::print_claim(
      "port opens right after the 3rd knock in the correct sequence",
      opened_after_third);
  bench::print_claim("traffic flows after opening",
                     h2->rx_bytes() > 50'000);

  // ---- Flight recorder: provenance + scoreboard ----------------------
  const obs::Scoreboard board = obs::Scoreboard::build(journal);
  std::printf("\n-- scoreboard (emitted vs detected knock tones) --\n%s",
              board.render().c_str());
  std::size_t emitted = 0, detected = 0, transitions = 0, mods = 0;
  const auto chain = journal.explain(app.flow_mod_action());
  for (const auto& r : chain) {
    switch (r.kind) {
      case obs::JournalKind::kToneEmitted: ++emitted; break;
      case obs::JournalKind::kToneDetected: ++detected; break;
      case obs::JournalKind::kFsmTransition: ++transitions; break;
      case obs::JournalKind::kFlowMod: ++mods; break;
      default: break;
    }
  }
  std::printf("\n-- explain(opening flow mod) --\n%s",
              obs::explain_text(journal, app.flow_mod_action()).c_str());
  bench::print_claim(
      "flow mod explains back to 3 tones + 3 detections + 3 FSM steps",
      emitted == 3 && detected == 3 && transitions == 3 && mods == 1);
  bench::print_claim("scoreboard: every knock tone heard (recall 1.0)",
                     board.mic_count() > 0 && board.recall(0) == 1.0);
  journal.disable();
  journal.clear();
  return opened_after_third ? 0 : 1;
}
