// Fig 7: fan-failure detection statistic.  The blue curve (fan-off
// sample vs fan-on reference) sits far above the red curve (fan-on vs
// fan-on), in both the datacenter and the office; crossing the
// calibrated threshold raises the out-of-band alert.
#include <cstdio>
#include <string>

#include "audio/audio.h"
#include "bench_util.h"
#include "mdn/fan_failure.h"

namespace {

using namespace mdn;
constexpr double kSampleRate = 48000.0;

audio::Waveform record(bool fan_on, const audio::Waveform& background,
                       double duration_s, std::uint64_t seed) {
  audio::Waveform mix(kSampleRate,
                      static_cast<std::size_t>(duration_s * kSampleRate));
  mix.mix_at(background.slice(0, mix.size()), 0);
  if (fan_on) {
    audio::FanSpec spec;
    spec.rpm = 4200.0;
    spec.blades = 7;
    spec.tone_amplitude = 0.25;
    spec.broadband_rms = 0.05;
    spec.seed = seed;
    mix.mix_at(audio::generate_fan(spec, duration_s, kSampleRate), 0);
  }
  return mix;
}

struct Outcome {
  double threshold = 0.0;
  double max_on_diff = 0.0;
  double min_off_diff = 0.0;
  bool off_detected = false;
  bool on_false_alarm = false;
};

Outcome run(const std::string& label, const audio::Waveform& background) {
  core::FanFailureDetector detector(kSampleRate);
  detector.calibrate(record(true, background, 4.0, 11));

  const auto on_series =
      detector.difference_series(record(true, background, 2.0, 99));
  const auto off_series =
      detector.difference_series(record(false, background, 2.0, 0));

  std::printf("\n-- %s --\n", label.c_str());
  std::printf("%8s %18s %18s\n", "segment", "on-vs-on diff",
              "off-vs-on diff");
  Outcome out;
  out.threshold = detector.threshold();
  out.min_off_diff = 1e300;
  for (std::size_t i = 0; i < std::min(on_series.size(), off_series.size());
       ++i) {
    std::printf("%8zu %18.4f %18.4f\n", i, on_series[i], off_series[i]);
    out.max_on_diff = std::max(out.max_on_diff, on_series[i]);
    out.min_off_diff = std::min(out.min_off_diff, off_series[i]);
    if (off_series[i] > out.threshold) out.off_detected = true;
    if (on_series[i] > out.threshold) out.on_false_alarm = true;
  }
  bench::print_kv("alert threshold (mean + 6 sigma)", out.threshold, "");
  bench::print_kv("max on-vs-on difference", out.max_on_diff, "");
  bench::print_kv("min off-vs-on difference", out.min_off_diff, "");
  bench::print_kv("separation factor",
                  out.min_off_diff / std::max(out.max_on_diff, 1e-12), "x");
  return out;
}

}  // namespace

int main() {
  bench::print_header("Figure 7",
                      "Fan-failure statistic: amplitude difference of "
                      "fan-off vs fan-on recordings");

  const auto datacenter =
      audio::generate_machine_room(15, 6.0, kSampleRate, 0.15, 32);
  const auto office = audio::generate_office(6.0, kSampleRate, 0.02, 31);

  const Outcome dc = run("Fig 7a: datacenter", datacenter);
  const Outcome of = run("Fig 7b: office", office);

  std::printf("\n");
  bench::print_claim(
      "fan-off differences clearly exceed fan-on differences in the "
      "datacenter",
      dc.min_off_diff > dc.max_on_diff && dc.off_detected);
  bench::print_claim(
      "fan-off differences clearly exceed fan-on differences in the "
      "office",
      of.min_off_diff > of.max_on_diff && of.off_detected);
  bench::print_claim("no false alarms on healthy-fan samples",
                     !dc.on_false_alarm && !of.on_false_alarm);
  const bool ok = dc.off_detected && of.off_detected &&
                  !dc.on_false_alarm && !of.on_false_alarm;
  return ok ? 0 : 1;
}
