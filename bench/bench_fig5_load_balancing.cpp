// Fig 5a-b: music-defined load balancing on the rhombus topology.  The
// entry switch sings its queue band every 300 ms; when the controller
// hears the congested tone it installs a Flow-MOD splitting traffic over
// both paths, and the queue drains (the Fig 5a knee).
#include <cstdio>

#include "audio/audio.h"
#include "bench_util.h"
#include "mdn/mdn.h"
#include "mp/mp.h"
#include "net/net.h"
#include "obs/obs.h"
#include "sdn/sdn.h"

int main() {
  using namespace mdn;
  constexpr double kSampleRate = 48000.0;
  bench::print_header("Figure 5a-b",
                      "Load balancing: queue length vs time and the "
                      "queue-band tones");

  // Flight recorder on: the splitting FlowMod is explained back to the
  // congested queue-band tone, and the scoreboard reconciles every
  // queue tone the switch sang against what the controller heard.
  obs::Journal& journal = obs::Journal::global();
  journal.enable();
  journal.clear();

  net::Network net;
  audio::AcousticChannel channel(kSampleRate);
  core::FrequencyPlan plan({.base_hz = 500.0, .spacing_hz = 100.0});

  net::LinkSpec core_link;
  core_link.rate_bps = 8e6;  // 1000 pps of 1000 B packets
  core_link.queue_capacity = 150;
  auto topo = net::build_rhombus(net, core_link);

  // Single path through the upper branch until the controller reacts.
  net::FlowEntry single;
  single.priority = 10;
  single.actions = {net::Action::output(topo.entry_upper_port)};
  topo.entry->flow_table().add(single, 0);

  sdn::Controller null_controller;
  sdn::ControlChannel sdn_channel(net.loop(), net::kMillisecond);
  const auto dpid = sdn_channel.attach(*topo.entry, null_controller);

  const auto spk = channel.add_source("s1-speaker", 0.5);
  mp::PiSpeakerBridge bridge(net.loop(), channel, spk, 0);
  mp::MpEmitter emitter(net.loop(), bridge, 0);

  core::MdnController::Config ccfg;
  ccfg.detector.sample_rate = kSampleRate;
  core::MdnController controller(net.loop(), channel, ccfg);

  const auto dev = plan.add_device("s1", 3);
  core::QueueToneConfig qcfg;
  qcfg.port_index = topo.entry_upper_port;
  core::QueueToneReporter reporter(*topo.entry, *&emitter, plan, dev, qcfg);

  core::LoadBalancerConfig lbcfg;
  lbcfg.split_ports = {topo.entry_upper_port, topo.entry_lower_port};
  core::LoadBalancerApp balancer(controller, sdn_channel, dpid, plan, dev,
                                 lbcfg);

  reporter.start();
  controller.start();

  net::SourceConfig scfg;
  scfg.flow = {topo.src->ip(), topo.dst->ip(), 40000, 80,
               net::IpProto::kTcp};
  scfg.start = 0;
  scfg.stop = net::from_seconds(8.0);
  net::RampSource ramp(*topo.src, scfg, 100.0, 1800.0);
  ramp.start();

  net.loop().schedule_at(net::from_seconds(8.0), [&] {
    controller.stop();
    reporter.stop();
  });
  net.loop().run();

  // Fig 5a: queue length every 300 ms, annotated with the tone band.
  std::vector<std::vector<double>> rows;
  for (const auto& s : reporter.samples()) {
    rows.push_back({s.time_s, static_cast<double>(s.backlog),
                    static_cast<double>(s.band),
                    reporter.frequency_for_band(s.band)});
  }
  bench::print_series("Fig 5a/5b: queue samples and played tone",
                      {"t (s)", "queue (pkts)", "band", "tone (Hz)"}, rows,
                      "%14.1f");

  std::printf("\n");
  bench::print_kv("congestion heard / Flow-MOD sent at",
                  balancer.balanced_at_s(), "s");
  bench::print_kv("upper path forwarded",
                  static_cast<double>(topo.upper->forwarded()), "pkts");
  bench::print_kv("lower path forwarded",
                  static_cast<double>(topo.lower->forwarded()), "pkts");
  bench::print_kv("delivered to destination",
                  static_cast<double>(topo.dst->rx_packets()), "pkts");

  // Peak backlog before the split vs the end of the run.
  std::size_t peak = 0;
  for (const auto& s : reporter.samples()) {
    peak = std::max(peak, s.backlog);
  }
  const bool split = balancer.balanced();
  const bool drained =
      !reporter.samples().empty() && reporter.samples().back().backlog < 76;
  bench::print_claim(
      "congested tone triggers a traffic split mid-experiment",
      split && balancer.balanced_at_s() > 0.5 &&
          balancer.balanced_at_s() < 8.0);
  bench::print_claim("queue exceeded the 75-packet congested band first",
                     peak > 75);
  bench::print_claim(
      "after the split both paths carry traffic and the queue leaves the "
      "congested band",
      topo.lower->forwarded() > 100 && drained);

  // ---- Flight recorder: provenance + scoreboard ----------------------
  const obs::Scoreboard board = obs::Scoreboard::build(journal);
  std::printf("\n-- scoreboard (emitted vs detected queue-band tones) --\n%s",
              board.render().c_str());
  std::printf("\n-- explain(splitting flow mod) --\n%s",
              obs::explain_text(journal, balancer.flow_mod_action()).c_str());
  const auto chain = journal.explain(balancer.flow_mod_action());
  const bool chain_rooted =
      !chain.empty() &&
      chain.front().kind == obs::JournalKind::kToneEmitted &&
      chain.back().kind == obs::JournalKind::kFlowMod;
  bench::print_claim(
      "splitting flow mod explains back to an emitted queue tone",
      chain_rooted);
  journal.disable();
  journal.clear();
  return split && drained ? 0 : 1;
}
