// Ablation: cost of closed-set Goertzel evaluation vs a full FFT sweep,
// as a function of how many frequencies the listener watches.  The §6
// applications watch 3 frequencies — firmly in Goertzel territory; the
// open-set telemetry of §5 watches dozens, where one FFT wins.
#include <benchmark/benchmark.h>

#include "audio/audio.h"
#include "bench_util.h"
#include "dsp/dsp.h"
#include "mdn/tone_detector.h"

namespace {

constexpr double kSampleRate = 48000.0;

mdn::audio::Waveform block() {
  mdn::audio::Rng rng(5);
  mdn::audio::ToneSpec spec;
  spec.frequency_hz = 700.0;
  spec.amplitude = 0.1;
  spec.duration_s = 0.05;
  auto w = mdn::audio::make_tone(spec, kSampleRate);
  w.mix_at(mdn::audio::make_white_noise(0.05, 0.01, kSampleRate, rng), 0);
  return w;
}

void BM_GoertzelSet(benchmark::State& state) {
  const auto w = block();
  const auto n_watch = static_cast<std::size_t>(state.range(0));
  std::vector<double> watch;
  for (std::size_t i = 0; i < n_watch; ++i) {
    watch.push_back(500.0 + 20.0 * static_cast<double>(i));
  }
  mdn::core::ToneDetector det({.sample_rate = kSampleRate});
  for (auto _ : state) {
    auto levels = det.set_levels(w.samples(), watch);
    benchmark::DoNotOptimize(levels);
  }
}
BENCHMARK(BM_GoertzelSet)->Arg(1)->Arg(3)->Arg(10)->Arg(30)->Arg(100);

void BM_FullFftDetect(benchmark::State& state) {
  const auto w = block();
  mdn::core::ToneDetector det({.sample_rate = kSampleRate});
  for (auto _ : state) {
    auto tones = det.detect(w.samples());
    benchmark::DoNotOptimize(tones);
  }
}
BENCHMARK(BM_FullFftDetect);

}  // namespace

int main(int argc, char** argv) {
  mdn::bench::print_header(
      "Ablation: Goertzel vs FFT",
      "closed-set Goertzel cost vs one full FFT sweep per block");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
