// Ablation: the §6 design comparison, quantified.
//
// The paper motivates music-defined congestion control as acting "without
// waiting for source reactions, without having to modify the transport
// protocol, as in DataCenter TCP, and without using the less efficient
// Explicit Congestion Notification mechanism of TCP."
//
// Same bottleneck, two reactions to the same overload:
//   (a) in-band  — an ECN/DCTCP-like source throttles itself after marks
//                  echo back (transport modified, endpoints involved);
//   (b) out-of-band — the switch sings its queue band; the MDN listener
//                  installs a Flow-MOD splitting traffic over a second
//                  path (no endpoint changes, in-network action).
// We report reaction latency, delivered goodput and end-state queue.
#include <cstdio>

#include "audio/audio.h"
#include "bench_util.h"
#include "mdn/mdn.h"
#include "mp/mp.h"
#include "net/net.h"
#include "sdn/sdn.h"

namespace {

using namespace mdn;
constexpr double kSampleRate = 48000.0;
constexpr double kRunSeconds = 8.0;

struct Outcome {
  double reaction_s = -1.0;       // first corrective action
  std::uint64_t delivered = 0;    // packets at the destination
  std::uint64_t sent = 0;
  std::size_t end_backlog = 0;
  std::uint64_t drops = 0;
};

// (a) ECN: single path, self-throttling source.
Outcome run_ecn() {
  net::Network net;
  auto& sw = net.add_switch("s1");
  auto& h1 = net.add_host("h1", net::make_ipv4(10, 0, 0, 1));
  auto& h2 = net.add_host("h2", net::make_ipv4(10, 0, 0, 2));
  net::LinkSpec fast;
  fast.rate_bps = 1e9;
  net::LinkSpec slow;
  slow.rate_bps = 8e6;
  slow.queue_capacity = 150;
  const std::size_t in = net.connect(h1, sw, fast);
  const std::size_t out = net.connect(h2, sw, slow);

  net::FlowEntry fwd;
  fwd.priority = 1;
  fwd.match.dst_ip = h2.ip();
  fwd.actions = {net::Action::output(out)};
  sw.flow_table().add(fwd, 0);
  net::FlowEntry back;
  back.priority = 1;
  back.match.dst_ip = h1.ip();
  back.actions = {net::Action::output(in)};
  sw.flow_table().add(back, 0);

  sw.port(out).set_ecn_threshold(75);  // mark where MDN would sing band 2

  net::EcnSourceConfig cfg;
  cfg.flow = {h1.ip(), h2.ip(), 40000, 80, net::IpProto::kTcp};
  cfg.initial_pps = 1800.0;  // same overload the MDN run faces
  cfg.stop = net::from_seconds(kRunSeconds);
  net::EcnRateSource source(h1, cfg);
  net::attach_ecn_echo(h2);
  source.start();
  net.loop().run();

  Outcome o;
  o.reaction_s = source.first_backoff_s();
  o.sent = source.sent();
  // Count only forward data at the receiver (acks flow the other way).
  o.delivered = h2.rx_packets();
  o.end_backlog = sw.port(out).backlog();
  o.drops = sw.port(out).drops();
  return o;
}

// (b) MDN: rhombus, queue tones, listener splits traffic.
Outcome run_mdn() {
  net::Network net;
  audio::AcousticChannel channel(kSampleRate);
  core::FrequencyPlan plan({.base_hz = 500.0, .spacing_hz = 100.0});

  net::LinkSpec core_link;
  core_link.rate_bps = 8e6;
  core_link.queue_capacity = 150;
  auto topo = net::build_rhombus(net, core_link);

  net::FlowEntry single;
  single.priority = 10;
  single.actions = {net::Action::output(topo.entry_upper_port)};
  topo.entry->flow_table().add(single, 0);

  sdn::Controller null_controller;
  sdn::ControlChannel sdn_channel(net.loop(), net::kMillisecond);
  const auto dpid = sdn_channel.attach(*topo.entry, null_controller);

  const auto spk = channel.add_source("s1-speaker", 0.5);
  mp::PiSpeakerBridge bridge(net.loop(), channel, spk);
  mp::MpEmitter emitter(net.loop(), bridge, 0);
  core::MdnController::Config ccfg;
  ccfg.detector.sample_rate = kSampleRate;
  core::MdnController controller(net.loop(), channel, ccfg);

  const auto dev = plan.add_device("s1", 3);
  core::QueueToneConfig qcfg;
  qcfg.port_index = topo.entry_upper_port;
  core::QueueToneReporter reporter(*topo.entry, emitter, plan, dev, qcfg);
  core::LoadBalancerConfig lbcfg;
  lbcfg.split_ports = {topo.entry_upper_port, topo.entry_lower_port};
  core::LoadBalancerApp balancer(controller, sdn_channel, dpid, plan, dev,
                                 lbcfg);
  reporter.start();
  controller.start();

  // Non-reactive source at the same constant overload.
  net::SourceConfig scfg;
  scfg.flow = {topo.src->ip(), topo.dst->ip(), 40000, 80,
               net::IpProto::kTcp};
  scfg.stop = net::from_seconds(kRunSeconds);
  net::CbrSource source(*topo.src, scfg, 1800.0);
  source.start();

  net.loop().schedule_at(net::from_seconds(kRunSeconds), [&] {
    controller.stop();
    reporter.stop();
  });
  net.loop().run();

  Outcome o;
  o.reaction_s = balancer.balanced_at_s();
  o.sent = source.sent();
  o.delivered = topo.dst->rx_packets();
  o.end_backlog = topo.entry->port(topo.entry_upper_port).backlog();
  o.drops = topo.entry->port(topo.entry_upper_port).drops() +
            topo.entry->port(topo.entry_lower_port).drops();
  return o;
}

void report(const char* label, const Outcome& o) {
  std::printf("\n-- %s --\n", label);
  bench::print_kv("reaction time", o.reaction_s, "s");
  bench::print_kv("packets offered", static_cast<double>(o.sent), "");
  bench::print_kv("packets delivered", static_cast<double>(o.delivered),
                  "");
  bench::print_kv("goodput fraction",
                  o.sent ? static_cast<double>(o.delivered) /
                               static_cast<double>(o.sent)
                         : 0.0,
                  "");
  bench::print_kv("bottleneck drops", static_cast<double>(o.drops), "");
  bench::print_kv("final backlog", static_cast<double>(o.end_backlog),
                  "pkts");
}

}  // namespace

int main() {
  bench::print_header("Ablation (§6 baseline)",
                      "ECN/DCTCP self-throttling vs music-defined "
                      "in-network splitting, same 1.8x overload");

  const Outcome ecn = run_ecn();
  report("(a) in-band ECN/DCTCP source", ecn);
  const Outcome mdn = run_mdn();
  report("(b) out-of-band MDN load balancer", mdn);

  bench::print_claim("both mechanisms react to the overload",
                     ecn.reaction_s > 0.0 && mdn.reaction_s > 0.0);
  bench::print_claim(
      "ECN protects the queue by throttling the sender (goodput "
      "sacrificed to the offered load)",
      ecn.delivered < mdn.delivered);
  bench::print_claim(
      "MDN sustains (almost) the full offered load by adding capacity "
      "instead of shedding it — the §6 argument for in-network reaction",
      mdn.delivered * 10 >= mdn.sent * 9);
  return 0;
}
