// Fig 4a-b: music-defined heavy-hitter detection, without (a) and with
// (b) a pop song playing as background noise.
#include <cstdio>
#include <memory>
#include <string>

#include "audio/audio.h"
#include "bench_util.h"
#include "mdn/mdn.h"
#include "mp/mp.h"
#include "net/net.h"

namespace {

using namespace mdn;
constexpr double kSampleRate = 48000.0;

struct Result {
  std::size_t elephant_bin = 0;
  std::vector<std::uint64_t> totals;
  double alert_time_s = -1.0;
  std::size_t alerts_on_elephant = 0;
  std::size_t alerts_elsewhere = 0;
};

Result run_experiment(bool with_song) {
  net::Network net;
  audio::AcousticChannel channel(kSampleRate);
  if (with_song) {
    audio::Waveform song =
        audio::generate_song(4.0, kSampleRate, {.amplitude = 1.0});
    song.scale(0.05 / song.rms());  // ~68 dB SPL of music at the mic
    channel.add_ambient(std::move(song), true, 0.0);
  }

  net::Host* h1 = nullptr;
  net::Host* h2 = nullptr;
  auto switches = net::build_chain(net, 1, &h1, &h2);
  net::Switch& sw = *switches.front();

  core::FrequencyPlan plan({.base_hz = 2000.0, .spacing_hz = 20.0});
  const auto dev = plan.add_device("s1", 32);
  const auto spk = channel.add_source("s1-speaker", 0.5);
  mp::PiSpeakerBridge bridge(net.loop(), channel, spk, 0);
  mp::MpEmitter emitter(net.loop(), bridge, 100 * net::kMillisecond);

  core::MdnController::Config ccfg;
  ccfg.detector.sample_rate = kSampleRate;
  ccfg.detector.min_amplitude = 0.05;
  core::MdnController controller(net.loop(), channel, ccfg);

  core::HeavyHitterConfig cfg;
  cfg.window_s = 2.0;
  cfg.threshold = 12;
  cfg.intensity_db_spl = 85.0;
  core::HeavyHitterReporter reporter(sw, emitter, plan, dev, cfg);
  core::HeavyHitterDetector detector(controller, plan, dev, cfg);
  controller.start();

  // Workload: one elephant + 7 mice, 300 pps total, elephant ~75%.
  const net::FlowKey elephant{h1->ip(), h2->ip(), 41000, 80,
                              net::IpProto::kTcp};
  std::vector<net::FlowMixSource::WeightedFlow> flows{{elephant, 21.0}};
  for (std::uint16_t p = 81; p < 88; ++p) {
    flows.push_back({{h1->ip(), h2->ip(), 41000, p, net::IpProto::kTcp},
                     1.0});
  }
  net::FlowMixSource mix(*h1, flows, 300.0, 0, net::from_seconds(6.0),
                         /*seed=*/11);
  mix.start();

  net.loop().schedule_at(net::from_seconds(6.5),
                         [&] { controller.stop(); });
  net.loop().run();

  Result r;
  r.elephant_bin = reporter.bin_for(elephant);
  r.totals = detector.totals();
  for (const auto& alert : detector.alerts()) {
    if (alert.bin == r.elephant_bin) {
      if (r.alert_time_s < 0.0) r.alert_time_s = alert.time_s;
      ++r.alerts_on_elephant;
    } else {
      ++r.alerts_elsewhere;
    }
  }
  return r;
}

void report(const std::string& label, const Result& r) {
  std::printf("\n-- %s --\n", label.c_str());
  std::printf("%8s %14s %s\n", "bin", "tone onsets", "");
  for (std::size_t b = 0; b < r.totals.size(); ++b) {
    if (r.totals[b] == 0) continue;
    std::printf("%8zu %14llu %s\n", b,
                static_cast<unsigned long long>(r.totals[b]),
                b == r.elephant_bin ? "<- heavy hitter flow" : "");
  }
  bench::print_kv("elephant bin", static_cast<double>(r.elephant_bin), "");
  bench::print_kv("first alert on elephant", r.alert_time_s, "s");
  bench::print_kv("alerts on other bins",
                  static_cast<double>(r.alerts_elsewhere), "");
}

}  // namespace

int main() {
  bench::print_header("Figure 4a-b",
                      "Heavy-hitter detection, clean (a) and with the "
                      "pop-song interference (b)");

  const Result clean = run_experiment(false);
  report("Fig 4a: clean channel", clean);
  const Result noisy = run_experiment(true);
  report("Fig 4b: with background song", noisy);

  const bool a_ok = clean.alert_time_s > 0.0 &&
                    clean.alerts_elsewhere == 0;
  const bool b_ok = noisy.alert_time_s > 0.0 &&
                    noisy.alerts_elsewhere == 0;
  bench::print_claim("heavy hitter detected on a clean channel", a_ok);
  bench::print_claim(
      "heavy hitter still detected with the song playing (Fig 4b)", b_ok);
  bench::print_claim(
      "no false alerts on mouse bins in either condition",
      clean.alerts_elsewhere == 0 && noisy.alerts_elsewhere == 0);
  return a_ok && b_ok ? 0 : 1;
}
