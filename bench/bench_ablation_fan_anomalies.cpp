// Ablation for §7's two open questions:
//   (1) "How many distinct server anomalies can we recognize?"
//   (2) "What is the optimal microphone-server distance?"
//
// Four machine states (healthy, stopped, bearing wear, obstructed
// intake) are classified by nearest reference spectrum while the
// microphone moves away from the server: the fan signal falls as 1/r
// against a fixed 85 dB machine-room background.  Accuracy per distance
// answers both questions at once.
#include <cstdio>
#include <string>
#include <vector>

#include "audio/audio.h"
#include "bench_util.h"
#include "mdn/fan_anomaly.h"

namespace {

using namespace mdn;
constexpr double kSampleRate = 48000.0;

struct State {
  std::string label;
  bool present;  // fan audible at all
  audio::FanSpec spec;
};

std::vector<State> machine_states() {
  audio::FanSpec healthy;
  healthy.rpm = 4200.0;
  healthy.blades = 7;
  healthy.tone_amplitude = 0.25;
  healthy.broadband_rms = 0.05;
  healthy.seed = 11;

  audio::FanSpec wear = healthy;
  wear.harmonics = 12;
  wear.tone_amplitude = 0.4;
  wear.rpm_jitter = 0.004;
  wear.seed = 12;

  audio::FanSpec obstructed = healthy;
  obstructed.rpm *= 0.7;
  obstructed.broadband_rms = 0.15;
  obstructed.seed = 13;

  return {{"healthy", true, healthy},
          {"stopped", false, healthy},
          {"bearing-wear", true, wear},
          {"obstructed", true, obstructed}};
}

audio::Waveform record(const State& state, const audio::Waveform& room,
                       double duration_s, double distance_m,
                       std::uint64_t variant) {
  audio::Waveform mix(kSampleRate,
                      static_cast<std::size_t>(duration_s * kSampleRate));
  mix.mix_at(room.slice(variant * 4800, mix.size()), 0);
  if (state.present) {
    auto spec = state.spec;
    spec.seed += variant * 977;
    mix.mix_at(audio::generate_fan(spec, duration_s, kSampleRate), 0,
               1.0 / std::max(distance_m, 0.1));
  }
  return mix;
}

}  // namespace

int main() {
  bench::print_header("Ablation (§7 open questions)",
                      "anomaly classes recognised vs microphone-server "
                      "distance, 85 dB room");

  const auto room = audio::generate_machine_room(
      15, 8.0, kSampleRate, audio::spl_to_amplitude(85.0), 32);
  const auto states = machine_states();

  const std::vector<double> distances{0.25, 0.5, 1.0, 2.0, 4.0, 8.0};
  std::printf("\n%14s %14s %14s\n", "distance (m)", "accuracy",
              "trials");
  double acc_at_half_m = 0.0, acc_far = 0.0;
  for (double d : distances) {
    // Calibrate references at this distance (the operator trains where
    // the microphone actually is).
    core::FanAnomalyClassifier classifier(kSampleRate);
    for (const auto& s : states) {
      classifier.add_reference(s.label, record(s, room, 2.0, d, 0));
    }
    int correct = 0, trials = 0;
    for (const auto& s : states) {
      for (std::uint64_t v = 1; v <= 5; ++v) {
        ++trials;
        if (classifier.classify_majority(record(s, room, 1.0, d, v))
                .label == s.label) {
          ++correct;
        }
      }
    }
    const double acc = static_cast<double>(correct) / trials;
    if (d == 0.5) acc_at_half_m = acc;
    if (d == 8.0) acc_far = acc;
    std::printf("%14.2f %14.2f %14d\n", d, acc, trials);
  }

  bench::print_claim(
      "four distinct machine states (healthy / stopped / bearing wear / "
      "obstructed) are recognisable at close range (the paper "
      "demonstrated one: on vs off)",
      acc_at_half_m >= 0.9);
  bench::print_claim(
      "accuracy decays with microphone distance — close placement is "
      "the operating point, as the paper's \"closely placed microphone\" "
      "suggests",
      acc_far <= acc_at_half_m);
  return 0;
}
