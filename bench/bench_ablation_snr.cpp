// Ablation: detection rate vs tone level against two interference beds
// (machine-room noise and the pop song).  The paper states tones were
// played at >= 30 dB and that detection survived both backgrounds; this
// sweep maps where that stops being true.
#include <cstdio>
#include <vector>

#include "audio/audio.h"
#include "bench_util.h"
#include "mdn/controller.h"
#include "net/event_loop.h"

namespace {

using namespace mdn;
constexpr double kSampleRate = 48000.0;

enum class Bed { kQuietOffice, kMachineRoom, kSong };

double detection_rate(Bed bed, double tone_db) {
  constexpr int kTrials = 12;
  int detected = 0;
  for (int t = 0; t < kTrials; ++t) {
    net::EventLoop loop;
    audio::AcousticChannel channel(kSampleRate);
    switch (bed) {
      case Bed::kQuietOffice:
        channel.add_ambient(audio::generate_office(
                                2.0, kSampleRate,
                                audio::spl_to_amplitude(45.0),
                                static_cast<std::uint64_t>(t)),
                            true, 0.0);
        break;
      case Bed::kMachineRoom:
        channel.add_ambient(
            audio::generate_machine_room(12, 2.0, kSampleRate,
                                         audio::spl_to_amplitude(80.0),
                                         static_cast<std::uint64_t>(t)),
            true, 0.0);
        break;
      case Bed::kSong: {
        audio::Waveform song = audio::generate_song(
            2.0, kSampleRate,
            {.amplitude = 1.0, .seed = static_cast<std::uint64_t>(t)});
        song.scale(audio::spl_to_amplitude(75.0) / song.rms());
        channel.add_ambient(std::move(song), true, 0.0);
        break;
      }
    }
    const auto spk = channel.add_source("spk", 0.5);

    core::MdnController::Config cfg;
    cfg.detector.sample_rate = kSampleRate;
    cfg.detector.min_amplitude = 0.02;
    core::MdnController controller(loop, channel, cfg);
    int heard = 0;
    const double freq = 2200.0 + 20.0 * t;
    // Gate on the emission instant so a fan harmonic drifting through
    // the watched slot does not count as detecting *our* tone.
    controller.watch(freq, [&](const core::ToneEvent& ev) {
      if (ev.time_s > 0.1 && ev.time_s < 0.35) ++heard;
    });
    controller.start();

    audio::ToneSpec spec;
    spec.frequency_hz = freq;
    spec.duration_s = 0.08;
    spec.amplitude = audio::spl_to_amplitude(tone_db);
    channel.emit(spk, audio::make_tone(spec, kSampleRate), 0.2);

    loop.schedule_at(net::from_seconds(0.6), [&] { controller.stop(); });
    loop.run();
    if (heard > 0) ++detected;
  }
  return static_cast<double>(detected) / kTrials;
}

}  // namespace

int main() {
  bench::print_header("Ablation",
                      "tone detection rate vs tone SPL across "
                      "interference beds");

  const std::vector<double> levels{40.0, 50.0, 60.0, 70.0, 80.0, 90.0};
  std::printf("\n%14s %16s %16s %16s\n", "tone (dB SPL)", "quiet office",
              "machine room", "song @75 dB");
  double office_70 = 0.0, room_80 = 0.0;
  for (double db : levels) {
    const double office = detection_rate(Bed::kQuietOffice, db);
    const double room = detection_rate(Bed::kMachineRoom, db);
    const double song = detection_rate(Bed::kSong, db);
    if (db == 70.0) office_70 = office;
    if (db == 80.0) room_80 = room;
    std::printf("%14.0f %16.2f %16.2f %16.2f\n", db, office, room, song);
  }

  bench::print_claim("70 dB tones always heard in a quiet office",
                     office_70 >= 0.95);
  bench::print_claim(
      "tones at datacenter-like levels (80 dB+) survive the machine room",
      room_80 >= 0.9);
  return 0;
}
