// Fig 6: mel-scaled spectrograms of a monitored server with (a, c) and
// without (b, d) a running fan, in a datacenter (a-b) and in an office
// (c-d).  We print per-band mean amplitudes for each condition; the
// fan's blade-pass lines appear in the "on" columns and vanish in the
// "off" columns, in both environments.
#include <cstdio>
#include <vector>

#include "audio/audio.h"
#include "bench_util.h"
#include "dsp/dsp.h"

namespace {

using namespace mdn;
constexpr double kSampleRate = 48000.0;
constexpr double kDuration = 3.0;

audio::Waveform record(bool fan_on, const audio::Waveform& background) {
  audio::Waveform mix(kSampleRate,
                      static_cast<std::size_t>(kDuration * kSampleRate));
  mix.mix_at(background.slice(0, mix.size()), 0);
  if (fan_on) {
    audio::FanSpec spec;
    spec.rpm = 4200.0;
    spec.blades = 7;  // blade-pass 490 Hz
    spec.tone_amplitude = 0.25;
    spec.broadband_rms = 0.05;
    spec.seed = 11;
    mix.mix_at(audio::generate_fan(spec, kDuration, kSampleRate), 0);
  }
  return mix;
}

std::vector<double> mean_mel_bands(const audio::Waveform& rec,
                                   std::size_t bands) {
  const auto lin = dsp::stft(rec.samples(), kSampleRate,
                             {.fft_size = 4096, .hop = 2048});
  const auto mel = dsp::mel_spectrogram(lin, bands, 60.0, 6000.0);
  std::vector<double> mean(bands, 0.0);
  for (const auto& frame : mel.frames) {
    for (std::size_t b = 0; b < bands; ++b) mean[b] += frame[b];
  }
  for (auto& v : mean) v /= static_cast<double>(mel.frames.size());
  return mean;
}

}  // namespace

int main() {
  bench::print_header("Figure 6",
                      "Fan on/off mel spectrograms in datacenter and "
                      "office environments");

  const auto datacenter =
      audio::generate_machine_room(15, kDuration + 1.0, kSampleRate, 0.15, 32);
  const auto office =
      audio::generate_office(kDuration + 1.0, kSampleRate, 0.02, 31);

  constexpr std::size_t kBands = 32;
  const auto dc_on = mean_mel_bands(record(true, datacenter), kBands);
  const auto dc_off = mean_mel_bands(record(false, datacenter), kBands);
  const auto of_on = mean_mel_bands(record(true, office), kBands);
  const auto of_off = mean_mel_bands(record(false, office), kBands);

  // Band axis labels from one spectrogram.
  const auto lin = dsp::stft(record(true, office).samples(), kSampleRate,
                             {.fft_size = 4096, .hop = 2048});
  const auto mel = dsp::mel_spectrogram(lin, kBands, 60.0, 6000.0);

  std::vector<std::vector<double>> rows;
  for (std::size_t b = 0; b < kBands; ++b) {
    rows.push_back({mel.band_centers_hz[b], dc_on[b], dc_off[b], of_on[b],
                    of_off[b]});
  }
  bench::print_series(
      "mean mel-band amplitude per condition",
      {"band (Hz)", "DC fan-on", "DC fan-off", "office on", "office off"},
      rows, "%14.5f");

  // The fan's signature: the band containing the 490 Hz blade-pass line.
  std::size_t bpf_band = 0;
  double best = 1e18;
  for (std::size_t b = 0; b < kBands; ++b) {
    const double d = std::abs(mel.band_centers_hz[b] - 490.0);
    if (d < best) {
      best = d;
      bpf_band = b;
    }
  }
  std::printf("\n");
  bench::print_kv("blade-pass band centre", mel.band_centers_hz[bpf_band],
                  "Hz");
  bench::print_kv("datacenter on/off contrast at BPF",
                  dc_on[bpf_band] / dc_off[bpf_band], "x");
  bench::print_kv("office on/off contrast at BPF",
                  of_on[bpf_band] / of_off[bpf_band], "x");

  const bool dc_visible = dc_on[bpf_band] > 1.5 * dc_off[bpf_band];
  const bool of_visible = of_on[bpf_band] > 3.0 * of_off[bpf_band];
  bench::print_claim(
      "fan lines visible in the datacenter despite the room noise (Fig "
      "6a vs 6b)",
      dc_visible);
  bench::print_claim("fan lines visible in the office (Fig 6c vs 6d)",
                     of_visible);
  return dc_visible && of_visible ? 0 : 1;
}
