// Fig 4c-d: port-scan detection.  The scan sweeps destination ports, the
// switch keys a tone per port, and the mel spectrogram shows the rising
// sweep; with the song playing (d) the sweep is still visible and the
// detector still fires.
#include <cstdio>
#include <string>

#include "audio/audio.h"
#include "bench_util.h"
#include "dsp/dsp.h"
#include "mdn/mdn.h"
#include "mp/mp.h"
#include "net/net.h"

namespace {

using namespace mdn;
constexpr double kSampleRate = 48000.0;

struct Result {
  double alert_time_s = -1.0;
  std::size_t distinct = 0;
  std::size_t events = 0;
  std::size_t ascents = 0;
  std::size_t steps = 0;
  std::vector<std::vector<double>> staircase;  // t, freq, mel
};

Result run_experiment(bool with_song) {
  net::Network net;
  audio::AcousticChannel channel(kSampleRate);
  if (with_song) {
    audio::Waveform song =
        audio::generate_song(4.0, kSampleRate, {.amplitude = 1.0});
    song.scale(0.05 / song.rms());
    channel.add_ambient(std::move(song), true, 0.0);
  }

  net::Host* attacker = nullptr;
  net::Host* victim = nullptr;
  auto switches = net::build_chain(net, 1, &attacker, &victim);
  net::Switch& sw = *switches.front();

  core::FrequencyPlan plan({.base_hz = 2000.0, .spacing_hz = 20.0});
  const auto dev = plan.add_device("s1", 32);
  const auto spk = channel.add_source("s1-speaker", 0.5);
  mp::PiSpeakerBridge bridge(net.loop(), channel, spk, 0);
  mp::MpEmitter emitter(net.loop(), bridge, 60 * net::kMillisecond);

  core::MdnController::Config ccfg;
  ccfg.detector.sample_rate = kSampleRate;
  ccfg.detector.min_amplitude = 0.05;
  core::MdnController controller(net.loop(), channel, ccfg);

  core::PortScanConfig cfg;
  cfg.first_port = 7000;
  cfg.window_s = 3.0;
  cfg.distinct_threshold = 10;
  cfg.intensity_db_spl = 85.0;
  core::PortScanReporter reporter(sw, emitter, plan, dev, cfg);
  core::PortScanDetector detector(controller, plan, dev, cfg);
  controller.start();

  net::SourceConfig scfg;
  scfg.flow = {attacker->ip(), victim->ip(), 40000, 7000,
               net::IpProto::kTcp};
  scfg.start = 200 * net::kMillisecond;
  scfg.stop = net::from_seconds(10.0);
  net::PortScanSource scan(*attacker, scfg, 7000, 7024,
                           100 * net::kMillisecond);
  scan.start();

  net.loop().schedule_at(net::from_seconds(4.0),
                         [&] { controller.stop(); });
  net.loop().run();

  Result r;
  if (!detector.alerts().empty()) {
    r.alert_time_s = detector.alerts().front().time_s;
    r.distinct = detector.alerts().front().distinct_tones;
  }
  r.events = detector.events_heard();
  const auto& log = controller.event_log();
  for (std::size_t i = 0; i < log.size(); ++i) {
    r.staircase.push_back({log[i].time_s, log[i].frequency_hz,
                           dsp::hz_to_mel(log[i].frequency_hz)});
    if (i > 0) {
      ++r.steps;
      if (log[i].frequency_hz > log[i - 1].frequency_hz) ++r.ascents;
    }
  }
  return r;
}

void report(const std::string& label, const Result& r) {
  std::printf("\n-- %s --\n", label.c_str());
  bench::print_series("detected tone staircase (the Fig 4c sweep)",
                      {"t (s)", "freq (Hz)", "mel"}, r.staircase, "%14.2f");
  bench::print_kv("tone events heard", static_cast<double>(r.events), "");
  bench::print_kv("first alert at", r.alert_time_s, "s");
  bench::print_kv("distinct ports in window at alert",
                  static_cast<double>(r.distinct), "");
  if (r.steps > 0) {
    bench::print_kv("fraction of ascending steps",
                    static_cast<double>(r.ascents) /
                        static_cast<double>(r.steps),
                    "");
  }
}

}  // namespace

int main() {
  bench::print_header("Figure 4c-d",
                      "Port-scan detection, clean (c) and with the song "
                      "(d)");
  const Result clean = run_experiment(false);
  report("Fig 4c: clean channel", clean);
  const Result noisy = run_experiment(true);
  report("Fig 4d: with background song", noisy);

  const bool c_ok = clean.alert_time_s > 0.0 &&
                    clean.ascents * 4 >= clean.steps * 3;
  const bool d_ok = noisy.alert_time_s > 0.0;
  bench::print_claim(
      "scan appears as a rising frequency staircase (clean)", c_ok);
  bench::print_claim("scan still detected under the song (Fig 4d)", d_ok);
  return c_ok && d_ok ? 0 : 1;
}
