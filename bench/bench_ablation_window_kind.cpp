// Ablation: analysis-window choice for the tone detector.
//
// The listener must hear loud plan tones (sensitivity) without letting a
// neighbouring switch's loud tone bleed into other slots (selectivity).
// Per window kind this sweep measures: (a) detection rate for a 70 dB
// tone in mild noise; (b) spurious slot detections while a *steady*
// 90 dB tone fills the block — pure window-sidelobe leakage, the failure
// mode that motivates the Blackman default; and (c) the same with a
// hard-keyed tone starting mid-block — signal-side splatter that no
// analysis window can remove, which is why the Pi bridge applies
// generous fades on emission.
#include <cstdio>
#include <vector>

#include "audio/audio.h"
#include "bench_util.h"
#include "mdn/frequency_plan.h"
#include "mdn/tone_detector.h"

namespace {

using namespace mdn;
constexpr double kSampleRate = 48000.0;

struct Row {
  double detect_rate = 0.0;
  double spurious_steady = 0.0;
  double spurious_keyed = 0.0;
};

Row measure(dsp::WindowKind kind) {
  core::FrequencyPlan plan({.base_hz = 2000.0, .spacing_hz = 20.0});
  const auto dev = plan.add_device("s1", 40);

  core::ToneDetectorConfig cfg;
  cfg.sample_rate = kSampleRate;
  cfg.window = kind;
  cfg.min_amplitude = 5e-3;
  core::ToneDetector det(cfg);

  Row row;
  audio::Rng rng(13);

  // (a) Sensitivity: 70 dB tone + mild noise, random slot, 40 trials.
  int detected = 0;
  constexpr int kTrials = 40;
  for (int t = 0; t < kTrials; ++t) {
    const std::size_t slot = rng.below(40);
    audio::ToneSpec spec;
    spec.frequency_hz = plan.frequency(dev, slot);
    spec.amplitude = audio::spl_to_amplitude(70.0) * 2.0;  // 0.5 m mic
    spec.duration_s = 0.05;
    audio::Waveform block = audio::make_tone(spec, kSampleRate);
    block.mix_at(audio::make_white_noise(0.05, 1e-3, kSampleRate, rng), 0);
    if (det.present(block.samples(), spec.frequency_hz)) ++detected;
  }
  row.detect_rate = static_cast<double>(detected) / kTrials;

  // (b) Steady-tone selectivity: one 90 dB tone fills the whole block
  // (no onset inside it); residual off-slot detections are pure window
  // sidelobes.
  std::size_t spurious_steady = 0;
  for (int t = 0; t < kTrials; ++t) {
    audio::ToneSpec spec;
    spec.frequency_hz = plan.frequency(dev, 20);
    spec.amplitude = audio::spl_to_amplitude(90.0) * 2.0;
    spec.duration_s = 0.06;
    spec.fade_s = 0.0;
    spec.phase_rad = rng.uniform(0.0, 6.28);
    const auto sound = audio::make_tone(spec, kSampleRate);
    const auto block = sound.slice(0, static_cast<std::size_t>(0.05 * kSampleRate));
    const auto tones = det.detect(block.samples());
    for (const auto& tone : tones) {
      const auto hit = plan.identify(tone.frequency_hz);
      if (hit && hit->symbol != 20) ++spurious_steady;
    }
  }
  row.spurious_steady = static_cast<double>(spurious_steady) / kTrials;

  // (c) Keyed-tone splatter: the tone starts mid-block with a hard 2 ms
  // fade — the transient lands inside the analysis window.
  std::size_t spurious_keyed = 0;
  for (int t = 0; t < kTrials; ++t) {
    audio::ToneSpec spec;
    spec.frequency_hz = plan.frequency(dev, 20);
    spec.amplitude = audio::spl_to_amplitude(90.0) * 2.0;
    spec.duration_s = 0.03;
    spec.fade_s = 0.002;
    spec.phase_rad = rng.uniform(0.0, 6.28);
    audio::Waveform block(kSampleRate,
                          static_cast<std::size_t>(0.05 * kSampleRate));
    block.mix_at(audio::make_tone(spec, kSampleRate),
                 static_cast<std::size_t>(0.012 * kSampleRate));
    const auto tones = det.detect(block.samples());
    for (const auto& tone : tones) {
      const auto hit = plan.identify(tone.frequency_hz);
      if (hit && hit->symbol != 20) ++spurious_keyed;
    }
  }
  row.spurious_keyed = static_cast<double>(spurious_keyed) / kTrials;
  return row;
}

}  // namespace

int main() {
  bench::print_header("Ablation (detector design)",
                      "window choice: sensitivity vs slot selectivity");

  struct Case {
    const char* name;
    dsp::WindowKind kind;
  };
  const std::vector<Case> cases{
      {"rectangular", dsp::WindowKind::kRectangular},
      {"hann", dsp::WindowKind::kHann},
      {"hamming", dsp::WindowKind::kHamming},
      {"blackman", dsp::WindowKind::kBlackman},
  };

  std::printf("\n%14s %16s %18s %18s\n", "window", "detect @70 dB",
              "spurious (steady)", "spurious (keyed)");
  double blackman_steady = 1e9, rect_steady = 0.0;
  double blackman_detect = 0.0, blackman_keyed = 0.0;
  for (const auto& c : cases) {
    const Row r = measure(c.kind);
    std::printf("%14s %16.2f %18.2f %18.2f\n", c.name, r.detect_rate,
                r.spurious_steady, r.spurious_keyed);
    if (c.kind == dsp::WindowKind::kBlackman) {
      blackman_steady = r.spurious_steady;
      blackman_detect = r.detect_rate;
      blackman_keyed = r.spurious_keyed;
    }
    if (c.kind == dsp::WindowKind::kRectangular) {
      rect_steady = r.spurious_steady;
    }
  }

  bench::print_claim(
      "Blackman keeps full sensitivity at the paper's tone levels",
      blackman_detect >= 0.95);
  bench::print_claim(
      "for steady tones, Blackman's sidelobes stay below the detection "
      "floor while rectangular leaks into other slots (the default's "
      "justification)",
      blackman_steady == 0.0 && rect_steady > 0.0);
  bench::print_claim(
      "hard-keyed onsets splatter regardless of window — emission-side "
      "fades (the Pi bridge's job) are required, not optional",
      blackman_keyed > 1.0);
  return 0;
}
