// Fig 2b: "CDF of FFT processing time" — wall-clock latency of the tone
// detector's FFT over ~50 ms microphone samples.  The paper reports
// ~90% of samples processed in 0.35 ms or less.
//
// This is the one figure that is a genuine compute measurement, so it is
// driven by google-benchmark and additionally prints the measured CDF.
// The latency CDF is not bench-local bookkeeping: ToneDetector::detect
// records every call into the "dsp/fft/wall_ns" histogram of the obs
// registry, and this bench renders the CDF straight from that histogram.
//
// The bench also replays the same blocks through an *unplanned* replica
// of the seed detector (per-call sin/cos twiddles, promote-to-complex,
// per-call buffers) into "dsp/fft_unplanned/wall_ns", so every run
// reports the planned-vs-unplanned p50/p90 side by side and claims the
// plan layer's >= 2x speedup next to the paper's 0.35 ms claim.
//
// It dumps the registry as Prometheus text and the per-call spans as
// Chrome trace_event JSON (chrome://tracing / Perfetto).  Pass --smoke
// for CI: fewer samples, gbenchmark skipped, exit code 1 when any claim
// diverges.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>

#include "audio/audio.h"
#include "bench_util.h"
#include "dsp/dsp.h"
#include "mdn/tone_detector.h"
#include "obs/obs.h"

namespace {

constexpr double kSampleRate = 48000.0;

mdn::audio::Waveform sample_block(std::uint64_t seed) {
  // A realistic 50 ms microphone block: one tone over room noise.
  mdn::audio::Rng rng(seed);
  mdn::audio::ToneSpec spec;
  spec.frequency_hz = 500.0 + 20.0 * static_cast<double>(seed % 100);
  spec.amplitude = 0.1;
  spec.duration_s = 0.05;
  auto block = mdn::audio::make_tone(spec, kSampleRate);
  block.mix_at(
      mdn::audio::make_white_noise(0.05, 0.01, kSampleRate, rng), 0);
  return block;
}

// The seed's per-call FFT pipeline, kept here as the bench baseline:
// allocate, promote to complex, transform with per-call sin/cos twiddle
// computation (fft_radix2_inplace), then single-sided amplitudes and
// peak picking — what ToneDetector::detect cost before the plan layer.
std::vector<mdn::core::DetectedTone> detect_unplanned(
    std::span<const double> block, std::span<const double> window,
    const mdn::core::ToneDetectorConfig& cfg, mdn::obs::Histogram* hist) {
  mdn::obs::ScopedTimerNs timer(hist);
  const std::size_t n = std::min(block.size(), cfg.fft_size);
  std::vector<mdn::dsp::Complex> data(cfg.fft_size);
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = mdn::dsp::Complex{block[i] * window[i], 0.0};
  }
  mdn::dsp::fft_radix2_inplace(data, false);

  const double gain =
      mdn::dsp::window_coherent_gain(window.first(n));
  std::vector<double> spectrum(cfg.fft_size / 2 + 1);
  for (std::size_t k = 0; k < spectrum.size(); ++k) {
    const double scale = (k == 0 || k == spectrum.size() - 1) ? 1.0 : 2.0;
    spectrum[k] = scale * std::abs(data[k]) / gain;
  }
  const auto peaks = mdn::dsp::find_peaks(spectrum, cfg.sample_rate,
                                          cfg.fft_size, cfg.min_amplitude);
  std::vector<mdn::core::DetectedTone> tones;
  tones.reserve(peaks.size());
  for (const auto& p : peaks) {
    tones.push_back({p.frequency_hz, p.amplitude});
  }
  return tones;
}

void BM_FftRadix2_4096(benchmark::State& state) {
  // Seed path: per-call twiddle computation inside the transform.
  std::vector<mdn::dsp::Complex> data(4096);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = {std::sin(0.01 * static_cast<double>(i)), 0.0};
  }
  for (auto _ : state) {
    auto copy = data;
    mdn::dsp::fft_radix2_inplace(copy, false);
    benchmark::DoNotOptimize(copy);
  }
}
BENCHMARK(BM_FftRadix2_4096);

void BM_FftPlanned_4096(benchmark::State& state) {
  // Planned path: cached twiddles + bit-reversal table, no allocation.
  const auto plan = mdn::dsp::PlanCache::global().complex_plan(4096);
  std::vector<mdn::dsp::Complex> data(4096);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = {std::sin(0.01 * static_cast<double>(i)), 0.0};
  }
  std::vector<mdn::dsp::Complex> work(4096);
  for (auto _ : state) {
    std::copy(data.begin(), data.end(), work.begin());
    plan->execute(work);
    benchmark::DoNotOptimize(work.data());
  }
}
BENCHMARK(BM_FftPlanned_4096);

void BM_RealFftPlanned_4096(benchmark::State& state) {
  // The detector's actual transform: packed-real planned FFT.
  const auto plan = mdn::dsp::PlanCache::global().real_plan(4096);
  std::vector<double> input(4096);
  for (std::size_t i = 0; i < input.size(); ++i) {
    input[i] = std::sin(0.01 * static_cast<double>(i));
  }
  std::vector<mdn::dsp::Complex> bins(plan->bins());
  std::vector<mdn::dsp::Complex> scratch(plan->scratch_size());
  for (auto _ : state) {
    plan->execute(input, bins, scratch);
    benchmark::DoNotOptimize(bins.data());
  }
}
BENCHMARK(BM_RealFftPlanned_4096);

void BM_DetectorBlock50ms(benchmark::State& state) {
  mdn::core::ToneDetectorConfig cfg;
  cfg.sample_rate = kSampleRate;
  mdn::core::ToneDetector detector(cfg);
  const auto block = sample_block(7);
  std::vector<mdn::core::DetectedTone> tones;
  for (auto _ : state) {
    detector.detect_into(block.samples(), tones);
    benchmark::DoNotOptimize(tones.data());
  }
}
BENCHMARK(BM_DetectorBlock50ms);

int run_cdf(int samples) {
  mdn::bench::print_header(
      "Figure 2b", "CDF of FFT processing time over ~50 ms samples");

  mdn::core::ToneDetectorConfig cfg;
  cfg.sample_rate = kSampleRate;
  mdn::core::ToneDetector detector(cfg);
  const auto window =
      mdn::dsp::make_window(cfg.window, cfg.fft_size);

  // Plan build + this thread's scratch growth happen before timing;
  // warm_up() records nothing, so the histogram holds steady state only.
  detector.warm_up();
  // Drop whatever the google-benchmark warm-up recorded so the histogram
  // holds exactly this measurement run.
  auto& registry = mdn::obs::Registry::global();
  registry.reset();
  auto& unplanned_hist = registry.histogram("dsp/fft_unplanned/wall_ns");

  // Per-call spans on a standalone tracer; the pseudo-timeline places
  // block i at its microphone time (i hops of 50 ms).
  mdn::obs::Tracer tracer;
  tracer.enable();
  const auto track = tracer.track("dsp/detector");

  constexpr std::int64_t kHopNs = 50'000'000;
  std::vector<mdn::core::DetectedTone> tones;
  for (int i = 0; i < samples; ++i) {
    const auto block = sample_block(static_cast<std::uint64_t>(i));
    {
      mdn::obs::TraceSpan span(&tracer, "detect", track, i * kHopNs);
      detector.detect_into(block.samples(), tones);
      benchmark::DoNotOptimize(tones.data());
    }
    // Same block through the seed-replica path for the trajectory claim.
    auto baseline = detect_unplanned(block.samples(), window, cfg,
                                     &unplanned_hist);
    benchmark::DoNotOptimize(baseline);
  }

  // Render the CDF from the registry histogram the detector fed.
  const auto hist = registry.histogram("dsp/fft/wall_ns").snapshot();
  const auto base = unplanned_hist.snapshot();
  constexpr double kMs = 1e6;  // ns per ms
  std::printf("\n%14s %14s\n", "latency (ms)", "CDF");
  for (const auto& [x, f] : hist.curve(20)) {
    std::printf("%14.4f %14.3f\n", x / kMs, f);
  }
  const double p50 = hist.quantile(0.5);
  const double p90 = hist.quantile(0.9);
  const double base_p50 = base.quantile(0.5);
  const double base_p90 = base.quantile(0.9);
  mdn::bench::print_kv("samples", static_cast<double>(hist.count), "");
  mdn::bench::print_kv("p50", p50 / kMs, "ms");
  mdn::bench::print_kv("p90", p90 / kMs, "ms");
  mdn::bench::print_kv("p99", hist.quantile(0.99) / kMs, "ms");
  mdn::bench::print_kv("fraction <= 0.35 ms", hist.cdf(0.35 * kMs), "");
  mdn::bench::print_kv("unplanned p50", base_p50 / kMs, "ms");
  mdn::bench::print_kv("unplanned p90", base_p90 / kMs, "ms");
  mdn::bench::print_kv("p50 speedup", base_p50 / p50, "x");
  mdn::bench::print_kv("p90 speedup", base_p90 / p90, "x");

  mdn::bench::print_claim(
      "~90% of ~50 ms samples processed in 0.35 ms or less",
      hist.cdf(0.35 * kMs) >= 0.9);
  mdn::bench::print_claim(
      "planned FFT p50 at least 2x faster than the unplanned seed path",
      base_p50 >= 2.0 * p50 && p50 > 0.0);

  // Observability artifacts next to the figure output.
  const std::string prom = "bench_fig2b_fft_latency.prom";
  const std::string trace = "bench_fig2b_fft_latency.trace.json";
  if (mdn::obs::write_file(prom,
                           mdn::obs::to_prometheus(registry.snapshot()))) {
    std::printf("\nwrote %s\n", prom.c_str());
  }
  if (mdn::obs::write_file(trace, mdn::obs::to_chrome_trace(tracer))) {
    std::printf("wrote %s (load in chrome://tracing or ui.perfetto.dev)\n",
                trace.c_str());
  }
  mdn::bench::write_json("bench_fig2b_fft_latency.bench.json");

  int diverged = 0;
  for (const auto& claim : mdn::bench::detail::report().claims) {
    if (!claim.held) ++diverged;
  }
  return diverged;
}

}  // namespace

int main(int argc, char** argv) {
  // --smoke: CI mode — skip the gbenchmark timing loops, run a reduced
  // CDF sample count and fail the process when a claim diverges.
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      break;
    }
  }
  benchmark::Initialize(&argc, argv);
  if (!smoke) {
    benchmark::RunSpecifiedBenchmarks();
  }
  const int diverged = run_cdf(smoke ? 400 : 2000);
  return smoke && diverged > 0 ? 1 : 0;
}
