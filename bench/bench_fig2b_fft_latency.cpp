// Fig 2b: "CDF of FFT processing time" — wall-clock latency of the tone
// detector's FFT over ~50 ms microphone samples.  The paper reports
// ~90% of samples processed in 0.35 ms or less.
//
// This is the one figure that is a genuine compute measurement, so it is
// driven by google-benchmark and additionally prints the measured CDF.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "audio/audio.h"
#include "bench_util.h"
#include "dsp/dsp.h"
#include "mdn/tone_detector.h"

namespace {

constexpr double kSampleRate = 48000.0;

mdn::audio::Waveform sample_block(std::uint64_t seed) {
  // A realistic 50 ms microphone block: one tone over room noise.
  mdn::audio::Rng rng(seed);
  mdn::audio::ToneSpec spec;
  spec.frequency_hz = 500.0 + 20.0 * static_cast<double>(seed % 100);
  spec.amplitude = 0.1;
  spec.duration_s = 0.05;
  auto block = mdn::audio::make_tone(spec, kSampleRate);
  block.mix_at(
      mdn::audio::make_white_noise(0.05, 0.01, kSampleRate, rng), 0);
  return block;
}

void BM_FftRadix2_4096(benchmark::State& state) {
  std::vector<mdn::dsp::Complex> data(4096);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = {std::sin(0.01 * static_cast<double>(i)), 0.0};
  }
  for (auto _ : state) {
    auto copy = data;
    mdn::dsp::fft_radix2_inplace(copy, false);
    benchmark::DoNotOptimize(copy);
  }
}
BENCHMARK(BM_FftRadix2_4096);

void BM_DetectorBlock50ms(benchmark::State& state) {
  mdn::core::ToneDetectorConfig cfg;
  cfg.sample_rate = kSampleRate;
  mdn::core::ToneDetector detector(cfg);
  const auto block = sample_block(7);
  for (auto _ : state) {
    auto tones = detector.detect(block.samples());
    benchmark::DoNotOptimize(tones);
  }
}
BENCHMARK(BM_DetectorBlock50ms);

void print_cdf() {
  mdn::bench::print_header(
      "Figure 2b", "CDF of FFT processing time over ~50 ms samples");

  mdn::core::ToneDetectorConfig cfg;
  cfg.sample_rate = kSampleRate;
  mdn::core::ToneDetector detector(cfg);

  mdn::dsp::Ecdf latency_ms;
  constexpr int kSamples = 2000;
  for (int i = 0; i < kSamples; ++i) {
    const auto block = sample_block(static_cast<std::uint64_t>(i));
    const auto t0 = std::chrono::steady_clock::now();
    auto tones = detector.detect(block.samples());
    const auto t1 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(tones);
    latency_ms.add(std::chrono::duration<double, std::milli>(t1 - t0).count());
  }

  std::printf("\n%14s %14s\n", "latency (ms)", "CDF");
  for (const auto& [x, f] : latency_ms.curve(20)) {
    std::printf("%14.4f %14.3f\n", x, f);
  }
  mdn::bench::print_kv("p50", latency_ms.quantile(0.5), "ms");
  mdn::bench::print_kv("p90", latency_ms.quantile(0.9), "ms");
  mdn::bench::print_kv("p99", latency_ms.quantile(0.99), "ms");
  mdn::bench::print_kv("fraction <= 0.35 ms", latency_ms.cdf(0.35), "");

  mdn::bench::print_claim(
      "~90% of ~50 ms samples processed in 0.35 ms or less",
      latency_ms.cdf(0.35) >= 0.9);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_cdf();
  return 0;
}
