// Fig 2b: "CDF of FFT processing time" — wall-clock latency of the tone
// detector's FFT over ~50 ms microphone samples.  The paper reports
// ~90% of samples processed in 0.35 ms or less.
//
// This is the one figure that is a genuine compute measurement, so it is
// driven by google-benchmark and additionally prints the measured CDF.
// The latency CDF is not bench-local bookkeeping: ToneDetector::detect
// records every call into the "dsp/fft/wall_ns" histogram of the obs
// registry, and this bench renders the CDF straight from that histogram.
// It also dumps the registry as Prometheus text and the per-call spans
// as Chrome trace_event JSON (chrome://tracing / Perfetto).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "audio/audio.h"
#include "bench_util.h"
#include "dsp/dsp.h"
#include "mdn/tone_detector.h"
#include "obs/obs.h"

namespace {

constexpr double kSampleRate = 48000.0;

mdn::audio::Waveform sample_block(std::uint64_t seed) {
  // A realistic 50 ms microphone block: one tone over room noise.
  mdn::audio::Rng rng(seed);
  mdn::audio::ToneSpec spec;
  spec.frequency_hz = 500.0 + 20.0 * static_cast<double>(seed % 100);
  spec.amplitude = 0.1;
  spec.duration_s = 0.05;
  auto block = mdn::audio::make_tone(spec, kSampleRate);
  block.mix_at(
      mdn::audio::make_white_noise(0.05, 0.01, kSampleRate, rng), 0);
  return block;
}

void BM_FftRadix2_4096(benchmark::State& state) {
  std::vector<mdn::dsp::Complex> data(4096);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = {std::sin(0.01 * static_cast<double>(i)), 0.0};
  }
  for (auto _ : state) {
    auto copy = data;
    mdn::dsp::fft_radix2_inplace(copy, false);
    benchmark::DoNotOptimize(copy);
  }
}
BENCHMARK(BM_FftRadix2_4096);

void BM_DetectorBlock50ms(benchmark::State& state) {
  mdn::core::ToneDetectorConfig cfg;
  cfg.sample_rate = kSampleRate;
  mdn::core::ToneDetector detector(cfg);
  const auto block = sample_block(7);
  for (auto _ : state) {
    auto tones = detector.detect(block.samples());
    benchmark::DoNotOptimize(tones);
  }
}
BENCHMARK(BM_DetectorBlock50ms);

void print_cdf() {
  mdn::bench::print_header(
      "Figure 2b", "CDF of FFT processing time over ~50 ms samples");

  mdn::core::ToneDetectorConfig cfg;
  cfg.sample_rate = kSampleRate;
  mdn::core::ToneDetector detector(cfg);

  // Drop whatever the google-benchmark warm-up recorded so the histogram
  // holds exactly this measurement run.
  auto& registry = mdn::obs::Registry::global();
  registry.reset();

  // Per-call spans on a standalone tracer; the pseudo-timeline places
  // block i at its microphone time (i hops of 50 ms).
  mdn::obs::Tracer tracer;
  tracer.enable();
  const auto track = tracer.track("dsp/detector");

  constexpr int kSamples = 2000;
  constexpr std::int64_t kHopNs = 50'000'000;
  for (int i = 0; i < kSamples; ++i) {
    const auto block = sample_block(static_cast<std::uint64_t>(i));
    mdn::obs::TraceSpan span(&tracer, "detect", track, i * kHopNs);
    auto tones = detector.detect(block.samples());
    benchmark::DoNotOptimize(tones);
  }

  // Render the CDF from the registry histogram the detector fed.
  const auto hist =
      registry.histogram("dsp/fft/wall_ns").snapshot();
  constexpr double kMs = 1e6;  // ns per ms
  std::printf("\n%14s %14s\n", "latency (ms)", "CDF");
  for (const auto& [x, f] : hist.curve(20)) {
    std::printf("%14.4f %14.3f\n", x / kMs, f);
  }
  mdn::bench::print_kv("samples", static_cast<double>(hist.count), "");
  mdn::bench::print_kv("p50", hist.quantile(0.5) / kMs, "ms");
  mdn::bench::print_kv("p90", hist.quantile(0.9) / kMs, "ms");
  mdn::bench::print_kv("p99", hist.quantile(0.99) / kMs, "ms");
  mdn::bench::print_kv("fraction <= 0.35 ms", hist.cdf(0.35 * kMs), "");

  mdn::bench::print_claim(
      "~90% of ~50 ms samples processed in 0.35 ms or less",
      hist.cdf(0.35 * kMs) >= 0.9);

  // Observability artifacts next to the figure output.
  const std::string prom = "bench_fig2b_fft_latency.prom";
  const std::string trace = "bench_fig2b_fft_latency.trace.json";
  if (mdn::obs::write_file(prom,
                           mdn::obs::to_prometheus(registry.snapshot()))) {
    std::printf("\nwrote %s\n", prom.c_str());
  }
  if (mdn::obs::write_file(trace, mdn::obs::to_chrome_trace(tracer))) {
    std::printf("wrote %s (load in chrome://tracing or ui.perfetto.dev)\n",
                trace.c_str());
  }
  mdn::bench::write_json("bench_fig2b_fft_latency.bench.json");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_cdf();
  return 0;
}
