// Ablation of the paper's 300 ms queue-sampling period (§6 uses `tc`
// every 300 ms): congestion-detection latency vs acoustic overhead as
// the period sweeps from 100 ms to 1.2 s.
//
// Latency is measured from the instant the queue first crosses the
// 75-packet congested threshold to the moment the MDN listener hears the
// band-2 tone; overhead is the number of tones the switch sings per
// second of experiment.
#include <cstdio>
#include <vector>

#include "audio/audio.h"
#include "bench_util.h"
#include "mdn/mdn.h"
#include "mp/mp.h"
#include "net/net.h"

namespace {

using namespace mdn;
constexpr double kSampleRate = 48000.0;

struct Result {
  double crossing_s = -1.0;   // queue first exceeds 75
  double heard_s = -1.0;      // listener hears band 2
  double tones_per_s = 0.0;
};

Result run(net::SimTime period) {
  net::Network net;
  audio::AcousticChannel channel(kSampleRate);
  core::FrequencyPlan plan({.base_hz = 500.0, .spacing_hz = 100.0});

  auto& sw = net.add_switch("s1");
  auto& h1 = net.add_host("h1", net::make_ipv4(10, 0, 0, 1));
  auto& h2 = net.add_host("h2", net::make_ipv4(10, 0, 0, 2));
  net::LinkSpec fast;
  fast.rate_bps = 1e9;
  net::LinkSpec slow;
  slow.rate_bps = 8e6;
  slow.queue_capacity = 300;
  net.connect(h1, sw, fast);
  const std::size_t out = net.connect(h2, sw, slow);
  net::FlowEntry fwd;
  fwd.priority = 1;
  fwd.actions = {net::Action::output(out)};
  sw.flow_table().add(fwd, 0);

  const auto spk = channel.add_source("s1-speaker", 0.5);
  mp::PiSpeakerBridge bridge(net.loop(), channel, spk);
  mp::MpEmitter emitter(net.loop(), bridge, 0);
  core::MdnController::Config ccfg;
  ccfg.detector.sample_rate = kSampleRate;
  core::MdnController controller(net.loop(), channel, ccfg);

  const auto dev = plan.add_device("s1", 3);
  core::QueueToneConfig qcfg;
  qcfg.port_index = out;
  qcfg.period = period;
  core::QueueToneReporter reporter(sw, emitter, plan, dev, qcfg);

  Result r;
  controller.watch(plan.frequency(dev, 2), [&](const core::ToneEvent& ev) {
    if (r.heard_s < 0.0) r.heard_s = ev.time_s;
  });
  // Find the true crossing time from the queue itself: sample densely
  // on the side (does not sing).
  net.loop().schedule_periodic(
      net::kMillisecond, net::kMillisecond, [&] {
        if (r.crossing_s < 0.0 && sw.port(out).backlog() > 75) {
          r.crossing_s = net::to_seconds(net.loop().now());
        }
        return net.loop().now() < net::from_seconds(6.0);
      });

  reporter.start();
  controller.start();

  net::SourceConfig scfg;
  scfg.flow = {h1.ip(), h2.ip(), 40000, 80, net::IpProto::kTcp};
  scfg.start = net::kSecond;
  scfg.stop = net::from_seconds(6.0);
  net::CbrSource source(h1, scfg, 1300.0);
  source.start();

  net.loop().schedule_at(net::from_seconds(6.0), [&] {
    controller.stop();
    reporter.stop();
  });
  net.loop().run();

  r.tones_per_s = static_cast<double>(bridge.played()) / 6.0;
  return r;
}

}  // namespace

int main() {
  bench::print_header("Ablation (§6 parameter)",
                      "congestion-detection latency vs queue-sampling "
                      "period (paper: 300 ms)");

  const std::vector<net::SimTime> periods{
      100 * net::kMillisecond, 200 * net::kMillisecond,
      300 * net::kMillisecond, 600 * net::kMillisecond,
      1200 * net::kMillisecond};

  std::printf("\n%14s %16s %16s %14s\n", "period (ms)", "crossing (s)",
              "heard (s)", "tones/s");
  double latency_300 = -1.0, latency_1200 = -1.0;
  for (const auto p : periods) {
    const Result r = run(p);
    const double latency =
        r.heard_s >= 0.0 && r.crossing_s >= 0.0 ? r.heard_s - r.crossing_s
                                                : -1.0;
    std::printf("%14lld %16.3f %16.3f %14.2f\n",
                static_cast<long long>(p / net::kMillisecond), r.crossing_s,
                r.heard_s, r.tones_per_s);
    if (p == 300 * net::kMillisecond) latency_300 = latency;
    if (p == 1200 * net::kMillisecond) latency_1200 = latency;
  }

  bench::print_claim(
      "at the paper's 300 ms period, congestion is heard within ~one "
      "period of the queue crossing the threshold",
      latency_300 >= 0.0 && latency_300 <= 0.45);
  bench::print_claim(
      "longer sampling periods trade fewer tones for slower detection",
      latency_1200 > latency_300);
  return 0;
}
