// Worker-pool scaling for the streaming detection runtime (mdn::rt).
//
// The paper's controller decodes one microphone inline (§3: one FFT per
// ~50 ms hop).  This bench feeds the same pre-recorded block schedule to
// (a) a single-threaded reference loop and (b) the StreamRuntime at
// several worker counts, then reports:
//
//   * equivalence — the merged event stream must be *identical* to the
//     serial stream (every field, every event, every worker count), and
//   * throughput — wall-clock speedup over the serial loop per worker
//     count, carried in the .bench.json claims under a "threads" key.
//
// --smoke: CI mode — reduced workload, exit non-zero when any claim
// diverges.  The ≥2× @ 4 workers claim needs ≥ 4 hardware threads and is
// skipped (with a note) on smaller machines; equivalence is always
// enforced.
//
// --journal: run with the flight-recorder journal enabled and every
// tone block tagged with a ground-truth emission record.  Provenance
// must be pure metadata — the merged stream stays identical to the
// serial reference (StreamEvent identity excludes the cause and ingest
// ids), so the equivalence claims must hold in this mode too.  The
// LatencyProfiler then attributes every detection chain to capture and
// ring-wait stages, and the per-stage histograms must come out
// byte-identical at every worker count.
#include <array>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <numbers>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "dsp/simd.h"
#include "obs/journal.h"
#include "obs/latency.h"
#include "rt/rt.h"

namespace {

constexpr double kSampleRate = 48000.0;
constexpr std::size_t kBlockSize = 2400;  // 50 ms hop
constexpr std::size_t kMics = 8;
constexpr double kHopS = 0.05;

using mdn::rt::StreamEvent;

// Each mic cycles tone bursts of "its" frequency: 3 hops on, 5 off,
// phase-shifted per mic so onsets land on every mic and collide on
// equal hops across mics.
bool tone_on(std::uint32_t mic, std::uint64_t hop) {
  return (hop + 2 * mic) % 8 < 3;
}

std::vector<double> make_block(std::uint32_t mic, std::uint64_t hop,
                               const std::vector<double>& watch) {
  std::vector<double> v(kBlockSize, 0.0);
  if (!tone_on(mic, hop)) return v;
  const double freq = watch[mic % watch.size()];
  for (std::size_t i = 0; i < kBlockSize; ++i) {
    v[i] = 0.2 * std::sin(2.0 * std::numbers::pi * freq *
                          static_cast<double>(i) / kSampleRate);
  }
  return v;
}

mdn::rt::StreamRuntimeConfig runtime_config(std::size_t workers) {
  mdn::rt::StreamRuntimeConfig cfg;
  cfg.workers = workers;
  cfg.ring_capacity = 64;
  cfg.detector.sample_rate = kSampleRate;
  cfg.detector.block_size = kBlockSize;
  cfg.watch_hz = {800.0, 820.0, 840.0, 860.0};
  return cfg;
}

/// The single-threaded paper path: detect + match every block in
/// (hop, mic) order, exactly like MdnController::tick does inline.
std::vector<StreamEvent> serial_run(
    const std::vector<std::vector<std::vector<double>>>& blocks,
    const mdn::rt::StreamRuntimeConfig& cfg, double* wall_ms) {
  const mdn::core::ToneDetector detector(cfg.detector);
  // Plan build + first-execute costs (milliseconds) land here, not in
  // the timed loop — mirroring StreamRuntime::start()'s worker warm-up
  // so serial and parallel walls measure the same steady state.
  detector.warm_up();
  std::vector<std::vector<char>> active(
      kMics, std::vector<char>(cfg.watch_hz.size(), 0));
  std::vector<StreamEvent> events;
  std::vector<mdn::core::DetectedTone> tones;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t hop = 0; hop < blocks.size(); ++hop) {
    for (std::uint32_t mic = 0; mic < kMics; ++mic) {
      detector.detect_into(blocks[hop][mic], tones);
      for (std::size_t w = 0; w < cfg.watch_hz.size(); ++w) {
        double best_amp = 0.0;
        bool found = false;
        for (const auto& t : tones) {
          if (std::abs(t.frequency_hz - cfg.watch_hz[w]) <=
              detector.config().match_tolerance_hz) {
            found = true;
            best_amp = std::max(best_amp, t.amplitude);
          }
        }
        if (found && active[mic][w] == 0) {
          events.push_back({hop, mic, static_cast<std::uint32_t>(w),
                            static_cast<double>(hop) * kHopS, cfg.watch_hz[w],
                            best_amp});
        }
        active[mic][w] = found ? 1 : 0;
      }
    }
  }
  *wall_ms = std::chrono::duration<double, std::milli>(
                 std::chrono::steady_clock::now() - t0)
                 .count();
  return events;
}

std::vector<StreamEvent> runtime_run(
    const std::vector<std::vector<std::vector<double>>>& blocks,
    std::size_t workers, bool journal_on, std::uint64_t* tagged,
    double* wall_ms) {
  mdn::rt::StreamRuntime runtime(runtime_config(workers));
  for (std::size_t m = 0; m < kMics; ++m) {
    runtime.add_mic("mic-" + std::to_string(m));
  }
  runtime.start();
  mdn::obs::Journal& journal = mdn::obs::Journal::global();
  const auto& watch = runtime.config().watch_hz;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t hop = 0; hop < blocks.size(); ++hop) {
    for (std::uint32_t mic = 0; mic < kMics; ++mic) {
      std::array<mdn::audio::EmissionTag, 1> tags;
      std::size_t ntags = 0;
      if (journal_on && tone_on(mic, hop)) {
        // Ground-truth emission record at the tone's start: detections
        // cite it, so the profiler can attribute capture vs ring wait.
        mdn::obs::JournalRecord rec;
        rec.kind = mdn::obs::JournalKind::kToneEmitted;
        rec.sim_ns = static_cast<std::int64_t>(hop) * 50'000'000;
        rec.frequency_hz = watch[mic % watch.size()];
        rec.mic = mic;
        mdn::obs::set_journal_label(rec, "bench_tone");
        tags[0] = {journal.append(rec), rec.frequency_hz};
        ntags = 1;
        if (tagged != nullptr) ++*tagged;
      }
      runtime.submit_block(
          mic, static_cast<double>(hop) * kHopS, blocks[hop][mic],
          std::span<const mdn::audio::EmissionTag>(tags.data(), ntags));
    }
  }
  runtime.finish();
  *wall_ms = std::chrono::duration<double, std::milli>(
                 std::chrono::steady_clock::now() - t0)
                 .count();
  return runtime.events();
}

bool identical(const std::vector<StreamEvent>& a,
               const std::vector<StreamEvent>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!(a[i] == b[i])) return false;
  }
  return true;
}

int run(bool smoke, bool journal_on) {
  const std::uint64_t hops = smoke ? 60 : 240;
  const unsigned hw = std::thread::hardware_concurrency();

  if (journal_on) {
    mdn::obs::Journal::global().enable(std::size_t{1} << 16);
  }

  mdn::bench::print_header(
      "rt scaling",
      "parallel streaming runtime vs the single-threaded controller path");
  std::printf("mics=%zu hops=%llu block=%zu hardware_threads=%u%s%s\n",
              kMics, static_cast<unsigned long long>(hops), kBlockSize, hw,
              smoke ? " (smoke)" : "", journal_on ? " (journal on)" : "");
  std::printf("simd dispatch: %s\n",
              mdn::dsp::simd::isa_name(mdn::dsp::simd::active_isa()));
  // Machine capability rides in the report so bench_compare.py can tell
  // "claim skipped on a small machine" apart from "claim vanished".
  mdn::bench::print_kv("hardware_threads", static_cast<double>(hw), "");

  // Pre-record every block so producers cost the same in every run.
  const auto cfg = runtime_config(1);
  std::vector<std::vector<std::vector<double>>> blocks(hops);
  for (std::uint64_t hop = 0; hop < hops; ++hop) {
    blocks[hop].reserve(kMics);
    for (std::uint32_t mic = 0; mic < kMics; ++mic) {
      blocks[hop].push_back(make_block(mic, hop, cfg.watch_hz));
    }
  }

  double serial_ms = 0.0;
  const auto reference = serial_run(blocks, cfg, &serial_ms);
  mdn::bench::print_kv("events (serial reference)",
                       static_cast<double>(reference.size()));
  mdn::bench::print_kv("serial wall", serial_ms, "ms");

  const std::vector<std::size_t> worker_counts{1, 2, 4, 7};
  std::vector<std::vector<double>> rows;
  std::uint64_t tagged = 0;
  std::string stage_prom_ref;
  bool stages_identical = true;
  mdn::obs::LatencyProfiler profiler(mdn::obs::Journal::global());
  for (std::size_t workers : worker_counts) {
    if (journal_on) mdn::obs::Journal::global().clear();
    double wall_ms = 0.0;
    tagged = 0;
    const auto events =
        runtime_run(blocks, workers, journal_on, &tagged, &wall_ms);
    const bool equal = identical(events, reference);
    if (journal_on) {
      // Re-attribute from scratch per worker count: the per-stage
      // families must be byte-identical regardless of parallelism.
      profiler.clear();
      profiler.profile(mdn::obs::JournalKind::kToneDetected);
      const std::string prom = profiler.to_prometheus();
      if (stage_prom_ref.empty()) stage_prom_ref = prom;
      stages_identical = stages_identical && prom == stage_prom_ref;
    }
    const double speedup = wall_ms > 0.0 ? serial_ms / wall_ms : 0.0;
    rows.push_back({static_cast<double>(workers), wall_ms, speedup,
                    equal ? 1.0 : 0.0});
    mdn::bench::print_kv(
        "runtime wall @ " + std::to_string(workers) + " workers", wall_ms,
        "ms");
    mdn::bench::print_claim_at(
        "merged event stream identical to the serial controller path",
        equal, static_cast<int>(workers));
  }
  mdn::bench::print_series(
      "scaling", {"workers", "wall_ms", "speedup", "identical"}, rows);

  // Throughput claim: meaningful only with real parallel hardware.  The
  // merge order being deterministic, equivalence above already covers
  // correctness on any machine.
  double speedup4 = 0.0;
  for (const auto& row : rows) {
    if (row[0] == 4.0) speedup4 = row[2];
  }
  mdn::bench::print_kv("speedup @ 4 workers", speedup4, "x");
  if (hw >= 4) {
    mdn::bench::print_claim_at(
        "4-worker runtime at least 2x faster than the serial path",
        speedup4 >= 2.0, 4);
  } else {
    std::printf(
        "note: %u hardware thread(s) < 4 — speedup claim skipped "
        "(measured %.2fx)\n",
        hw, speedup4);
  }

  if (journal_on) {
    mdn::obs::Journal& journal = mdn::obs::Journal::global();
    mdn::bench::print_kv("journal records (last run)",
                         static_cast<double>(journal.size()));
    mdn::bench::print_kv("tagged tone blocks",
                         static_cast<double>(tagged));
    mdn::bench::print_claim(
        "journal minted emission + ingest records per tagged block and "
        "one detection per merged event",
        journal.size() == reference.size() + 2 * tagged);

    // Stage attribution: every detection chain decomposes into capture
    // (tone start -> block end, exactly one 50 ms hop here) plus the
    // ring wait, and the histograms are parallelism-independent.
    const auto capture =
        profiler.stage_stats(mdn::obs::LatencyStage::kCapture);
    const auto ring_wait =
        profiler.stage_stats(mdn::obs::LatencyStage::kRingWait);
    mdn::bench::print_kv("stage capture p99", capture.p99_ns / 1e6, "ms");
    mdn::bench::print_kv("stage ring_wait p99", ring_wait.p99_ns / 1e6,
                         "ms");
    mdn::bench::print_claim(
        "stage attribution covers capture and ring wait for every "
        "merged event",
        capture.count == reference.size() &&
            ring_wait.count == reference.size());
    mdn::bench::print_claim(
        "per-stage latency histograms byte-identical at every worker "
        "count",
        stages_identical);
    journal.disable();
    journal.clear();
  }

  mdn::bench::write_json("rt_scaling.bench.json");
  std::printf("wrote rt_scaling.bench.json\n");

  int diverged = 0;
  for (const auto& claim : mdn::bench::detail::report().claims) {
    if (!claim.held) ++diverged;
  }
  return diverged;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool journal_on = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--journal") == 0) {
      journal_on = true;
    } else {
      std::fprintf(stderr,
                   "bench_rt_scaling: unknown argument '%s'\n"
                   "usage: bench_rt_scaling [--smoke] [--journal]\n",
                   argv[i]);
      return 2;
    }
  }
  return run(smoke, journal_on);
}
