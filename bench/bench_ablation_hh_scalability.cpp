// Ablation: heavy-hitter bin scalability — the §5 caveat, quantified.
//
// "There may be thousands of active flows per minute ... we do not claim
// that Music-Defined Telemetry is a scalable replacement."  With F
// background flows hashed into B frequency bins, collisions put mice
// into the elephant's bin (false attribution) and mice pile into shared
// bins (false alerts).  This sweep measures both against flow count.
#include <cstdio>
#include <vector>

#include "audio/audio.h"
#include "bench_util.h"
#include "mdn/mdn.h"
#include "mp/mp.h"
#include "net/net.h"

namespace {

using namespace mdn;
constexpr double kSampleRate = 48000.0;
constexpr std::size_t kBins = 32;

struct Outcome {
  bool elephant_alerted = false;
  std::size_t false_alert_bins = 0;   // alerted bins not the elephant's
  std::size_t colliding_mice = 0;     // mice sharing the elephant's bin
};

Outcome run(std::size_t mouse_flows) {
  net::Network net;
  audio::AcousticChannel channel(kSampleRate);
  net::Host* h1 = nullptr;
  net::Host* h2 = nullptr;
  auto switches = net::build_chain(net, 1, &h1, &h2);

  core::FrequencyPlan plan({.base_hz = 2000.0, .spacing_hz = 20.0});
  const auto dev = plan.add_device("s1", kBins);
  const auto spk = channel.add_source("spk", 0.5);
  mp::PiSpeakerBridge bridge(net.loop(), channel, spk);
  mp::MpEmitter emitter(net.loop(), bridge, 100 * net::kMillisecond);

  core::MdnController::Config ccfg;
  ccfg.detector.sample_rate = kSampleRate;
  core::MdnController controller(net.loop(), channel, ccfg);

  core::HeavyHitterConfig cfg;
  cfg.window_s = 2.0;
  cfg.threshold = 12;
  core::HeavyHitterReporter reporter(*switches[0], emitter, plan, dev,
                                     cfg);
  core::HeavyHitterDetector detector(controller, plan, dev, cfg);
  controller.start();

  // One elephant at 75% of the traffic, `mouse_flows` mice sharing the
  // rest.
  const net::FlowKey elephant{h1->ip(), h2->ip(), 41000, 80,
                              net::IpProto::kTcp};
  std::vector<net::FlowMixSource::WeightedFlow> flows{
      {elephant, 3.0 * static_cast<double>(mouse_flows)}};
  Outcome o;
  const std::size_t elephant_bin = reporter.bin_for(elephant);
  for (std::size_t m = 0; m < mouse_flows; ++m) {
    net::FlowKey mouse{h1->ip(), h2->ip(),
                       static_cast<std::uint16_t>(42000 + m),
                       static_cast<std::uint16_t>(1024 + m),
                       net::IpProto::kTcp};
    if (reporter.bin_for(mouse) == elephant_bin) ++o.colliding_mice;
    flows.push_back({mouse, 1.0});
  }
  net::FlowMixSource mix(*h1, flows, 400.0, 0, net::from_seconds(6.0),
                         /*seed=*/mouse_flows + 1);
  mix.start();

  net.loop().schedule_at(net::from_seconds(6.5),
                         [&] { controller.stop(); });
  net.loop().run();

  for (const auto& alert : detector.alerts()) {
    if (alert.bin == elephant_bin) {
      o.elephant_alerted = true;
    } else {
      ++o.false_alert_bins;
    }
  }
  return o;
}

}  // namespace

int main() {
  bench::print_header("Ablation (§5 scalability)",
                      "heavy-hitter attribution vs number of competing "
                      "flows (32 bins)");

  const std::vector<std::size_t> flow_counts{4, 16, 64, 256};
  std::printf("\n%14s %16s %18s %18s\n", "mouse flows", "elephant found",
              "false-alert bins", "mice in its bin");
  bool found_small = false;
  std::size_t false_small = 1, collisions_large = 0;
  for (std::size_t f : flow_counts) {
    const Outcome o = run(f);
    std::printf("%14zu %16s %18zu %18zu\n", f,
                o.elephant_alerted ? "yes" : "NO", o.false_alert_bins,
                o.colliding_mice);
    if (f == 4) {
      found_small = o.elephant_alerted;
      false_small = o.false_alert_bins;
    }
    if (f == 256) collisions_large = o.colliding_mice;
  }

  bench::print_claim(
      "small networks (few flows) get clean attribution — the paper's "
      "suggested deployment regime",
      found_small && false_small == 0);
  bench::print_claim(
      "with hundreds of flows, hash collisions put mice into the "
      "elephant's bin — the §5 scalability caveat is real",
      collisions_large > 0);
  return 0;
}
