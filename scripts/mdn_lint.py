#!/usr/bin/env python3
"""Static contract linter for the MDN tree: real-time purity + determinism.

Two contracts that the test suite checks stochastically at runtime are
enforced here over the whole tree on every CI run:

Real-time purity
    Functions annotated ``MDN_REALTIME`` (src/common/annotations.h) are
    the audio hot path: ToneDetector::detect_into / detect_batch_into /
    set_levels_into, FftPlan::execute / execute_batch_soa,
    RealFftPlan::execute_batch, the SIMD kernel dispatch
    (simd::active_kernels), GoertzelBank evaluation, RingBuffer
    push/pop, Journal::append, WorkerPool batch processing
    (process_batch), the MicSignalEstimator health hooks
    (begin_block / observe_watch / end_block / queue_alert) and the
    metrics-timeline sampling hook (Timeline::sample — it runs inside
    the event loop's periodic callback, so it must stay pure relaxed
    loads plus array stores into its preallocated ring).  The
    linter builds
    a call graph from the sources and *transitively* rejects calls to
    allocation, locking, I/O and throwing-STL entry points reachable
    from an annotated function.  Deliberate exceptions (a bounded
    mutex on the journal, grow-once scratch buffers, precondition
    guards) are declared in scripts/mdn_lint_allowlist.txt with a
    reason each.

Determinism
    The canonical artifacts (journal.jsonl, bench JSON, .prom exports)
    are byte-identical across runs and worker counts.  The linter bans
    the constructs that silently break that — rand()/srand()/
    random_device, wall clocks (system_clock/steady_clock/
    high_resolution_clock), getenv(), time() — everywhere under src/,
    and bans unordered-container iteration in the exporter layer
    (src/obs), again modulo the allowlist.

Memory orders
    Every *weaker-than-seq_cst* atomic operation under src/ must carry
    an adjacent ``// mo: <why>`` justification (same line or within the
    two lines above) *and* match an allowlisted ``(file, op, order)``
    tuple in scripts/mdn_lint_allowlist.txt — so a relaxed load can
    never silently appear on a new code path: adding one forces both a
    written rationale at the site and an allowlist diff in review.

Lock order
    Builds the mutex-acquisition graph from ``MDN_ACQUIRED_BEFORE`` /
    ``MDN_ACQUIRED_AFTER`` annotations (declared edges) plus observed
    ``MutexLock`` nesting inside each function body, and fails on any
    cycle — the static complement to the model checker's per-schedule
    deadlock detection (src/common/check.h).

Front ends
    When the ``clang.cindex`` bindings are importable the linter uses
    libclang to locate annotated functions and function extents from
    the AST (exact, macro-expanded).  Otherwise it falls back to a
    built-in comment/string-stripping scanner with namespace/class
    brace tracking — no dependencies beyond the standard library, so
    the lint runs identically in the bare container and in CI.  Banned
    tokens are matched over function bodies by both front ends.

Usage:
    mdn_lint.py [--compdb BUILDDIR] [--root DIR] [--allowlist FILE]
                [--only realtime|determinism|memory-order|lock-order]
                [--memory-order] [--lock-order] [files...]

When the default src/ glob is scanned, every allowlist entry must be
*used* by the run — an entry excusing a violation that no longer exists
is reported as stale and fails the lint, so the allowlist can only
shrink.

Exit status: 0 clean, 1 violations found, 2 usage/parse error.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import re
import sys

# ---------------------------------------------------------------------------
# Banned entry points, by contract category.

BANNED_ALLOC = {
    "malloc", "calloc", "realloc", "free", "aligned_alloc", "strdup",
    "posix_memalign", "make_unique", "make_shared", "push_back",
    "emplace_back", "emplace", "resize", "reserve", "insert", "assign",
    "shrink_to_fit", "to_string", "substr", "stringstream",
    "ostringstream",
}
BANNED_LOCK = {
    "lock", "unlock", "try_lock", "lock_guard", "unique_lock",
    "scoped_lock", "MutexLock", "condition_variable", "wait",
    "notify_one", "notify_all", "sleep_for", "sleep_until", "yield",
}
BANNED_IO = {
    "printf", "fprintf", "vfprintf", "puts", "fputs", "putchar",
    "fwrite", "fread", "fopen", "fclose", "fflush", "scanf", "fscanf",
    "getline", "cout", "cerr", "cin", "clog", "endl", "ofstream",
    "ifstream", "fstream", "write_file", "system",
}
BANNED_THROW = {
    "at", "stoi", "stol", "stoll", "stoul", "stoull", "stod", "stof",
}
# Keyword-level bans need their own regexes (they are not call syntax).
KEYWORD_BANS = [
    ("alloc", re.compile(r"\bnew\b")),
    ("throw", re.compile(r"\bthrow\b(?!\s*;?\s*$)")),
    # RAII lock declarations: `std::lock_guard<std::mutex> g(mu)` keeps
    # the type name away from the `(` so the call regex misses it.
    ("lock", re.compile(
        r"\b(lock_guard|unique_lock|scoped_lock|shared_lock|MutexLock)\b")),
]

REALTIME_BAN_CATEGORY = {}
for _name in BANNED_ALLOC:
    REALTIME_BAN_CATEGORY[_name] = "alloc"
for _name in BANNED_LOCK:
    REALTIME_BAN_CATEGORY[_name] = "lock"
for _name in BANNED_IO:
    REALTIME_BAN_CATEGORY[_name] = "io"
for _name in BANNED_THROW:
    REALTIME_BAN_CATEGORY[_name] = "throw"

# Tokens whose presence anywhere in src/ breaks run-to-run determinism.
DETERMINISM_BANS = [
    ("rand", re.compile(r"\brand\s*\(")),
    ("srand", re.compile(r"\bsrand\s*\(")),
    ("random_device", re.compile(r"\brandom_device\b")),
    ("system_clock", re.compile(r"\bsystem_clock\b")),
    ("steady_clock", re.compile(r"\bsteady_clock\b")),
    ("high_resolution_clock", re.compile(r"\bhigh_resolution_clock\b")),
    ("getenv", re.compile(r"\bgetenv\b")),
    ("time", re.compile(r"\bstd::time\s*\(|\btime\s*\(\s*(?:NULL|nullptr|0)\s*\)")),
]
# Exporters must iterate ordered containers only; canonical artifact
# bytes must not depend on hash-table layout.
UNORDERED_BAN = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\b")

# Call-graph recursion skips names that are ubiquitous accessors — they
# resolve to many unrelated definitions and none allocate.
BORING_CALLEES = {
    "size", "empty", "value", "count", "capacity", "config", "data",
    "begin", "end", "bins", "scratch_size", "frequencies_hz",
    "sample_rate", "enabled", "c_str", "load", "store", "fetch_add",
    "fetch_sub", "compare_exchange_weak", "compare_exchange_strong",
    "min", "max", "abs", "clamp", "fill", "copy", "copy_n", "move",
    "swap", "front", "back", "clear", "span", "first", "subspan",
    "get", "inc", "add", "set", "record", "name", "mic_count",
    "watch_count",
}
CONTROL_KEYWORDS = {
    "if", "for", "while", "switch", "return", "catch", "sizeof",
    "alignof", "alignas", "decltype", "noexcept", "static_assert",
    "defined", "assert",
}

H_EXT = (".h", ".hpp", ".hh")
CPP_EXT = (".cpp", ".cc", ".cxx") + H_EXT


# ---------------------------------------------------------------------------
# Source model shared by both front ends.

class FunctionDef:
    """One function definition: qualified name, file, line and body."""

    def __init__(self, qual_name, file, line, body):
        self.qual_name = qual_name      # e.g. mdn::core::ToneDetector::detect_into
        self.file = file
        self.line = line
        self.body = body                # comment/string-stripped body text

    @property
    def simple_name(self):
        return self.qual_name.rsplit("::", 1)[-1]


class Violation:
    def __init__(self, contract, file, line, function, token, reason,
                 path=()):
        self.contract = contract        # "realtime" | "determinism"
        self.file = file
        self.line = line
        self.function = function        # containing function ("" for file scope)
        self.token = token
        self.reason = reason
        self.path = path                # annotated root -> ... -> function

    def render(self, root):
        rel = os.path.relpath(self.file, root)
        where = f"{rel}:{self.line}"
        chain = " -> ".join(self.path) if self.path else self.function
        scope = f" [{chain}]" if chain else ""
        return f"{where}: {self.contract}: {self.reason}{scope}"


def strip_code(text):
    """Removes comments and string/char literals, preserving newlines so
    offsets map back to line numbers."""
    out = []
    i = 0
    n = len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            if j < 0:
                break
            i = j  # keep the newline
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            if j < 0:
                break
            out.append("\n" * text.count("\n", i, j + 2))
            i = j + 2
        elif c == "R" and text[i:i + 2] == 'R"':
            m = re.match(r'R"([^(]*)\(', text[i:])
            if m:
                end = text.find(")" + m.group(1) + '"', i)
                if end < 0:
                    break
                seg = text[i:end + len(m.group(1)) + 2]
                out.append('""' + "\n" * seg.count("\n"))
                i = end + len(m.group(1)) + 2
            else:
                out.append(c)
                i += 1
        elif c == '"' or c == "'":
            quote = c
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == quote:
                    break
                j += 1
            seg = text[i:j + 1]
            out.append(quote + quote + "\n" * seg.count("\n"))
            i = j + 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


# ---------------------------------------------------------------------------
# Fallback front end: namespace/class scope tracking + definition finder.

ATTR_MACRO = re.compile(r"\bMDN_[A-Z_]+\s*(?:\([^()]*\))?")
SCOPE_OPEN = re.compile(
    r"\b(namespace|class|struct)\s+((?:[A-Za-z_]\w*\s*::\s*)*[A-Za-z_]\w*)"
    r"[^;{}()]*\{")
FUNC_DEF = re.compile(
    r"(?:^|[;{}])\s*"                                # statement boundary
    r"(?:template\s*<[^;{}]*>\s*)?"                  # template header
    r"(?:[A-Za-z_][\w:<>,*&\s]*?[\s*&])??"           # return type (optional
    r"((?:[A-Za-z_]\w*\s*::\s*)*~?[A-Za-z_]\w*)\s*"  #   for ctor/dtor)
    r"\(([^;{}]*)\)\s*"                              # parameter list
    r"((?:const|noexcept|override|final|mutable)\s*)*"
    r"(?::[^;{}]*?)?"                                # ctor initializer list
    r"\{", re.S)
REALTIME_DECL = re.compile(
    r"\bMDN_REALTIME\b"
    r"[\w:<>,*&\s~]*?"
    r"\b((?:[A-Za-z_]\w*\s*::\s*)*[A-Za-z_]\w*)\s*\(")
CALL = re.compile(r"(?<![\w:])((?:[A-Za-z_]\w*\s*::\s*)*[A-Za-z_]\w*)\s*\(")
CTOR_USE = re.compile(r"\b([A-Z]\w*)\s+[A-Za-z_]\w*\s*\(")


def _matching_brace(code, open_idx):
    depth = 0
    for k in range(open_idx, len(code)):
        if code[k] == "{":
            depth += 1
        elif code[k] == "}":
            depth -= 1
            if depth == 0:
                return k
    return -1


_PREPROC_LINE = re.compile(r"^[ \t]*#.*$", re.M)


def _blank_preprocessor(code):
    """Blanks `#...` lines (macro definitions would otherwise read as
    code — e.g. the MDN_REALTIME definition is not a realtime root)."""
    return _PREPROC_LINE.sub(lambda m: " " * len(m.group(0)), code)


def _scope_intervals(code):
    """Returns [(start, end, name, kind)] for namespace/class/struct
    bodies, outer scopes first."""
    intervals = []
    for m in SCOPE_OPEN.finditer(code):
        # "enum class" is a scope-less value list, not a class scope.
        if code[max(0, m.start() - 8):m.start()].rstrip().endswith("enum"):
            continue
        open_idx = m.end() - 1
        close = _matching_brace(code, open_idx)
        if close < 0:
            continue
        name = re.sub(r"\s+", "", m.group(2))
        intervals.append((open_idx, close, name, m.group(1)))
    return intervals


def _qualifier_at(intervals, pos):
    parts = []
    for start, end, name, _kind in intervals:
        if start < pos <= end and name != "":
            parts.append(name)
    return "::".join(parts)


class FallbackIndex:
    """Pure-Python source index: function definitions + MDN_REALTIME
    roots, resolved with brace-tracked namespace/class qualifiers."""

    def __init__(self):
        self.defs_by_name = {}      # simple name -> [FunctionDef]
        self.realtime_roots = []    # [(qual_name, file, line)]

    def add_file(self, path, text):
        stripped = _blank_preprocessor(strip_code(text))
        code = ATTR_MACRO.sub(lambda m: " " * len(m.group(0)), stripped)
        raw = stripped              # keeps MDN_REALTIME for root discovery
        intervals = _scope_intervals(code)

        for m in FUNC_DEF.finditer(code):
            name = re.sub(r"\s+", "", m.group(1))
            simple = name.rsplit("::", 1)[-1]
            if simple in CONTROL_KEYWORDS:
                continue
            open_idx = m.end() - 1
            close = _matching_brace(code, open_idx)
            if close < 0:
                continue
            qual = _qualifier_at(intervals, open_idx)
            qual_name = f"{qual}::{name}" if qual else name
            line = code.count("\n", 0, m.start(1)) + 1
            body = code[open_idx + 1:close]
            fn = FunctionDef(qual_name, path, line, body)
            self.defs_by_name.setdefault(
                simple.lstrip("~"), []).append(fn)

        for m in REALTIME_DECL.finditer(raw):
            name = re.sub(r"\s+", "", m.group(1))
            qual = _qualifier_at(intervals, m.start())
            qual_name = f"{qual}::{name}" if qual else name
            line = raw.count("\n", 0, m.start()) + 1
            self.realtime_roots.append((qual_name, path, line))


# ---------------------------------------------------------------------------
# Optional libclang front end: exact roots and extents from the AST.

def try_libclang_index(files, compdb_dir):
    """Builds the same index shape via libclang; returns None when the
    bindings (or a parsable TU set) are unavailable."""
    try:
        from clang import cindex
    except ImportError:
        return None
    try:
        index = cindex.Index.create()
    except Exception:
        return None

    result = FallbackIndex()
    args_by_file = {}
    if compdb_dir:
        try:
            db = cindex.CompilationDatabase.fromDirectory(compdb_dir)
            for f in files:
                cmds = db.getCompileCommands(f)
                if cmds:
                    args = [a for a in list(cmds[0].arguments)[1:]
                            if a != f and not a.startswith("-o")]
                    args_by_file[f] = args
        except Exception:
            pass

    def qualified(cursor):
        parts = []
        c = cursor
        while c is not None and c.kind != cindex.CursorKind.TRANSLATION_UNIT:
            if c.spelling:
                parts.append(c.spelling)
            c = c.semantic_parent
        return "::".join(reversed(parts))

    parsed_any = False
    for f in files:
        if not f.endswith(CPP_EXT) or f.endswith(H_EXT):
            continue
        args = args_by_file.get(f, ["-std=c++20", "-Isrc"])
        try:
            tu = index.parse(f, args=args)
        except Exception:
            continue
        parsed_any = True
        text = read_text(f)
        code = strip_code(text) if text else ""
        for cursor in tu.cursor.walk_preorder():
            if cursor.location.file is None:
                continue
            if cursor.kind not in (
                    cindex.CursorKind.FUNCTION_DECL,
                    cindex.CursorKind.CXX_METHOD,
                    cindex.CursorKind.FUNCTION_TEMPLATE,
                    cindex.CursorKind.CONSTRUCTOR,
                    cindex.CursorKind.DESTRUCTOR):
                continue
            is_realtime = any(
                ch.kind == cindex.CursorKind.ANNOTATE_ATTR and
                ch.spelling == "mdn_realtime"
                for ch in cursor.get_children())
            if is_realtime:
                result.realtime_roots.append(
                    (qualified(cursor), str(cursor.location.file),
                     cursor.location.line))
            if cursor.is_definition() and \
                    str(cursor.location.file) == f and code:
                ext = cursor.extent
                body = code[ext.start.offset:ext.end.offset]
                brace = body.find("{")
                if brace < 0:
                    continue
                fn = FunctionDef(qualified(cursor), f,
                                 cursor.location.line, body[brace + 1:])
                result.defs_by_name.setdefault(
                    fn.simple_name.lstrip("~"), []).append(fn)
    return result if parsed_any else None


# ---------------------------------------------------------------------------
# Allowlist.

class AllowEntry:
    """One allowlist line, with usage tracked for staleness checks."""

    def __init__(self, line_no, fields, reason):
        self.line_no = line_no
        self.fields = fields        # ("scope", "token") or
                                    # ("mo", file, op, order)
        self.reason = reason
        self.used = False

    def render(self):
        return " ".join(self.fields)


class Allowlist:
    """Entries of the form

        <scope> <token> reason=<why>
        mo <file-suffix> <op> <order> reason=<why>

    Scope is a qualified-function suffix (::-boundary) or a file-path
    suffix, token a banned name or `*`.  `mo` entries allow one
    weaker-than-seq_cst (file, op, order) tuple for the memory-order
    pass.  `reason=` is mandatory on every entry; lines without one are
    a parse error (exit 2).  Entries that a full-tree run never uses
    are reported stale and fail the lint."""

    def __init__(self, path):
        self.path = path
        self.entries = []       # scope/token entries
        self.mo_entries = []    # (file, op, order) entries
        if not path or not os.path.exists(path):
            return
        with open(path, encoding="utf-8") as fh:
            for line_no, line in enumerate(fh, start=1):
                line = line.strip()
                if not line or line.startswith("#"):
                    continue
                fields = line.split()
                reason_idx = next(
                    (i for i, f in enumerate(fields)
                     if f.startswith("reason=")), -1)
                if reason_idx < 0 or reason_idx == len(fields) - 1 and \
                        fields[reason_idx] == "reason=":
                    print(f"mdn_lint: {path}:{line_no}: allowlist entry "
                          f"without a reason= (every entry must say why)",
                          file=sys.stderr)
                    sys.exit(2)
                reason = " ".join(fields[reason_idx:])[len("reason="):]
                fields = fields[:reason_idx]
                if fields and fields[0] == "mo":
                    if len(fields) != 4:
                        print(f"mdn_lint: {path}:{line_no}: mo entry "
                              f"must be `mo <file> <op> <order> "
                              f"reason=...`", file=sys.stderr)
                        sys.exit(2)
                    self.mo_entries.append(
                        AllowEntry(line_no, tuple(fields), reason))
                elif len(fields) == 2:
                    self.entries.append(
                        AllowEntry(line_no, tuple(fields), reason))
                else:
                    print(f"mdn_lint: {path}:{line_no}: malformed "
                          f"allowlist entry: {line}", file=sys.stderr)
                    sys.exit(2)

    @staticmethod
    def _scope_matches(scope, function, file):
        if function and (function == scope or
                         function.endswith("::" + scope)):
            return True
        norm = file.replace(os.sep, "/")
        return norm == scope or norm.endswith("/" + scope)

    def allows(self, function, file, token):
        hit = False
        for entry in self.entries:
            scope, allowed = entry.fields
            if allowed not in ("*", token):
                continue
            if self._scope_matches(scope, function, file):
                entry.used = True
                hit = True
        return hit

    def allows_mo(self, file, op, order):
        norm = file.replace(os.sep, "/")
        hit = False
        for entry in self.mo_entries:
            _mo, suffix, allowed_op, allowed_order = entry.fields
            if allowed_op != op or allowed_order != order:
                continue
            if norm == suffix or norm.endswith("/" + suffix):
                entry.used = True
                hit = True
        return hit

    def stale_entries(self, include_scoped, include_mo):
        stale = []
        if include_scoped:
            stale.extend(e for e in self.entries if not e.used)
        if include_mo:
            stale.extend(e for e in self.mo_entries if not e.used)
        return stale


# ---------------------------------------------------------------------------
# Real-time check: transitive banned-call scan over the call graph.

# The model checker (src/common/check.h + scheduler) exists only under
# -DMDN_MODEL_CHECK, where every atomic/mutex op deliberately becomes a
# blocking scheduling point — the realtime contract is about the
# *normal* build, where the shim compiles to plain std::atomic and the
# scheduler is not in the call graph at all.  The text-level walker
# cannot see the #ifdef, so it skips these files explicitly (the same
# set is exempt from the memory-order audit: the shim must spell every
# order to forward them).
CHECK_SHIM_FILES = (
    "src/common/atomic.h",
    "src/common/check.h",
    "src/common/check_scheduler.cpp",
)


def _is_shim_file(path):
    norm = path.replace(os.sep, "/")
    return any(norm.endswith(e) for e in CHECK_SHIM_FILES)

def scan_body_direct(fn, allowlist, path):
    """Banned tokens appearing directly in `fn`'s body."""
    found = []
    for m in CALL.finditer(fn.body):
        simple = re.sub(r"\s+", "", m.group(1)).rsplit("::", 1)[-1]
        category = REALTIME_BAN_CATEGORY.get(simple)
        if category is None:
            continue
        if allowlist.allows(fn.qual_name, fn.file, simple):
            continue
        line = fn.line + fn.body.count("\n", 0, m.start())
        found.append(Violation(
            "realtime", fn.file, line, fn.qual_name, simple,
            f"{category} call '{simple}()' on a MDN_REALTIME path",
            path))
    for token, pattern in KEYWORD_BANS:
        for m in pattern.finditer(fn.body):
            word = fn.body[m.start():m.end()].strip()
            if allowlist.allows(fn.qual_name, fn.file, word):
                continue
            line = fn.line + fn.body.count("\n", 0, m.start())
            found.append(Violation(
                "realtime", fn.file, line, fn.qual_name, word,
                f"{token} keyword '{word}' on a MDN_REALTIME path",
                path))
    return found


def callees_of(fn):
    names = set()
    for m in CALL.finditer(fn.body):
        names.add(re.sub(r"\s+", "", m.group(1)).rsplit("::", 1)[-1])
    for m in CTOR_USE.finditer(fn.body):
        names.add(m.group(1))
    return {n for n in names
            if n not in CONTROL_KEYWORDS and n not in BORING_CALLEES}


def resolve_defs(index, root_qual, name):
    """Project definitions a call to `name` may reach.  When the root's
    class has a definition of that name, prefer it; otherwise scan every
    project definition of the name (conservative)."""
    candidates = index.defs_by_name.get(name, [])
    if not candidates:
        return []
    root_class = root_qual.rsplit("::", 2)
    if len(root_class) >= 2:
        cls = "::".join(root_class[:-1])
        same_class = [d for d in candidates
                      if d.qual_name.startswith(cls + "::")]
        if same_class:
            return same_class
    return candidates


def check_realtime(index, allowlist):
    violations = []
    seen_roots = set()
    for qual_name, file, line in index.realtime_roots:
        if qual_name in seen_roots:
            continue
        seen_roots.add(qual_name)
        simple = qual_name.rsplit("::", 1)[-1]
        defs = [d for d in index.defs_by_name.get(simple, [])
                if d.qual_name == qual_name or
                qual_name.endswith("::" + d.qual_name) or
                d.qual_name.endswith("::" + qual_name) or
                _same_tail(d.qual_name, qual_name)]
        if not defs:
            violations.append(Violation(
                "realtime", file, line, qual_name, simple,
                f"MDN_REALTIME function '{qual_name}' has no definition "
                f"the linter can see (is the .cpp in the scan set?)"))
            continue
        for d in defs:
            violations.extend(_walk(index, allowlist, d, (qual_name,),
                                    visited=set()))
    return violations


def _same_tail(a, b):
    ta = a.split("::")[-2:]
    tb = b.split("::")[-2:]
    return ta == tb


def _walk(index, allowlist, fn, path, visited, depth=0):
    if fn.qual_name in visited or depth > 8 or _is_shim_file(fn.file):
        return []
    visited.add(fn.qual_name)
    violations = scan_body_direct(fn, allowlist, path)
    for name in sorted(callees_of(fn)):
        for d in resolve_defs(index, fn.qual_name, name):
            if d.qual_name in visited:
                continue
            violations.extend(
                _walk(index, allowlist, d, path + (d.qual_name,),
                      visited, depth + 1))
    return violations


# ---------------------------------------------------------------------------
# Determinism check: per-file token scan.

def check_determinism(files, root, allowlist, extra_files):
    violations = []
    src_root = os.path.join(root, "src") + os.sep
    for path in sorted(files):
        in_src = os.path.abspath(path).startswith(src_root)
        if not in_src and path not in extra_files:
            continue
        text = read_text(path)
        if text is None:
            continue
        code = strip_code(text)
        for token, pattern in DETERMINISM_BANS:
            for m in pattern.finditer(code):
                if allowlist.allows("", path, token):
                    continue
                line = code.count("\n", 0, m.start()) + 1
                violations.append(Violation(
                    "determinism", path, line, "", token,
                    f"'{token}' breaks run-to-run determinism of the "
                    f"canonical artifacts"))
        exporter = "/obs/" in path.replace(os.sep, "/") or \
            path in extra_files
        if exporter:
            for m in UNORDERED_BAN.finditer(code):
                token = m.group(0)
                if allowlist.allows("", path, token):
                    continue
                line = code.count("\n", 0, m.start()) + 1
                violations.append(Violation(
                    "determinism", path, line, "", token,
                    f"'{token}' iteration order feeds exporters; use an "
                    f"ordered container"))
    return violations


# ---------------------------------------------------------------------------
# Memory-order audit: every weaker-than-seq_cst atomic op needs an
# adjacent `// mo:` justification and an allowlisted (file, op, order).

MEMORY_ORDER = re.compile(
    r"\bmemory_order(?:_|::\s*)(relaxed|consume|acquire|release|acq_rel)\b")
# Atomic entry points a weak order can ride on; longest names first so
# the backwards search prefers the most specific match.
ATOMIC_OPS = (
    "compare_exchange_strong", "compare_exchange_weak",
    "atomic_thread_fence", "atomic_signal_fence", "test_and_set",
    "fetch_add", "fetch_sub", "fetch_and", "fetch_or", "fetch_xor",
    "exchange", "store", "load", "clear", "wait",
)
_ATOMIC_OP_RE = re.compile(
    r"\b(" + "|".join(ATOMIC_OPS) + r")\s*\(")
MO_COMMENT = re.compile(r"//\s*mo:\s*\S")


def _blank_preprocessor_full(code):
    """Like _blank_preprocessor, but also blanks backslash-continuation
    lines so a multi-line #define never reads as code."""
    lines = code.split("\n")
    in_directive = False
    for i, line in enumerate(lines):
        starts = bool(re.match(r"[ \t]*#", line))
        if starts or in_directive:
            in_directive = line.rstrip().endswith("\\")
            lines[i] = " " * len(line)
        else:
            in_directive = False
    return "\n".join(lines)


def _op_before(code, pos):
    """The atomic entry point the order expression at `pos` belongs to:
    the closest preceding op name within the same statement."""
    window = code[max(0, pos - 300):pos]
    stop = max(window.rfind(";"), window.rfind("{"), window.rfind("}"))
    if stop >= 0:
        window = window[stop + 1:]
    last = None
    for m in _ATOMIC_OP_RE.finditer(window):
        last = m.group(1)
    return last or "?"


def check_memory_order(files, root, allowlist, extra_files):
    violations = []
    src_root = os.path.join(root, "src") + os.sep
    for path in sorted(files):
        in_src = os.path.abspath(path).startswith(src_root)
        if not in_src and path not in extra_files:
            continue
        # The shim/checker are the *mechanism* the audit rides on: they
        # must spell every order to forward and interpret them (the CAS
        # failure-order mapping, the scheduler's acquire/release
        # classifiers), so auditing them per-site is circular.
        if _is_shim_file(path):
            continue
        text = read_text(path)
        if text is None:
            continue
        raw_lines = text.split("\n")
        code = _blank_preprocessor_full(strip_code(text))
        for m in MEMORY_ORDER.finditer(code):
            order = m.group(1)
            line = code.count("\n", 0, m.start()) + 1
            op = _op_before(code, m.start())
            # Adjacent = same line or up to three lines above (weak
            # orders often sit on the continuation line of a wrapped
            # CAS statement whose mo: comment precedes the statement).
            justified = any(
                MO_COMMENT.search(raw_lines[i])
                for i in range(max(0, line - 4), min(line, len(raw_lines))))
            if not justified:
                violations.append(Violation(
                    "memory-order", path, line, "", order,
                    f"memory_order_{order} ({op}) lacks an adjacent "
                    f"'// mo: <why>' justification"))
            if not allowlist.allows_mo(path, op, order):
                violations.append(Violation(
                    "memory-order", path, line, "", f"{op}/{order}",
                    f"memory_order_{order} on '{op}' is not allowlisted "
                    f"(add `mo <file> {op} {order} reason=...` to "
                    f"scripts/mdn_lint_allowlist.txt)"))
    return violations


# ---------------------------------------------------------------------------
# Lock-order audit: acquisition graph from MDN_ACQUIRED_BEFORE/AFTER
# declarations + observed MutexLock nesting; any cycle is a potential
# deadlock.

MUTEX_LOCK_USE = re.compile(r"\bMutexLock\s+\w+\s*\(\s*([^();]+?)\s*\)")
ACQUIRED_DECL = re.compile(
    r"\b(\w+)\s+MDN_ACQUIRED_(BEFORE|AFTER)\s*\(\s*([^()]+?)\s*\)")


def _mutex_node(arg, owner_qual):
    """Canonical graph-node name for a mutex expression: bare member
    names are qualified by the owning class/namespace so `a.mu_` and
    `b.mu_` of different classes stay distinct nodes."""
    name = re.sub(r"\s+", "", arg)
    name = name.lstrip("&*")
    if name.startswith("this->"):
        name = name[len("this->"):]
    if re.fullmatch(r"[A-Za-z_]\w*", name) and owner_qual:
        return f"{owner_qual}::{name}"
    return name


def check_lock_order(files, root):
    # edges[(a, b)] = (file, line, why): a must be acquired before b.
    edges = {}

    def add_edge(a, b, file, line, why):
        if a != b:
            edges.setdefault((a, b), (file, line, why))

    for path in sorted(files):
        text = read_text(path)
        if text is None:
            continue
        stripped = _blank_preprocessor(strip_code(text))
        intervals = _scope_intervals(
            ATTR_MACRO.sub(lambda m: " " * len(m.group(0)), stripped))

        # Declared edges: `Mutex a MDN_ACQUIRED_BEFORE(b);` (and the
        # AFTER spelling, reversed).
        for m in ACQUIRED_DECL.finditer(stripped):
            owner = _qualifier_at(intervals, m.start())
            this_node = _mutex_node(m.group(1), owner)
            line = stripped.count("\n", 0, m.start()) + 1
            for other in m.group(3).split(","):
                other_node = _mutex_node(other, owner)
                if m.group(2) == "BEFORE":
                    add_edge(this_node, other_node, path, line, "declared")
                else:
                    add_edge(other_node, this_node, path, line, "declared")

        # Observed edges: a MutexLock taken while an earlier MutexLock
        # in the same body is still in scope (brace depth never dropped
        # below the earlier lock's block).
        index = FallbackIndex()
        index.add_file(path, text)
        for defs in index.defs_by_name.values():
            for fn in defs:
                locks = [(m.start(), m.end(),
                          _mutex_node(m.group(1),
                                      fn.qual_name.rsplit("::", 1)[0]
                                      if "::" in fn.qual_name else ""))
                         for m in MUTEX_LOCK_USE.finditer(fn.body)]
                for i in range(len(locks)):
                    for j in range(i + 1, len(locks)):
                        between = fn.body[locks[i][1]:locks[j][0]]
                        depth = 0
                        alive = True
                        for c in between:
                            if c == "{":
                                depth += 1
                            elif c == "}":
                                depth -= 1
                                if depth < 0:
                                    alive = False
                                    break
                        if not alive:
                            continue
                        line = fn.line + fn.body.count(
                            "\n", 0, locks[j][0])
                        add_edge(locks[i][2], locks[j][2], fn.file, line,
                                 f"nested in {fn.qual_name}")

    # Cycle detection: DFS with a recursion stack.
    graph = {}
    for (a, b) in edges:
        graph.setdefault(a, []).append(b)
    violations = []
    state = {}  # node -> 1 (in stack) | 2 (done)
    stack = []

    def visit(node):
        state[node] = 1
        stack.append(node)
        for nxt in sorted(graph.get(node, [])):
            if state.get(nxt) == 1:
                cycle = stack[stack.index(nxt):] + [nxt]
                file, line, why = edges[(node, nxt)]
                violations.append(Violation(
                    "lock-order", file, line, "", nxt,
                    f"lock-order cycle: {' -> '.join(cycle)} "
                    f"(closing edge {why})"))
            elif nxt not in state:
                visit(nxt)
        stack.pop()
        state[node] = 2

    for node in sorted(graph):
        if node not in state:
            visit(node)
    return violations


# ---------------------------------------------------------------------------
# Driver.

def read_text(path):
    try:
        with open(path, encoding="utf-8", errors="replace") as fh:
            return fh.read()
    except OSError:
        return None


def collect_files(args, root):
    files = set()
    if args.compdb:
        compdb = os.path.join(args.compdb, "compile_commands.json")
        if not os.path.exists(compdb):
            print(f"mdn_lint: no compile_commands.json in {args.compdb} "
                  f"(configure with CMAKE_EXPORT_COMPILE_COMMANDS=ON)",
                  file=sys.stderr)
            sys.exit(2)
        with open(compdb, encoding="utf-8") as fh:
            for entry in json.load(fh):
                f = os.path.normpath(
                    os.path.join(entry["directory"], entry["file"]))
                if os.path.abspath(f).startswith(root + os.sep) and \
                        "/build" not in f.replace(root, ""):
                    files.add(f)
    if not args.no_default_sources:
        for pattern in ("src/**/*.h", "src/**/*.cpp"):
            for f in glob.glob(os.path.join(root, pattern),
                               recursive=True):
                files.add(os.path.normpath(f))
    extra = set()
    for f in args.files:
        f = os.path.normpath(os.path.abspath(f))
        if not os.path.exists(f):
            print(f"mdn_lint: no such file: {f}", file=sys.stderr)
            sys.exit(2)
        files.add(f)
        extra.add(f)
    return files, extra


def main():
    parser = argparse.ArgumentParser(
        description="MDN real-time / determinism static linter")
    parser.add_argument("--compdb", metavar="BUILDDIR",
                        help="directory holding compile_commands.json")
    parser.add_argument("--root", default=None,
                        help="repository root (default: the linter's "
                        "parent directory)")
    parser.add_argument("--allowlist", default=None,
                        help="allowlist file (default: "
                        "scripts/mdn_lint_allowlist.txt)")
    parser.add_argument("--only",
                        choices=("realtime", "determinism",
                                 "memory-order", "lock-order"),
                        help="run a single contract check")
    parser.add_argument("--memory-order", action="store_true",
                        help="shorthand for --only memory-order")
    parser.add_argument("--lock-order", action="store_true",
                        help="shorthand for --only lock-order")
    parser.add_argument("--no-default-sources", action="store_true",
                        help="scan only --compdb and explicit files "
                        "(skip the src/ glob)")
    parser.add_argument("--no-libclang", action="store_true",
                        help="force the built-in parser even when "
                        "clang.cindex is importable")
    parser.add_argument("files", nargs="*",
                        help="extra files to lint (e.g. fixtures)")
    args = parser.parse_args()
    if args.memory_order and args.lock_order:
        print("mdn_lint: --memory-order and --lock-order are exclusive; "
              "run twice or use the default all-passes mode",
              file=sys.stderr)
        sys.exit(2)
    if args.memory_order:
        args.only = "memory-order"
    if args.lock_order:
        args.only = "lock-order"

    root = os.path.abspath(
        args.root or os.path.join(os.path.dirname(__file__), os.pardir))
    allowlist = Allowlist(args.allowlist or os.path.join(
        root, "scripts", "mdn_lint_allowlist.txt"))
    files, extra = collect_files(args, root)

    index = None
    if not args.no_libclang:
        index = try_libclang_index(sorted(files), args.compdb)
    if index is None:
        index = FallbackIndex()
    # The fallback scan always runs over headers (inline definitions and
    # annotated declarations live there and libclang only parses TUs).
    fallback = FallbackIndex()
    for f in sorted(files):
        text = read_text(f)
        if text is not None:
            fallback.add_file(f, text)
    if not index.realtime_roots and not index.defs_by_name:
        index = fallback
    else:
        for name, defs in fallback.defs_by_name.items():
            known = {d.qual_name for d in index.defs_by_name.get(name, [])}
            for d in defs:
                if d.qual_name not in known:
                    index.defs_by_name.setdefault(name, []).append(d)
        known_roots = {q for q, _f, _l in index.realtime_roots}
        for q, f, l in fallback.realtime_roots:
            if q not in known_roots:
                index.realtime_roots.append((q, f, l))

    violations = []
    if args.only in (None, "realtime"):
        violations.extend(check_realtime(index, allowlist))
    if args.only in (None, "determinism"):
        violations.extend(check_determinism(files, root, allowlist, extra))
    if args.only in (None, "memory-order"):
        violations.extend(check_memory_order(files, root, allowlist, extra))
    if args.only in (None, "lock-order"):
        violations.extend(check_lock_order(files, root))

    # Staleness: over a full default-source scan, an allowlist entry the
    # run never used excuses a violation that no longer exists — fail so
    # the allowlist can only shrink.  Scoped entries need both contracts
    # that consult them to have run; mo entries just the memory-order
    # pass.
    if not args.no_default_sources:
        stale = allowlist.stale_entries(
            include_scoped=args.only is None,
            include_mo=args.only in (None, "memory-order"))
        for entry in stale:
            violations.append(Violation(
                "allowlist", allowlist.path, entry.line_no, "",
                entry.render(),
                f"stale allowlist entry '{entry.render()}' — nothing in "
                f"the tree needs it any more; delete it"))

    unique = {}
    for v in violations:
        unique[(v.file, v.line, v.token, v.contract)] = v
    ordered = sorted(unique.values(),
                     key=lambda v: (v.file, v.line, v.token))
    for v in ordered:
        print(v.render(root))
    if ordered:
        print(f"mdn_lint: {len(ordered)} violation(s)", file=sys.stderr)
        return 1
    print(f"mdn_lint: clean ({len(files)} files, "
          f"{len(set(q for q, _, _ in index.realtime_roots))} "
          f"MDN_REALTIME roots)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
