#!/usr/bin/env python3
"""Bench-regression gate: diff *.bench.json runs against committed baselines.

Every bench binary writes a ``<name>.bench.json`` report (see
bench/bench_util.h) carrying the paper-claim verdicts (``claims``), the
bench's own scalar series (``kv``) and the full obs registry
(``metrics``).  This tool compares a fresh run against the checked-in
baseline under ``bench/baselines/`` and fails when the run *regressed*:

  * a claim the baseline reproduced is now missing or DIVERGED
    (matched by claim text + thread count) — always fatal;
  * a kv scalar listed in ``bench/baselines/tolerances.json`` moved
    beyond its stated tolerance — fatal, because listing a key in the
    manifest is the explicit statement that it is stable enough to gate;
  * any other shared kv scalar drifted by more than the advisory factor
    — a warning by default (timing on shared CI runners is noisy),
    fatal under ``--strict-timing``.

New claims and new kv keys never fail the gate (growth is not a
regression), and improvements (DIVERGED -> REPRODUCED) are reported as
such.

Tolerance manifest format (``tolerances.json``)::

    {
      "rt_scaling.bench.json": {
        "speedup_4_workers": {"min_ratio": 0.75},
        "serial_wall_ms":    {"max_ratio": 1.5}
      }
    }

``max_ratio`` gates lower-is-better values (candidate <= base * ratio);
``min_ratio`` gates higher-is-better values (candidate >= base * ratio).

A report whose baseline file does not exist is a hard failure: a typo'd
baseline name (or a bench renamed without ``--update``) must not pass
the gate silently.  ``--allow-missing-baseline`` restores the old skip
behaviour for bootstrap runs of brand-new benches.  Tolerance-manifest
entries naming a baseline that does not exist fail for the same reason.

Usage:
  bench_compare.py [--baseline-dir DIR] [--allow-missing-baseline]
                   [--strict-timing] [--advisory-ratio R] [--update]
                   report.bench.json [...]

``--update`` copies the given reports over their baselines instead of
comparing (the workflow for intentional claim/perf changes: run, eyeball,
update, commit).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import shutil
import sys

DEFAULT_BASELINE_DIR = pathlib.Path(__file__).resolve().parent.parent / (
    "bench/baselines"
)
TOLERANCES_FILE = "tolerances.json"


def load_report(path: pathlib.Path) -> dict:
    with open(path, encoding="utf-8") as f:
        report = json.load(f)
    for key in ("bench", "claims", "kv"):
        if key not in report:
            raise ValueError(f"{path}: not a bench report (missing '{key}')")
    return report


def claim_key(claim: dict) -> tuple:
    return (claim.get("claim", ""), claim.get("threads", -1))


def compare_claims(base: dict, cand: dict, errors: list, notes: list) -> None:
    cand_claims = {claim_key(c): c for c in cand["claims"]}
    for claim in base["claims"]:
        key = claim_key(claim)
        label = key[0] if key[1] < 0 else f"{key[0]} [T={key[1]}]"
        now = cand_claims.get(key)
        if now is None:
            if claim.get("reproduced"):
                # Thread-gated claims (e.g. "2x @ 4 workers") are only
                # emitted on machines with enough hardware threads; a
                # candidate from a smaller machine skips them by design.
                hw = cand["kv"].get("hardware_threads")
                threads = claim.get("threads", -1)
                if hw is not None and threads > 0 and float(hw) < threads:
                    notes.append(
                        f"claim skipped ({int(float(hw))} hardware "
                        f"thread(s) < {threads}): {label}"
                    )
                else:
                    errors.append(f"claim vanished: {label}")
            continue
        was, is_now = bool(claim.get("reproduced")), bool(now.get("reproduced"))
        if was and not is_now:
            errors.append(f"claim regressed (REPRODUCED -> DIVERGED): {label}")
        elif not was and is_now:
            notes.append(f"claim improved (DIVERGED -> REPRODUCED): {label}")
    for key in cand_claims.keys() - {claim_key(c) for c in base["claims"]}:
        notes.append(f"new claim (not in baseline): {key[0]}")


def compare_kv(
    base: dict,
    cand: dict,
    tolerances: dict,
    advisory_ratio: float,
    strict: bool,
    errors: list,
    warnings: list,
) -> None:
    base_kv, cand_kv = base["kv"], cand["kv"]
    for key, spec in tolerances.items():
        if key not in base_kv:
            warnings.append(f"tolerance for '{key}' but baseline lacks it")
            continue
        if key not in cand_kv:
            errors.append(f"gated kv '{key}' missing from candidate")
            continue
        b, c = float(base_kv[key]), float(cand_kv[key])
        if "max_ratio" in spec and b > 0 and c > b * float(spec["max_ratio"]):
            errors.append(
                f"kv '{key}' regressed: {c:.6g} > {b:.6g} * "
                f"{spec['max_ratio']} (lower is better)"
            )
        if "min_ratio" in spec and b > 0 and c < b * float(spec["min_ratio"]):
            errors.append(
                f"kv '{key}' regressed: {c:.6g} < {b:.6g} * "
                f"{spec['min_ratio']} (higher is better)"
            )
    for key in sorted(set(base_kv) & set(cand_kv) - set(tolerances)):
        b, c = float(base_kv[key]), float(cand_kv[key])
        if b <= 0 or c <= 0:
            continue
        ratio = max(c / b, b / c)
        if ratio > advisory_ratio:
            message = (
                f"kv '{key}' drifted {ratio:.2f}x "
                f"(baseline {b:.6g}, candidate {c:.6g})"
            )
            (errors if strict else warnings).append(message)


def compare(
    report_path: pathlib.Path,
    baseline_dir: pathlib.Path,
    tolerances: dict,
    args: argparse.Namespace,
) -> bool:
    baseline_path = baseline_dir / report_path.name
    if not baseline_path.exists():
        message = (
            f"{report_path.name}: baseline file does not exist: "
            f"{baseline_path}"
        )
        if args.allow_missing_baseline:
            print(f"skip {message} (run with --update to create one)")
            return True
        print(
            f"FAIL {message}\n"
            f"    (check the report name for typos; bless a new bench "
            f"with --update, or pass --allow-missing-baseline)"
        )
        return False

    base = load_report(baseline_path)
    cand = load_report(report_path)
    errors: list = []
    warnings: list = []
    notes: list = []
    if base["bench"] != cand["bench"]:
        errors.append(
            f"bench name changed: '{base['bench']}' -> '{cand['bench']}'"
        )
    compare_claims(base, cand, errors, notes)
    compare_kv(
        base,
        cand,
        tolerances.get(report_path.name, {}),
        args.advisory_ratio,
        args.strict_timing,
        errors,
        warnings,
    )

    status = "FAIL" if errors else "ok"
    print(f"{status} {report_path.name} vs {baseline_path}")
    for line in errors:
        print(f"    REGRESSION: {line}")
    for line in warnings:
        print(f"    warning: {line}")
    for line in notes:
        print(f"    note: {line}")
    return not errors


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Diff bench JSON reports against committed baselines."
    )
    parser.add_argument("reports", nargs="+", type=pathlib.Path)
    parser.add_argument(
        "--baseline-dir", type=pathlib.Path, default=DEFAULT_BASELINE_DIR
    )
    parser.add_argument(
        "--require-baseline",
        action="store_true",
        help="deprecated no-op: a missing baseline always fails now",
    )
    parser.add_argument(
        "--allow-missing-baseline",
        action="store_true",
        help="skip (instead of fail) reports that have no baseline yet",
    )
    parser.add_argument(
        "--strict-timing",
        action="store_true",
        help="promote advisory kv-drift warnings to failures",
    )
    parser.add_argument(
        "--advisory-ratio",
        type=float,
        default=3.0,
        help="drift factor for kv keys not in the tolerance manifest "
        "(default: 3.0)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="copy the given reports over their baselines and exit",
    )
    args = parser.parse_args()

    if args.update:
        args.baseline_dir.mkdir(parents=True, exist_ok=True)
        for report in args.reports:
            load_report(report)  # refuse to bless a malformed report
            shutil.copyfile(report, args.baseline_dir / report.name)
            print(f"updated baseline {args.baseline_dir / report.name}")
        return 0

    tolerances: dict = {}
    tolerance_path = args.baseline_dir / TOLERANCES_FILE
    if tolerance_path.exists():
        with open(tolerance_path, encoding="utf-8") as f:
            tolerances = json.load(f)

    ok = True
    # A tolerance entry naming a baseline that does not exist is a typo:
    # the gate it declares would never run.
    for name in tolerances:
        if name.startswith("__"):
            continue  # "__doc__" etc.
        if not (args.baseline_dir / name).exists():
            print(
                f"FAIL {TOLERANCES_FILE}: entry '{name}' names a baseline "
                f"file that does not exist: {args.baseline_dir / name}"
            )
            ok = False
    for report in args.reports:
        try:
            ok &= compare(report, args.baseline_dir, tolerances, args)
        except (OSError, ValueError, json.JSONDecodeError) as err:
            print(f"FAIL {report}: {err}")
            ok = False
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
