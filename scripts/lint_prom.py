#!/usr/bin/env python3
"""Prometheus text-format linter for the exporters' .prom output.

Validates the exposition-format subset mdn::obs emits:

  * metric and label names match [a-zA-Z_:][a-zA-Z0-9_:]*,
  * label values are double-quoted with only \\, \" and \n escapes,
  * sample values parse as floats (incl. +Inf/-Inf/NaN),
  * `# TYPE` lines are well-formed, name a known type, appear at most
    once per family and precede that family's samples,
  * histogram families expose _bucket/_sum/_count with an +Inf bucket
    and non-decreasing cumulative bucket counts,
  * health families (obs::Health::to_prometheus, mdn_health_*) are
    TYPE-declared, always labeled with the microphone, component-state
    samples take only the enum values 0/1/2 (OK/Degraded/Failed),
    alert counters carry a valid severity label, per-watch SNR samples
    carry a watch label, and *_total counters are non-negative,
  * latency families (obs::LatencyProfiler::to_prometheus,
    mdn_latency_*) are TYPE-declared, per-stage samples carry a stage
    label from the known pipeline-stage taxonomy, counts and seconds
    are non-negative, and per stage p50 <= p99 <= max,
  * timeline families (obs::Timeline::to_prometheus, mdn_timeline_*)
    are TYPE-declared, per-track rollups carry a track label, sample
    and drop counts are non-negative, and per track min <= max.

Usage: lint_prom.py FILE [FILE...]   (exit 1 on the first bad file)
"""

import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}
HIST_SUFFIXES = ("_bucket", "_sum", "_count")
# The families obs::Health::to_prometheus emits.  Registry-derived names
# that merely share the prefix (e.g. the health/mic/<id>/state gauge,
# sanitized to mdn_health_mic_0_state) get only the generic checks.
HEALTH_FAMILIES = {
    "mdn_health_component_state",
    "mdn_health_noise_floor",
    "mdn_health_min_snr_db",
    "mdn_health_snr_db",
    "mdn_health_onset_rate_hz",
    "mdn_health_silence_seconds",
    "mdn_health_drops_total",
    "mdn_health_alerts_total",
}
HEALTH_SEVERITIES = {"ok", "degraded", "failed"}
# The families obs::LatencyProfiler::to_prometheus emits, and the
# pipeline-stage taxonomy their stage label must come from
# (src/obs/latency.h).
LATENCY_FAMILIES = {
    "mdn_latency_stage_count",
    "mdn_latency_stage_p50_seconds",
    "mdn_latency_stage_p99_seconds",
    "mdn_latency_stage_max_seconds",
    "mdn_latency_stage_sum_seconds",
    "mdn_latency_actions_profiled",
}
LATENCY_STAGES = {
    "upstream_wait", "capture", "ring_wait", "detect", "merge",
    "fsm", "app", "actuate", "health", "drop",
}
# The families obs::Timeline::to_prometheus emits; per-track rollups
# must carry a track label.
TIMELINE_FAMILIES = {
    "mdn_timeline_samples",
    "mdn_timeline_dropped",
    "mdn_timeline_last",
    "mdn_timeline_min",
    "mdn_timeline_max",
    "mdn_timeline_rate_per_second",
}
TIMELINE_TRACK_FAMILIES = {
    "mdn_timeline_last",
    "mdn_timeline_min",
    "mdn_timeline_max",
    "mdn_timeline_rate_per_second",
}


def check_health_sample(family, labels, value, declared, errors, where):
    """Schema checks for the obs::Health exporter's metric families."""
    if family not in declared:
        errors.append(f"{where}: health family {family} lacks a TYPE line")
    if "mic" not in labels:
        errors.append(f"{where}: health sample {family} lacks a mic label")
    if family == "mdn_health_component_state" and value not in (0.0, 1.0, 2.0):
        errors.append(
            f"{where}: component_state must be 0, 1 or 2, got {value!r}")
    if family == "mdn_health_alerts_total":
        severity = labels.get("severity")
        if severity not in HEALTH_SEVERITIES:
            errors.append(
                f"{where}: alerts_total severity label must be one of "
                f"{sorted(HEALTH_SEVERITIES)}, got {severity!r}")
    if family == "mdn_health_snr_db" and "watch" not in labels:
        errors.append(f"{where}: snr_db sample lacks a watch label")
    if family.endswith("_total") and value < 0:
        errors.append(f"{where}: counter {family} is negative ({value!r})")


def check_latency_sample(family, labels, value, declared, errors, where,
                         stage_quantiles):
    """Schema checks for the obs::LatencyProfiler exporter families."""
    if family not in declared:
        errors.append(f"{where}: latency family {family} lacks a TYPE line")
    if value < 0:
        errors.append(f"{where}: latency sample {family} is negative "
                      f"({value!r})")
    if family == "mdn_latency_actions_profiled":
        if labels:
            errors.append(f"{where}: actions_profiled takes no labels")
        return
    stage = labels.get("stage")
    if stage not in LATENCY_STAGES:
        errors.append(
            f"{where}: latency sample {family} needs a stage label from "
            f"the pipeline taxonomy, got {stage!r}")
        return
    # Remember quantiles so the end-of-file pass can check the per-stage
    # ordering p50 <= p99 <= max.
    for quantile in ("p50", "p99", "max"):
        if family == f"mdn_latency_stage_{quantile}_seconds":
            stage_quantiles.setdefault(stage, {})[quantile] = value


def check_timeline_sample(family, labels, value, declared, errors, where,
                          track_extremes):
    """Schema checks for the obs::Timeline exporter families."""
    if family not in declared:
        errors.append(f"{where}: timeline family {family} lacks a TYPE line")
    if family in ("mdn_timeline_samples", "mdn_timeline_dropped"):
        if value < 0:
            errors.append(f"{where}: {family} is negative ({value!r})")
        return
    track = labels.get("track")
    if family in TIMELINE_TRACK_FAMILIES and track is None:
        errors.append(f"{where}: timeline rollup {family} lacks a track label")
        return
    for extreme in ("min", "max"):
        if family == f"mdn_timeline_{extreme}":
            track_extremes.setdefault(track, {})[extreme] = value


def parse_labels(raw, errors, where):
    """Parses `k="v",k2="v2"` (the body between braces); returns a dict."""
    labels = {}
    i = 0
    while i < len(raw):
        m = re.match(r"([a-zA-Z_][a-zA-Z0-9_]*)=\"", raw[i:])
        if not m:
            errors.append(f"{where}: bad label syntax at ...{raw[i:]!r}")
            return labels
        name = m.group(1)
        i += m.end()
        value = []
        while i < len(raw):
            c = raw[i]
            if c == "\\":
                if i + 1 >= len(raw) or raw[i + 1] not in ('\\', '"', 'n'):
                    errors.append(f"{where}: illegal escape in label {name}")
                    return labels
                value.append(raw[i : i + 2])
                i += 2
            elif c == '"':
                i += 1
                break
            else:
                value.append(c)
                i += 1
        else:
            errors.append(f"{where}: unterminated label value for {name}")
            return labels
        labels[name] = "".join(value)
        if i < len(raw):
            if raw[i] != ",":
                errors.append(f"{where}: expected ',' between labels")
                return labels
            i += 1
    return labels


def family_of(name):
    for suffix in HIST_SUFFIXES:
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def lint(path):
    errors = []
    declared = {}  # family -> type
    sampled_families = set()
    buckets = {}  # family -> list of (le, count) in file order
    stage_quantiles = {}  # stage -> {p50/p99/max: value}
    track_extremes = {}  # track -> {min/max: value}

    with open(path, "r", encoding="utf-8") as f:
        lines = f.read().split("\n")

    for lineno, line in enumerate(lines, 1):
        where = f"{path}:{lineno}"
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 2 or parts[1] not in ("TYPE", "HELP"):
                continue  # plain comment
            if parts[1] == "HELP":
                if len(parts) < 3 or not NAME_RE.match(parts[2]):
                    errors.append(f"{where}: malformed HELP line")
                continue
            if len(parts) != 4 or parts[3] not in TYPES:
                errors.append(f"{where}: malformed TYPE line: {line!r}")
                continue
            name = parts[2]
            if not NAME_RE.match(name):
                errors.append(f"{where}: illegal metric name {name!r}")
            if name in declared:
                errors.append(f"{where}: duplicate TYPE for {name}")
            if name in sampled_families:
                errors.append(f"{where}: TYPE for {name} after its samples")
            declared[name] = parts[3]
            continue

        # Sample line: name[{labels}] value [timestamp]
        m = re.match(r"^([^ {]+)(\{(.*)\})? (\S+)( \d+)?$", line)
        if not m:
            errors.append(f"{where}: unparseable sample line: {line!r}")
            continue
        name, _, labelbody, value = m.group(1), m.group(2), m.group(3), m.group(4)
        if not NAME_RE.match(name):
            errors.append(f"{where}: illegal metric name {name!r}")
        labels = parse_labels(labelbody, errors, where) if labelbody else {}
        try:
            fval = float(
                value.replace("+Inf", "inf").replace("-Inf", "-inf"))
        except ValueError:
            errors.append(f"{where}: non-numeric sample value {value!r}")
            continue

        family = family_of(name)
        sampled_families.add(family)
        if family in HEALTH_FAMILIES:
            check_health_sample(family, labels, fval, declared, errors, where)
        if family in LATENCY_FAMILIES:
            check_latency_sample(family, labels, fval, declared, errors,
                                 where, stage_quantiles)
        if family in TIMELINE_FAMILIES:
            check_timeline_sample(family, labels, fval, declared, errors,
                                  where, track_extremes)
        if declared.get(family) == "histogram" and name.endswith("_bucket"):
            if "le" not in labels:
                errors.append(f"{where}: histogram bucket without le label")
            else:
                buckets.setdefault((family, tuple(
                    sorted((k, v) for k, v in labels.items() if k != "le")
                )), []).append((labels["le"], float(
                    value.replace("+Inf", "inf"))))

    for stage, q in stage_quantiles.items():
        if "p50" in q and "p99" in q and q["p50"] > q["p99"]:
            errors.append(f"{path}: latency stage {stage} has p50 > p99 "
                          f"({q['p50']!r} > {q['p99']!r})")
        if "p99" in q and "max" in q and q["p99"] > q["max"]:
            errors.append(f"{path}: latency stage {stage} has p99 > max "
                          f"({q['p99']!r} > {q['max']!r})")
    for track, ex in track_extremes.items():
        if "min" in ex and "max" in ex and ex["min"] > ex["max"]:
            errors.append(f"{path}: timeline track {track} has min > max "
                          f"({ex['min']!r} > {ex['max']!r})")

    for (family, _), series in buckets.items():
        if not any(le == "+Inf" for le, _ in series):
            errors.append(f"{path}: histogram {family} lacks an +Inf bucket")
        counts = [c for _, c in series]
        if counts != sorted(counts):
            errors.append(
                f"{path}: histogram {family} buckets not cumulative")

    return errors


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    status = 0
    for path in argv[1:]:
        errors = lint(path)
        if errors:
            status = 1
            for e in errors:
                print(e, file=sys.stderr)
        else:
            print(f"{path}: OK")
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv))
