// Umbrella header for the mdn_mp library.
#pragma once

#include "mp/bridge.h"
#include "mp/message.h"
