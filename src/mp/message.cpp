#include "mp/message.h"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace mdn::mp {
namespace {

constexpr std::uint8_t kMagic[4] = {'M', 'P', '0', '1'};

void put16(std::vector<std::uint8_t>& b, std::uint16_t v) {
  b.push_back(static_cast<std::uint8_t>(v >> 8));
  b.push_back(static_cast<std::uint8_t>(v));
}

void put32(std::vector<std::uint8_t>& b, std::uint32_t v) {
  b.push_back(static_cast<std::uint8_t>(v >> 24));
  b.push_back(static_cast<std::uint8_t>(v >> 16));
  b.push_back(static_cast<std::uint8_t>(v >> 8));
  b.push_back(static_cast<std::uint8_t>(v));
}

std::uint16_t get16(const std::uint8_t* p) noexcept {
  return static_cast<std::uint16_t>((p[0] << 8) | p[1]);
}

std::uint32_t get32(const std::uint8_t* p) noexcept {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) | p[3];
}

template <typename T>
T clamp_round(double v, double scale, T max_value) noexcept {
  const double scaled = std::round(v * scale);
  if (scaled <= 0.0) return 0;
  if (scaled >= static_cast<double>(max_value)) return max_value;
  return static_cast<T>(scaled);
}

}  // namespace

std::uint16_t internet_checksum(
    std::span<const std::uint8_t> bytes) noexcept {
  std::uint32_t sum = 0;
  std::size_t i = 0;
  for (; i + 1 < bytes.size(); i += 2) {
    sum += static_cast<std::uint32_t>((bytes[i] << 8) | bytes[i + 1]);
  }
  if (i < bytes.size()) sum += static_cast<std::uint32_t>(bytes[i] << 8);
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum);
}

std::vector<std::uint8_t> marshal(const MpMessage& msg) {
  std::vector<std::uint8_t> wire;
  wire.reserve(kWireSize);
  wire.insert(wire.end(), std::begin(kMagic), std::end(kMagic));
  put16(wire, msg.sequence);
  put32(wire, clamp_round<std::uint32_t>(msg.frequency_hz, 100.0,
                                         0xffffffffu));
  put16(wire, clamp_round<std::uint16_t>(msg.duration_s, 1000.0, 0xffff));
  put16(wire,
        clamp_round<std::uint16_t>(msg.intensity_db_spl, 10.0, 0xffff));
  put16(wire, internet_checksum(wire));
  return wire;
}

std::optional<MpMessage> unmarshal(std::span<const std::uint8_t> wire,
                                   MpError* error) {
  const auto fail = [&](MpError e) -> std::optional<MpMessage> {
    if (error) *error = e;
    return std::nullopt;
  };
  if (wire.size() < kWireSize) return fail(MpError::kTruncated);
  if (std::memcmp(wire.data(), kMagic, sizeof kMagic) != 0) {
    return fail(MpError::kBadMagic);
  }
  const std::uint16_t expected = get16(wire.data() + 14);
  if (internet_checksum(wire.first(14)) != expected) {
    return fail(MpError::kBadChecksum);
  }

  MpMessage msg;
  msg.sequence = get16(wire.data() + 4);
  msg.frequency_hz = static_cast<double>(get32(wire.data() + 6)) / 100.0;
  msg.duration_s = static_cast<double>(get16(wire.data() + 10)) / 1000.0;
  msg.intensity_db_spl =
      static_cast<double>(get16(wire.data() + 12)) / 10.0;
  if (msg.frequency_hz <= 0.0 || msg.duration_s <= 0.0) {
    return fail(MpError::kFieldRange);
  }
  if (error) *error = MpError::kNone;
  return msg;
}

}  // namespace mdn::mp
