// Music Protocol (MP) message and wire format.
//
// Per §3 of the paper, the modified Zodiac FX firmware sends the attached
// Raspberry Pi an MP message whose payload carries "the frequency at which
// we want to play the sound, its duration and intensity (volume)".  The
// switch's 120 KB of RAM forced the authors onto the lwIP raw API, so the
// format is deliberately tiny and fixed-size:
//
//   offset  size  field
//   0       4     magic "MP01"
//   4       2     sequence number        (big-endian)
//   6       4     frequency, centi-Hz    (big-endian)
//   10      2     duration, milliseconds (big-endian)
//   12      2     intensity, deci-dB SPL (big-endian)
//   14      2     Internet checksum over bytes [0, 14)
//
// 16 bytes total.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace mdn::mp {

inline constexpr std::size_t kWireSize = 16;

struct MpMessage {
  double frequency_hz = 440.0;
  double duration_s = 0.05;
  double intensity_db_spl = 60.0;
  std::uint16_t sequence = 0;

  bool operator==(const MpMessage&) const = default;
};

enum class MpError {
  kNone,
  kTruncated,
  kBadMagic,
  kBadChecksum,
  kFieldRange,
};

/// Encodes a message into its 16-byte wire form.  Values are clamped to
/// the encodable ranges (frequency <= ~42.9 MHz, duration <= 65.535 s,
/// intensity in [0, 6553.5] dB).
std::vector<std::uint8_t> marshal(const MpMessage& msg);

/// Decodes a wire buffer.  Returns nullopt and sets `error` (if given)
/// on any malformation.
std::optional<MpMessage> unmarshal(std::span<const std::uint8_t> wire,
                                   MpError* error = nullptr);

/// RFC 1071 Internet checksum (ones' complement sum of 16-bit words).
std::uint16_t internet_checksum(std::span<const std::uint8_t> bytes) noexcept;

}  // namespace mdn::mp
