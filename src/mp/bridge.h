// Pi/speaker bridge and switch-side tone emitter.
//
// In the paper's testbed (Fig 1), each switch owns a Raspberry Pi wired to
// a cheap speaker: firmware marshals an MP message, the Pi unmarshals it
// and keys a tone.  PiSpeakerBridge is that Pi; MpEmitter is the firmware
// hook, with the rate policing a 120 KB-RAM device needs so back-to-back
// events cannot queue unbounded sound.
#pragma once

#include <cstdint>
#include <span>

#include "audio/channel.h"
#include "mp/message.h"
#include "net/event_loop.h"
#include "obs/journal.h"
#include "obs/metrics.h"

namespace mdn::mp {

class PiSpeakerBridge {
 public:
  /// `source` must have been registered on `channel`; `processing_delay`
  /// models the Pi's receive-decode-play latency.
  PiSpeakerBridge(net::EventLoop& loop, audio::AcousticChannel& channel,
                  audio::SourceId source,
                  net::SimTime processing_delay = 2 * net::kMillisecond);

  /// Delivers a marshaled MP wire buffer (the lwIP path).  Malformed
  /// buffers are counted and ignored.
  void on_wire(std::span<const std::uint8_t> wire);

  /// Delivers an already-decoded message.
  void play(const MpMessage& msg);

  /// Scopes this bridge's kToneEmitted records to one microphone.  By
  /// default emissions carry no mic and the scoreboard treats them as
  /// ground truth for every mic (single-room semantics); a fleet bridge
  /// tags its room's mic so other rooms don't score its tones as misses.
  void set_journal_mic(std::uint32_t mic) noexcept { journal_mic_ = mic; }

  std::uint64_t played() const noexcept { return played_; }
  std::uint64_t malformed() const noexcept { return malformed_; }
  MpError last_error() const noexcept { return last_error_; }

 private:
  net::EventLoop& loop_;
  audio::AcousticChannel& channel_;
  audio::SourceId source_;
  net::SimTime processing_delay_;
  std::uint32_t journal_mic_ = obs::kJournalNoMic;
  std::uint64_t played_ = 0;
  std::uint64_t malformed_ = 0;
  MpError last_error_ = MpError::kNone;
  obs::Counter* played_counter_;
  obs::Counter* malformed_counter_;
};

/// Switch-side emitter: builds MP messages, marshals them and hands the
/// wire bytes to the bridge (exactly the firmware -> Pi path).  Enforces a
/// minimum gap between emissions so a packet burst cannot produce an
/// unbounded tone pile-up.
class MpEmitter {
 public:
  MpEmitter(net::EventLoop& loop, PiSpeakerBridge& bridge,
            net::SimTime min_gap = 0);

  /// Emits a tone now (subject to the rate police).  Returns false when
  /// suppressed by the minimum-gap policy.
  bool emit(double frequency_hz, double duration_s, double intensity_db_spl);

  std::uint64_t emitted() const noexcept { return emitted_; }
  std::uint64_t suppressed() const noexcept { return suppressed_; }

 private:
  net::EventLoop& loop_;
  PiSpeakerBridge& bridge_;
  net::SimTime min_gap_;
  net::SimTime last_emit_ = -1;
  std::uint16_t next_sequence_ = 0;
  std::uint64_t emitted_ = 0;
  std::uint64_t suppressed_ = 0;
  obs::Counter* emitted_counter_;
  obs::Counter* suppressed_counter_;
};

}  // namespace mdn::mp
