#include "mp/bridge.h"
#include <algorithm>

#include "audio/synth.h"
#include "obs/journal.h"

namespace mdn::mp {

PiSpeakerBridge::PiSpeakerBridge(net::EventLoop& loop,
                                 audio::AcousticChannel& channel,
                                 audio::SourceId source,
                                 net::SimTime processing_delay)
    : loop_(loop),
      channel_(channel),
      source_(source),
      processing_delay_(processing_delay),
      played_counter_(
          &obs::Registry::global().counter("mp/bridge/tones_played")),
      malformed_counter_(
          &obs::Registry::global().counter("mp/bridge/malformed")) {}

void PiSpeakerBridge::on_wire(std::span<const std::uint8_t> wire) {
  MpError err = MpError::kNone;
  const auto msg = unmarshal(wire, &err);
  if (!msg) {
    ++malformed_;
    malformed_counter_->inc();
    last_error_ = err;
    return;
  }
  play(*msg);
}

void PiSpeakerBridge::play(const MpMessage& msg) {
  audio::ToneSpec spec;
  spec.frequency_hz = msg.frequency_hz;
  spec.duration_s = msg.duration_s;
  spec.amplitude = audio::spl_to_amplitude(msg.intensity_db_spl);
  // Generous raised-cosine fades: a tone whose onset or offset lands
  // inside a listening block would otherwise splatter energy across the
  // 20 Hz frequency grid and register as other devices' symbols.
  spec.fade_s = std::min(0.015, msg.duration_s / 3.0);
  const double start_s =
      net::to_seconds(loop_.now() + processing_delay_);
  obs::Journal& journal = obs::Journal::global();
  if (journal.enabled()) {
    // Ground truth for the scoreboard: this exact tone left this
    // speaker at this sim time.  The minted id rides the emission so
    // detections (and rt drops) can cite it.
    obs::JournalRecord record;
    record.kind = obs::JournalKind::kToneEmitted;
    record.sim_ns = loop_.now() + processing_delay_;
    record.frequency_hz = msg.frequency_hz;
    record.value = msg.intensity_db_spl;
    record.aux = source_;
    record.mic = journal_mic_;
    obs::set_journal_label(record, channel_.source_name(source_));
    const audio::EmissionTag tag{journal.append(record), msg.frequency_hz};
    channel_.emit(source_, audio::make_tone(spec, channel_.sample_rate()),
                  start_s, tag);
  } else {
    channel_.emit(source_, audio::make_tone(spec, channel_.sample_rate()),
                  start_s);
  }
  ++played_;
  played_counter_->inc();
}

MpEmitter::MpEmitter(net::EventLoop& loop, PiSpeakerBridge& bridge,
                     net::SimTime min_gap)
    : loop_(loop),
      bridge_(bridge),
      min_gap_(min_gap),
      emitted_counter_(&obs::Registry::global().counter("mp/emitter/emitted")),
      suppressed_counter_(
          &obs::Registry::global().counter("mp/emitter/suppressed")) {}

bool MpEmitter::emit(double frequency_hz, double duration_s,
                     double intensity_db_spl) {
  const net::SimTime now = loop_.now();
  if (last_emit_ >= 0 && now - last_emit_ < min_gap_) {
    ++suppressed_;
    suppressed_counter_->inc();
    return false;
  }
  last_emit_ = now;

  MpMessage msg;
  msg.frequency_hz = frequency_hz;
  msg.duration_s = duration_s;
  msg.intensity_db_spl = intensity_db_spl;
  msg.sequence = next_sequence_++;
  // Marshal/unmarshal round trip on purpose: experiments exercise the
  // same wire path the firmware uses.
  bridge_.on_wire(marshal(msg));
  ++emitted_;
  emitted_counter_->inc();
  return true;
}

}  // namespace mdn::mp
