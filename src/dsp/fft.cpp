#include "dsp/fft.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace mdn::dsp {
namespace {

constexpr double kPi = std::numbers::pi;

// Bit-reversal permutation for the iterative radix-2 kernel.
void bit_reverse_permute(std::span<Complex> data) noexcept {
  const std::size_t n = data.size();
  std::size_t j = 0;
  for (std::size_t i = 1; i < n; ++i) {
    std::size_t bit = n >> 1;
    while (j & bit) {
      j ^= bit;
      bit >>= 1;
    }
    j |= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
}

// Bluestein chirp-z transform: expresses an arbitrary-length DFT as a
// convolution, evaluated with power-of-two FFTs.
std::vector<Complex> bluestein(std::span<const Complex> input, bool inverse) {
  const std::size_t n = input.size();
  const double sign = inverse ? 1.0 : -1.0;

  // Chirp factors w[k] = exp(sign * i * pi * k^2 / n).  k^2 mod 2n keeps
  // the argument small for large n without changing the value.
  std::vector<Complex> w(n);
  for (std::size_t k = 0; k < n; ++k) {
    const auto k2 = static_cast<double>((k * k) % (2 * n));
    const double angle = sign * kPi * k2 / static_cast<double>(n);
    w[k] = Complex{std::cos(angle), std::sin(angle)};
  }

  const std::size_t m = next_power_of_two(2 * n - 1);
  std::vector<Complex> a(m), b(m);
  for (std::size_t k = 0; k < n; ++k) a[k] = input[k] * w[k];
  b[0] = std::conj(w[0]);
  for (std::size_t k = 1; k < n; ++k) {
    b[k] = std::conj(w[k]);
    b[m - k] = b[k];
  }

  fft_radix2_inplace(a, /*inverse=*/false);
  fft_radix2_inplace(b, /*inverse=*/false);
  for (std::size_t k = 0; k < m; ++k) a[k] *= b[k];
  fft_radix2_inplace(a, /*inverse=*/true);

  std::vector<Complex> out(n);
  const double scale = 1.0 / static_cast<double>(m);
  for (std::size_t k = 0; k < n; ++k) out[k] = a[k] * w[k] * scale;
  return out;
}

}  // namespace

std::size_t next_power_of_two(std::size_t n) noexcept {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void fft_radix2_inplace(std::span<Complex> data, bool inverse) {
  const std::size_t n = data.size();
  if (n == 0) return;
  if (!is_power_of_two(n)) {
    throw std::invalid_argument("fft_radix2_inplace: size must be 2^k");
  }
  bit_reverse_permute(data);

  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle =
        (inverse ? 2.0 : -2.0) * kPi / static_cast<double>(len);
    const Complex wlen{std::cos(angle), std::sin(angle)};
    for (std::size_t i = 0; i < n; i += len) {
      Complex w{1.0, 0.0};
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Complex u = data[i + k];
        const Complex v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

std::vector<Complex> fft(std::span<const Complex> input) {
  std::vector<Complex> data(input.begin(), input.end());
  if (data.empty()) return data;
  if (is_power_of_two(data.size())) {
    fft_radix2_inplace(data, /*inverse=*/false);
    return data;
  }
  return bluestein(input, /*inverse=*/false);
}

std::vector<Complex> ifft(std::span<const Complex> input) {
  const std::size_t n = input.size();
  if (n == 0) return {};
  std::vector<Complex> data;
  if (is_power_of_two(n)) {
    data.assign(input.begin(), input.end());
    fft_radix2_inplace(data, /*inverse=*/true);
  } else {
    data = bluestein(input, /*inverse=*/true);
  }
  const double scale = 1.0 / static_cast<double>(n);
  for (auto& x : data) x *= scale;
  return data;
}

std::vector<Complex> fft_real(std::span<const double> input) {
  const std::size_t n = input.size();
  // Packed-real trick for power-of-two sizes >= 4: transform the N real
  // samples as an N/2-point complex FFT, then untangle.  Roughly halves
  // the cost of the naive promote-to-complex path — this is the hot loop
  // of the tone detector (Fig 2b).
  if (n >= 4 && is_power_of_two(n)) {
    const std::size_t half = n / 2;
    std::vector<Complex> z(half);
    for (std::size_t i = 0; i < half; ++i) {
      z[i] = Complex{input[2 * i], input[2 * i + 1]};
    }
    fft_radix2_inplace(z, /*inverse=*/false);

    std::vector<Complex> out(n);
    const double step = -2.0 * kPi / static_cast<double>(n);
    for (std::size_t k = 0; k <= half / 2; ++k) {
      const std::size_t km = (half - k) % half;
      const Complex a = z[k];
      const Complex b = std::conj(z[km]);
      const Complex even = 0.5 * (a + b);
      const Complex odd = Complex{0.0, -0.5} * (a - b);
      const double angle = step * static_cast<double>(k);
      const Complex w{std::cos(angle), std::sin(angle)};
      const Complex xk = even + w * odd;
      // And the mirrored half-spectrum entry X[half - k].
      const Complex even_m = std::conj(even);
      const Complex odd_m = std::conj(odd);
      const double angle_m = step * static_cast<double>(half - k);
      const Complex w_m{std::cos(angle_m), std::sin(angle_m)};
      const Complex xm = even_m + w_m * odd_m;

      out[k] = xk;
      out[half - k] = xm;
    }
    // X[half] (Nyquist) from the even/odd split at k=0.
    out[half] = Complex{z[0].real() - z[0].imag(), 0.0};
    // Conjugate symmetry for the upper half.
    for (std::size_t k = 1; k < half; ++k) {
      out[n - k] = std::conj(out[k]);
    }
    return out;
  }

  std::vector<Complex> data(n);
  for (std::size_t i = 0; i < n; ++i) data[i] = Complex{input[i], 0.0};
  return fft(data);
}

std::vector<Complex> dft_reference(std::span<const Complex> input) {
  const std::size_t n = input.size();
  std::vector<Complex> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    Complex acc{0.0, 0.0};
    for (std::size_t t = 0; t < n; ++t) {
      const double angle = -2.0 * kPi * static_cast<double>(k) *
                           static_cast<double>(t) / static_cast<double>(n);
      acc += input[t] * Complex{std::cos(angle), std::sin(angle)};
    }
    out[k] = acc;
  }
  return out;
}

std::vector<double> magnitude(std::span<const Complex> spectrum) {
  std::vector<double> out(spectrum.size());
  for (std::size_t i = 0; i < spectrum.size(); ++i) out[i] = std::abs(spectrum[i]);
  return out;
}

std::vector<double> power(std::span<const Complex> spectrum) {
  std::vector<double> out(spectrum.size());
  for (std::size_t i = 0; i < spectrum.size(); ++i) out[i] = std::norm(spectrum[i]);
  return out;
}

std::size_t frequency_bin(double frequency_hz, std::size_t n,
                          double sample_rate) noexcept {
  const double bin = frequency_hz * static_cast<double>(n) / sample_rate;
  const auto rounded = static_cast<std::size_t>(std::llround(std::max(0.0, bin)));
  return std::min(rounded, n == 0 ? 0 : n - 1);
}

}  // namespace mdn::dsp
