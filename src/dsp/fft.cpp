#include "dsp/fft.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "dsp/fft_plan.h"

namespace mdn::dsp {
namespace {

constexpr double kPi = std::numbers::pi;

// Bit-reversal permutation for the iterative radix-2 kernel.
void bit_reverse_permute(std::span<Complex> data) noexcept {
  const std::size_t n = data.size();
  std::size_t j = 0;
  for (std::size_t i = 1; i < n; ++i) {
    std::size_t bit = n >> 1;
    while (j & bit) {
      j ^= bit;
      bit >>= 1;
    }
    j |= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
}

}  // namespace

std::size_t next_power_of_two(std::size_t n) noexcept {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void fft_radix2_inplace(std::span<Complex> data, bool inverse) {
  const std::size_t n = data.size();
  if (n == 0) return;
  if (!is_power_of_two(n)) {
    throw std::invalid_argument("fft_radix2_inplace: size must be 2^k");
  }
  bit_reverse_permute(data);

  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle =
        (inverse ? 2.0 : -2.0) * kPi / static_cast<double>(len);
    const Complex wlen{std::cos(angle), std::sin(angle)};
    for (std::size_t i = 0; i < n; i += len) {
      Complex w{1.0, 0.0};
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Complex u = data[i + k];
        const Complex v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

std::vector<Complex> fft(std::span<const Complex> input) {
  if (input.empty()) return {};
  const auto plan = PlanCache::global().complex_plan(input.size(), false);
  return plan->transform(input);
}

std::vector<Complex> ifft(std::span<const Complex> input) {
  const std::size_t n = input.size();
  if (n == 0) return {};
  const auto plan = PlanCache::global().complex_plan(n, true);
  auto data = plan->transform(input);
  const double scale = 1.0 / static_cast<double>(n);
  for (auto& x : data) x *= scale;
  return data;
}

std::vector<Complex> fft_real(std::span<const double> input) {
  const std::size_t n = input.size();
  if (n == 0) return {};
  const auto plan = PlanCache::global().real_plan(n);
  const auto half = plan->spectrum(input);
  // Expand the single-sided result into the full conjugate-symmetric
  // spectrum this function has always returned.
  std::vector<Complex> out(n);
  for (std::size_t k = 0; k < half.size() && k < n; ++k) out[k] = half[k];
  for (std::size_t k = n / 2 + 1; k < n; ++k) {
    out[k] = std::conj(out[n - k]);
  }
  return out;
}

std::vector<Complex> dft_reference(std::span<const Complex> input) {
  const std::size_t n = input.size();
  std::vector<Complex> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    Complex acc{0.0, 0.0};
    for (std::size_t t = 0; t < n; ++t) {
      const double angle = -2.0 * kPi * static_cast<double>(k) *
                           static_cast<double>(t) / static_cast<double>(n);
      acc += input[t] * Complex{std::cos(angle), std::sin(angle)};
    }
    out[k] = acc;
  }
  return out;
}

std::vector<double> magnitude(std::span<const Complex> spectrum) {
  std::vector<double> out(spectrum.size());
  for (std::size_t i = 0; i < spectrum.size(); ++i) out[i] = std::abs(spectrum[i]);
  return out;
}

std::vector<double> power(std::span<const Complex> spectrum) {
  std::vector<double> out(spectrum.size());
  for (std::size_t i = 0; i < spectrum.size(); ++i) out[i] = std::norm(spectrum[i]);
  return out;
}

std::size_t frequency_bin(double frequency_hz, std::size_t n,
                          double sample_rate) noexcept {
  if (n == 0) return 0;
  const double bin = frequency_hz * static_cast<double>(n) / sample_rate;
  const auto rounded =
      static_cast<std::size_t>(std::llround(std::max(0.0, bin)));
  // Clamp to the Nyquist bin n/2: every real-signal consumer indexes a
  // single-sided spectrum of n/2 + 1 values, and a frequency above
  // Nyquist is not representable in any case.  Clamping to n - 1 (the
  // old behaviour) silently aliased out-of-range requests into the
  // mirrored upper half.
  return std::min(rounded, n / 2);
}

}  // namespace mdn::dsp
