#include "dsp/ecdf.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace mdn::dsp {

Ecdf::Ecdf(std::span<const double> samples)
    : samples_(samples.begin(), samples.end()) {
  ensure_sorted();
}

void Ecdf::add(double sample) { samples_.push_back(sample); }

void Ecdf::ensure_sorted() const {
  if (sorted_ != samples_.size()) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = samples_.size();
  }
}

double Ecdf::cdf(double x) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(std::distance(samples_.begin(), it)) /
         static_cast<double>(samples_.size());
}

double Ecdf::quantile(double q) const {
  if (samples_.empty()) throw std::logic_error("Ecdf::quantile: empty");
  ensure_sorted();
  const double clamped = std::clamp(q, 0.0, 1.0);
  const auto idx = static_cast<std::size_t>(
      std::ceil(clamped * static_cast<double>(samples_.size())));
  return samples_[idx == 0 ? 0 : idx - 1];
}

double Ecdf::min() const {
  if (samples_.empty()) throw std::logic_error("Ecdf::min: empty");
  ensure_sorted();
  return samples_.front();
}

double Ecdf::max() const {
  if (samples_.empty()) throw std::logic_error("Ecdf::max: empty");
  ensure_sorted();
  return samples_.back();
}

double Ecdf::mean() const {
  if (samples_.empty()) throw std::logic_error("Ecdf::mean: empty");
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         static_cast<double>(samples_.size());
}

std::vector<std::pair<double, double>> Ecdf::curve(std::size_t points) const {
  std::vector<std::pair<double, double>> out;
  if (samples_.empty() || points == 0) return out;
  ensure_sorted();
  out.reserve(points);
  for (std::size_t i = 1; i <= points; ++i) {
    const double q = static_cast<double>(i) / static_cast<double>(points);
    out.emplace_back(quantile(q), q);
  }
  return out;
}

}  // namespace mdn::dsp
