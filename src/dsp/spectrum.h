// Spectrum utilities: amplitude normalisation, decibel conversion and
// spectral peak picking, the primitive behind tone identification (Fig 2a).
//
// Two interfaces per operation: a convenient allocating form, and a
// "plan cold, execute hot" form (`*_into`) that takes a RealFftPlan plus
// a reusable SpectrumWorkspace and writes into caller-provided storage —
// zero heap allocations at steady state.  The tone detector, STFT and
// fan detectors all run on the second form.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "dsp/fft_plan.h"

namespace mdn::dsp {

/// One detected spectral peak.
struct SpectralPeak {
  std::size_t bin = 0;        ///< FFT bin index.
  double frequency_hz = 0.0;  ///< Interpolated frequency in Hz.
  double amplitude = 0.0;     ///< Window-normalised linear amplitude.
};

/// Converts a linear amplitude to decibels relative to `reference`.
/// Amplitudes at or below zero clamp to `floor_db`.
double amplitude_to_db(double amplitude, double reference = 1.0,
                       double floor_db = -120.0) noexcept;

/// Converts decibels back to a linear amplitude.
double db_to_amplitude(double db, double reference = 1.0) noexcept;

/// Single-sided amplitude spectrum of a real signal: applies `window`,
/// computes the FFT and normalises so a full-scale sine at a bin centre
/// reports its true amplitude.  Returns n/2+1 values.
std::vector<double> amplitude_spectrum(std::span<const double> signal,
                                       std::span<const double> window);

/// Like amplitude_spectrum, but zero-pads the windowed signal to
/// `fft_size` before transforming.  The window is applied to the *data*
/// (signal.size() == window.size()); padding only interpolates the
/// spectrum.  This is how the tone detector analyses 50 ms microphone
/// blocks without sacrificing resolution to the pad.
std::vector<double> amplitude_spectrum_padded(std::span<const double> signal,
                                              std::span<const double> window,
                                              std::size_t fft_size);

/// Reusable buffers for the zero-allocation spectrum path.  Construct
/// (or resize_for) once per plan, then hand to amplitude_spectrum_into
/// on every block.
struct SpectrumWorkspace {
  SpectrumWorkspace() = default;
  explicit SpectrumWorkspace(const RealFftPlan& plan) { resize_for(plan); }

  /// Grows the buffers to fit `plan`.  No-op when already sized.
  void resize_for(const RealFftPlan& plan);

  std::vector<double> padded;    ///< windowed + zero-padded time samples
  std::vector<Complex> bins;     ///< half-spectrum output of the plan
  std::vector<Complex> scratch;  ///< plan execution scratch
};

/// Zero-allocation amplitude spectrum: windows `signal` (signal.size()
/// == window.size() <= plan.size()), zero-pads to plan.size(), executes
/// `plan` through `ws` and writes plan.bins() window-normalised
/// amplitudes into `out`.  Covers both the unpadded (signal.size() ==
/// plan.size()) and padded cases of the allocating functions above.
void amplitude_spectrum_into(std::span<const double> signal,
                             std::span<const double> window,
                             const RealFftPlan& plan, SpectrumWorkspace& ws,
                             std::span<double> out);

/// Reusable buffers for the batched multi-channel spectrum path: the
/// lane-major padded/bin arrays plus the SoA scratch the batched FFT
/// interleaves channels into.  Grows once, then every batch call is
/// alloc-free.
struct BatchSpectrumWorkspace {
  /// Grows the buffers to fit a `lanes`-channel batch of `plan`.
  void resize_for(const RealFftPlan& plan, std::size_t lanes);

  std::vector<double> padded;   ///< lanes x plan.size(), lane-contiguous
  std::vector<Complex> bins;    ///< lanes x plan.bins(), lane-contiguous
  std::vector<double> re_soa;   ///< interleaved SoA FFT scratch (real)
  std::vector<double> im_soa;   ///< interleaved SoA FFT scratch (imag)
  std::vector<const double*> input_ptrs;  ///< per-lane padded pointers
  std::vector<Complex*> bin_ptrs;         ///< per-lane bin pointers
};

/// Batched amplitude_spectrum_into: `signals.size()` channels sharing
/// one window and one plan, transformed by a single SoA plan execution
/// (plan.supports_batch() required).  outs[l] receives exactly what
/// amplitude_spectrum_into would have produced for signals[l] —
/// bit-for-bit, at every batch width.
void amplitude_spectrum_batch_into(
    std::span<const std::span<const double>> signals,
    std::span<const double> window, const RealFftPlan& plan,
    BatchSpectrumWorkspace& ws, std::span<const std::span<double>> outs);

/// Finds local maxima in a single-sided spectrum that exceed
/// `min_amplitude` and are the largest value within +-`neighborhood` bins.
/// Peak frequencies are refined by parabolic interpolation of log
/// amplitude, which recovers tone frequencies to well under one bin.
std::vector<SpectralPeak> find_peaks(std::span<const double> spectrum,
                                     double sample_rate, std::size_t fft_size,
                                     double min_amplitude,
                                     std::size_t neighborhood = 2);

/// Zero-allocation variant: clears `out` (keeping its capacity) and
/// refills it, so a reused vector stops allocating once warm.
void find_peaks_into(std::span<const double> spectrum, double sample_rate,
                     std::size_t fft_size, double min_amplitude,
                     std::size_t neighborhood,
                     std::vector<SpectralPeak>& out);

/// Total spectral amplitude difference Sum_k |a[k] - b[k]| between two
/// equal-length spectra — the fan-failure statistic of §7 (Fig 7).
double spectral_difference(std::span<const double> a,
                           std::span<const double> b);

}  // namespace mdn::dsp
