#include "dsp/mel.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mdn::dsp {

double hz_to_mel(double hz) noexcept {
  return 2595.0 * std::log10(1.0 + hz / 700.0);
}

double mel_to_hz(double mel) noexcept {
  return 700.0 * (std::pow(10.0, mel / 2595.0) - 1.0);
}

MelFilterBank::MelFilterBank(std::size_t bands, std::size_t fft_size,
                             double sample_rate, double fmin_hz,
                             double fmax_hz)
    : bands_(bands), spectrum_size_(fft_size / 2 + 1) {
  if (bands == 0 || fft_size == 0 || sample_rate <= 0.0 ||
      fmax_hz <= fmin_hz) {
    throw std::invalid_argument("MelFilterBank: invalid configuration");
  }

  // bands + 2 edge points evenly spaced in mel.
  const double mel_lo = hz_to_mel(fmin_hz);
  const double mel_hi = hz_to_mel(fmax_hz);
  std::vector<double> edges_hz(bands + 2);
  centers_mel_.resize(bands);
  for (std::size_t i = 0; i < bands + 2; ++i) {
    const double mel = mel_lo + (mel_hi - mel_lo) * static_cast<double>(i) /
                                    static_cast<double>(bands + 1);
    edges_hz[i] = mel_to_hz(mel);
    if (i >= 1 && i <= bands) centers_mel_[i - 1] = mel;
  }

  const double hz_per_bin = sample_rate / static_cast<double>(fft_size);
  filters_.resize(bands);
  for (std::size_t b = 0; b < bands; ++b) {
    const double lo = edges_hz[b];
    const double mid = edges_hz[b + 1];
    const double hi = edges_hz[b + 2];
    const auto first =
        static_cast<std::size_t>(std::ceil(lo / hz_per_bin));
    const auto last = std::min(
        spectrum_size_ - 1,
        static_cast<std::size_t>(std::floor(hi / hz_per_bin)));
    Filter f;
    f.first_bin = first;
    for (std::size_t k = first; k <= last && k < spectrum_size_; ++k) {
      const double hz = static_cast<double>(k) * hz_per_bin;
      double w = 0.0;
      if (hz <= mid && mid > lo) {
        w = (hz - lo) / (mid - lo);
      } else if (hz > mid && hi > mid) {
        w = (hi - hz) / (hi - mid);
      }
      f.weights.push_back(std::max(0.0, w));
    }
    // Guarantee every band sees at least its centre bin, so narrow bands
    // at low frequencies never vanish entirely.
    if (f.weights.empty()) {
      f.first_bin = std::min(
          spectrum_size_ - 1,
          static_cast<std::size_t>(std::llround(mid / hz_per_bin)));
      f.weights.push_back(1.0);
    }
    filters_[b] = std::move(f);
  }
}

double MelFilterBank::band_center_hz(std::size_t b) const {
  return mel_to_hz(band_center_mel(b));
}

double MelFilterBank::band_center_mel(std::size_t b) const {
  if (b >= bands_) throw std::out_of_range("MelFilterBank::band_center_mel");
  return centers_mel_[b];
}

std::vector<double> MelFilterBank::apply(
    std::span<const double> linear_spectrum) const {
  std::vector<double> out(bands_, 0.0);
  apply_into(linear_spectrum, out);
  return out;
}

void MelFilterBank::apply_into(std::span<const double> linear_spectrum,
                               std::span<double> out) const {
  if (linear_spectrum.size() != spectrum_size_) {
    throw std::invalid_argument("MelFilterBank::apply: spectrum size");
  }
  if (out.size() < bands_) {
    throw std::invalid_argument("MelFilterBank::apply_into: out too small");
  }
  for (std::size_t b = 0; b < bands_; ++b) {
    const auto& f = filters_[b];
    double acc = 0.0;
    for (std::size_t i = 0; i < f.weights.size(); ++i) {
      const std::size_t k = f.first_bin + i;
      if (k >= spectrum_size_) break;
      acc += f.weights[i] * linear_spectrum[k];
    }
    out[b] = acc;
  }
}

std::size_t MelSpectrogram::argmax_band(std::size_t f) const {
  const auto& row = frames.at(f);
  return static_cast<std::size_t>(std::distance(
      row.begin(), std::max_element(row.begin(), row.end())));
}

MelSpectrogram mel_spectrogram(const Spectrogram& linear, std::size_t bands,
                               double fmin_hz, double fmax_hz) {
  const std::size_t fft_size = (linear.bins() - 1) * 2;
  MelFilterBank bank(bands, fft_size, linear.sample_rate(), fmin_hz,
                     fmax_hz);
  MelSpectrogram out;
  // Batched: each row is sized once and filled in place; the bank never
  // allocates per frame.
  out.frames.assign(linear.frames(), std::vector<double>(bands, 0.0));
  out.frame_times_s.reserve(linear.frames());
  for (std::size_t f = 0; f < linear.frames(); ++f) {
    bank.apply_into(linear.frame(f), out.frames[f]);
    out.frame_times_s.push_back(linear.frame_time(f));
  }
  out.band_centers_hz.resize(bands);
  out.band_centers_mel.resize(bands);
  for (std::size_t b = 0; b < bands; ++b) {
    out.band_centers_hz[b] = bank.band_center_hz(b);
    out.band_centers_mel[b] = bank.band_center_mel(b);
  }
  return out;
}

}  // namespace mdn::dsp
