// Fast Fourier Transform primitives for Music-Defined Networking.
//
// The paper (§3, Fig 2) identifies switch tones by computing the FFT of
// short microphone captures (~50 ms) and matching spectral peaks against a
// per-switch frequency plan.  Everything here is implemented from scratch:
// an iterative radix-2 Cooley-Tukey transform for power-of-two sizes and a
// Bluestein chirp-z fallback so callers may transform buffers of any length
// (microphone captures are rarely a power of two).
//
// The free functions below are the convenient allocating interface; they
// fetch precomputed plans from dsp::PlanCache (dsp/fft_plan.h), so
// repeated same-size transforms share twiddle/permutation tables.  Hot
// paths should hold a plan directly and execute into reusable buffers.
#pragma once

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

namespace mdn::dsp {

using Complex = std::complex<double>;

/// Returns true iff n is a power of two (n >= 1).
constexpr bool is_power_of_two(std::size_t n) noexcept {
  return n != 0 && (n & (n - 1)) == 0;
}

/// Smallest power of two >= n.  n must be <= 2^62.
std::size_t next_power_of_two(std::size_t n) noexcept;

/// In-place iterative radix-2 FFT.  data.size() must be a power of two.
/// inverse == true computes the unscaled inverse transform; divide by N
/// yourself or use ifft() which does it for you.
void fft_radix2_inplace(std::span<Complex> data, bool inverse);

/// Forward DFT of arbitrary length input (Bluestein fallback for non
/// power-of-two sizes).  Returns a spectrum of the same length as `input`.
std::vector<Complex> fft(std::span<const Complex> input);

/// Inverse DFT (scaled by 1/N) of arbitrary length input.
std::vector<Complex> ifft(std::span<const Complex> input);

/// Forward DFT of a real signal.  Returns the full N-point complex
/// spectrum (conjugate-symmetric); callers typically look at bins
/// [0, N/2].
std::vector<Complex> fft_real(std::span<const double> input);

/// Naive O(N^2) DFT used as a test oracle.  Do not call on large inputs.
std::vector<Complex> dft_reference(std::span<const Complex> input);

/// Magnitude of each spectral bin.
std::vector<double> magnitude(std::span<const Complex> spectrum);

/// Power (|X|^2) of each spectral bin.
std::vector<double> power(std::span<const Complex> spectrum);

/// Frequency in Hz of bin `k` for an N-point transform at `sample_rate`.
constexpr double bin_frequency(std::size_t k, std::size_t n,
                               double sample_rate) noexcept {
  return static_cast<double>(k) * sample_rate / static_cast<double>(n);
}

/// Closest bin index for `frequency_hz` in an N-point transform, clamped
/// to the Nyquist bin n/2 (the last entry of a single-sided spectrum);
/// frequencies above Nyquist are not representable.
std::size_t frequency_bin(double frequency_hz, std::size_t n,
                          double sample_rate) noexcept;

}  // namespace mdn::dsp
