#include "dsp/fft_plan.h"

#include <cmath>
#include <numbers>
#include <stdexcept>
#include <utility>

#include "dsp/simd.h"

namespace mdn::dsp {
namespace {

constexpr double kPi = std::numbers::pi;

// Stages with fewer butterflies than this run inline scalar code instead
// of an indirect kernel call: on the early stages (len 2..8) the call
// itself would cost more than the arithmetic.  Harmless for the
// SIMD-vs-scalar contract — the inline body is the scalar reference
// arithmetic, and every vector kernel matches it bit-for-bit anyway.
constexpr std::size_t kKernelMinHalf = 8;

// Bit-reversal index table for an n-point (power-of-two) transform.
std::vector<std::uint32_t> make_bitrev(std::size_t n) {
  std::vector<std::uint32_t> table(n);
  std::size_t j = 0;
  table[0] = 0;
  for (std::size_t i = 1; i < n; ++i) {
    std::size_t bit = n >> 1;
    while (j & bit) {
      j ^= bit;
      bit >>= 1;
    }
    j |= bit;
    table[i] = static_cast<std::uint32_t>(j);
  }
  return table;
}

// Stage-major twiddle table, n - 1 entries in total: the len/2 factors
// exp(sign * 2*pi*i*k/len) of stage `len` are stored contiguously, in
// stage order (len = 2, 4, ..., n).  The butterfly loop then walks each
// stage's slice sequentially — unit-stride loads instead of a strided
// gather through one shared table.
std::vector<Complex> make_twiddles(std::size_t n, bool inverse) {
  const double sign = inverse ? 2.0 : -2.0;
  std::vector<Complex> w;
  w.reserve(n - 1);
  for (std::size_t len = 2; len <= n; len <<= 1) {
    for (std::size_t k = 0; k < len / 2; ++k) {
      const double angle = sign * kPi * static_cast<double>(k) /
                           static_cast<double>(len);
      w.push_back(Complex{std::cos(angle), std::sin(angle)});
    }
  }
  return w;
}

}  // namespace

FftPlan::FftPlan(std::size_t size, bool inverse)
    : n_(size), inverse_(inverse) {
  if (n_ <= 1) return;  // 0- and 1-point transforms are the identity
  if (is_power_of_two(n_)) {
    bitrev_ = make_bitrev(n_);
    twiddles_ = make_twiddles(n_, inverse_);
    return;
  }

  // Bluestein chirp-z: X = w * IFFT(FFT(x*w) .* FFT(b)) where
  // w[k] = exp(sign*i*pi*k^2/n) and b[k] = conj(w[|k|]).  Everything that
  // depends only on n is precomputed here, including FFT(b).
  const double sign = inverse_ ? 1.0 : -1.0;
  chirp_.resize(n_);
  for (std::size_t k = 0; k < n_; ++k) {
    // k^2 mod 2n keeps the argument small without changing the value.
    const auto k2 = static_cast<double>((k * k) % (2 * n_));
    const double angle = sign * kPi * k2 / static_cast<double>(n_);
    chirp_[k] = Complex{std::cos(angle), std::sin(angle)};
  }

  m_ = next_power_of_two(2 * n_ - 1);
  conv_forward_ = std::make_unique<FftPlan>(m_, false);
  conv_inverse_ = std::make_unique<FftPlan>(m_, true);

  kernel_fft_.assign(m_, Complex{0.0, 0.0});
  kernel_fft_[0] = std::conj(chirp_[0]);
  for (std::size_t k = 1; k < n_; ++k) {
    kernel_fft_[k] = std::conj(chirp_[k]);
    kernel_fft_[m_ - k] = kernel_fft_[k];
  }
  conv_forward_->execute(kernel_fft_);
}

void FftPlan::execute_pow2(std::span<Complex> data) const noexcept {
  // Permute, then iterate stages walking that stage's twiddle slice
  // sequentially: no trig, no allocation, no accumulated recurrence
  // error.  The butterflies spell out the complex arithmetic on doubles
  // — table entries are always finite, so this skips the NaN fix-up
  // branch (and its scalar recompute) that std::complex operator*
  // carries, about half the per-butterfly instruction count.
  const std::size_t n = n_;
  for (std::size_t i = 1; i < n; ++i) {
    const std::size_t j = bitrev_[i];
    if (i < j) std::swap(data[i], data[j]);
  }
  const simd::Kernels& kern = simd::active_kernels();
  const Complex* stage = twiddles_.data();
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const std::size_t half = len / 2;
    if (half < kKernelMinHalf) {
      for (std::size_t i = 0; i < n; i += len) {
        Complex* a = &data[i];
        Complex* b = a + half;
        for (std::size_t k = 0; k < half; ++k) {
          const double wr = stage[k].real(), wi = stage[k].imag();
          const double br = b[k].real(), bi = b[k].imag();
          const double vr = br * wr - bi * wi;
          const double vi = br * wi + bi * wr;
          const double ar = a[k].real(), ai = a[k].imag();
          a[k] = Complex{ar + vr, ai + vi};
          b[k] = Complex{ar - vr, ai - vi};
        }
      }
    } else {
      for (std::size_t i = 0; i < n; i += len) {
        Complex* a = &data[i];
        kern.butterfly_aos(a, a + half, stage, half);
      }
    }
    stage += half;
  }
}

void FftPlan::execute(std::span<Complex> data,
                      std::span<Complex> scratch) const {
  if (data.size() != n_) {
    throw std::invalid_argument("FftPlan::execute: size mismatch");
  }
  if (n_ <= 1) return;
  if (m_ == 0) {
    execute_pow2(data);
    return;
  }

  if (scratch.size() < m_) {
    throw std::invalid_argument("FftPlan::execute: scratch too small");
  }
  // a = (x .* w) zero-padded to m, convolved with the precomputed kernel.
  const simd::Kernels& kern = simd::active_kernels();
  std::span<Complex> a = scratch.first(m_);
  kern.cmul_aos(data.data(), chirp_.data(), a.data(), n_);
  for (std::size_t k = n_; k < m_; ++k) a[k] = Complex{0.0, 0.0};
  conv_forward_->execute_pow2(a);
  kern.cmul_aos(a.data(), kernel_fft_.data(), a.data(), m_);
  conv_inverse_->execute_pow2(a);
  const double scale = 1.0 / static_cast<double>(m_);
  kern.cmul_aos(a.data(), chirp_.data(), data.data(), n_);
  for (std::size_t k = 0; k < n_; ++k) {
    data[k] = Complex{data[k].real() * scale, data[k].imag() * scale};
  }
}

void FftPlan::execute_batch_soa(std::span<double> re, std::span<double> im,
                                std::size_t lanes) const {
  if (m_ != 0) {
    throw std::invalid_argument(
        "FftPlan::execute_batch_soa: power-of-two sizes only");
  }
  if (lanes == 0 || n_ <= 1) return;
  if (re.size() < n_ * lanes || im.size() < n_ * lanes) {
    throw std::invalid_argument(
        "FftPlan::execute_batch_soa: buffers too small");
  }

  // Same permutation + stage walk as execute_pow2, with every scalar
  // element widened to a `lanes`-double row; per-lane arithmetic is the
  // identical op sequence, so each lane matches a solo execute()
  // bit-for-bit.
  double* rp = re.data();
  double* ip = im.data();
  for (std::size_t i = 1; i < n_; ++i) {
    const std::size_t j = bitrev_[i];
    if (i < j) {
      double* ra = rp + i * lanes;
      double* rb = rp + j * lanes;
      double* ia = ip + i * lanes;
      double* ib = ip + j * lanes;
      for (std::size_t l = 0; l < lanes; ++l) {
        std::swap(ra[l], rb[l]);
        std::swap(ia[l], ib[l]);
      }
    }
  }
  const simd::Kernels& kern = simd::active_kernels();
  const Complex* stage = twiddles_.data();
  for (std::size_t len = 2; len <= n_; len <<= 1) {
    const std::size_t half = len / 2;
    for (std::size_t i = 0; i < n_; i += len) {
      double* ar = rp + i * lanes;
      double* ai = ip + i * lanes;
      kern.butterfly_soa(ar, ai, ar + half * lanes, ai + half * lanes, stage,
                         half, lanes);
    }
    stage += half;
  }
}

std::vector<Complex> FftPlan::transform(std::span<const Complex> input) const {
  std::vector<Complex> data(input.begin(), input.end());
  std::vector<Complex> scratch(scratch_size());
  execute(data, scratch);
  return data;
}

RealFftPlan::RealFftPlan(std::size_t size) : n_(size) {
  if (n_ >= 4 && is_power_of_two(n_)) {
    const std::size_t half = n_ / 2;
    half_plan_ = std::make_unique<FftPlan>(half, false);
    untangle_.resize(half + 1);
    for (std::size_t k = 0; k <= half; ++k) {
      const double angle = -2.0 * kPi * static_cast<double>(k) /
                           static_cast<double>(n_);
      untangle_[k] = Complex{std::cos(angle), std::sin(angle)};
    }
    scratch_size_ = half;
    return;
  }
  full_plan_ = std::make_unique<FftPlan>(n_, false);
  scratch_size_ = n_ + full_plan_->scratch_size();
}

void RealFftPlan::execute(std::span<const double> input,
                          std::span<Complex> out_bins,
                          std::span<Complex> scratch) const {
  if (input.size() != n_) {
    throw std::invalid_argument("RealFftPlan::execute: size mismatch");
  }
  if (n_ == 0) return;
  if (out_bins.size() < bins()) {
    throw std::invalid_argument("RealFftPlan::execute: out_bins too small");
  }
  if (scratch.size() < scratch_size_) {
    throw std::invalid_argument("RealFftPlan::execute: scratch too small");
  }

  if (half_plan_ != nullptr) {
    // Packed-real: transform the N real samples as an N/2-point complex
    // FFT, then untangle even/odd with the precomputed coefficients.
    const std::size_t half = n_ / 2;
    std::span<Complex> z = scratch.first(half);
    for (std::size_t i = 0; i < half; ++i) {
      z[i] = Complex{input[2 * i], input[2 * i + 1]};
    }
    half_plan_->execute(z);

    for (std::size_t k = 0; k <= half / 2; ++k) {
      const std::size_t km = (half - k) % half;
      const Complex a = z[k];
      const Complex b = std::conj(z[km]);
      const Complex even = 0.5 * (a + b);
      const Complex odd = Complex{0.0, -0.5} * (a - b);
      out_bins[k] = even + untangle_[k] * odd;
      // The mirrored entry X[half - k] from the conjugated split.
      out_bins[half - k] =
          std::conj(even) + untangle_[half - k] * std::conj(odd);
    }
    // X[half] (Nyquist) from the even/odd split at k = 0.
    out_bins[half] = Complex{z[0].real() - z[0].imag(), 0.0};
    return;
  }

  // Fallback: promote to complex in scratch and run the full plan.
  std::span<Complex> data = scratch.first(n_);
  for (std::size_t i = 0; i < n_; ++i) data[i] = Complex{input[i], 0.0};
  full_plan_->execute(data, scratch.subspan(n_));
  for (std::size_t k = 0; k < bins(); ++k) out_bins[k] = data[k];
}

void RealFftPlan::execute_batch(std::span<const double* const> inputs,
                                std::span<Complex* const> out_bins,
                                std::span<double> re_scratch,
                                std::span<double> im_scratch) const {
  if (half_plan_ == nullptr) {
    throw std::invalid_argument(
        "RealFftPlan::execute_batch: packed-real sizes only");
  }
  const std::size_t lanes = inputs.size();
  if (out_bins.size() != lanes) {
    throw std::invalid_argument(
        "RealFftPlan::execute_batch: inputs/out_bins size mismatch");
  }
  if (lanes == 0) return;
  const std::size_t half = n_ / 2;
  if (re_scratch.size() < half * lanes || im_scratch.size() < half * lanes) {
    throw std::invalid_argument(
        "RealFftPlan::execute_batch: scratch too small");
  }

  // Pack every lane's samples as the interleaved SoA rows of one
  // half-size complex batch: z_l[i] = {x_l[2i], x_l[2i+1]}.
  double* rp = re_scratch.data();
  double* ip = im_scratch.data();
  for (std::size_t i = 0; i < half; ++i) {
    double* rrow = rp + i * lanes;
    double* irow = ip + i * lanes;
    for (std::size_t l = 0; l < lanes; ++l) {
      rrow[l] = inputs[l][2 * i];
      irow[l] = inputs[l][2 * i + 1];
    }
  }
  half_plan_->execute_batch_soa(re_scratch.first(half * lanes),
                                im_scratch.first(half * lanes), lanes);

  // Untangle per lane with the very same complex arithmetic as
  // execute(); combined with the per-lane bit-identity of the batched
  // FFT this makes every lane's bins match the single-channel path
  // bit-for-bit.
  for (std::size_t l = 0; l < lanes; ++l) {
    Complex* out = out_bins[l];
    for (std::size_t k = 0; k <= half / 2; ++k) {
      const std::size_t km = (half - k) % half;
      const Complex a = Complex{rp[k * lanes + l], ip[k * lanes + l]};
      const Complex b =
          std::conj(Complex{rp[km * lanes + l], ip[km * lanes + l]});
      const Complex even = 0.5 * (a + b);
      const Complex odd = Complex{0.0, -0.5} * (a - b);
      out[k] = even + untangle_[k] * odd;
      out[half - k] = std::conj(even) + untangle_[half - k] * std::conj(odd);
    }
    out[half] = Complex{rp[l] - ip[l], 0.0};
  }
}

std::vector<Complex> RealFftPlan::spectrum(
    std::span<const double> input) const {
  std::vector<Complex> out(bins());
  std::vector<Complex> scratch(scratch_size());
  execute(input, out, scratch);
  return out;
}

PlanCache& PlanCache::global() {
  static PlanCache cache;
  return cache;
}

std::shared_ptr<const FftPlan> PlanCache::complex_plan(std::size_t size,
                                                       bool inverse) {
  const std::pair<std::size_t, bool> key{size, inverse};
  common::MutexLock lock(mu_);
  auto it = complex_.find(key);
  if (it == complex_.end()) {
    it = complex_.emplace(key, std::make_shared<FftPlan>(size, inverse))
             .first;
    ++constructions_;
  }
  return it->second;
}

std::shared_ptr<const RealFftPlan> PlanCache::real_plan(std::size_t size) {
  common::MutexLock lock(mu_);
  auto it = real_.find(size);
  if (it == real_.end()) {
    it = real_.emplace(size, std::make_shared<RealFftPlan>(size)).first;
    ++constructions_;
  }
  return it->second;
}

std::size_t PlanCache::size() const {
  common::MutexLock lock(mu_);
  return complex_.size() + real_.size();
}

std::size_t PlanCache::constructions_for_testing() const {
  common::MutexLock lock(mu_);
  return constructions_;
}

}  // namespace mdn::dsp
