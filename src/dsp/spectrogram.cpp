#include "dsp/spectrogram.h"

#include <algorithm>
#include <stdexcept>

#include "dsp/spectrum.h"

namespace mdn::dsp {

Spectrogram::Spectrogram(std::size_t frames, std::size_t bins,
                         double sample_rate, std::size_t fft_size,
                         std::size_t hop)
    : frames_(frames),
      bins_(bins),
      sample_rate_(sample_rate),
      fft_size_(fft_size),
      hop_(hop),
      data_(frames * bins, 0.0) {}

double& Spectrogram::at(std::size_t frame, std::size_t bin) {
  if (frame >= frames_ || bin >= bins_) {
    throw std::out_of_range("Spectrogram::at");
  }
  return data_[frame * bins_ + bin];
}

double Spectrogram::at(std::size_t frame, std::size_t bin) const {
  if (frame >= frames_ || bin >= bins_) {
    throw std::out_of_range("Spectrogram::at");
  }
  return data_[frame * bins_ + bin];
}

std::span<const double> Spectrogram::frame(std::size_t index) const {
  if (index >= frames_) throw std::out_of_range("Spectrogram::frame");
  return {data_.data() + index * bins_, bins_};
}

std::span<double> Spectrogram::frame(std::size_t index) {
  if (index >= frames_) throw std::out_of_range("Spectrogram::frame");
  return {data_.data() + index * bins_, bins_};
}

double Spectrogram::frame_time(std::size_t index) const noexcept {
  const double centre = static_cast<double>(index * hop_) +
                        static_cast<double>(fft_size_) / 2.0;
  return sample_rate_ > 0.0 ? centre / sample_rate_ : 0.0;
}

double Spectrogram::bin_frequency(std::size_t index) const noexcept {
  if (fft_size_ == 0) return 0.0;
  return static_cast<double>(index) * sample_rate_ /
         static_cast<double>(fft_size_);
}

std::size_t Spectrogram::argmax_bin(std::size_t frame_index) const {
  const auto row = frame(frame_index);
  return static_cast<std::size_t>(
      std::distance(row.begin(), std::max_element(row.begin(), row.end())));
}

Spectrogram stft(std::span<const double> signal, double sample_rate,
                 const StftConfig& config) {
  if (config.fft_size == 0 || config.hop == 0) {
    throw std::invalid_argument("stft: fft_size and hop must be positive");
  }
  const std::size_t bins = config.fft_size / 2 + 1;
  // Every sample belongs to some frame: (N-1)/hop + 1 frames, the final
  // (or only) one zero-padded.  A non-empty signal shorter than a hop
  // still yields its one padded frame.
  const std::size_t frames =
      signal.empty() ? 0 : (signal.size() - 1) / config.hop + 1;
  Spectrogram out(frames, bins, sample_rate, config.fft_size, config.hop);
  if (frames == 0) return out;

  // Batched loop: one plan and one workspace serve every frame, so the
  // per-frame cost is copy + window + execute with no allocation.
  const auto plan = PlanCache::global().real_plan(config.fft_size);
  SpectrumWorkspace ws(*plan);
  const auto window = make_window(config.window, config.fft_size);
  std::vector<double> chunk(config.fft_size);
  for (std::size_t f = 0; f < frames; ++f) {
    const std::size_t start = f * config.hop;
    const std::size_t avail =
        start < signal.size()
            ? std::min(config.fft_size, signal.size() - start)
            : 0;
    std::copy_n(signal.begin() + static_cast<std::ptrdiff_t>(start), avail,
                chunk.begin());
    std::fill(chunk.begin() + static_cast<std::ptrdiff_t>(avail), chunk.end(),
              0.0);
    amplitude_spectrum_into(chunk, window, *plan, ws, out.frame(f));
  }
  return out;
}

}  // namespace mdn::dsp
