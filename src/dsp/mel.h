// Mel scale and mel-scaled spectrograms.
//
// The paper plots its audio evidence on the mel scale (Figs 3b, 4, 5, 6):
// the port-scan sweep of Fig 4c appears as a logarithmic line *because* the
// y-axis is mel.  We implement the standard HTK mel mapping and a
// triangular filterbank to convert linear STFT frames to mel bands.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "dsp/spectrogram.h"

namespace mdn::dsp {

/// HTK mel scale: mel = 2595 * log10(1 + hz / 700).
double hz_to_mel(double hz) noexcept;
double mel_to_hz(double mel) noexcept;

/// A bank of triangular filters spaced evenly on the mel scale.
class MelFilterBank {
 public:
  /// `fft_size` and `sample_rate` describe the linear spectra to be
  /// filtered; `bands` mel filters cover [fmin_hz, fmax_hz].
  MelFilterBank(std::size_t bands, std::size_t fft_size, double sample_rate,
                double fmin_hz, double fmax_hz);

  std::size_t bands() const noexcept { return bands_; }
  /// Centre frequency (Hz) of mel band `b`.
  double band_center_hz(std::size_t b) const;
  /// Centre of band `b` in mels.
  double band_center_mel(std::size_t b) const;

  /// Applies the bank to a single-sided linear spectrum (fft_size/2+1
  /// values); returns `bands` mel-band amplitudes.
  std::vector<double> apply(std::span<const double> linear_spectrum) const;

  /// Zero-allocation variant: writes bands() amplitudes into `out`.
  void apply_into(std::span<const double> linear_spectrum,
                  std::span<double> out) const;

 private:
  std::size_t bands_;
  std::size_t spectrum_size_;
  std::vector<double> centers_mel_;
  // weights_[b] holds (first_bin, coefficients) of triangular filter b.
  struct Filter {
    std::size_t first_bin = 0;
    std::vector<double> weights;
  };
  std::vector<Filter> filters_;
};

/// A mel-scaled time-frequency matrix with axis metadata.
struct MelSpectrogram {
  std::vector<std::vector<double>> frames;  ///< frames x bands amplitude
  std::vector<double> band_centers_hz;
  std::vector<double> band_centers_mel;
  std::vector<double> frame_times_s;

  std::size_t band_count() const noexcept {
    return band_centers_hz.size();
  }
  /// Band with the largest amplitude in frame `f`.
  std::size_t argmax_band(std::size_t f) const;
};

/// Converts a linear STFT spectrogram to mel bands.
MelSpectrogram mel_spectrogram(const Spectrogram& linear, std::size_t bands,
                               double fmin_hz, double fmax_hz);

}  // namespace mdn::dsp
