// Analysis window functions.
//
// Short tone captures are windowed before the FFT to contain spectral
// leakage; with the paper's 20 Hz frequency plan spacing (§3), leakage from
// a neighbouring switch's tone would otherwise smear into adjacent bins and
// defeat peak matching.
#pragma once

#include <cstddef>
#include <span>
#include <string_view>
#include <vector>

namespace mdn::dsp {

enum class WindowKind {
  kRectangular,
  kHann,
  kHamming,
  kBlackman,
};

/// Human-readable name ("hann", "blackman", ...).
std::string_view window_name(WindowKind kind) noexcept;

/// The window coefficients, length n (periodic form, suitable for STFT).
std::vector<double> make_window(WindowKind kind, std::size_t n);

/// Element-wise multiply `signal` by `window`.  Sizes must match.
void apply_window(std::span<double> signal, std::span<const double> window);

/// Sum of window coefficients — used to normalise spectral amplitude so a
/// unit-amplitude sine reports ~1.0 regardless of window choice.
double window_coherent_gain(std::span<const double> window) noexcept;

}  // namespace mdn::dsp
