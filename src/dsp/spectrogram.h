// Short-time Fourier transform (STFT) spectrogram.
//
// The paper renders most of its evidence as mel-scaled spectrograms
// (Figs 3b, 4, 5b, 5d, 6); this module produces the linear-frequency STFT
// those are built from.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "dsp/window.h"

namespace mdn::dsp {

struct StftConfig {
  std::size_t fft_size = 1024;
  std::size_t hop = 256;
  WindowKind window = WindowKind::kHann;
};

/// A time-frequency matrix: frames() rows, bins() columns of linear
/// amplitude, plus the axis metadata needed to label a plot.
class Spectrogram {
 public:
  Spectrogram(std::size_t frames, std::size_t bins, double sample_rate,
              std::size_t fft_size, std::size_t hop);

  std::size_t frames() const noexcept { return frames_; }
  std::size_t bins() const noexcept { return bins_; }
  double sample_rate() const noexcept { return sample_rate_; }

  double& at(std::size_t frame, std::size_t bin);
  double at(std::size_t frame, std::size_t bin) const;
  std::span<const double> frame(std::size_t index) const;
  std::span<double> frame(std::size_t index);

  /// Centre time (seconds) of frame `index`.
  double frame_time(std::size_t index) const noexcept;
  /// Centre frequency (Hz) of bin `index`.
  double bin_frequency(std::size_t index) const noexcept;

  /// Bin with the largest amplitude in a frame.
  std::size_t argmax_bin(std::size_t frame_index) const;

 private:
  std::size_t frames_;
  std::size_t bins_;
  double sample_rate_;
  std::size_t fft_size_;
  std::size_t hop_;
  std::vector<double> data_;  // row-major frames x bins
};

/// Computes the single-sided amplitude STFT of `signal` with a single
/// cached FFT plan and one reused scratch frame (no per-frame
/// allocation).  Partial frames — including the single frame of a
/// non-empty signal shorter than one hop — are zero-padded.  Only an
/// empty signal yields 0 frames.
Spectrogram stft(std::span<const double> signal, double sample_rate,
                 const StftConfig& config);

}  // namespace mdn::dsp
