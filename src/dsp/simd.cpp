#include "dsp/simd.h"

#include <atomic>
#include <cmath>
#include <limits>

#include "common/atomic.h"
#include "obs/metrics.h"

// The vector paths exist only for x86-64 under a GCC-compatible
// compiler and can be compiled out entirely with -DMDN_NO_SIMD=ON;
// every other configuration runs the scalar reference table.
#if !defined(MDN_NO_SIMD) && defined(__x86_64__) && \
    (defined(__GNUC__) || defined(__clang__))
#define MDN_SIMD_X86 1
#include <immintrin.h>
#else
#define MDN_SIMD_X86 0
#endif

namespace mdn::dsp::simd {
namespace {

// std::complex<double> is layout-compatible with double[2] ([re, im]);
// the standard guarantees reinterpret_cast access (26.4.4).
inline const double* flat(const Complex* p) noexcept {
  return reinterpret_cast<const double*>(p);
}
inline double* flat(Complex* p) noexcept {
  return reinterpret_cast<double*>(p);
}

// --- scalar reference kernels ------------------------------------------
//
// These define the semantics every vector kernel must match bit-for-bit:
// per-element operation order exactly as written (mdn_dsp is compiled
// with -ffp-contract=off, so no FMA contraction sneaks in).

void mul_scalar(const double* a, const double* b, double* out,
                std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = a[i] * b[i];
}

void mag_scale_aos_scalar(const Complex* bins, double scale, double* out,
                          std::size_t n) {
  const double* v = flat(bins);
  for (std::size_t i = 0; i < n; ++i) {
    const double re = v[2 * i], im = v[2 * i + 1];
    out[i] = std::sqrt(re * re + im * im) * scale;
  }
}

void mag_scale_soa_scalar(const double* re, const double* im, double scale,
                          double* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = std::sqrt(re[i] * re[i] + im[i] * im[i]) * scale;
  }
}

void butterfly_aos_scalar(Complex* a, Complex* b, const Complex* tw,
                          std::size_t half) {
  double* ap = flat(a);
  double* bp = flat(b);
  const double* wp = flat(tw);
  for (std::size_t k = 0; k < half; ++k) {
    const double wr = wp[2 * k], wi = wp[2 * k + 1];
    const double br = bp[2 * k], bi = bp[2 * k + 1];
    const double vr = br * wr - bi * wi;
    const double vi = br * wi + bi * wr;
    const double ar = ap[2 * k], ai = ap[2 * k + 1];
    ap[2 * k] = ar + vr;
    ap[2 * k + 1] = ai + vi;
    bp[2 * k] = ar - vr;
    bp[2 * k + 1] = ai - vi;
  }
}

void butterfly_soa_scalar(double* a_re, double* a_im, double* b_re,
                          double* b_im, const Complex* tw, std::size_t half,
                          std::size_t lanes) {
  const double* wp = flat(tw);
  for (std::size_t k = 0; k < half; ++k) {
    const double wr = wp[2 * k], wi = wp[2 * k + 1];
    double* ar_row = a_re + k * lanes;
    double* ai_row = a_im + k * lanes;
    double* br_row = b_re + k * lanes;
    double* bi_row = b_im + k * lanes;
    for (std::size_t l = 0; l < lanes; ++l) {
      const double br = br_row[l], bi = bi_row[l];
      const double vr = br * wr - bi * wi;
      const double vi = br * wi + bi * wr;
      const double ar = ar_row[l], ai = ai_row[l];
      ar_row[l] = ar + vr;
      ai_row[l] = ai + vi;
      br_row[l] = ar - vr;
      bi_row[l] = ai - vi;
    }
  }
}

void cmul_aos_scalar(const Complex* a, const Complex* b, Complex* out,
                     std::size_t n) {
  const double* ap = flat(a);
  const double* bp = flat(b);
  double* op = flat(out);
  for (std::size_t i = 0; i < n; ++i) {
    const double ar = ap[2 * i], ai = ap[2 * i + 1];
    const double br = bp[2 * i], bi = bp[2 * i + 1];
    const double re = ar * br - ai * bi;
    const double im = ar * bi + ai * br;
    op[2 * i] = re;
    op[2 * i + 1] = im;
  }
}

void goertzel_iterate_scalar(const double* x, std::size_t n,
                             const double* coeff, std::size_t nf, double* s1,
                             double* s2) {
  // Filter-major: each filter streams the block with its state in
  // registers — identical per-filter arithmetic to the vector paths,
  // which run groups of filters sample-major instead.
  for (std::size_t f = 0; f < nf; ++f) {
    const double c = coeff[f];
    double a = s1[f], b = s2[f];
    for (std::size_t i = 0; i < n; ++i) {
      const double s0 = x[i] + c * a - b;
      b = a;
      a = s0;
    }
    s1[f] = a;
    s2[f] = b;
  }
}

double chunk_max_scalar(const double* x, std::size_t n) {
  double m = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < n; ++i) {
    if (x[i] > m) m = x[i];
  }
  return m;
}

constexpr Kernels kScalarKernels{
    mul_scalar,         mag_scale_aos_scalar, mag_scale_soa_scalar,
    butterfly_aos_scalar, butterfly_soa_scalar, cmul_aos_scalar,
    goertzel_iterate_scalar, chunk_max_scalar,
};

#if MDN_SIMD_X86

// --- SSE2 kernels (x86-64 baseline, no target attribute needed) --------
//
// addsub does not exist in SSE2; `a - b` is computed as `a + (-b)` by
// flipping the sign bit, which is bitwise identical for every input
// (IEEE-754 negation is exact, and x + (-y) rounds exactly like x - y).

inline __m128d sse2_neg_lo(__m128d v) noexcept {
  const __m128d sign = _mm_set_pd(0.0, -0.0);  // [-0.0, 0.0] memory order
  return _mm_xor_pd(v, sign);
}

void mul_sse2(const double* a, const double* b, double* out, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    _mm_storeu_pd(out + i,
                  _mm_mul_pd(_mm_loadu_pd(a + i), _mm_loadu_pd(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] * b[i];
}

void mag_scale_soa_sse2(const double* re, const double* im, double scale,
                        double* out, std::size_t n) {
  const __m128d s = _mm_set1_pd(scale);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d r = _mm_loadu_pd(re + i);
    const __m128d m = _mm_loadu_pd(im + i);
    const __m128d sum = _mm_add_pd(_mm_mul_pd(r, r), _mm_mul_pd(m, m));
    _mm_storeu_pd(out + i, _mm_mul_pd(_mm_sqrt_pd(sum), s));
  }
  for (; i < n; ++i) {
    out[i] = std::sqrt(re[i] * re[i] + im[i] * im[i]) * scale;
  }
}

void mag_scale_aos_sse2(const Complex* bins, double scale, double* out,
                        std::size_t n) {
  const double* v = flat(bins);
  const __m128d s = _mm_set1_pd(scale);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d c0 = _mm_loadu_pd(v + 2 * i);      // [re0, im0]
    const __m128d c1 = _mm_loadu_pd(v + 2 * i + 2);  // [re1, im1]
    const __m128d sq0 = _mm_mul_pd(c0, c0);
    const __m128d sq1 = _mm_mul_pd(c1, c1);
    const __m128d res = _mm_shuffle_pd(sq0, sq1, 0b00);  // [re0^2, re1^2]
    const __m128d ims = _mm_shuffle_pd(sq0, sq1, 0b11);  // [im0^2, im1^2]
    const __m128d sum = _mm_add_pd(res, ims);
    _mm_storeu_pd(out + i, _mm_mul_pd(_mm_sqrt_pd(sum), s));
  }
  for (; i < n; ++i) {
    const double re = v[2 * i], im = v[2 * i + 1];
    out[i] = std::sqrt(re * re + im * im) * scale;
  }
}

// One complex (128 bits) per iteration: v = b*w via the swap/sign-flip
// identity, then a +- v with plain adds.
void butterfly_aos_sse2(Complex* a, Complex* b, const Complex* tw,
                        std::size_t half) {
  double* ap = flat(a);
  double* bp = flat(b);
  const double* wp = flat(tw);
  for (std::size_t k = 0; k < half; ++k) {
    const __m128d bv = _mm_loadu_pd(bp + 2 * k);         // [br, bi]
    const __m128d wv = _mm_loadu_pd(wp + 2 * k);         // [wr, wi]
    const __m128d wr = _mm_unpacklo_pd(wv, wv);          // [wr, wr]
    const __m128d wi = _mm_unpackhi_pd(wv, wv);          // [wi, wi]
    const __m128d bs = _mm_shuffle_pd(bv, bv, 0b01);     // [bi, br]
    // v = [br*wr - bi*wi, bi*wr + br*wi]
    const __m128d v =
        _mm_add_pd(_mm_mul_pd(bv, wr), sse2_neg_lo(_mm_mul_pd(bs, wi)));
    const __m128d av = _mm_loadu_pd(ap + 2 * k);
    _mm_storeu_pd(ap + 2 * k, _mm_add_pd(av, v));
    _mm_storeu_pd(bp + 2 * k, _mm_sub_pd(av, v));
  }
}

void butterfly_soa_sse2(double* a_re, double* a_im, double* b_re,
                        double* b_im, const Complex* tw, std::size_t half,
                        std::size_t lanes) {
  const double* wp = flat(tw);
  for (std::size_t k = 0; k < half; ++k) {
    const double wr = wp[2 * k], wi = wp[2 * k + 1];
    const __m128d wrv = _mm_set1_pd(wr);
    const __m128d wiv = _mm_set1_pd(wi);
    double* ar_row = a_re + k * lanes;
    double* ai_row = a_im + k * lanes;
    double* br_row = b_re + k * lanes;
    double* bi_row = b_im + k * lanes;
    std::size_t l = 0;
    for (; l + 2 <= lanes; l += 2) {
      const __m128d br = _mm_loadu_pd(br_row + l);
      const __m128d bi = _mm_loadu_pd(bi_row + l);
      const __m128d vr = _mm_sub_pd(_mm_mul_pd(br, wrv), _mm_mul_pd(bi, wiv));
      const __m128d vi = _mm_add_pd(_mm_mul_pd(br, wiv), _mm_mul_pd(bi, wrv));
      const __m128d ar = _mm_loadu_pd(ar_row + l);
      const __m128d ai = _mm_loadu_pd(ai_row + l);
      _mm_storeu_pd(ar_row + l, _mm_add_pd(ar, vr));
      _mm_storeu_pd(ai_row + l, _mm_add_pd(ai, vi));
      _mm_storeu_pd(br_row + l, _mm_sub_pd(ar, vr));
      _mm_storeu_pd(bi_row + l, _mm_sub_pd(ai, vi));
    }
    for (; l < lanes; ++l) {
      const double br = br_row[l], bi = bi_row[l];
      const double vr = br * wr - bi * wi;
      const double vi = br * wi + bi * wr;
      const double ar = ar_row[l], ai = ai_row[l];
      ar_row[l] = ar + vr;
      ai_row[l] = ai + vi;
      br_row[l] = ar - vr;
      bi_row[l] = ai - vi;
    }
  }
}

void cmul_aos_sse2(const Complex* a, const Complex* b, Complex* out,
                   std::size_t n) {
  const double* ap = flat(a);
  const double* bp = flat(b);
  double* op = flat(out);
  for (std::size_t i = 0; i < n; ++i) {
    const __m128d av = _mm_loadu_pd(ap + 2 * i);      // [ar, ai]
    const __m128d bv = _mm_loadu_pd(bp + 2 * i);      // [br, bi]
    const __m128d ar = _mm_unpacklo_pd(av, av);       // [ar, ar]
    const __m128d ai = _mm_unpackhi_pd(av, av);       // [ai, ai]
    const __m128d bs = _mm_shuffle_pd(bv, bv, 0b01);  // [bi, br]
    // [ar*br - ai*bi, ar*bi + ai*br]
    const __m128d v =
        _mm_add_pd(_mm_mul_pd(ar, bv), sse2_neg_lo(_mm_mul_pd(ai, bs)));
    _mm_storeu_pd(op + 2 * i, v);
  }
}

void goertzel_iterate_sse2(const double* x, std::size_t n,
                           const double* coeff, std::size_t nf, double* s1,
                           double* s2) {
  std::size_t f = 0;
  for (; f + 2 <= nf; f += 2) {
    const __m128d c = _mm_loadu_pd(coeff + f);
    __m128d a = _mm_loadu_pd(s1 + f);
    __m128d b = _mm_loadu_pd(s2 + f);
    for (std::size_t i = 0; i < n; ++i) {
      const __m128d xv = _mm_set1_pd(x[i]);
      const __m128d s0 = _mm_sub_pd(_mm_add_pd(xv, _mm_mul_pd(c, a)), b);
      b = a;
      a = s0;
    }
    _mm_storeu_pd(s1 + f, a);
    _mm_storeu_pd(s2 + f, b);
  }
  if (f < nf) {
    goertzel_iterate_scalar(x, n, coeff + f, nf - f, s1 + f, s2 + f);
  }
}

double chunk_max_sse2(const double* x, std::size_t n) {
  if (n < 4) return chunk_max_scalar(x, n);
  __m128d m = _mm_loadu_pd(x);
  std::size_t i = 2;
  for (; i + 2 <= n; i += 2) m = _mm_max_pd(m, _mm_loadu_pd(x + i));
  double lanes[2];
  _mm_storeu_pd(lanes, m);
  double best = lanes[0] > lanes[1] ? lanes[0] : lanes[1];
  for (; i < n; ++i) {
    if (x[i] > best) best = x[i];
  }
  return best;
}

constexpr Kernels kSse2Kernels{
    mul_sse2,         mag_scale_aos_sse2, mag_scale_soa_sse2,
    butterfly_aos_sse2, butterfly_soa_sse2, cmul_aos_sse2,
    goertzel_iterate_sse2, chunk_max_sse2,
};

// --- AVX2 kernels ------------------------------------------------------
//
// Compiled with a per-function target attribute so the rest of the
// translation unit (and the whole build) stays generic x86-64; the
// dispatcher only hands these out when the CPU reports AVX2.

#define MDN_AVX2 __attribute__((target("avx2")))

MDN_AVX2 void mul_avx2(const double* a, const double* b, double* out,
                       std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        out + i, _mm256_mul_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] * b[i];
}

MDN_AVX2 void mag_scale_soa_avx2(const double* re, const double* im,
                                 double scale, double* out, std::size_t n) {
  const __m256d s = _mm256_set1_pd(scale);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d r = _mm256_loadu_pd(re + i);
    const __m256d m = _mm256_loadu_pd(im + i);
    const __m256d sum = _mm256_add_pd(_mm256_mul_pd(r, r), _mm256_mul_pd(m, m));
    _mm256_storeu_pd(out + i, _mm256_mul_pd(_mm256_sqrt_pd(sum), s));
  }
  for (; i < n; ++i) {
    out[i] = std::sqrt(re[i] * re[i] + im[i] * im[i]) * scale;
  }
}

MDN_AVX2 void mag_scale_aos_avx2(const Complex* bins, double scale,
                                 double* out, std::size_t n) {
  const double* v = flat(bins);
  const __m256d s = _mm256_set1_pd(scale);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d c0 = _mm256_loadu_pd(v + 2 * i);      // [re0 im0 re1 im1]
    const __m256d c1 = _mm256_loadu_pd(v + 2 * i + 4);  // [re2 im2 re3 im3]
    const __m256d sq0 = _mm256_mul_pd(c0, c0);
    const __m256d sq1 = _mm256_mul_pd(c1, c1);
    // hadd within 128-bit lanes: [re0²+im0², re2²+im2², re1²+im1², ...]
    const __m256d sum = _mm256_hadd_pd(
        _mm256_permute2f128_pd(sq0, sq1, 0x20),
        _mm256_permute2f128_pd(sq0, sq1, 0x31));
    _mm256_storeu_pd(out + i, _mm256_mul_pd(_mm256_sqrt_pd(sum), s));
  }
  for (; i < n; ++i) {
    const double re = v[2 * i], im = v[2 * i + 1];
    out[i] = std::sqrt(re * re + im * im) * scale;
  }
}

// Two complex values (256 bits) per iteration.  addsub computes
// [lo - x, hi + y] per 128-bit half — exactly vr = br*wr - bi*wi in the
// even lanes and vi = bi*wr + br*wi in the odd lanes.
MDN_AVX2 void butterfly_aos_avx2(Complex* a, Complex* b, const Complex* tw,
                                 std::size_t half) {
  double* ap = flat(a);
  double* bp = flat(b);
  const double* wp = flat(tw);
  std::size_t k = 0;
  for (; k + 2 <= half; k += 2) {
    const __m256d bv = _mm256_loadu_pd(bp + 2 * k);  // [br0 bi0 br1 bi1]
    const __m256d wv = _mm256_loadu_pd(wp + 2 * k);  // [wr0 wi0 wr1 wi1]
    const __m256d wr = _mm256_permute_pd(wv, 0b0000);  // [wr0 wr0 wr1 wr1]
    const __m256d wi = _mm256_permute_pd(wv, 0b1111);  // [wi0 wi0 wi1 wi1]
    const __m256d bs = _mm256_permute_pd(bv, 0b0101);  // [bi0 br0 bi1 br1]
    const __m256d v =
        _mm256_addsub_pd(_mm256_mul_pd(bv, wr), _mm256_mul_pd(bs, wi));
    const __m256d av = _mm256_loadu_pd(ap + 2 * k);
    _mm256_storeu_pd(ap + 2 * k, _mm256_add_pd(av, v));
    _mm256_storeu_pd(bp + 2 * k, _mm256_sub_pd(av, v));
  }
  if (k < half) butterfly_aos_sse2(a + k, b + k, tw + k, half - k);
}

MDN_AVX2 void butterfly_soa_avx2(double* a_re, double* a_im, double* b_re,
                                 double* b_im, const Complex* tw,
                                 std::size_t half, std::size_t lanes) {
  if (lanes < 4) {
    butterfly_soa_sse2(a_re, a_im, b_re, b_im, tw, half, lanes);
    return;
  }
  const double* wp = flat(tw);
  for (std::size_t k = 0; k < half; ++k) {
    const double wr = wp[2 * k], wi = wp[2 * k + 1];
    const __m256d wrv = _mm256_set1_pd(wr);
    const __m256d wiv = _mm256_set1_pd(wi);
    double* ar_row = a_re + k * lanes;
    double* ai_row = a_im + k * lanes;
    double* br_row = b_re + k * lanes;
    double* bi_row = b_im + k * lanes;
    std::size_t l = 0;
    for (; l + 4 <= lanes; l += 4) {
      const __m256d br = _mm256_loadu_pd(br_row + l);
      const __m256d bi = _mm256_loadu_pd(bi_row + l);
      const __m256d vr =
          _mm256_sub_pd(_mm256_mul_pd(br, wrv), _mm256_mul_pd(bi, wiv));
      const __m256d vi =
          _mm256_add_pd(_mm256_mul_pd(br, wiv), _mm256_mul_pd(bi, wrv));
      const __m256d ar = _mm256_loadu_pd(ar_row + l);
      const __m256d ai = _mm256_loadu_pd(ai_row + l);
      _mm256_storeu_pd(ar_row + l, _mm256_add_pd(ar, vr));
      _mm256_storeu_pd(ai_row + l, _mm256_add_pd(ai, vi));
      _mm256_storeu_pd(br_row + l, _mm256_sub_pd(ar, vr));
      _mm256_storeu_pd(bi_row + l, _mm256_sub_pd(ai, vi));
    }
    for (; l < lanes; ++l) {
      const double br = br_row[l], bi = bi_row[l];
      const double vr = br * wr - bi * wi;
      const double vi = br * wi + bi * wr;
      const double ar = ar_row[l], ai = ai_row[l];
      ar_row[l] = ar + vr;
      ai_row[l] = ai + vi;
      br_row[l] = ar - vr;
      bi_row[l] = ai - vi;
    }
  }
}

MDN_AVX2 void cmul_aos_avx2(const Complex* a, const Complex* b, Complex* out,
                            std::size_t n) {
  const double* ap = flat(a);
  const double* bp = flat(b);
  double* op = flat(out);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m256d av = _mm256_loadu_pd(ap + 2 * i);
    const __m256d bv = _mm256_loadu_pd(bp + 2 * i);
    const __m256d ar = _mm256_permute_pd(av, 0b0000);
    const __m256d ai = _mm256_permute_pd(av, 0b1111);
    const __m256d bs = _mm256_permute_pd(bv, 0b0101);
    // [ar*br - ai*bi, ar*bi + ai*br] per complex
    const __m256d v =
        _mm256_addsub_pd(_mm256_mul_pd(ar, bv), _mm256_mul_pd(ai, bs));
    _mm256_storeu_pd(op + 2 * i, v);
  }
  if (i < n) cmul_aos_sse2(a + i, b + i, out + i, n - i);
}

MDN_AVX2 void goertzel_iterate_avx2(const double* x, std::size_t n,
                                    const double* coeff, std::size_t nf,
                                    double* s1, double* s2) {
  std::size_t f = 0;
  for (; f + 4 <= nf; f += 4) {
    const __m256d c = _mm256_loadu_pd(coeff + f);
    __m256d a = _mm256_loadu_pd(s1 + f);
    __m256d b = _mm256_loadu_pd(s2 + f);
    for (std::size_t i = 0; i < n; ++i) {
      const __m256d xv = _mm256_set1_pd(x[i]);
      const __m256d s0 =
          _mm256_sub_pd(_mm256_add_pd(xv, _mm256_mul_pd(c, a)), b);
      b = a;
      a = s0;
    }
    _mm256_storeu_pd(s1 + f, a);
    _mm256_storeu_pd(s2 + f, b);
  }
  if (f < nf) {
    goertzel_iterate_sse2(x, n, coeff + f, nf - f, s1 + f, s2 + f);
  }
}

MDN_AVX2 double chunk_max_avx2(const double* x, std::size_t n) {
  if (n < 8) return chunk_max_sse2(x, n);
  __m256d m = _mm256_loadu_pd(x);
  std::size_t i = 4;
  for (; i + 4 <= n; i += 4) m = _mm256_max_pd(m, _mm256_loadu_pd(x + i));
  double lanes[4];
  _mm256_storeu_pd(lanes, m);
  double best = lanes[0];
  for (int l = 1; l < 4; ++l) {
    if (lanes[l] > best) best = lanes[l];
  }
  for (; i < n; ++i) {
    if (x[i] > best) best = x[i];
  }
  return best;
}

constexpr Kernels kAvx2Kernels{
    mul_avx2,         mag_scale_aos_avx2, mag_scale_soa_avx2,
    butterfly_aos_avx2, butterfly_soa_avx2, cmul_aos_avx2,
    goertzel_iterate_avx2, chunk_max_avx2,
};

#endif  // MDN_SIMD_X86

Isa detect_isa() noexcept {
#if MDN_SIMD_X86
  if (__builtin_cpu_supports("avx2")) return Isa::kAvx2;
  return Isa::kSse2;  // SSE2 is the x86-64 baseline
#else
  return Isa::kScalar;
#endif
}

// Selected once (lazily) and then read with one relaxed load per call.
// set_active_isa_for_testing may rewrite it; both stores are idempotent
// with respect to concurrent detection, so the benign init race is fine.
// Declared through the check shim (common/atomic.h): std::atomic in
// normal builds; tests/model/ verifies the single-init protocol.
check::Atomic<const Kernels*> g_active_table{nullptr};
check::Atomic<int> g_active_isa{-1};

const Kernels* init_active() MDN_CHECK_NOEXCEPT {
  const Isa isa = detect_isa();
  const Kernels* table = &kernels_for(isa);
  // mo: idempotent hint (same value from every initializer); the table
  // pointer below carries the real publication
  g_active_isa.store(static_cast<int>(isa), std::memory_order_relaxed);
  // mo: release publishes the (immutable, static) table selection to
  // active_kernels' acquire load
  g_active_table.store(table, std::memory_order_release);
  return table;
}

}  // namespace

const char* isa_name(Isa isa) noexcept {
  switch (isa) {
    case Isa::kScalar: return "scalar";
    case Isa::kSse2: return "sse2";
    case Isa::kAvx2: return "avx2";
  }
  return "unknown";
}

bool isa_available(Isa isa) noexcept {
#if MDN_SIMD_X86
  if (isa == Isa::kAvx2) return __builtin_cpu_supports("avx2") != 0;
  return true;  // scalar and sse2 always
#else
  return isa == Isa::kScalar;
#endif
}

const Kernels& kernels_for(Isa isa) noexcept {
#if MDN_SIMD_X86
  switch (isa) {
    case Isa::kScalar: return kScalarKernels;
    case Isa::kSse2: return kSse2Kernels;
    case Isa::kAvx2:
      if (isa_available(Isa::kAvx2)) return kAvx2Kernels;
      return kScalarKernels;
  }
#else
  (void)isa;
#endif
  return kScalarKernels;
}

Isa active_isa() MDN_CHECK_NOEXCEPT {
  // mo: plain enum readback, no dependent data behind it
  const int isa = g_active_isa.load(std::memory_order_relaxed);
  if (isa < 0) {
    init_active();
    // mo: plain enum readback, no dependent data behind it
    return static_cast<Isa>(g_active_isa.load(std::memory_order_relaxed));
  }
  return static_cast<Isa>(isa);
}

const Kernels& active_kernels() MDN_CHECK_NOEXCEPT {
  // mo: pairs with init_active's release store; the table the pointer
  // leads to must be visible before use
  const Kernels* table = g_active_table.load(std::memory_order_acquire);
  if (table == nullptr) table = init_active();
  return *table;
}

Isa set_active_isa_for_testing(Isa isa) MDN_CHECK_NOEXCEPT {
  const Isa previous = active_isa();
  if (!isa_available(isa)) return previous;
  // mo: idempotent hint; the table pointer carries the publication
  g_active_isa.store(static_cast<int>(isa), std::memory_order_relaxed);
  // mo: release publishes the (immutable, static) table selection to
  // active_kernels' acquire load
  g_active_table.store(&kernels_for(isa), std::memory_order_release);
  return previous;
}

void reset_dispatch_for_testing() MDN_CHECK_NOEXCEPT {
  // mo: test-only teardown; callers quiesce the hot path first
  g_active_isa.store(-1, std::memory_order_relaxed);
  // mo: test-only teardown; callers quiesce the hot path first
  g_active_table.store(nullptr, std::memory_order_release);
}

void export_dispatch_metrics() {
  obs::Registry::global()
      .gauge("dsp/simd/dispatch")
      .set(static_cast<int>(active_isa()));
}

}  // namespace mdn::dsp::simd
