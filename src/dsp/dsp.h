// Umbrella header for the mdn_dsp library.
#pragma once

#include "dsp/ecdf.h"
#include "dsp/fft.h"
#include "dsp/fft_plan.h"
#include "dsp/goertzel.h"
#include "dsp/mel.h"
#include "dsp/spectrogram.h"
#include "dsp/spectrum.h"
#include "dsp/window.h"
