// Planned FFT engine: precomputed twiddles, zero-allocation execution.
//
// The free functions in dsp/fft.h recompute sin/cos twiddle factors and
// heap-allocate working buffers on every call.  That is fine for one-off
// analysis, but the tone-detection hot loop (microphone block → window →
// FFT → peak match, Fig 2b) runs the *same* transform size thousands of
// times per second.  Following the classic FFTW "plan once, execute many"
// design, a plan precomputes everything that depends only on the
// transform size and direction:
//   * FftPlan      — complex DFT of any length: twiddle table + bit
//                    reversal permutation for power-of-two sizes, a
//                    precomputed Bluestein chirp + convolution kernel for
//                    everything else;
//   * RealFftPlan  — forward DFT of a real signal producing the
//                    single-sided half spectrum, with precomputed
//                    packed-real untangle coefficients;
//   * PlanCache    — thread-safe process-wide cache keyed by (size,
//                    direction) so every subsystem asking for the same
//                    transform shares one table set.
//
// The rule is "plan cold, execute hot": build or fetch a plan at
// construction time, then execute() into caller-provided buffers — the
// steady state performs zero heap allocations.  Plans are immutable
// after construction and execute() is const, so one plan may be executed
// concurrently from many threads (each thread brings its own scratch).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "common/mutex.h"
#include "dsp/fft.h"

namespace mdn::dsp {

/// A planned complex DFT of a fixed size and direction.
class FftPlan {
 public:
  /// Plans an `size`-point transform.  `inverse` selects the conjugate
  /// (unscaled) transform; like fft_radix2_inplace, the 1/N scale of a
  /// true inverse is left to the caller.
  explicit FftPlan(std::size_t size, bool inverse = false);

  std::size_t size() const noexcept { return n_; }
  bool inverse() const noexcept { return inverse_; }

  /// Number of Complex scratch elements execute() needs.  Zero for
  /// power-of-two sizes; the Bluestein convolution length otherwise.
  std::size_t scratch_size() const noexcept { return m_; }

  /// In-place transform of `data` (data.size() == size()).  `scratch`
  /// must provide at least scratch_size() elements; it may be empty for
  /// power-of-two sizes.  Performs no heap allocation.
  MDN_REALTIME void execute(std::span<Complex> data,
                            std::span<Complex> scratch = {}) const;

  /// True when execute_batch_soa() is usable (power-of-two sizes only).
  bool supports_batch() const noexcept { return m_ == 0; }

  /// Batched in-place transform of `lanes` independent channels stored
  /// structure-of-arrays: element k of channel l lives at
  /// re[k*lanes + l] / im[k*lanes + l] (re and im each hold
  /// size()*lanes doubles).  One bit-reversal + butterfly sweep serves
  /// all lanes; each lane's result is bit-identical to running
  /// execute() on that channel alone.  Power-of-two sizes only
  /// (supports_batch()).  Performs no heap allocation.
  MDN_REALTIME void execute_batch_soa(std::span<double> re,
                                      std::span<double> im,
                                      std::size_t lanes) const;

  /// Convenience out-of-place form (allocates the result and scratch).
  std::vector<Complex> transform(std::span<const Complex> input) const;

 private:
  void execute_pow2(std::span<Complex> data) const noexcept;

  std::size_t n_;
  bool inverse_;
  // Power-of-two path: stage-major twiddle table (n - 1 entries), the
  // len/2 factors of stage `len` stored contiguously so the butterfly
  // loop reads them at unit stride.
  std::vector<std::uint32_t> bitrev_;
  std::vector<Complex> twiddles_;
  // Bluestein path (non power-of-two): chirp w[k], the forward FFT of
  // the convolution kernel, and two power-of-two sub-plans of length m_.
  std::size_t m_ = 0;
  std::vector<Complex> chirp_;
  std::vector<Complex> kernel_fft_;
  std::unique_ptr<FftPlan> conv_forward_;
  std::unique_ptr<FftPlan> conv_inverse_;
};

/// A planned forward DFT of a real signal, producing the single-sided
/// spectrum (bins [0, N/2]; the upper half is its conjugate mirror).
/// Power-of-two sizes >= 4 use the packed-real trick (an N/2-point
/// complex FFT plus a precomputed untangle pass) — roughly half the cost
/// of promoting to complex.  Other sizes fall back to a complex plan.
class RealFftPlan {
 public:
  explicit RealFftPlan(std::size_t size);

  std::size_t size() const noexcept { return n_; }
  /// Number of output bins: N/2 + 1.
  std::size_t bins() const noexcept { return n_ == 0 ? 0 : n_ / 2 + 1; }
  /// Number of Complex scratch elements execute() needs.
  std::size_t scratch_size() const noexcept { return scratch_size_; }

  /// Transforms `input` (input.size() == size()) into `out_bins`
  /// (out_bins.size() >= bins()).  `scratch` must provide at least
  /// scratch_size() elements.  Performs no heap allocation.
  MDN_REALTIME void execute(std::span<const double> input,
                            std::span<Complex> out_bins,
                            std::span<Complex> scratch) const;

  /// True when execute_batch() is usable (the packed-real path, i.e.
  /// power-of-two sizes >= 4).
  bool supports_batch() const noexcept { return half_plan_ != nullptr; }

  /// Doubles each of re_scratch/im_scratch must provide for a
  /// `lanes`-channel execute_batch(): (size()/2) * lanes.
  std::size_t batch_scratch_doubles(std::size_t lanes) const noexcept {
    return (n_ / 2) * lanes;
  }

  /// Batched transform: inputs[l] points at size() samples of channel
  /// l, out_bins[l] at >= bins() output bins (l < lanes =
  /// inputs.size() == out_bins.size()).  One packed SoA half-size FFT
  /// serves all lanes; each lane's bins are bit-identical to execute()
  /// on that channel alone.  Requires supports_batch().  Performs no
  /// heap allocation.
  MDN_REALTIME void execute_batch(std::span<const double* const> inputs,
                                  std::span<Complex* const> out_bins,
                                  std::span<double> re_scratch,
                                  std::span<double> im_scratch) const;

  /// Convenience form returning the bins() half spectrum (allocates).
  std::vector<Complex> spectrum(std::span<const double> input) const;

 private:
  std::size_t n_;
  std::size_t scratch_size_ = 0;
  // Packed path: half-size complex plan + untangle twiddles
  // w_k = exp(-2*pi*i*k/n) for k in [0, n/2].
  std::unique_ptr<FftPlan> half_plan_;
  std::vector<Complex> untangle_;
  // Fallback path: full-size complex plan (promote to complex).
  std::unique_ptr<FftPlan> full_plan_;
};

/// Thread-safe process-wide plan cache.  Plans are built on first
/// request and shared (they are immutable, so concurrent execute() on a
/// cached plan is safe).  The free functions in dsp/fft.h fetch their
/// plans here, so legacy callers transparently reuse the tables.
class PlanCache {
 public:
  PlanCache() = default;
  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  static PlanCache& global();

  std::shared_ptr<const FftPlan> complex_plan(std::size_t size,
                                              bool inverse = false);
  std::shared_ptr<const RealFftPlan> real_plan(std::size_t size);

  /// Number of distinct plans cached (for tests / introspection).
  std::size_t size() const;

  /// Plans this cache has constructed (i.e. cache misses) since
  /// creation.  Test-only hook: the concurrent first-touch test proves
  /// N racing threads requesting one size cause exactly one build.
  std::size_t constructions_for_testing() const;

 private:
  mutable common::Mutex mu_;
  std::map<std::pair<std::size_t, bool>, std::shared_ptr<const FftPlan>>
      complex_ MDN_GUARDED_BY(mu_);
  std::map<std::size_t, std::shared_ptr<const RealFftPlan>> real_
      MDN_GUARDED_BY(mu_);
  std::size_t constructions_ MDN_GUARDED_BY(mu_) = 0;
};

}  // namespace mdn::dsp
