#include "dsp/window.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "dsp/simd.h"

namespace mdn::dsp {
namespace {
constexpr double kTwoPi = 2.0 * std::numbers::pi;
}

std::string_view window_name(WindowKind kind) noexcept {
  switch (kind) {
    case WindowKind::kRectangular: return "rectangular";
    case WindowKind::kHann: return "hann";
    case WindowKind::kHamming: return "hamming";
    case WindowKind::kBlackman: return "blackman";
  }
  return "unknown";
}

std::vector<double> make_window(WindowKind kind, std::size_t n) {
  std::vector<double> w(n, 1.0);
  if (n == 0) return w;
  const auto nd = static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(i) / nd;  // periodic form
    switch (kind) {
      case WindowKind::kRectangular:
        w[i] = 1.0;
        break;
      case WindowKind::kHann:
        w[i] = 0.5 - 0.5 * std::cos(kTwoPi * x);
        break;
      case WindowKind::kHamming:
        w[i] = 0.54 - 0.46 * std::cos(kTwoPi * x);
        break;
      case WindowKind::kBlackman:
        w[i] = 0.42 - 0.5 * std::cos(kTwoPi * x) +
               0.08 * std::cos(2.0 * kTwoPi * x);
        break;
    }
  }
  return w;
}

void apply_window(std::span<double> signal, std::span<const double> window) {
  if (signal.size() != window.size()) {
    throw std::invalid_argument("apply_window: size mismatch");
  }
  simd::active_kernels().mul(signal.data(), window.data(), signal.data(),
                             signal.size());
}

double window_coherent_gain(std::span<const double> window) noexcept {
  double sum = 0.0;
  for (double w : window) sum += w;
  return sum;
}

}  // namespace mdn::dsp
