// SIMD kernel dispatch for the DSP hot path.
//
// The detection loop spends its time in four elementwise passes —
// window multiply, FFT butterflies, Goertzel recurrences and spectrum
// magnitudes.  Each has a vectorised AVX2 and SSE2 implementation plus
// a scalar reference, selected once at startup by runtime CPU
// detection and reached through a table of function pointers, so the
// per-call cost of dispatch is one pointer load.
//
// Contract: the scalar kernels are the *reference semantics*.  Every
// vector kernel performs the identical arithmetic, in the identical
// per-element operation order, with no reassociation, no FMA
// contraction and no approximate instructions — so scalar and vector
// paths agree bit-for-bit on every finite input (the equivalence suite
// in tests/dsp/test_simd.cpp sweeps lengths that are not multiples of
// the vector width to pin down tail handling).  Kernels take
// unaligned pointers; all loads/stores are unaligned-safe.
//
// Build-time opt-out: configure with -DMDN_NO_SIMD=ON (a compile-time
// switch, no environment variables — getenv is banned by the
// determinism lint) and only the scalar table is compiled in.  The
// selected path is exported as the gauge "dsp/simd/dispatch"
// (0=scalar, 1=sse2, 2=avx2) so every bench JSON records which kernels
// produced its numbers.
#pragma once

#include <cstddef>

#include "common/annotations.h"
#include "common/check.h"  // MDN_CHECK_NOEXCEPT
#include "dsp/fft.h"  // dsp::Complex

namespace mdn::dsp::simd {

enum class Isa : int {
  kScalar = 0,
  kSse2 = 1,
  kAvx2 = 2,
};

/// Human-readable name ("scalar", "sse2", "avx2").
const char* isa_name(Isa isa) noexcept;

/// The kernel table.  All kernels are safe on unaligned pointers and
/// any length (including 0); `out` may alias an input where noted.
struct Kernels {
  /// out[i] = a[i] * b[i].  `out` may alias `a`.
  void (*mul)(const double* a, const double* b, double* out, std::size_t n);

  /// out[i] = sqrt(re(bins[i])^2 + im(bins[i])^2) * scale  (AoS complex).
  void (*mag_scale_aos)(const Complex* bins, double scale, double* out,
                        std::size_t n);

  /// out[i] = sqrt(re[i]^2 + im[i]^2) * scale  (split re/im arrays).
  void (*mag_scale_soa)(const double* re, const double* im, double scale,
                        double* out, std::size_t n);

  /// One FFT butterfly slice over contiguous k in [0, half):
  ///   v    = b[k] * tw[k]   (vr = br*wr - bi*wi, vi = br*wi + bi*wr)
  ///   b[k] = a[k] - v,  a[k] = a[k] + v
  void (*butterfly_aos)(Complex* a, Complex* b, const Complex* tw,
                        std::size_t half);

  /// The same butterfly slice over `lanes` independent channels stored
  /// SoA: row k lives at offset k*lanes, and tw[k] is broadcast across
  /// the row.  One call covers a whole (stage, block) slice so the
  /// indirect-call cost amortises over half*lanes butterflies:
  ///   v         = b_row[k] * tw[k]
  ///   b_row[k]  = a_row[k] - v,  a_row[k] = a_row[k] + v
  void (*butterfly_soa)(double* a_re, double* a_im, double* b_re,
                        double* b_im, const Complex* tw, std::size_t half,
                        std::size_t lanes);

  /// out[i] = a[i] * b[i] (complex, AoS): re = ar*br - ai*bi,
  /// im = ar*bi + ai*br.  `out` may alias `a`.
  void (*cmul_aos)(const Complex* a, const Complex* b, Complex* out,
                   std::size_t n);

  /// Goertzel recurrence for `nf` filters over one block: for each
  /// filter f, s0 = x + coeff[f]*s1 - s2 per sample, leaving the final
  /// s1/s2 states in s1[f]/s2[f] (callers finish power/phase scalar).
  /// s1 and s2 must be zero-initialised by the caller.  Vector paths
  /// run filters in groups of the vector width (sample-major), scalar
  /// runs filter-major; per-filter arithmetic is identical either way.
  void (*goertzel_iterate)(const double* x, std::size_t n,
                           const double* coeff, std::size_t nf, double* s1,
                           double* s2);

  /// max(x[0..n)) with a plain elementwise maximum (no NaN handling —
  /// feed finite spectra only).  Returns -inf for n == 0.  Used to skip
  /// whole below-threshold chunks in the peak scan.
  double (*chunk_max)(const double* x, std::size_t n);
};

/// The ISA picked at startup (or forced for tests).
Isa active_isa() MDN_CHECK_NOEXCEPT;

/// The kernel table for the active ISA.  One relaxed atomic load.
MDN_REALTIME const Kernels& active_kernels() MDN_CHECK_NOEXCEPT;

/// True when `isa` is usable in this build on this CPU.
bool isa_available(Isa isa) noexcept;

/// The kernel table for a specific ISA — scalar-backed when `isa` is
/// not available (check isa_available first when exactness matters).
/// For the equivalence tests; the hot path uses active_kernels().
const Kernels& kernels_for(Isa isa) noexcept;

/// Forces the active table (tests only; not thread-safe against
/// concurrent hot paths).  Returns the previously active ISA.  Pass an
/// unavailable ISA and the call is a no-op returning the current one.
Isa set_active_isa_for_testing(Isa isa) MDN_CHECK_NOEXCEPT;

/// Clears the dispatch state back to "never initialized" (tests only —
/// the model-check harness re-runs lazy init on every schedule).
void reset_dispatch_for_testing() MDN_CHECK_NOEXCEPT;

/// Sets the "dsp/simd/dispatch" gauge to the active ISA.  Called lazily
/// by the first active_kernels() user with registry access (detector
/// construction) and explicitly by benches/dashboards before export.
void export_dispatch_metrics();

}  // namespace mdn::dsp::simd
