#include "dsp/goertzel.h"

#include <cmath>
#include <numbers>

namespace mdn::dsp {

Goertzel::Goertzel(double frequency_hz, double sample_rate) noexcept
    : frequency_hz_(frequency_hz) {
  const double w = 2.0 * std::numbers::pi * frequency_hz / sample_rate;
  coeff_ = 2.0 * std::cos(w);
  sin_w_ = std::sin(w);
  cos_w_ = std::cos(w);
}

void Goertzel::push(double sample) noexcept {
  const double s0 = sample + coeff_ * s1_ - s2_;
  s2_ = s1_;
  s1_ = s0;
  ++count_;
}

void Goertzel::reset() noexcept {
  s1_ = 0.0;
  s2_ = 0.0;
  count_ = 0;
}

double Goertzel::block_power() const noexcept {
  const double real = s1_ - s2_ * cos_w_;
  const double imag = s2_ * sin_w_;
  return real * real + imag * imag;
}

double goertzel_power(std::span<const double> signal, double frequency_hz,
                      double sample_rate) noexcept {
  Goertzel g(frequency_hz, sample_rate);
  for (double s : signal) g.push(s);
  return g.block_power();
}

}  // namespace mdn::dsp
