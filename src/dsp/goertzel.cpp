#include "dsp/goertzel.h"

#include <cmath>
#include <numbers>

namespace mdn::dsp {

Goertzel::Goertzel(double frequency_hz, double sample_rate) noexcept
    : frequency_hz_(frequency_hz) {
  const double w = 2.0 * std::numbers::pi * frequency_hz / sample_rate;
  coeff_ = 2.0 * std::cos(w);
  sin_w_ = std::sin(w);
  cos_w_ = std::cos(w);
}

void Goertzel::push(double sample) noexcept {
  const double s0 = sample + coeff_ * s1_ - s2_;
  s2_ = s1_;
  s1_ = s0;
  ++count_;
}

void Goertzel::reset() noexcept {
  s1_ = 0.0;
  s2_ = 0.0;
  count_ = 0;
}

double Goertzel::block_power() const noexcept {
  const double real = s1_ - s2_ * cos_w_;
  const double imag = s2_ * sin_w_;
  return real * real + imag * imag;
}

double goertzel_power(std::span<const double> signal, double frequency_hz,
                      double sample_rate) noexcept {
  Goertzel g(frequency_hz, sample_rate);
  for (double s : signal) g.push(s);
  return g.block_power();
}

GoertzelBank::GoertzelBank(std::span<const double> frequencies_hz,
                           double sample_rate)
    : frequencies_(frequencies_hz.begin(), frequencies_hz.end()),
      sample_rate_(sample_rate) {
  coeff_.reserve(frequencies_.size());
  cos_w_.reserve(frequencies_.size());
  sin_w_.reserve(frequencies_.size());
  for (double f : frequencies_) {
    const double w = 2.0 * std::numbers::pi * f / sample_rate;
    coeff_.push_back(2.0 * std::cos(w));
    cos_w_.push_back(std::cos(w));
    sin_w_.push_back(std::sin(w));
  }
}

void GoertzelBank::block_powers(std::span<const double> block,
                                std::span<double> out) const {
  // Filter-major order: each filter streams the block with its state in
  // registers, so the inner loop is two fmas per sample and no memory
  // traffic beyond the block itself.
  for (std::size_t i = 0; i < coeff_.size(); ++i) {
    const double c = coeff_[i];
    double s1 = 0.0, s2 = 0.0;
    for (double x : block) {
      const double s0 = x + c * s1 - s2;
      s2 = s1;
      s1 = s0;
    }
    const double real = s1 - s2 * cos_w_[i];
    const double imag = s2 * sin_w_[i];
    out[i] = real * real + imag * imag;
  }
}

void GoertzelBank::block_amplitudes(std::span<const double> block,
                                    std::span<double> out) const {
  block_powers(block, out);
  const double n = static_cast<double>(block.size());
  const double scale = n > 0.0 ? 2.0 / n : 0.0;
  for (std::size_t i = 0; i < coeff_.size(); ++i) {
    out[i] = scale * std::sqrt(out[i]);
  }
}

}  // namespace mdn::dsp
