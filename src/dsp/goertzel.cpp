#include "dsp/goertzel.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <vector>

#include "dsp/simd.h"

namespace mdn::dsp {

Goertzel::Goertzel(double frequency_hz, double sample_rate) noexcept
    : frequency_hz_(frequency_hz) {
  const double w = 2.0 * std::numbers::pi * frequency_hz / sample_rate;
  coeff_ = 2.0 * std::cos(w);
  sin_w_ = std::sin(w);
  cos_w_ = std::cos(w);
}

void Goertzel::push(double sample) noexcept {
  const double s0 = sample + coeff_ * s1_ - s2_;
  s2_ = s1_;
  s1_ = s0;
  ++count_;
}

void Goertzel::reset() noexcept {
  s1_ = 0.0;
  s2_ = 0.0;
  count_ = 0;
}

double Goertzel::block_power() const noexcept {
  const double real = s1_ - s2_ * cos_w_;
  const double imag = s2_ * sin_w_;
  return real * real + imag * imag;
}

double goertzel_power(std::span<const double> signal, double frequency_hz,
                      double sample_rate) noexcept {
  Goertzel g(frequency_hz, sample_rate);
  for (double s : signal) g.push(s);
  return g.block_power();
}

GoertzelBank::GoertzelBank(std::span<const double> frequencies_hz,
                           double sample_rate)
    : frequencies_(frequencies_hz.begin(), frequencies_hz.end()),
      sample_rate_(sample_rate) {
  coeff_.reserve(frequencies_.size());
  cos_w_.reserve(frequencies_.size());
  sin_w_.reserve(frequencies_.size());
  for (double f : frequencies_) {
    const double w = 2.0 * std::numbers::pi * f / sample_rate;
    coeff_.push_back(2.0 * std::cos(w));
    cos_w_.push_back(std::cos(w));
    sin_w_.push_back(std::sin(w));
  }
}

void GoertzelBank::block_powers(std::span<const double> block,
                                std::span<double> out) const {
  // The recurrence runs through the SIMD kernel table: vector paths
  // stream the block once for groups of vector-width filters, the
  // scalar reference goes filter-major — per-filter arithmetic is
  // identical either way (see dsp/simd.h).  Final states land in a
  // grow-once thread-local scratch so the hot call stays alloc-free.
  const std::size_t nf = coeff_.size();
  thread_local std::vector<double> s1, s2;
  if (s1.size() < nf) {
    s1.resize(nf);
    s2.resize(nf);
  }
  std::fill_n(s1.begin(), nf, 0.0);
  std::fill_n(s2.begin(), nf, 0.0);
  simd::active_kernels().goertzel_iterate(block.data(), block.size(),
                                          coeff_.data(), nf, s1.data(),
                                          s2.data());
  for (std::size_t i = 0; i < nf; ++i) {
    const double real = s1[i] - s2[i] * cos_w_[i];
    const double imag = s2[i] * sin_w_[i];
    out[i] = real * real + imag * imag;
  }
}

void GoertzelBank::block_amplitudes(std::span<const double> block,
                                    std::span<double> out) const {
  block_powers(block, out);
  const double n = static_cast<double>(block.size());
  const double scale = n > 0.0 ? 2.0 / n : 0.0;
  for (std::size_t i = 0; i < coeff_.size(); ++i) {
    out[i] = scale * std::sqrt(out[i]);
  }
}

}  // namespace mdn::dsp
