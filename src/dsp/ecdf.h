// Empirical cumulative distribution function, used by the Fig 2b
// reproduction (CDF of FFT processing time).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace mdn::dsp {

class Ecdf {
 public:
  Ecdf() = default;
  explicit Ecdf(std::span<const double> samples);

  void add(double sample);
  std::size_t size() const noexcept { return samples_.size(); }

  /// Fraction of samples <= x.  Returns 0 for an empty distribution.
  double cdf(double x) const;

  /// Smallest sample v such that cdf(v) >= q, q in [0, 1].  Throws on an
  /// empty distribution.
  double quantile(double q) const;

  double min() const;
  double max() const;
  double mean() const;

  /// (x, F(x)) pairs at `points` evenly spaced quantiles, ready to print
  /// as a CDF curve.
  std::vector<std::pair<double, double>> curve(std::size_t points) const;

 private:
  void ensure_sorted() const;

  mutable std::vector<double> samples_;
  mutable std::size_t sorted_ = 0;  // samples_[0..sorted_) are sorted
};

}  // namespace mdn::dsp
