#include "dsp/spectrum.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "dsp/fft.h"
#include "dsp/window.h"

namespace mdn::dsp {

double amplitude_to_db(double amplitude, double reference,
                       double floor_db) noexcept {
  if (amplitude <= 0.0 || reference <= 0.0) return floor_db;
  return std::max(floor_db, 20.0 * std::log10(amplitude / reference));
}

double db_to_amplitude(double db, double reference) noexcept {
  return reference * std::pow(10.0, db / 20.0);
}

std::vector<double> amplitude_spectrum(std::span<const double> signal,
                                       std::span<const double> window) {
  if (signal.size() != window.size()) {
    throw std::invalid_argument("amplitude_spectrum: window size mismatch");
  }
  const std::size_t n = signal.size();
  if (n == 0) return {};

  std::vector<double> windowed(signal.begin(), signal.end());
  apply_window(windowed, window);
  const auto spectrum = fft_real(windowed);

  // A sine of amplitude A contributes A * gain / 2 to its bin (the other
  // half lands in the conjugate bin), where gain is the coherent window
  // gain; scale so the reported value is A.
  const double gain = window_coherent_gain(window);
  const double scale = gain > 0.0 ? 2.0 / gain : 0.0;

  std::vector<double> out(n / 2 + 1);
  for (std::size_t k = 0; k < out.size(); ++k) {
    out[k] = std::abs(spectrum[k]) * scale;
  }
  // DC and Nyquist have no conjugate partner.
  out.front() /= 2.0;
  if (n % 2 == 0) out.back() /= 2.0;
  return out;
}

std::vector<double> amplitude_spectrum_padded(std::span<const double> signal,
                                              std::span<const double> window,
                                              std::size_t fft_size) {
  if (signal.size() != window.size()) {
    throw std::invalid_argument(
        "amplitude_spectrum_padded: window size mismatch");
  }
  if (fft_size < signal.size()) {
    throw std::invalid_argument(
        "amplitude_spectrum_padded: fft_size smaller than signal");
  }
  std::vector<double> padded(fft_size, 0.0);
  for (std::size_t i = 0; i < signal.size(); ++i) {
    padded[i] = signal[i] * window[i];
  }
  const auto spectrum = fft_real(padded);

  const double gain = window_coherent_gain(window);
  const double scale = gain > 0.0 ? 2.0 / gain : 0.0;
  std::vector<double> out(fft_size / 2 + 1);
  for (std::size_t k = 0; k < out.size(); ++k) {
    out[k] = std::abs(spectrum[k]) * scale;
  }
  out.front() /= 2.0;
  if (fft_size % 2 == 0) out.back() /= 2.0;
  return out;
}

std::vector<SpectralPeak> find_peaks(std::span<const double> spectrum,
                                     double sample_rate, std::size_t fft_size,
                                     double min_amplitude,
                                     std::size_t neighborhood) {
  std::vector<SpectralPeak> peaks;
  const std::size_t n = spectrum.size();
  if (n < 3 || fft_size == 0) return peaks;
  const std::size_t radius = std::max<std::size_t>(1, neighborhood);

  for (std::size_t k = 1; k + 1 < n; ++k) {
    const double a = spectrum[k];
    if (a < min_amplitude) continue;

    bool is_max = true;
    const std::size_t lo = k > radius ? k - radius : 0;
    const std::size_t hi = std::min(n - 1, k + radius);
    for (std::size_t j = lo; j <= hi && is_max; ++j) {
      if (j != k && spectrum[j] > a) is_max = false;
    }
    if (!is_max) continue;

    // Parabolic interpolation on log amplitude for sub-bin frequency.
    double delta = 0.0;
    const double eps = 1e-30;
    const double l0 = std::log(spectrum[k - 1] + eps);
    const double l1 = std::log(a + eps);
    const double l2 = std::log(spectrum[k + 1] + eps);
    const double denom = l0 - 2.0 * l1 + l2;
    if (std::abs(denom) > 1e-12) {
      delta = 0.5 * (l0 - l2) / denom;
      delta = std::clamp(delta, -0.5, 0.5);
    }

    SpectralPeak p;
    p.bin = k;
    p.frequency_hz = (static_cast<double>(k) + delta) * sample_rate /
                     static_cast<double>(fft_size);
    p.amplitude = a;
    peaks.push_back(p);
  }
  return peaks;
}

double spectral_difference(std::span<const double> a,
                           std::span<const double> b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("spectral_difference: size mismatch");
  }
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += std::abs(a[i] - b[i]);
  return sum;
}

}  // namespace mdn::dsp
