#include "dsp/spectrum.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "dsp/fft.h"
#include "dsp/simd.h"
#include "dsp/window.h"

namespace mdn::dsp {

double amplitude_to_db(double amplitude, double reference,
                       double floor_db) noexcept {
  if (amplitude <= 0.0 || reference <= 0.0) return floor_db;
  return std::max(floor_db, 20.0 * std::log10(amplitude / reference));
}

double db_to_amplitude(double db, double reference) noexcept {
  return reference * std::pow(10.0, db / 20.0);
}

void SpectrumWorkspace::resize_for(const RealFftPlan& plan) {
  if (padded.size() < plan.size()) padded.resize(plan.size());
  if (bins.size() < plan.bins()) bins.resize(plan.bins());
  if (scratch.size() < plan.scratch_size()) {
    scratch.resize(plan.scratch_size());
  }
}

void amplitude_spectrum_into(std::span<const double> signal,
                             std::span<const double> window,
                             const RealFftPlan& plan, SpectrumWorkspace& ws,
                             std::span<double> out) {
  if (signal.size() != window.size()) {
    throw std::invalid_argument(
        "amplitude_spectrum_into: window size mismatch");
  }
  if (signal.size() > plan.size()) {
    throw std::invalid_argument(
        "amplitude_spectrum_into: plan smaller than signal");
  }
  if (out.size() < plan.bins()) {
    throw std::invalid_argument("amplitude_spectrum_into: out too small");
  }
  const std::size_t fft_size = plan.size();
  if (fft_size == 0) return;
  ws.resize_for(plan);

  // Window the data (not the pad); padding only interpolates the
  // spectrum.
  const simd::Kernels& kern = simd::active_kernels();
  kern.mul(signal.data(), window.data(), ws.padded.data(), signal.size());
  std::fill(ws.padded.begin() + static_cast<std::ptrdiff_t>(signal.size()),
            ws.padded.begin() + static_cast<std::ptrdiff_t>(fft_size), 0.0);
  plan.execute(std::span<const double>(ws.padded.data(), fft_size), ws.bins,
               ws.scratch);

  // A sine of amplitude A contributes A * gain / 2 to its bin (the other
  // half lands in the conjugate bin), where gain is the coherent window
  // gain; scale so the reported value is A.
  const double gain = window_coherent_gain(window);
  const double scale = gain > 0.0 ? 2.0 / gain : 0.0;
  const std::size_t bins = plan.bins();
  kern.mag_scale_aos(ws.bins.data(), scale, out.data(), bins);
  // DC and Nyquist have no conjugate partner.
  out[0] /= 2.0;
  if (fft_size % 2 == 0) out[bins - 1] /= 2.0;
}

void BatchSpectrumWorkspace::resize_for(const RealFftPlan& plan,
                                        std::size_t lanes) {
  if (padded.size() < plan.size() * lanes) padded.resize(plan.size() * lanes);
  if (bins.size() < plan.bins() * lanes) bins.resize(plan.bins() * lanes);
  const std::size_t soa = plan.batch_scratch_doubles(lanes);
  if (re_soa.size() < soa) re_soa.resize(soa);
  if (im_soa.size() < soa) im_soa.resize(soa);
  if (input_ptrs.size() < lanes) input_ptrs.resize(lanes);
  if (bin_ptrs.size() < lanes) bin_ptrs.resize(lanes);
}

void amplitude_spectrum_batch_into(
    std::span<const std::span<const double>> signals,
    std::span<const double> window, const RealFftPlan& plan,
    BatchSpectrumWorkspace& ws, std::span<const std::span<double>> outs) {
  if (!plan.supports_batch()) {
    throw std::invalid_argument(
        "amplitude_spectrum_batch_into: plan does not support batching");
  }
  const std::size_t lanes = signals.size();
  if (outs.size() != lanes) {
    throw std::invalid_argument(
        "amplitude_spectrum_batch_into: signals/outs size mismatch");
  }
  if (lanes == 0) return;
  const std::size_t fft_size = plan.size();
  const std::size_t bins = plan.bins();
  for (std::size_t l = 0; l < lanes; ++l) {
    if (signals[l].size() != window.size()) {
      throw std::invalid_argument(
          "amplitude_spectrum_batch_into: window size mismatch");
    }
    if (signals[l].size() > fft_size) {
      throw std::invalid_argument(
          "amplitude_spectrum_batch_into: plan smaller than signal");
    }
    if (outs[l].size() < bins) {
      throw std::invalid_argument(
          "amplitude_spectrum_batch_into: out too small");
    }
  }
  ws.resize_for(plan, lanes);

  // Per lane: the identical window-multiply + zero-pad the single-block
  // path performs, into that lane's contiguous slice.
  const simd::Kernels& kern = simd::active_kernels();
  for (std::size_t l = 0; l < lanes; ++l) {
    double* lane = ws.padded.data() + l * fft_size;
    kern.mul(signals[l].data(), window.data(), lane, signals[l].size());
    std::fill(lane + signals[l].size(), lane + fft_size, 0.0);
    ws.input_ptrs[l] = lane;
    ws.bin_ptrs[l] = ws.bins.data() + l * bins;
  }
  plan.execute_batch(
      std::span<const double* const>(ws.input_ptrs.data(), lanes),
      std::span<Complex* const>(ws.bin_ptrs.data(), lanes),
      std::span<double>(ws.re_soa.data(), plan.batch_scratch_doubles(lanes)),
      std::span<double>(ws.im_soa.data(), plan.batch_scratch_doubles(lanes)));

  const double gain = window_coherent_gain(window);
  const double scale = gain > 0.0 ? 2.0 / gain : 0.0;
  for (std::size_t l = 0; l < lanes; ++l) {
    double* out = outs[l].data();
    kern.mag_scale_aos(ws.bin_ptrs[l], scale, out, bins);
    out[0] /= 2.0;
    if (fft_size % 2 == 0) out[bins - 1] /= 2.0;
  }
}

std::vector<double> amplitude_spectrum(std::span<const double> signal,
                                       std::span<const double> window) {
  if (signal.size() != window.size()) {
    throw std::invalid_argument("amplitude_spectrum: window size mismatch");
  }
  const std::size_t n = signal.size();
  if (n == 0) return {};

  const auto plan = PlanCache::global().real_plan(n);
  SpectrumWorkspace ws(*plan);
  std::vector<double> out(plan->bins());
  amplitude_spectrum_into(signal, window, *plan, ws, out);
  return out;
}

std::vector<double> amplitude_spectrum_padded(std::span<const double> signal,
                                              std::span<const double> window,
                                              std::size_t fft_size) {
  if (signal.size() != window.size()) {
    throw std::invalid_argument(
        "amplitude_spectrum_padded: window size mismatch");
  }
  if (fft_size < signal.size()) {
    throw std::invalid_argument(
        "amplitude_spectrum_padded: fft_size smaller than signal");
  }
  if (fft_size == 0) return {};
  const auto plan = PlanCache::global().real_plan(fft_size);
  SpectrumWorkspace ws(*plan);
  std::vector<double> out(plan->bins());
  amplitude_spectrum_into(signal, window, *plan, ws, out);
  return out;
}

std::vector<SpectralPeak> find_peaks(std::span<const double> spectrum,
                                     double sample_rate, std::size_t fft_size,
                                     double min_amplitude,
                                     std::size_t neighborhood) {
  std::vector<SpectralPeak> peaks;
  find_peaks_into(spectrum, sample_rate, fft_size, min_amplitude,
                  neighborhood, peaks);
  return peaks;
}

void find_peaks_into(std::span<const double> spectrum, double sample_rate,
                     std::size_t fft_size, double min_amplitude,
                     std::size_t neighborhood,
                     std::vector<SpectralPeak>& peaks) {
  peaks.clear();
  const std::size_t n = spectrum.size();
  if (n < 3 || fft_size == 0) return;
  const std::size_t radius = std::max<std::size_t>(1, neighborhood);

  // Chunked prescan: a vector max over each run of bins skips whole
  // below-threshold chunks without touching the per-bin logic.  The
  // bins a skipped chunk drops are exactly those the `a <
  // min_amplitude` test would drop, so output is unchanged.
  const simd::Kernels& kern = simd::active_kernels();
  constexpr std::size_t kChunk = 64;
  for (std::size_t c = 1; c + 1 < n; c += kChunk) {
    const std::size_t chunk_end = std::min(c + kChunk, n - 1);
    if (kern.chunk_max(spectrum.data() + c, chunk_end - c) < min_amplitude) {
      continue;
    }
    for (std::size_t k = c; k < chunk_end; ++k) {
      const double a = spectrum[k];
      if (a < min_amplitude) continue;

      bool is_max = true;
      const std::size_t lo = k > radius ? k - radius : 0;
      const std::size_t hi = std::min(n - 1, k + radius);
      for (std::size_t j = lo; j <= hi && is_max; ++j) {
        if (j != k && spectrum[j] > a) is_max = false;
      }
      if (!is_max) continue;

      // Parabolic interpolation on log amplitude for sub-bin frequency.
      double delta = 0.0;
      const double eps = 1e-30;
      const double l0 = std::log(spectrum[k - 1] + eps);
      const double l1 = std::log(a + eps);
      const double l2 = std::log(spectrum[k + 1] + eps);
      const double denom = l0 - 2.0 * l1 + l2;
      if (std::abs(denom) > 1e-12) {
        delta = 0.5 * (l0 - l2) / denom;
        delta = std::clamp(delta, -0.5, 0.5);
      }

      SpectralPeak p;
      p.bin = k;
      p.frequency_hz = (static_cast<double>(k) + delta) * sample_rate /
                       static_cast<double>(fft_size);
      p.amplitude = a;
      peaks.push_back(p);
    }
  }
}

double spectral_difference(std::span<const double> a,
                           std::span<const double> b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("spectral_difference: size mismatch");
  }
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += std::abs(a[i] - b[i]);
  return sum;
}

}  // namespace mdn::dsp
