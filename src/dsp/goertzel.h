// Goertzel single-bin DFT evaluator.
//
// When the MDN controller listens for a *known, small* set of frequencies
// (e.g. the three queue-state tones of §6: 500/600/700 Hz), evaluating a
// handful of Goertzel filters is cheaper than a full FFT.  The ablation
// bench bench_ablation_goertzel compares the two.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/annotations.h"

namespace mdn::dsp {

/// Power of the signal at `frequency_hz`, equivalent to |X_k|^2 of a DFT
/// evaluated at the (real-valued, non-integral allowed) bin for that
/// frequency.
double goertzel_power(std::span<const double> signal, double frequency_hz,
                      double sample_rate) noexcept;

/// Streaming Goertzel filter: feed samples incrementally, read power at the
/// end of a block, then reset() for the next block.
class Goertzel {
 public:
  Goertzel(double frequency_hz, double sample_rate) noexcept;

  void push(double sample) noexcept;
  void reset() noexcept;

  /// |X|^2 for all samples pushed since the last reset.
  double block_power() const noexcept;
  std::size_t samples_seen() const noexcept { return count_; }
  double frequency_hz() const noexcept { return frequency_hz_; }

 private:
  double frequency_hz_;
  double coeff_;
  double sin_w_;
  double cos_w_;
  double s1_ = 0.0;
  double s2_ = 0.0;
  std::size_t count_ = 0;
};

/// A fixed bank of Goertzel filters with precomputed per-frequency
/// coefficients — the "plan" for closed-set detection.  Build it once
/// for a watch list, then evaluate whole blocks into caller-provided
/// storage with zero allocation (ToneDetector::set_levels rides this).
class GoertzelBank {
 public:
  GoertzelBank(std::span<const double> frequencies_hz, double sample_rate);

  std::size_t size() const noexcept { return coeff_.size(); }
  double sample_rate() const noexcept { return sample_rate_; }
  std::span<const double> frequencies_hz() const noexcept {
    return frequencies_;
  }

  /// |X|^2 of `block` at each bank frequency; writes size() values into
  /// `out`.  No allocation.
  MDN_REALTIME void block_powers(std::span<const double> block,
                                 std::span<double> out) const;

  /// Amplitude of the underlying sine at each bank frequency
  /// (A = 2*sqrt(P)/N for a rectangular window); writes size() values.
  MDN_REALTIME void block_amplitudes(std::span<const double> block,
                                     std::span<double> out) const;

 private:
  std::vector<double> frequencies_;
  std::vector<double> coeff_;  // 2*cos(w) per frequency
  std::vector<double> cos_w_;
  std::vector<double> sin_w_;
  double sample_rate_;
};

}  // namespace mdn::dsp
