// Goertzel single-bin DFT evaluator.
//
// When the MDN controller listens for a *known, small* set of frequencies
// (e.g. the three queue-state tones of §6: 500/600/700 Hz), evaluating a
// handful of Goertzel filters is cheaper than a full FFT.  The ablation
// bench bench_ablation_goertzel compares the two.
#pragma once

#include <cstddef>
#include <span>

namespace mdn::dsp {

/// Power of the signal at `frequency_hz`, equivalent to |X_k|^2 of a DFT
/// evaluated at the (real-valued, non-integral allowed) bin for that
/// frequency.
double goertzel_power(std::span<const double> signal, double frequency_hz,
                      double sample_rate) noexcept;

/// Streaming Goertzel filter: feed samples incrementally, read power at the
/// end of a block, then reset() for the next block.
class Goertzel {
 public:
  Goertzel(double frequency_hz, double sample_rate) noexcept;

  void push(double sample) noexcept;
  void reset() noexcept;

  /// |X|^2 for all samples pushed since the last reset.
  double block_power() const noexcept;
  std::size_t samples_seen() const noexcept { return count_; }
  double frequency_hz() const noexcept { return frequency_hz_; }

 private:
  double frequency_hz_;
  double coeff_;
  double sin_w_;
  double cos_w_;
  double s1_ = 0.0;
  double s2_ = 0.0;
  std::size_t count_ = 0;
};

}  // namespace mdn::dsp
