// Schedule-instrumentation shim over std::atomic.
//
// The lock-free protocols of the runtime (rt/ring_buffer.h, the
// obs::Health alert ring, the dsp SIMD dispatch flag) declare their
// shared state through this header instead of <atomic> directly:
//
//   check::Atomic<T>  — std::atomic<T>, verbatim, in normal builds
//                       (an alias template: zero overhead by
//                       construction, bit-for-bit the old layout);
//                       under -DMDN_MODEL_CHECK a wrapper that routes
//                       every load/store/RMW through the
//                       check::Scheduler as a scheduling point, with
//                       release/acquire vector-clock bookkeeping.
//   check::Cell<T>    — a NON-atomic value published *through* an
//                       Atomic (a ring slot's payload).  Plain storage
//                       in normal builds; under the model checker each
//                       read/write is a scheduling point checked
//                       against the happens-before clocks, so a
//                       missing release/acquire edge on the guarding
//                       atomic surfaces as a data race on the Cell.
//   check::fence      — std::atomic_thread_fence, modelled
//                       conservatively (over-synchronizes: it can miss
//                       races around standalone fences, never invent
//                       them).  The tree currently has no standalone
//                       fences; prefer orders on the ops themselves.
//
// Only model threads (spawned via check::thread inside
// check::explore()) are instrumented; any other thread touching these
// objects — even in a model-check build — takes the plain std::atomic
// path.  See src/common/check.h and DESIGN.md §11.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <utility>

#include "common/check.h"

namespace mdn::check {

#ifndef MDN_MODEL_CHECK

/// Normal builds: the shim IS std::atomic (alias, not a wrapper), so
/// "zero overhead" is a tautology rather than a benchmark claim.
template <typename T>
using Atomic = std::atomic<T>;

inline void fence(std::memory_order order) noexcept {
  std::atomic_thread_fence(order);
}

/// Plain storage with the instrumented API surface compiled away.
template <typename T>
class Cell {
 public:
  Cell() = default;

  /// Direct reference for callers that need in-place access (normal
  /// builds only semantics-wise identical to the instrumented ops).
  T& raw() noexcept { return value_; }
  const T& raw() const noexcept { return value_; }

  template <typename U>
  void write(U&& v) {
    value_ = std::forward<U>(v);
  }

  /// Move the value out (a read-modify-write of the cell).
  T take() noexcept { return std::move(value_); }

  /// Copy the value out (a read of the cell).
  T read() const { return value_; }

 private:
  T value_{};
};

#else  // MDN_MODEL_CHECK -------------------------------------------------

namespace detail {

/// Narrow an atomic value to 64 bits for trace rendering.  Values wider
/// than 8 bytes render as 0 (the trace still shows op/location/order).
template <typename T>
std::uint64_t trace_value(const T& v) noexcept {
  std::uint64_t out = 0;
  if constexpr (sizeof(T) <= sizeof(out)) {
    std::memcpy(&out, &v, sizeof(T));
  }
  return out;
}

inline int order_code(std::memory_order order) noexcept {
  return static_cast<int>(order);
}

}  // namespace detail

/// Instrumented atomic: storage stays a real std::atomic (so non-model
/// threads keep correct concurrent semantics), but model threads park
/// at a scheduling point before every operation and feed the
/// happens-before clocks after it.
template <typename T>
class Atomic {
 public:
  Atomic() noexcept = default;
  constexpr Atomic(T v) noexcept : storage_(v) {}  // NOLINT(google-explicit-constructor)

  Atomic(const Atomic&) = delete;
  Atomic& operator=(const Atomic&) = delete;

  T load(std::memory_order order = std::memory_order_seq_cst) const {
    if (detail::active_here()) {
      const int loc = detail::schedule_op(detail::OpKind::kLoad, this,
                                          nullptr, detail::order_code(order));
      const T v = storage_.load(order);
      detail::on_atomic_load(loc, detail::order_code(order),
                             detail::trace_value(v));
      return v;
    }
    return storage_.load(order);
  }

  void store(T v, std::memory_order order = std::memory_order_seq_cst) {
    if (detail::active_here()) {
      const int loc = detail::schedule_op(detail::OpKind::kStore, this,
                                          nullptr, detail::order_code(order));
      storage_.store(v, order);
      detail::on_atomic_store(loc, detail::order_code(order),
                              detail::trace_value(v));
      return;
    }
    storage_.store(v, order);
  }

  T exchange(T v, std::memory_order order = std::memory_order_seq_cst) {
    if (detail::active_here()) {
      const int loc = detail::schedule_op(detail::OpKind::kRmw, this, nullptr,
                                          detail::order_code(order));
      const T old = storage_.exchange(v, order);
      detail::on_atomic_rmw(loc, detail::order_code(order),
                            detail::trace_value(v));
      return old;
    }
    return storage_.exchange(v, order);
  }

  T fetch_add(T v, std::memory_order order = std::memory_order_seq_cst) {
    if (detail::active_here()) {
      const int loc = detail::schedule_op(detail::OpKind::kRmw, this, nullptr,
                                          detail::order_code(order));
      const T old = storage_.fetch_add(v, order);
      detail::on_atomic_rmw(loc, detail::order_code(order),
                            detail::trace_value(static_cast<T>(old + v)));
      return old;
    }
    return storage_.fetch_add(v, order);
  }

  T fetch_sub(T v, std::memory_order order = std::memory_order_seq_cst) {
    if (detail::active_here()) {
      const int loc = detail::schedule_op(detail::OpKind::kRmw, this, nullptr,
                                          detail::order_code(order));
      const T old = storage_.fetch_sub(v, order);
      detail::on_atomic_rmw(loc, detail::order_code(order),
                            detail::trace_value(static_cast<T>(old - v)));
      return old;
    }
    return storage_.fetch_sub(v, order);
  }

  bool compare_exchange_weak(
      T& expected, T desired,
      std::memory_order order = std::memory_order_seq_cst) {
    return cas(expected, desired, order, cas_failure_order(order), false);
  }

  bool compare_exchange_weak(T& expected, T desired,
                             std::memory_order success,
                             std::memory_order failure) {
    return cas(expected, desired, success, failure, false);
  }

  bool compare_exchange_strong(
      T& expected, T desired,
      std::memory_order order = std::memory_order_seq_cst) {
    return cas(expected, desired, order, cas_failure_order(order), true);
  }

  bool compare_exchange_strong(T& expected, T desired,
                               std::memory_order success,
                               std::memory_order failure) {
    return cas(expected, desired, success, failure, true);
  }

 private:
  static constexpr std::memory_order cas_failure_order(
      std::memory_order success) noexcept {
    switch (success) {
      case std::memory_order_acq_rel:
        return std::memory_order_acquire;
      case std::memory_order_release:
        return std::memory_order_relaxed;
      default:
        return success;
    }
  }

  bool cas(T& expected, T desired, std::memory_order success,
           std::memory_order failure, bool strong) {
    if (detail::active_here()) {
      // Conservatively a RMW for sleep-set dependence even when it
      // fails (a failed CAS is really a load).
      const int loc = detail::schedule_op(detail::OpKind::kRmw, this, nullptr,
                                          detail::order_code(success));
      // Under the scheduler the thread runs alone, so weak CAS cannot
      // fail spuriously — weak and strong explore identical behaviour.
      const bool won =
          strong ? storage_.compare_exchange_strong(expected, desired, success,
                                                    failure)
                 : storage_.compare_exchange_weak(expected, desired, success,
                                                  failure);
      if (won) {
        detail::on_atomic_rmw(loc, detail::order_code(success),
                              detail::trace_value(desired));
      } else {
        detail::on_atomic_load(loc, detail::order_code(failure),
                               detail::trace_value(expected));
      }
      return won;
    }
    return strong ? storage_.compare_exchange_strong(expected, desired,
                                                     success, failure)
                  : storage_.compare_exchange_weak(expected, desired, success,
                                                   failure);
  }

  mutable std::atomic<T> storage_{};
};

inline void fence(std::memory_order order) {
  if (detail::active_here()) {
    detail::schedule_op(detail::OpKind::kFence, nullptr, "fence",
                        detail::order_code(order));
    std::atomic_thread_fence(order);
    detail::on_fence(detail::order_code(order));
    return;
  }
  std::atomic_thread_fence(order);
}

/// Instrumented non-atomic cell: every model-thread access is a
/// scheduling point and a happens-before race check.
template <typename T>
class Cell {
 public:
  Cell() = default;

  T& raw() noexcept { return value_; }
  const T& raw() const noexcept { return value_; }

  template <typename U>
  void write(U&& v) {
    if (detail::active_here()) {
      const int loc =
          detail::schedule_op(detail::OpKind::kCellWrite, this, nullptr, 0);
      value_ = std::forward<U>(v);
      detail::on_cell_write(loc);
      return;
    }
    value_ = std::forward<U>(v);
  }

  T take() {
    if (detail::active_here()) {
      // Moving-from mutates the cell: model as a write for dependence
      // and race purposes.
      const int loc =
          detail::schedule_op(detail::OpKind::kCellWrite, this, nullptr, 0);
      T out = std::move(value_);
      detail::on_cell_write(loc);
      return out;
    }
    return std::move(value_);
  }

  T read() const {
    if (detail::active_here()) {
      const int loc =
          detail::schedule_op(detail::OpKind::kCellRead, this, nullptr, 0);
      T out = value_;
      detail::on_cell_read(loc);
      return out;
    }
    return value_;
  }

 private:
  mutable T value_{};
};

#endif  // MDN_MODEL_CHECK

}  // namespace mdn::check
