// mdn::check — a loom-style deterministic concurrency model checker.
//
// The lock-free runtime (rt::RingBuffer, the obs::Health alert ring,
// the SIMD dispatch flag) is only as trustworthy as the schedules tsan
// happens to see on CI hardware.  This layer makes the schedules the
// test input: under -DMDN_MODEL_CHECK every load/store/RMW routed
// through check::Atomic / check::Cell (src/common/atomic.h) and every
// common::Mutex acquisition becomes a *scheduling point*, and
// check::explore() re-runs a test body over every interleaving a
// bounded-preemption DFS can reach:
//
//   * threads are real std::threads, but exactly one runs at a time —
//     at each scheduling point the scheduler decides (and records)
//     which pending operation commits next, so every execution is a
//     deterministic function of its decision sequence;
//   * the DFS backtracks over those decisions with a partial-order-
//     reduction sleep set (two adjacent operations on different
//     locations — or two reads — commute, so only one of their orders
//     is explored) and a preemption bound (schedules needing more than
//     `max_preemptions` involuntary switches are pruned);
//   * release/acquire edges maintain per-thread vector clocks, and
//     check::Cell accesses are checked against them — a relaxed store
//     that should have been a release shows up as a data race on the
//     value it was meant to publish, on *some* explored schedule;
//   * failures (MDN_CHECK, races, deadlocks, lock misuse) abort the
//     execution and render a per-thread op timeline plus the decision
//     sequence as a replay seed: feed it back via Options::replay to
//     re-run exactly that schedule under a debugger.
//
// In normal builds (no MDN_MODEL_CHECK) explore() runs the body once
// with plain threads and the shim compiles to std::atomic — zero
// overhead, zero behaviour change.  See DESIGN.md §11.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <thread>

// Under the model checker an instrumented operation tears down a
// pruned/failed schedule by throwing (the scheduler's internal unwind
// signal) — so a product function on a model-checked path must not
// promise noexcept in model builds, or the unwind hits a noexcept
// frame and terminates the process.  Normal builds keep the promise.
#ifdef MDN_MODEL_CHECK
#define MDN_CHECK_NOEXCEPT
// Destructors default to noexcept: ones that contain scheduling points
// (MutexLock's unlock) must opt out explicitly in model builds.
#define MDN_CHECK_DTOR_NOEXCEPT noexcept(false)
#else
#define MDN_CHECK_NOEXCEPT noexcept
#define MDN_CHECK_DTOR_NOEXCEPT
#endif

namespace mdn::check {

/// Exploration limits.  The defaults suit the tests/model harnesses:
/// 2–3 threads, a handful of operations each, full exploration within
/// the preemption bound in well under ten seconds.
struct Options {
  /// Involuntary context switches allowed per schedule.  Almost every
  /// real concurrency bug needs very few preemptions (CHESS's classic
  /// observation); the bound keeps the DFS polynomial-ish.
  int max_preemptions = 4;
  /// Hard cap on executions; exploration stops (complete=false) beyond
  /// it.  A safety net against state-space blowups, not a tuning knob.
  long max_schedules = 500000;
  /// Per-execution step cap (guards against accidental live-lock in
  /// harness code: a spin loop never bounded by the schedule).
  long max_steps = 100000;
  /// Sleep-set partial-order reduction.  Disable to count/visit every
  /// raw interleaving (slower, never wrong).
  bool sleep_sets = true;
  /// Stop at the first failing schedule (the counterexample is what
  /// matters; later failures are usually the same bug).
  bool stop_on_failure = true;
  /// Replay seed: a decision sequence as printed in a counterexample
  /// ("0,1,1,0,…").  When set, exactly that one schedule runs.
  std::string replay;
};

/// Exploration outcome.  `schedules` counts distinct decision
/// sequences executed — the number asserted by the tests/model
/// harnesses.
struct Result {
  long schedules = 0;   ///< executions run (each a distinct schedule)
  long pruned = 0;      ///< executions cut short by sleep-set redundancy
  long failures = 0;    ///< executions that failed
  bool complete = false;  ///< DFS exhausted within bounds and caps
  bool ok = true;         ///< no failure observed
  std::string first_failure;     ///< rendered counterexample timeline
  std::string failing_schedule;  ///< replay seed of the first failure
};

/// Explores every schedule of `body` (bounded as per `options`).  The
/// body runs once per schedule on the calling thread (model thread 0);
/// it spawns peers with check::thread and must join them all before
/// returning.  Not reentrant: one exploration at a time per process.
Result explore(const Options& options, const std::function<void()>& body);

/// True while the calling thread is a model thread inside explore().
bool active() noexcept;

/// Records a failure on the current schedule and aborts it (the other
/// model threads unwind, explore() moves to the next schedule).  When
/// no exploration is active this aborts the process (assertion-style).
[[noreturn]] void fail(const char* file, int line, const char* message);

/// Condition check usable inside a model harness body or any model
/// thread; failure aborts the current schedule with a counterexample.
#define MDN_CHECK(cond)                                     \
  do {                                                      \
    if (!(cond)) ::mdn::check::fail(__FILE__, __LINE__, #cond); \
  } while (0)

/// A model thread: std::thread in normal builds, a scheduler-governed
/// thread under MDN_MODEL_CHECK.  Join before the owning scope ends
/// (no detach — the scheduler owns termination).
class thread {
 public:
  explicit thread(std::function<void()> fn);
  ~thread();

  thread(const thread&) = delete;
  thread& operator=(const thread&) = delete;

  void join();

 private:
  std::thread impl_;
  int model_id_ = -1;
  bool joined_ = false;
};

// ---------------------------------------------------------------------------
// Scheduler hooks used by the instrumented shim (src/common/atomic.h,
// src/common/mutex.h).  Call-sites guard on `active_here()` so normal
// threads (and normal builds) never pay for a function call.

namespace detail {

enum class OpKind : std::uint8_t {
  kLoad = 0,
  kStore,
  kRmw,
  kFence,
  kCellRead,
  kCellWrite,
  kMutexLock,
  kMutexUnlock,
  kMutexTryLock,
  kSpawn,
  kJoin,
};

#ifdef MDN_MODEL_CHECK
/// True iff the calling thread is a registered model thread of a live
/// exploration (thread-local; non-model threads always get false).
bool active_here() noexcept;

/// One scheduling point: parks until the scheduler commits this
/// thread's `kind` op on location `addr` (registered lazily; `name` is
/// a trace label, may be null).  Returns an opaque location id.
/// Throws the internal abort exception when the schedule is being torn
/// down — instrumented code must let it propagate.
int schedule_op(OpKind kind, const void* addr, const char* name, int order);

/// Post-commit hooks, called with the token still held (the thread
/// runs alone until its next scheduling point).
void on_atomic_load(int loc, int order, std::uint64_t value);
void on_atomic_store(int loc, int order, std::uint64_t value);
void on_atomic_rmw(int loc, int order, std::uint64_t value);
void on_fence(int order);
void on_cell_read(int loc);
void on_cell_write(int loc);

/// Mutex modelling (virtual ownership — the real std::mutex is NOT
/// taken on model threads; see common/mutex.h).
void mutex_lock(const void* addr, const char* name);
void mutex_unlock(const void* addr, const char* name);
bool mutex_try_lock(const void* addr, const char* name);

/// Names a location for counterexample rendering (no-op when the
/// location was never touched by a model thread).
void name_location(const void* addr, const char* name);
#else
inline bool active_here() noexcept { return false; }
inline void name_location(const void*, const char*) noexcept {}
#endif

}  // namespace detail

/// Labels `addr` (an Atomic/Cell/Mutex) in counterexample timelines.
/// Zero-cost in normal builds.
inline void name(const void* addr, const char* label) noexcept {
#ifdef MDN_MODEL_CHECK
  detail::name_location(addr, label);
#else
  (void)addr;
  (void)label;
#endif
}

}  // namespace mdn::check
