// Compile-time contract annotations shared by every layer.
//
// Three contracts that used to be enforced only at runtime (tsan, the
// operator-new-counting alloc audits, golden-file determinism diffs)
// are declared here so tooling checks them on every build:
//
//   * Thread safety.  The MDN_* capability macros expand to clang's
//     thread-safety attributes, so a clang build with -Wthread-safety
//     -Werror rejects any access to a MDN_GUARDED_BY member outside its
//     mutex — statically, over every path, not just the interleavings a
//     tsan run happened to exercise.  Off clang they expand to nothing.
//     Use common/mutex.h (an annotated std::mutex wrapper) as the
//     capability; std::mutex itself carries no attributes.
//
//   * Real-time purity.  MDN_REALTIME marks a function as part of the
//     audio hot path: no allocation, no locking, no I/O, no throwing
//     STL entry points — transitively.  scripts/mdn_lint.py walks
//     compile_commands.json and rejects violations (the runtime audit
//     in tests/rt/test_rt_alloc.cpp stays as the belt to this brace).
//     Exceptions are declared per call site in
//     scripts/mdn_lint_allowlist.txt with a reason.
//
//   * Determinism.  The same linter bans wall clocks, rand(), getenv()
//     and unordered-container iteration in exporter code under src/,
//     protecting the byte-identical journal.jsonl / bench-JSON
//     guarantees.  See DESIGN.md "Static guarantees".
#pragma once

// clang's -Wthread-safety implements the capability analysis; gcc and
// MSVC parse the code with the attributes erased.
#if defined(__clang__) && defined(__has_attribute)
#define MDN_HAS_THREAD_ATTRIBUTE(x) __has_attribute(x)
#else
#define MDN_HAS_THREAD_ATTRIBUTE(x) 0
#endif

#if MDN_HAS_THREAD_ATTRIBUTE(guarded_by)
#define MDN_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define MDN_THREAD_ANNOTATION(x)
#endif

/// Declares a type to be a capability (lockable): common::Mutex.
#define MDN_CAPABILITY(x) MDN_THREAD_ANNOTATION(capability(x))

/// Declares an RAII type that acquires in its constructor and releases
/// in its destructor: common::MutexLock.
#define MDN_SCOPED_CAPABILITY MDN_THREAD_ANNOTATION(scoped_lockable)

/// A data member readable/writable only while `x` is held.
#define MDN_GUARDED_BY(x) MDN_THREAD_ANNOTATION(guarded_by(x))

/// A pointer member whose *pointee* is guarded by `x`.
#define MDN_PT_GUARDED_BY(x) MDN_THREAD_ANNOTATION(pt_guarded_by(x))

/// The caller must hold the capability before calling ("_locked"
/// helpers like OrderedMerge::watermark_locked).
#define MDN_REQUIRES(...) \
  MDN_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// The function acquires / releases the capability itself.
#define MDN_ACQUIRE(...) \
  MDN_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define MDN_RELEASE(...) \
  MDN_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define MDN_TRY_ACQUIRE(...) \
  MDN_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// The function must NOT be called with the capability held (guards
/// against self-deadlock on non-recursive mutexes).
#define MDN_EXCLUDES(...) MDN_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Declares a global lock order: this mutex must be acquired before
/// `x` whenever both are held.  clang checks it per-path; the
/// scripts/mdn_lint.py --lock-order pass adds these declared edges to
/// the acquisition graph it builds from observed MutexLock nesting and
/// rejects any cycle across the whole tree.
#define MDN_ACQUIRED_BEFORE(...) \
  MDN_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define MDN_ACQUIRED_AFTER(...) \
  MDN_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Returns a reference to the named capability.
#define MDN_RETURN_CAPABILITY(x) MDN_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: the analysis is wrong or deliberately bypassed.  Every
/// use needs a comment explaining why.
#define MDN_NO_THREAD_SAFETY_ANALYSIS \
  MDN_THREAD_ANNOTATION(no_thread_safety_analysis)

// ---------------------------------------------------------------------------
// Real-time contract marker (consumed by scripts/mdn_lint.py).

/// Marks a function as audio-hot-path: it (and everything it calls,
/// transitively) must not allocate, lock, perform I/O or call throwing
/// STL entry points.  The attribute survives into the clang AST for
/// libclang-based tooling; the token itself is what the fallback parser
/// keys on, so keep the macro on the declaration line.
#if MDN_HAS_THREAD_ATTRIBUTE(annotate)
#define MDN_REALTIME __attribute__((annotate("mdn_realtime")))
#else
#define MDN_REALTIME
#endif
