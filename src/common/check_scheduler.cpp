// The mdn::check scheduler: bounded-preemption DFS over thread
// interleavings with sleep-set partial-order reduction, vector-clock
// happens-before tracking, and replayable counterexample traces.
//
// See src/common/check.h for the model and DESIGN.md §11 for the
// exploration algorithm.  Without -DMDN_MODEL_CHECK this file compiles
// the pass-through implementations only (explore runs the body once on
// plain threads), so the symbol set is identical in both build modes.

#include "common/check.h"

#include <cstdio>
#include <cstdlib>

#ifdef MDN_MODEL_CHECK

#include <algorithm>
#include <array>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <map>
#include <mutex>
#include <sstream>
#include <vector>

namespace mdn::check {
namespace {

using detail::OpKind;

constexpr int kMaxThreads = 8;

// --- happens-before clocks ------------------------------------------------

struct Clock {
  std::array<std::uint32_t, kMaxThreads> c{};

  void join(const Clock& o) noexcept {
    for (int i = 0; i < kMaxThreads; ++i) c[i] = std::max(c[i], o.c[i]);
  }
  void clear() noexcept { c.fill(0); }
};

/// One committed or pending operation, as used for trace rendering and
/// sleep-set dependence.
struct OpSig {
  OpKind kind = OpKind::kLoad;
  int loc = -1;  // -1: unknown/none (conservatively dependent)
};

bool op_writes(OpKind k) noexcept {
  switch (k) {
    case OpKind::kStore:
    case OpKind::kRmw:
    case OpKind::kCellWrite:
    case OpKind::kMutexLock:
    case OpKind::kMutexUnlock:
    case OpKind::kMutexTryLock:
      return true;
    default:
      return false;
  }
}

bool op_global(OpKind k) noexcept {
  return k == OpKind::kFence || k == OpKind::kSpawn || k == OpKind::kJoin;
}

/// May the order of two adjacent ops matter?  Over-approximating keeps
/// sleep-set pruning sound (it only ever wakes more threads).
bool dependent(const OpSig& a, const OpSig& b) noexcept {
  if (op_global(a.kind) || op_global(b.kind)) return true;
  if (a.loc < 0 || b.loc < 0) return true;
  if (a.loc != b.loc) return false;
  return op_writes(a.kind) || op_writes(b.kind);
}

bool order_acquires(int order) noexcept {
  const auto mo = static_cast<std::memory_order>(order);
  return mo == std::memory_order_acquire || mo == std::memory_order_acq_rel ||
         mo == std::memory_order_seq_cst || mo == std::memory_order_consume;
}

bool order_releases(int order) noexcept {
  const auto mo = static_cast<std::memory_order>(order);
  return mo == std::memory_order_release || mo == std::memory_order_acq_rel ||
         mo == std::memory_order_seq_cst;
}

const char* order_name(int order) noexcept {
  switch (static_cast<std::memory_order>(order)) {
    case std::memory_order_relaxed: return "rlx";
    case std::memory_order_consume: return "cns";
    case std::memory_order_acquire: return "acq";
    case std::memory_order_release: return "rel";
    case std::memory_order_acq_rel: return "a/r";
    case std::memory_order_seq_cst: return "sc";
  }
  return "?";
}

/// Thrown out of scheduling points during teardown; trampolines and
/// explore() catch it — harness code must let it pass through.
struct ScheduleAborted {};

// --- per-location state ---------------------------------------------------

struct Location {
  enum class Kind : std::uint8_t { kAtomic, kCell, kMutex, kFence } kind =
      Kind::kAtomic;
  const void* addr = nullptr;
  const char* name = nullptr;
  // Atomics / mutexes: the clock an acquirer joins (release history).
  Clock sync;
  // Cells: FastTrack-style epochs.
  int writer = -1;                               // last writing thread
  std::uint32_t writer_clock = 0;                // its clock component
  std::array<std::uint32_t, kMaxThreads> readers{};  // per-thread read epochs
  // Mutexes: virtual ownership.
  int owner = -1;
};

struct TraceEvent {
  int step = 0;
  int tid = 0;
  OpKind kind = OpKind::kLoad;
  int loc = -1;
  int order = 0;
  std::uint64_t value = 0;
  bool has_value = false;
};

// --- threads --------------------------------------------------------------

struct ThreadState {
  enum class Status : std::uint8_t { kUnused, kRunning, kParked, kFinished };

  int id = 0;
  Status status = Status::kUnused;
  bool has_token = false;
  OpSig pending;
  int pending_order = 0;
  const char* pending_name = nullptr;
  int join_target = -1;
  Clock clock;
  std::thread handle;        // spawned threads only (id > 0)
  std::function<void()> fn;  // spawned threads only
};

// --- DFS nodes ------------------------------------------------------------

struct Node {
  std::vector<int> enabled;       // thread ids enabled at this point
  std::vector<bool> sleeping;     // per enabled index: inherited-asleep
  int last_runner = -1;           // thread whose op committed just before
  bool last_runner_enabled = false;
  int preemptions = 0;            // preemptions consumed up to this node
  int chosen = -1;
  std::vector<int> explored;      // choices already fully explored (sleep)
};

// --- the scheduler --------------------------------------------------------

class Scheduler;
Scheduler* g_scheduler = nullptr;                 // one exploration at a time
thread_local Scheduler* tls_scheduler = nullptr;  // set on model threads
thread_local int tls_thread_id = -1;

class Scheduler {
 public:
  Result run(const Options& options, const std::function<void()>& body);

  // Instrumentation entry points (see check.h).
  int schedule_op(OpKind kind, const void* addr, const char* name, int order);
  void on_atomic_load(int loc, int order, std::uint64_t value);
  void on_atomic_store(int loc, int order, std::uint64_t value);
  void on_atomic_rmw(int loc, int order, std::uint64_t value);
  void on_fence(int order);
  void on_cell_read(int loc);
  void on_cell_write(int loc);
  void mutex_lock(const void* addr, const char* name);
  void mutex_unlock(const void* addr, const char* name);
  bool mutex_try_lock(const void* addr, const char* name);
  void name_location(const void* addr, const char* name);

  int spawn_thread(std::function<void()> fn);
  void join_thread(int id);

  [[noreturn]] void fail_here(const char* file, int line, const char* message);

 private:
  int locate_locked(const void* addr, Location::Kind kind, const char* name);
  bool is_enabled_locked(const ThreadState& t) const;
  void choose_next_locked(std::unique_lock<std::mutex>& lk);
  void park_and_wait(std::unique_lock<std::mutex>& lk, ThreadState& me);
  void commit_locked(ThreadState& me);
  void filter_sleep_locked(const OpSig& committed);
  void record_failure_locked(const std::string& message);
  [[noreturn]] void abort_execution_locked(std::unique_lock<std::mutex>& lk);
  std::string render_failure_locked(const std::string& message) const;
  std::string decisions_string_locked() const;
  bool advance_to_next_schedule();
  void run_one_execution(const std::function<void()>& body);
  void trampoline(int id);

  Options options_;
  std::vector<int> replay_;

  std::mutex mu_;
  std::condition_variable cv_;

  // Per-execution state.
  std::array<ThreadState, kMaxThreads> threads_;
  int thread_count_ = 0;
  std::map<const void*, int> loc_ids_;
  std::vector<Location> locations_;
  std::vector<TraceEvent> trace_;
  std::vector<bool> asleep_ = std::vector<bool>(kMaxThreads, false);
  long steps_ = 0;
  std::size_t branch_index_ = 0;
  bool abort_ = false;
  bool pruned_ = false;
  bool failed_ = false;
  std::string failure_;
  Clock fence_sync_;  // conservative standalone-fence model

  // Cross-execution DFS state.
  std::vector<Node> nodes_;
  Result result_;
};

// --- exploration driver ---------------------------------------------------

Result Scheduler::run(const Options& options, const std::function<void()>& body) {
  options_ = options;
  replay_.clear();
  if (!options.replay.empty()) {
    std::stringstream ss(options.replay);
    std::string part;
    while (std::getline(ss, part, ',')) {
      if (!part.empty()) replay_.push_back(std::atoi(part.c_str()));
    }
  }

  g_scheduler = this;
  for (;;) {
    run_one_execution(body);
    if (pruned_) {
      ++result_.pruned;
    } else {
      ++result_.schedules;
    }
    if (failed_) {
      ++result_.failures;
      if (result_.first_failure.empty()) {
        std::unique_lock<std::mutex> lk(mu_);
        result_.first_failure = failure_;
        result_.failing_schedule = decisions_string_locked();
      }
      if (options_.stop_on_failure) break;
    }
    if (!replay_.empty()) break;  // replay runs exactly one schedule
    if (result_.schedules + result_.pruned >= options_.max_schedules) break;
    if (!advance_to_next_schedule()) {
      result_.complete = true;
      break;
    }
  }
  g_scheduler = nullptr;
  result_.ok = result_.failures == 0;
  return result_;
}

void Scheduler::run_one_execution(const std::function<void()>& body) {
  // Reset per-execution state.
  {
    std::unique_lock<std::mutex> lk(mu_);
    for (auto& t : threads_) {
      t.status = ThreadState::Status::kUnused;
      t.has_token = false;
      t.pending = OpSig{};
      t.join_target = -1;
      t.clock.clear();
      t.fn = nullptr;
    }
    thread_count_ = 1;
    threads_[0].id = 0;
    threads_[0].status = ThreadState::Status::kRunning;
    loc_ids_.clear();
    locations_.clear();
    trace_.clear();
    std::fill(asleep_.begin(), asleep_.end(), false);
    steps_ = 0;
    branch_index_ = 0;
    abort_ = false;
    pruned_ = false;
    failed_ = false;
    failure_.clear();
    fence_sync_.clear();
  }

  tls_scheduler = this;
  tls_thread_id = 0;
  try {
    body();
  } catch (const ScheduleAborted&) {
    // Torn down mid-schedule (failure, prune, or deadlock).
  }
  tls_scheduler = nullptr;
  tls_thread_id = -1;

  // Tear down stragglers (spawned threads the body never joined — only
  // possible on aborted schedules).
  {
    std::unique_lock<std::mutex> lk(mu_);
    threads_[0].status = ThreadState::Status::kFinished;
    if (!abort_) {
      bool unjoined = false;
      for (int i = 1; i < thread_count_; ++i) {
        if (threads_[i].status != ThreadState::Status::kFinished) {
          unjoined = true;
        }
      }
      if (unjoined) {
        record_failure_locked("body returned with unjoined check::thread(s)");
      }
    }
    abort_ = true;
    cv_.notify_all();
  }
  for (int i = 1; i < kMaxThreads; ++i) {
    if (threads_[i].handle.joinable()) threads_[i].handle.join();
  }
}

bool Scheduler::advance_to_next_schedule() {
  while (!nodes_.empty()) {
    Node& n = nodes_.back();
    n.explored.push_back(n.chosen);
    int next = -1;
    for (std::size_t i = 0; i < n.enabled.size(); ++i) {
      const int cand = n.enabled[i];
      if (n.sleeping[i]) continue;
      if (std::find(n.explored.begin(), n.explored.end(), cand) !=
          n.explored.end()) {
        continue;
      }
      const bool preempts = cand != n.last_runner && n.last_runner_enabled;
      if (preempts && n.preemptions >= options_.max_preemptions) continue;
      next = cand;
      break;
    }
    if (next >= 0) {
      n.chosen = next;
      return true;
    }
    nodes_.pop_back();
  }
  return false;
}

// --- scheduling points ----------------------------------------------------

int Scheduler::locate_locked(const void* addr, Location::Kind kind,
                             const char* name) {
  auto it = loc_ids_.find(addr);
  if (it != loc_ids_.end()) return it->second;
  const int id = static_cast<int>(locations_.size());
  loc_ids_.emplace(addr, id);
  Location loc;
  loc.kind = kind;
  loc.addr = addr;
  loc.name = name;
  locations_.push_back(loc);
  return id;
}

bool Scheduler::is_enabled_locked(const ThreadState& t) const {
  if (t.status != ThreadState::Status::kParked) return false;
  if (t.pending.kind == OpKind::kMutexLock) {
    return locations_[t.pending.loc].owner < 0;
  }
  if (t.pending.kind == OpKind::kJoin) {
    return threads_[t.join_target].status == ThreadState::Status::kFinished;
  }
  return true;
}

void Scheduler::choose_next_locked(std::unique_lock<std::mutex>& lk) {
  std::vector<int> enabled;
  bool any_parked = false;
  for (int i = 0; i < thread_count_; ++i) {
    if (threads_[i].status == ThreadState::Status::kParked) {
      any_parked = true;
      if (is_enabled_locked(threads_[i])) enabled.push_back(i);
    }
  }
  if (!any_parked) return;  // execution is over (nothing to wake)
  if (enabled.empty()) {
    record_failure_locked("deadlock: no runnable thread");
    abort_execution_locked(lk);
  }

  // Prune: every enabled thread is asleep — this state's subtrees were
  // all covered from sibling branches already.
  bool all_asleep = true;
  for (int t : enabled) {
    if (!asleep_[t]) {
      all_asleep = false;
      break;
    }
  }
  if (all_asleep && options_.sleep_sets) {
    pruned_ = true;
    abort_execution_locked(lk);
  }

  const int last_runner = tls_thread_id;  // the thread now parking
  const bool last_enabled =
      std::find(enabled.begin(), enabled.end(), last_runner) != enabled.end() &&
      !asleep_[last_runner];

  int chosen = -1;
  if (enabled.size() == 1) {
    // Not a decision point (no node, no replay index): executions are
    // deterministic, so forced moves recur by themselves.
    chosen = enabled.front();
  } else if (branch_index_ < nodes_.size()) {
    // Replaying the DFS prefix.  Siblings already fully explored at
    // this node go to sleep: any schedule that wakes them without an
    // intervening dependent op was covered from their own branches.
    chosen = nodes_[branch_index_].chosen;
    if (options_.sleep_sets) {
      for (int t : nodes_[branch_index_].explored) asleep_[t] = true;
    }
    ++branch_index_;
  } else if (branch_index_ < replay_.size()) {
    // Forced replay of a counterexample seed.
    chosen = replay_[branch_index_];
    Node n;
    n.enabled = enabled;
    n.chosen = chosen;
    nodes_.push_back(n);
    ++branch_index_;
    if (std::find(enabled.begin(), enabled.end(), chosen) == enabled.end()) {
      record_failure_locked("replay seed chooses a disabled thread");
      abort_execution_locked(lk);
    }
  } else {
    // New frontier node.
    Node n;
    n.enabled = enabled;
    n.sleeping.resize(enabled.size());
    for (std::size_t i = 0; i < enabled.size(); ++i) {
      n.sleeping[i] = options_.sleep_sets && asleep_[enabled[i]];
    }
    n.last_runner = last_runner;
    n.last_runner_enabled = last_enabled;
    n.preemptions = nodes_.empty() ? 0 : nodes_.back().preemptions;
    if (!nodes_.empty() && nodes_.back().chosen != nodes_.back().last_runner &&
        nodes_.back().last_runner_enabled) {
      // The previous branch's choice was a preemption.
      n.preemptions = nodes_.back().preemptions + 1;
    }
    // Policy: keep running the same thread when allowed (minimum
    // preemptions explored first), otherwise the lowest awake id.
    chosen = -1;
    if (last_enabled && !asleep_[last_runner]) {
      chosen = last_runner;
    } else {
      for (std::size_t i = 0; i < enabled.size(); ++i) {
        if (!n.sleeping[i]) {
          chosen = enabled[i];
          break;
        }
      }
    }
    if (chosen < 0) {
      pruned_ = true;  // everything enabled is asleep
      abort_execution_locked(lk);
    }
    n.chosen = chosen;
    nodes_.push_back(n);
    ++branch_index_;
  }

  ThreadState& next = threads_[chosen];
  next.has_token = true;
  cv_.notify_all();
}

void Scheduler::park_and_wait(std::unique_lock<std::mutex>& lk,
                              ThreadState& me) {
  me.status = ThreadState::Status::kParked;
  choose_next_locked(lk);
  cv_.wait(lk, [&] { return me.has_token || abort_; });
  if (abort_) throw ScheduleAborted{};
  me.has_token = false;
  me.status = ThreadState::Status::kRunning;
}

void Scheduler::commit_locked(ThreadState& me) {
  ++steps_;
  if (steps_ > options_.max_steps) {
    record_failure_locked("step cap exceeded (livelock in the harness?)");
    abort_ = true;
    cv_.notify_all();
    throw ScheduleAborted{};
  }
  me.clock.c[me.id] += 1;
  TraceEvent ev;
  ev.step = static_cast<int>(steps_);
  ev.tid = me.id;
  ev.kind = me.pending.kind;
  ev.loc = me.pending.loc;
  ev.order = me.pending_order;
  trace_.push_back(ev);
  filter_sleep_locked(me.pending);
}

void Scheduler::filter_sleep_locked(const OpSig& committed) {
  if (!options_.sleep_sets) return;
  asleep_[tls_thread_id] = false;
  for (int i = 0; i < thread_count_; ++i) {
    if (!asleep_[i]) continue;
    if (threads_[i].status != ThreadState::Status::kParked) {
      asleep_[i] = false;
      continue;
    }
    if (dependent(threads_[i].pending, committed)) asleep_[i] = false;
  }
}

int Scheduler::schedule_op(OpKind kind, const void* addr, const char* name,
                           int order) {
  std::unique_lock<std::mutex> lk(mu_);
  if (abort_) throw ScheduleAborted{};
  ThreadState& me = threads_[tls_thread_id];
  Location::Kind lkind = Location::Kind::kAtomic;
  if (kind == OpKind::kCellRead || kind == OpKind::kCellWrite) {
    lkind = Location::Kind::kCell;
  } else if (kind == OpKind::kMutexLock || kind == OpKind::kMutexUnlock ||
             kind == OpKind::kMutexTryLock) {
    lkind = Location::Kind::kMutex;
  } else if (kind == OpKind::kFence) {
    lkind = Location::Kind::kFence;
  }
  const int loc = addr ? locate_locked(addr, lkind, name) : -1;
  me.pending = OpSig{kind, loc};
  me.pending_order = order;
  me.pending_name = name;

  // Fast path: alone (or everyone else finished) — run without parking.
  bool others = false;
  for (int i = 0; i < thread_count_; ++i) {
    if (i != tls_thread_id &&
        threads_[i].status != ThreadState::Status::kUnused &&
        threads_[i].status != ThreadState::Status::kFinished) {
      others = true;
      break;
    }
  }
  if (others) {
    park_and_wait(lk, me);
  }
  // Mutex-lock grants are only issued while the mutex is free, but a
  // replay seed may violate that; re-check to fail cleanly.
  if (kind == OpKind::kMutexLock && locations_[loc].owner >= 0) {
    record_failure_locked("granted a lock on a held mutex (bad replay seed?)");
    abort_execution_locked(lk);
  }
  commit_locked(me);
  return loc;
}

// --- commit hooks (token held: the thread runs alone) ---------------------

void Scheduler::on_atomic_load(int loc, int order, std::uint64_t value) {
  std::unique_lock<std::mutex> lk(mu_);
  ThreadState& me = threads_[tls_thread_id];
  if (order_acquires(order)) me.clock.join(locations_[loc].sync);
  trace_.back().value = value;
  trace_.back().has_value = true;
  trace_.back().kind = OpKind::kLoad;  // failed CAS commits as a load
  trace_.back().order = order;
}

void Scheduler::on_atomic_store(int loc, int order, std::uint64_t value) {
  std::unique_lock<std::mutex> lk(mu_);
  ThreadState& me = threads_[tls_thread_id];
  Location& l = locations_[loc];
  if (order_releases(order)) {
    // A release store heads a fresh release sequence.
    l.sync = me.clock;
  } else {
    // A relaxed store breaks the location's release history for later
    // readers — exactly the bug class the ring harnesses seed.
    l.sync.clear();
  }
  trace_.back().value = value;
  trace_.back().has_value = true;
}

void Scheduler::on_atomic_rmw(int loc, int order, std::uint64_t value) {
  std::unique_lock<std::mutex> lk(mu_);
  ThreadState& me = threads_[tls_thread_id];
  Location& l = locations_[loc];
  if (order_acquires(order)) me.clock.join(l.sync);
  if (order_releases(order)) {
    l.sync.join(me.clock);  // RMW extends the release sequence
  }
  // A relaxed RMW leaves the release history intact (RMWs continue the
  // sequence in the C++ model).
  trace_.back().value = value;
  trace_.back().has_value = true;
}

void Scheduler::on_fence(int order) {
  std::unique_lock<std::mutex> lk(mu_);
  ThreadState& me = threads_[tls_thread_id];
  // Conservative: a release fence publishes to, and an acquire fence
  // joins, one global clock.  Over-synchronizes (can hide a fence
  // misuse), never invents a race.
  if (order_releases(order)) fence_sync_.join(me.clock);
  if (order_acquires(order)) me.clock.join(fence_sync_);
}

void Scheduler::on_cell_read(int loc) {
  std::unique_lock<std::mutex> lk(mu_);
  ThreadState& me = threads_[tls_thread_id];
  Location& l = locations_[loc];
  if (l.writer >= 0 && l.writer != me.id &&
      l.writer_clock > me.clock.c[l.writer]) {
    record_failure_locked("data race: T" + std::to_string(me.id) +
                          " reads a cell whose last write (T" +
                          std::to_string(l.writer) +
                          ") is not ordered before it");
    abort_execution_locked(lk);
  }
  l.readers[me.id] = me.clock.c[me.id];
}

void Scheduler::on_cell_write(int loc) {
  std::unique_lock<std::mutex> lk(mu_);
  ThreadState& me = threads_[tls_thread_id];
  Location& l = locations_[loc];
  if (l.writer >= 0 && l.writer != me.id &&
      l.writer_clock > me.clock.c[l.writer]) {
    record_failure_locked("data race: T" + std::to_string(me.id) +
                          " overwrites a cell whose last write (T" +
                          std::to_string(l.writer) +
                          ") is not ordered before it");
    abort_execution_locked(lk);
  }
  for (int i = 0; i < kMaxThreads; ++i) {
    if (i != me.id && l.readers[i] > me.clock.c[i]) {
      record_failure_locked("data race: T" + std::to_string(me.id) +
                            " overwrites a cell T" + std::to_string(i) +
                            " read without ordering");
      abort_execution_locked(lk);
    }
  }
  l.writer = me.id;
  l.writer_clock = me.clock.c[me.id];
  l.readers.fill(0);
}

// --- mutexes --------------------------------------------------------------

void Scheduler::mutex_lock(const void* addr, const char* name) {
  {
    std::unique_lock<std::mutex> lk(mu_);
    ThreadState& me = threads_[tls_thread_id];
    const int loc = locate_locked(addr, Location::Kind::kMutex, name);
    if (locations_[loc].owner == me.id) {
      record_failure_locked("recursive lock of a non-recursive mutex");
      abort_execution_locked(lk);
    }
  }
  const int loc = schedule_op(OpKind::kMutexLock, addr, name, 0);
  std::unique_lock<std::mutex> lk(mu_);
  ThreadState& me = threads_[tls_thread_id];
  Location& l = locations_[loc];
  l.owner = me.id;
  me.clock.join(l.sync);
}

void Scheduler::mutex_unlock(const void* addr, const char* name) {
  const int loc = schedule_op(OpKind::kMutexUnlock, addr, name, 0);
  std::unique_lock<std::mutex> lk(mu_);
  ThreadState& me = threads_[tls_thread_id];
  Location& l = locations_[loc];
  if (l.owner != me.id) {
    record_failure_locked("unlock of a mutex the thread does not hold");
    abort_execution_locked(lk);
  }
  l.owner = -1;
  l.sync.join(me.clock);
  // Unblocking a lock-waiter changes the enabled set; wake the world so
  // parked choosers re-evaluate.
  cv_.notify_all();
}

bool Scheduler::mutex_try_lock(const void* addr, const char* name) {
  const int loc = schedule_op(OpKind::kMutexTryLock, addr, name, 0);
  std::unique_lock<std::mutex> lk(mu_);
  ThreadState& me = threads_[tls_thread_id];
  Location& l = locations_[loc];
  if (l.owner >= 0) return false;
  l.owner = me.id;
  me.clock.join(l.sync);
  return true;
}

void Scheduler::name_location(const void* addr, const char* name) {
  std::unique_lock<std::mutex> lk(mu_);
  auto it = loc_ids_.find(addr);
  if (it != loc_ids_.end()) {
    locations_[it->second].name = name;
  } else {
    // Register eagerly so the name is there when the op arrives.
    const int id = locate_locked(addr, Location::Kind::kAtomic, name);
    locations_[id].name = name;
  }
}

// --- threads --------------------------------------------------------------

int Scheduler::spawn_thread(std::function<void()> fn) {
  schedule_op(OpKind::kSpawn, nullptr, "spawn", 0);
  std::unique_lock<std::mutex> lk(mu_);
  if (thread_count_ >= kMaxThreads) {
    record_failure_locked("too many model threads (kMaxThreads)");
    abort_execution_locked(lk);
  }
  const int id = thread_count_++;
  ThreadState& child = threads_[id];
  ThreadState& me = threads_[tls_thread_id];
  child.id = id;
  child.fn = std::move(fn);
  child.clock = me.clock;  // spawn edge: child starts after the parent
  child.status = ThreadState::Status::kRunning;  // becomes kParked below
  if (child.handle.joinable()) child.handle.join();  // recycle the slot
  child.handle = std::thread([this, id] { trampoline(id); });
  // Hold the token until the child is parked at its start point, so the
  // enabled set at the next decision is deterministic.
  cv_.wait(lk, [&] {
    return child.status == ThreadState::Status::kParked || abort_;
  });
  if (abort_) throw ScheduleAborted{};
  return id;
}

void Scheduler::trampoline(int id) {
  tls_scheduler = this;
  tls_thread_id = id;
  ThreadState& me = threads_[id];
  try {
    {
      // Park at the start point; the spawning parent is waiting for
      // this transition and keeps the token.
      std::unique_lock<std::mutex> lk(mu_);
      me.pending = OpSig{OpKind::kSpawn, -1};
      me.pending_name = "start";
      me.status = ThreadState::Status::kParked;
      cv_.notify_all();
      cv_.wait(lk, [&] { return me.has_token || abort_; });
      if (abort_) throw ScheduleAborted{};
      me.has_token = false;
      me.status = ThreadState::Status::kRunning;
      commit_locked(me);
    }
    me.fn();
    std::unique_lock<std::mutex> lk(mu_);
    me.status = ThreadState::Status::kFinished;
    // Finishing may unblock a join-waiter; hand the token on.  This can
    // itself abort (deadlock / sleep-set prune), so it must stay inside
    // the try: a ScheduleAborted escaping a thread entry is terminate().
    choose_next_locked(lk);
  } catch (const ScheduleAborted&) {
    std::unique_lock<std::mutex> lk(mu_);
    me.status = ThreadState::Status::kFinished;
  }
}

void Scheduler::join_thread(int id) {
  {
    std::unique_lock<std::mutex> lk(mu_);
    threads_[tls_thread_id].join_target = id;
  }
  schedule_op(OpKind::kJoin, nullptr, "join", 0);
  std::unique_lock<std::mutex> lk(mu_);
  ThreadState& me = threads_[tls_thread_id];
  me.clock.join(threads_[id].clock);  // join edge
  me.join_target = -1;
}

// --- failures -------------------------------------------------------------

void Scheduler::record_failure_locked(const std::string& message) {
  if (failed_) return;
  failed_ = true;
  failure_ = render_failure_locked(message);
}

void Scheduler::abort_execution_locked(std::unique_lock<std::mutex>& lk) {
  abort_ = true;
  cv_.notify_all();
  (void)lk;
  throw ScheduleAborted{};
}

void Scheduler::fail_here(const char* file, int line, const char* message) {
  std::unique_lock<std::mutex> lk(mu_);
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  record_failure_locked("MDN_CHECK failed: " + std::string(message) + " (" +
                        base + ":" + std::to_string(line) + ")");
  abort_execution_locked(lk);
}

std::string Scheduler::decisions_string_locked() const {
  std::string out;
  for (const Node& n : nodes_) {
    if (!out.empty()) out += ",";
    out += std::to_string(n.chosen);
  }
  return out;
}

std::string Scheduler::render_failure_locked(const std::string& message) const {
  const char* kind_names[] = {"load", "store", "rmw",    "fence",  "read",
                              "write", "lock",  "unlock", "trylock", "spawn",
                              "join"};
  constexpr int kCol = 30;
  std::string out = "model-check counterexample\n";
  out += "  failure: " + message + "\n";
  out += "  replay seed: \"" + decisions_string_locked() +
         "\" (set check::Options::replay)\n";
  out += "  timeline (" + std::to_string(thread_count_) + " threads):\n";
  std::string header = "    step  ";
  for (int t = 0; t < thread_count_; ++t) {
    std::string col = "T" + std::to_string(t);
    col.resize(kCol, ' ');
    header += col;
  }
  out += header + "\n";
  for (const TraceEvent& ev : trace_) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "    %4d  ", ev.step);
    std::string line = buf;
    for (int t = 0; t < thread_count_; ++t) {
      std::string col;
      if (t == ev.tid) {
        if (ev.loc >= 0) {
          const Location& l = locations_[ev.loc];
          if (l.name != nullptr) {
            col = l.name;
          } else {
            const char* prefix =
                l.kind == Location::Kind::kCell
                    ? "cell#"
                    : (l.kind == Location::Kind::kMutex ? "mutex#" : "atomic#");
            col = prefix + std::to_string(ev.loc);
          }
          col += ".";
        }
        col += kind_names[static_cast<int>(ev.kind)];
        if (ev.kind == OpKind::kLoad || ev.kind == OpKind::kStore ||
            ev.kind == OpKind::kRmw || ev.kind == OpKind::kFence) {
          col += std::string("(") + order_name(ev.order) + ")";
        }
        if (ev.has_value) {
          std::snprintf(buf, sizeof buf, "=%llu",
                        static_cast<unsigned long long>(ev.value));
          col += buf;
        }
      }
      if (col.size() > kCol - 2) col.resize(kCol - 2);
      col.resize(kCol, ' ');
      line += col;
    }
    while (!line.empty() && line.back() == ' ') line.pop_back();
    out += line + "\n";
  }
  return out;
}

}  // namespace

// --- public API (model-check build) ---------------------------------------

Result explore(const Options& options, const std::function<void()>& body) {
  Scheduler scheduler;
  return scheduler.run(options, body);
}

bool active() noexcept { return tls_scheduler != nullptr; }

void fail(const char* file, int line, const char* message) {
  if (tls_scheduler != nullptr) {
    tls_scheduler->fail_here(file, line, message);
  }
  std::fprintf(stderr, "MDN_CHECK failed outside explore(): %s (%s:%d)\n",
               message, file, line);
  std::abort();
}

thread::thread(std::function<void()> fn) {
  if (tls_scheduler != nullptr) {
    model_id_ = tls_scheduler->spawn_thread(std::move(fn));
  } else {
    impl_ = std::thread(std::move(fn));
  }
}

thread::~thread() {
  if (!joined_ && impl_.joinable()) impl_.join();
}

void thread::join() {
  if (joined_) return;
  joined_ = true;
  if (model_id_ >= 0) {
    if (tls_scheduler != nullptr) tls_scheduler->join_thread(model_id_);
    return;
  }
  if (impl_.joinable()) impl_.join();
}

namespace detail {

bool active_here() noexcept { return tls_scheduler != nullptr; }

// Once a ScheduleAborted is in flight, destructors running during the
// unwind (MutexLock, ring buffers holding shim state) still reach
// these entry points.  Scheduling — or throwing again — from inside a
// noexcept destructor frame would terminate the process, and the
// schedule is already dead, so unwinding threads skip instrumentation
// entirely: ops execute raw, hooks become no-ops (loc = -1).
namespace {
bool unwinding() noexcept { return std::uncaught_exceptions() > 0; }
}  // namespace

int schedule_op(OpKind kind, const void* addr, const char* name, int order) {
  if (unwinding()) return -1;
  return tls_scheduler->schedule_op(kind, addr, name, order);
}

void on_atomic_load(int loc, int order, std::uint64_t value) {
  if (loc < 0) return;
  tls_scheduler->on_atomic_load(loc, order, value);
}
void on_atomic_store(int loc, int order, std::uint64_t value) {
  if (loc < 0) return;
  tls_scheduler->on_atomic_store(loc, order, value);
}
void on_atomic_rmw(int loc, int order, std::uint64_t value) {
  if (loc < 0) return;
  tls_scheduler->on_atomic_rmw(loc, order, value);
}
void on_fence(int order) {
  if (unwinding()) return;
  tls_scheduler->on_fence(order);
}
void on_cell_read(int loc) {
  if (loc < 0) return;
  tls_scheduler->on_cell_read(loc);
}
void on_cell_write(int loc) {
  if (loc < 0) return;
  tls_scheduler->on_cell_write(loc);
}

void mutex_lock(const void* addr, const char* name) {
  if (unwinding()) return;
  tls_scheduler->mutex_lock(addr, name);
}
void mutex_unlock(const void* addr, const char* name) {
  if (unwinding()) return;
  tls_scheduler->mutex_unlock(addr, name);
}
bool mutex_try_lock(const void* addr, const char* name) {
  if (unwinding()) return false;
  return tls_scheduler->mutex_try_lock(addr, name);
}
void name_location(const void* addr, const char* name) {
  if (tls_scheduler != nullptr) tls_scheduler->name_location(addr, name);
}

}  // namespace detail

}  // namespace mdn::check

#else  // !MDN_MODEL_CHECK ------------------------------------------------

namespace mdn::check {

// Pass-through: one plain execution, real threads, assertion-style
// failure.  The shim (common/atomic.h) is std::atomic in this mode, so
// nothing below is on any hot path.

Result explore(const Options& options, const std::function<void()>& body) {
  (void)options;
  body();
  Result result;
  result.schedules = 1;
  result.complete = false;  // one schedule is not an exploration
  result.ok = true;
  return result;
}

bool active() noexcept { return false; }

void fail(const char* file, int line, const char* message) {
  std::fprintf(stderr, "MDN_CHECK failed: %s (%s:%d)\n", message, file, line);
  std::abort();
}

thread::thread(std::function<void()> fn) : impl_(std::move(fn)) {}

thread::~thread() {
  if (!joined_ && impl_.joinable()) impl_.join();
}

void thread::join() {
  if (joined_) return;
  joined_ = true;
  if (impl_.joinable()) impl_.join();
}

}  // namespace mdn::check

#endif  // MDN_MODEL_CHECK
