// Capability-annotated mutex — the lockable type behind every
// MDN_GUARDED_BY member in the stack.
//
// std::mutex carries no thread-safety attributes, so clang's
// -Wthread-safety analysis cannot see which members it protects.  This
// wrapper is a zero-overhead std::mutex declared as a capability, plus
// an RAII MutexLock guard the analysis understands (std::lock_guard is
// opaque to it).  The cold-path/hot-path split of the codebase is
// unchanged: these are used exactly where std::mutex was.
// Under -DMDN_MODEL_CHECK, model threads (inside check::explore) take a
// *virtual* lock tracked by the scheduler instead of the std::mutex:
// only one model thread runs at a time, so taking the real mutex would
// deadlock against a parked token-holder.  Non-model threads — and all
// threads in normal builds — use the std::mutex unchanged.
#pragma once

#include <mutex>

#include "common/annotations.h"
#include "common/check.h"

namespace mdn::common {

class MDN_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() MDN_ACQUIRE() {
#ifdef MDN_MODEL_CHECK
    if (check::detail::active_here()) {
      check::detail::mutex_lock(this, nullptr);
      return;
    }
#endif
    mu_.lock();
  }

  void unlock() MDN_RELEASE() {
#ifdef MDN_MODEL_CHECK
    if (check::detail::active_here()) {
      check::detail::mutex_unlock(this, nullptr);
      return;
    }
#endif
    mu_.unlock();
  }

  bool try_lock() MDN_TRY_ACQUIRE(true) {
#ifdef MDN_MODEL_CHECK
    if (check::detail::active_here()) {
      return check::detail::mutex_try_lock(this, nullptr);
    }
#endif
    return mu_.try_lock();
  }

 private:
  std::mutex mu_;
};

/// RAII lock with scoped-capability semantics (the annotated
/// replacement for std::lock_guard<std::mutex>).
class MDN_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) MDN_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() MDN_CHECK_DTOR_NOEXCEPT MDN_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace mdn::common
