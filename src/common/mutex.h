// Capability-annotated mutex — the lockable type behind every
// MDN_GUARDED_BY member in the stack.
//
// std::mutex carries no thread-safety attributes, so clang's
// -Wthread-safety analysis cannot see which members it protects.  This
// wrapper is a zero-overhead std::mutex declared as a capability, plus
// an RAII MutexLock guard the analysis understands (std::lock_guard is
// opaque to it).  The cold-path/hot-path split of the codebase is
// unchanged: these are used exactly where std::mutex was.
#pragma once

#include <mutex>

#include "common/annotations.h"

namespace mdn::common {

class MDN_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() MDN_ACQUIRE() { mu_.lock(); }
  void unlock() MDN_RELEASE() { mu_.unlock(); }
  bool try_lock() MDN_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// RAII lock with scoped-capability semantics (the annotated
/// replacement for std::lock_guard<std::mutex>).
class MDN_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) MDN_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() MDN_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace mdn::common
