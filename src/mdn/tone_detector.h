// Tone detection: the listening half of Music-Defined Networking.
//
// The MDN controller records short blocks of audio, computes a windowed
// FFT and matches spectral peaks against the frequency plan (§3, Fig 2a).
// Two interfaces are provided:
//   * detect()      — open-set peak picking over a block;
//   * set_levels()  — closed-set Goertzel evaluation of known frequencies
//                     (cheaper when the watch list is small, e.g. §6).
// extract_tone_events() turns a whole recording into onset events, which
// is what the FSM (§4) and telemetry counters (§5) consume.
#pragma once

#include <span>
#include <vector>

#include "audio/waveform.h"
#include "dsp/spectrum.h"
#include "dsp/window.h"
#include "obs/metrics.h"

namespace mdn::core {

struct DetectedTone {
  double frequency_hz = 0.0;
  double amplitude = 0.0;  ///< window-normalised linear amplitude
};

struct ToneDetectorConfig {
  double sample_rate = 48000.0;
  std::size_t fft_size = 4096;  ///< zero-pad target; blocks may be shorter
  /// Blackman by default: its -58 dB sidelobes keep one switch's loud
  /// tone from masquerading as another switch's frequency slot.
  dsp::WindowKind window = dsp::WindowKind::kBlackman;
  /// Minimum linear amplitude to call a peak a tone.  The default is
  /// ~34 dB SPL under the channel's 94 dB == 1.0 convention — just above
  /// the paper's ">= 30 dB" floor.
  double min_amplitude = 1e-3;
  /// Half-width of the frequency match window.  The paper's 20 Hz plan
  /// spacing implies a tolerance of at most 10 Hz.
  double match_tolerance_hz = 10.0;
};

class ToneDetector {
 public:
  explicit ToneDetector(const ToneDetectorConfig& config = {});

  const ToneDetectorConfig& config() const noexcept { return config_; }

  /// All tones present in `block` (open set).  `block` may be any length;
  /// it is zero-padded or truncated to the configured FFT size.
  std::vector<DetectedTone> detect(std::span<const double> block) const;

  /// Amplitude of each watched frequency in `block` (closed set,
  /// Goertzel).  Result is parallel to `watch_hz`.
  std::vector<double> set_levels(std::span<const double> block,
                                 std::span<const double> watch_hz) const;

  /// True when any detected tone lies within the match tolerance of
  /// `frequency_hz`.
  bool present(std::span<const double> block, double frequency_hz) const;

 private:
  ToneDetectorConfig config_;
  std::vector<double> window_;
  // Window matching the most recent short-block length (blocks shorter
  // than the FFT size are windowed at their own length, then padded).
  mutable std::vector<double> cached_window_;
  // Wall-time histograms ("dsp/fft/wall_ns" is the Fig 2b CDF source).
  obs::Histogram* fft_wall_ns_;
  obs::Histogram* goertzel_wall_ns_;
};

/// A tone onset: `frequency_hz` rose above threshold at `time_s`.
struct ToneEvent {
  double time_s = 0.0;
  double frequency_hz = 0.0;
  double amplitude = 0.0;
};

/// Scans `recording` in hops of `hop_s`, reporting an event each time a
/// watched frequency transitions from absent to present (onset
/// semantics: a tone spanning several blocks yields one event).
std::vector<ToneEvent> extract_tone_events(
    const audio::Waveform& recording, const ToneDetector& detector,
    std::span<const double> watch_hz, double hop_s);

}  // namespace mdn::core
