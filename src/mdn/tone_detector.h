// Tone detection: the listening half of Music-Defined Networking.
//
// The MDN controller records short blocks of audio, computes a windowed
// FFT and matches spectral peaks against the frequency plan (§3, Fig 2a).
// Two interfaces are provided:
//   * detect() / detect_into() — open-set peak picking over a block;
//   * set_levels()  — closed-set Goertzel evaluation of known frequencies
//                     (cheaper when the watch list is small, e.g. §6).
// extract_tone_events() turns a whole recording into onset events, which
// is what the FSM (§4) and telemetry counters (§5) consume.
//
// The detector follows the plan layer's "plan cold, execute hot" rule:
// the FFT plan and both analysis windows (full FFT-size and expected
// block-size) are built at construction, and detect_into() runs with
// zero heap allocations at steady state.  detect() and detect_into()
// are const and thread-safe: the detector's members are immutable after
// construction and all per-call scratch lives in thread-local storage,
// so one detector may serve many threads concurrently.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "audio/waveform.h"
#include "common/annotations.h"
#include "dsp/fft_plan.h"
#include "dsp/goertzel.h"
#include "dsp/spectrum.h"
#include "dsp/window.h"
#include "obs/health.h"
#include "obs/metrics.h"

namespace mdn::core {

struct DetectedTone {
  double frequency_hz = 0.0;
  double amplitude = 0.0;  ///< window-normalised linear amplitude
};

struct ToneDetectorConfig {
  double sample_rate = 48000.0;
  std::size_t fft_size = 4096;  ///< zero-pad target; blocks may be shorter
  /// Expected microphone block length in samples; blocks shorter than
  /// the FFT size are windowed at their own length and zero-padded.  The
  /// default is the paper's 50 ms capture at 48 kHz.  Set to 0 when the
  /// block length is unknown; detect() then synthesises the short-block
  /// window on first use per thread (one-time cost, still thread-safe).
  std::size_t block_size = 2400;
  /// Blackman by default: its -58 dB sidelobes keep one switch's loud
  /// tone from masquerading as another switch's frequency slot.
  dsp::WindowKind window = dsp::WindowKind::kBlackman;
  /// Minimum linear amplitude to call a peak a tone.  The default is
  /// ~34 dB SPL under the channel's 94 dB == 1.0 convention — just above
  /// the paper's ">= 30 dB" floor.
  double min_amplitude = 1e-3;
  /// Half-width of the frequency match window.  The paper's 20 Hz plan
  /// spacing implies a tolerance of at most 10 Hz.
  double match_tolerance_hz = 10.0;
};

class ToneDetector {
 public:
  explicit ToneDetector(const ToneDetectorConfig& config = {});

  const ToneDetectorConfig& config() const noexcept { return config_; }

  /// All tones present in `block` (open set).  `block` may be any length;
  /// it is zero-padded or truncated to the configured FFT size.
  std::vector<DetectedTone> detect(std::span<const double> block) const;

  /// Zero-allocation variant of detect(): clears and refills `out`,
  /// keeping its capacity, so a caller-reused vector stops allocating
  /// once warm.  Thread-safe with one `out` per thread.
  ///
  /// When `stats` is non-null it is refilled with per-block signal
  /// measurements for the health layer — block RMS, strongest peak, and
  /// the off-peak noise floor (mean spectrum amplitude outside every
  /// peak's +-neighbourhood) — a by-product of the spectrum this call
  /// already computed, so the extra cost is two linear passes and the
  /// path stays allocation-free.
  MDN_REALTIME void detect_into(std::span<const double> block,
                                std::vector<DetectedTone>& out,
                                obs::BlockSignalStats* stats = nullptr) const;

  /// Channels one detect_batch_into() call fuses into a single batched
  /// FFT; longer spans are processed in runs of this size.
  static constexpr std::size_t kMaxDetectBatch = 4;

  /// Batched detect_into(): analyses blocks[i] into *outs[i] (and
  /// *stats[i] when `stats` is non-empty; individual pointers may be
  /// null).  Runs of equal-length blocks share one SoA plan execution
  /// and one window/magnitude pass; unequal lengths (or a plan that
  /// cannot batch) fall back to the single-block path per block.
  /// Either way every block's tones and stats are bit-identical to a
  /// solo detect_into() on that block.  Records one "dsp/fft/wall_ns"
  /// sample per block (the batch wall time split evenly), preserving
  /// the one-sample-per-block histogram count.
  MDN_REALTIME void detect_batch_into(
      std::span<const std::span<const double>> blocks,
      std::span<std::vector<DetectedTone>* const> outs,
      std::span<obs::BlockSignalStats* const> stats = {}) const;

  /// Runs one silent single-block and one silent batched detection
  /// without recording timings, so plan construction, SIMD dispatch and
  /// this thread's scratch growth (multi-millisecond first-call costs)
  /// happen here instead of inside the first timed block.  Call once
  /// per worker thread before entering the hot loop.
  void warm_up() const;

  /// Amplitude of each watched frequency in `block` (closed set,
  /// Goertzel).  Result is parallel to `watch_hz`.
  std::vector<double> set_levels(std::span<const double> block,
                                 std::span<const double> watch_hz) const;

  /// Closed-set levels through a prebuilt bank: writes bank.size()
  /// amplitudes into `out` with zero allocation.  Build the bank once
  /// with dsp::GoertzelBank(watch_hz, config().sample_rate).
  MDN_REALTIME void set_levels_into(std::span<const double> block,
                                    const dsp::GoertzelBank& bank,
                                    std::span<double> out) const;

  /// True when any detected tone lies within the match tolerance of
  /// `frequency_hz`.
  bool present(std::span<const double> block, double frequency_hz) const;

 private:
  // detect_into minus the timer (shared by the batch and warm-up paths).
  void detect_impl(std::span<const double> block,
                   std::vector<DetectedTone>& out,
                   obs::BlockSignalStats* stats) const;
  // The batching loop itself, untimed.
  void detect_batch_impl(std::span<const std::span<const double>> blocks,
                         std::span<std::vector<DetectedTone>* const> outs,
                         std::span<obs::BlockSignalStats* const> stats) const;
  // Analysis window for an n-sample block, using the per-thread cache
  // for lengths the detector was not configured for.
  std::span<const double> window_for(std::size_t n,
                                     std::vector<double>& cache,
                                     dsp::WindowKind& cache_kind) const;
  // Peak picking + health stats over an already-computed spectrum —
  // the post-FFT half of detect, shared verbatim by the single and
  // batched paths so their outputs cannot drift apart.
  void finish_block(std::span<const double> data,
                    std::span<const double> spectrum,
                    std::vector<dsp::SpectralPeak>& peaks,
                    std::vector<DetectedTone>& out,
                    obs::BlockSignalStats* stats) const;

  ToneDetectorConfig config_;
  // Shared immutable plan from the process-wide cache; execution scratch
  // is thread-local inside detect_into, so detect stays const-correct
  // with no mutable members (two threads sharing one detector no longer
  // race on a cached window).
  std::shared_ptr<const dsp::RealFftPlan> plan_;
  std::vector<double> window_;        // fft_size analysis window
  std::vector<double> block_window_;  // block_size window (may be empty)
  // Wall-time histograms ("dsp/fft/wall_ns" is the Fig 2b CDF source).
  obs::Histogram* fft_wall_ns_;
  obs::Histogram* goertzel_wall_ns_;
};

/// A tone onset: `frequency_hz` rose above threshold at `time_s`.
struct ToneEvent {
  double time_s = 0.0;
  double frequency_hz = 0.0;
  double amplitude = 0.0;
  /// Journal id of the detection record (0 when the journal is
  /// disabled).  Apps pass this down so FSM transitions and flow mods
  /// can cite the tone that triggered them.
  std::uint64_t cause = 0;
};

/// Scans `recording` in hops of `hop_s`, reporting an event each time a
/// watched frequency transitions from absent to present (onset
/// semantics: a tone spanning several blocks yields one event).
std::vector<ToneEvent> extract_tone_events(
    const audio::Waveform& recording, const ToneDetector& detector,
    std::span<const double> watch_hz, double hop_s);

}  // namespace mdn::core
