#include "mdn/fan_anomaly.h"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "dsp/fft.h"
#include "dsp/spectrum.h"

namespace mdn::core {

FanAnomalyClassifier::FanAnomalyClassifier(double sample_rate,
                                           const FanDetectorConfig& config)
    : sample_rate_(sample_rate),
      config_(config),
      window_(dsp::make_window(config.window, config.fft_size)) {
  if (sample_rate <= 0.0) {
    throw std::invalid_argument("FanAnomalyClassifier: sample rate");
  }
}

std::vector<double> FanAnomalyClassifier::band_spectrum(
    std::span<const double> segment) const {
  std::vector<double> chunk(config_.fft_size, 0.0);
  const std::size_t n = std::min(segment.size(), config_.fft_size);
  std::copy_n(segment.begin(), n, chunk.begin());
  const auto full = dsp::amplitude_spectrum(chunk, window_);

  const std::size_t lo =
      dsp::frequency_bin(config_.band_lo_hz, config_.fft_size, sample_rate_);
  const std::size_t hi =
      dsp::frequency_bin(config_.band_hi_hz, config_.fft_size, sample_rate_);
  std::vector<double> band;
  band.reserve(hi - lo + 1);
  for (std::size_t k = lo; k <= hi && k < full.size(); ++k) {
    band.push_back(full[k]);
  }
  return band;
}

std::vector<double> FanAnomalyClassifier::mean_spectrum(
    const audio::Waveform& recording, std::size_t min_segments) const {
  const std::size_t seg = config_.fft_size;
  const std::size_t count = recording.size() / seg;
  if (count < min_segments) {
    throw std::invalid_argument(
        "FanAnomalyClassifier: recording too short");
  }
  std::vector<double> mean;
  for (std::size_t i = 0; i < count; ++i) {
    const auto s = band_spectrum(recording.samples().subspan(i * seg, seg));
    if (mean.empty()) mean.assign(s.size(), 0.0);
    for (std::size_t k = 0; k < s.size(); ++k) mean[k] += s[k];
  }
  for (auto& v : mean) v /= static_cast<double>(count);
  return mean;
}

void FanAnomalyClassifier::add_reference(const std::string& label,
                                         const audio::Waveform& recording) {
  auto spectrum = mean_spectrum(recording, 2);
  for (auto& ref : refs_) {
    if (ref.label == label) {
      ref.spectrum = std::move(spectrum);
      return;
    }
  }
  refs_.push_back({label, std::move(spectrum)});
}

std::vector<std::string> FanAnomalyClassifier::labels() const {
  std::vector<std::string> out;
  out.reserve(refs_.size());
  for (const auto& r : refs_) out.push_back(r.label);
  return out;
}

FanAnomalyClassifier::Result FanAnomalyClassifier::classify(
    const audio::Waveform& sample) const {
  if (refs_.size() < 2) {
    throw std::logic_error(
        "FanAnomalyClassifier: need >= 2 references to classify");
  }
  const auto spectrum = mean_spectrum(sample, 1);

  double best = 1e300, second = 1e300;
  const Reference* winner = nullptr;
  for (const auto& ref : refs_) {
    const double d = dsp::spectral_difference(spectrum, ref.spectrum);
    if (d < best) {
      second = best;
      best = d;
      winner = &ref;
    } else if (d < second) {
      second = d;
    }
  }
  return {winner->label, best, second - best};
}

FanAnomalyClassifier::Result FanAnomalyClassifier::classify_majority(
    const audio::Waveform& recording) const {
  const std::size_t seg = config_.fft_size;
  const std::size_t count = recording.size() / seg;
  if (count == 0) return classify(recording);

  std::map<std::string, std::size_t> votes;
  std::map<std::string, Result> best_result;
  for (std::size_t i = 0; i < count; ++i) {
    const Result r = classify(audio::Waveform(
        sample_rate_,
        std::vector<double>(
            recording.samples().begin() + static_cast<std::ptrdiff_t>(i * seg),
            recording.samples().begin() +
                static_cast<std::ptrdiff_t>((i + 1) * seg))));
    ++votes[r.label];
    const auto it = best_result.find(r.label);
    if (it == best_result.end() || r.distance < it->second.distance) {
      best_result[r.label] = r;
    }
  }
  const auto winner = std::max_element(
      votes.begin(), votes.end(),
      [](const auto& a, const auto& b) { return a.second < b.second; });
  return best_result[winner->first];
}

}  // namespace mdn::core
