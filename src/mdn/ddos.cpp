#include "mdn/ddos.h"

#include <unordered_set>

namespace mdn::core {
namespace {

std::uint64_t address_hash(std::uint32_t address) noexcept {
  // SplitMix-style avalanche, so adjacent addresses spread across bins.
  std::uint64_t z = address + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

SuperspreaderReporter::SuperspreaderReporter(net::Switch& sw,
                                             mp::MpEmitter& emitter,
                                             const FrequencyPlan& plan,
                                             DeviceId device,
                                             SuperspreaderConfig config)
    : emitter_(emitter), plan_(plan), device_(device), config_(config) {
  sw.add_packet_hook([this](const net::Packet& pkt, std::size_t) {
    const std::uint32_t addr =
        config_.key_by == SuperspreaderConfig::KeyBy::kDstAddress
            ? pkt.flow.dst_ip
            : pkt.flow.src_ip;
    emitter_.emit(frequency_for_address(addr), config_.tone_duration_s,
                  config_.intensity_db_spl);
  });
}

std::size_t SuperspreaderReporter::bin_for_address(
    std::uint32_t address) const {
  return static_cast<std::size_t>(address_hash(address) %
                                  plan_.symbol_count(device_));
}

double SuperspreaderReporter::frequency_for_address(
    std::uint32_t address) const {
  return plan_.frequency(device_, bin_for_address(address));
}

SuperspreaderDetector::SuperspreaderDetector(MdnController& controller,
                                             const FrequencyPlan& plan,
                                             DeviceId device,
                                             SuperspreaderConfig config)
    : config_(config) {
  for (std::size_t bin = 0; bin < plan.symbol_count(device); ++bin) {
    controller.watch(plan.frequency(device, bin),
                     [this, bin](const ToneEvent& ev) { on_event(bin, ev); });
  }
}

std::size_t SuperspreaderDetector::distinct_in_window(double now_s) const {
  while (!window_.empty() &&
         now_s - window_.front().first > config_.window_s) {
    window_.pop_front();
  }
  std::unordered_set<std::size_t> distinct;
  for (const auto& [t, bin] : window_) distinct.insert(bin);
  return distinct.size();
}

void SuperspreaderDetector::on_event(std::size_t bin,
                                     const ToneEvent& event) {
  window_.emplace_back(event.time_s, bin);
  const std::size_t distinct = distinct_in_window(event.time_s);
  if (distinct > config_.k) {
    if (!alerted_) {
      alerted_ = true;
      Alert alert{event.time_s, distinct};
      alerts_.push_back(alert);
      if (handler_) handler_(alert);
    }
  } else {
    alerted_ = false;
  }
}

}  // namespace mdn::core
