// Tone relay — §8's open question, implemented:
//
// "Sound waves can, and have been, however, relayed ... A more efficient
// multi-hop sound transmission would allow greater flexibility in device
// placement.  We leave this as an open question."
//
// A ToneRelay is a microphone + speaker pair standing between two
// acoustic domains (or extending range inside one): symbols it hears on
// an upstream device's frequency set are re-emitted on its own device's
// set, preserving symbol indices.  Relays compose, so a knock sequence
// or a melody frame can cross several rooms.
#pragma once

#include <cstdint>

#include "mdn/controller.h"
#include "mdn/frequency_plan.h"
#include "mp/bridge.h"

namespace mdn::core {

struct ToneRelayConfig {
  double tone_duration_s = 0.05;
  double intensity_db_spl = 78.0;
};

class ToneRelay {
 public:
  /// `listener` is the relay's microphone (in the upstream room);
  /// `emitter` its speaker (in the downstream room).  Symbols of
  /// `upstream_device` are re-sung as the same symbol index of
  /// `relay_device`, whose set must be at least as large.  Both devices
  /// may live in the same plan (and typically do, so the downstream
  /// listener can attribute the hop).
  ToneRelay(MdnController& listener, const FrequencyPlan& plan,
            DeviceId upstream_device, mp::MpEmitter& emitter,
            DeviceId relay_device, ToneRelayConfig config = {});

  std::uint64_t relayed() const noexcept { return relayed_; }

 private:
  const FrequencyPlan& plan_;
  DeviceId relay_device_;
  mp::MpEmitter& emitter_;
  ToneRelayConfig config_;
  std::uint64_t relayed_ = 0;
};

}  // namespace mdn::core
