// Microphone arrays (§8 research direction).
//
// "An interesting research direction is to coordinate an array of
// microphones listening to different groups of switches."  MicArray does
// the coordination: several MdnControllers — each with its own
// microphone position on the shared channel — feed their onsets into one
// merged stream.  Events for the same frequency heard by several
// microphones within a small window are fused into a single event that
// records how many (and which) microphones heard it, so distant switches
// only need to be in range of *some* microphone.
#pragma once

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "mdn/controller.h"

namespace mdn::core {

class MicArray {
 public:
  struct MergedEvent {
    double time_s = 0.0;        ///< earliest hearing
    double frequency_hz = 0.0;
    double amplitude = 0.0;     ///< strongest hearing
    std::string first_mic;      ///< microphone that heard it first
    std::size_t heard_by = 0;   ///< number of microphones that heard it
    /// Journal id of the kMergedEvent record, chained from the first
    /// hearing's detection (0 = journal disabled).
    std::uint64_t cause = 0;
  };
  using Handler = std::function<void(const MergedEvent&)>;

  /// Events for one frequency closer together than `dedup_window_s` are
  /// treated as the same physical tone.
  explicit MicArray(double dedup_window_s = 0.12)
      : dedup_window_s_(dedup_window_s) {}

  /// Subscribes `controller` (one microphone) to `watch_hz` and routes
  /// its onsets into the merged stream under `mic_name`.  When the
  /// controller is in runtime mode (Config::sink set) its handlers never
  /// fire; route the runtime's merged events here instead with
  /// rt::StreamRuntime::deliver_to(array), which feeds ingest_event() in
  /// the runtime's deterministic order.
  void attach(MdnController& controller, std::span<const double> watch_hz,
              std::string mic_name);

  /// Feeds one onset heard by `mic` into the merged stream — the entry
  /// point used by attach()'s handlers and by the streaming runtime's
  /// ordered merge.
  void ingest_event(const std::string& mic, const ToneEvent& event);

  /// Fires once per *merged* event, on first hearing.
  void on_event(Handler handler) { handler_ = std::move(handler); }

  const std::vector<MergedEvent>& events() const noexcept {
    return merged_;
  }
  std::size_t microphone_count() const noexcept { return mics_; }

  /// Number of merged events heard by at least `k` microphones.
  std::size_t events_heard_by_at_least(std::size_t k) const;

 private:
  double dedup_window_s_;
  std::size_t mics_ = 0;
  std::vector<MergedEvent> merged_;
  Handler handler_;
};

}  // namespace mdn::core
