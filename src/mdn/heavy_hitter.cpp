#include "mdn/heavy_hitter.h"

#include "obs/journal.h"

namespace mdn::core {

HeavyHitterReporter::HeavyHitterReporter(net::Switch& sw,
                                         mp::MpEmitter& emitter,
                                         const FrequencyPlan& plan,
                                         DeviceId device,
                                         HeavyHitterConfig config)
    : emitter_(emitter), plan_(plan), device_(device), config_(config) {
  sw.add_packet_hook([this](const net::Packet& pkt, std::size_t) {
    emitter_.emit(frequency_for(pkt.flow), config_.tone_duration_s,
                  config_.intensity_db_spl);
  });
}

std::size_t HeavyHitterReporter::bin_for(const net::FlowKey& flow) const {
  return static_cast<std::size_t>(net::flow_hash(flow) %
                                  plan_.symbol_count(device_));
}

double HeavyHitterReporter::frequency_for(const net::FlowKey& flow) const {
  return plan_.frequency(device_, bin_for(flow));
}

HeavyHitterDetector::HeavyHitterDetector(MdnController& controller,
                                         const FrequencyPlan& plan,
                                         DeviceId device,
                                         HeavyHitterConfig config)
    : plan_(plan),
      device_(device),
      config_(config),
      window_(plan.symbol_count(device)),
      totals_(plan.symbol_count(device), 0),
      alerted_(plan.symbol_count(device), false) {
  for (std::size_t bin = 0; bin < window_.size(); ++bin) {
    controller.watch(plan_.frequency(device_, bin),
                     [this, bin](const ToneEvent& ev) { on_event(bin, ev); });
  }
}

void HeavyHitterDetector::expire(std::size_t bin, double now_s) const {
  auto& w = window_[bin];
  while (!w.empty() && now_s - w.front() > config_.window_s) w.pop_front();
}

void HeavyHitterDetector::on_event(std::size_t bin, const ToneEvent& event) {
  expire(bin, event.time_s);
  window_[bin].push_back(event.time_s);
  ++totals_[bin];

  const std::size_t count = window_[bin].size();
  if (count >= config_.threshold) {
    if (!alerted_[bin]) {
      alerted_[bin] = true;
      Alert alert{bin, plan_.frequency(device_, bin), event.time_s, count};
      obs::Journal& journal = obs::Journal::global();
      if (journal.enabled()) {
        // The alert's cause is the onset that pushed the window over the
        // threshold; the earlier onsets are context, not causes.
        obs::JournalRecord rec;
        rec.kind = obs::JournalKind::kAppAction;
        rec.cause = event.cause;
        rec.sim_ns = net::from_seconds(event.time_s);
        rec.frequency_hz = alert.frequency_hz;
        rec.value = static_cast<double>(count);
        rec.aux = bin;
        obs::set_journal_label(rec, "hh_alert");
        alert.cause = journal.append(rec);
      }
      alerts_.push_back(alert);
      if (handler_) handler_(alert);
    }
  } else {
    alerted_[bin] = false;
  }
}

std::size_t HeavyHitterDetector::window_count(std::size_t bin) const {
  return window_.at(bin).size();
}

}  // namespace mdn::core
