// The Music-Defined Networking controller (the "listening application").
//
// Fig 1: an application listens for sounds, interprets the sequence and
// launches the appropriate action — sending an OpenFlow Flow-MOD, opening
// a knocked port, raising an alert.  This class is that application: it
// owns a microphone on the acoustic channel, wakes up every `hop_s`
// seconds of simulated time, records the last hop, runs the tone detector
// and dispatches onset events to registered handlers.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "audio/channel.h"
#include "mdn/block_sink.h"
#include "mdn/tone_detector.h"
#include "net/event_loop.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mdn::core {

class MdnController {
 public:
  struct Config {
    /// Listening block length.  §3 reports ~50 ms samples with 90% of
    /// FFTs finishing in 0.35 ms.
    double hop_s = 0.05;
    ToneDetectorConfig detector;
    audio::MicrophoneSpec microphone;
    /// Keep the raw microphone signal for later spectrogram rendering.
    bool keep_recording = false;
    /// Runtime mode (constructor-injected): when non-null the controller
    /// becomes a pure producer — every recorded block is forwarded to
    /// `sink` under id `sink_mic` (from rt::StreamRuntime::add_mic) and
    /// the inline detect/match stages are skipped.  Onsets then arrive
    /// through the runtime's deterministic ordered merge instead of the
    /// controller's own watch handlers and event_log().  Non-owning.
    BlockSink* sink = nullptr;
    std::uint32_t sink_mic = 0;
    /// Optional health engine (non-owning).  Inline (sink-less)
    /// controllers feed health->estimator(sink_mic) per tick and run the
    /// alert engine at tick end; in runtime mode leave this unset and
    /// wire the engine into the StreamRuntimeConfig instead (the sharded
    /// workers feed it there).
    obs::Health* health = nullptr;
  };

  using Handler = std::function<void(const ToneEvent&)>;

  MdnController(net::EventLoop& loop, audio::AcousticChannel& channel,
                const Config& config);

  /// Registers a handler for onsets of `frequency_hz` (within the
  /// detector's match tolerance).
  void watch(double frequency_hz, Handler handler);

  /// Registers one handler for every frequency in `watch_hz`.
  void watch_all(std::span<const double> watch_hz, Handler handler);

  /// Low-level tap: receives every recorded block (block start time in
  /// seconds plus the raw samples) before onset matching.  Applications
  /// with their own demodulators — e.g. the melody codec's FSK receiver
  /// — build on this instead of watch().
  using BlockObserver =
      std::function<void(double start_s, std::span<const double> samples)>;
  void observe_blocks(BlockObserver observer);

  /// Begins periodic listening at the configured hop.  Listening stops
  /// when stop() is called or the event loop drains.
  void start();
  void stop() noexcept { running_ = false; }
  bool running() const noexcept { return running_; }

  const ToneDetector& detector() const noexcept { return detector_; }
  const Config& config() const noexcept { return config_; }
  net::EventLoop& loop() noexcept { return loop_; }

  /// Every onset heard since start(), regardless of handlers.
  const std::vector<ToneEvent>& event_log() const noexcept { return log_; }

  /// Full microphone recording (only if keep_recording was set).
  const audio::Waveform& recording() const noexcept { return recording_; }

  std::uint64_t blocks_processed() const noexcept { return blocks_; }

 private:
  struct Watch {
    double frequency_hz;
    Handler handler;
    bool active = false;  // present in the previous block
  };

  bool tick();

  net::EventLoop& loop_;
  audio::AcousticChannel& channel_;
  Config config_;
  ToneDetector detector_;
  audio::Microphone microphone_;
  std::vector<Watch> watches_;
  std::vector<BlockObserver> block_observers_;
  std::vector<DetectedTone> tones_scratch_;  // reused by tick()
  // Ground-truth emission tags overlapping the current block, collected
  // only while the journal is enabled.  Fixed-size so the hot loop stays
  // allocation-free; config_.sink_mic doubles as the journal mic id for
  // inline (sink-less) controllers.  Sized for a fleet room: a dozen
  // switches keying two tone families can overlap one 50 ms block (the
  // rt path clamps to its own AudioBlock tag capacity separately).
  std::array<audio::EmissionTag, 64> tag_scratch_{};
  std::vector<ToneEvent> log_;
  audio::Waveform recording_;
  bool running_ = false;
  std::uint64_t blocks_ = 0;
  // Registry instruments under "mdn/controller/..." plus the per-stage
  // wall timers behind §3's latency claims; spans go to the loop tracer.
  obs::Counter* blocks_counter_;
  obs::Counter* onsets_counter_;
  obs::Histogram* record_wall_ns_;
  obs::Histogram* detect_wall_ns_;
  obs::Histogram* match_wall_ns_;
  std::uint32_t trace_track_;
};

}  // namespace mdn::core
