#include "mdn/music_fsm.h"

#include <stdexcept>

namespace mdn::core {

MusicFsm::MusicFsm(std::size_t state_count, State initial)
    : initial_(initial),
      current_(initial),
      default_edges_(state_count),
      entry_actions_(state_count) {
  if (initial >= state_count) {
    throw std::invalid_argument("MusicFsm: initial state out of range");
  }
}

void MusicFsm::add_transition(State from, Symbol symbol, State to) {
  if (from >= state_count() || to >= state_count()) {
    throw std::out_of_range("MusicFsm::add_transition");
  }
  edges_[Key{from, symbol}] = to;
}

void MusicFsm::set_default_transition(State from, State to) {
  if (from >= state_count() || to >= state_count()) {
    throw std::out_of_range("MusicFsm::set_default_transition");
  }
  default_edges_[from] = to;
}

void MusicFsm::on_enter(State state, std::function<void()> action) {
  entry_actions_.at(state) = std::move(action);
}

MusicFsm::State MusicFsm::feed(Symbol symbol, net::SimTime now) {
  return feed(symbol, now, 0);
}

MusicFsm::State MusicFsm::feed(Symbol symbol, net::SimTime now,
                               obs::CauseId cause) {
  if (timeout_ > 0 && saw_symbol_ && now - last_symbol_at_ > timeout_ &&
      current_ != initial_) {
    current_ = initial_;
    ++resets_;
  }
  last_symbol_at_ = now;
  saw_symbol_ = true;

  const State from = current_;
  State next;
  const auto it = edges_.find(Key{current_, symbol});
  if (it != edges_.end()) {
    next = it->second;
  } else if (default_edges_[current_]) {
    next = *default_edges_[current_];
  } else {
    next = initial_;
  }
  if (next == initial_ && current_ != initial_ && it == edges_.end()) {
    ++resets_;
  }
  current_ = next;
  ++transitions_;
  obs::Journal& journal = obs::Journal::global();
  if (journal.enabled()) {
    // Two causal links: the detection that carried the symbol, and the
    // previous transition — explain() walks both, so the full symbol
    // history behind an accepting state is recoverable.  Minted before
    // the entry action so the action can cite this transition.
    obs::JournalRecord rec;
    rec.kind = obs::JournalKind::kFsmTransition;
    rec.cause = cause;
    rec.cause2 = last_record_;
    rec.sim_ns = now;
    rec.value = static_cast<double>(symbol);
    rec.aux = (static_cast<std::uint64_t>(from) << 32) |
              static_cast<std::uint64_t>(current_ & 0xffffffffu);
    obs::set_journal_label(rec, label_);
    last_record_ = journal.append(rec);
  }
  if (entry_actions_[current_]) entry_actions_[current_]();
  return current_;
}

MusicFsm make_knock_fsm(const std::vector<std::size_t>& knock_sequence) {
  if (knock_sequence.empty()) {
    throw std::invalid_argument("make_knock_fsm: empty sequence");
  }
  const std::size_t n = knock_sequence.size();
  MusicFsm fsm(n + 1, 0);
  for (std::size_t k = 0; k < n; ++k) {
    fsm.add_transition(k, knock_sequence[k], k + 1);
    // A correct *first* knock from any partial state restarts progress at
    // step 1 rather than 0 (standard knocking behaviour) — unless the
    // progress edge itself consumes that symbol.
    if (k > 0 && knock_sequence[0] != knock_sequence[k]) {
      fsm.add_transition(k, knock_sequence[0], 1);
    }
  }
  // The accepting state is sticky until reset() is called.
  fsm.set_default_transition(n, n);
  return fsm;
}

}  // namespace mdn::core
