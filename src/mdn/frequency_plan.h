// Frequency plan: who may sing at which pitch.
//
// §3: "a distance of approximately 20 Hz between frequencies is needed to
// accurately differentiate them.  Each switch in our testbed was assigned
// a unique set of frequencies, so that we can identify sounds played by
// different switches at the same time."  This class is that assignment —
// a registry mapping (device, symbol index) <-> frequency with a
// guaranteed minimum spacing, plus the reverse lookup the listening
// application needs.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace mdn::core {

using DeviceId = std::uint32_t;

struct FrequencyPlanConfig {
  double base_hz = 500.0;     ///< first assignable frequency
  double spacing_hz = 20.0;   ///< paper's empirical minimum separation
  double max_hz = 18000.0;    ///< top of the usable band
};

class FrequencyPlan {
 public:
  explicit FrequencyPlan(const FrequencyPlanConfig& config = {});

  /// Registers a device needing `symbols` distinct frequencies.
  /// Throws std::length_error when the band is exhausted.
  DeviceId add_device(std::string name, std::size_t symbols);

  std::size_t device_count() const noexcept { return devices_.size(); }
  const std::string& device_name(DeviceId id) const;

  /// Frequency of symbol `index` of device `id`.
  double frequency(DeviceId id, std::size_t index) const;
  std::span<const double> frequencies(DeviceId id) const;
  std::size_t symbol_count(DeviceId id) const;

  struct Assignment {
    DeviceId device = 0;
    std::size_t symbol = 0;
    double frequency_hz = 0.0;
  };

  /// Reverse lookup: which (device, symbol) owns a heard frequency?
  /// Matches within `tolerance_hz` (default: half the plan spacing).
  std::optional<Assignment> identify(double frequency_hz,
                                     double tolerance_hz = -1.0) const;

  /// How many more frequencies the plan can still assign.  With the
  /// default config this is on the order of the paper's "approximately
  /// 1000 unique frequencies" estimate for the human-audible band.
  std::size_t remaining_capacity() const noexcept;

  const FrequencyPlanConfig& config() const noexcept { return config_; }

  /// Serialises the plan as a small text document, so the switch-side
  /// emitters and every listening controller of a deployment can share
  /// one frequency map ("the listening application knows the frequency
  /// mappings", §3):
  ///
  ///   mdn-frequency-plan v1
  ///   band 500 20 18000
  ///   device s1 3
  ///   device s2 10
  std::string to_text() const;

  /// Parses a document produced by to_text().  Throws
  /// std::invalid_argument on any malformation.
  static FrequencyPlan from_text(const std::string& text);

 private:
  struct Device {
    std::string name;
    std::vector<double> frequencies;
  };

  FrequencyPlanConfig config_;
  std::vector<Device> devices_;
  double next_hz_;
};

}  // namespace mdn::core
