// k-superspreader / DDoS-victim detection over sound.
//
// §5 leaves this as an open problem: "By mapping destination addresses to
// frequencies, we can presumably detect k-superspreaders and hence a
// DDoS."  We implement that extension.  The monitored host's switch keys
// a tone per destination address (hash-binned); the listener counts
// *distinct* destination tones per window — a superspreader contacts more
// than k unique destinations in an interval.  The mirror image (tones
// keyed by source-address bins at a victim's switch, counting distinct
// sources) detects a DDoS victim; both reduce to the same distinct-count
// listener.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "mdn/controller.h"
#include "mdn/frequency_plan.h"
#include "mp/bridge.h"
#include "net/switch.h"

namespace mdn::core {

struct SuperspreaderConfig {
  enum class KeyBy { kDstAddress, kSrcAddress };
  KeyBy key_by = KeyBy::kDstAddress;
  std::size_t k = 20;             ///< distinct contacts to flag
  double window_s = 5.0;
  double tone_duration_s = 0.03;
  double intensity_db_spl = 70.0;
};

class SuperspreaderReporter {
 public:
  SuperspreaderReporter(net::Switch& sw, mp::MpEmitter& emitter,
                        const FrequencyPlan& plan, DeviceId device,
                        SuperspreaderConfig config);

  std::size_t bin_for_address(std::uint32_t address) const;
  double frequency_for_address(std::uint32_t address) const;

 private:
  mp::MpEmitter& emitter_;
  const FrequencyPlan& plan_;
  DeviceId device_;
  SuperspreaderConfig config_;
};

class SuperspreaderDetector {
 public:
  struct Alert {
    double time_s = 0.0;
    std::size_t distinct_bins = 0;
  };
  using AlertHandler = std::function<void(const Alert&)>;

  SuperspreaderDetector(MdnController& controller, const FrequencyPlan& plan,
                        DeviceId device, SuperspreaderConfig config);

  void on_alert(AlertHandler handler) { handler_ = std::move(handler); }

  std::size_t distinct_in_window(double now_s) const;
  const std::vector<Alert>& alerts() const noexcept { return alerts_; }

 private:
  void on_event(std::size_t bin, const ToneEvent& event);

  SuperspreaderConfig config_;
  mutable std::deque<std::pair<double, std::size_t>> window_;
  std::vector<Alert> alerts_;
  AlertHandler handler_;
  bool alerted_ = false;
};

}  // namespace mdn::core
