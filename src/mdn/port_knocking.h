// Port knocking over sound (§4, Fig 3).
//
// Setup: a switch drops TCP traffic to a protected port.  Three "knock"
// ports are each mapped to a frequency in the switch's plan set; when a
// knock packet arrives the switch emits the corresponding tone.  The MDN
// controller tracks the knock FSM; once it hears the three tones in the
// correct order it installs a flow entry opening the protected port.
#pragma once

#include <functional>
#include <vector>

#include "mdn/controller.h"
#include "mdn/frequency_plan.h"
#include "mdn/music_fsm.h"
#include "mp/bridge.h"
#include "net/switch.h"
#include "sdn/controller.h"

namespace mdn::core {

struct PortKnockingConfig {
  std::vector<std::uint16_t> knock_ports;  ///< ports in knock order
  std::uint16_t protected_port = 8080;
  /// Switch port the opened traffic is forwarded out of.
  std::size_t open_out_port = 0;
  double tone_duration_s = 0.1;
  double intensity_db_spl = 70.0;
  /// Knocks further apart than this reset the FSM (0 disables).
  net::SimTime knock_timeout = 10 * net::kSecond;
};

class PortKnockingApp {
 public:
  /// `device` must already own at least knock_ports.size() symbols in
  /// `plan`.  Installs (a) a drop rule for the protected port plus the
  /// switch-side tone hook, and (b) the controller-side FSM watches.
  PortKnockingApp(net::Switch& sw, mp::MpEmitter& emitter,
                  MdnController& controller, sdn::ControlChannel& channel,
                  sdn::DatapathId dpid, const FrequencyPlan& plan,
                  DeviceId device, PortKnockingConfig config);

  /// Called once when the port is opened.
  void on_open(std::function<void()> callback) {
    open_callback_ = std::move(callback);
  }

  bool opened() const noexcept { return opened_; }
  double opened_at_s() const noexcept { return opened_at_s_; }
  const MusicFsm& fsm() const noexcept { return fsm_; }
  std::uint64_t knocks_heard() const noexcept { return knocks_heard_; }

  /// Journal id of the kFlowMod record that opened the port — the entry
  /// point for Journal::explain() to reconstruct the knock chain (0 when
  /// the journal was disabled or the port is still closed).
  obs::CauseId flow_mod_action() const noexcept { return flow_mod_action_; }

 private:
  void install_switch_side(net::Switch& sw);
  void install_controller_side(MdnController& controller);
  void open_port();

  mp::MpEmitter& emitter_;
  sdn::ControlChannel& channel_;
  sdn::DatapathId dpid_;
  const FrequencyPlan& plan_;
  DeviceId device_;
  PortKnockingConfig config_;
  MusicFsm fsm_;
  std::function<void()> open_callback_;
  bool opened_ = false;
  double opened_at_s_ = -1.0;
  std::uint64_t knocks_heard_ = 0;
  obs::CauseId flow_mod_action_ = 0;
};

}  // namespace mdn::core
