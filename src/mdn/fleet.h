// Fleet-scale deployment harness: rooms of switches under one workload.
//
// The paper's testbed is one rack, one microphone (§3); the ROADMAP
// north-star is serving heavy traffic at fleet scale.  Fleet builds that
// scale-out inside the simulator: R machine rooms, each an independent
// AcousticChannel with its own microphone/listening controller, each
// holding S switches.  Every switch gets the full §5 acoustic stack — a
// speaker (PiSpeakerBridge, journal-scoped to its room's mic), two
// rate-policed MpEmitters, a HeavyHitterReporter keyed by flow-hash bin
// and a PortScanReporter keyed by destination port — plus the
// controller-side HeavyHitterDetector / PortScanDetector subscribed to
// the room's frequency plan.  Rooms reuse the same frequency values
// (separate air gaps), disambiguated in the obs::Scoreboard by the
// mic-scoped emissions, so a fleet of 100+ switches watches thousands of
// (mic, watch) tone cells within the paper's ~875-slot audible band.
//
// Switches are traffic sinks: packets enter through Switch::receive
// (TrafficGen targets), run the per-packet tone hooks and die on table
// miss — no downstream link events, so fleet packet load scales with the
// workload engine's batch events rather than per-hop scheduling.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "audio/channel.h"
#include "mdn/controller.h"
#include "mdn/frequency_plan.h"
#include "mdn/heavy_hitter.h"
#include "mdn/port_scan.h"
#include "mp/bridge.h"
#include "net/event_loop.h"
#include "net/switch.h"

namespace mdn::core {

struct FleetConfig {
  std::size_t rooms = 4;
  std::size_t switches_per_room = 4;
  /// Heavy-hitter flow-hash bins per switch (device symbols).
  std::size_t hh_bins = 16;
  /// Port-scan symbols per switch.  Keep distinct_threshold above the
  /// workload's background dst-port set size so only a real sweep trips.
  std::size_t ps_bins = 16;
  double sample_rate = 24000.0;  ///< per-room channel (fleet tones < 9 kHz)
  FrequencyPlanConfig band;      ///< per-room plan (identical across rooms)
  net::SimTime emitter_min_gap = 100 * net::kMillisecond;
  double speaker_distance_m = 0.5;
  HeavyHitterConfig hh;
  PortScanConfig ps;
  double detector_min_amplitude = 0.05;
};

class Fleet {
 public:
  struct SwitchUnit {
    std::unique_ptr<net::Switch> sw;
    std::unique_ptr<mp::PiSpeakerBridge> bridge;
    std::unique_ptr<mp::MpEmitter> hh_emitter;
    std::unique_ptr<mp::MpEmitter> ps_emitter;
    std::unique_ptr<HeavyHitterReporter> hh_reporter;
    std::unique_ptr<PortScanReporter> ps_reporter;
    std::unique_ptr<HeavyHitterDetector> hh_detector;
    std::unique_ptr<PortScanDetector> ps_detector;
    DeviceId hh_device = 0;
    DeviceId ps_device = 0;
    /// Packets per heavy-hitter bin, counted at the switch hook — the
    /// workload-side ground truth alert metrics compare against.
    std::vector<std::uint64_t> hh_packets;
  };

  struct Room {
    std::unique_ptr<audio::AcousticChannel> channel;
    std::unique_ptr<FrequencyPlan> plan;
    std::unique_ptr<MdnController> controller;
    std::vector<SwitchUnit> switches;
  };

  Fleet(net::EventLoop& loop, const FleetConfig& config);

  /// Starts every room's listening controller.
  void start();
  /// Schedules every controller to stop at `t` (so the loop can drain).
  void stop_at(net::SimTime t);

  std::size_t room_count() const noexcept { return rooms_.size(); }
  const Room& room(std::size_t r) const { return rooms_.at(r); }
  Room& room(std::size_t r) { return rooms_.at(r); }

  /// Flattened switch view (global index = room * switches_per_room +
  /// position): the TrafficGen target list.
  std::size_t switch_count() const noexcept;
  net::Switch& switch_at(std::size_t global);
  std::size_t room_of(std::size_t global) const noexcept;
  SwitchUnit& unit_at(std::size_t global);

  /// Total (mic, watch) tone cells under observation: every room's
  /// controller watch list, one cell per room frequency.
  std::size_t watched_tone_count() const noexcept;

  /// Union of watched frequencies across rooms (sorted, deduplicated) —
  /// the ScoreboardConfig watch list.
  std::vector<double> watch_hz() const;

  std::uint64_t hh_alert_count() const noexcept;
  std::uint64_t ps_alert_count() const noexcept;
  std::uint64_t onsets_heard() const noexcept;

  const FleetConfig& config() const noexcept { return config_; }

 private:
  net::EventLoop& loop_;
  FleetConfig config_;
  std::vector<Room> rooms_;
};

}  // namespace mdn::core
