// Time-division coordination of the acoustic medium.
//
// §3: "accurately tuning sound parameters to manage sound interference
// ... and support multiple MDN applications is an interesting research
// direction."  Frequency separation is the paper's first tool; this is
// the second: a TDM schedule that gives each application (or each
// switch) a periodic slot in which its emitter may sing.  Emissions
// requested outside the slot are deferred to the start of the next one
// (latest request wins), so bursty apps cannot trample each other even
// when their spectra would collide.
#pragma once

#include <cstdint>
#include <optional>

#include "mp/bridge.h"
#include "net/event_loop.h"

namespace mdn::core {

struct TdmSchedule {
  net::SimTime frame = 600 * net::kMillisecond;  ///< full TDM frame
  std::size_t slot_count = 2;

  net::SimTime slot_length() const noexcept {
    return frame / static_cast<net::SimTime>(slot_count);
  }
};

/// Gate in front of an MpEmitter that restricts emissions to one slot of
/// a shared TDM schedule.
class TdmEmitter {
 public:
  /// `slot` indexes into `schedule.slot_count`.
  TdmEmitter(net::EventLoop& loop, mp::MpEmitter& emitter,
             const TdmSchedule& schedule, std::size_t slot);

  /// Emits now when inside the slot; otherwise defers to the start of
  /// the next slot (a newer deferred request replaces an older one).
  /// Returns true when the tone was emitted immediately.
  bool emit(double frequency_hz, double duration_s,
            double intensity_db_spl);

  /// True when `t` falls inside this emitter's slot.
  bool in_slot(net::SimTime t) const noexcept;

  /// Start of this emitter's next slot at or after `t`.
  net::SimTime next_slot_start(net::SimTime t) const noexcept;

  std::uint64_t immediate() const noexcept { return immediate_; }
  std::uint64_t deferred() const noexcept { return deferred_; }
  std::uint64_t replaced() const noexcept { return replaced_; }

 private:
  struct Pending {
    double frequency_hz;
    double duration_s;
    double intensity_db_spl;
  };

  void flush_pending();

  net::EventLoop& loop_;
  mp::MpEmitter& emitter_;
  TdmSchedule schedule_;
  std::size_t slot_;
  std::optional<Pending> pending_;
  bool flush_scheduled_ = false;
  std::uint64_t immediate_ = 0;
  std::uint64_t deferred_ = 0;
  std::uint64_t replaced_ = 0;
};

}  // namespace mdn::core
