#include "mdn/port_knocking.h"

#include <stdexcept>

namespace mdn::core {

PortKnockingApp::PortKnockingApp(net::Switch& sw, mp::MpEmitter& emitter,
                                 MdnController& controller,
                                 sdn::ControlChannel& channel,
                                 sdn::DatapathId dpid,
                                 const FrequencyPlan& plan, DeviceId device,
                                 PortKnockingConfig config)
    : emitter_(emitter),
      channel_(channel),
      dpid_(dpid),
      plan_(plan),
      device_(device),
      config_(std::move(config)),
      fsm_(make_knock_fsm([&] {
        std::vector<std::size_t> symbols(config_.knock_ports.size());
        for (std::size_t i = 0; i < symbols.size(); ++i) symbols[i] = i;
        return symbols;
      }())) {
  if (config_.knock_ports.empty()) {
    throw std::invalid_argument("PortKnockingApp: no knock ports");
  }
  if (plan_.symbol_count(device_) < config_.knock_ports.size()) {
    throw std::invalid_argument(
        "PortKnockingApp: device has too few plan symbols");
  }
  fsm_.set_timeout(config_.knock_timeout);
  fsm_.on_enter(config_.knock_ports.size(), [this] { open_port(); });
  install_switch_side(sw);
  install_controller_side(controller);
}

void PortKnockingApp::install_switch_side(net::Switch& sw) {
  // Guard rule: drop TCP to the protected port until knocked open.
  net::FlowEntry drop;
  drop.priority = 100;
  drop.match.dst_port = config_.protected_port;
  drop.match.proto = net::IpProto::kTcp;
  drop.actions = {net::Action::drop()};
  sw.flow_table().add(drop, sw.loop().now());

  // Tone hook: a packet to knock port k keys tone k of the device's set.
  sw.add_packet_hook([this](const net::Packet& pkt, std::size_t) {
    for (std::size_t k = 0; k < config_.knock_ports.size(); ++k) {
      if (pkt.flow.dst_port == config_.knock_ports[k]) {
        emitter_.emit(plan_.frequency(device_, k), config_.tone_duration_s,
                      config_.intensity_db_spl);
        return;
      }
    }
  });
}

void PortKnockingApp::install_controller_side(MdnController& controller) {
  net::EventLoop& loop = controller.loop();
  fsm_.set_label("knock_fsm");
  for (std::size_t k = 0; k < config_.knock_ports.size(); ++k) {
    controller.watch(plan_.frequency(device_, k),
                     [this, k, &loop](const ToneEvent& ev) {
                       ++knocks_heard_;
                       if (!opened_) fsm_.feed(k, loop.now(), ev.cause);
                     });
  }
}

void PortKnockingApp::open_port() {
  if (opened_) return;
  opened_ = true;
  opened_at_s_ = net::to_seconds(channel_.switch_for(dpid_).loop().now());

  // Fig 3: "we allow traffic to be forwarded by adding a flow table entry
  // at the switch."  The open rule outranks the guard drop.
  net::FlowEntry open;
  open.priority = 200;
  open.match.dst_port = config_.protected_port;
  open.match.proto = net::IpProto::kTcp;
  open.actions = {net::Action::output(config_.open_out_port)};
  // The accepting transition just ran (we're inside its entry action),
  // so last_record() is the final link of the knock chain.
  flow_mod_action_ =
      channel_.send_flow_mod(dpid_, sdn::FlowMod::add(open),
                             fsm_.last_record());

  if (open_callback_) open_callback_();
}

}  // namespace mdn::core
