#include "mdn/melody_codec.h"

#include <stdexcept>

namespace mdn::core {

std::uint8_t melody_checksum(
    std::span<const std::uint8_t> payload) noexcept {
  std::uint8_t c = 0;
  for (std::uint8_t b : payload) c ^= b;
  return c;
}

std::vector<std::size_t> melody_frame_symbols(
    std::span<const std::uint8_t> payload) {
  std::vector<std::size_t> symbols;
  symbols.reserve(payload.size() * 2 + 4);
  symbols.push_back(kMelodyStartSymbol);
  const auto push_byte = [&](std::uint8_t b) {
    symbols.push_back(static_cast<std::size_t>(b >> 4));
    symbols.push_back(static_cast<std::size_t>(b & 0x0f));
  };
  for (std::uint8_t b : payload) push_byte(b);
  push_byte(melody_checksum(payload));
  symbols.push_back(kMelodyEndSymbol);
  return symbols;
}

MelodyEncoder::MelodyEncoder(net::EventLoop& loop, mp::MpEmitter& emitter,
                             const FrequencyPlan& plan, DeviceId device,
                             MelodyCodecConfig config)
    : loop_(loop),
      emitter_(emitter),
      plan_(plan),
      device_(device),
      config_(config) {
  if (plan.symbol_count(device) < kMelodyAlphabetSize) {
    throw std::invalid_argument(
        "MelodyEncoder: device needs an 18-symbol plan set");
  }
}

double MelodyEncoder::airtime_s(std::size_t bytes) const noexcept {
  const std::size_t symbols = bytes * 2 + 4;  // START + checksum + END
  return static_cast<double>(symbols) *
         (config_.tone_duration_s + config_.gap_s);
}

double MelodyEncoder::send(std::span<const std::uint8_t> payload) {
  if (payload.size() > config_.max_payload) {
    throw std::length_error("MelodyEncoder: payload too large");
  }
  const auto symbols = melody_frame_symbols(payload);
  const net::SimTime step =
      net::from_seconds(config_.tone_duration_s + config_.gap_s);
  for (std::size_t i = 0; i < symbols.size(); ++i) {
    const double freq = plan_.frequency(device_, symbols[i]);
    loop_.schedule_in(static_cast<net::SimTime>(i) * step, [this, freq] {
      emitter_.emit(freq, config_.tone_duration_s,
                    config_.intensity_db_spl);
    });
  }
  ++frames_sent_;
  return airtime_s(payload.size());
}

MelodyDecoder::MelodyDecoder(MdnController& controller,
                             const FrequencyPlan& plan, DeviceId device,
                             MelodyCodecConfig config)
    : config_(config), detector_(&controller.detector()) {
  if (plan.symbol_count(device) < kMelodyAlphabetSize) {
    throw std::invalid_argument(
        "MelodyDecoder: device needs an 18-symbol plan set");
  }
  alphabet_hz_.reserve(kMelodyAlphabetSize);
  for (std::size_t s = 0; s < kMelodyAlphabetSize; ++s) {
    alphabet_hz_.push_back(plan.frequency(device, s));
  }
  controller.observe_blocks(
      [this](double start_s, std::span<const double> samples) {
        on_block(start_s, samples);
      });
}

void MelodyDecoder::on_block(double start_s,
                             std::span<const double> samples) {
  const auto levels = detector_->set_levels(samples, alphabet_hz_);
  std::size_t best = 0;
  for (std::size_t s = 1; s < levels.size(); ++s) {
    if (levels[s] > levels[best]) best = s;
  }
  const bool present = levels[best] >= config_.demod_threshold;
  // Symbol boundary: carrier (re)appears, or the dominant tone changes.
  if (present && (!carrier_active_ || best != active_symbol_)) {
    on_symbol(best, start_s);
  }
  carrier_active_ = present;
  active_symbol_ = best;
}

void MelodyDecoder::on_symbol(std::size_t symbol, double time_s) {
  if (receiving_ &&
      time_s - last_symbol_time_s_ > config_.symbol_timeout_s) {
    abort_frame(/*count_malformed=*/true);
  }
  last_symbol_time_s_ = time_s;

  if (symbol == kMelodyStartSymbol) {
    // A START inside a frame abandons the partial frame and begins anew.
    if (receiving_) ++frames_malformed_;
    receiving_ = true;
    nibbles_.clear();
    return;
  }
  if (!receiving_) return;  // stray data tone outside a frame

  if (symbol == kMelodyEndSymbol) {
    finish_frame();
    return;
  }
  nibbles_.push_back(symbol);
}

void MelodyDecoder::finish_frame() {
  receiving_ = false;
  // Need an even nibble count covering at least the checksum byte.
  if (nibbles_.size() < 2 || nibbles_.size() % 2 != 0) {
    ++frames_malformed_;
    nibbles_.clear();
    return;
  }
  std::vector<std::uint8_t> bytes;
  bytes.reserve(nibbles_.size() / 2);
  for (std::size_t i = 0; i < nibbles_.size(); i += 2) {
    bytes.push_back(static_cast<std::uint8_t>((nibbles_[i] << 4) |
                                              nibbles_[i + 1]));
  }
  nibbles_.clear();
  const std::uint8_t received_checksum = bytes.back();
  bytes.pop_back();
  if (melody_checksum(bytes) != received_checksum) {
    ++frames_bad_checksum_;
    return;
  }
  ++frames_ok_;
  messages_.push_back(bytes);
  if (handler_) handler_(bytes);
}

void MelodyDecoder::abort_frame(bool count_malformed) {
  if (receiving_ && count_malformed) ++frames_malformed_;
  receiving_ = false;
  nibbles_.clear();
}

}  // namespace mdn::core
