#include "mdn/tone_detector.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <stdexcept>

namespace mdn::core {
namespace {

// Per-thread scratch for the zero-allocation detect path.  Keeping it
// thread-local (instead of as a mutable member) is what makes a shared
// const ToneDetector race-free: every thread windows, transforms and
// peak-picks in its own buffers.  Buffers only grow, so a thread in
// steady state with one detector never reallocates.
struct DetectScratch {
  dsp::SpectrumWorkspace ws;
  std::vector<double> spectrum;
  std::vector<dsp::SpectralPeak> peaks;
  // Fallback window for block lengths the detector was not configured
  // for (cold path; cached per thread so repeats stay allocation-free).
  std::vector<double> window;
  dsp::WindowKind window_kind = dsp::WindowKind::kRectangular;
};

DetectScratch& detect_scratch() {
  thread_local DetectScratch scratch;
  return scratch;
}

}  // namespace

ToneDetector::ToneDetector(const ToneDetectorConfig& config)
    : config_(config),
      plan_(dsp::PlanCache::global().real_plan(config.fft_size)),
      window_(dsp::make_window(config.window, config.fft_size)),
      fft_wall_ns_(&obs::Registry::global().histogram("dsp/fft/wall_ns")),
      goertzel_wall_ns_(
          &obs::Registry::global().histogram("dsp/goertzel/wall_ns")) {
  if (config.sample_rate <= 0.0 || config.fft_size == 0) {
    throw std::invalid_argument("ToneDetector: invalid configuration");
  }
  // Blocks longer than the FFT size are truncated at detect time and use
  // the full-size window, so only a genuinely shorter block needs its
  // own precomputed window.
  if (config.block_size > 0 && config.block_size < config.fft_size) {
    block_window_ = dsp::make_window(config.window, config.block_size);
  }
}

std::vector<DetectedTone> ToneDetector::detect(
    std::span<const double> block) const {
  std::vector<DetectedTone> tones;
  detect_into(block, tones);
  return tones;
}

void ToneDetector::detect_into(std::span<const double> block,
                               std::vector<DetectedTone>& out,
                               obs::BlockSignalStats* stats) const {
  out.clear();
  if (stats != nullptr) *stats = {};
  // The paper's Fig 2b "FFT processing time" covers this whole path:
  // window + zero-padded FFT + peak picking over one microphone block.
  obs::ScopedTimerNs timer(fft_wall_ns_);
  // Window the data (not the pad) and zero-pad up to the FFT size, so a
  // 50 ms block keeps its full spectral resolution and the pad only
  // interpolates between bins.
  const std::size_t n = std::min(block.size(), config_.fft_size);
  if (n == 0) return;
  const auto data = block.first(n);

  DetectScratch& scratch = detect_scratch();
  std::span<const double> window;
  if (n == config_.fft_size) {
    window = window_;
  } else if (n == block_window_.size()) {
    window = block_window_;
  } else {
    if (scratch.window.size() != n || scratch.window_kind != config_.window) {
      scratch.window = dsp::make_window(config_.window, n);
      scratch.window_kind = config_.window;
    }
    window = scratch.window;
  }

  if (scratch.spectrum.size() < plan_->bins()) {
    scratch.spectrum.resize(plan_->bins());
  }
  dsp::amplitude_spectrum_into(data, window, *plan_, scratch.ws,
                               scratch.spectrum);

  // Padding interpolates the spectrum, so one spectral lobe spans
  // ~pad_factor more bins; widen the peak neighbourhood accordingly.
  const std::size_t pad_factor = config_.fft_size / n;
  const std::size_t neighborhood = std::max<std::size_t>(2, 2 * pad_factor);
  dsp::find_peaks_into(
      std::span<const double>(scratch.spectrum.data(), plan_->bins()),
      config_.sample_rate, config_.fft_size, config_.min_amplitude,
      neighborhood, scratch.peaks);
  for (const auto& p : scratch.peaks) {
    out.push_back({p.frequency_hz, p.amplitude});
  }

  if (stats != nullptr) {
    double energy = 0.0;
    for (const double s : data) energy += s * s;
    stats->rms = std::sqrt(energy / static_cast<double>(n));

    const std::size_t bins = plan_->bins();
    double total = 0.0;
    for (std::size_t b = 0; b < bins; ++b) total += scratch.spectrum[b];
    // Excise every peak's +-neighbourhood from the mean; peaks arrive in
    // ascending bin order, so a high-water mark keeps overlapping
    // neighbourhoods from being subtracted twice.
    double excluded_sum = 0.0;
    std::size_t excluded = 0;
    std::size_t next_free = 0;
    double peak_amp = 0.0;
    for (const auto& p : scratch.peaks) {
      if (p.amplitude > peak_amp) peak_amp = p.amplitude;
      std::size_t lo = p.bin > neighborhood ? p.bin - neighborhood : 0;
      if (lo < next_free) lo = next_free;
      const std::size_t hi = std::min(p.bin + neighborhood + 1, bins);
      for (std::size_t b = lo; b < hi; ++b) {
        excluded_sum += scratch.spectrum[b];
      }
      if (hi > lo) excluded += hi - lo;
      if (hi > next_free) next_free = hi;
    }
    stats->peak_amplitude = peak_amp;
    if (bins > excluded) {
      stats->noise_floor =
          (total - excluded_sum) / static_cast<double>(bins - excluded);
    } else if (bins > 0) {
      stats->noise_floor = total / static_cast<double>(bins);
    }
  }
}

std::vector<double> ToneDetector::set_levels(
    std::span<const double> block, std::span<const double> watch_hz) const {
  // Per-thread bank cache: rebuilding precomputed coefficients only when
  // the watch list actually changes keeps the common fixed-watch-list
  // case allocation-free after the first block.
  thread_local std::optional<dsp::GoertzelBank> bank;
  if (!bank.has_value() || bank->sample_rate() != config_.sample_rate ||
      !std::ranges::equal(bank->frequencies_hz(), watch_hz)) {
    bank.emplace(watch_hz, config_.sample_rate);
  }
  std::vector<double> levels(watch_hz.size());
  set_levels_into(block, *bank, levels);
  return levels;
}

void ToneDetector::set_levels_into(std::span<const double> block,
                                   const dsp::GoertzelBank& bank,
                                   std::span<double> out) const {
  obs::ScopedTimerNs timer(goertzel_wall_ns_);
  bank.block_amplitudes(block, out);
}

bool ToneDetector::present(std::span<const double> block,
                           double frequency_hz) const {
  const auto tones = detect(block);
  return std::any_of(tones.begin(), tones.end(), [&](const DetectedTone& t) {
    return std::abs(t.frequency_hz - frequency_hz) <=
           config_.match_tolerance_hz;
  });
}

std::vector<ToneEvent> extract_tone_events(
    const audio::Waveform& recording, const ToneDetector& detector,
    std::span<const double> watch_hz, double hop_s) {
  if (hop_s <= 0.0) {
    throw std::invalid_argument("extract_tone_events: hop must be positive");
  }
  std::vector<ToneEvent> events;
  const auto hop = static_cast<std::size_t>(
      std::llround(hop_s * recording.sample_rate()));
  if (hop == 0 || recording.empty()) return events;

  std::vector<bool> active(watch_hz.size(), false);
  std::vector<DetectedTone> tones;
  for (std::size_t start = 0; start < recording.size(); start += hop) {
    const std::size_t len = std::min(hop, recording.size() - start);
    const auto block = recording.samples().subspan(start, len);
    detector.detect_into(block, tones);
    const double t = static_cast<double>(start) / recording.sample_rate();

    for (std::size_t i = 0; i < watch_hz.size(); ++i) {
      double best_amp = 0.0;
      bool found = false;
      for (const auto& tone : tones) {
        if (std::abs(tone.frequency_hz - watch_hz[i]) <=
            detector.config().match_tolerance_hz) {
          found = true;
          best_amp = std::max(best_amp, tone.amplitude);
        }
      }
      if (found && !active[i]) {
        events.push_back({t, watch_hz[i], best_amp});
      }
      active[i] = found;
    }
  }
  return events;
}

}  // namespace mdn::core
