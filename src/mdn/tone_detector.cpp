#include "mdn/tone_detector.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "dsp/goertzel.h"

namespace mdn::core {

ToneDetector::ToneDetector(const ToneDetectorConfig& config)
    : config_(config),
      window_(dsp::make_window(config.window, config.fft_size)),
      fft_wall_ns_(&obs::Registry::global().histogram("dsp/fft/wall_ns")),
      goertzel_wall_ns_(
          &obs::Registry::global().histogram("dsp/goertzel/wall_ns")) {
  if (config.sample_rate <= 0.0 || config.fft_size == 0) {
    throw std::invalid_argument("ToneDetector: invalid configuration");
  }
}

std::vector<DetectedTone> ToneDetector::detect(
    std::span<const double> block) const {
  // The paper's Fig 2b "FFT processing time" covers this whole path:
  // window + zero-padded FFT + peak picking over one microphone block.
  obs::ScopedTimerNs timer(fft_wall_ns_);
  // Window the data (not the pad) and zero-pad up to the FFT size, so a
  // 50 ms block keeps its full spectral resolution and the pad only
  // interpolates between bins.
  const std::size_t n = std::min(block.size(), config_.fft_size);
  if (n == 0) return {};
  const auto data = block.first(n);
  std::vector<double> spectrum;
  if (n == config_.fft_size) {
    spectrum = dsp::amplitude_spectrum(data, window_);
  } else {
    if (cached_window_.size() != n) {
      cached_window_ = dsp::make_window(config_.window, n);
    }
    spectrum =
        dsp::amplitude_spectrum_padded(data, cached_window_, config_.fft_size);
  }
  // Padding interpolates the spectrum, so one spectral lobe spans
  // ~pad_factor more bins; widen the peak neighbourhood accordingly.
  const std::size_t pad_factor = config_.fft_size / n;
  const std::size_t neighborhood = std::max<std::size_t>(2, 2 * pad_factor);
  const auto peaks =
      dsp::find_peaks(spectrum, config_.sample_rate, config_.fft_size,
                      config_.min_amplitude, neighborhood);
  std::vector<DetectedTone> tones;
  tones.reserve(peaks.size());
  for (const auto& p : peaks) tones.push_back({p.frequency_hz, p.amplitude});
  return tones;
}

std::vector<double> ToneDetector::set_levels(
    std::span<const double> block, std::span<const double> watch_hz) const {
  obs::ScopedTimerNs timer(goertzel_wall_ns_);
  std::vector<double> levels;
  levels.reserve(watch_hz.size());
  const double n = static_cast<double>(block.size());
  for (double f : watch_hz) {
    const double p = dsp::goertzel_power(block, f, config_.sample_rate);
    // |X|^2 -> amplitude of the underlying sine: A = 2*sqrt(P)/N for a
    // rectangular window.
    const double amp = n > 0.0 ? 2.0 * std::sqrt(p) / n : 0.0;
    levels.push_back(amp);
  }
  return levels;
}

bool ToneDetector::present(std::span<const double> block,
                           double frequency_hz) const {
  const auto tones = detect(block);
  return std::any_of(tones.begin(), tones.end(), [&](const DetectedTone& t) {
    return std::abs(t.frequency_hz - frequency_hz) <=
           config_.match_tolerance_hz;
  });
}

std::vector<ToneEvent> extract_tone_events(
    const audio::Waveform& recording, const ToneDetector& detector,
    std::span<const double> watch_hz, double hop_s) {
  if (hop_s <= 0.0) {
    throw std::invalid_argument("extract_tone_events: hop must be positive");
  }
  std::vector<ToneEvent> events;
  const auto hop = static_cast<std::size_t>(
      std::llround(hop_s * recording.sample_rate()));
  if (hop == 0 || recording.empty()) return events;

  std::vector<bool> active(watch_hz.size(), false);
  for (std::size_t start = 0; start < recording.size(); start += hop) {
    const std::size_t len = std::min(hop, recording.size() - start);
    const auto block = recording.samples().subspan(start, len);
    const auto tones = detector.detect(block);
    const double t = static_cast<double>(start) / recording.sample_rate();

    for (std::size_t i = 0; i < watch_hz.size(); ++i) {
      double best_amp = 0.0;
      bool found = false;
      for (const auto& tone : tones) {
        if (std::abs(tone.frequency_hz - watch_hz[i]) <=
            detector.config().match_tolerance_hz) {
          found = true;
          best_amp = std::max(best_amp, tone.amplitude);
        }
      }
      if (found && !active[i]) {
        events.push_back({t, watch_hz[i], best_amp});
      }
      active[i] = found;
    }
  }
  return events;
}

}  // namespace mdn::core
