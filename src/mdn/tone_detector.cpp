#include "mdn/tone_detector.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <optional>
#include <stdexcept>

#include "dsp/simd.h"

namespace mdn::core {
namespace {

// Per-thread scratch for the zero-allocation detect path.  Keeping it
// thread-local (instead of as a mutable member) is what makes a shared
// const ToneDetector race-free: every thread windows, transforms and
// peak-picks in its own buffers.  Buffers only grow, so a thread in
// steady state with one detector never reallocates.
struct DetectScratch {
  dsp::SpectrumWorkspace ws;
  std::vector<double> spectrum;
  std::vector<dsp::SpectralPeak> peaks;
  // Batched path: the SoA workspace plus one spectrum slice per lane.
  dsp::BatchSpectrumWorkspace batch_ws;
  std::vector<double> batch_spectrum;
  // Fallback window for block lengths the detector was not configured
  // for (cold path; cached per thread so repeats stay allocation-free).
  std::vector<double> window;
  dsp::WindowKind window_kind = dsp::WindowKind::kRectangular;
};

DetectScratch& detect_scratch() {
  thread_local DetectScratch scratch;
  return scratch;
}

}  // namespace

ToneDetector::ToneDetector(const ToneDetectorConfig& config)
    : config_(config),
      plan_(dsp::PlanCache::global().real_plan(config.fft_size)),
      window_(dsp::make_window(config.window, config.fft_size)),
      fft_wall_ns_(&obs::Registry::global().histogram("dsp/fft/wall_ns")),
      goertzel_wall_ns_(
          &obs::Registry::global().histogram("dsp/goertzel/wall_ns")) {
  if (config.sample_rate <= 0.0 || config.fft_size == 0) {
    throw std::invalid_argument("ToneDetector: invalid configuration");
  }
  // Blocks longer than the FFT size are truncated at detect time and use
  // the full-size window, so only a genuinely shorter block needs its
  // own precomputed window.
  if (config.block_size > 0 && config.block_size < config.fft_size) {
    block_window_ = dsp::make_window(config.window, config.block_size);
  }
  // First registry consumer with kernel access: publish which SIMD path
  // (avx2/sse2/scalar) will produce every number this detector reports.
  dsp::simd::export_dispatch_metrics();
}

std::vector<DetectedTone> ToneDetector::detect(
    std::span<const double> block) const {
  std::vector<DetectedTone> tones;
  detect_into(block, tones);
  return tones;
}

void ToneDetector::detect_into(std::span<const double> block,
                               std::vector<DetectedTone>& out,
                               obs::BlockSignalStats* stats) const {
  // The paper's Fig 2b "FFT processing time" covers this whole path:
  // window + zero-padded FFT + peak picking over one microphone block.
  obs::ScopedTimerNs timer(fft_wall_ns_);
  detect_impl(block, out, stats);
}

std::span<const double> ToneDetector::window_for(
    std::size_t n, std::vector<double>& cache,
    dsp::WindowKind& cache_kind) const {
  if (n == config_.fft_size) return window_;
  if (n == block_window_.size()) return block_window_;
  if (cache.size() != n || cache_kind != config_.window) {
    cache = dsp::make_window(config_.window, n);
    cache_kind = config_.window;
  }
  return cache;
}

void ToneDetector::finish_block(std::span<const double> data,
                                std::span<const double> spectrum,
                                std::vector<dsp::SpectralPeak>& peaks,
                                std::vector<DetectedTone>& out,
                                obs::BlockSignalStats* stats) const {
  // Padding interpolates the spectrum, so one spectral lobe spans
  // ~pad_factor more bins; widen the peak neighbourhood accordingly.
  const std::size_t n = data.size();
  const std::size_t pad_factor = config_.fft_size / n;
  const std::size_t neighborhood = std::max<std::size_t>(2, 2 * pad_factor);
  dsp::find_peaks_into(spectrum, config_.sample_rate, config_.fft_size,
                       config_.min_amplitude, neighborhood, peaks);
  for (const auto& p : peaks) {
    out.push_back({p.frequency_hz, p.amplitude});
  }

  if (stats != nullptr) {
    double energy = 0.0;
    for (const double s : data) energy += s * s;
    stats->rms = std::sqrt(energy / static_cast<double>(n));

    const std::size_t bins = spectrum.size();
    double total = 0.0;
    for (std::size_t b = 0; b < bins; ++b) total += spectrum[b];
    // Excise every peak's +-neighbourhood from the mean; peaks arrive in
    // ascending bin order, so a high-water mark keeps overlapping
    // neighbourhoods from being subtracted twice.
    double excluded_sum = 0.0;
    std::size_t excluded = 0;
    std::size_t next_free = 0;
    double peak_amp = 0.0;
    for (const auto& p : peaks) {
      if (p.amplitude > peak_amp) peak_amp = p.amplitude;
      std::size_t lo = p.bin > neighborhood ? p.bin - neighborhood : 0;
      if (lo < next_free) lo = next_free;
      const std::size_t hi = std::min(p.bin + neighborhood + 1, bins);
      for (std::size_t b = lo; b < hi; ++b) {
        excluded_sum += spectrum[b];
      }
      if (hi > lo) excluded += hi - lo;
      if (hi > next_free) next_free = hi;
    }
    stats->peak_amplitude = peak_amp;
    if (bins > excluded) {
      stats->noise_floor =
          (total - excluded_sum) / static_cast<double>(bins - excluded);
    } else if (bins > 0) {
      stats->noise_floor = total / static_cast<double>(bins);
    }
  }
}

void ToneDetector::detect_impl(std::span<const double> block,
                               std::vector<DetectedTone>& out,
                               obs::BlockSignalStats* stats) const {
  out.clear();
  if (stats != nullptr) *stats = {};
  // Window the data (not the pad) and zero-pad up to the FFT size, so a
  // 50 ms block keeps its full spectral resolution and the pad only
  // interpolates between bins.
  const std::size_t n = std::min(block.size(), config_.fft_size);
  if (n == 0) return;
  const auto data = block.first(n);

  DetectScratch& scratch = detect_scratch();
  const std::span<const double> window =
      window_for(n, scratch.window, scratch.window_kind);

  if (scratch.spectrum.size() < plan_->bins()) {
    scratch.spectrum.resize(plan_->bins());
  }
  dsp::amplitude_spectrum_into(data, window, *plan_, scratch.ws,
                               scratch.spectrum);
  finish_block(data,
               std::span<const double>(scratch.spectrum.data(), plan_->bins()),
               scratch.peaks, out, stats);
}

void ToneDetector::detect_batch_impl(
    std::span<const std::span<const double>> blocks,
    std::span<std::vector<DetectedTone>* const> outs,
    std::span<obs::BlockSignalStats* const> stats) const {
  const std::size_t count = blocks.size();
  DetectScratch& scratch = detect_scratch();
  const std::size_t bins = plan_->bins();
  std::size_t i = 0;
  while (i < count) {
    obs::BlockSignalStats* first_stats = stats.empty() ? nullptr : stats[i];
    const std::size_t len = blocks[i].size();
    const std::size_t n = std::min(len, config_.fft_size);
    // Fuse the run of following equal-length blocks, up to the batch
    // width; anything else (odd lengths, unbatchable plan) takes the
    // single-block path and the loop continues behind it.
    std::size_t run = 1;
    if (n > 0 && plan_->supports_batch()) {
      while (run < kMaxDetectBatch && i + run < count &&
             blocks[i + run].size() == len) {
        ++run;
      }
    }
    if (run == 1) {
      detect_impl(blocks[i], *outs[i], first_stats);
      ++i;
      continue;
    }

    const std::span<const double> window =
        window_for(n, scratch.window, scratch.window_kind);
    if (scratch.batch_spectrum.size() < bins * kMaxDetectBatch) {
      scratch.batch_spectrum.resize(bins * kMaxDetectBatch);
    }
    std::array<std::span<const double>, kMaxDetectBatch> sigs;
    std::array<std::span<double>, kMaxDetectBatch> specs;
    for (std::size_t l = 0; l < run; ++l) {
      sigs[l] = blocks[i + l].first(n);
      specs[l] = std::span<double>(scratch.batch_spectrum.data() + l * bins,
                                   bins);
    }
    dsp::amplitude_spectrum_batch_into(
        std::span<const std::span<const double>>(sigs.data(), run), window,
        *plan_, scratch.batch_ws,
        std::span<const std::span<double>>(specs.data(), run));
    for (std::size_t l = 0; l < run; ++l) {
      obs::BlockSignalStats* block_stats =
          stats.empty() ? nullptr : stats[i + l];
      outs[i + l]->clear();
      if (block_stats != nullptr) *block_stats = {};
      finish_block(sigs[l], specs[l], scratch.peaks, *outs[i + l],
                   block_stats);
    }
    i += run;
  }
}

void ToneDetector::detect_batch_into(
    std::span<const std::span<const double>> blocks,
    std::span<std::vector<DetectedTone>* const> outs,
    std::span<obs::BlockSignalStats* const> stats) const {
  if (outs.size() != blocks.size() ||
      (!stats.empty() && stats.size() != blocks.size())) {
    throw std::invalid_argument(
        "ToneDetector::detect_batch_into: span size mismatch");
  }
  if (blocks.empty()) return;
  // One wall-time sample per block, from the batch total split evenly:
  // histogram counts stay one-per-block while the hot path pays for two
  // clock reads per batch instead of two per block.
  const std::int64_t start = obs::wall_now_ns();
  detect_batch_impl(blocks, outs, stats);
  const std::int64_t per_block = (obs::wall_now_ns() - start) /
                                 static_cast<std::int64_t>(blocks.size());
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    fft_wall_ns_->record(static_cast<double>(per_block));
  }
}

void ToneDetector::warm_up() const {
  // Cold path by design: run one silent single-block and one silent
  // batched detection so plan tables, the SIMD dispatch table and this
  // thread's grow-once scratch all materialise here — the
  // multi-millisecond first-execute costs never land in the steady-state
  // histograms (nothing is recorded on this path).
  const std::size_t len =
      config_.block_size > 0 ? config_.block_size : config_.fft_size;
  std::vector<double> silence(len, 0.0);
  std::vector<DetectedTone> tones;
  obs::BlockSignalStats block_stats;
  detect_impl(silence, tones, &block_stats);
  if (plan_->supports_batch()) {
    std::array<std::span<const double>, kMaxDetectBatch> blocks;
    std::array<std::vector<DetectedTone>, kMaxDetectBatch> storage;
    std::array<std::vector<DetectedTone>*, kMaxDetectBatch> outs;
    for (std::size_t l = 0; l < kMaxDetectBatch; ++l) {
      blocks[l] = silence;
      outs[l] = &storage[l];
    }
    detect_batch_impl(
        std::span<const std::span<const double>>(blocks.data(), blocks.size()),
        std::span<std::vector<DetectedTone>* const>(outs.data(), outs.size()),
        {});
  }
  dsp::simd::export_dispatch_metrics();
}

std::vector<double> ToneDetector::set_levels(
    std::span<const double> block, std::span<const double> watch_hz) const {
  // Per-thread bank cache: rebuilding precomputed coefficients only when
  // the watch list actually changes keeps the common fixed-watch-list
  // case allocation-free after the first block.
  thread_local std::optional<dsp::GoertzelBank> bank;
  if (!bank.has_value() || bank->sample_rate() != config_.sample_rate ||
      !std::ranges::equal(bank->frequencies_hz(), watch_hz)) {
    bank.emplace(watch_hz, config_.sample_rate);
  }
  std::vector<double> levels(watch_hz.size());
  set_levels_into(block, *bank, levels);
  return levels;
}

void ToneDetector::set_levels_into(std::span<const double> block,
                                   const dsp::GoertzelBank& bank,
                                   std::span<double> out) const {
  obs::ScopedTimerNs timer(goertzel_wall_ns_);
  bank.block_amplitudes(block, out);
}

bool ToneDetector::present(std::span<const double> block,
                           double frequency_hz) const {
  const auto tones = detect(block);
  return std::any_of(tones.begin(), tones.end(), [&](const DetectedTone& t) {
    return std::abs(t.frequency_hz - frequency_hz) <=
           config_.match_tolerance_hz;
  });
}

std::vector<ToneEvent> extract_tone_events(
    const audio::Waveform& recording, const ToneDetector& detector,
    std::span<const double> watch_hz, double hop_s) {
  if (hop_s <= 0.0) {
    throw std::invalid_argument("extract_tone_events: hop must be positive");
  }
  std::vector<ToneEvent> events;
  const auto hop = static_cast<std::size_t>(
      std::llround(hop_s * recording.sample_rate()));
  if (hop == 0 || recording.empty()) return events;

  std::vector<bool> active(watch_hz.size(), false);
  std::vector<DetectedTone> tones;
  for (std::size_t start = 0; start < recording.size(); start += hop) {
    const std::size_t len = std::min(hop, recording.size() - start);
    const auto block = recording.samples().subspan(start, len);
    detector.detect_into(block, tones);
    const double t = static_cast<double>(start) / recording.sample_rate();

    for (std::size_t i = 0; i < watch_hz.size(); ++i) {
      double best_amp = 0.0;
      bool found = false;
      for (const auto& tone : tones) {
        if (std::abs(tone.frequency_hz - watch_hz[i]) <=
            detector.config().match_tolerance_hz) {
          found = true;
          best_amp = std::max(best_amp, tone.amplitude);
        }
      }
      if (found && !active[i]) {
        events.push_back({t, watch_hz[i], best_amp});
      }
      active[i] = found;
    }
  }
  return events;
}

}  // namespace mdn::core
