#include "mdn/fan_failure.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "dsp/fft.h"
#include "dsp/spectrum.h"

namespace mdn::core {

FanFailureDetector::FanFailureDetector(double sample_rate,
                                       const FanDetectorConfig& config)
    : sample_rate_(sample_rate),
      config_(config),
      window_(dsp::make_window(config.window, config.fft_size)) {
  if (sample_rate <= 0.0) {
    throw std::invalid_argument("FanFailureDetector: sample rate");
  }
  if (config.band_hi_hz <= config.band_lo_hz) {
    throw std::invalid_argument("FanFailureDetector: band");
  }
}

std::vector<double> FanFailureDetector::band_spectrum(
    std::span<const double> segment) const {
  std::vector<double> chunk(config_.fft_size, 0.0);
  const std::size_t n = std::min(segment.size(), config_.fft_size);
  std::copy_n(segment.begin(), n, chunk.begin());
  const auto full = dsp::amplitude_spectrum(chunk, window_);

  const std::size_t lo =
      dsp::frequency_bin(config_.band_lo_hz, config_.fft_size, sample_rate_);
  const std::size_t hi =
      dsp::frequency_bin(config_.band_hi_hz, config_.fft_size, sample_rate_);
  std::vector<double> band;
  band.reserve(hi - lo + 1);
  for (std::size_t k = lo; k <= hi && k < full.size(); ++k) {
    band.push_back(full[k]);
  }
  return band;
}

void FanFailureDetector::calibrate(const audio::Waveform& baseline) {
  const std::size_t seg = config_.fft_size;
  const std::size_t count = baseline.size() / seg;
  if (count < 4) {
    throw std::invalid_argument(
        "FanFailureDetector::calibrate: need >= 4 FFT-size segments");
  }

  // Pass 1: mean spectrum.
  std::vector<std::vector<double>> spectra;
  spectra.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    spectra.push_back(
        band_spectrum(baseline.samples().subspan(i * seg, seg)));
  }
  reference_.assign(spectra.front().size(), 0.0);
  for (const auto& s : spectra) {
    for (std::size_t k = 0; k < reference_.size(); ++k) {
      reference_[k] += s[k];
    }
  }
  for (auto& v : reference_) v /= static_cast<double>(count);

  // Pass 2: spread of segment-vs-reference differences.
  double sum = 0.0, sum2 = 0.0;
  for (const auto& s : spectra) {
    const double d = dsp::spectral_difference(s, reference_);
    sum += d;
    sum2 += d * d;
  }
  mean_diff_ = sum / static_cast<double>(count);
  const double var =
      sum2 / static_cast<double>(count) - mean_diff_ * mean_diff_;
  std_diff_ = std::sqrt(std::max(0.0, var));
  calibrated_ = true;
}

double FanFailureDetector::difference(const audio::Waveform& sample) const {
  if (!calibrated_) {
    throw std::logic_error("FanFailureDetector: not calibrated");
  }
  return dsp::spectral_difference(band_spectrum(sample.samples()),
                                  reference_);
}

std::vector<double> FanFailureDetector::difference_series(
    const audio::Waveform& recording) const {
  std::vector<double> out;
  const std::size_t seg = config_.fft_size;
  for (std::size_t start = 0; start + seg <= recording.size();
       start += seg) {
    out.push_back(dsp::spectral_difference(
        band_spectrum(recording.samples().subspan(start, seg)),
        reference_));
  }
  return out;
}

double FanFailureDetector::threshold() const {
  if (!calibrated_) {
    throw std::logic_error("FanFailureDetector: not calibrated");
  }
  return mean_diff_ + config_.sigma_factor * std_diff_;
}

bool FanFailureDetector::is_failed(const audio::Waveform& sample) const {
  return difference(sample) > threshold();
}

double FanFailureDetector::baseline_mean() const {
  if (!calibrated_) {
    throw std::logic_error("FanFailureDetector: not calibrated");
  }
  return mean_diff_;
}

double FanFailureDetector::baseline_std() const {
  if (!calibrated_) {
    throw std::logic_error("FanFailureDetector: not calibrated");
  }
  return std_diff_;
}

}  // namespace mdn::core
