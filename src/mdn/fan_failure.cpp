#include "mdn/fan_failure.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "dsp/fft.h"

namespace mdn::core {

FanFailureDetector::FanFailureDetector(double sample_rate,
                                       const FanDetectorConfig& config)
    : sample_rate_(sample_rate),
      config_(config),
      plan_(dsp::PlanCache::global().real_plan(config.fft_size)),
      window_(dsp::make_window(config.window, config.fft_size)) {
  if (sample_rate <= 0.0) {
    throw std::invalid_argument("FanFailureDetector: sample rate");
  }
  if (config.band_hi_hz <= config.band_lo_hz) {
    throw std::invalid_argument("FanFailureDetector: band");
  }
  band_lo_bin_ =
      dsp::frequency_bin(config_.band_lo_hz, config_.fft_size, sample_rate_);
  band_hi_bin_ =
      dsp::frequency_bin(config_.band_hi_hz, config_.fft_size, sample_rate_);
}

void FanFailureDetector::band_spectrum_into(std::span<const double> segment,
                                            BandScratch& scratch,
                                            std::vector<double>& band) const {
  // Zero-pad into an FFT-sized chunk and apply the full-size window, so
  // short segments are normalised by the same coherent gain as full
  // ones.
  scratch.chunk.assign(config_.fft_size, 0.0);
  const std::size_t n = std::min(segment.size(), config_.fft_size);
  std::copy_n(segment.begin(), n, scratch.chunk.begin());
  if (scratch.spectrum.size() < plan_->bins()) {
    scratch.spectrum.resize(plan_->bins());
  }
  dsp::amplitude_spectrum_into(scratch.chunk, window_, *plan_, scratch.ws,
                               scratch.spectrum);

  band.clear();
  for (std::size_t k = band_lo_bin_;
       k <= band_hi_bin_ && k < plan_->bins(); ++k) {
    band.push_back(scratch.spectrum[k]);
  }
}

void FanFailureDetector::calibrate(const audio::Waveform& baseline) {
  const std::size_t seg = config_.fft_size;
  const std::size_t count = baseline.size() / seg;
  if (count < 4) {
    throw std::invalid_argument(
        "FanFailureDetector::calibrate: need >= 4 FFT-size segments");
  }

  // Pass 1: mean spectrum (one scratch set batched across segments).
  BandScratch scratch;
  std::vector<std::vector<double>> spectra;
  spectra.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    std::vector<double> band;
    band_spectrum_into(baseline.samples().subspan(i * seg, seg), scratch,
                       band);
    spectra.push_back(std::move(band));
  }
  reference_.assign(spectra.front().size(), 0.0);
  for (const auto& s : spectra) {
    for (std::size_t k = 0; k < reference_.size(); ++k) {
      reference_[k] += s[k];
    }
  }
  for (auto& v : reference_) v /= static_cast<double>(count);

  // Pass 2: spread of segment-vs-reference differences.
  double sum = 0.0, sum2 = 0.0;
  for (const auto& s : spectra) {
    const double d = dsp::spectral_difference(s, reference_);
    sum += d;
    sum2 += d * d;
  }
  mean_diff_ = sum / static_cast<double>(count);
  const double var =
      sum2 / static_cast<double>(count) - mean_diff_ * mean_diff_;
  std_diff_ = std::sqrt(std::max(0.0, var));
  calibrated_ = true;
}

double FanFailureDetector::difference(const audio::Waveform& sample) const {
  if (!calibrated_) {
    throw std::logic_error("FanFailureDetector: not calibrated");
  }
  BandScratch scratch;
  std::vector<double> band;
  band_spectrum_into(sample.samples(), scratch, band);
  return dsp::spectral_difference(band, reference_);
}

std::vector<double> FanFailureDetector::difference_series(
    const audio::Waveform& recording) const {
  std::vector<double> out;
  const std::size_t seg = config_.fft_size;
  BandScratch scratch;
  std::vector<double> band;
  for (std::size_t start = 0; start + seg <= recording.size();
       start += seg) {
    band_spectrum_into(recording.samples().subspan(start, seg), scratch,
                       band);
    out.push_back(dsp::spectral_difference(band, reference_));
  }
  return out;
}

double FanFailureDetector::threshold() const {
  if (!calibrated_) {
    throw std::logic_error("FanFailureDetector: not calibrated");
  }
  return mean_diff_ + config_.sigma_factor * std_diff_;
}

bool FanFailureDetector::is_failed(const audio::Waveform& sample) const {
  return difference(sample) > threshold();
}

double FanFailureDetector::baseline_mean() const {
  if (!calibrated_) {
    throw std::logic_error("FanFailureDetector: not calibrated");
  }
  return mean_diff_;
}

double FanFailureDetector::baseline_std() const {
  if (!calibrated_) {
    throw std::logic_error("FanFailureDetector: not calibrated");
  }
  return std_diff_;
}

}  // namespace mdn::core
