#include "mdn/fleet.h"

#include <algorithm>
#include <string>

namespace mdn::core {

Fleet::Fleet(net::EventLoop& loop, const FleetConfig& config)
    : loop_(loop), config_(config) {
  rooms_.resize(config_.rooms);
  for (std::size_t r = 0; r < config_.rooms; ++r) {
    Room& room = rooms_[r];
    room.channel =
        std::make_unique<audio::AcousticChannel>(config_.sample_rate);
    room.plan = std::make_unique<FrequencyPlan>(config_.band);

    MdnController::Config ccfg;
    ccfg.detector.sample_rate = config_.sample_rate;
    ccfg.detector.min_amplitude = config_.detector_min_amplitude;
    // Inline mode: sink_mic doubles as the journal mic id, giving each
    // room's detections (and, via set_journal_mic below, its emissions)
    // a distinct scoreboard row.
    ccfg.sink_mic = static_cast<std::uint32_t>(r);
    room.controller =
        std::make_unique<MdnController>(loop_, *room.channel, ccfg);

    room.switches.reserve(config_.switches_per_room);
    for (std::size_t s = 0; s < config_.switches_per_room; ++s) {
      const std::string name =
          "r" + std::to_string(r) + "s" + std::to_string(s);
      SwitchUnit unit;
      unit.sw = std::make_unique<net::Switch>(loop_, name);
      unit.hh_device = room.plan->add_device(name + "-hh", config_.hh_bins);
      unit.ps_device = room.plan->add_device(name + "-ps", config_.ps_bins);
      const auto spk = room.channel->add_source(name + "-speaker",
                                                config_.speaker_distance_m);
      unit.bridge = std::make_unique<mp::PiSpeakerBridge>(
          loop_, *room.channel, spk);
      unit.bridge->set_journal_mic(static_cast<std::uint32_t>(r));
      unit.hh_emitter = std::make_unique<mp::MpEmitter>(
          loop_, *unit.bridge, config_.emitter_min_gap);
      unit.ps_emitter = std::make_unique<mp::MpEmitter>(
          loop_, *unit.bridge, config_.emitter_min_gap);
      unit.hh_reporter = std::make_unique<HeavyHitterReporter>(
          *unit.sw, *unit.hh_emitter, *room.plan, unit.hh_device,
          config_.hh);
      unit.ps_reporter = std::make_unique<PortScanReporter>(
          *unit.sw, *unit.ps_emitter, *room.plan, unit.ps_device,
          config_.ps);
      unit.hh_detector = std::make_unique<HeavyHitterDetector>(
          *room.controller, *room.plan, unit.hh_device, config_.hh);
      unit.ps_detector = std::make_unique<PortScanDetector>(
          *room.controller, *room.plan, unit.ps_device, config_.ps);
      unit.hh_packets.assign(config_.hh_bins, 0);
      room.switches.push_back(std::move(unit));
      // Workload-side ground truth: count packets per heavy-hitter bin
      // at the same hook level the reporter keys tones from.  Registered
      // after the unit reaches its final slot so the captured addresses
      // survive (vector is reserved; elements never move again).
      SwitchUnit& placed = room.switches.back();
      auto* reporter = placed.hh_reporter.get();
      auto* counts = &placed.hh_packets;
      placed.sw->add_packet_hook(
          [reporter, counts](const net::Packet& pkt, std::size_t) {
            ++(*counts)[reporter->bin_for(pkt.flow)];
          });
    }
  }
}

void Fleet::start() {
  for (Room& room : rooms_) room.controller->start();
}

void Fleet::stop_at(net::SimTime t) {
  loop_.schedule_at(t, [this]() {
    for (Room& room : rooms_) room.controller->stop();
  });
}

std::size_t Fleet::switch_count() const noexcept {
  return rooms_.size() * config_.switches_per_room;
}

net::Switch& Fleet::switch_at(std::size_t global) {
  return *unit_at(global).sw;
}

std::size_t Fleet::room_of(std::size_t global) const noexcept {
  return global / config_.switches_per_room;
}

Fleet::SwitchUnit& Fleet::unit_at(std::size_t global) {
  return rooms_.at(global / config_.switches_per_room)
      .switches.at(global % config_.switches_per_room);
}

std::size_t Fleet::watched_tone_count() const noexcept {
  return rooms_.size() * config_.switches_per_room *
         (config_.hh_bins + config_.ps_bins);
}

std::vector<double> Fleet::watch_hz() const {
  std::vector<double> all;
  for (const Room& room : rooms_) {
    for (const SwitchUnit& unit : room.switches) {
      const auto hh = room.plan->frequencies(unit.hh_device);
      const auto ps = room.plan->frequencies(unit.ps_device);
      all.insert(all.end(), hh.begin(), hh.end());
      all.insert(all.end(), ps.begin(), ps.end());
    }
  }
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  return all;
}

std::uint64_t Fleet::hh_alert_count() const noexcept {
  std::uint64_t n = 0;
  for (const Room& room : rooms_) {
    for (const SwitchUnit& unit : room.switches) {
      n += unit.hh_detector->alerts().size();
    }
  }
  return n;
}

std::uint64_t Fleet::ps_alert_count() const noexcept {
  std::uint64_t n = 0;
  for (const Room& room : rooms_) {
    for (const SwitchUnit& unit : room.switches) {
      n += unit.ps_detector->alerts().size();
    }
  }
  return n;
}

std::uint64_t Fleet::onsets_heard() const noexcept {
  std::uint64_t n = 0;
  for (const Room& room : rooms_) {
    n += room.controller->event_log().size();
  }
  return n;
}

}  // namespace mdn::core
