#include "mdn/port_scan.h"

#include <unordered_set>

namespace mdn::core {

PortScanReporter::PortScanReporter(net::Switch& sw, mp::MpEmitter& emitter,
                                   const FrequencyPlan& plan,
                                   DeviceId device, PortScanConfig config)
    : emitter_(emitter), plan_(plan), device_(device), config_(config) {
  sw.add_packet_hook([this](const net::Packet& pkt, std::size_t) {
    emitter_.emit(frequency_for_port(pkt.flow.dst_port),
                  config_.tone_duration_s, config_.intensity_db_spl);
  });
}

std::size_t PortScanReporter::symbol_for_port(std::uint16_t dst_port) const {
  const std::size_t n = plan_.symbol_count(device_);
  const auto offset = static_cast<std::size_t>(
      dst_port >= config_.first_port ? dst_port - config_.first_port
                                     : dst_port);
  return offset % n;
}

double PortScanReporter::frequency_for_port(std::uint16_t dst_port) const {
  return plan_.frequency(device_, symbol_for_port(dst_port));
}

PortScanDetector::PortScanDetector(MdnController& controller,
                                   const FrequencyPlan& plan,
                                   DeviceId device, PortScanConfig config)
    : config_(config), symbol_count_(plan.symbol_count(device)) {
  for (std::size_t s = 0; s < symbol_count_; ++s) {
    controller.watch(plan.frequency(device, s),
                     [this, s](const ToneEvent& ev) { on_event(s, ev); });
  }
}

std::size_t PortScanDetector::distinct_in_window(double now_s) const {
  while (!window_.empty() && now_s - window_.front().first > config_.window_s) {
    window_.pop_front();
  }
  std::unordered_set<std::size_t> distinct;
  for (const auto& [t, sym] : window_) distinct.insert(sym);
  return distinct.size();
}

void PortScanDetector::on_event(std::size_t symbol, const ToneEvent& event) {
  ++events_;
  window_.emplace_back(event.time_s, symbol);
  const std::size_t distinct = distinct_in_window(event.time_s);
  if (distinct >= config_.distinct_threshold) {
    if (!alerted_) {
      alerted_ = true;
      Alert alert{event.time_s, distinct};
      alerts_.push_back(alert);
      if (handler_) handler_(alert);
    }
  } else {
    alerted_ = false;
  }
}

}  // namespace mdn::core
