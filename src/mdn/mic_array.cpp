#include "mdn/mic_array.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "obs/journal.h"

namespace mdn::core {

void MicArray::attach(MdnController& controller,
                      std::span<const double> watch_hz,
                      std::string mic_name) {
  ++mics_;
  auto name = std::make_shared<std::string>(std::move(mic_name));
  controller.watch_all(watch_hz, [this, name](const ToneEvent& ev) {
    ingest_event(*name, ev);
  });
}

void MicArray::ingest_event(const std::string& mic, const ToneEvent& event) {
  // Search recent merged events for the same tone.  Events arrive in
  // near time order, so scanning backwards terminates quickly.
  for (auto it = merged_.rbegin(); it != merged_.rend(); ++it) {
    if (event.time_s - it->time_s > dedup_window_s_ * 4.0) break;
    if (it->frequency_hz == event.frequency_hz &&
        std::abs(event.time_s - it->time_s) <= dedup_window_s_) {
      ++it->heard_by;
      it->amplitude = std::max(it->amplitude, event.amplitude);
      it->time_s = std::min(it->time_s, event.time_s);
      return;
    }
  }
  MergedEvent merged;
  merged.time_s = event.time_s;
  merged.frequency_hz = event.frequency_hz;
  merged.amplitude = event.amplitude;
  merged.first_mic = mic;
  merged.heard_by = 1;
  merged.cause = event.cause;
  obs::Journal& journal = obs::Journal::global();
  if (journal.enabled()) {
    // Fusion link: the merged event cites the first hearing's detection
    // record; later hearings fold into the same merged event silently.
    obs::JournalRecord rec;
    rec.kind = obs::JournalKind::kMergedEvent;
    rec.cause = event.cause;
    rec.sim_ns = net::from_seconds(event.time_s);
    rec.frequency_hz = event.frequency_hz;
    rec.value = event.amplitude;
    obs::set_journal_label(rec, mic);
    merged.cause = journal.append(rec);
  }
  merged_.push_back(merged);
  if (handler_) handler_(merged_.back());
}

std::size_t MicArray::events_heard_by_at_least(std::size_t k) const {
  return static_cast<std::size_t>(
      std::count_if(merged_.begin(), merged_.end(),
                    [k](const MergedEvent& e) { return e.heard_by >= k; }));
}

}  // namespace mdn::core
