#include "mdn/traffic_engineering.h"

#include <stdexcept>

namespace mdn::core {

QueueToneReporter::QueueToneReporter(net::Switch& sw, mp::MpEmitter& emitter,
                                     const FrequencyPlan& plan,
                                     DeviceId device, QueueToneConfig config)
    : switch_(sw),
      emitter_(emitter),
      plan_(plan),
      device_(device),
      config_(config) {
  if (plan.symbol_count(device) < 3) {
    throw std::invalid_argument(
        "QueueToneReporter: device needs 3 plan symbols");
  }
  if (config_.low_threshold >= config_.high_threshold) {
    throw std::invalid_argument("QueueToneReporter: thresholds");
  }
}

std::size_t QueueToneReporter::band_for(std::size_t backlog) const noexcept {
  if (backlog < config_.low_threshold) return 0;
  if (backlog <= config_.high_threshold) return 1;
  return 2;
}

double QueueToneReporter::frequency_for_band(std::size_t band) const {
  return plan_.frequency(device_, band);
}

void QueueToneReporter::start() {
  if (running_) return;
  running_ = true;
  switch_.loop().schedule_periodic(config_.period, config_.period,
                                   [this] { return tick(); });
}

bool QueueToneReporter::tick() {
  if (!running_) return false;
  const std::size_t backlog = switch_.port(config_.port_index).backlog();
  const std::size_t band = band_for(backlog);
  samples_.push_back(
      {net::to_seconds(switch_.loop().now()), backlog, band});
  emitter_.emit(frequency_for_band(band), config_.tone_duration_s,
                config_.intensity_db_spl);
  return running_;
}

LoadBalancerApp::LoadBalancerApp(MdnController& controller,
                                 sdn::ControlChannel& channel,
                                 sdn::DatapathId entry_dpid,
                                 const FrequencyPlan& plan, DeviceId device,
                                 LoadBalancerConfig config)
    : channel_(channel), dpid_(entry_dpid), config_(std::move(config)) {
  if (config_.split_ports.size() < 2) {
    throw std::invalid_argument("LoadBalancerApp: need >= 2 split ports");
  }
  // Band 2 == congested tone.
  controller.watch(plan.frequency(device, 2), [this](const ToneEvent& ev) {
    if (!balanced_) {
      balanced_at_s_ = ev.time_s;
      balance(ev.cause);
    }
  });
}

void LoadBalancerApp::balance(obs::CauseId cause) {
  balanced_ = true;
  net::FlowEntry entry;
  entry.priority = config_.flow_mod_priority;
  entry.match = net::Match::any();
  entry.actions = {net::Action::group(config_.split_ports)};
  flow_mod_action_ =
      channel_.send_flow_mod(dpid_, sdn::FlowMod::add(entry), cause);
  if (callback_) callback_();
}

QueueMonitorApp::QueueMonitorApp(MdnController& controller,
                                 const FrequencyPlan& plan,
                                 DeviceId device) {
  for (std::size_t band = 0; band < 3; ++band) {
    const double f = plan.frequency(device, band);
    controller.watch(f, [this, band, f](const ToneEvent& ev) {
      events_.push_back({ev.time_s, band, f, ev.cause});
      current_band_ = band;
    });
  }
}

}  // namespace mdn::core
