// Deployment helpers: the per-switch audio kit as one object.
//
// Every Music-Defined deployment repeats the same wiring for each
// singing device: allocate a frequency set in the plan, register a
// speaker on the channel, stand up the Pi bridge, front it with a
// rate-policed emitter.  SpeakerRig bundles that so applications and
// examples construct one object per switch.
#pragma once

#include <memory>
#include <string>

#include "audio/channel.h"
#include "mdn/frequency_plan.h"
#include "mp/bridge.h"
#include "net/event_loop.h"

namespace mdn::core {

struct SpeakerRigConfig {
  std::size_t symbols = 3;            ///< plan slots for this device
  audio::Position position{0.5, 0.0}; ///< speaker location (metres)
  net::SimTime emitter_min_gap = 0;   ///< rate police (0 = unpoliced)
  net::SimTime processing_delay = 2 * net::kMillisecond;  ///< Pi latency
};

class SpeakerRig {
 public:
  /// Allocates `config.symbols` slots under `name` in `plan` and wires
  /// speaker -> bridge -> emitter on `channel`.
  SpeakerRig(net::EventLoop& loop, audio::AcousticChannel& channel,
             FrequencyPlan& plan, std::string name,
             const SpeakerRigConfig& config = {});

  DeviceId device() const noexcept { return device_; }
  audio::SourceId speaker() const noexcept { return speaker_; }
  mp::PiSpeakerBridge& bridge() noexcept { return *bridge_; }
  mp::MpEmitter& emitter() noexcept { return *emitter_; }

  /// Frequency of this device's symbol `index`.
  double frequency(std::size_t index) const;

  /// Convenience: sing symbol `index` now (through the rate police).
  bool sing(std::size_t index, double duration_s = 0.05,
            double intensity_db_spl = 75.0);

 private:
  const FrequencyPlan* plan_;
  DeviceId device_;
  audio::SourceId speaker_;
  std::unique_ptr<mp::PiSpeakerBridge> bridge_;
  std::unique_ptr<mp::MpEmitter> emitter_;
};

}  // namespace mdn::core
