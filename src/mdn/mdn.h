// Umbrella header for the Music-Defined Networking core library.
//
// Quickstart:
//   1. Build an audio::AcousticChannel and a net::Network.
//   2. Allocate per-switch frequency sets in a core::FrequencyPlan.
//   3. Give each switch an mp::PiSpeakerBridge + mp::MpEmitter.
//   4. Create a core::MdnController listening on the channel.
//   5. Attach applications (PortKnockingApp, HeavyHitterDetector, ...).
//   6. Run the event loop.
#pragma once

#include "mdn/block_sink.h"
#include "mdn/controller.h"
#include "mdn/ddos.h"
#include "mdn/deployment.h"
#include "mdn/fan_anomaly.h"
#include "mdn/fan_failure.h"
#include "mdn/fleet.h"
#include "mdn/frequency_plan.h"
#include "mdn/heavy_hitter.h"
#include "mdn/melody_codec.h"
#include "mdn/mic_array.h"
#include "mdn/music_fsm.h"
#include "mdn/port_knocking.h"
#include "mdn/relay.h"
#include "mdn/port_scan.h"
#include "mdn/tdm.h"
#include "mdn/tone_detector.h"
#include "mdn/traffic_engineering.h"
