#include "mdn/relay.h"

#include <stdexcept>

namespace mdn::core {

ToneRelay::ToneRelay(MdnController& listener, const FrequencyPlan& plan,
                     DeviceId upstream_device, mp::MpEmitter& emitter,
                     DeviceId relay_device, ToneRelayConfig config)
    : plan_(plan),
      relay_device_(relay_device),
      emitter_(emitter),
      config_(config) {
  if (plan.symbol_count(relay_device) < plan.symbol_count(upstream_device)) {
    throw std::invalid_argument(
        "ToneRelay: relay device has fewer symbols than upstream");
  }
  for (std::size_t s = 0; s < plan.symbol_count(upstream_device); ++s) {
    listener.watch(plan.frequency(upstream_device, s),
                   [this, s](const ToneEvent&) {
                     ++relayed_;
                     emitter_.emit(plan_.frequency(relay_device_, s),
                                   config_.tone_duration_s,
                                   config_.intensity_db_spl);
                   });
  }
}

}  // namespace mdn::core
