// Music-defined traffic engineering (§6, Fig 5).
//
// QueueToneReporter is the switch side of both §6 use cases: every 300 ms
// (the paper samples queue length with `tc` at that period) it reads a
// port's backlog and plays one of three tones —
//     backlog < low   -> tone 0   (paper: 500 Hz)
//     low..high       -> tone 1   (600 Hz)
//     backlog > high  -> tone 2   (700 Hz, "congested")
//
// LoadBalancerApp is the controller side of the load-balancing use case:
// on first hearing a switch's congested tone it sends a Flow-MOD that
// splits traffic across the two rhombus paths.  QueueMonitorApp merely
// records band transitions (the congestion-monitoring use case).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "mdn/controller.h"
#include "mdn/frequency_plan.h"
#include "mp/bridge.h"
#include "net/switch.h"
#include "sdn/controller.h"

namespace mdn::core {

struct QueueToneConfig {
  std::size_t port_index = 0;        ///< which egress queue to watch
  std::size_t low_threshold = 25;    ///< packets (paper values)
  std::size_t high_threshold = 75;
  net::SimTime period = 300 * net::kMillisecond;
  double tone_duration_s = 0.05;
  double intensity_db_spl = 70.0;
};

class QueueToneReporter {
 public:
  /// `device` must own >= 3 symbols in `plan` (one per band).
  QueueToneReporter(net::Switch& sw, mp::MpEmitter& emitter,
                    const FrequencyPlan& plan, DeviceId device,
                    QueueToneConfig config);

  void start();
  void stop() noexcept { running_ = false; }

  /// Band for a backlog value: 0 below low, 1 between, 2 above high.
  std::size_t band_for(std::size_t backlog) const noexcept;
  double frequency_for_band(std::size_t band) const;

  /// (time, backlog) samples — the raw series behind Fig 5a/5c.
  struct Sample {
    double time_s;
    std::size_t backlog;
    std::size_t band;
  };
  const std::vector<Sample>& samples() const noexcept { return samples_; }

 private:
  bool tick();

  net::Switch& switch_;
  mp::MpEmitter& emitter_;
  const FrequencyPlan& plan_;
  DeviceId device_;
  QueueToneConfig config_;
  std::vector<Sample> samples_;
  bool running_ = false;
};

struct LoadBalancerConfig {
  /// Ports of the entry switch across which traffic is split on alert.
  std::vector<std::size_t> split_ports;
  int flow_mod_priority = 50;
};

class LoadBalancerApp {
 public:
  /// Listens for band-2 (congested) tones of `device` and, on the first
  /// one, installs a select-group Flow-MOD splitting traffic across
  /// `config.split_ports` on the entry switch.
  LoadBalancerApp(MdnController& controller, sdn::ControlChannel& channel,
                  sdn::DatapathId entry_dpid, const FrequencyPlan& plan,
                  DeviceId device, LoadBalancerConfig config);

  bool balanced() const noexcept { return balanced_; }
  double balanced_at_s() const noexcept { return balanced_at_s_; }
  void on_balance(std::function<void()> cb) { callback_ = std::move(cb); }

  /// Journal id of the split-group kFlowMod (0 = journal disabled or
  /// not yet balanced).
  obs::CauseId flow_mod_action() const noexcept { return flow_mod_action_; }

 private:
  void balance(obs::CauseId cause);

  sdn::ControlChannel& channel_;
  sdn::DatapathId dpid_;
  LoadBalancerConfig config_;
  bool balanced_ = false;
  double balanced_at_s_ = -1.0;
  obs::CauseId flow_mod_action_ = 0;
  std::function<void()> callback_;
};

/// Congestion-monitoring listener (§6 second use case): records every
/// queue-band tone it hears, giving the controller a live view of the
/// queue-length range without any in-band message.
class QueueMonitorApp {
 public:
  struct BandEvent {
    double time_s;
    std::size_t band;
    double frequency_hz;
    std::uint64_t cause = 0;  ///< detection journal id (0 = disabled)
  };

  QueueMonitorApp(MdnController& controller, const FrequencyPlan& plan,
                  DeviceId device);

  const std::vector<BandEvent>& events() const noexcept { return events_; }
  /// Most recent band heard (or SIZE_MAX before any tone).
  std::size_t current_band() const noexcept { return current_band_; }

 private:
  std::vector<BandEvent> events_;
  std::size_t current_band_ = static_cast<std::size_t>(-1);
};

}  // namespace mdn::core
