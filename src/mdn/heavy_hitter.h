// Music-defined heavy-hitter detection (§5, Fig 4a-b).
//
// Switch side: "we hash a flow tuple defined by source port, destination
// port, source IP, destination IP and protocol type and map it to a given
// frequency" — every forwarded packet keys the tone of its flow's bin
// (rate-policed so a fast flow produces a steady tone train rather than
// an unbounded pile-up).
//
// Controller side: a sliding window counts tone onsets per bin; a bin
// whose count exceeds the threshold is reported as a heavy hitter.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "mdn/controller.h"
#include "mdn/frequency_plan.h"
#include "mp/bridge.h"
#include "net/switch.h"

namespace mdn::core {

struct HeavyHitterConfig {
  double tone_duration_s = 0.03;  ///< paper's shortest feasible tone
  double intensity_db_spl = 70.0;
  double window_s = 2.0;          ///< sliding count window
  std::size_t threshold = 15;     ///< onsets per window to flag
};

/// Switch-side tone keying.
class HeavyHitterReporter {
 public:
  HeavyHitterReporter(net::Switch& sw, mp::MpEmitter& emitter,
                      const FrequencyPlan& plan, DeviceId device,
                      HeavyHitterConfig config);

  /// The plan frequency assigned to `flow`'s hash bin.
  double frequency_for(const net::FlowKey& flow) const;
  std::size_t bin_for(const net::FlowKey& flow) const;
  std::size_t bin_count() const noexcept {
    return plan_.symbol_count(device_);
  }

 private:
  mp::MpEmitter& emitter_;
  const FrequencyPlan& plan_;
  DeviceId device_;
  HeavyHitterConfig config_;
};

/// Controller-side sliding-window counter.
class HeavyHitterDetector {
 public:
  struct Alert {
    std::size_t bin = 0;
    double frequency_hz = 0.0;
    double time_s = 0.0;
    std::size_t count_in_window = 0;
    /// Journal id of the alert's kAppAction record, chained from the
    /// tone detection that crossed the threshold (0 = journal disabled).
    std::uint64_t cause = 0;
  };
  using AlertHandler = std::function<void(const Alert&)>;

  /// Subscribes to `controller` for every frequency of `device`.
  HeavyHitterDetector(MdnController& controller, const FrequencyPlan& plan,
                      DeviceId device, HeavyHitterConfig config);

  void on_alert(AlertHandler handler) { handler_ = std::move(handler); }

  /// Onsets currently inside the window for `bin`.
  std::size_t window_count(std::size_t bin) const;

  /// All alerts raised so far (one per bin per window crossing).
  const std::vector<Alert>& alerts() const noexcept { return alerts_; }

  /// Total onsets heard per bin since start.
  const std::vector<std::uint64_t>& totals() const noexcept {
    return totals_;
  }

 private:
  void on_event(std::size_t bin, const ToneEvent& event);
  void expire(std::size_t bin, double now_s) const;

  const FrequencyPlan& plan_;
  DeviceId device_;
  HeavyHitterConfig config_;
  mutable std::vector<std::deque<double>> window_;  // onset times per bin
  std::vector<std::uint64_t> totals_;
  std::vector<bool> alerted_;  // currently above threshold
  std::vector<Alert> alerts_;
  AlertHandler handler_;
};

}  // namespace mdn::core
