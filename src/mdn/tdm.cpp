#include "mdn/tdm.h"

#include <stdexcept>

namespace mdn::core {

TdmEmitter::TdmEmitter(net::EventLoop& loop, mp::MpEmitter& emitter,
                       const TdmSchedule& schedule, std::size_t slot)
    : loop_(loop), emitter_(emitter), schedule_(schedule), slot_(slot) {
  if (schedule.slot_count == 0 || slot >= schedule.slot_count ||
      schedule.frame <= 0) {
    throw std::invalid_argument("TdmEmitter: invalid schedule");
  }
}

bool TdmEmitter::in_slot(net::SimTime t) const noexcept {
  const net::SimTime pos = t % schedule_.frame;
  const net::SimTime len = schedule_.slot_length();
  return pos >= static_cast<net::SimTime>(slot_) * len &&
         pos < static_cast<net::SimTime>(slot_ + 1) * len;
}

net::SimTime TdmEmitter::next_slot_start(net::SimTime t) const noexcept {
  const net::SimTime len = schedule_.slot_length();
  const net::SimTime slot_off = static_cast<net::SimTime>(slot_) * len;
  const net::SimTime frame_start = (t / schedule_.frame) * schedule_.frame;
  net::SimTime start = frame_start + slot_off;
  if (start < t) start += schedule_.frame;
  return start;
}

bool TdmEmitter::emit(double frequency_hz, double duration_s,
                      double intensity_db_spl) {
  const net::SimTime now = loop_.now();
  if (in_slot(now)) {
    emitter_.emit(frequency_hz, duration_s, intensity_db_spl);
    ++immediate_;
    return true;
  }
  if (pending_) ++replaced_;
  pending_ = Pending{frequency_hz, duration_s, intensity_db_spl};
  ++deferred_;
  if (!flush_scheduled_) {
    flush_scheduled_ = true;
    loop_.schedule_at(next_slot_start(now), [this] { flush_pending(); });
  }
  return false;
}

void TdmEmitter::flush_pending() {
  flush_scheduled_ = false;
  if (!pending_) return;
  const Pending p = *pending_;
  pending_.reset();
  emitter_.emit(p.frequency_hz, p.duration_s, p.intensity_db_spl);
}

}  // namespace mdn::core
