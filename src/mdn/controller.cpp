#include "mdn/controller.h"

#include <cmath>

namespace mdn::core {

MdnController::MdnController(net::EventLoop& loop,
                             audio::AcousticChannel& channel,
                             const Config& config)
    : loop_(loop),
      channel_(channel),
      config_(config),
      detector_(config.detector),
      microphone_(config.microphone, channel.sample_rate()),
      recording_(channel.sample_rate()) {}

void MdnController::watch(double frequency_hz, Handler handler) {
  watches_.push_back({frequency_hz, std::move(handler), false});
}

void MdnController::watch_all(std::span<const double> watch_hz,
                              Handler handler) {
  for (double f : watch_hz) watches_.push_back({f, handler, false});
}

void MdnController::observe_blocks(BlockObserver observer) {
  block_observers_.push_back(std::move(observer));
}

void MdnController::start() {
  if (running_) return;
  running_ = true;
  const net::SimTime hop = net::from_seconds(config_.hop_s);
  loop_.schedule_periodic(hop, hop, [this] { return tick(); });
}

bool MdnController::tick() {
  if (!running_) return false;
  const double now_s = net::to_seconds(loop_.now());
  const double start_s = now_s - config_.hop_s;
  const audio::Waveform block =
      microphone_.record(channel_, start_s, config_.hop_s);
  ++blocks_;
  if (config_.keep_recording) recording_.append(block);

  for (const auto& observer : block_observers_) {
    observer(start_s, block.samples());
  }

  const auto tones = detector_.detect(block.samples());
  for (auto& w : watches_) {
    double best_amp = 0.0;
    bool found = false;
    for (const auto& t : tones) {
      if (std::abs(t.frequency_hz - w.frequency_hz) <=
          detector_.config().match_tolerance_hz) {
        found = true;
        best_amp = std::max(best_amp, t.amplitude);
      }
    }
    if (found && !w.active) {
      const ToneEvent event{start_s, w.frequency_hz, best_amp};
      log_.push_back(event);
      if (w.handler) w.handler(event);
    }
    w.active = found;
  }
  return running_;
}

}  // namespace mdn::core
