#include "mdn/controller.h"

#include <cmath>

#include "obs/journal.h"

namespace mdn::core {
namespace {

// Tell the detector the exact block length the periodic tick will hand
// it, so its short-block analysis window is precomputed at construction
// ("plan cold, execute hot") rather than synthesised on first detect.
ToneDetectorConfig with_block_size(ToneDetectorConfig detector, double hop_s,
                                   double sample_rate) {
  detector.block_size = static_cast<std::size_t>(
      std::llround(hop_s * sample_rate));
  return detector;
}

}  // namespace

MdnController::MdnController(net::EventLoop& loop,
                             audio::AcousticChannel& channel,
                             const Config& config)
    : loop_(loop),
      channel_(channel),
      config_(config),
      detector_(with_block_size(config.detector, config.hop_s,
                                channel.sample_rate())),
      microphone_(config.microphone, channel.sample_rate()),
      recording_(channel.sample_rate()) {
  auto& registry = obs::Registry::global();
  blocks_counter_ = &registry.counter("mdn/controller/blocks");
  onsets_counter_ = &registry.counter("mdn/controller/onsets");
  record_wall_ns_ = &registry.histogram("mdn/controller/record_wall_ns");
  detect_wall_ns_ = &registry.histogram("mdn/controller/detect_wall_ns");
  match_wall_ns_ = &registry.histogram("mdn/controller/match_wall_ns");
  trace_track_ = loop_.tracer().track("mdn/controller");
}

void MdnController::watch(double frequency_hz, Handler handler) {
  watches_.push_back({frequency_hz, std::move(handler), false});
}

void MdnController::watch_all(std::span<const double> watch_hz,
                              Handler handler) {
  for (double f : watch_hz) watches_.push_back({f, handler, false});
}

void MdnController::observe_blocks(BlockObserver observer) {
  block_observers_.push_back(std::move(observer));
}

void MdnController::start() {
  if (running_) return;
  running_ = true;
  const net::SimTime hop = net::from_seconds(config_.hop_s);
  loop_.schedule_periodic(hop, hop, [this] { return tick(); });
}

bool MdnController::tick() {
  if (!running_) return false;
  obs::Tracer& tracer = loop_.tracer();
  const net::SimTime sim_now = loop_.now();
  const double now_s = net::to_seconds(sim_now);
  const double start_s = now_s - config_.hop_s;

  // Stage 1: record the last hop off the acoustic channel.
  audio::Waveform block(channel_.sample_rate());
  {
    obs::TraceSpan span(&tracer, "controller/record", trace_track_, sim_now);
    obs::ScopedTimerNs timer(record_wall_ns_);
    block = microphone_.record(channel_, start_s, config_.hop_s);
  }
  ++blocks_;
  blocks_counter_->inc();
  if (config_.keep_recording) recording_.append(block);

  for (const auto& observer : block_observers_) {
    observer(start_s, block.samples());
  }

  // Provenance: recover the ground-truth tags of emissions overlapping
  // this block (journal on only; a single predicted-false branch when
  // off).  The tags ride to the runtime with the block, or resolve
  // inline detections below.
  obs::Journal& journal = obs::Journal::global();
  std::size_t ntags = 0;
  if (journal.enabled()) {
    ntags = channel_.collect_tags(start_s, now_s,
                                  std::span<audio::EmissionTag>(tag_scratch_));
  }

  // Runtime mode: hand the block to the streaming runtime and return —
  // detection happens on its sharded workers and onsets come back
  // through the ordered merge, not through this controller's watches.
  if (config_.sink != nullptr) {
    obs::TraceSpan span(&tracer, "controller/submit", trace_track_, sim_now);
    config_.sink->submit_block(
        config_.sink_mic, start_s, block.samples(),
        std::span<const audio::EmissionTag>(tag_scratch_.data(), ntags));
    return running_;
  }

  // Ingest record: the capture boundary of the latency waterfall.  One
  // per tagged block, stamped at block END (the earliest sim time the
  // samples exist to be analysed), citing the first overlapping
  // emission; detections below cite it via cause2 so explain() shows
  // emitted -> ingested -> detected.
  obs::CauseId ingest_id = 0;
  if (journal.enabled() && ntags > 0) {
    obs::JournalRecord rec;
    rec.kind = obs::JournalKind::kBlockIngested;
    rec.sim_ns = sim_now;
    rec.cause = tag_scratch_[0].cause;
    rec.mic = config_.sink_mic;
    rec.aux = blocks_;
    obs::set_journal_label(rec, "ingest");
    ingest_id = journal.append(rec);
  }

  // Stage 2: windowed FFT + peak picking (also feeds "dsp/fft/wall_ns").
  // The tones vector is a reused member, so steady-state ticks detect
  // with zero heap allocation.
  std::vector<DetectedTone>& tones = tones_scratch_;
  obs::BlockSignalStats stats;
  obs::MicSignalEstimator* est = nullptr;
  {
    obs::TraceSpan span(&tracer, "controller/detect", trace_track_, sim_now);
    obs::ScopedTimerNs timer(detect_wall_ns_);
    detector_.detect_into(block.samples(), tones,
                          config_.health != nullptr ? &stats : nullptr);
  }
  if (config_.health != nullptr) {
    est = &config_.health->estimator(config_.sink_mic);
    est->begin_block(now_s, stats);
  }

  // Stage 3: match detected peaks against the watch list.
  {
    obs::TraceSpan span(&tracer, "controller/match", trace_track_, sim_now);
    obs::ScopedTimerNs timer(match_wall_ns_);
    for (std::size_t wi = 0; wi < watches_.size(); ++wi) {
      Watch& w = watches_[wi];
      double best_amp = 0.0;
      bool found = false;
      for (const auto& t : tones) {
        if (std::abs(t.frequency_hz - w.frequency_hz) <=
            detector_.config().match_tolerance_hz) {
          found = true;
          best_amp = std::max(best_amp, t.amplitude);
        }
      }
      // Ground-truth evidence for the health estimator: the overlapping
      // emission tag (upgraded to the detection record below on onset).
      obs::CauseId watch_evidence = 0;
      if (est != nullptr && found) {
        for (std::size_t t = 0; t < ntags; ++t) {
          if (std::abs(tag_scratch_[t].frequency_hz - w.frequency_hz) <=
              detector_.config().match_tolerance_hz) {
            watch_evidence = tag_scratch_[t].cause;
            break;
          }
        }
      }
      const bool onset = found && !w.active;
      if (onset) {
        ToneEvent event{start_s, w.frequency_hz, best_amp};
        if (journal.enabled()) {
          // Detection record: cite the emitted tone whose frequency this
          // watch matched, when one overlapped the block (else 0 — a
          // false positive the scoreboard will count).
          obs::JournalRecord rec;
          rec.kind = obs::JournalKind::kToneDetected;
          rec.sim_ns = sim_now;
          rec.frequency_hz = w.frequency_hz;
          rec.value = best_amp;
          rec.mic = config_.sink_mic;
          rec.watch = static_cast<std::int32_t>(wi);
          rec.cause2 = ingest_id;
          for (std::size_t t = 0; t < ntags; ++t) {
            if (std::abs(tag_scratch_[t].frequency_hz - w.frequency_hz) <=
                detector_.config().match_tolerance_hz) {
              rec.cause = tag_scratch_[t].cause;
              break;
            }
          }
          obs::set_journal_label(rec, "onset");
          event.cause = journal.append(rec);
          if (event.cause != 0) watch_evidence = event.cause;
        }
        log_.push_back(event);
        onsets_counter_->inc();
        tracer.instant("onset", trace_track_, sim_now);
        if (w.handler) w.handler(event);
      }
      if (est != nullptr) {
        est->observe_watch(wi, found, onset, best_amp, watch_evidence);
      }
      w.active = found;
    }
  }
  if (est != nullptr) {
    est->end_block();
    // Inline mode is single-threaded: the tick is also the owner-thread
    // evaluation step, so alerts surface at the block that tripped them.
    config_.health->poll();
  }
  return running_;
}

}  // namespace mdn::core
