// BlockSink: the seam between the listening controller and an external
// detection runtime.
//
// An MdnController normally detects inline — record a hop, FFT, match,
// dispatch — on the simulation thread.  At scale (many microphones, the
// §8 mic-array direction) detection moves into the parallel streaming
// runtime (rt::StreamRuntime): the controller becomes a pure producer
// that records blocks and hands them to a sink, and onset events come
// back through the runtime's deterministic ordered merge.  The interface
// lives here, in the core layer, so mdn_core does not depend on mdn_rt;
// the runtime implements it one layer up.
#pragma once

#include <cstdint>
#include <span>

#include "audio/emission_tag.h"

namespace mdn::core {

class BlockSink {
 public:
  virtual ~BlockSink() = default;

  /// Hands one recorded microphone block to the runtime.  `mic` is the
  /// id the sink assigned at registration; `start_s` is the block start
  /// time in channel seconds.  The samples are copied before returning
  /// (the caller may reuse its buffer).  `tags` are the provenance tags
  /// of emissions overlapping the block (journal ground truth; may be
  /// empty, copied before returning).  Returns false when the sink
  /// dropped the block under backpressure.
  virtual bool submit_block(std::uint32_t mic, double start_s,
                            std::span<const double> samples,
                            std::span<const audio::EmissionTag> tags) = 0;

  /// Untagged convenience (journal disabled or no provenance source).
  bool submit_block(std::uint32_t mic, double start_s,
                    std::span<const double> samples) {
    return submit_block(mic, start_s, samples, {});
  }
};

}  // namespace mdn::core
