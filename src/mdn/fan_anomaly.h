// Multi-class fan anomaly recognition — the §7 open question
// "How many distinct server anomalies can we recognize?", answered.
//
// FanFailureDetector is binary (running vs not).  This classifier keeps
// one reference spectrum per labelled machine state (healthy, stopped,
// bearing wear, obstructed intake, ...) and assigns a sample to the
// nearest reference by total in-band amplitude difference — the same
// statistic as Fig 7, generalised from a threshold to a nearest-
// neighbour decision.  The margin (runner-up distance minus best
// distance) is reported as a confidence signal.
#pragma once

#include <string>
#include <vector>

#include "audio/waveform.h"
#include "mdn/fan_failure.h"

namespace mdn::core {

class FanAnomalyClassifier {
 public:
  explicit FanAnomalyClassifier(double sample_rate,
                                const FanDetectorConfig& config = {});

  /// Learns the mean in-band spectrum of `recording` under `label`.
  /// Requires at least 2 FFT-size segments.  Re-adding a label replaces
  /// its reference.
  void add_reference(const std::string& label,
                     const audio::Waveform& recording);

  std::size_t reference_count() const noexcept { return refs_.size(); }
  std::vector<std::string> labels() const;

  struct Result {
    std::string label;      ///< nearest reference
    double distance = 0.0;  ///< L1 spectral distance to it
    double margin = 0.0;    ///< runner-up distance minus best distance
  };

  /// Classifies one sample (>= 1 FFT-size segment).  Throws
  /// std::logic_error with fewer than 2 references.
  Result classify(const audio::Waveform& sample) const;

  /// Majority vote of per-segment classifications over a longer
  /// recording — steadier than a single segment in heavy room noise.
  Result classify_majority(const audio::Waveform& recording) const;

 private:
  std::vector<double> band_spectrum(std::span<const double> segment) const;
  std::vector<double> mean_spectrum(const audio::Waveform& recording,
                                    std::size_t min_segments) const;

  double sample_rate_;
  FanDetectorConfig config_;
  std::vector<double> window_;
  struct Reference {
    std::string label;
    std::vector<double> spectrum;
  };
  std::vector<Reference> refs_;
};

}  // namespace mdn::core
