// Passive server-fan failure detection (§7, Figs 6-7).
//
// "To identify failures, we find the total amplitude of each frequency in
// recorded sounds with a server fan both on and off; we obtain such
// amplitudes by computing the FFT of each given sound sample. ... The
// difference in amplitude for certain frequencies is considerably larger
// when comparing two audio signals of the fan on and off than when
// comparing two samples of a functioning fan."
//
// FanFailureDetector implements exactly that: it calibrates a reference
// amplitude spectrum (and the natural on-vs-on variability) from a
// baseline recording of the healthy fan, then classifies new samples by
// their total spectral amplitude difference from the reference.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "audio/waveform.h"
#include "dsp/fft_plan.h"
#include "dsp/spectrum.h"
#include "dsp/window.h"

namespace mdn::core {

struct FanDetectorConfig {
  std::size_t fft_size = 8192;
  dsp::WindowKind window = dsp::WindowKind::kHann;
  /// Spectral band compared (fan tones live well below 4 kHz).
  double band_lo_hz = 50.0;
  double band_hi_hz = 4000.0;
  /// Alert when diff > mean_on_on + sigma_factor * std_on_on.
  double sigma_factor = 6.0;
};

class FanFailureDetector {
 public:
  explicit FanFailureDetector(double sample_rate,
                              const FanDetectorConfig& config = {});

  /// Learns the healthy-fan reference from `baseline` (recording with the
  /// fan running, any background).  The recording is cut into FFT-sized
  /// segments: the mean spectrum becomes the reference and the spread of
  /// segment-vs-reference differences becomes the alert threshold.
  /// Requires at least 4 segments.
  void calibrate(const audio::Waveform& baseline);
  bool calibrated() const noexcept { return calibrated_; }

  /// Total in-band amplitude difference between `sample` and the
  /// reference spectrum — the Fig 7 statistic.
  double difference(const audio::Waveform& sample) const;

  /// Scans a recording segment by segment and returns each segment's
  /// difference (a Fig 7 curve).
  std::vector<double> difference_series(const audio::Waveform& recording) const;

  /// True when `sample` is inconsistent with a running fan.
  bool is_failed(const audio::Waveform& sample) const;

  double threshold() const;
  double baseline_mean() const;
  double baseline_std() const;

 private:
  /// Reused buffers for segment analysis: one set serves a whole
  /// calibrate() or difference_series() batch, so the per-segment cost
  /// is copy + window + planned FFT with no allocation once warm.
  struct BandScratch {
    dsp::SpectrumWorkspace ws;
    std::vector<double> chunk;     // segment zero-padded to fft_size
    std::vector<double> spectrum;  // full single-sided spectrum
  };

  /// Writes the in-band amplitude spectrum of `segment` into `band`.
  void band_spectrum_into(std::span<const double> segment,
                          BandScratch& scratch,
                          std::vector<double>& band) const;

  double sample_rate_;
  FanDetectorConfig config_;
  std::shared_ptr<const dsp::RealFftPlan> plan_;
  std::vector<double> window_;
  std::size_t band_lo_bin_ = 0;
  std::size_t band_hi_bin_ = 0;  // inclusive
  std::vector<double> reference_;  // mean in-band amplitude spectrum
  double mean_diff_ = 0.0;         // on-vs-on mean difference
  double std_diff_ = 0.0;          // on-vs-on std deviation
  bool calibrated_ = false;
};

}  // namespace mdn::core
