// Melody codec: arbitrary (small) management payloads over tones.
//
// §4 observes that sounds "played in the right sequence" can implement
// any management-plane finite state machine; the related work (§2) pegs
// air-acoustic data transfer at roughly 20 bytes in up to six seconds.
// This module makes both concrete: a frame is
//
//   START  n1 n2 ... n2k  c1 c2  END
//
// where each payload byte is sent as two 4-bit symbols (n-hi, n-lo),
// c1 c2 carry an XOR checksum byte, and START/END are two extra alphabet
// symbols.  Each symbol is one tone from the device's 18-symbol plan
// set, separated by silence so the listener sees one onset per symbol.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "mdn/controller.h"
#include "mdn/frequency_plan.h"
#include "mp/bridge.h"
#include "net/event_loop.h"

namespace mdn::core {

struct MelodyCodecConfig {
  double tone_duration_s = 0.06;
  /// Silence between symbols.  Must exceed the listener's hop (50 ms) by
  /// more than one hop, so that *some* listening block is fully silent
  /// between two consecutive tones of the same frequency regardless of
  /// how symbol boundaries fall on the hop grid — otherwise repeated
  /// nibbles merge into a single onset.
  double gap_s = 0.12;
  double intensity_db_spl = 75.0;
  std::size_t max_payload = 64;  ///< bytes per frame
  /// A silence longer than this mid-frame aborts the frame (seconds).
  double symbol_timeout_s = 1.0;
  /// FSK demodulation floor: the argmax alphabet tone in a listening
  /// block must reach this linear amplitude to count as a symbol.
  double demod_threshold = 0.03;
};

/// Alphabet layout inside a device's plan set.
inline constexpr std::size_t kMelodyDataSymbols = 16;   // nibbles 0..15
inline constexpr std::size_t kMelodyStartSymbol = 16;
inline constexpr std::size_t kMelodyEndSymbol = 17;
inline constexpr std::size_t kMelodyAlphabetSize = 18;

/// XOR checksum over the payload bytes (0 for an empty payload).
std::uint8_t melody_checksum(std::span<const std::uint8_t> payload) noexcept;

/// Pure framing: payload -> symbol sequence (START ... END).
std::vector<std::size_t> melody_frame_symbols(
    std::span<const std::uint8_t> payload);

class MelodyEncoder {
 public:
  /// `device` must own kMelodyAlphabetSize symbols in `plan`.
  MelodyEncoder(net::EventLoop& loop, mp::MpEmitter& emitter,
                const FrequencyPlan& plan, DeviceId device,
                MelodyCodecConfig config = {});

  /// Schedules the frame's tones starting now; returns the frame's total
  /// airtime in seconds.  Throws std::length_error when the payload
  /// exceeds max_payload.
  double send(std::span<const std::uint8_t> payload);

  /// Airtime a payload of `bytes` bytes would occupy.
  double airtime_s(std::size_t bytes) const noexcept;

  std::uint64_t frames_sent() const noexcept { return frames_sent_; }

 private:
  net::EventLoop& loop_;
  mp::MpEmitter& emitter_;
  const FrequencyPlan& plan_;
  DeviceId device_;
  MelodyCodecConfig config_;
  std::uint64_t frames_sent_ = 0;
};

/// FSK-style receiver: rather than open-set peak onsets, every listening
/// block is demodulated against the 18-tone alphabet (Goertzel argmax).
/// With the plan's 20 Hz spacing and the controller's 50 ms blocks the
/// alphabet tones are mutually orthogonal (adjacent slots land on the
/// rectangular window's spectral nulls), which makes this far more
/// robust to partial-block tone tails than peak picking.
class MelodyDecoder {
 public:
  using MessageHandler = std::function<void(const std::vector<std::uint8_t>&)>;

  MelodyDecoder(MdnController& controller, const FrequencyPlan& plan,
                DeviceId device, MelodyCodecConfig config = {});

  void on_message(MessageHandler handler) {
    handler_ = std::move(handler);
  }

  const std::vector<std::vector<std::uint8_t>>& messages() const noexcept {
    return messages_;
  }
  std::uint64_t frames_ok() const noexcept { return frames_ok_; }
  std::uint64_t frames_bad_checksum() const noexcept {
    return frames_bad_checksum_;
  }
  std::uint64_t frames_malformed() const noexcept {
    return frames_malformed_;
  }

 private:
  void on_block(double start_s, std::span<const double> samples);
  void on_symbol(std::size_t symbol, double time_s);
  void finish_frame();
  void abort_frame(bool count_malformed);

  MelodyCodecConfig config_;
  const ToneDetector* detector_ = nullptr;
  std::vector<double> alphabet_hz_;
  MessageHandler handler_;
  bool receiving_ = false;
  bool carrier_active_ = false;     // demod state: tone in last block
  std::size_t active_symbol_ = 0;
  double last_symbol_time_s_ = 0.0;
  std::vector<std::size_t> nibbles_;
  std::vector<std::vector<std::uint8_t>> messages_;
  std::uint64_t frames_ok_ = 0;
  std::uint64_t frames_bad_checksum_ = 0;
  std::uint64_t frames_malformed_ = 0;
};

}  // namespace mdn::core
