#include "mdn/frequency_plan.h"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace mdn::core {

FrequencyPlan::FrequencyPlan(const FrequencyPlanConfig& config)
    : config_(config), next_hz_(config.base_hz) {
  if (config.spacing_hz <= 0.0 || config.base_hz <= 0.0 ||
      config.max_hz <= config.base_hz) {
    throw std::invalid_argument("FrequencyPlan: invalid configuration");
  }
}

DeviceId FrequencyPlan::add_device(std::string name, std::size_t symbols) {
  if (symbols == 0) {
    throw std::invalid_argument("FrequencyPlan: zero symbols");
  }
  if (symbols > remaining_capacity()) {
    throw std::length_error("FrequencyPlan: band exhausted");
  }
  Device dev;
  dev.name = std::move(name);
  dev.frequencies.reserve(symbols);
  for (std::size_t i = 0; i < symbols; ++i) {
    dev.frequencies.push_back(next_hz_);
    next_hz_ += config_.spacing_hz;
  }
  devices_.push_back(std::move(dev));
  return static_cast<DeviceId>(devices_.size() - 1);
}

const std::string& FrequencyPlan::device_name(DeviceId id) const {
  return devices_.at(id).name;
}

double FrequencyPlan::frequency(DeviceId id, std::size_t index) const {
  return devices_.at(id).frequencies.at(index);
}

std::span<const double> FrequencyPlan::frequencies(DeviceId id) const {
  return devices_.at(id).frequencies;
}

std::size_t FrequencyPlan::symbol_count(DeviceId id) const {
  return devices_.at(id).frequencies.size();
}

std::optional<FrequencyPlan::Assignment> FrequencyPlan::identify(
    double frequency_hz, double tolerance_hz) const {
  if (tolerance_hz < 0.0) tolerance_hz = config_.spacing_hz / 2.0;
  // Frequencies are allocated on a regular grid, so the owning slot is
  // computable directly.
  const double slot_f =
      std::round((frequency_hz - config_.base_hz) / config_.spacing_hz);
  if (slot_f < 0.0) return std::nullopt;
  const auto slot = static_cast<std::size_t>(slot_f);
  const double grid_hz = config_.base_hz +
                         static_cast<double>(slot) * config_.spacing_hz;
  if (std::abs(frequency_hz - grid_hz) > tolerance_hz) return std::nullopt;

  std::size_t first = 0;
  for (std::size_t d = 0; d < devices_.size(); ++d) {
    const std::size_t n = devices_[d].frequencies.size();
    if (slot < first + n) {
      return Assignment{static_cast<DeviceId>(d), slot - first, grid_hz};
    }
    first += n;
  }
  return std::nullopt;
}

std::string FrequencyPlan::to_text() const {
  std::ostringstream os;
  os << "mdn-frequency-plan v1\n";
  os << "band " << config_.base_hz << ' ' << config_.spacing_hz << ' '
     << config_.max_hz << '\n';
  for (const auto& dev : devices_) {
    os << "device " << dev.name << ' ' << dev.frequencies.size() << '\n';
  }
  return os.str();
}

FrequencyPlan FrequencyPlan::from_text(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  if (!std::getline(is, line) || line != "mdn-frequency-plan v1") {
    throw std::invalid_argument("FrequencyPlan::from_text: bad header");
  }
  if (!std::getline(is, line)) {
    throw std::invalid_argument("FrequencyPlan::from_text: missing band");
  }
  std::istringstream band(line);
  std::string tag;
  FrequencyPlanConfig config;
  if (!(band >> tag >> config.base_hz >> config.spacing_hz >>
        config.max_hz) ||
      tag != "band") {
    throw std::invalid_argument("FrequencyPlan::from_text: bad band line");
  }

  FrequencyPlan plan(config);
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream dev(line);
    std::string name;
    std::size_t symbols = 0;
    if (!(dev >> tag >> name >> symbols) || tag != "device") {
      throw std::invalid_argument(
          "FrequencyPlan::from_text: bad device line: " + line);
    }
    plan.add_device(std::move(name), symbols);
  }
  return plan;
}

std::size_t FrequencyPlan::remaining_capacity() const noexcept {
  if (next_hz_ > config_.max_hz) return 0;
  return static_cast<std::size_t>(
             std::floor((config_.max_hz - next_hz_) / config_.spacing_hz)) +
         1;
}

}  // namespace mdn::core
