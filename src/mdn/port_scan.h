// Music-defined port-scan detection (§5, Fig 4c-d).
//
// Switch side: "When hit by a packet, the switch plays a sound whose
// frequency is based on the destination port number."  A sequential scan
// therefore sweeps through the switch's frequency set — the tell-tale
// rising line on the mel spectrogram of Fig 4c.
//
// Controller side: a scan alert fires when, within a sliding window, the
// number of *distinct* destination-port tones reaches a threshold.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "mdn/controller.h"
#include "mdn/frequency_plan.h"
#include "mp/bridge.h"
#include "net/switch.h"

namespace mdn::core {

struct PortScanConfig {
  /// Destination ports are watched modulo this many plan symbols.
  std::uint16_t first_port = 1;      ///< lowest port of the watched range
  double tone_duration_s = 0.03;
  double intensity_db_spl = 70.0;
  double window_s = 3.0;
  std::size_t distinct_threshold = 10;  ///< distinct tones to call a scan
};

class PortScanReporter {
 public:
  PortScanReporter(net::Switch& sw, mp::MpEmitter& emitter,
                   const FrequencyPlan& plan, DeviceId device,
                   PortScanConfig config);

  /// Frequency keyed by a destination port (ports map onto the device's
  /// symbols cyclically from `first_port`).
  double frequency_for_port(std::uint16_t dst_port) const;
  std::size_t symbol_for_port(std::uint16_t dst_port) const;

 private:
  mp::MpEmitter& emitter_;
  const FrequencyPlan& plan_;
  DeviceId device_;
  PortScanConfig config_;
};

class PortScanDetector {
 public:
  struct Alert {
    double time_s = 0.0;
    std::size_t distinct_tones = 0;
  };
  using AlertHandler = std::function<void(const Alert&)>;

  PortScanDetector(MdnController& controller, const FrequencyPlan& plan,
                   DeviceId device, PortScanConfig config);

  void on_alert(AlertHandler handler) { handler_ = std::move(handler); }

  std::size_t distinct_in_window(double now_s) const;
  const std::vector<Alert>& alerts() const noexcept { return alerts_; }
  std::uint64_t events_heard() const noexcept { return events_; }

 private:
  void on_event(std::size_t symbol, const ToneEvent& event);

  PortScanConfig config_;
  std::size_t symbol_count_;
  mutable std::deque<std::pair<double, std::size_t>> window_;  // (t, symbol)
  std::vector<Alert> alerts_;
  AlertHandler handler_;
  bool alerted_ = false;
  std::uint64_t events_ = 0;
};

}  // namespace mdn::core
