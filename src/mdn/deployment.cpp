#include "mdn/deployment.h"

namespace mdn::core {

SpeakerRig::SpeakerRig(net::EventLoop& loop,
                       audio::AcousticChannel& channel, FrequencyPlan& plan,
                       std::string name, const SpeakerRigConfig& config)
    : plan_(&plan),
      device_(plan.add_device(name, config.symbols)),
      speaker_(channel.add_source_at(name + "-speaker", config.position)) {
  bridge_ = std::make_unique<mp::PiSpeakerBridge>(
      loop, channel, speaker_, config.processing_delay);
  emitter_ = std::make_unique<mp::MpEmitter>(loop, *bridge_,
                                             config.emitter_min_gap);
}

double SpeakerRig::frequency(std::size_t index) const {
  return plan_->frequency(device_, index);
}

bool SpeakerRig::sing(std::size_t index, double duration_s,
                      double intensity_db_spl) {
  return emitter_->emit(frequency(index), duration_s, intensity_db_spl);
}

}  // namespace mdn::core
