// Sound-driven finite state machines (§4, "State Processing").
//
// The paper argues management-plane state machines can live in whatever
// device carries a microphone, and demonstrates a port-knocking FSM in
// the style of OpenState.  MusicFsm is the generic machine: states,
// symbol-labelled transitions, a default (reset) edge, an optional
// inactivity timeout, and entry callbacks.  PortKnockSequence derives
// the concrete knock machine from a list of ports.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/sim_time.h"
#include "obs/journal.h"

namespace mdn::core {

class MusicFsm {
 public:
  using State = std::size_t;
  using Symbol = std::size_t;

  MusicFsm(std::size_t state_count, State initial);

  std::size_t state_count() const noexcept { return entry_actions_.size(); }
  State state() const noexcept { return current_; }
  State initial_state() const noexcept { return initial_; }

  /// Adds the edge (from, symbol) -> to.  Re-adding overwrites.
  void add_transition(State from, Symbol symbol, State to);

  /// Where to go from `from` when no labelled edge matches the symbol
  /// (defaults to the initial state — classic knock reset).
  void set_default_transition(State from, State to);

  /// Resets to the initial state when more than `timeout` elapses
  /// between symbols (0 disables).
  void set_timeout(net::SimTime timeout) noexcept { timeout_ = timeout; }

  /// Callback invoked whenever `state` is entered via feed().
  void on_enter(State state, std::function<void()> action);

  /// Feeds a symbol observed at time `now`; returns the new state.
  State feed(Symbol symbol, net::SimTime now);

  /// Same, citing the journal record (a tone detection) that produced
  /// the symbol.  When the journal is enabled the transition is recorded
  /// with two causal links — the detection and the previous transition —
  /// so Journal::explain() recovers the whole knock sequence from the
  /// final transition.  The record is minted *before* the entry action
  /// runs: actions read last_record() as their own cause.
  State feed(Symbol symbol, net::SimTime now, obs::CauseId cause);

  void reset() noexcept { current_ = initial_; }

  /// Journal id of the most recent transition record (0 when the journal
  /// is disabled or feed() has not run).
  obs::CauseId last_record() const noexcept { return last_record_; }

  /// Label stamped on this machine's journal records (default "fsm";
  /// truncated to the record's fixed label width).
  void set_label(std::string label) { label_ = std::move(label); }

  std::uint64_t transitions_taken() const noexcept { return transitions_; }
  std::uint64_t resets() const noexcept { return resets_; }

 private:
  struct Key {
    State from;
    Symbol symbol;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      return k.from * 1000003u + k.symbol;
    }
  };

  State initial_;
  State current_;
  std::unordered_map<Key, State, KeyHash> edges_;
  std::vector<std::optional<State>> default_edges_;
  std::vector<std::function<void()>> entry_actions_;
  net::SimTime timeout_ = 0;
  net::SimTime last_symbol_at_ = 0;
  bool saw_symbol_ = false;
  std::uint64_t transitions_ = 0;
  std::uint64_t resets_ = 0;
  obs::CauseId last_record_ = 0;
  std::string label_ = "fsm";
};

/// Builds the §4 port-knocking machine: symbols must arrive in the exact
/// order of `knock_sequence`; any wrong symbol resets.  State k means
/// "first k knocks heard"; entering state N (== sequence length) means
/// authenticated.
MusicFsm make_knock_fsm(const std::vector<std::size_t>& knock_sequence);

}  // namespace mdn::core
