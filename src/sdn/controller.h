// Control channel and controller base class.
//
// A ControlChannel joins an SDN controller to its switches with a
// configurable control-plane latency, mirroring the OpenFlow TCP session
// of a real deployment.  Music-Defined Networking's point is that the MDN
// controller can *also* receive state out-of-band (through sound) and only
// uses this channel for actuation — or not at all.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/event_loop.h"
#include "net/switch.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "sdn/messages.h"

namespace mdn::sdn {

class Controller;

class ControlChannel {
 public:
  explicit ControlChannel(net::EventLoop& loop,
                          net::SimTime latency = net::kMillisecond);

  ControlChannel(const ControlChannel&) = delete;
  ControlChannel& operator=(const ControlChannel&) = delete;

  /// Attaches a switch; table misses are delivered to `controller` as
  /// PacketIn after the channel latency.  Returns the datapath id.
  DatapathId attach(net::Switch& sw, Controller& controller);

  /// Applies a FlowMod on the switch after the channel latency.  `cause`
  /// is the journal id of whatever triggered the mod (an FSM transition,
  /// an app action; 0 = unattributed).  Returns the id of the minted
  /// kFlowMod journal record — the terminal link of a provenance chain,
  /// what Journal::explain() starts from — or 0 when the journal is
  /// disabled or the management session is down.
  obs::CauseId send_flow_mod(DatapathId dpid, FlowMod mod,
                             obs::CauseId cause = 0);

  /// Injects a packet at the switch after the channel latency, applying
  /// the given action (OpenFlow packet-out).
  void send_packet_out(DatapathId dpid, PacketOut out);

  /// Immediate port statistics snapshot (stats request/reply collapsed;
  /// the latency of a real round trip does not affect any experiment).
  /// Throws std::runtime_error when the management session is down.
  std::vector<PortStats> query_port_stats(DatapathId dpid) const;

  /// Non-throwing variant: nullopt while the session is down.
  std::optional<std::vector<PortStats>> try_query_port_stats(
      DatapathId dpid) const;

  /// Models in-band management: when the data plane carrying the
  /// OpenFlow session fails, FlowMods, PacketIns and stats all fail too.
  /// (The whole point of Music-Defined Networking is that tones keep
  /// working through exactly this failure.)
  void set_session_up(DatapathId dpid, bool up);
  bool session_up(DatapathId dpid) const;
  std::uint64_t failed_sends() const noexcept { return failed_sends_; }

  net::Switch& switch_for(DatapathId dpid);
  const net::Switch& switch_for(DatapathId dpid) const;

  net::SimTime latency() const noexcept { return latency_; }
  net::EventLoop& loop() noexcept { return loop_; }
  std::uint64_t flow_mods_sent() const noexcept { return flow_mods_sent_; }
  std::uint64_t packet_ins_delivered() const noexcept {
    return packet_ins_delivered_;
  }

 private:
  void apply_flow_mod(net::Switch& sw, const FlowMod& mod);
  void apply_packet_out(net::Switch& sw, PacketOut out);

  net::EventLoop& loop_;
  net::SimTime latency_;
  std::vector<net::Switch*> switches_;  // index == dpid
  std::vector<bool> session_up_;        // parallel to switches_
  std::uint64_t flow_mods_sent_ = 0;
  std::uint64_t packet_ins_delivered_ = 0;
  mutable std::uint64_t failed_sends_ = 0;
  // Registry mirrors under "sdn/controller/...".
  obs::Counter* flow_mod_counter_;
  obs::Counter* packet_in_counter_;
  obs::Counter* failed_send_counter_;
};

/// In-band congestion-monitoring baseline (what MDN replaces): polls a
/// switch port's queue backlog over the OpenFlow session every `period`
/// and reports the first time the backlog exceeds a threshold.  Blind
/// while the management session is down.
class PollingQueueMonitor {
 public:
  PollingQueueMonitor(ControlChannel& channel, DatapathId dpid,
                      std::size_t port_index, std::size_t threshold,
                      net::SimTime period = 300 * net::kMillisecond);

  void start();
  void stop() noexcept { running_ = false; }

  bool congestion_seen() const noexcept { return congestion_seen_; }
  double congestion_seen_at_s() const noexcept { return seen_at_s_; }
  std::uint64_t polls() const noexcept { return polls_; }
  std::uint64_t failed_polls() const noexcept { return failed_polls_; }

 private:
  bool tick();

  ControlChannel& channel_;
  DatapathId dpid_;
  std::size_t port_index_;
  std::size_t threshold_;
  net::SimTime period_;
  bool running_ = false;
  bool congestion_seen_ = false;
  double seen_at_s_ = -1.0;
  std::uint64_t polls_ = 0;
  std::uint64_t failed_polls_ = 0;
};

class Controller {
 public:
  virtual ~Controller() = default;

  virtual void on_switch_attached(DatapathId /*dpid*/,
                                  net::Switch& /*sw*/) {}
  virtual void on_packet_in(DatapathId /*dpid*/, const PacketIn& /*msg*/) {}
};

/// Reference reactive controller: learns source addresses per switch and
/// installs destination-based forwarding entries, flooding unknowns.
/// Used by tests as the baseline "in-band" control plane.
class LearningController : public Controller {
 public:
  explicit LearningController(ControlChannel& channel)
      : channel_(channel) {}

  void on_packet_in(DatapathId dpid, const PacketIn& msg) override;

  std::uint64_t installs() const noexcept { return installs_; }
  std::uint64_t floods() const noexcept { return floods_; }

 private:
  ControlChannel& channel_;
  // dpid -> (ip -> port) learned locations.
  std::unordered_map<DatapathId,
                     std::unordered_map<std::uint32_t, std::size_t>>
      location_;
  std::uint64_t installs_ = 0;
  std::uint64_t floods_ = 0;
};

}  // namespace mdn::sdn
