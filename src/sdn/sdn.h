// Umbrella header for the mdn_sdn library.
#pragma once

#include "sdn/controller.h"
#include "sdn/messages.h"
