#include "sdn/controller.h"

#include <stdexcept>

namespace mdn::sdn {

ControlChannel::ControlChannel(net::EventLoop& loop, net::SimTime latency)
    : loop_(loop), latency_(latency) {
  auto& registry = obs::Registry::global();
  flow_mod_counter_ = &registry.counter("sdn/controller/flow_mods");
  packet_in_counter_ = &registry.counter("sdn/controller/packet_ins");
  failed_send_counter_ = &registry.counter("sdn/controller/failed_sends");
}

DatapathId ControlChannel::attach(net::Switch& sw, Controller& controller) {
  const DatapathId dpid = switches_.size();
  switches_.push_back(&sw);
  session_up_.push_back(true);
  sw.set_miss_handler(
      [this, dpid, &controller](const net::Packet& pkt, std::size_t in_port) {
        if (!session_up_[dpid]) {
          ++failed_sends_;
          failed_send_counter_->inc();
          return;
        }
        PacketIn msg;
        msg.packet = pkt;
        msg.in_port = in_port;
        msg.datapath = dpid;
        loop_.schedule_in(latency_, [this, &controller, msg]() {
          ++packet_ins_delivered_;
          packet_in_counter_->inc();
          controller.on_packet_in(msg.datapath, msg);
        });
      });
  controller.on_switch_attached(dpid, sw);
  return dpid;
}

void ControlChannel::set_session_up(DatapathId dpid, bool up) {
  if (dpid >= session_up_.size()) {
    throw std::out_of_range("ControlChannel: unknown datapath");
  }
  session_up_[dpid] = up;
}

bool ControlChannel::session_up(DatapathId dpid) const {
  if (dpid >= session_up_.size()) {
    throw std::out_of_range("ControlChannel: unknown datapath");
  }
  return session_up_[dpid];
}

net::Switch& ControlChannel::switch_for(DatapathId dpid) {
  if (dpid >= switches_.size()) {
    throw std::out_of_range("ControlChannel: unknown datapath");
  }
  return *switches_[dpid];
}

const net::Switch& ControlChannel::switch_for(DatapathId dpid) const {
  if (dpid >= switches_.size()) {
    throw std::out_of_range("ControlChannel: unknown datapath");
  }
  return *switches_[dpid];
}

namespace {

const char* flow_mod_label(FlowMod::Command command) {
  switch (command) {
    case FlowMod::Command::kAdd: return "flow_add";
    case FlowMod::Command::kDeleteByCookie: return "flow_del_cookie";
    case FlowMod::Command::kDeleteByMatch: return "flow_del_match";
    case FlowMod::Command::kClear: return "flow_clear";
  }
  return "flow_mod";
}

}  // namespace

obs::CauseId ControlChannel::send_flow_mod(DatapathId dpid, FlowMod mod,
                                           obs::CauseId cause) {
  net::Switch& sw = switch_for(dpid);
  if (!session_up_[dpid]) {
    ++failed_sends_;
    failed_send_counter_->inc();
    return 0;
  }
  ++flow_mods_sent_;
  flow_mod_counter_->inc();
  obs::CauseId record_id = 0;
  obs::Journal& journal = obs::Journal::global();
  if (journal.enabled()) {
    obs::JournalRecord rec;
    rec.kind = obs::JournalKind::kFlowMod;
    rec.cause = cause;
    rec.sim_ns = loop_.now();
    rec.value = mod.entry.priority;
    rec.aux = dpid;
    obs::set_journal_label(rec, flow_mod_label(mod.command));
    record_id = journal.append(rec);
  }
  loop_.schedule_in(latency_, [this, &sw, mod = std::move(mod)]() {
    apply_flow_mod(sw, mod);
  });
  return record_id;
}

void ControlChannel::apply_flow_mod(net::Switch& sw, const FlowMod& mod) {
  switch (mod.command) {
    case FlowMod::Command::kAdd:
      sw.flow_table().add(mod.entry, loop_.now());
      break;
    case FlowMod::Command::kDeleteByCookie:
      sw.flow_table().remove_by_cookie(mod.cookie);
      break;
    case FlowMod::Command::kDeleteByMatch:
      sw.flow_table().remove_by_match(mod.match);
      break;
    case FlowMod::Command::kClear:
      sw.flow_table().clear();
      break;
  }
}

void ControlChannel::send_packet_out(DatapathId dpid, PacketOut out) {
  net::Switch& sw = switch_for(dpid);
  if (!session_up_[dpid]) {
    ++failed_sends_;
    failed_send_counter_->inc();
    return;
  }
  loop_.schedule_in(latency_, [this, &sw, out = std::move(out)]() mutable {
    apply_packet_out(sw, std::move(out));
  });
}

void ControlChannel::apply_packet_out(net::Switch& sw, PacketOut out) {
  switch (out.action.type) {
    case net::ActionType::kOutput:
      if (out.action.port < sw.port_count()) {
        sw.port(out.action.port).send(std::move(out.packet));
      }
      break;
    case net::ActionType::kFlood:
      for (std::size_t i = 0; i < sw.port_count(); ++i) {
        if (out.in_port && *out.in_port == i) continue;
        if (sw.port(i).connected()) sw.port(i).send(out.packet);
      }
      break;
    case net::ActionType::kDrop:
    case net::ActionType::kGroup:
      break;  // not meaningful for packet-out
  }
}

std::vector<PortStats> ControlChannel::query_port_stats(
    DatapathId dpid) const {
  if (!session_up_[dpid]) {
    ++failed_sends_;
    failed_send_counter_->inc();
    throw std::runtime_error(
        "ControlChannel: management session to switch is down");
  }
  const net::Switch& sw = switch_for(dpid);
  std::vector<PortStats> stats;
  stats.reserve(sw.port_count());
  for (std::size_t i = 0; i < sw.port_count(); ++i) {
    const net::Port& p = sw.port(i);
    stats.push_back({i, p.tx_packets(), p.tx_bytes(), p.rx_packets(),
                     p.rx_bytes(), p.drops(), p.backlog()});
  }
  return stats;
}

std::optional<std::vector<PortStats>> ControlChannel::try_query_port_stats(
    DatapathId dpid) const {
  if (!session_up_[dpid]) {
    ++failed_sends_;
    failed_send_counter_->inc();
    return std::nullopt;
  }
  return query_port_stats(dpid);
}

PollingQueueMonitor::PollingQueueMonitor(ControlChannel& channel,
                                         DatapathId dpid,
                                         std::size_t port_index,
                                         std::size_t threshold,
                                         net::SimTime period)
    : channel_(channel),
      dpid_(dpid),
      port_index_(port_index),
      threshold_(threshold),
      period_(period) {}

void PollingQueueMonitor::start() {
  if (running_) return;
  running_ = true;
  channel_.loop().schedule_periodic(period_, period_,
                                    [this] { return tick(); });
}

bool PollingQueueMonitor::tick() {
  if (!running_) return false;
  ++polls_;
  const auto stats = channel_.try_query_port_stats(dpid_);
  if (!stats) {
    ++failed_polls_;
    return running_;
  }
  if (port_index_ < stats->size() &&
      (*stats)[port_index_].queue_backlog > threshold_ &&
      !congestion_seen_) {
    congestion_seen_ = true;
    seen_at_s_ = net::to_seconds(channel_.loop().now());
  }
  return running_;
}

void LearningController::on_packet_in(DatapathId dpid, const PacketIn& msg) {
  auto& table = location_[dpid];
  table[msg.packet.flow.src_ip] = msg.in_port;

  const auto it = table.find(msg.packet.flow.dst_ip);
  if (it != table.end()) {
    net::FlowEntry entry;
    entry.priority = 10;
    entry.match.dst_ip = msg.packet.flow.dst_ip;
    entry.actions = {net::Action::output(it->second)};
    entry.idle_timeout = 30 * net::kSecond;
    channel_.send_flow_mod(dpid, FlowMod::add(entry));
    ++installs_;
    channel_.send_packet_out(dpid, PacketOut{msg.packet,
                                             net::Action::output(it->second),
                                             msg.in_port});
  } else {
    ++floods_;
    channel_.send_packet_out(
        dpid, PacketOut{msg.packet, net::Action::flood(), msg.in_port});
  }
}

}  // namespace mdn::sdn
