// OpenFlow-like control-plane messages.
//
// The paper actuates its network with OpenFlow Flow-MOD messages (Figs 1,
// 3, 5); this module models the subset of OpenFlow 1.0 semantics those
// experiments exercise: flow addition/removal, packet-in on table miss,
// packet-out, and port statistics.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "net/flow_table.h"
#include "net/packet.h"

namespace mdn::sdn {

/// Identifies an attached switch on the control channel.
using DatapathId = std::uint64_t;

struct FlowMod {
  enum class Command : std::uint8_t {
    kAdd,
    kDeleteByCookie,
    kDeleteByMatch,
    kClear,
  };

  Command command = Command::kAdd;
  net::FlowEntry entry;      ///< kAdd payload
  std::uint64_t cookie = 0;  ///< kDeleteByCookie selector
  net::Match match;          ///< kDeleteByMatch selector

  static FlowMod add(net::FlowEntry entry) {
    FlowMod m;
    m.command = Command::kAdd;
    m.entry = std::move(entry);
    return m;
  }
  static FlowMod delete_by_cookie(std::uint64_t cookie) {
    FlowMod m;
    m.command = Command::kDeleteByCookie;
    m.cookie = cookie;
    return m;
  }
  static FlowMod delete_by_match(net::Match match) {
    FlowMod m;
    m.command = Command::kDeleteByMatch;
    m.match = match;
    return m;
  }
};

struct PacketIn {
  net::Packet packet;
  std::size_t in_port = 0;
  DatapathId datapath = 0;
};

struct PacketOut {
  net::Packet packet;
  net::Action action;
  /// Ingress port the packet originally arrived on; flooding skips it.
  std::optional<std::size_t> in_port;
};

struct PortStats {
  std::size_t port = 0;
  std::uint64_t tx_packets = 0;
  std::uint64_t tx_bytes = 0;
  std::uint64_t rx_packets = 0;
  std::uint64_t rx_bytes = 0;
  std::uint64_t drops = 0;
  std::size_t queue_backlog = 0;
};

}  // namespace mdn::sdn
