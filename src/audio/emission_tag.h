// Provenance tag riding on an acoustic emission.
//
// The observability journal (obs/journal.h) stamps every played tone
// with a record id; that id travels with the emission through the
// acoustic channel and with recorded blocks through the BlockSink /
// rt::StreamRuntime path, so a detection (or a backpressure drop) can
// cite the exact emitted tone that caused it.  The tag lives here, in
// the audio layer, so audio and the core BlockSink seam stay free of an
// obs dependency: `cause` is opaque here — 0 means untagged.
#pragma once

#include <cstdint>

namespace mdn::audio {

struct EmissionTag {
  std::uint64_t cause = 0;     ///< obs::Journal record id (0 = untagged)
  double frequency_hz = 0.0;   ///< nominal tone frequency, for matching
};

}  // namespace mdn::audio
