// Sample-rate conversion.
//
// Recordings arrive at whatever rate a deployment's microphones use
// (cheap USB mics are commonly 16 or 44.1 kHz) while the analysis chain
// runs at one rate; linear interpolation is plenty for narrowband tone
// work far below Nyquist.
#pragma once

#include "audio/waveform.h"

namespace mdn::audio {

/// Linearly resamples `input` to `target_rate`.  Returns the input
/// unchanged when the rates already match.  Throws std::invalid_argument
/// for non-positive targets.
Waveform resample_linear(const Waveform& input, double target_rate);

}  // namespace mdn::audio
