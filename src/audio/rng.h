// Deterministic pseudo-random number generation (xoshiro256**).
//
// Every stochastic element of the simulated testbed — microphone self
// noise, fan turbulence, traffic inter-arrivals — draws from this
// generator so experiments are exactly reproducible from a seed, which the
// physical testbed of the paper could never guarantee.
#pragma once

#include <cstdint>

namespace mdn::audio {

/// xoshiro256** 1.0 (Blackman & Vigna), seeded via SplitMix64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  std::uint64_t next_u64() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n).  n must be > 0.
  std::uint64_t below(std::uint64_t n) noexcept;

  /// Standard normal via Box-Muller.
  double gaussian() noexcept;

  /// Exponential with the given mean.
  double exponential(double mean) noexcept;

  /// Fork an independent stream (useful to give each component its own
  /// generator derived from one experiment seed).
  Rng split() noexcept;

 private:
  std::uint64_t s_[4];
  bool have_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace mdn::audio
