#include "audio/wav.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <vector>

namespace mdn::audio {
namespace {

void put_u32(std::vector<std::uint8_t>& b, std::uint32_t v) {
  b.push_back(static_cast<std::uint8_t>(v & 0xff));
  b.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
  b.push_back(static_cast<std::uint8_t>((v >> 16) & 0xff));
  b.push_back(static_cast<std::uint8_t>((v >> 24) & 0xff));
}

void put_u16(std::vector<std::uint8_t>& b, std::uint16_t v) {
  b.push_back(static_cast<std::uint8_t>(v & 0xff));
  b.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] |
                                    (static_cast<std::uint16_t>(p[1]) << 8));
}

}  // namespace

void write_wav(const std::string& path, const Waveform& w) {
  const auto n = static_cast<std::uint32_t>(w.size());
  const auto sample_rate = static_cast<std::uint32_t>(
      std::llround(w.sample_rate()));
  const std::uint32_t data_bytes = n * 2;

  std::vector<std::uint8_t> buf;
  buf.reserve(44 + data_bytes);
  const auto put_tag = [&](const char* tag) {
    buf.insert(buf.end(), tag, tag + 4);
  };
  put_tag("RIFF");
  put_u32(buf, 36 + data_bytes);
  put_tag("WAVE");
  put_tag("fmt ");
  put_u32(buf, 16);
  put_u16(buf, 1);  // PCM
  put_u16(buf, 1);  // mono
  put_u32(buf, sample_rate);
  put_u32(buf, sample_rate * 2);
  put_u16(buf, 2);   // block align
  put_u16(buf, 16);  // bits per sample
  put_tag("data");
  put_u32(buf, data_bytes);
  for (std::size_t i = 0; i < n; ++i) {
    const double clamped = std::clamp(w[i], -1.0, 1.0);
    const auto s = static_cast<std::int16_t>(
        std::llround(clamped * 32767.0));
    put_u16(buf, static_cast<std::uint16_t>(s));
  }

  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("write_wav: cannot open " + path);
  out.write(reinterpret_cast<const char*>(buf.data()),
            static_cast<std::streamsize>(buf.size()));
  if (!out) throw std::runtime_error("write_wav: short write to " + path);
}

Waveform read_wav(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("read_wav: cannot open " + path);
  std::vector<std::uint8_t> buf((std::istreambuf_iterator<char>(in)),
                                std::istreambuf_iterator<char>());
  if (buf.size() < 44 || std::memcmp(buf.data(), "RIFF", 4) != 0 ||
      std::memcmp(buf.data() + 8, "WAVE", 4) != 0) {
    throw std::runtime_error("read_wav: not a RIFF/WAVE file");
  }

  std::uint32_t sample_rate = 0;
  std::uint16_t channels = 0, bits = 0;
  std::size_t data_off = 0, data_len = 0;

  std::size_t pos = 12;
  while (pos + 8 <= buf.size()) {
    const std::uint32_t chunk_len = get_u32(buf.data() + pos + 4);
    const std::uint8_t* tag = buf.data() + pos;
    if (std::memcmp(tag, "fmt ", 4) == 0 && pos + 8 + 16 <= buf.size()) {
      const std::uint8_t* f = buf.data() + pos + 8;
      const std::uint16_t format = get_u16(f);
      channels = get_u16(f + 2);
      sample_rate = get_u32(f + 4);
      bits = get_u16(f + 14);
      if (format != 1 || bits != 16) {
        throw std::runtime_error("read_wav: only 16-bit PCM supported");
      }
    } else if (std::memcmp(tag, "data", 4) == 0) {
      data_off = pos + 8;
      data_len = std::min<std::size_t>(chunk_len, buf.size() - data_off);
    }
    pos += 8 + chunk_len + (chunk_len & 1);
  }
  if (sample_rate == 0 || channels == 0 || data_off == 0) {
    throw std::runtime_error("read_wav: missing fmt or data chunk");
  }

  const std::size_t frames = data_len / (2 * channels);
  Waveform w(static_cast<double>(sample_rate), frames);
  for (std::size_t i = 0; i < frames; ++i) {
    double acc = 0.0;
    for (std::uint16_t c = 0; c < channels; ++c) {
      const auto raw = static_cast<std::int16_t>(
          get_u16(buf.data() + data_off + (i * channels + c) * 2));
      acc += static_cast<double>(raw) / 32767.0;
    }
    w[i] = acc / channels;
  }
  return w;
}

}  // namespace mdn::audio
