#include "audio/fan.h"

#include <cmath>
#include <numbers>

#include "audio/noise.h"
#include "audio/synth.h"

namespace mdn::audio {

double blade_pass_hz(const FanSpec& spec) noexcept {
  return spec.rpm / 60.0 * static_cast<double>(spec.blades);
}

Waveform generate_fan(const FanSpec& spec, double duration_s,
                      double sample_rate) {
  const auto n = static_cast<std::size_t>(duration_s * sample_rate);
  Waveform w(sample_rate, n);
  Rng rng(spec.seed);

  const double shaft_hz = spec.rpm / 60.0;
  const double bpf = blade_pass_hz(spec);

  // Slow speed wander: a low-frequency random walk on the rotation rate,
  // so tones are narrow but not laser-thin (as in a real fan).
  double speed_mod = 0.0;
  const double wander_step = spec.rpm_jitter / std::sqrt(sample_rate);
  double phase_shaft = rng.uniform(0.0, 2.0 * std::numbers::pi);
  std::vector<double> phase_harm(static_cast<std::size_t>(spec.harmonics));
  for (auto& p : phase_harm) p = rng.uniform(0.0, 2.0 * std::numbers::pi);

  for (std::size_t i = 0; i < n; ++i) {
    speed_mod += wander_step * rng.gaussian();
    // Mean-revert so the wander stays bounded.
    speed_mod *= 1.0 - 1.0 / sample_rate;
    const double speed = 1.0 + speed_mod;

    double s = 0.0;
    // Shaft rotation tone (imbalance line), quieter than the BPF.
    phase_shaft += 2.0 * std::numbers::pi * shaft_hz * speed / sample_rate;
    s += 0.3 * spec.tone_amplitude * std::sin(phase_shaft);
    // Blade-pass fundamental and harmonics with 1/h rolloff.
    for (int h = 0; h < spec.harmonics; ++h) {
      const double f = bpf * static_cast<double>(h + 1) * speed;
      if (f >= sample_rate / 2.0) break;
      auto& ph = phase_harm[static_cast<std::size_t>(h)];
      ph += 2.0 * std::numbers::pi * f / sample_rate;
      s += spec.tone_amplitude / static_cast<double>(h + 1) * std::sin(ph);
    }
    w[i] = s;
  }

  // Turbulence: band noise concentrated between the BPF and ~6 kHz.
  if (spec.broadband_rms > 0.0) {
    Rng noise_rng = rng.split();
    Waveform turb = make_band_noise(duration_s, spec.broadband_rms, bpf * 0.5,
                                    6000.0, sample_rate, noise_rng);
    w.mix_at(turb, 0);
  }
  return w;
}

Waveform generate_machine_room(int server_count, double duration_s,
                               double sample_rate, double level_rms,
                               std::uint64_t seed) {
  Waveform room(sample_rate,
                static_cast<std::size_t>(duration_s * sample_rate));
  Rng rng(seed);
  for (int i = 0; i < server_count; ++i) {
    FanSpec spec;
    // Each server's fans run at a slightly different speed, so the room is
    // a forest of near-but-not-identical lines, as in Fig 6a.
    spec.rpm = rng.uniform(3600.0, 5400.0);
    spec.blades = 5 + static_cast<int>(rng.below(5));  // 5..9 blades
    spec.tone_amplitude = rng.uniform(0.1, 0.3);
    spec.broadband_rms = rng.uniform(0.03, 0.08);
    spec.seed = rng.next_u64();
    room.mix_at(generate_fan(spec, duration_s, sample_rate), 0,
                1.0 / std::sqrt(static_cast<double>(server_count)));
  }
  // Reverberant wash.
  Rng wash_rng = rng.split();
  room.mix_at(make_pink_noise(duration_s, 0.2, sample_rate, wash_rng), 0);
  const double rms = room.rms();
  if (rms > 0.0) room.scale(level_rms / rms);
  return room;
}

Waveform generate_office(double duration_s, double sample_rate,
                         double level_rms, std::uint64_t seed) {
  Rng rng(seed);
  Waveform office = make_pink_noise(duration_s, 1.0, sample_rate, rng);
  // Faint 120 Hz HVAC/ballast hum.
  ToneSpec hum;
  hum.frequency_hz = 120.0;
  hum.duration_s = duration_s;
  hum.amplitude = 0.15;
  office.mix_at(make_tone(hum, sample_rate), 0);
  const double rms = office.rms();
  if (rms > 0.0) office.scale(level_rms / rms);
  return office;
}

}  // namespace mdn::audio
