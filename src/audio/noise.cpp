#include "audio/noise.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace mdn::audio {
namespace {

std::size_t samples_for(double duration_s, double sample_rate) {
  if (sample_rate <= 0.0) {
    throw std::invalid_argument("noise: sample rate must be positive");
  }
  return static_cast<std::size_t>(
      std::llround(std::max(0.0, duration_s) * sample_rate));
}

void rescale_rms(Waveform& w, double rms) noexcept {
  const double current = w.rms();
  if (current > 0.0) w.scale(rms / current);
}

}  // namespace

Waveform make_white_noise(double duration_s, double rms, double sample_rate,
                          Rng& rng) {
  const std::size_t n = samples_for(duration_s, sample_rate);
  Waveform w(sample_rate, n);
  for (std::size_t i = 0; i < n; ++i) w[i] = rms * rng.gaussian();
  return w;
}

Waveform make_pink_noise(double duration_s, double rms, double sample_rate,
                         Rng& rng) {
  const std::size_t n = samples_for(duration_s, sample_rate);
  Waveform w(sample_rate, n);
  // Voss-McCartney: 16 rows of white noise, row k updated every 2^k
  // samples; the sum has a ~1/f spectrum.
  constexpr int kRows = 16;
  double rows[kRows];
  for (auto& r : rows) r = rng.gaussian();
  for (std::size_t i = 0; i < n; ++i) {
    // Update the row selected by the number of trailing zeros of i.
    if (i > 0) {
      int k = 0;
      std::size_t v = i;
      while ((v & 1) == 0 && k < kRows - 1) {
        v >>= 1;
        ++k;
      }
      rows[k] = rng.gaussian();
    }
    double sum = 0.0;
    for (double r : rows) sum += r;
    w[i] = sum;
  }
  rescale_rms(w, rms);
  return w;
}

Biquad::Biquad(double b0, double b1, double b2, double a1,
               double a2) noexcept
    : b0_(b0), b1_(b1), b2_(b2), a1_(a1), a2_(a2) {}

Biquad Biquad::low_pass(double cutoff_hz, double q, double sample_rate) {
  const double w0 = 2.0 * std::numbers::pi * cutoff_hz / sample_rate;
  const double alpha = std::sin(w0) / (2.0 * q);
  const double cw = std::cos(w0);
  const double a0 = 1.0 + alpha;
  return Biquad{(1.0 - cw) / 2.0 / a0, (1.0 - cw) / a0, (1.0 - cw) / 2.0 / a0,
                -2.0 * cw / a0, (1.0 - alpha) / a0};
}

Biquad Biquad::high_pass(double cutoff_hz, double q, double sample_rate) {
  const double w0 = 2.0 * std::numbers::pi * cutoff_hz / sample_rate;
  const double alpha = std::sin(w0) / (2.0 * q);
  const double cw = std::cos(w0);
  const double a0 = 1.0 + alpha;
  return Biquad{(1.0 + cw) / 2.0 / a0, -(1.0 + cw) / a0, (1.0 + cw) / 2.0 / a0,
                -2.0 * cw / a0, (1.0 - alpha) / a0};
}

double Biquad::process(double x) noexcept {
  const double y = b0_ * x + b1_ * x1_ + b2_ * x2_ - a1_ * y1_ - a2_ * y2_;
  x2_ = x1_;
  x1_ = x;
  y2_ = y1_;
  y1_ = y;
  return y;
}

void Biquad::reset() noexcept { x1_ = x2_ = y1_ = y2_ = 0.0; }

Waveform make_band_noise(double duration_s, double rms, double f_lo_hz,
                         double f_hi_hz, double sample_rate, Rng& rng) {
  if (f_hi_hz <= f_lo_hz) {
    throw std::invalid_argument("make_band_noise: f_hi must exceed f_lo");
  }
  Waveform w = make_white_noise(duration_s, 1.0, sample_rate, rng);
  auto hp = Biquad::high_pass(f_lo_hz, std::numbers::sqrt2 / 2.0, sample_rate);
  auto lp = Biquad::low_pass(f_hi_hz, std::numbers::sqrt2 / 2.0, sample_rate);
  for (auto& s : w.samples()) s = lp.process(hp.process(s));
  rescale_rms(w, rms);
  return w;
}

}  // namespace mdn::audio
