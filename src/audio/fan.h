// Server cooling-fan acoustic model (§7 of the paper).
//
// A real axial fan radiates (a) discrete tones at the blade-pass frequency
// (rotation rate x blade count) and its harmonics, plus the shaft rotation
// frequency itself, and (b) broadband turbulence noise.  The paper's fan
// failure detector works precisely because the discrete tones vanish when
// the fan stops while the room's broadband background persists; this model
// reproduces both components with controllable levels.
#pragma once

#include <cstdint>

#include "audio/rng.h"
#include "audio/waveform.h"

namespace mdn::audio {

struct FanSpec {
  double rpm = 4200.0;          ///< shaft speed (typical 1U server fan)
  int blades = 7;
  double tone_amplitude = 0.25; ///< amplitude of the fundamental BPF tone
  double broadband_rms = 0.05;  ///< turbulence noise level
  int harmonics = 5;            ///< BPF harmonics to render
  double rpm_jitter = 0.002;    ///< fractional slow speed wander
  std::uint64_t seed = 7;
};

/// Blade-pass frequency in Hz: rpm/60 * blades.
double blade_pass_hz(const FanSpec& spec) noexcept;

/// Renders the sound of one running fan.  A stopped fan is simply the
/// absence of this source — callers model failure by not emitting it.
Waveform generate_fan(const FanSpec& spec, double duration_s,
                      double sample_rate);

/// Ambient noise of a machine room with `server_count` running servers at
/// slightly different speeds, summed with pink-ish room reverberant noise.
/// This is the "datacenter background" of Figs 6-7 (>= 85 dBA in the
/// paper's facility).
Waveform generate_machine_room(int server_count, double duration_s,
                               double sample_rate, double level_rms,
                               std::uint64_t seed);

/// Office ambience: quiet pink noise plus faint HVAC hum (Figs 6c-d).
Waveform generate_office(double duration_s, double sample_rate,
                         double level_rms, std::uint64_t seed);

}  // namespace mdn::audio
