// Simulated acoustic channel: the air between speakers and microphones.
//
// The paper's testbed places cheap speakers (one per switch) around a
// listening microphone; tones attenuate with distance and mix additively
// with each other and with ambient noise.  This module reproduces exactly
// that physics at the fidelity the detectors care about: per-source
// inverse-distance pressure attenuation, additive superposition, looping
// ambient beds (fan noise, the background song), optional finite
// speed-of-sound delay, and a microphone model with self-noise and ADC
// quantisation.
//
// Sources live at 2-D positions.  The classic single-listener API
// renders at the origin; render_at() supports the §8 research direction
// of "an array of microphones listening to different groups of
// switches" — each microphone hears every source at its own distance.
//
// SPL convention: a waveform amplitude of 1.0 corresponds to 94 dB SPL at
// the 1 m reference distance (the standard microphone calibration level).
// The paper plays tones of "at least 30 dB"; datacenter noise "may exceed
// 85 dBA".
#pragma once

#include <cmath>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "audio/emission_tag.h"
#include "audio/rng.h"
#include "audio/waveform.h"

namespace mdn::audio {

/// Linear amplitude for a sound pressure level, per the 94 dB == 1.0
/// convention above.
double spl_to_amplitude(double db_spl) noexcept;

/// Sound pressure level of a linear amplitude.
double amplitude_to_spl(double amplitude) noexcept;

/// A point on the machine-room floor, in metres.
struct Position {
  double x = 0.0;
  double y = 0.0;
};

inline double distance_m(const Position& a, const Position& b) noexcept {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

using SourceId = std::uint32_t;

class AcousticChannel {
 public:
  explicit AcousticChannel(double sample_rate);

  double sample_rate() const noexcept { return sample_rate_; }

  /// Registers a speaker `distance_m` metres from the origin (the
  /// default microphone position).  Pressure falls off as
  /// 1/max(distance, 0.1 m).
  SourceId add_source(std::string name, double distance_m);

  /// Registers a speaker at an explicit floor position.
  SourceId add_source_at(std::string name, Position position);

  void set_source_distance(SourceId id, double distance_m);
  void set_source_position(SourceId id, Position position);
  Position source_position(SourceId id) const;
  const std::string& source_name(SourceId id) const;
  std::size_t source_count() const noexcept { return sources_.size(); }

  /// Finite speed of sound in m/s; 0 (default) disables propagation
  /// delay (instantaneous arrival, the single-rack approximation).
  void set_speed_of_sound(double mps) noexcept { speed_of_sound_ = mps; }
  double speed_of_sound() const noexcept { return speed_of_sound_; }

  /// Schedules `sound` to play from source `id` starting at
  /// `start_time_s` (channel time).
  void emit(SourceId id, Waveform sound, double start_time_s);

  /// Same, carrying a provenance tag (the journal id of the emission
  /// record) that listeners can recover with collect_tags().
  void emit(SourceId id, Waveform sound, double start_time_s,
            EmissionTag tag);

  /// Copies the tags of every tagged emission overlapping
  /// [start_s, end_s) into `out` (at most out.size(); excess is
  /// truncated).  Returns the number written.  Zero-allocation: this is
  /// how a listening controller recovers the ground-truth tone ids for
  /// the block it just recorded.
  std::size_t collect_tags(double start_s, double end_s,
                           std::span<EmissionTag> out) const noexcept;

  /// Adds an ambient bed heard at unit gain from everywhere (room
  /// noise).  When `loop` is true the waveform repeats forever from
  /// `start_time_s` onwards.
  void add_ambient(Waveform sound, bool loop = true,
                   double start_time_s = 0.0);

  /// Pressure at the origin over [start_time_s, start_time_s+duration_s).
  Waveform render(double start_time_s, double duration_s) const;

  /// Pressure at an arbitrary listener position (microphone arrays).
  Waveform render_at(Position listener, double start_time_s,
                     double duration_s) const;

  /// Drops all scheduled (non-ambient) emissions.
  void clear_emissions();

  /// End time of the last scheduled non-ambient emission, excluding
  /// propagation delay (0 if none).
  double last_emission_end_s() const noexcept;

 private:
  struct Source {
    std::string name;
    Position position;
  };
  struct Emission {
    Waveform sound;
    double start_s = 0.0;
    SourceId source = 0;
    bool ambient = false;
    bool loop = false;
    EmissionTag tag{};
  };

  double sample_rate_;
  double speed_of_sound_ = 0.0;
  std::vector<Source> sources_;
  std::vector<Emission> emissions_;
  std::vector<Emission> ambient_;
};

struct MicrophoneSpec {
  double gain = 1.0;
  double noise_floor_rms = 1e-4;  ///< self-noise (~14 dB SPL equivalent)
  int adc_bits = 16;              ///< 0 disables quantisation
  double clip_level = 8.0;        ///< analog front-end clipping
  std::uint64_t seed = 42;
  Position position{};            ///< where this microphone listens
};

/// Converts channel pressure into recorded samples, adding self-noise,
/// clipping and quantisation.  Stateful: consecutive record() calls use
/// fresh noise.
class Microphone {
 public:
  Microphone(const MicrophoneSpec& spec, double sample_rate);

  Waveform record(const AcousticChannel& channel, double start_time_s,
                  double duration_s);

  const MicrophoneSpec& spec() const noexcept { return spec_; }

 private:
  MicrophoneSpec spec_;
  double sample_rate_;
  Rng rng_;
};

}  // namespace mdn::audio
