#include "audio/rng.h"

#include <cmath>
#include <numbers>

namespace mdn::audio {
namespace {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 random bits into the mantissa.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::below(std::uint64_t n) noexcept {
  // Lemire-style rejection-free-enough bound for simulation use.
  return next_u64() % n;
}

double Rng::gaussian() noexcept {
  if (have_spare_) {
    have_spare_ = false;
    return spare_;
  }
  double u1 = uniform();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  spare_ = r * std::sin(theta);
  have_spare_ = true;
  return r * std::cos(theta);
}

double Rng::exponential(double mean) noexcept {
  double u = uniform();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

Rng Rng::split() noexcept { return Rng(next_u64()); }

}  // namespace mdn::audio
