// Tone synthesis: the simulated speaker side of Music-Defined Networking.
//
// A Music Protocol message carries (frequency, duration, intensity); the
// Raspberry-Pi bridge renders it with make_tone().  Short raised-cosine
// fades avoid the clicks (wideband transients) a hard-keyed sine would
// inject into every other listener's band.
#pragma once

#include <cstddef>
#include <vector>

#include "audio/waveform.h"

namespace mdn::audio {

struct ToneSpec {
  double frequency_hz = 440.0;
  double duration_s = 0.05;
  double amplitude = 1.0;      ///< linear peak amplitude
  double phase_rad = 0.0;
  double fade_s = 0.002;       ///< raised-cosine fade in/out length
};

/// A faded sine tone.
Waveform make_tone(const ToneSpec& spec, double sample_rate);

/// Sum of equal-amplitude faded sines, one per entry of `frequencies_hz`
/// (each at amplitude `amplitude`).
Waveform make_chord(const std::vector<double>& frequencies_hz,
                    double duration_s, double amplitude, double sample_rate,
                    double fade_s = 0.002);

/// Linear frequency sweep from f0 to f1.
Waveform make_chirp(double f0_hz, double f1_hz, double duration_s,
                    double amplitude, double sample_rate);

/// Silence of the given duration.
Waveform make_silence(double duration_s, double sample_rate);

/// Classic ADSR envelope applied in place (times in seconds, sustain as a
/// fraction of peak).  Used by the song generator for plucked/struck notes.
void apply_adsr(Waveform& w, double attack_s, double decay_s,
                double sustain_level, double release_s);

}  // namespace mdn::audio
