#include "audio/synth.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace mdn::audio {
namespace {
constexpr double kTwoPi = 2.0 * std::numbers::pi;

std::size_t samples_for(double duration_s, double sample_rate) {
  if (sample_rate <= 0.0) {
    throw std::invalid_argument("synth: sample rate must be positive");
  }
  return static_cast<std::size_t>(
      std::llround(std::max(0.0, duration_s) * sample_rate));
}

// Raised-cosine fade applied to the first and last `fade_n` samples.
void apply_fade(std::span<double> s, std::size_t fade_n) noexcept {
  fade_n = std::min(fade_n, s.size() / 2);
  for (std::size_t i = 0; i < fade_n; ++i) {
    const double g =
        0.5 - 0.5 * std::cos(std::numbers::pi * static_cast<double>(i) /
                             static_cast<double>(fade_n));
    s[i] *= g;
    s[s.size() - 1 - i] *= g;
  }
}

}  // namespace

Waveform make_tone(const ToneSpec& spec, double sample_rate) {
  const std::size_t n = samples_for(spec.duration_s, sample_rate);
  Waveform w(sample_rate, n);
  const double step = kTwoPi * spec.frequency_hz / sample_rate;
  for (std::size_t i = 0; i < n; ++i) {
    w[i] = spec.amplitude *
           std::sin(spec.phase_rad + step * static_cast<double>(i));
  }
  apply_fade(w.samples(), samples_for(spec.fade_s, sample_rate));
  return w;
}

Waveform make_chord(const std::vector<double>& frequencies_hz,
                    double duration_s, double amplitude, double sample_rate,
                    double fade_s) {
  Waveform w(sample_rate, samples_for(duration_s, sample_rate));
  for (double f : frequencies_hz) {
    ToneSpec spec;
    spec.frequency_hz = f;
    spec.duration_s = duration_s;
    spec.amplitude = amplitude;
    spec.fade_s = fade_s;
    w.mix_at(make_tone(spec, sample_rate), 0);
  }
  return w;
}

Waveform make_chirp(double f0_hz, double f1_hz, double duration_s,
                    double amplitude, double sample_rate) {
  const std::size_t n = samples_for(duration_s, sample_rate);
  Waveform w(sample_rate, n);
  if (n == 0) return w;
  const double nd = static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / sample_rate;
    const double frac = static_cast<double>(i) / nd;
    // Instantaneous phase of a linear sweep: 2*pi*(f0*t + (f1-f0)*t^2/(2T)).
    const double phase =
        kTwoPi * (f0_hz * t + 0.5 * (f1_hz - f0_hz) * frac * t);
    w[i] = amplitude * std::sin(phase);
  }
  apply_fade(w.samples(), samples_for(0.002, sample_rate));
  return w;
}

Waveform make_silence(double duration_s, double sample_rate) {
  return Waveform(sample_rate, samples_for(duration_s, sample_rate));
}

void apply_adsr(Waveform& w, double attack_s, double decay_s,
                double sustain_level, double release_s) {
  const double sr = w.sample_rate();
  const std::size_t n = w.size();
  if (n == 0 || sr <= 0.0) return;
  const std::size_t a = std::min(n, samples_for(attack_s, sr));
  const std::size_t d = std::min(n - a, samples_for(decay_s, sr));
  const std::size_t r = std::min(n - a - d, samples_for(release_s, sr));
  const std::size_t sustain_end = n - r;

  for (std::size_t i = 0; i < n; ++i) {
    double g;
    if (i < a) {
      g = static_cast<double>(i) / static_cast<double>(std::max<std::size_t>(1, a));
    } else if (i < a + d) {
      const double frac = static_cast<double>(i - a) /
                          static_cast<double>(std::max<std::size_t>(1, d));
      g = 1.0 + (sustain_level - 1.0) * frac;
    } else if (i < sustain_end) {
      g = sustain_level;
    } else {
      const double frac = static_cast<double>(i - sustain_end) /
                          static_cast<double>(std::max<std::size_t>(1, r));
      g = sustain_level * (1.0 - frac);
    }
    w[i] *= g;
  }
}

}  // namespace mdn::audio
