// Synthetic pop-song generator.
//
// The paper stresses its detectors with Sia's "Cheap Thrills" played as
// background noise (Fig 4b, 4d).  We cannot ship that recording, so this
// module synthesises a deterministic stand-in with the same adversarial
// properties: strong tonal content (chords, bass and melody collide with
// the signalling frequencies), percussive wideband transients, and
// non-stationary structure.  Tempo defaults to 90 BPM, matching the
// original track.
#pragma once

#include <cstdint>

#include "audio/rng.h"
#include "audio/waveform.h"

namespace mdn::audio {

struct SongConfig {
  double tempo_bpm = 90.0;
  double amplitude = 0.5;       ///< overall linear peak target
  std::uint64_t seed = 2018;    ///< melody variation seed
  bool percussion = true;
  bool melody = true;
  bool bass = true;
};

/// Renders `duration_s` seconds of the song.  The output is deterministic
/// given the config.  Frequencies span roughly 80 Hz (bass) to 8 kHz
/// (hi-hat noise), covering the whole MDN signalling band.
Waveform generate_song(double duration_s, double sample_rate,
                       const SongConfig& config = {});

}  // namespace mdn::audio
