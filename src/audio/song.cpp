#include "audio/song.h"

#include <array>
#include <cmath>
#include <cstddef>

#include "audio/noise.h"
#include "audio/synth.h"

namespace mdn::audio {
namespace {

// Equal-tempered pitch helper: MIDI note -> Hz (A4 = 69 = 440 Hz).
double midi_hz(int note) noexcept {
  return 440.0 * std::pow(2.0, (note - 69) / 12.0);
}

// "Cheap Thrills" is in F# minor; we use the same i-VI-III-VII loop
// (F#m, D, A, E), one chord per bar.
struct Chord {
  int root;                       // MIDI root
  std::array<int, 3> intervals;   // semitone offsets of chord tones
};

constexpr std::array<Chord, 4> kProgression{{
    {54, {0, 3, 7}},   // F#3 minor
    {50, {0, 4, 7}},   // D3 major
    {57, {0, 4, 7}},   // A3 major
    {52, {0, 4, 7}},   // E3 major
}};

// F# minor pentatonic for the melody (one octave up from the chords).
constexpr std::array<int, 5> kPentatonic{66, 69, 71, 73, 76};

// A note with a couple of harmonics so the spectrum is realistically rich.
Waveform synth_note(double f0, double duration_s, double amplitude,
                    double sample_rate) {
  Waveform w(sample_rate,
             static_cast<std::size_t>(duration_s * sample_rate));
  ToneSpec spec;
  spec.duration_s = duration_s;
  spec.fade_s = 0.004;
  const std::array<std::pair<double, double>, 3> partials{
      {{1.0, 1.0}, {2.0, 0.4}, {3.0, 0.15}}};
  for (const auto& [mult, gain] : partials) {
    spec.frequency_hz = f0 * mult;
    spec.amplitude = amplitude * gain;
    w.mix_at(make_tone(spec, sample_rate), 0);
  }
  apply_adsr(w, 0.01, duration_s * 0.3, 0.6, duration_s * 0.2);
  return w;
}

Waveform synth_kick(double sample_rate) {
  // Pitch-dropping sine thump, 80 ms.
  const double dur = 0.08;
  const auto n = static_cast<std::size_t>(dur * sample_rate);
  Waveform w(sample_rate, n);
  double phase = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double frac = static_cast<double>(i) / static_cast<double>(n);
    const double f = 120.0 * std::exp(-4.0 * frac) + 40.0;
    phase += 2.0 * 3.14159265358979323846 * f / sample_rate;
    w[i] = std::sin(phase) * (1.0 - frac);
  }
  return w;
}

Waveform synth_snare(double sample_rate, Rng& rng) {
  Waveform w = make_band_noise(0.09, 0.5, 1500.0, 6000.0, sample_rate, rng);
  apply_adsr(w, 0.002, 0.03, 0.3, 0.05);
  return w;
}

Waveform synth_hat(double sample_rate, Rng& rng) {
  Waveform w = make_band_noise(0.03, 0.3, 6000.0, 10000.0, sample_rate, rng);
  apply_adsr(w, 0.001, 0.01, 0.2, 0.015);
  return w;
}

}  // namespace

Waveform generate_song(double duration_s, double sample_rate,
                       const SongConfig& config) {
  Waveform song(sample_rate,
                static_cast<std::size_t>(duration_s * sample_rate));
  if (song.empty()) return song;

  Rng rng(config.seed);
  Rng perc_rng = rng.split();

  const double beat_s = 60.0 / config.tempo_bpm;
  const double bar_s = 4.0 * beat_s;
  const auto beat_samples = [&](double beats) {
    return static_cast<std::size_t>(beats * beat_s * sample_rate);
  };

  const std::size_t total_beats =
      static_cast<std::size_t>(duration_s / beat_s) + 1;

  // Pre-render one-shot percussion hits.
  const Waveform kick = synth_kick(sample_rate);
  const Waveform snare = synth_snare(sample_rate, perc_rng);
  const Waveform hat = synth_hat(sample_rate, perc_rng);

  for (std::size_t beat = 0; beat < total_beats; ++beat) {
    const std::size_t offset = beat_samples(static_cast<double>(beat));
    if (offset >= song.size()) break;
    const std::size_t bar = beat / 4;
    const std::size_t beat_in_bar = beat % 4;
    const Chord& chord = kProgression[bar % kProgression.size()];

    // Chord stab on beats 1 and 3.
    if (beat_in_bar == 0 || beat_in_bar == 2) {
      for (int iv : chord.intervals) {
        song.mix_at(synth_note(midi_hz(chord.root + iv + 12), beat_s * 1.8,
                               0.18, sample_rate),
                    offset);
      }
    }

    // Bass: root on every beat, octave-up passing note on beat 4.
    if (config.bass) {
      const int bass_note =
          beat_in_bar == 3 ? chord.root - 12 + 12 : chord.root - 12;
      song.mix_at(
          synth_note(midi_hz(bass_note), beat_s * 0.9, 0.35, sample_rate),
          offset);
    }

    // Percussion: kick on 1 & 3, snare on 2 & 4, hats on eighth notes.
    if (config.percussion) {
      if (beat_in_bar == 0 || beat_in_bar == 2) song.mix_at(kick, offset, 0.8);
      if (beat_in_bar == 1 || beat_in_bar == 3) song.mix_at(snare, offset, 0.6);
      song.mix_at(hat, offset, 0.4);
      song.mix_at(hat, offset + beat_samples(0.5), 0.3);
    }

    // Melody: random pentatonic eighth notes, denser every other bar
    // (verse/chorus-like variation makes the interference non-stationary).
    if (config.melody) {
      const int notes_this_beat = (bar % 2 == 0) ? 1 : 2;
      for (int k = 0; k < notes_this_beat; ++k) {
        if (rng.uniform() < 0.75) {
          const int note = kPentatonic[rng.below(kPentatonic.size())];
          const std::size_t sub_off =
              offset + beat_samples(0.5 * static_cast<double>(k));
          song.mix_at(
              synth_note(midi_hz(note), beat_s * 0.45, 0.22, sample_rate),
              sub_off);
        }
      }
    }
    (void)bar_s;
  }

  // Notes near the end may have grown the buffer past the requested
  // duration; trim back so callers get exactly what they asked for.
  song.data().resize(
      static_cast<std::size_t>(duration_s * sample_rate), 0.0);
  song.normalize(config.amplitude);
  return song;
}

}  // namespace mdn::audio
