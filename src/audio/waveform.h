// Waveform: a mono sample buffer with an associated sample rate.
//
// Samples are doubles where 1.0 is nominal full scale; by the library's
// SPL convention (see channel.h) an amplitude of 1.0 corresponds to
// 94 dB SPL at the reference distance of one metre.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace mdn::audio {

class Waveform {
 public:
  Waveform() = default;
  explicit Waveform(double sample_rate) : sample_rate_(sample_rate) {}
  Waveform(double sample_rate, std::vector<double> samples)
      : sample_rate_(sample_rate), samples_(std::move(samples)) {}
  Waveform(double sample_rate, std::size_t n_samples)
      : sample_rate_(sample_rate), samples_(n_samples, 0.0) {}

  double sample_rate() const noexcept { return sample_rate_; }
  std::size_t size() const noexcept { return samples_.size(); }
  bool empty() const noexcept { return samples_.empty(); }
  double duration_s() const noexcept {
    return sample_rate_ > 0.0
               ? static_cast<double>(samples_.size()) / sample_rate_
               : 0.0;
  }

  double& operator[](std::size_t i) { return samples_[i]; }
  double operator[](std::size_t i) const { return samples_[i]; }
  std::span<double> samples() noexcept { return samples_; }
  std::span<const double> samples() const noexcept { return samples_; }
  std::vector<double>& data() noexcept { return samples_; }

  /// Appends another waveform (sample rates must match).
  void append(const Waveform& other);

  /// Appends `duration_s` seconds of silence.
  void append_silence(double duration_s);

  /// Adds `other * gain` into this waveform starting at sample
  /// `offset_samples`, growing this buffer if needed.
  void mix_at(const Waveform& other, std::size_t offset_samples,
              double gain = 1.0);

  /// Multiplies every sample by `gain`.
  void scale(double gain) noexcept;

  /// Scales so the absolute peak equals `peak` (no-op on silence).
  void normalize(double peak = 1.0) noexcept;

  /// Copy of samples [start, start+count), zero-padded past the end.
  Waveform slice(std::size_t start, std::size_t count) const;

  double rms() const noexcept;
  double peak() const noexcept;

  /// Sample index for time `t_s` (clamped to the buffer).
  std::size_t index_at(double t_s) const noexcept;

 private:
  double sample_rate_ = 0.0;
  std::vector<double> samples_;
};

}  // namespace mdn::audio
