#include "audio/channel.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mdn::audio {

namespace {
constexpr double kReferenceSpl = 94.0;  // dB SPL at amplitude 1.0
constexpr double kMinDistanceM = 0.1;

double distance_gain(double d) noexcept {
  return 1.0 / std::max(d, kMinDistanceM);
}
}  // namespace

double spl_to_amplitude(double db_spl) noexcept {
  return std::pow(10.0, (db_spl - kReferenceSpl) / 20.0);
}

double amplitude_to_spl(double amplitude) noexcept {
  if (amplitude <= 0.0) return -1e9;
  return kReferenceSpl + 20.0 * std::log10(amplitude);
}

AcousticChannel::AcousticChannel(double sample_rate)
    : sample_rate_(sample_rate) {
  if (sample_rate <= 0.0) {
    throw std::invalid_argument("AcousticChannel: sample rate");
  }
}

SourceId AcousticChannel::add_source(std::string name, double distance_m) {
  if (distance_m < 0.0) {
    throw std::invalid_argument("add_source: negative distance");
  }
  return add_source_at(std::move(name), Position{distance_m, 0.0});
}

SourceId AcousticChannel::add_source_at(std::string name,
                                        Position position) {
  sources_.push_back({std::move(name), position});
  return static_cast<SourceId>(sources_.size() - 1);
}

void AcousticChannel::set_source_distance(SourceId id, double distance_m) {
  sources_.at(id).position = Position{distance_m, 0.0};
}

void AcousticChannel::set_source_position(SourceId id, Position position) {
  sources_.at(id).position = position;
}

Position AcousticChannel::source_position(SourceId id) const {
  return sources_.at(id).position;
}

const std::string& AcousticChannel::source_name(SourceId id) const {
  return sources_.at(id).name;
}

void AcousticChannel::emit(SourceId id, Waveform sound, double start_time_s) {
  emit(id, std::move(sound), start_time_s, EmissionTag{});
}

void AcousticChannel::emit(SourceId id, Waveform sound, double start_time_s,
                           EmissionTag tag) {
  if (sound.sample_rate() != sample_rate_) {
    throw std::invalid_argument("emit: sample rate mismatch");
  }
  if (id >= sources_.size()) {
    throw std::out_of_range("emit: unknown source");
  }
  emissions_.push_back(
      {std::move(sound), start_time_s, id, /*ambient=*/false,
       /*loop=*/false, tag});
}

std::size_t AcousticChannel::collect_tags(
    double start_s, double end_s, std::span<EmissionTag> out) const noexcept {
  std::size_t n = 0;
  for (const Emission& e : emissions_) {
    if (e.tag.cause == 0) continue;
    const double e_end =
        e.start_s + static_cast<double>(e.sound.size()) / sample_rate_;
    if (e.start_s < end_s && e_end > start_s) {
      if (n == out.size()) break;  // truncate: fixed listener scratch
      out[n++] = e.tag;
    }
  }
  return n;
}

void AcousticChannel::add_ambient(Waveform sound, bool loop,
                                  double start_time_s) {
  if (sound.sample_rate() != sample_rate_) {
    throw std::invalid_argument("add_ambient: sample rate mismatch");
  }
  if (sound.empty()) return;
  ambient_.push_back(
      {std::move(sound), start_time_s, 0, /*ambient=*/true, loop});
}

Waveform AcousticChannel::render(double start_time_s,
                                 double duration_s) const {
  return render_at(Position{}, start_time_s, duration_s);
}

Waveform AcousticChannel::render_at(Position listener, double start_time_s,
                                    double duration_s) const {
  const auto n = static_cast<std::size_t>(
      std::llround(std::max(0.0, duration_s) * sample_rate_));
  Waveform out(sample_rate_, n);
  if (n == 0) return out;

  const auto mix_emission = [&](const Emission& e) {
    if (e.sound.empty()) return;
    double gain = 1.0;
    double flight_s = 0.0;
    if (!e.ambient) {
      const double d = distance_m(sources_[e.source].position, listener);
      gain = distance_gain(d);
      if (speed_of_sound_ > 0.0) flight_s = d / speed_of_sound_;
    }
    const auto len = static_cast<std::ptrdiff_t>(e.sound.size());
    // Sample index (relative to the emission) aligned with out[0].
    const auto rel0 = static_cast<std::ptrdiff_t>(std::llround(
        (start_time_s - e.start_s - flight_s) * sample_rate_));
    for (std::size_t i = 0; i < n; ++i) {
      std::ptrdiff_t rel = rel0 + static_cast<std::ptrdiff_t>(i);
      if (e.loop) {
        if (rel < 0) rel = (rel % len + len) % len;
        else rel %= len;
      } else if (rel < 0 || rel >= len) {
        continue;
      }
      out[i] += gain * e.sound[static_cast<std::size_t>(rel)];
    }
  };

  for (const auto& e : emissions_) mix_emission(e);
  for (const auto& e : ambient_) mix_emission(e);
  return out;
}

void AcousticChannel::clear_emissions() { emissions_.clear(); }

double AcousticChannel::last_emission_end_s() const noexcept {
  double end = 0.0;
  for (const auto& e : emissions_) {
    end = std::max(end, e.start_s + e.sound.duration_s());
  }
  return end;
}

Microphone::Microphone(const MicrophoneSpec& spec, double sample_rate)
    : spec_(spec), sample_rate_(sample_rate), rng_(spec.seed) {
  if (sample_rate <= 0.0) {
    throw std::invalid_argument("Microphone: sample rate");
  }
}

Waveform Microphone::record(const AcousticChannel& channel,
                            double start_time_s, double duration_s) {
  if (channel.sample_rate() != sample_rate_) {
    throw std::invalid_argument("Microphone::record: sample rate mismatch");
  }
  Waveform w = channel.render_at(spec_.position, start_time_s, duration_s);
  const double lsb =
      spec_.adc_bits > 0 ? spec_.clip_level / std::pow(2.0, spec_.adc_bits - 1)
                         : 0.0;
  for (auto& s : w.samples()) {
    s *= spec_.gain;
    s += spec_.noise_floor_rms * rng_.gaussian();
    s = std::clamp(s, -spec_.clip_level, spec_.clip_level);
    if (lsb > 0.0) s = std::round(s / lsb) * lsb;
  }
  return w;
}

}  // namespace mdn::audio
