// Minimal 16-bit PCM WAV reader/writer, so experiment audio (knock
// sequences, fan recordings, spectrogram inputs) can be exported and
// inspected with standard tools.
#pragma once

#include <string>

#include "audio/waveform.h"

namespace mdn::audio {

/// Writes `w` as mono 16-bit PCM.  Samples are clamped to [-1, 1].
/// Throws std::runtime_error on I/O failure.
void write_wav(const std::string& path, const Waveform& w);

/// Reads a mono or multi-channel 16-bit PCM WAV; multi-channel input is
/// mixed down to mono.  Throws std::runtime_error on malformed files.
Waveform read_wav(const std::string& path);

}  // namespace mdn::audio
