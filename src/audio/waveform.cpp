#include "audio/waveform.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mdn::audio {

void Waveform::append(const Waveform& other) {
  if (other.empty()) return;
  if (sample_rate_ == 0.0) sample_rate_ = other.sample_rate_;
  if (sample_rate_ != other.sample_rate_) {
    throw std::invalid_argument("Waveform::append: sample rate mismatch");
  }
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
}

void Waveform::append_silence(double duration_s) {
  if (duration_s <= 0.0 || sample_rate_ <= 0.0) return;
  const auto n = static_cast<std::size_t>(
      std::llround(duration_s * sample_rate_));
  samples_.insert(samples_.end(), n, 0.0);
}

void Waveform::mix_at(const Waveform& other, std::size_t offset_samples,
                      double gain) {
  if (other.empty()) return;
  if (sample_rate_ == 0.0) sample_rate_ = other.sample_rate_;
  if (sample_rate_ != other.sample_rate_) {
    throw std::invalid_argument("Waveform::mix_at: sample rate mismatch");
  }
  const std::size_t needed = offset_samples + other.size();
  if (samples_.size() < needed) samples_.resize(needed, 0.0);
  for (std::size_t i = 0; i < other.size(); ++i) {
    samples_[offset_samples + i] += gain * other.samples_[i];
  }
}

void Waveform::scale(double gain) noexcept {
  for (auto& s : samples_) s *= gain;
}

void Waveform::normalize(double peak_target) noexcept {
  const double p = peak();
  if (p <= 0.0) return;
  scale(peak_target / p);
}

Waveform Waveform::slice(std::size_t start, std::size_t count) const {
  Waveform out(sample_rate_, count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t src = start + i;
    out.samples_[i] = src < samples_.size() ? samples_[src] : 0.0;
  }
  return out;
}

double Waveform::rms() const noexcept {
  if (samples_.empty()) return 0.0;
  double acc = 0.0;
  for (double s : samples_) acc += s * s;
  return std::sqrt(acc / static_cast<double>(samples_.size()));
}

double Waveform::peak() const noexcept {
  double p = 0.0;
  for (double s : samples_) p = std::max(p, std::abs(s));
  return p;
}

std::size_t Waveform::index_at(double t_s) const noexcept {
  if (t_s <= 0.0 || sample_rate_ <= 0.0) return 0;
  const auto idx =
      static_cast<std::size_t>(std::llround(t_s * sample_rate_));
  return std::min(idx, samples_.empty() ? 0 : samples_.size() - 1);
}

}  // namespace mdn::audio
