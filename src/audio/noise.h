// Noise generators used to model microphone self-noise, office ambience
// and as building blocks of the datacenter fan model.
#pragma once

#include <cstddef>

#include "audio/rng.h"
#include "audio/waveform.h"

namespace mdn::audio {

/// Gaussian white noise with the given RMS amplitude.
Waveform make_white_noise(double duration_s, double rms, double sample_rate,
                          Rng& rng);

/// Pink (1/f) noise via the Voss-McCartney algorithm, scaled to the given
/// RMS.  Office and machine-room ambience is much closer to pink than to
/// white noise.
Waveform make_pink_noise(double duration_s, double rms, double sample_rate,
                         Rng& rng);

/// White noise band-passed to [f_lo, f_hi] with a simple biquad cascade —
/// models the turbulence band of a fan.
Waveform make_band_noise(double duration_s, double rms, double f_lo_hz,
                         double f_hi_hz, double sample_rate, Rng& rng);

/// Second-order biquad filter (direct form I), the primitive used by
/// make_band_noise.  Coefficients follow the Audio-EQ cookbook.
class Biquad {
 public:
  static Biquad low_pass(double cutoff_hz, double q, double sample_rate);
  static Biquad high_pass(double cutoff_hz, double q, double sample_rate);

  double process(double x) noexcept;
  void reset() noexcept;

 private:
  Biquad(double b0, double b1, double b2, double a1, double a2) noexcept;

  double b0_, b1_, b2_, a1_, a2_;
  double x1_ = 0.0, x2_ = 0.0, y1_ = 0.0, y2_ = 0.0;
};

}  // namespace mdn::audio
