// Umbrella header for the mdn_audio library.
#pragma once

#include "audio/channel.h"
#include "audio/fan.h"
#include "audio/noise.h"
#include "audio/resample.h"
#include "audio/rng.h"
#include "audio/song.h"
#include "audio/synth.h"
#include "audio/wav.h"
#include "audio/waveform.h"
