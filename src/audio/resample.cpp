#include "audio/resample.h"

#include <cmath>
#include <stdexcept>

namespace mdn::audio {

Waveform resample_linear(const Waveform& input, double target_rate) {
  if (target_rate <= 0.0) {
    throw std::invalid_argument("resample_linear: target rate");
  }
  if (input.empty() || input.sample_rate() == target_rate) {
    Waveform copy = input;
    return Waveform(target_rate,
                    std::vector<double>(copy.samples().begin(),
                                        copy.samples().end()));
  }

  const double ratio = input.sample_rate() / target_rate;
  const auto out_len = static_cast<std::size_t>(
      std::floor(static_cast<double>(input.size() - 1) / ratio)) + 1;
  Waveform out(target_rate, out_len);
  for (std::size_t i = 0; i < out_len; ++i) {
    const double pos = static_cast<double>(i) * ratio;
    const auto i0 = static_cast<std::size_t>(pos);
    const double frac = pos - static_cast<double>(i0);
    const double a = input[i0];
    const double b = i0 + 1 < input.size() ? input[i0 + 1] : a;
    out[i] = a + (b - a) * frac;
  }
  return out;
}

}  // namespace mdn::audio
