// Sim-time time series over the metrics registry: the missing time
// dimension of fleet runs.
//
// The registry answers "how many packets by the end?"; the timeline
// answers "when did the rate fall off?".  A Timeline resolves a fixed
// set of instruments once (cold), then sample(sim_ns) copies their
// current values into a bounded, preallocated ring of rows — one row
// per sampling tick.  Cadence is the caller's: wire it to the event
// loop with
//
//   loop.schedule_periodic(period, period, [&] {
//     timeline.sample(loop.now());
//     return true;
//   });
//
// (obs cannot depend on net, so the loop hook lives caller-side.)
//
// Rules, mirroring the tracer/journal contracts:
//
//   1. sample() is MDN_REALTIME: relaxed atomic loads + array stores
//      into storage laid out at track_*() time — no allocation, no
//      locks, machine-checked by scripts/mdn_lint.py.  One writer (the
//      owner/event-loop thread) calls it; rows beyond capacity
//      overwrite the oldest and are counted in dropped().
//   2. Derivation happens at export time: windowed rates (pps,
//      detections/s, drops/s) and min/max/last rollups are computed
//      from the resident rows, never maintained on the hot path.
//   3. Canonical export: to_timeline_jsonl() renders rows oldest-first
//      with tracks in registration order.  Registration and cadence are
//      sim-deterministic, so for sim-deterministic instruments the
//      bytes are identical across worker counts (golden-diffed in
//      tests/obs/test_journal_determinism.cpp).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/annotations.h"
#include "obs/metrics.h"

namespace mdn::obs {

struct TimelineOptions {
  std::size_t capacity = 512;  ///< rows retained (ring; 0 clamps to 1)
};

class Timeline {
 public:
  explicit Timeline(TimelineOptions options = {});
  Timeline(const Timeline&) = delete;
  Timeline& operator=(const Timeline&) = delete;

  /// Cold setup: registers an instrument under `name` and lays out its
  /// column.  Must complete before the first sample() (enforced:
  /// throws std::logic_error after sampling started).
  void track_counter(std::string_view name, const Counter& counter);
  void track_gauge(std::string_view name, const Gauge& gauge);
  /// Convenience: resolve from a registry by hierarchical name (the
  /// timeline track keeps the same name).
  void track_counter(Registry& registry, const std::string& name);
  void track_gauge(Registry& registry, const std::string& name);

  std::size_t track_count() const noexcept { return tracks_.size(); }
  const std::string& track_name(std::size_t track) const {
    return tracks_.at(track).name;
  }

  /// Samples every tracked instrument at sim time `sim_ns` into the
  /// next ring row.  Alloc-free single-writer hot path.
  MDN_REALTIME void sample(std::int64_t sim_ns) noexcept;

  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t size() const noexcept;       ///< resident rows
  std::uint64_t sampled() const noexcept { return sampled_; }
  /// Rows overwritten because the ring was full.
  std::uint64_t dropped() const noexcept;

  /// Row access, row 0 = oldest resident.
  std::int64_t time_at(std::size_t row) const;
  double value_at(std::size_t row, std::size_t track) const;

  /// Windowed derivation over the resident rows.
  struct Rollup {
    double first = 0.0;
    double last = 0.0;
    double min = 0.0;
    double max = 0.0;
    double delta = 0.0;       ///< last - first
    double rate_per_s = 0.0;  ///< delta / window seconds (0 if degenerate)
  };
  Rollup rollup(std::size_t track) const;

  /// Canonical timeline.jsonl: one JSON object per resident row, oldest
  /// first — {"t_ns":...,"values":{"<track>":...}} with tracks in
  /// registration order.
  std::string to_timeline_jsonl() const;

  /// Prometheus rollup families (schema-linted by scripts/lint_prom.py):
  ///   mdn_timeline_samples / mdn_timeline_dropped      gauge
  ///   mdn_timeline_last{track=...}                     gauge
  ///   mdn_timeline_min{track=...} / _max{track=...}    gauge
  ///   mdn_timeline_rate_per_second{track=...}          gauge
  std::string to_prometheus() const;

  /// Dashboard panel: one sparkline row per track over the resident
  /// window, with min/max/last/rate.
  std::string render_sparklines(std::size_t width = 48) const;

  /// Drops all rows; keeps tracks and storage.
  void clear() noexcept;

 private:
  struct Track {
    std::string name;
    const Counter* counter = nullptr;  // exactly one of these is set
    const Gauge* gauge = nullptr;
  };

  void add_track(Track track);
  double read(const Track& track) const noexcept {
    return track.counter != nullptr
               ? static_cast<double>(track.counter->value())
               : static_cast<double>(track.gauge->value());
  }
  std::size_t row_slot(std::size_t row) const noexcept;

  std::size_t capacity_;
  std::vector<Track> tracks_;
  std::vector<std::int64_t> times_;  ///< capacity_ entries
  std::vector<double> values_;       ///< capacity_ x tracks_ entries
  std::uint64_t sampled_ = 0;
};

}  // namespace mdn::obs
