// Umbrella header for mdn::obs — the observability layer.
//
//   metrics.h    counters / gauges / log-bucketed histograms, Registry
//   trace.h      sim-time spans and instant events (per-EventLoop Tracer)
//   journal.h    causal provenance journal (CauseId flight recorder)
//   latency.h    per-stage latency attribution over journal cause chains
//   timeline.h   bounded sim-time sampling of registry instruments
//   health.h     per-mic signal estimators + SLO/alert engine
//   scoreboard.h emitted-vs-detected ground-truth reconciliation
//   export.h     Prometheus text, JSONL, JSON, Chrome trace_event JSON,
//                canonical journal.jsonl
//
// Metric naming scheme: hierarchical slash-separated paths,
// "<layer>/<component>[/<instance>]/<quantity>[_<unit>]", e.g.
//   net/loop/events_dispatched        counter
//   net/loop/callback_wall_ns         histogram
//   net/switch/s1/forwarded           counter
//   net/switch/s1/port0/queue_depth   gauge
//   dsp/fft/wall_ns                   histogram (Fig 2b comes from this)
//   mdn/controller/blocks             counter
//   mp/bridge/tones_played            counter
#pragma once

#include "obs/export.h"
#include "obs/health.h"
#include "obs/journal.h"
#include "obs/latency.h"
#include "obs/metrics.h"
#include "obs/scoreboard.h"
#include "obs/timeline.h"
#include "obs/trace.h"
