#include "obs/journal.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

namespace mdn::obs {
namespace {

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

/// Content key ignoring ids: the canonical export order.  Kind rank
/// follows the pipeline (emitted < dropped < detected < ... < flow_mod)
/// so a cause sorts before its effect at equal sim time.
bool content_before(const JournalRecord& a, const JournalRecord& b) {
  if (a.sim_ns != b.sim_ns) return a.sim_ns < b.sim_ns;
  if (a.kind != b.kind) return a.kind < b.kind;
  if (a.mic != b.mic) return a.mic < b.mic;
  if (a.watch != b.watch) return a.watch < b.watch;
  if (a.frequency_hz != b.frequency_hz) return a.frequency_hz < b.frequency_hz;
  if (a.aux != b.aux) return a.aux < b.aux;
  if (a.value != b.value) return a.value < b.value;
  return std::strcmp(a.label, b.label) < 0;
}

}  // namespace

std::string_view journal_kind_name(JournalKind kind) noexcept {
  switch (kind) {
    case JournalKind::kToneEmitted: return "tone_emitted";
    case JournalKind::kBlockIngested: return "block_ingested";
    case JournalKind::kBlockDropped: return "block_dropped";
    case JournalKind::kToneDetected: return "tone_detected";
    case JournalKind::kMergedEvent: return "merged_event";
    case JournalKind::kFsmTransition: return "fsm_transition";
    case JournalKind::kAppAction: return "app_action";
    case JournalKind::kFlowMod: return "flow_mod";
    case JournalKind::kHealthAlert: return "health_alert";
  }
  return "unknown";
}

void set_journal_label(JournalRecord& record,
                       std::string_view label) noexcept {
  const std::size_t n = std::min(label.size(), sizeof(record.label) - 1);
  std::memcpy(record.label, label.data(), n);
  record.label[n] = '\0';
}

Journal& Journal::global() {
  static Journal journal;
  return journal;
}

void Journal::enable(std::size_t capacity) {
  common::MutexLock lock(mu_);
  if (capacity == 0) capacity = 1;
  if (slots_.size() != capacity) {
    slots_.assign(capacity, JournalRecord{});
  } else {
    std::fill(slots_.begin(), slots_.end(), JournalRecord{});
  }
  next_id_ = 1;
  // mo: flipped at quiescent setup points, never mid-append
  enabled_.store(true, std::memory_order_relaxed);
}

void Journal::disable() noexcept {
  // mo: flipped at quiescent teardown points, never mid-append
  enabled_.store(false, std::memory_order_relaxed);
}

void Journal::clear() noexcept {
  common::MutexLock lock(mu_);
  std::fill(slots_.begin(), slots_.end(), JournalRecord{});
  next_id_ = 1;
}

CauseId Journal::append(const JournalRecord& record) {
  if (!enabled()) return 0;
  common::MutexLock lock(mu_);
  if (slots_.empty()) return 0;  // enabled() raced a disable+shrink
  const std::uint64_t id = next_id_++;
  JournalRecord& slot = slots_[(id - 1) % slots_.size()];
  slot = record;
  slot.id = id;
  return id;
}

bool Journal::find(CauseId id, JournalRecord* out) const {
  if (id == 0) return false;
  common::MutexLock lock(mu_);
  if (slots_.empty() || id >= next_id_) return false;
  const JournalRecord& slot = slots_[(id - 1) % slots_.size()];
  if (slot.id != id) return false;  // evicted
  *out = slot;
  return true;
}

std::vector<JournalRecord> Journal::snapshot() const {
  common::MutexLock lock(mu_);
  std::vector<JournalRecord> out;
  if (slots_.empty() || next_id_ == 1) return out;
  const std::uint64_t last = next_id_ - 1;
  const std::uint64_t count = std::min<std::uint64_t>(last, slots_.size());
  out.reserve(count);
  for (std::uint64_t id = last - count + 1; id <= last; ++id) {
    out.push_back(slots_[(id - 1) % slots_.size()]);
  }
  return out;
}

std::vector<JournalRecord> Journal::explain(CauseId action) const {
  std::vector<JournalRecord> chain;
  std::vector<CauseId> frontier{action};
  std::vector<CauseId> seen;
  constexpr std::size_t kMaxChain = 256;
  while (!frontier.empty() && chain.size() < kMaxChain) {
    const CauseId id = frontier.back();
    frontier.pop_back();
    if (id == 0) continue;
    if (std::find(seen.begin(), seen.end(), id) != seen.end()) continue;
    seen.push_back(id);
    JournalRecord record;
    if (!find(id, &record)) continue;
    chain.push_back(record);
    frontier.push_back(record.cause);
    frontier.push_back(record.cause2);
  }
  std::sort(chain.begin(), chain.end(),
            [](const JournalRecord& a, const JournalRecord& b) {
              if (a.sim_ns != b.sim_ns) return a.sim_ns < b.sim_ns;
              return a.id < b.id;
            });
  return chain;
}

std::vector<CauseId> Journal::recent_of(JournalKind kind,
                                        std::size_t n) const {
  const auto records = snapshot();
  std::vector<CauseId> out;
  for (auto it = records.rbegin(); it != records.rend() && out.size() < n;
       ++it) {
    if (it->kind == kind) out.push_back(it->id);
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::uint64_t Journal::appended() const {
  common::MutexLock lock(mu_);
  return next_id_ - 1;
}

std::uint64_t Journal::evicted() const {
  common::MutexLock lock(mu_);
  const std::uint64_t total = next_id_ - 1;
  return total > slots_.size() ? total - slots_.size() : 0;
}

std::size_t Journal::size() const {
  common::MutexLock lock(mu_);
  const std::uint64_t total = next_id_ - 1;
  return static_cast<std::size_t>(
      std::min<std::uint64_t>(total, slots_.size()));
}

std::size_t Journal::capacity() const {
  common::MutexLock lock(mu_);
  return slots_.size();
}

std::string to_journal_jsonl(const Journal& journal) {
  return to_journal_jsonl(journal.snapshot());
}

std::string to_journal_jsonl(std::vector<JournalRecord> records) {
  // Canonical order is by content, not by mint order: producer-side and
  // delivery-side mints interleave differently across worker counts, but
  // the set of records (and their causal links) is identical.
  std::stable_sort(records.begin(), records.end(), content_before);
  // Renumber to line order and rewrite causal links through the map;
  // links to evicted (absent) records become 0.
  std::vector<std::pair<CauseId, std::uint64_t>> id_map;
  id_map.reserve(records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    id_map.emplace_back(records[i].id, i + 1);
  }
  std::sort(id_map.begin(), id_map.end());
  const auto remap = [&id_map](CauseId id) -> std::uint64_t {
    const auto it = std::lower_bound(
        id_map.begin(), id_map.end(), std::make_pair(id, std::uint64_t{0}));
    return (it != id_map.end() && it->first == id) ? it->second : 0;
  };

  std::string out;
  out.reserve(records.size() * 160);
  for (std::size_t i = 0; i < records.size(); ++i) {
    const JournalRecord& r = records[i];
    out += "{\"id\":" + std::to_string(i + 1);
    out += ",\"kind\":\"";
    out += journal_kind_name(r.kind);
    out += "\",\"sim_ns\":" + std::to_string(r.sim_ns);
    out += ",\"cause\":" + std::to_string(remap(r.cause));
    out += ",\"cause2\":" + std::to_string(remap(r.cause2));
    out += ",\"mic\":" +
           std::to_string(r.mic == kJournalNoMic
                              ? -1
                              : static_cast<std::int64_t>(r.mic));
    out += ",\"watch\":" + std::to_string(r.watch);
    out += ",\"frequency_hz\":" + format_double(r.frequency_hz);
    out += ",\"value\":" + format_double(r.value);
    out += ",\"aux\":" + std::to_string(r.aux);
    out += ",\"label\":\"";
    out += r.label;  // labels are plain component tags, no escapes needed
    out += "\"}\n";
  }
  return out;
}

std::string explain_text(const Journal& journal, CauseId action) {
  std::string out;
  char buf[160];
  for (const JournalRecord& r : journal.explain(action)) {
    std::string detail;
    if (r.frequency_hz > 0.0) {
      detail += " " + format_double(r.frequency_hz) + " Hz";
    }
    if (r.mic != kJournalNoMic) detail += " mic=" + std::to_string(r.mic);
    if (r.watch >= 0) detail += " watch=" + std::to_string(r.watch);
    if (r.kind == JournalKind::kFsmTransition) {
      detail += " " + std::to_string(r.aux >> 32) + "->" +
                std::to_string(r.aux & 0xffffffffu);
    }
    if (r.kind == JournalKind::kFlowMod) {
      detail += " dpid=" + std::to_string(r.aux);
    }
    if (r.kind == JournalKind::kHealthAlert) {
      detail += " " + std::to_string((r.aux >> 8) & 0xffu) + "->" +
                std::to_string(r.aux & 0xffu);
    }
    std::string links;
    if (r.cause != 0) links += " <- #" + std::to_string(r.cause);
    if (r.cause2 != 0) links += ", #" + std::to_string(r.cause2);
    std::snprintf(buf, sizeof(buf), "  t=%9.4fs  %-14s %-13s%s  (#%llu%s)\n",
                  static_cast<double>(r.sim_ns) / 1e9,
                  std::string(journal_kind_name(r.kind)).c_str(), r.label,
                  detail.c_str(), static_cast<unsigned long long>(r.id),
                  links.c_str());
    out += buf;
  }
  return out;
}

}  // namespace mdn::obs
