// The acoustic flight recorder: a bounded, allocation-lean journal of
// causally linked events across every layer of the stack.
//
// The paper's controller *hears* management state and acts on it; the
// journal answers "why did this FlowMod happen?" and "which emitted
// tones did we actually hear, and how late?" (§3's emitted-vs-detected
// accounting).  Every hop mints one JournalRecord carrying the id of
// the record that caused it:
//
//   mp::PiSpeakerBridge       kToneEmitted    (ground truth: sim_ns, Hz)
//        │ EmissionTag rides the audio::AcousticChannel emission and the
//        │ recorded block metadata (BlockSink / rt::AudioBlock)
//   MdnController / rt submit kBlockIngested  (a tagged block was captured;
//        │                    cause = first tagged emission, aux = seq)
//   rt::StreamRuntime         kBlockDropped   (backpressure ate a tone)
//   MdnController / rt poll   kToneDetected   (cause = the emission,
//                                              cause2 = the block ingest)
//   core::MicArray            kMergedEvent
//   core::MusicFsm            kFsmTransition  (cause2 = previous step)
//   HH / TE apps              kAppAction
//   sdn::ControlChannel       kFlowMod        (the actuation)
//   obs::Health               kHealthAlert    (SLO transition; cause =
//        the detection / emission / drop that tripped the rule)
//
// Journal::explain(action_id) walks cause/cause2 links back to the
// emitted tones, reconstructing e.g. the full §4 knock chain: 3 tones →
// 3 detections → 3 FSM transitions → 1 FlowMod.
//
// Disabled-cost rule (same contract as obs::Tracer): when the journal
// is disabled every instrumentation site reduces to a single relaxed
// atomic load and branch — no locks, no allocation, no record.  When
// enabled, append() writes into a preallocated ring under a mutex and
// evicts the oldest record on overflow, so steady state stays
// allocation-free either way (audited in tests/rt/test_rt_alloc.cpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.h"

namespace mdn::obs {

/// Id of a journal record, used as the causal link between layers.
/// 0 means "no cause" (a root event, or the journal was disabled).
using CauseId = std::uint64_t;

enum class JournalKind : std::uint8_t {
  kToneEmitted = 0,   ///< bridge scheduled a tone on the channel
  kBlockIngested = 1, ///< a tagged block entered the pipeline (aux = seq)
  kBlockDropped = 2,  ///< rt backpressure discarded a block (drop attribution)
  kToneDetected = 3,  ///< onset matched a watch (inline or rt merge)
  kMergedEvent = 4,   ///< MicArray fused hearings into one event
  kFsmTransition = 5, ///< MusicFsm edge taken (aux = from<<32 | to)
  kAppAction = 6,     ///< application-level decision (alert, balance, ...)
  kFlowMod = 7,       ///< ControlChannel actuation (aux = dpid)
  kHealthAlert = 8,   ///< obs::Health state transition (aux = rule<<32|from<<8|to)
};

/// Number of JournalKind values (for per-kind tables; the enum is dense).
inline constexpr std::size_t kJournalKindCount = 9;

/// Stable lowercase name ("tone_emitted", "flow_mod", ...).
std::string_view journal_kind_name(JournalKind kind) noexcept;

/// `mic` value for records with no microphone identity.
inline constexpr std::uint32_t kJournalNoMic = 0xffffffffu;

/// One journal entry.  Plain data with a fixed-size label so minting
/// never allocates; `value` and `aux` carry kind-specific payload
/// (amplitude / SPL / symbol, sequence number / dpid / state pair).
struct JournalRecord {
  std::uint64_t id = 0;   ///< assigned by append(); monotonically increasing
  CauseId cause = 0;      ///< primary upstream record (0 = root)
  CauseId cause2 = 0;     ///< secondary link (e.g. the previous FSM step)
  std::int64_t sim_ns = 0;
  double frequency_hz = 0.0;
  double value = 0.0;
  std::uint64_t aux = 0;
  std::uint32_t mic = kJournalNoMic;
  std::int32_t watch = -1;  ///< watch-list index, -1 when not applicable
  JournalKind kind = JournalKind::kToneEmitted;
  char label[23] = {};      ///< component tag, truncated, NUL-terminated
};

/// Copies (and truncates) `label` into the record's fixed buffer.
void set_journal_label(JournalRecord& record, std::string_view label) noexcept;

class Journal {
 public:
  Journal() = default;
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// The process-wide journal every subsystem mints into by default.
  static Journal& global();

  /// Allocates the record ring (once) and starts recording.  Re-enabling
  /// with a different capacity reallocates; records already held are
  /// discarded.
  void enable(std::size_t capacity = 65536);

  /// Stops recording.  Held records stay readable until clear()/enable().
  void disable() noexcept;

  /// The single branch every instrumentation site checks first.
  bool enabled() const noexcept {
    // mo: hot-path flag check; enable/disable happen at quiescent points
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Drops every record and restarts ids at 1; keeps capacity and the
  /// enabled flag.
  void clear() noexcept;

  /// Mints a record: assigns the next id, stores a copy in the ring
  /// (evicting the oldest on overflow) and returns the id — 0 when the
  /// journal is disabled.  Thread-safe; no allocation.  The bounded
  /// critical section is the one allowlisted lock on the real-time path
  /// (scripts/mdn_lint_allowlist.txt).
  MDN_REALTIME CauseId append(const JournalRecord& record);

  /// Copies the record with `id` into `*out`; false when the id is 0,
  /// unknown, or already evicted.
  bool find(CauseId id, JournalRecord* out) const;

  /// Every resident record, ascending by id.
  std::vector<JournalRecord> snapshot() const;

  /// The causal chain of `action`: the record itself plus everything
  /// reachable through cause/cause2 links, ascending by (sim_ns, id).
  /// Evicted links terminate silently; empty when `action` is unknown.
  std::vector<JournalRecord> explain(CauseId action) const;

  /// Ids of the most recent `n` resident records of `kind`, oldest
  /// first.
  std::vector<CauseId> recent_of(JournalKind kind, std::size_t n) const;

  std::uint64_t appended() const;  ///< total minted, including evicted
  std::uint64_t evicted() const;
  std::size_t size() const;        ///< resident records
  std::size_t capacity() const;

 private:
  mutable common::Mutex mu_;
  std::atomic<bool> enabled_{false};
  // Ring: id -> slots_[(id-1) % cap].
  std::vector<JournalRecord> slots_ MDN_GUARDED_BY(mu_);
  std::uint64_t next_id_ MDN_GUARDED_BY(mu_) = 1;
};

/// Canonical journal.jsonl: one JSON object per record.  Records are
/// re-ordered by content (sim_ns, kind, mic, watch, ...), ids are
/// renumbered to line order and cause links rewritten, so two runs that
/// minted the same events in different thread interleavings produce
/// byte-identical output — the determinism contract checked in
/// tests/obs.
std::string to_journal_jsonl(const Journal& journal);
std::string to_journal_jsonl(std::vector<JournalRecord> records);

/// Human-readable explain(action) dump, one record per line, ascending
/// in sim time ("t=1.250s tone_emitted 980 Hz ... (#3)").
std::string explain_text(const Journal& journal, CauseId action);

}  // namespace mdn::obs
