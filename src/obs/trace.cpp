#include "obs/trace.h"

namespace mdn::obs {

void Tracer::set_capacity(std::size_t cap) {
  capacity_ = cap;
  if (cap != 0) {
    if (events_.size() > cap) events_.resize(cap);
    events_.reserve(cap);
  }
}

std::uint32_t Tracer::track(std::string_view name) {
  for (std::size_t i = 0; i < tracks_.size(); ++i) {
    if (tracks_[i] == name) return static_cast<std::uint32_t>(i);
  }
  tracks_.emplace_back(name);
  return static_cast<std::uint32_t>(tracks_.size() - 1);
}

void Tracer::instant(std::string_view name, std::uint32_t track,
                     std::int64_t sim_ns) {
  if (!enabled_ || !has_room()) return;
  TraceEvent ev;
  ev.name.assign(name);
  ev.phase = 'i';
  ev.track = track;
  ev.sim_ns = sim_ns;
  ev.wall_ns = clock_();
  events_.push_back(std::move(ev));
}

void Tracer::complete(std::string_view name, std::uint32_t track,
                      std::int64_t sim_ns, std::int64_t wall_start_ns,
                      std::int64_t wall_dur_ns) {
  if (!enabled_ || !has_room()) return;
  TraceEvent ev;
  ev.name.assign(name);
  ev.phase = 'X';
  ev.track = track;
  ev.sim_ns = sim_ns;
  ev.wall_ns = wall_start_ns;
  ev.wall_dur_ns = wall_dur_ns;
  events_.push_back(std::move(ev));
}

}  // namespace mdn::obs
