#include "obs/latency.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

namespace mdn::obs {
namespace {

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

/// Same content key as the canonical journal export: profile order must
/// not depend on mint order, which varies with worker interleaving.
bool content_before(const JournalRecord& a, const JournalRecord& b) {
  if (a.sim_ns != b.sim_ns) return a.sim_ns < b.sim_ns;
  if (a.kind != b.kind) return a.kind < b.kind;
  if (a.mic != b.mic) return a.mic < b.mic;
  if (a.watch != b.watch) return a.watch < b.watch;
  if (a.frequency_hz != b.frequency_hz) return a.frequency_hz < b.frequency_hz;
  if (a.aux != b.aux) return a.aux < b.aux;
  if (a.value != b.value) return a.value < b.value;
  return std::strcmp(a.label, b.label) < 0;
}

}  // namespace

std::string_view latency_stage_name(LatencyStage stage) noexcept {
  switch (stage) {
    case LatencyStage::kUpstreamWait: return "upstream_wait";
    case LatencyStage::kCapture: return "capture";
    case LatencyStage::kRingWait: return "ring_wait";
    case LatencyStage::kDetect: return "detect";
    case LatencyStage::kMerge: return "merge";
    case LatencyStage::kFsm: return "fsm";
    case LatencyStage::kApp: return "app";
    case LatencyStage::kActuate: return "actuate";
    case LatencyStage::kHealth: return "health";
    case LatencyStage::kDrop: return "drop";
  }
  return "unknown";
}

LatencyStage latency_stage_of(JournalKind from, JournalKind to) noexcept {
  switch (to) {
    case JournalKind::kToneEmitted: return LatencyStage::kUpstreamWait;
    case JournalKind::kBlockIngested: return LatencyStage::kCapture;
    case JournalKind::kToneDetected:
      return from == JournalKind::kBlockIngested ? LatencyStage::kRingWait
                                                 : LatencyStage::kDetect;
    case JournalKind::kMergedEvent: return LatencyStage::kMerge;
    case JournalKind::kFsmTransition: return LatencyStage::kFsm;
    case JournalKind::kAppAction: return LatencyStage::kApp;
    case JournalKind::kFlowMod: return LatencyStage::kActuate;
    case JournalKind::kHealthAlert: return LatencyStage::kHealth;
    case JournalKind::kBlockDropped: return LatencyStage::kDrop;
  }
  return LatencyStage::kUpstreamWait;
}

std::size_t Breakdown::distinct_stages() const noexcept {
  bool seen[kLatencyStageCount] = {};
  for (const BreakdownHop& hop : hops) {
    seen[static_cast<std::size_t>(hop.stage)] = true;
  }
  std::size_t n = 0;
  for (bool s : seen) n += s ? 1 : 0;
  return n;
}

std::string Breakdown::render() const {
  std::string out;
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "  waterfall action #%llu  total %.6fs  (%zu hops, %zu "
                "stages)\n",
                static_cast<unsigned long long>(action),
                static_cast<double>(total_ns) / 1e9, hops.size(),
                distinct_stages());
  out += buf;
  constexpr int kBarWidth = 32;
  for (const BreakdownHop& hop : hops) {
    int bar = 0;
    if (total_ns > 0) {
      bar = static_cast<int>((hop.delta_ns * kBarWidth) / total_ns);
    }
    std::snprintf(buf, sizeof(buf),
                  "    t=%9.4fs  %-13s %+11.6fs  %-14s %-*.*s (#%llu)\n",
                  static_cast<double>(hop.to.sim_ns) / 1e9,
                  std::string(latency_stage_name(hop.stage)).c_str(),
                  static_cast<double>(hop.delta_ns) / 1e9,
                  std::string(journal_kind_name(hop.to.kind)).c_str(),
                  kBarWidth, bar, "################################",
                  static_cast<unsigned long long>(hop.to.id));
    out += buf;
  }
  return out;
}

Breakdown LatencyProfiler::breakdown(CauseId action) const {
  Breakdown b;
  const auto chain = journal_.explain(action);
  if (chain.empty()) return b;
  b.action = action;
  b.total_ns = chain.back().sim_ns - chain.front().sim_ns;
  b.hops.reserve(chain.size() - 1);
  for (std::size_t i = 1; i < chain.size(); ++i) {
    BreakdownHop hop;
    hop.stage = latency_stage_of(chain[i - 1].kind, chain[i].kind);
    hop.from = chain[i - 1];
    hop.to = chain[i];
    hop.delta_ns = chain[i].sim_ns - chain[i - 1].sim_ns;
    b.stage_ns[static_cast<std::size_t>(hop.stage)] += hop.delta_ns;
    b.hops.push_back(hop);
  }
  return b;
}

std::size_t LatencyProfiler::profile(JournalKind kind) {
  auto records = journal_.snapshot();
  records.erase(std::remove_if(records.begin(), records.end(),
                               [kind](const JournalRecord& r) {
                                 return r.kind != kind;
                               }),
                records.end());
  std::stable_sort(records.begin(), records.end(), content_before);
  for (const JournalRecord& r : records) profile_action(r.id);
  return records.size();
}

void LatencyProfiler::profile_action(CauseId action) {
  const Breakdown b = breakdown(action);
  if (b.hops.empty()) return;
  for (const BreakdownHop& hop : b.hops) {
    hists_[static_cast<std::size_t>(hop.stage)].record(
        static_cast<double>(hop.delta_ns));
  }
  actions_.push_back(action);
}

LatencyProfiler::StageStats LatencyProfiler::stage_stats(
    LatencyStage stage) const {
  const Histogram& hist = hists_[static_cast<std::size_t>(stage)];
  const HistogramSnapshot snap = hist.snapshot();
  StageStats stats;
  stats.stage = stage;
  stats.count = snap.count;
  stats.p50_ns = snap.quantile(0.5);
  stats.p99_ns = snap.quantile(0.99);
  stats.max_ns = snap.count == 0 ? 0.0 : snap.max;
  stats.sum_ns = snap.sum;
  return stats;
}

std::vector<LatencyProfiler::StageStats> LatencyProfiler::summary() const {
  std::vector<StageStats> out;
  for (std::size_t s = 0; s < kLatencyStageCount; ++s) {
    StageStats stats = stage_stats(static_cast<LatencyStage>(s));
    if (stats.count == 0) continue;
    out.push_back(stats);
  }
  return out;
}

LatencyProfiler::StageStats LatencyProfiler::slowest_stage() const {
  StageStats slowest;
  for (const StageStats& stats : summary()) {
    if (slowest.count == 0 || stats.p99_ns > slowest.p99_ns) {
      slowest = stats;
    }
  }
  return slowest;
}

std::string LatencyProfiler::render() const {
  std::string out;
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "latency attribution: %zu action(s) profiled\n",
                actions_.size());
  out += buf;
  out += "  stage             count     p50_ms     p99_ms     max_ms"
         "   total_ms\n";
  for (const StageStats& stats : summary()) {
    std::snprintf(buf, sizeof(buf),
                  "  %-14s %8llu %10.4f %10.4f %10.4f %10.3f\n",
                  std::string(latency_stage_name(stats.stage)).c_str(),
                  static_cast<unsigned long long>(stats.count),
                  stats.p50_ns / 1e6, stats.p99_ns / 1e6, stats.max_ns / 1e6,
                  stats.sum_ns / 1e6);
    out += buf;
  }
  const StageStats slowest = slowest_stage();
  if (slowest.count != 0) {
    std::snprintf(buf, sizeof(buf), "  slowest stage: %s (p99 %.4f ms)\n",
                  std::string(latency_stage_name(slowest.stage)).c_str(),
                  slowest.p99_ns / 1e6);
    out += buf;
  }
  return out;
}

std::string LatencyProfiler::to_prometheus() const {
  std::string out;
  const auto family = [&out](std::string_view name) {
    out += "# TYPE mdn_latency_stage_";
    out += name;
    out += " gauge\n";
  };
  const auto samples = [this, &out](std::string_view name, auto value) {
    for (std::size_t s = 0; s < kLatencyStageCount; ++s) {
      const StageStats stats = stage_stats(static_cast<LatencyStage>(s));
      if (stats.count == 0) continue;
      out += "mdn_latency_stage_";
      out += name;
      out += "{stage=\"";
      out += latency_stage_name(stats.stage);
      out += "\"} " + value(stats) + "\n";
    }
  };
  family("count");
  samples("count", [](const StageStats& s) {
    return std::to_string(s.count);
  });
  family("p50_seconds");
  samples("p50_seconds", [](const StageStats& s) {
    return format_double(s.p50_ns / 1e9);
  });
  family("p99_seconds");
  samples("p99_seconds", [](const StageStats& s) {
    return format_double(s.p99_ns / 1e9);
  });
  family("max_seconds");
  samples("max_seconds", [](const StageStats& s) {
    return format_double(s.max_ns / 1e9);
  });
  family("sum_seconds");
  samples("sum_seconds", [](const StageStats& s) {
    return format_double(s.sum_ns / 1e9);
  });
  out += "# TYPE mdn_latency_actions_profiled gauge\n";
  out += "mdn_latency_actions_profiled " + std::to_string(actions_.size()) +
         "\n";
  return out;
}

void LatencyProfiler::clear() {
  for (Histogram& hist : hists_) hist.reset();
  actions_.clear();
}

std::string to_chrome_trace_waterfall(const LatencyProfiler& profiler) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  char buf[64];
  const auto format_ts = [&buf](std::int64_t sim_ns) {
    std::snprintf(buf, sizeof(buf), "%.3f",
                  static_cast<double>(sim_ns) / 1000.0);
    return std::string(buf);
  };
  bool stage_present[kLatencyStageCount] = {};
  std::vector<Breakdown> breakdowns;
  breakdowns.reserve(profiler.actions().size());
  for (CauseId action : profiler.actions()) {
    breakdowns.push_back(profiler.breakdown(action));
    for (const BreakdownHop& hop : breakdowns.back().hops) {
      stage_present[static_cast<std::size_t>(hop.stage)] = true;
    }
  }
  for (std::size_t s = 0; s < kLatencyStageCount; ++s) {
    if (!stage_present[s]) continue;
    if (!first) out += ',';
    first = false;
    out += "{\"ph\":\"M\",\"pid\":0,\"tid\":" + std::to_string(s) +
           ",\"name\":\"thread_name\",\"args\":{\"name\":\"latency/" +
           std::string(latency_stage_name(static_cast<LatencyStage>(s))) +
           "\"}}";
  }
  for (const Breakdown& b : breakdowns) {
    for (const BreakdownHop& hop : b.hops) {
      if (!first) out += ',';
      first = false;
      out += "{\"ph\":\"X\",\"pid\":0,\"tid\":" +
             std::to_string(static_cast<std::size_t>(hop.stage)) +
             ",\"name\":\"";
      out += latency_stage_name(hop.stage);
      out += "\",\"ts\":" + format_ts(hop.from.sim_ns) +
             ",\"dur\":" + format_ts(hop.delta_ns) +
             ",\"args\":{\"action\":" + std::to_string(b.action) +
             ",\"from\":" + std::to_string(hop.from.id) +
             ",\"to\":" + std::to_string(hop.to.id) + "}}";
    }
  }
  out += "]}";
  return out;
}

}  // namespace mdn::obs
