// Latency attribution over journal cause chains: *where* do the
// microseconds go between a tone leaving the speaker and the FlowMod
// leaving the controller?
//
// The scoreboard (obs/scoreboard.h) reports one end-to-end latency per
// (mic, watch); this profiler splits that interval into pipeline stages
// by walking Journal::explain(action) — the chain ascending in sim time
// — and attributing each consecutive hop's sim-time delta to a stage
// named by the (from, to) record kinds:
//
//   ... -> kToneEmitted      upstream_wait  (gap before the next tone)
//   kToneEmitted -> kBlockIngested   capture   (tone start -> block end)
//   kBlockIngested -> kToneDetected  ring_wait (ingest -> merged onset)
//   kToneEmitted -> kToneDetected    detect    (no ingest record minted)
//   ... -> kMergedEvent      merge
//   ... -> kFsmTransition    fsm
//   ... -> kAppAction        app
//   ... -> kFlowMod          actuate
//   ... -> kHealthAlert      health
//   ... -> kBlockDropped     drop
//
// Deltas telescope: the per-stage sums of breakdown(action) add up
// exactly to action.sim_ns - root.sim_ns (asserted for the §4 knock in
// tests/apps/test_port_knocking.cpp).  Note that in *sim* time the
// ingest and detection records of one block share a timestamp (both are
// stamped at block end), so ring_wait is structurally 0 here — the
// wall-clock ring wait lives in the rt/worker histograms; the stage
// exists so the taxonomy (and the SLO hook) covers it when the rt
// runtime gains sim-visible queueing delay.
//
// Contract, mirroring the journal's: attribution runs at poll()/export
// time over a snapshot — never in append(), never on the audio hot
// path.  All inputs are sim-time deterministic, and profile() visits
// actions in canonical content order, so the per-stage histograms (and
// everything rendered from them) are byte-identical across worker
// counts (golden-diffed in tests/obs/test_journal_determinism.cpp).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/journal.h"
#include "obs/metrics.h"

namespace mdn::obs {

enum class LatencyStage : std::uint8_t {
  kUpstreamWait = 0,  ///< anything -> kToneEmitted
  kCapture = 1,       ///< kToneEmitted -> kBlockIngested
  kRingWait = 2,      ///< kBlockIngested -> kToneDetected
  kDetect = 3,        ///< kToneEmitted -> kToneDetected (no ingest)
  kMerge = 4,         ///< -> kMergedEvent
  kFsm = 5,           ///< -> kFsmTransition
  kApp = 6,           ///< -> kAppAction
  kActuate = 7,       ///< -> kFlowMod
  kHealth = 8,        ///< -> kHealthAlert
  kDrop = 9,          ///< -> kBlockDropped
};

inline constexpr std::size_t kLatencyStageCount = 10;

/// Stable lowercase name ("upstream_wait", "capture", ...).
std::string_view latency_stage_name(LatencyStage stage) noexcept;

/// The stage a hop (from -> to) attributes to.
LatencyStage latency_stage_of(JournalKind from, JournalKind to) noexcept;

/// One consecutive hop of a breakdown's critical path.
struct BreakdownHop {
  LatencyStage stage = LatencyStage::kUpstreamWait;
  JournalRecord from;
  JournalRecord to;
  std::int64_t delta_ns = 0;
};

/// The critical-path waterfall of one action: every chain hop in sim
/// order plus per-stage totals.  stage_ns sums telescope to total_ns.
struct Breakdown {
  CauseId action = 0;
  std::int64_t total_ns = 0;  ///< action.sim_ns - root.sim_ns
  std::vector<BreakdownHop> hops;
  std::array<std::int64_t, kLatencyStageCount> stage_ns{};

  std::size_t distinct_stages() const noexcept;
  /// Text waterfall, one hop per line with a proportional bar.
  std::string render() const;
};

class LatencyProfiler {
 public:
  explicit LatencyProfiler(const Journal& journal) : journal_(journal) {}
  LatencyProfiler(const LatencyProfiler&) = delete;
  LatencyProfiler& operator=(const LatencyProfiler&) = delete;

  /// Walks explain(action) and attributes each hop.  Pure query — does
  /// not touch the histograms.  Empty breakdown when `action` is
  /// unknown or evicted.
  Breakdown breakdown(CauseId action) const;

  /// Attribution pass: profiles every resident record of `kind` (in
  /// canonical content order) into the per-stage histograms and the
  /// profiled-action list.  Returns the number of actions profiled.
  /// Call at poll()/export time; repeated calls accumulate.
  std::size_t profile(JournalKind kind);

  /// Profiles one specific action into the histograms.
  void profile_action(CauseId action);

  struct StageStats {
    LatencyStage stage = LatencyStage::kUpstreamWait;
    std::uint64_t count = 0;
    double p50_ns = 0.0;
    double p99_ns = 0.0;
    double max_ns = 0.0;
    double sum_ns = 0.0;
  };
  /// Per-stage quantiles for every stage with at least one sample.
  std::vector<StageStats> summary() const;
  StageStats stage_stats(LatencyStage stage) const;
  /// The sampled stage with the largest p99 (ties: lowest stage index).
  /// count == 0 when nothing was profiled.
  StageStats slowest_stage() const;

  std::size_t actions_profiled() const noexcept { return actions_.size(); }
  const std::vector<CauseId>& actions() const noexcept { return actions_; }
  const Journal& journal() const noexcept { return journal_; }

  /// Stage table + slowest-stage line (dashboard panel).
  std::string render() const;

  /// Prometheus families (schema-linted by scripts/lint_prom.py):
  ///   mdn_latency_stage_count{stage=...}        gauge
  ///   mdn_latency_stage_p50_seconds{stage=...}  gauge
  ///   mdn_latency_stage_p99_seconds{stage=...}  gauge
  ///   mdn_latency_stage_max_seconds{stage=...}  gauge
  ///   mdn_latency_stage_sum_seconds{stage=...}  gauge
  ///   mdn_latency_actions_profiled              gauge
  std::string to_prometheus() const;

  void clear();

 private:
  const Journal& journal_;
  std::array<Histogram, kLatencyStageCount> hists_;
  std::vector<CauseId> actions_;  ///< profiled, in profile order
};

/// Chrome-trace stage waterfall: one complete span per breakdown hop of
/// every profiled action, on per-stage "latency/<stage>" tracks, with
/// sim-time durations — drop the file on ui.perfetto.dev next to the
/// main trace to see where each action's sim time went.
std::string to_chrome_trace_waterfall(const LatencyProfiler& profiler);

}  // namespace mdn::obs
