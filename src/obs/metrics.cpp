#include "obs/metrics.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>

namespace mdn::obs {

// ---------------------------------------------------------------------------
// HistogramSnapshot

double HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  if (std::isnan(q)) return std::numeric_limits<double>::quiet_NaN();
  q = std::clamp(q, 0.0, 1.0);
  // The extremes are tracked exactly; return them rather than the
  // enclosing bucket's interpolation.
  if (q <= 0.0) return min;
  if (q >= 1.0) return max;
  if (buckets.empty()) return max;  // degenerate snapshot: no layout
  const double target = q * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    const double next =
        static_cast<double>(cumulative) + static_cast<double>(buckets[i]);
    if (next >= target) {
      const double lo = i == 0 ? 0.0 : bounds[i - 1];
      // The overflow bucket has no finite upper bound; use the observed
      // maximum (exact for the largest sample).
      const double hi = i + 1 == buckets.size() ? std::max(max, lo)
                                                : bounds[i];
      const double frac = (target - static_cast<double>(cumulative)) /
                          static_cast<double>(buckets[i]);
      return std::clamp(lo + frac * (hi - lo), min, max);
    }
    cumulative = static_cast<std::uint64_t>(next);
  }
  return max;
}

double HistogramSnapshot::cdf(double x) const {
  if (count == 0) return 0.0;
  if (x >= max) return 1.0;
  if (x < min) return 0.0;
  double below = 0.0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    const double lo = i == 0 ? 0.0 : bounds[i - 1];
    const double hi =
        i + 1 == buckets.size() ? std::max(max, lo) : bounds[i];
    if (x >= hi) {
      below += static_cast<double>(buckets[i]);
    } else {
      if (x > lo && hi > lo) {
        below += static_cast<double>(buckets[i]) * (x - lo) / (hi - lo);
      }
      break;
    }
  }
  return std::clamp(below / static_cast<double>(count), 0.0, 1.0);
}

std::vector<std::pair<double, double>> HistogramSnapshot::curve(
    std::size_t points) const {
  std::vector<std::pair<double, double>> out;
  if (count == 0 || points == 0) return out;
  out.reserve(points);
  for (std::size_t i = 1; i <= points; ++i) {
    const double q = static_cast<double>(i) / static_cast<double>(points);
    out.emplace_back(quantile(q), q);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Histogram

Histogram::Histogram(const HistogramOptions& options)
    : options_(options),
      inv_log_growth_(1.0 / std::log(options.growth)),
      buckets_(new std::atomic<std::uint64_t>[options.buckets]) {
  if (options.first_bound <= 0.0 || options.growth <= 1.0 ||
      options.buckets < 2) {
    throw std::invalid_argument("Histogram: invalid bucket layout");
  }
  bounds_.reserve(options.buckets);
  double bound = options.first_bound;
  for (std::size_t i = 0; i < options.buckets; ++i) {
    bounds_.push_back(bound);
    bound *= options.growth;
  }
  // mo: pre-publication init — the histogram is not shared yet
  for (std::size_t i = 0; i < options.buckets; ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

std::size_t Histogram::bucket_index(double value) const noexcept {
  if (!(value > options_.first_bound)) return 0;  // also catches NaN
  const double steps =
      std::log(value / options_.first_bound) * inv_log_growth_;
  const auto idx = static_cast<std::size_t>(std::ceil(steps));
  return std::min(idx, options_.buckets - 1);
}

void Histogram::record(double value) noexcept {
  if (std::isnan(value)) return;
  if (value < 0.0) value = 0.0;
  // mo: monitoring counter, no ordering needed with other state
  buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
  // mo: monitoring counter, no ordering needed with other state
  count_.fetch_add(1, std::memory_order_relaxed);
  detail::atomic_add(sum_, value);
  detail::atomic_min(min_, value);
  detail::atomic_max(max_, value);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  // mo: snapshot read, torn multi-field views are acceptable
  snap.count = count_.load(std::memory_order_relaxed);
  // mo: snapshot read, torn multi-field views are acceptable
  snap.sum = sum_.load(std::memory_order_relaxed);
  if (snap.count > 0) {
    // mo: snapshot read, torn multi-field views are acceptable
    snap.min = min_.load(std::memory_order_relaxed);
    // mo: snapshot read, torn multi-field views are acceptable
    snap.max = max_.load(std::memory_order_relaxed);
  }
  snap.bounds = bounds_;
  snap.buckets.resize(options_.buckets);
  for (std::size_t i = 0; i < options_.buckets; ++i) {
    // mo: snapshot read, torn multi-field views are acceptable
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return snap;
}

void Histogram::reset() noexcept {
  // mo: test/bench reset; callers quiesce writers first
  for (std::size_t i = 0; i < options_.buckets; ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  // mo: test/bench reset; callers quiesce writers first
  count_.store(0, std::memory_order_relaxed);
  // mo: test/bench reset; callers quiesce writers first
  sum_.store(0.0, std::memory_order_relaxed);
  // mo: test/bench reset; callers quiesce writers first
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  // mo: test/bench reset; callers quiesce writers first
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Registry

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

Counter& Registry::counter(const std::string& name) {
  common::MutexLock lock(mu_);
  auto [it, inserted] = entries_.try_emplace(name);
  if (inserted) {
    it->second.kind = Kind::kCounter;
    it->second.counter = std::make_unique<Counter>();
  } else if (it->second.kind != Kind::kCounter) {
    throw std::logic_error("Registry: '" + name + "' is not a counter");
  }
  return *it->second.counter;
}

Gauge& Registry::gauge(const std::string& name) {
  common::MutexLock lock(mu_);
  auto [it, inserted] = entries_.try_emplace(name);
  if (inserted) {
    it->second.kind = Kind::kGauge;
    it->second.gauge = std::make_unique<Gauge>();
  } else if (it->second.kind != Kind::kGauge) {
    throw std::logic_error("Registry: '" + name + "' is not a gauge");
  }
  return *it->second.gauge;
}

Histogram& Registry::histogram(const std::string& name,
                               const HistogramOptions& options) {
  common::MutexLock lock(mu_);
  auto [it, inserted] = entries_.try_emplace(name);
  if (inserted) {
    it->second.kind = Kind::kHistogram;
    it->second.histogram = std::make_unique<Histogram>(options);
  } else if (it->second.kind != Kind::kHistogram) {
    throw std::logic_error("Registry: '" + name + "' is not a histogram");
  }
  return *it->second.histogram;
}

bool Registry::contains(const std::string& name) const {
  common::MutexLock lock(mu_);
  return entries_.contains(name);
}

std::size_t Registry::size() const {
  common::MutexLock lock(mu_);
  return entries_.size();
}

Snapshot Registry::snapshot() const {
  common::MutexLock lock(mu_);
  Snapshot snap;
  snap.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    MetricSnapshot m;
    m.name = name;
    m.kind = entry.kind;
    switch (entry.kind) {
      case Kind::kCounter:
        m.counter = entry.counter->value();
        break;
      case Kind::kGauge:
        m.gauge = entry.gauge->value();
        // A never-set gauge keeps the INT64_MIN sentinel; report the
        // current value instead.
        m.gauge_max = std::max(entry.gauge->max_seen(), m.gauge);
        break;
      case Kind::kHistogram:
        m.hist = entry.histogram->snapshot();
        break;
    }
    snap.push_back(std::move(m));
  }
  return snap;
}

void Registry::reset() {
  common::MutexLock lock(mu_);
  for (auto& [name, entry] : entries_) {
    switch (entry.kind) {
      case Kind::kCounter:
        entry.counter->reset();
        break;
      case Kind::kGauge:
        entry.gauge->reset();
        break;
      case Kind::kHistogram:
        entry.histogram->reset();
        break;
    }
  }
}

std::int64_t wall_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace mdn::obs
