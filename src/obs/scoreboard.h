// Ground-truth detection scoreboard: reconciles the journal's emitted
// and detected records per (microphone, watch frequency).
//
// This is §3's testbed characterisation done inside the simulator: the
// bridge's kToneEmitted records are ground truth, detections cite their
// emission through CauseId, and the scoreboard reduces the journal to
//   * true positives (a detection citing an emission), duplicates,
//   * false positives (a detection citing nothing),
//   * misses (emissions no detection ever cited), and
//   * drop attribution (misses a kBlockDropped record accounts for —
//     which rt backpressure drop ate which tone),
// plus per-cell detection-latency samples (sim time, the Fig-2b-style
// CDF source).  export_to() materialises the counts and latency
// histograms in a Registry so they flow through the existing
// Prometheus/JSONL exporters; to_prometheus() renders labeled series
// with spec-compliant label-value escaping.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "obs/journal.h"
#include "obs/metrics.h"

namespace mdn::obs {

struct ScoreboardConfig {
  /// The watch list (frequencies under observation).  Empty derives the
  /// list from the journal: every distinct emitted/detected frequency.
  std::vector<double> watch_hz;
  /// Half-width used to match record frequencies to the watch list
  /// (mirror the detector's match_tolerance_hz).
  double tolerance_hz = 10.0;
  /// Minimum microphone count; grown to cover every mic the journal saw.
  std::size_t mics = 0;
};

class Scoreboard {
 public:
  struct Cell {
    std::uint64_t emitted = 0;          ///< ground-truth tones at this watch
    std::uint64_t detected = 0;         ///< unique emissions heard (TP)
    std::uint64_t duplicates = 0;       ///< repeat detections of a TP
    std::uint64_t false_positives = 0;  ///< detections citing no emission
    std::uint64_t missed = 0;           ///< emitted - detected
    std::uint64_t dropped = 0;          ///< misses attributed to rt drops
    std::vector<double> latencies_s;    ///< per TP, sorted ascending

    double recall() const noexcept;     ///< detected / emitted (1 if none)
    double precision() const noexcept;  ///< TP / (TP + FP)   (1 if none)
    /// Nearest-rank latency quantile in seconds (0 when no samples).
    double latency_quantile(double q) const noexcept;
    bool empty() const noexcept {
      return emitted == 0 && detected == 0 && duplicates == 0 &&
             false_positives == 0;
    }
  };

  /// Reduces the journal's resident records.  An emission with no mic
  /// (kJournalNoMic) is ground truth for every microphone — each mic is
  /// expected to hear every watched tone, the single-room reading.  An
  /// emission tagged with a mic (fleet bridges scoped to one room via
  /// PiSpeakerBridge::set_journal_mic) is ground truth for that mic
  /// only, so a 100-switch fleet doesn't score room A's tones as misses
  /// in room B.
  static Scoreboard build(const Journal& journal,
                          ScoreboardConfig config = {});

  std::size_t mic_count() const noexcept { return mics_; }
  std::size_t watch_count() const noexcept { return watch_hz_.size(); }
  double watch_hz(std::size_t watch) const { return watch_hz_.at(watch); }
  const Cell& cell(std::size_t mic, std::size_t watch) const;

  /// Aggregate over every watch of one microphone (latencies merged and
  /// re-sorted).
  Cell totals(std::size_t mic) const;
  double recall(std::size_t mic) const { return totals(mic).recall(); }
  double precision(std::size_t mic) const {
    return totals(mic).precision();
  }

  /// Aggregate over every (mic, watch) cell — the fleet-wide summary a
  /// dashboard or bench headline reports.
  Cell grand_totals() const;

  /// Materialises counters and latency histograms under
  /// "<prefix>/mic<m>/watch<w>/..." so the standard exporters pick the
  /// scoreboard up.  Counts are added, so call once per built scoreboard
  /// (reset the registry between runs as usual).
  void export_to(Registry& registry,
                 const std::string& prefix = "score") const;

  /// Labeled Prometheus series (gauges) with mic/watch label values run
  /// through prometheus_label_value() — hostile microphone names
  /// (backslashes, quotes, newlines) round-trip per the text format.
  std::string to_prometheus(
      std::span<const std::string> mic_names = {}) const;

  /// Dashboard text table: one row per non-empty (mic, watch) cell.
  std::string render(std::span<const std::string> mic_names = {}) const;

 private:
  std::vector<double> watch_hz_;
  std::size_t mics_ = 0;
  std::vector<Cell> cells_;  // mic-major: cells_[mic * watches + watch]
};

}  // namespace mdn::obs
