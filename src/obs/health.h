// Acoustic health monitor: per-microphone signal estimators + SLO/alert
// engine (the controller-side health layer of the self-healing roadmap).
//
// The paper's monitoring scenarios (§6) assume the acoustic channel is
// healthy; at fleet scale the channel is exactly what degrades first — a
// dying microphone announces itself as a rising noise floor, collapsing
// SNR and, finally, silence.  This layer watches those signals online:
//
//   hot path (worker thread / controller tick, MDN_REALTIME)
//     ToneDetector::detect_into fills a BlockSignalStats (off-peak
//     noise floor, strongest peak, block RMS) as a by-product of the
//     spectrum it already computed; the per-mic MicSignalEstimator
//     folds it into rolling state — EWMA noise floor, per-watch SNR,
//     onset rate, silence duration — with plain arithmetic on
//     preallocated storage (no alloc, no lock, audited by mdn_lint and
//     the zero-alloc tests).  SLO conditions are tracked at block
//     granularity in the same pass (sim-time for-duration windows), and
//     a state transition is queued on a fixed-size SPSC ring.
//
//   owner thread (Health::poll, off the hot path)
//     drains the queued transitions, mints kHealthAlert journal records
//     whose cause links reach the triggering evidence (the detection or
//     emission the estimator last saw, or the drop that ate a block),
//     updates the "health/..." registry instruments, and accumulates
//     the alert log behind report()/render()/to_prometheus()/
//     to_health_jsonl().
//
// Determinism: estimator state is strictly per microphone and advances
// in that microphone's block order, which the rt runtime fixes per mic
// regardless of worker count — so the alert stream (canonically sorted
// in to_health_jsonl()) is byte-identical at 1 or N workers under the
// lossless kBlock policy (checked in tests/rt/test_health_rt.cpp).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/annotations.h"
#include "common/atomic.h"
#include "obs/journal.h"
#include "obs/latency.h"
#include "obs/metrics.h"

namespace mdn::obs {

/// Per-block signal measurements, computed by the tone detector as a
/// by-product of the spectrum pass (see ToneDetector::detect_into).
struct BlockSignalStats {
  double noise_floor = 0.0;     ///< mean off-peak bin amplitude
  double peak_amplitude = 0.0;  ///< strongest spectral peak (0 if none)
  double rms = 0.0;             ///< time-domain RMS of the block
};

enum class HealthState : std::uint8_t { kOk = 0, kDegraded = 1, kFailed = 2 };

/// Stable lowercase name ("ok", "degraded", "failed").
std::string_view health_state_name(HealthState state) noexcept;

/// One declarative health objective: a metric selector, a comparison, and
/// a for-duration — "metric OP threshold, held continuously for `for_s`
/// seconds of sim time, drives this microphone to `severity`".
struct SloSpec {
  enum class Metric : std::uint8_t {
    kNoiseFloor = 0,   ///< EWMA off-peak bin amplitude (linear)
    kMinSnrDb = 1,     ///< min over watches of EWMA SNR (dB); +inf if unseen
    kOnsetRateHz = 2,  ///< decaying onsets-per-second estimate
    kSilenceS = 3,     ///< seconds since a watched tone was last present
    kDropCount = 4,    ///< rt backpressure drops charged to this mic
    /// Pipeline-stage p99 latency (seconds) as last published by the
    /// owner via Health::publish_stage_latency (fed from the
    /// LatencyProfiler).  NaN — so rules never fire — until published.
    kStageLatencyP99 = 5,
  };
  enum class Op : std::uint8_t { kAbove = 0, kBelow = 1 };

  std::string name;  ///< rule tag (journal label / health.jsonl "rule")
  Metric metric = Metric::kNoiseFloor;
  Op op = Op::kAbove;
  double threshold = 0.0;
  double for_s = 0.0;  ///< condition must hold this long (0 = immediate)
  HealthState severity = HealthState::kDegraded;
  /// Stage selector, only read by kStageLatencyP99 rules.
  LatencyStage stage = LatencyStage::kCapture;
};

/// Stable lowercase metric name ("noise_floor", "min_snr_db", ...).
std::string_view slo_metric_name(SloSpec::Metric metric) noexcept;

/// Rule index carried by recovery transitions (no rule is firing).
inline constexpr std::uint32_t kHealthNoRule = 0xffffffffu;

/// One state transition of one microphone, as drained by Health::poll().
struct HealthAlert {
  double time_s = 0.0;
  std::uint32_t mic = 0;
  std::uint32_t rule = kHealthNoRule;  ///< SloSpec index (kHealthNoRule = recovery)
  HealthState from = HealthState::kOk;
  HealthState to = HealthState::kOk;
  double value = 0.0;    ///< metric value at the transition
  CauseId evidence = 0;  ///< last detection/emission/drop journal id
  CauseId record = 0;    ///< minted kHealthAlert journal id (0 = journal off)
};

struct HealthConfig {
  /// Watch-list length (sizes the per-watch SNR estimators).  Watches
  /// observed beyond this capacity are ignored, not an error.
  std::size_t watch_count = 0;
  double noise_floor_alpha = 0.2;  ///< EWMA weight per block
  double snr_alpha = 0.25;         ///< EWMA weight per observation
  double onset_rate_tau_s = 2.0;   ///< decaying-rate time constant
  std::size_t alert_capacity = 64; ///< pending transitions per microphone
};

class Health;

/// Rolling signal state for one microphone.  Single-writer hot-path
/// contract: begin_block/observe_watch/end_block are called by exactly
/// one thread (the worker owning the mic, or the inline controller), in
/// block order; note_drop may come from any thread (producer side);
/// readers see relaxed-atomic published values.
class MicSignalEstimator {
 public:
  /// Opens a block ending at `block_end_s` and folds its stats into the
  /// EWMA noise floor.  Call before the watch-matching loop.
  MDN_REALTIME void begin_block(double block_end_s,
                                const BlockSignalStats& stats) noexcept;

  /// Reports one watch's matching outcome for the open block.  `onset`
  /// is the absent→present edge (what the detectors deliver);
  /// `evidence` is the journal id backing the hearing (detection record
  /// inline, ground-truth emission in the rt worker), 0 when unknown.
  MDN_REALTIME void observe_watch(std::size_t watch, bool present,
                                  bool onset, double amplitude,
                                  CauseId evidence) noexcept;

  /// Closes the block: refreshes onset rate / silence / min-SNR,
  /// evaluates every SLO's for-duration window at this block's sim time
  /// and queues a state transition when the target state changed.
  MDN_REALTIME void end_block() MDN_CHECK_NOEXCEPT;

  /// Charges one dropped block (rt backpressure) to this microphone.
  /// Safe from any thread; `evidence` is the kBlockDropped journal id.
  void note_drop(CauseId evidence) noexcept;

  // Readers (any thread; relaxed atomics published at end_block).
  double noise_floor() const noexcept {
    // mo: monitoring gauge, staleness tolerated by every reader
    return noise_floor_.load(std::memory_order_relaxed);
  }
  /// Min over watches of the EWMA SNR in dB; +inf until a watch is heard.
  double min_snr_db() const noexcept {
    // mo: monitoring gauge, staleness tolerated by every reader
    return min_snr_db_.load(std::memory_order_relaxed);
  }
  /// EWMA SNR of one watch in dB; NaN until that watch is heard.
  double snr_db(std::size_t watch) const noexcept;
  double onset_rate_hz() const noexcept {
    // mo: monitoring gauge, staleness tolerated by every reader
    return onset_rate_hz_.load(std::memory_order_relaxed);
  }
  /// Seconds from the last present watch to the last processed block.
  double silence_s() const noexcept {
    // mo: monitoring gauge, staleness tolerated by every reader
    return silence_s_.load(std::memory_order_relaxed);
  }
  std::uint64_t drops() const noexcept {
    // mo: monitoring counter, no ordering needed with other state
    return drops_.load(std::memory_order_relaxed);
  }
  std::uint64_t blocks() const noexcept {
    // mo: monitoring counter, no ordering needed with other state
    return blocks_.load(std::memory_order_relaxed);
  }
  HealthState state() const noexcept {
    // mo: monitoring gauge, staleness tolerated by every reader
    return static_cast<HealthState>(state_.load(std::memory_order_relaxed));
  }
  /// Transitions lost to a full alert ring (poll() fell too far behind).
  std::uint64_t alerts_dropped() const MDN_CHECK_NOEXCEPT {
    // mo: monitoring counter, no ordering needed with other state
    return alert_overflow_.load(std::memory_order_relaxed);
  }

 private:
  friend class Health;
  friend struct HealthModelPeer;  // tests/model/: drives the alert ring

  struct PendingAlert {
    double time_s = 0.0;
    std::uint32_t rule = kHealthNoRule;
    HealthState from = HealthState::kOk;
    HealthState to = HealthState::kOk;
    double value = 0.0;
    CauseId evidence = 0;
  };

  MicSignalEstimator(const Health* owner, const HealthConfig& config);

  double metric_value(const SloSpec& spec) const noexcept;
  MDN_REALTIME void queue_alert(const PendingAlert& alert) MDN_CHECK_NOEXCEPT;

  const Health* owner_;
  const HealthConfig* config_;

  // Hot-path-owned scalars (single writer, never read cross-thread).
  double block_end_s_ = 0.0;
  double prev_block_end_s_ = 0.0;
  double last_signal_s_ = 0.0;
  double onsets_in_block_ = 0.0;
  bool first_block_ = true;
  CauseId last_evidence_ = 0;
  std::vector<double> held_since_s_;  // per rule; NaN = not holding

  // Published state (worker writes, any thread reads; all relaxed).
  std::atomic<double> noise_floor_{0.0};
  std::atomic<double> min_snr_db_;
  std::atomic<double> onset_rate_hz_{0.0};
  std::atomic<double> silence_s_{0.0};
  std::vector<std::atomic<double>> snr_db_;  // per watch; NaN = unseen
  std::atomic<std::uint64_t> blocks_{0};
  std::atomic<std::uint64_t> drops_{0};
  std::atomic<std::uint64_t> drop_evidence_{0};
  std::atomic<std::uint8_t> state_{0};

  // SPSC transition ring: worker pushes at head, poll() pops at tail.
  // Declared through the check shim (common/atomic.h) so tests/model/
  // verifies the release/acquire protocol across all interleavings.
  std::vector<check::Cell<PendingAlert>> alert_slots_;
  check::Atomic<std::uint64_t> alert_head_{0};
  check::Atomic<std::uint64_t> alert_tail_{0};
  check::Atomic<std::uint64_t> alert_overflow_{0};
};

/// The health/SLO engine: owns one MicSignalEstimator per microphone
/// and the declarative rule set; poll() turns queued transitions into
/// alerts, journal records and registry instruments.  Wire everything
/// (add_mic / add_slo) before the hot path starts.
class Health {
 public:
  explicit Health(HealthConfig config = {});
  Health(const Health&) = delete;
  Health& operator=(const Health&) = delete;

  /// Registers one microphone (ids must match the runtime/controller
  /// mic ids); returns its id.  Registers "health/mic/<id>/state" and
  /// "health/mic/<id>/alerts" in the global registry.
  std::uint32_t add_mic(std::string name);

  /// Appends one objective.  Rules apply to every microphone.
  void add_slo(SloSpec spec);

  /// Publishes one stage's p99 latency (seconds) for kStageLatencyP99
  /// rules; estimators read it with a relaxed load on their next block.
  /// Owner thread, typically right after LatencyProfiler::profile().
  void publish_stage_latency(LatencyStage stage, double p99_s) noexcept;
  /// Last published p99 for `stage` (NaN until first published).
  double stage_latency_p99_s(LatencyStage stage) const noexcept;

  std::size_t mic_count() const noexcept { return estimators_.size(); }
  std::size_t slo_count() const noexcept { return slos_.size(); }
  const SloSpec& slo(std::size_t index) const { return slos_.at(index); }
  const std::string& mic_name(std::uint32_t mic) const {
    return mic_names_.at(mic);
  }

  MicSignalEstimator& estimator(std::uint32_t mic) noexcept {
    return *estimators_[mic];
  }
  const MicSignalEstimator& estimator(std::uint32_t mic) const noexcept {
    return *estimators_[mic];
  }

  /// Owner-thread evaluation step: drains every estimator's queued
  /// transitions (in mic order), mints one kHealthAlert journal record
  /// per transition (cause = the evidence id), bumps the registry
  /// instruments and appends to alerts().  Returns transitions drained.
  std::size_t poll();

  /// Every transition drained so far, in drain order.
  const std::vector<HealthAlert>& alerts() const noexcept { return alerts_; }
  /// Transitions lost to full per-mic rings, summed over microphones.
  std::uint64_t alerts_dropped() const MDN_CHECK_NOEXCEPT;

  struct MicReport {
    std::string name;
    HealthState state = HealthState::kOk;
    double noise_floor = 0.0;
    double min_snr_db = 0.0;
    double onset_rate_hz = 0.0;
    double silence_s = 0.0;
    std::uint64_t drops = 0;
    std::uint64_t blocks = 0;
    std::uint64_t alerts = 0;
  };
  struct Report {
    std::vector<MicReport> mics;
    HealthState worst = HealthState::kOk;
    std::size_t alerts = 0;
  };
  /// Point-in-time component view (implicitly poll()s nothing — call
  /// poll() first for the freshest state).
  Report report() const;

  /// Dashboard text panel: one row per microphone plus the alert log.
  std::string render() const;

  /// Labeled Prometheus families (values escaped per the text format):
  ///   mdn_health_component_state{mic=...}        gauge  (0/1/2)
  ///   mdn_health_noise_floor{mic=...}            gauge
  ///   mdn_health_min_snr_db{mic=...}             gauge
  ///   mdn_health_snr_db{mic=...,watch=...}       gauge  (observed only)
  ///   mdn_health_onset_rate_hz{mic=...}          gauge
  ///   mdn_health_silence_seconds{mic=...}        gauge
  ///   mdn_health_drops_total{mic=...}            counter
  ///   mdn_health_alerts_total{mic=...,severity=...} counter
  std::string to_prometheus() const;

  /// Canonical health.jsonl: one JSON object per alert, sorted by
  /// content (time, mic, rule, states) so the bytes are identical
  /// across worker counts (ids never appear; evidence ids are sim-
  /// deterministic under the lossless policy).
  std::string to_health_jsonl() const;

  const HealthConfig& config() const noexcept { return config_; }

 private:
  friend class MicSignalEstimator;

  HealthConfig config_;
  std::vector<SloSpec> slos_;
  std::vector<std::string> mic_names_;
  std::vector<std::unique_ptr<MicSignalEstimator>> estimators_;
  std::vector<HealthAlert> alerts_;
  std::vector<std::uint64_t> alert_counts_;  // per mic
  // Registry instruments ("health/...", resolved at add_mic).
  std::vector<Gauge*> state_gauges_;
  std::vector<Counter*> alert_counters_;
  Counter* alerts_total_ = nullptr;
  /// Owner-published, estimator-read (relaxed); NaN = never published.
  std::array<std::atomic<double>, kLatencyStageCount> stage_latency_s_;
};

}  // namespace mdn::obs
