// Sim-time tracing: spans and instant events stamped with BOTH the
// simulated clock (net::SimTime nanoseconds, passed in by the caller)
// and the wall clock, so a whole experiment replays as a timeline in
// chrome://tracing / Perfetto (see obs::to_chrome_trace).
//
// A Tracer is owned by the recording context — each net::EventLoop has
// one — and is disabled by default: when off, recording is a single
// branch, so tracing-capable code costs nothing in production runs and
// cannot perturb event ordering either way (it only ever observes).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"

namespace mdn::obs {

struct TraceEvent {
  std::string name;
  char phase = 'i';              ///< 'X' complete span, 'i' instant
  std::uint32_t track = 0;       ///< index into Tracer::track_names()
  std::int64_t sim_ns = 0;       ///< simulated timestamp
  std::int64_t wall_ns = 0;      ///< wall-clock stamp when recorded
  std::int64_t wall_dur_ns = 0;  ///< span wall duration ('X' only)
};

class Tracer {
 public:
  using WallClock = std::int64_t (*)();

  void enable(bool on = true) noexcept { enabled_ = on; }
  bool enabled() const noexcept { return enabled_; }

  /// Bounds event storage: at most `cap` events are kept (preallocated
  /// here, so recording never grows the vector); once full, further
  /// events are counted in dropped() instead of stored.  0 restores the
  /// legacy unbounded mode.  Long fleet runs set a cap so an enabled
  /// tracer cannot grow without limit.
  void set_capacity(std::size_t cap);
  std::size_t capacity() const noexcept { return capacity_; }
  /// Events discarded because the capacity was reached.
  std::uint64_t dropped() const noexcept { return dropped_; }

  /// Registers (or finds) a named track — one horizontal lane in the
  /// trace viewer, e.g. "net/loop" or "mdn/controller".
  std::uint32_t track(std::string_view name);

  /// Records an instant event at simulated time `sim_ns`.  No-op while
  /// disabled.
  void instant(std::string_view name, std::uint32_t track,
               std::int64_t sim_ns);

  /// Records a completed span that started at simulated time `sim_ns`
  /// and wall time `wall_start_ns`, lasting `wall_dur_ns` of wall time.
  /// (Spans are instantaneous in simulated time — the sim clock does not
  /// advance inside a callback — so the wall duration is the payload.)
  void complete(std::string_view name, std::uint32_t track,
                std::int64_t sim_ns, std::int64_t wall_start_ns,
                std::int64_t wall_dur_ns);

  std::int64_t wall_now() const { return clock_(); }
  /// Tests inject a deterministic clock to make traces golden-testable.
  void set_wall_clock(WallClock clock) noexcept { clock_ = clock; }

  const std::vector<TraceEvent>& events() const noexcept { return events_; }
  const std::vector<std::string>& track_names() const noexcept {
    return tracks_;
  }

  void clear() noexcept {
    events_.clear();
    dropped_ = 0;
  }

 private:
  bool has_room() noexcept {
    if (capacity_ == 0 || events_.size() < capacity_) return true;
    ++dropped_;
    return false;
  }

  bool enabled_ = false;
  WallClock clock_ = &wall_now_ns;
  std::size_t capacity_ = 0;  ///< 0 = unbounded
  std::uint64_t dropped_ = 0;
  std::vector<TraceEvent> events_;
  std::vector<std::string> tracks_;
};

/// RAII span: measures wall time from construction to destruction and
/// records a complete event.  Entirely a no-op when the tracer is null
/// or disabled (one branch at construction).
class TraceSpan {
 public:
  TraceSpan(Tracer* tracer, std::string_view name, std::uint32_t track,
            std::int64_t sim_ns) noexcept
      : tracer_(tracer != nullptr && tracer->enabled() ? tracer : nullptr),
        name_(name),
        track_(track),
        sim_ns_(sim_ns),
        wall_start_ns_(tracer_ != nullptr ? tracer_->wall_now() : 0) {}

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  ~TraceSpan() {
    if (tracer_ != nullptr) {
      tracer_->complete(name_, track_, sim_ns_,
                        wall_start_ns_, tracer_->wall_now() - wall_start_ns_);
    }
  }

 private:
  Tracer* tracer_;
  std::string_view name_;
  std::uint32_t track_;
  std::int64_t sim_ns_;
  std::int64_t wall_start_ns_;
};

}  // namespace mdn::obs
