#include "obs/export.h"

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <fstream>

namespace mdn::obs {
namespace {

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

// Shared JSON body (without the surrounding name key) for one metric.
std::string metric_json_value(const MetricSnapshot& m) {
  std::string out;
  switch (m.kind) {
    case Kind::kCounter:
      out += "{\"kind\":\"counter\",\"value\":" + std::to_string(m.counter) +
             "}";
      break;
    case Kind::kGauge:
      out += "{\"kind\":\"gauge\",\"value\":" + std::to_string(m.gauge) +
             ",\"max\":" + std::to_string(m.gauge_max) + "}";
      break;
    case Kind::kHistogram: {
      const HistogramSnapshot& h = m.hist;
      out += "{\"kind\":\"histogram\",\"count\":" + std::to_string(h.count) +
             ",\"sum\":" + format_double(h.sum) +
             ",\"min\":" + format_double(h.min) +
             ",\"max\":" + format_double(h.max) +
             ",\"mean\":" + format_double(h.mean()) +
             ",\"p50\":" + format_double(h.quantile(0.5)) +
             ",\"p90\":" + format_double(h.quantile(0.9)) +
             ",\"p99\":" + format_double(h.quantile(0.99)) + ",\"buckets\":[";
      // Only occupied buckets: [upper_bound, count] pairs.
      bool first = true;
      for (std::size_t i = 0; i < h.buckets.size(); ++i) {
        if (h.buckets[i] == 0) continue;
        if (!first) out += ',';
        first = false;
        out += "[" + format_double(h.bounds[i]) + "," +
               std::to_string(h.buckets[i]) + "]";
      }
      out += "]}";
      break;
    }
  }
  return out;
}

}  // namespace

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string prometheus_name(std::string_view name) {
  std::string out = "mdn_";
  for (char c : name) {
    out += std::isalnum(static_cast<unsigned char>(c)) != 0 ? c : '_';
  }
  return out;
}

std::string to_prometheus(const Snapshot& snapshot) {
  std::string out;
  for (const MetricSnapshot& m : snapshot) {
    const std::string name = prometheus_name(m.name);
    switch (m.kind) {
      case Kind::kCounter:
        out += "# TYPE " + name + " counter\n";
        out += name + " " + std::to_string(m.counter) + "\n";
        break;
      case Kind::kGauge:
        out += "# TYPE " + name + " gauge\n";
        out += name + " " + std::to_string(m.gauge) + "\n";
        out += "# TYPE " + name + "_max gauge\n";
        out += name + "_max " + std::to_string(m.gauge_max) + "\n";
        break;
      case Kind::kHistogram: {
        const HistogramSnapshot& h = m.hist;
        out += "# TYPE " + name + " histogram\n";
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < h.buckets.size(); ++i) {
          if (h.buckets[i] == 0) continue;  // keep the dump compact
          cumulative += h.buckets[i];
          out += name + "_bucket{le=\"" + format_double(h.bounds[i]) +
                 "\"} " + std::to_string(cumulative) + "\n";
        }
        out += name + "_bucket{le=\"+Inf\"} " + std::to_string(h.count) +
               "\n";
        out += name + "_sum " + format_double(h.sum) + "\n";
        out += name + "_count " + std::to_string(h.count) + "\n";
        break;
      }
    }
  }
  return out;
}

std::string to_jsonl(const Snapshot& snapshot) {
  std::string out;
  for (const MetricSnapshot& m : snapshot) {
    std::string line = "{\"name\":\"" + json_escape(m.name) + "\",";
    std::string body = metric_json_value(m);
    line += body.substr(1);  // merge: drop body's opening brace
    out += line + "\n";
  }
  return out;
}

std::string to_json(const Snapshot& snapshot) {
  std::string out = "{";
  bool first = true;
  for (const MetricSnapshot& m : snapshot) {
    if (!first) out += ',';
    first = false;
    out += "\"" + json_escape(m.name) + "\":" + metric_json_value(m);
  }
  out += "}";
  return out;
}

std::string to_chrome_trace(const Tracer& tracer) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto& tracks = tracer.track_names();
  for (std::size_t i = 0; i < tracks.size(); ++i) {
    if (!first) out += ',';
    first = false;
    out += "{\"ph\":\"M\",\"pid\":0,\"tid\":" + std::to_string(i) +
           ",\"name\":\"thread_name\",\"args\":{\"name\":\"" +
           json_escape(tracks[i]) + "\"}}";
  }
  char buf[64];
  for (const TraceEvent& ev : tracer.events()) {
    if (!first) out += ',';
    first = false;
    // trace_event timestamps are microseconds; keep sub-us precision.
    std::snprintf(buf, sizeof(buf), "%.3f",
                  static_cast<double>(ev.sim_ns) / 1000.0);
    out += "{\"ph\":\"";
    out += ev.phase;
    out += "\",\"pid\":0,\"tid\":" + std::to_string(ev.track) +
           ",\"name\":\"" + json_escape(ev.name) + "\",\"ts\":" + buf;
    if (ev.phase == 'X') {
      std::snprintf(buf, sizeof(buf), "%.3f",
                    static_cast<double>(ev.wall_dur_ns) / 1000.0);
      out += ",\"dur\":";
      out += buf;
    }
    if (ev.phase == 'i') out += ",\"s\":\"t\"";
    out += ",\"args\":{\"sim_ns\":" + std::to_string(ev.sim_ns) +
           ",\"wall_ns\":" + std::to_string(ev.wall_ns) + "}}";
  }
  out += "]}";
  return out;
}

bool write_file(const std::string& path, std::string_view content) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return false;
  f.write(content.data(),
          static_cast<std::streamsize>(content.size()));
  return static_cast<bool>(f);
}

}  // namespace mdn::obs
