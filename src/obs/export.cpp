#include "obs/export.h"

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <fstream>

namespace mdn::obs {
namespace {

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

// Shared JSON body (without the surrounding name key) for one metric.
std::string metric_json_value(const MetricSnapshot& m) {
  std::string out;
  switch (m.kind) {
    case Kind::kCounter:
      out += "{\"kind\":\"counter\",\"value\":" + std::to_string(m.counter) +
             "}";
      break;
    case Kind::kGauge:
      out += "{\"kind\":\"gauge\",\"value\":" + std::to_string(m.gauge) +
             ",\"max\":" + std::to_string(m.gauge_max) + "}";
      break;
    case Kind::kHistogram: {
      const HistogramSnapshot& h = m.hist;
      out += "{\"kind\":\"histogram\",\"count\":" + std::to_string(h.count) +
             ",\"sum\":" + format_double(h.sum) +
             ",\"min\":" + format_double(h.min) +
             ",\"max\":" + format_double(h.max) +
             ",\"mean\":" + format_double(h.mean()) +
             ",\"p50\":" + format_double(h.quantile(0.5)) +
             ",\"p90\":" + format_double(h.quantile(0.9)) +
             ",\"p99\":" + format_double(h.quantile(0.99)) + ",\"buckets\":[";
      // Only occupied buckets: [upper_bound, count] pairs.
      bool first = true;
      for (std::size_t i = 0; i < h.buckets.size(); ++i) {
        if (h.buckets[i] == 0) continue;
        if (!first) out += ',';
        first = false;
        out += "[" + format_double(h.bounds[i]) + "," +
               std::to_string(h.buckets[i]) + "]";
      }
      out += "]}";
      break;
    }
  }
  return out;
}

}  // namespace

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string prometheus_name(std::string_view name) {
  std::string out = "mdn_";
  for (char c : name) {
    out += std::isalnum(static_cast<unsigned char>(c)) != 0 ? c : '_';
  }
  return out;
}

std::string to_prometheus(const Snapshot& snapshot) {
  std::string out;
  for (const MetricSnapshot& m : snapshot) {
    const std::string name = prometheus_name(m.name);
    switch (m.kind) {
      case Kind::kCounter:
        out += "# TYPE " + name + " counter\n";
        out += name + " " + std::to_string(m.counter) + "\n";
        break;
      case Kind::kGauge:
        out += "# TYPE " + name + " gauge\n";
        out += name + " " + std::to_string(m.gauge) + "\n";
        out += "# TYPE " + name + "_max gauge\n";
        out += name + "_max " + std::to_string(m.gauge_max) + "\n";
        break;
      case Kind::kHistogram: {
        const HistogramSnapshot& h = m.hist;
        out += "# TYPE " + name + " histogram\n";
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < h.buckets.size(); ++i) {
          if (h.buckets[i] == 0) continue;  // keep the dump compact
          cumulative += h.buckets[i];
          out += name + "_bucket{le=\"" + format_double(h.bounds[i]) +
                 "\"} " + std::to_string(cumulative) + "\n";
        }
        out += name + "_bucket{le=\"+Inf\"} " + std::to_string(h.count) +
               "\n";
        out += name + "_sum " + format_double(h.sum) + "\n";
        out += name + "_count " + std::to_string(h.count) + "\n";
        break;
      }
    }
  }
  return out;
}

std::string to_jsonl(const Snapshot& snapshot) {
  std::string out;
  for (const MetricSnapshot& m : snapshot) {
    std::string line = "{\"name\":\"" + json_escape(m.name) + "\",";
    std::string body = metric_json_value(m);
    line += body.substr(1);  // merge: drop body's opening brace
    out += line + "\n";
  }
  return out;
}

std::string to_json(const Snapshot& snapshot) {
  std::string out = "{";
  bool first = true;
  for (const MetricSnapshot& m : snapshot) {
    if (!first) out += ',';
    first = false;
    out += "\"" + json_escape(m.name) + "\":" + metric_json_value(m);
  }
  out += "}";
  return out;
}

std::string prometheus_label_value(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

namespace {

std::string chrome_trace_impl(const Tracer& tracer,
                              const Journal* journal) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto& tracks = tracer.track_names();
  const auto emit_track_name = [&](std::size_t tid,
                                   std::string_view name) {
    if (!first) out += ',';
    first = false;
    out += "{\"ph\":\"M\",\"pid\":0,\"tid\":" + std::to_string(tid) +
           ",\"name\":\"thread_name\",\"args\":{\"name\":\"" +
           json_escape(name) + "\"}}";
  };
  for (std::size_t i = 0; i < tracks.size(); ++i) {
    emit_track_name(i, tracks[i]);
  }
  char buf[64];
  const auto format_ts = [&buf](std::int64_t sim_ns) {
    // trace_event timestamps are microseconds; keep sub-us precision.
    std::snprintf(buf, sizeof(buf), "%.3f",
                  static_cast<double>(sim_ns) / 1000.0);
    return std::string(buf);
  };
  if (tracer.dropped() != 0) {
    // Surface the bound: a capped tracer that overflowed says so in the
    // trace itself, so a viewer knows the timeline is truncated.
    if (!first) out += ',';
    first = false;
    out += "{\"ph\":\"i\",\"pid\":0,\"tid\":0,\"name\":"
           "\"tracer_events_dropped\",\"ts\":0,\"s\":\"g\",\"args\":"
           "{\"dropped\":" + std::to_string(tracer.dropped()) + "}}";
  }
  for (const TraceEvent& ev : tracer.events()) {
    if (!first) out += ',';
    first = false;
    out += "{\"ph\":\"";
    out += ev.phase;
    out += "\",\"pid\":0,\"tid\":" + std::to_string(ev.track) +
           ",\"name\":\"" + json_escape(ev.name) +
           "\",\"ts\":" + format_ts(ev.sim_ns);
    if (ev.phase == 'X') {
      std::snprintf(buf, sizeof(buf), "%.3f",
                    static_cast<double>(ev.wall_dur_ns) / 1000.0);
      out += ",\"dur\":";
      out += buf;
    }
    if (ev.phase == 'i') out += ",\"s\":\"t\"";
    out += ",\"args\":{\"sim_ns\":" + std::to_string(ev.sim_ns) +
           ",\"wall_ns\":" + std::to_string(ev.wall_ns) + "}}";
  }

  if (journal != nullptr) {
    // One extra track per journal kind, after the tracer's tracks.  A
    // record is an instant on its kind's track; each causal link is a
    // flow arrow from the cause's instant to the effect's.
    const auto records = journal->snapshot();
    const std::size_t base_tid = tracks.size();
    bool kind_present[kJournalKindCount] = {};
    for (const auto& r : records) {
      kind_present[static_cast<std::size_t>(r.kind)] = true;
    }
    for (std::size_t k = 0; k < kJournalKindCount; ++k) {
      if (!kind_present[k]) continue;
      emit_track_name(base_tid + k,
                      "journal/" + std::string(journal_kind_name(
                                       static_cast<JournalKind>(k))));
    }
    const auto record_tid = [&](const JournalRecord& r) {
      return base_tid + static_cast<std::size_t>(r.kind);
    };
    const auto emit_instant = [&](const JournalRecord& r) {
      if (!first) out += ',';
      first = false;
      out += "{\"ph\":\"i\",\"pid\":0,\"tid\":" +
             std::to_string(record_tid(r)) + ",\"name\":\"" +
             json_escape(journal_kind_name(r.kind)) +
             "\",\"ts\":" + format_ts(r.sim_ns) +
             ",\"s\":\"t\",\"args\":{\"journal_id\":" +
             std::to_string(r.id) + ",\"cause\":" +
             std::to_string(r.cause) + ",\"frequency_hz\":" +
             format_double(r.frequency_hz) + ",\"label\":\"" +
             json_escape(r.label) + "\"}}";
    };
    const auto emit_flow = [&](const JournalRecord& from,
                               const JournalRecord& to,
                               std::uint64_t flow_id) {
      if (!first) out += ',';
      first = false;
      out += "{\"ph\":\"s\",\"pid\":0,\"tid\":" +
             std::to_string(record_tid(from)) +
             ",\"name\":\"cause\",\"id\":" + std::to_string(flow_id) +
             ",\"ts\":" + format_ts(from.sim_ns) + "},";
      out += "{\"ph\":\"f\",\"bp\":\"e\",\"pid\":0,\"tid\":" +
             std::to_string(record_tid(to)) +
             ",\"name\":\"cause\",\"id\":" + std::to_string(flow_id) +
             ",\"ts\":" + format_ts(to.sim_ns) + "}";
    };
    for (const auto& r : records) {
      emit_instant(r);
      JournalRecord cause;
      if (r.cause != 0 && journal->find(r.cause, &cause)) {
        emit_flow(cause, r, r.id * 2);
      }
      if (r.cause2 != 0 && journal->find(r.cause2, &cause)) {
        emit_flow(cause, r, r.id * 2 + 1);
      }
    }
  }
  out += "]}";
  return out;
}

}  // namespace

std::string to_chrome_trace(const Tracer& tracer) {
  return chrome_trace_impl(tracer, nullptr);
}

std::string to_chrome_trace(const Tracer& tracer, const Journal& journal) {
  return chrome_trace_impl(tracer, &journal);
}

bool write_file(const std::string& path, std::string_view content) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return false;
  f.write(content.data(),
          static_cast<std::streamsize>(content.size()));
  return static_cast<bool>(f);
}

}  // namespace mdn::obs
