#include "obs/health.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <utility>

#include "obs/export.h"

namespace mdn::obs {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

/// Prometheus sample value: the text format spells non-finite values
/// "NaN" / "+Inf" / "-Inf" (never printf's "nan"/"inf").
std::string prom_value(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0.0 ? "+Inf" : "-Inf";
  return format_double(v);
}

}  // namespace

std::string_view health_state_name(HealthState state) noexcept {
  switch (state) {
    case HealthState::kOk: return "ok";
    case HealthState::kDegraded: return "degraded";
    case HealthState::kFailed: return "failed";
  }
  return "unknown";
}

std::string_view slo_metric_name(SloSpec::Metric metric) noexcept {
  switch (metric) {
    case SloSpec::Metric::kNoiseFloor: return "noise_floor";
    case SloSpec::Metric::kMinSnrDb: return "min_snr_db";
    case SloSpec::Metric::kOnsetRateHz: return "onset_rate_hz";
    case SloSpec::Metric::kSilenceS: return "silence_s";
    case SloSpec::Metric::kDropCount: return "drop_count";
    case SloSpec::Metric::kStageLatencyP99: return "stage_latency_p99";
  }
  return "unknown";
}

// --- MicSignalEstimator ------------------------------------------------

MicSignalEstimator::MicSignalEstimator(const Health* owner,
                                       const HealthConfig& config)
    : owner_(owner),
      config_(&config),
      min_snr_db_(kInf),
      snr_db_(config.watch_count),
      alert_slots_(config.alert_capacity == 0 ? 1 : config.alert_capacity) {
  // mo: pre-publication init — the estimator is not shared yet
  for (auto& s : snr_db_) s.store(kNan, std::memory_order_relaxed);
}

void MicSignalEstimator::begin_block(double block_end_s,
                                     const BlockSignalStats& stats) noexcept {
  prev_block_end_s_ = first_block_ ? block_end_s : block_end_s_;
  block_end_s_ = block_end_s;
  onsets_in_block_ = 0.0;
  // mo: single-writer readback of its own gauge, no cross-thread edge
  double floor = noise_floor_.load(std::memory_order_relaxed);
  if (first_block_) {
    floor = stats.noise_floor;
    // Silence is measured from stream start until a watch is heard.
    last_signal_s_ = prev_block_end_s_;
  } else {
    floor += config_->noise_floor_alpha * (stats.noise_floor - floor);
  }
  // mo: monitoring gauge publish, readers tolerate staleness
  noise_floor_.store(floor, std::memory_order_relaxed);
}

void MicSignalEstimator::observe_watch(std::size_t watch, bool present,
                                       bool onset, double amplitude,
                                       CauseId evidence) noexcept {
  if (onset) onsets_in_block_ += 1.0;
  if (!present) return;
  last_signal_s_ = block_end_s_;
  if (evidence != 0) last_evidence_ = evidence;
  if (watch >= snr_db_.size() || amplitude <= 0.0) return;
  // mo: single-writer readback of its own gauge, no cross-thread edge
  const double floor = noise_floor_.load(std::memory_order_relaxed);
  if (floor <= 0.0) return;  // no noise estimate yet: SNR undefined
  const double snr = 20.0 * std::log10(amplitude / floor);
  // mo: single-writer readback of its own gauge, no cross-thread edge
  const double cur = snr_db_[watch].load(std::memory_order_relaxed);
  const double next =
      std::isnan(cur) ? snr : cur + config_->snr_alpha * (snr - cur);
  // mo: monitoring gauge publish, readers tolerate staleness
  snr_db_[watch].store(next, std::memory_order_relaxed);
}

void MicSignalEstimator::end_block() MDN_CHECK_NOEXCEPT {
  const double dt = block_end_s_ - prev_block_end_s_;
  if (dt > 0.0) {
    const double alpha = 1.0 - std::exp(-dt / config_->onset_rate_tau_s);
    // mo: single-writer readback of its own gauge, no cross-thread edge
    double rate = onset_rate_hz_.load(std::memory_order_relaxed);
    rate += alpha * (onsets_in_block_ / dt - rate);
    // mo: monitoring gauge publish, readers tolerate staleness
    onset_rate_hz_.store(rate, std::memory_order_relaxed);
  }
  // mo: monitoring gauge publish, readers tolerate staleness
  silence_s_.store(block_end_s_ - last_signal_s_, std::memory_order_relaxed);
  double min_snr = kInf;
  for (std::size_t w = 0; w < snr_db_.size(); ++w) {
    // mo: single-writer readback of its own gauge, no cross-thread edge
    const double s = snr_db_[w].load(std::memory_order_relaxed);
    if (!std::isnan(s) && s < min_snr) min_snr = s;
  }
  // mo: monitoring gauge publish, readers tolerate staleness
  min_snr_db_.store(min_snr, std::memory_order_relaxed);
  // mo: monitoring counter, no ordering needed with other state
  blocks_.fetch_add(1, std::memory_order_relaxed);

  // Rule pass: track each objective's for-duration window at block
  // granularity, then move to the worst severity among firing rules.
  const std::size_t rules =
      std::min(owner_->slos_.size(), held_since_s_.size());
  HealthState target = HealthState::kOk;
  std::uint32_t firing_rule = kHealthNoRule;
  double firing_value = 0.0;
  for (std::size_t r = 0; r < rules; ++r) {
    const SloSpec& spec = owner_->slos_[r];
    const double v = metric_value(spec);
    const bool cond = spec.op == SloSpec::Op::kAbove ? v > spec.threshold
                                                     : v < spec.threshold;
    if (!cond) {
      held_since_s_[r] = kNan;
      continue;
    }
    if (std::isnan(held_since_s_[r])) held_since_s_[r] = prev_block_end_s_;
    if (block_end_s_ - held_since_s_[r] < spec.for_s) continue;
    if (static_cast<int>(spec.severity) > static_cast<int>(target)) {
      target = spec.severity;
      firing_rule = static_cast<std::uint32_t>(r);
      firing_value = v;
    }
  }
  // mo: single-writer readback of its own gauge, no cross-thread edge
  const auto cur = static_cast<HealthState>(
      state_.load(std::memory_order_relaxed));
  if (target == cur) {
    first_block_ = false;
    return;
  }
  // mo: monitoring gauge publish, readers tolerate staleness
  state_.store(static_cast<std::uint8_t>(target), std::memory_order_relaxed);
  PendingAlert alert;
  alert.time_s = block_end_s_;
  alert.rule = firing_rule;
  alert.from = cur;
  alert.to = target;
  alert.value = firing_value;
  alert.evidence = last_evidence_;
  if (firing_rule != kHealthNoRule &&
      owner_->slos_[firing_rule].metric == SloSpec::Metric::kDropCount) {
    // mo: best-effort evidence hint; any recent drop's id is acceptable
    alert.evidence = drop_evidence_.load(std::memory_order_relaxed);
  }
  queue_alert(alert);
  first_block_ = false;
}

void MicSignalEstimator::note_drop(CauseId evidence) noexcept {
  // mo: monitoring counter, no ordering needed with other state
  drops_.fetch_add(1, std::memory_order_relaxed);
  if (evidence != 0) {
    // mo: best-effort evidence hint; any recent drop's id is acceptable
    drop_evidence_.store(evidence, std::memory_order_relaxed);
  }
}

double MicSignalEstimator::snr_db(std::size_t watch) const noexcept {
  if (watch >= snr_db_.size()) return kNan;
  // mo: monitoring gauge, staleness tolerated by every reader
  return snr_db_[watch].load(std::memory_order_relaxed);
}

double MicSignalEstimator::metric_value(const SloSpec& spec) const noexcept {
  switch (spec.metric) {
    case SloSpec::Metric::kNoiseFloor:
      // mo: single-writer readback of its own gauge, no cross-thread edge
      return noise_floor_.load(std::memory_order_relaxed);
    case SloSpec::Metric::kMinSnrDb:
      // mo: single-writer readback of its own gauge, no cross-thread edge
      return min_snr_db_.load(std::memory_order_relaxed);
    case SloSpec::Metric::kOnsetRateHz:
      // mo: single-writer readback of its own gauge, no cross-thread edge
      return onset_rate_hz_.load(std::memory_order_relaxed);
    case SloSpec::Metric::kSilenceS:
      // mo: single-writer readback of its own gauge, no cross-thread edge
      return silence_s_.load(std::memory_order_relaxed);
    case SloSpec::Metric::kDropCount:
      // mo: monitoring counter, staleness only delays the rule a block
      return static_cast<double>(drops_.load(std::memory_order_relaxed));
    case SloSpec::Metric::kStageLatencyP99:
      // NaN until the owner publishes, so comparisons stay false and
      // the rule cannot fire on unprofiled stages.
      // mo: owner-published gauge, staleness tolerated by the rule pass
      return owner_->stage_latency_s_[static_cast<std::size_t>(spec.stage)]
          .load(std::memory_order_relaxed);
  }
  return 0.0;
}

void MicSignalEstimator::queue_alert(const PendingAlert& alert) MDN_CHECK_NOEXCEPT {
  // mo: producer-owned cursor, only this thread advances it
  const std::uint64_t head = alert_head_.load(std::memory_order_relaxed);
  // mo: pairs with poll()'s release tail store — the consumer's slot
  // reads happen-before this producer reuses the slot
  const std::uint64_t tail = alert_tail_.load(std::memory_order_acquire);
  if (head - tail >= alert_slots_.size()) {
    // mo: monitoring counter, no ordering needed with other state
    alert_overflow_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  alert_slots_[head % alert_slots_.size()].write(alert);
  // mo: release publishes the filled slot to poll()'s acquire head load
  alert_head_.store(head + 1, std::memory_order_release);
}

// --- Health ------------------------------------------------------------

Health::Health(HealthConfig config) : config_(config) {
  if (config_.alert_capacity == 0) config_.alert_capacity = 1;
  // mo: pre-publication init — the engine is not shared yet
  for (auto& s : stage_latency_s_) s.store(kNan, std::memory_order_relaxed);
}

void Health::publish_stage_latency(LatencyStage stage,
                                   double p99_s) noexcept {
  // mo: monitoring gauge publish, readers tolerate staleness
  stage_latency_s_[static_cast<std::size_t>(stage)].store(
      p99_s, std::memory_order_relaxed);
}

double Health::stage_latency_p99_s(LatencyStage stage) const noexcept {
  // mo: monitoring gauge, staleness tolerated by every reader
  return stage_latency_s_[static_cast<std::size_t>(stage)].load(
      std::memory_order_relaxed);
}

std::uint32_t Health::add_mic(std::string name) {
  const auto id = static_cast<std::uint32_t>(estimators_.size());
  mic_names_.push_back(std::move(name));
  estimators_.emplace_back(new MicSignalEstimator(this, config_));
  estimators_.back()->held_since_s_.assign(slos_.size(), kNan);
  alert_counts_.push_back(0);
  Registry& reg = Registry::global();
  const std::string prefix = "health/mic/" + std::to_string(id);
  state_gauges_.push_back(&reg.gauge(prefix + "/state"));
  alert_counters_.push_back(&reg.counter(prefix + "/alerts"));
  if (alerts_total_ == nullptr) {
    alerts_total_ = &reg.counter("health/alerts");
  }
  return id;
}

void Health::add_slo(SloSpec spec) {
  slos_.push_back(std::move(spec));
  for (auto& est : estimators_) {
    est->held_since_s_.assign(slos_.size(), kNan);
  }
}

std::size_t Health::poll() {
  Journal& journal = Journal::global();
  std::size_t drained = 0;
  for (std::uint32_t mic = 0; mic < estimators_.size(); ++mic) {
    MicSignalEstimator& est = *estimators_[mic];
    // mo: consumer-owned cursor, only this thread advances it
    std::uint64_t tail = est.alert_tail_.load(std::memory_order_relaxed);
    // mo: pairs with queue_alert's release head store — slot contents
    // written before the publish are visible below
    const std::uint64_t head =
        est.alert_head_.load(std::memory_order_acquire);
    while (tail != head) {
      const MicSignalEstimator::PendingAlert p =
          est.alert_slots_[tail % est.alert_slots_.size()].read();
      HealthAlert alert;
      alert.time_s = p.time_s;
      alert.mic = mic;
      alert.rule = p.rule;
      alert.from = p.from;
      alert.to = p.to;
      alert.value = p.value;
      alert.evidence = p.evidence;
      if (journal.enabled()) {
        JournalRecord rec;
        rec.cause = p.evidence;
        rec.sim_ns = std::llround(p.time_s * 1e9);
        rec.value = p.value;
        rec.aux = (static_cast<std::uint64_t>(p.rule) << 32) |
                  (static_cast<std::uint64_t>(p.from) << 8) |
                  static_cast<std::uint64_t>(p.to);
        rec.mic = mic;
        rec.kind = JournalKind::kHealthAlert;
        set_journal_label(rec, p.rule == kHealthNoRule
                                   ? std::string_view("recovered")
                                   : std::string_view(slos_[p.rule].name));
        alert.record = journal.append(rec);
      }
      alerts_.push_back(alert);
      ++alert_counts_[mic];
      alert_counters_[mic]->inc();
      alerts_total_->inc();
      ++tail;
      ++drained;
    }
    // mo: release recycles the drained slots to queue_alert's acquire
    // tail load
    est.alert_tail_.store(tail, std::memory_order_release);
    // mo: monitoring gauge, staleness tolerated by every reader
    state_gauges_[mic]->set(static_cast<std::int64_t>(
        est.state_.load(std::memory_order_relaxed)));
  }
  return drained;
}

std::uint64_t Health::alerts_dropped() const MDN_CHECK_NOEXCEPT {
  std::uint64_t total = 0;
  for (const auto& est : estimators_) total += est->alerts_dropped();
  return total;
}

Health::Report Health::report() const {
  Report report;
  report.mics.reserve(estimators_.size());
  for (std::size_t i = 0; i < estimators_.size(); ++i) {
    const MicSignalEstimator& est = *estimators_[i];
    MicReport mic;
    mic.name = mic_names_[i];
    mic.state = est.state();
    mic.noise_floor = est.noise_floor();
    mic.min_snr_db = est.min_snr_db();
    mic.onset_rate_hz = est.onset_rate_hz();
    mic.silence_s = est.silence_s();
    mic.drops = est.drops();
    mic.blocks = est.blocks();
    mic.alerts = alert_counts_[i];
    if (static_cast<int>(mic.state) > static_cast<int>(report.worst)) {
      report.worst = mic.state;
    }
    report.mics.push_back(std::move(mic));
  }
  report.alerts = alerts_.size();
  return report;
}

std::string Health::render() const {
  const Report rep = report();
  std::string out;
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "health: %zu mic(s), %zu rule(s), worst=%s, %zu alert(s)\n",
                rep.mics.size(), slos_.size(),
                std::string(health_state_name(rep.worst)).c_str(),
                rep.alerts);
  out += buf;
  out +=
      "  mic               state      noise_floor  min_snr_db  onset_hz"
      "  silence_s   drops  blocks\n";
  for (const MicReport& mic : rep.mics) {
    std::snprintf(buf, sizeof(buf),
                  "  %-17s %-9s  %11.6g  %10.6g  %8.3g  %9.4g  %6llu  %6llu\n",
                  mic.name.c_str(),
                  std::string(health_state_name(mic.state)).c_str(),
                  mic.noise_floor, mic.min_snr_db, mic.onset_rate_hz,
                  mic.silence_s,
                  static_cast<unsigned long long>(mic.drops),
                  static_cast<unsigned long long>(mic.blocks));
    out += buf;
  }
  for (const HealthAlert& alert : alerts_) {
    const bool recovery = alert.rule == kHealthNoRule;
    std::snprintf(
        buf, sizeof(buf), "  t=%9.4fs  %-17s %-20s %s->%s value=%.6g\n",
        alert.time_s, mic_names_[alert.mic].c_str(),
        recovery ? "recovered" : slos_[alert.rule].name.c_str(),
        std::string(health_state_name(alert.from)).c_str(),
        std::string(health_state_name(alert.to)).c_str(), alert.value);
    out += buf;
  }
  return out;
}

std::string Health::to_prometheus() const {
  const Report rep = report();
  std::string out;
  const auto mic_label = [this](std::uint32_t mic) {
    return "{mic=\"" + prometheus_label_value(mic_names_[mic]) + "\"}";
  };
  const auto family = [&out](std::string_view name, std::string_view type) {
    out += "# TYPE mdn_health_";
    out += name;
    out += " ";
    out += type;
    out += "\n";
  };

  family("component_state", "gauge");
  for (std::uint32_t i = 0; i < rep.mics.size(); ++i) {
    out += "mdn_health_component_state" + mic_label(i) + " " +
           std::to_string(static_cast<int>(rep.mics[i].state)) + "\n";
  }
  family("noise_floor", "gauge");
  for (std::uint32_t i = 0; i < rep.mics.size(); ++i) {
    out += "mdn_health_noise_floor" + mic_label(i) + " " +
           prom_value(rep.mics[i].noise_floor) + "\n";
  }
  family("min_snr_db", "gauge");
  for (std::uint32_t i = 0; i < rep.mics.size(); ++i) {
    out += "mdn_health_min_snr_db" + mic_label(i) + " " +
           prom_value(rep.mics[i].min_snr_db) + "\n";
  }
  family("snr_db", "gauge");
  for (std::uint32_t i = 0; i < estimators_.size(); ++i) {
    const MicSignalEstimator& est = *estimators_[i];
    for (std::size_t w = 0; w < config_.watch_count; ++w) {
      const double snr = est.snr_db(w);
      if (std::isnan(snr)) continue;  // never-heard watches stay silent
      out += "mdn_health_snr_db{mic=\"" +
             prometheus_label_value(mic_names_[i]) + "\",watch=\"" +
             std::to_string(w) + "\"} " + prom_value(snr) + "\n";
    }
  }
  family("onset_rate_hz", "gauge");
  for (std::uint32_t i = 0; i < rep.mics.size(); ++i) {
    out += "mdn_health_onset_rate_hz" + mic_label(i) + " " +
           prom_value(rep.mics[i].onset_rate_hz) + "\n";
  }
  family("silence_seconds", "gauge");
  for (std::uint32_t i = 0; i < rep.mics.size(); ++i) {
    out += "mdn_health_silence_seconds" + mic_label(i) + " " +
           prom_value(rep.mics[i].silence_s) + "\n";
  }
  family("drops_total", "counter");
  for (std::uint32_t i = 0; i < rep.mics.size(); ++i) {
    out += "mdn_health_drops_total" + mic_label(i) + " " +
           std::to_string(rep.mics[i].drops) + "\n";
  }
  family("alerts_total", "counter");
  for (std::uint32_t i = 0; i < rep.mics.size(); ++i) {
    // Per-severity split of this mic's drained alerts.
    std::uint64_t by_state[3] = {0, 0, 0};
    for (const HealthAlert& alert : alerts_) {
      if (alert.mic == i) ++by_state[static_cast<int>(alert.to)];
    }
    for (int s = 0; s < 3; ++s) {
      out += "mdn_health_alerts_total{mic=\"" +
             prometheus_label_value(mic_names_[i]) + "\",severity=\"" +
             std::string(health_state_name(static_cast<HealthState>(s))) +
             "\"} " + std::to_string(by_state[s]) + "\n";
    }
  }
  return out;
}

std::string Health::to_health_jsonl() const {
  // Content order, not drain order: poll() interleaves microphones by
  // how far their workers had advanced, which varies with scheduling.
  std::vector<HealthAlert> sorted = alerts_;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const HealthAlert& a, const HealthAlert& b) {
                     if (a.time_s != b.time_s) return a.time_s < b.time_s;
                     if (a.mic != b.mic) return a.mic < b.mic;
                     if (a.rule != b.rule) return a.rule < b.rule;
                     if (a.from != b.from) return a.from < b.from;
                     return a.to < b.to;
                   });
  std::string out;
  out.reserve(sorted.size() * 160);
  for (const HealthAlert& alert : sorted) {
    const bool recovery = alert.rule == kHealthNoRule;
    out += "{\"time_s\":" + format_double(alert.time_s);
    out += ",\"mic\":" + std::to_string(alert.mic);
    out += ",\"mic_name\":\"" + json_escape(mic_names_[alert.mic]) + "\"";
    out += ",\"rule\":\"";
    out += recovery ? "recovered" : json_escape(slos_[alert.rule].name);
    out += "\",\"metric\":\"";
    out += recovery ? std::string_view("none")
                    : slo_metric_name(slos_[alert.rule].metric);
    out += "\",\"from\":\"";
    out += health_state_name(alert.from);
    out += "\",\"to\":\"";
    out += health_state_name(alert.to);
    out += "\",\"value\":" + format_double(alert.value);
    out += "}\n";
  }
  return out;
}

}  // namespace mdn::obs
