#include "obs/scoreboard.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <set>

#include "obs/export.h"

namespace mdn::obs {
namespace {

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

/// Watch list indexed for O(log n) nearest-frequency lookup.  The fleet
/// bench watches thousands of tones over hundreds of thousands of
/// journal records; the old linear scan per record was quadratic there.
class WatchIndex {
 public:
  explicit WatchIndex(const std::vector<double>& watch_hz) {
    sorted_.reserve(watch_hz.size());
    for (std::size_t w = 0; w < watch_hz.size(); ++w) {
      sorted_.push_back({watch_hz[w], static_cast<int>(w)});
    }
    std::sort(sorted_.begin(), sorted_.end());
  }

  /// Index (in the original watch order) of the closest watch within
  /// tolerance, or -1.  Ties prefer the later original index, matching
  /// the previous linear scan's `<=` update rule.
  int match(double frequency_hz, double tolerance_hz) const {
    if (sorted_.empty()) return -1;
    const auto it = std::lower_bound(sorted_.begin(), sorted_.end(),
                                     std::pair{frequency_hz, -1});
    int best = -1;
    double best_diff = tolerance_hz;
    const auto consider = [&](const std::pair<double, int>& cand) {
      const double diff = std::abs(cand.first - frequency_hz);
      if (diff < best_diff ||
          (diff == best_diff && cand.second > best)) {
        best_diff = diff;
        best = cand.second;
      }
    };
    if (it != sorted_.end()) consider(*it);
    if (it != sorted_.begin()) consider(*(it - 1));
    // Equal frequencies can repeat in a caller-supplied list; scan the
    // run of exact matches so the tie rule sees them all.
    for (auto fwd = it;
         fwd != sorted_.end() && fwd->first == frequency_hz; ++fwd) {
      consider(*fwd);
    }
    return best;
  }

 private:
  std::vector<std::pair<double, int>> sorted_;
};

std::string mic_label(std::span<const std::string> names, std::size_t mic) {
  if (mic < names.size()) return names[mic];
  return "mic" + std::to_string(mic);
}

}  // namespace

double Scoreboard::Cell::recall() const noexcept {
  if (emitted == 0) return 1.0;
  return static_cast<double>(detected) / static_cast<double>(emitted);
}

double Scoreboard::Cell::precision() const noexcept {
  const std::uint64_t tp = detected + duplicates;
  if (tp + false_positives == 0) return 1.0;
  return static_cast<double>(tp) /
         static_cast<double>(tp + false_positives);
}

double Scoreboard::Cell::latency_quantile(double q) const noexcept {
  if (latencies_s.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(latencies_s.size())));
  return latencies_s[rank == 0 ? 0 : rank - 1];
}

Scoreboard Scoreboard::build(const Journal& journal,
                             ScoreboardConfig config) {
  const auto records = journal.snapshot();
  Scoreboard board;

  board.watch_hz_ = config.watch_hz;
  if (board.watch_hz_.empty()) {
    for (const auto& r : records) {
      if ((r.kind == JournalKind::kToneEmitted ||
           r.kind == JournalKind::kToneDetected) &&
          r.frequency_hz > 0.0) {
        board.watch_hz_.push_back(r.frequency_hz);
      }
    }
    std::sort(board.watch_hz_.begin(), board.watch_hz_.end());
    board.watch_hz_.erase(
        std::unique(board.watch_hz_.begin(), board.watch_hz_.end()),
        board.watch_hz_.end());
  }

  board.mics_ = config.mics;
  for (const auto& r : records) {
    if (r.mic != kJournalNoMic && r.mic + 1u > board.mics_) {
      board.mics_ = r.mic + 1u;
    }
  }
  if (board.mics_ == 0) board.mics_ = 1;
  board.cells_.assign(board.mics_ * board.watch_hz_.size(), Cell{});
  if (board.watch_hz_.empty()) return board;

  const auto cell_at = [&board](std::size_t mic, std::size_t w) -> Cell& {
    return board.cells_[mic * board.watch_hz_.size() + w];
  };
  const WatchIndex index(board.watch_hz_);

  // Pass 1 — ground truth: map every tracked emission to its watch.  A
  // mic-tagged emission (fleet bridge scoped to one room) is truth for
  // that mic only; an untagged one is truth for every mic.
  std::map<CauseId, std::pair<int, std::int64_t>> emissions;  // id -> (w, t)
  for (const auto& r : records) {
    if (r.kind != JournalKind::kToneEmitted) continue;
    const int w = index.match(r.frequency_hz, config.tolerance_hz);
    if (w < 0) continue;  // outside the watch list: not scored
    emissions[r.id] = {w, r.sim_ns};
    if (r.mic != kJournalNoMic) {
      if (r.mic < board.mics_) {
        ++cell_at(r.mic, static_cast<std::size_t>(w)).emitted;
      }
      continue;
    }
    for (std::size_t mic = 0; mic < board.mics_; ++mic) {
      ++cell_at(mic, static_cast<std::size_t>(w)).emitted;
    }
  }

  // Pass 2 — detections: cite-an-emission is a TP, otherwise an FP.
  std::set<std::pair<CauseId, std::uint32_t>> heard;  // (emission, mic)
  for (const auto& r : records) {
    if (r.kind != JournalKind::kToneDetected) continue;
    const std::uint32_t mic = r.mic == kJournalNoMic ? 0 : r.mic;
    if (mic >= board.mics_) continue;
    const int w = index.match(r.frequency_hz, config.tolerance_hz);
    if (w < 0) continue;
    Cell& cell = cell_at(mic, static_cast<std::size_t>(w));
    const auto it = emissions.find(r.cause);
    if (it == emissions.end()) {
      ++cell.false_positives;
      continue;
    }
    if (heard.insert({r.cause, mic}).second) {
      ++cell.detected;
      cell.latencies_s.push_back(
          static_cast<double>(r.sim_ns - it->second.second) / 1e9);
    } else {
      ++cell.duplicates;
    }
  }

  // Pass 3 — drop attribution: a dropped block citing an emission that
  // was never heard by that microphone accounts for the miss.
  std::set<std::pair<CauseId, std::uint32_t>> drop_attributed;
  for (const auto& r : records) {
    if (r.kind != JournalKind::kBlockDropped || r.cause == 0) continue;
    const std::uint32_t mic = r.mic == kJournalNoMic ? 0 : r.mic;
    if (mic >= board.mics_) continue;
    const auto it = emissions.find(r.cause);
    if (it == emissions.end()) continue;
    if (heard.count({r.cause, mic}) != 0) continue;  // heard anyway
    if (drop_attributed.insert({r.cause, mic}).second) {
      ++cell_at(mic, static_cast<std::size_t>(it->second.first)).dropped;
    }
  }

  for (Cell& cell : board.cells_) {
    cell.missed = cell.emitted - std::min(cell.emitted, cell.detected);
    std::sort(cell.latencies_s.begin(), cell.latencies_s.end());
  }
  return board;
}

const Scoreboard::Cell& Scoreboard::cell(std::size_t mic,
                                         std::size_t watch) const {
  return cells_.at(mic * watch_hz_.size() + watch);
}

Scoreboard::Cell Scoreboard::grand_totals() const {
  Cell total;
  for (std::size_t mic = 0; mic < mics_; ++mic) {
    const Cell c = totals(mic);
    total.emitted += c.emitted;
    total.detected += c.detected;
    total.duplicates += c.duplicates;
    total.false_positives += c.false_positives;
    total.missed += c.missed;
    total.dropped += c.dropped;
    total.latencies_s.insert(total.latencies_s.end(),
                             c.latencies_s.begin(), c.latencies_s.end());
  }
  std::sort(total.latencies_s.begin(), total.latencies_s.end());
  return total;
}

Scoreboard::Cell Scoreboard::totals(std::size_t mic) const {
  Cell total;
  for (std::size_t w = 0; w < watch_hz_.size(); ++w) {
    const Cell& c = cell(mic, w);
    total.emitted += c.emitted;
    total.detected += c.detected;
    total.duplicates += c.duplicates;
    total.false_positives += c.false_positives;
    total.missed += c.missed;
    total.dropped += c.dropped;
    total.latencies_s.insert(total.latencies_s.end(),
                             c.latencies_s.begin(), c.latencies_s.end());
  }
  std::sort(total.latencies_s.begin(), total.latencies_s.end());
  return total;
}

void Scoreboard::export_to(Registry& registry,
                           const std::string& prefix) const {
  for (std::size_t mic = 0; mic < mics_; ++mic) {
    for (std::size_t w = 0; w < watch_hz_.size(); ++w) {
      const Cell& c = cell(mic, w);
      if (c.empty()) continue;
      const std::string base = prefix + "/mic" + std::to_string(mic) +
                               "/watch" + std::to_string(w) + "/";
      registry.counter(base + "emitted").add(c.emitted);
      registry.counter(base + "detected").add(c.detected);
      registry.counter(base + "duplicates").add(c.duplicates);
      registry.counter(base + "false_positives").add(c.false_positives);
      registry.counter(base + "missed").add(c.missed);
      registry.counter(base + "dropped").add(c.dropped);
      Histogram& latency = registry.histogram(base + "latency_ns");
      for (double s : c.latencies_s) latency.record(s * 1e9);
    }
  }
}

std::string Scoreboard::to_prometheus(
    std::span<const std::string> mic_names) const {
  const char* const kSeries[] = {"emitted", "detected", "false_positives",
                                 "missed", "dropped"};
  std::string out;
  for (const char* series : kSeries) {
    out += "# TYPE mdn_scoreboard_";
    out += series;
    out += " gauge\n";
  }
  out += "# TYPE mdn_scoreboard_recall gauge\n";
  out += "# TYPE mdn_scoreboard_latency_seconds_p50 gauge\n";
  out += "# TYPE mdn_scoreboard_latency_seconds_p95 gauge\n";
  for (std::size_t mic = 0; mic < mics_; ++mic) {
    const std::string labels =
        "{mic=\"" + prometheus_label_value(mic_label(mic_names, mic)) +
        "\",watch_hz=\"";
    for (std::size_t w = 0; w < watch_hz_.size(); ++w) {
      const Cell& c = cell(mic, w);
      if (c.empty()) continue;
      const std::string full =
          labels + format_double(watch_hz_[w]) + "\"} ";
      const std::uint64_t values[] = {c.emitted, c.detected,
                                      c.false_positives, c.missed,
                                      c.dropped};
      for (std::size_t i = 0; i < std::size(kSeries); ++i) {
        out += "mdn_scoreboard_";
        out += kSeries[i];
        out += full + std::to_string(values[i]) + "\n";
      }
      out += "mdn_scoreboard_recall" + full + format_double(c.recall()) +
             "\n";
      out += "mdn_scoreboard_latency_seconds_p50" + full +
             format_double(c.latency_quantile(0.5)) + "\n";
      out += "mdn_scoreboard_latency_seconds_p95" + full +
             format_double(c.latency_quantile(0.95)) + "\n";
    }
  }
  return out;
}

std::string Scoreboard::render(
    std::span<const std::string> mic_names) const {
  std::string out =
      "    mic            watch_hz  emitted  detected  fp  missed  dropped"
      "  recall  precision  p50_ms  p95_ms\n";
  char buf[192];
  for (std::size_t mic = 0; mic < mics_; ++mic) {
    for (std::size_t w = 0; w < watch_hz_.size(); ++w) {
      const Cell& c = cell(mic, w);
      if (c.empty()) continue;
      std::snprintf(
          buf, sizeof(buf),
          "    %-12s %10.1f %8llu %9llu %3llu %7llu %8llu  %6.3f %10.3f"
          " %7.1f %7.1f\n",
          mic_label(mic_names, mic).c_str(), watch_hz_[w],
          static_cast<unsigned long long>(c.emitted),
          static_cast<unsigned long long>(c.detected),
          static_cast<unsigned long long>(c.false_positives),
          static_cast<unsigned long long>(c.missed),
          static_cast<unsigned long long>(c.dropped), c.recall(),
          c.precision(), c.latency_quantile(0.5) * 1e3,
          c.latency_quantile(0.95) * 1e3);
      out += buf;
    }
  }
  return out;
}

}  // namespace mdn::obs
