// Exporters: turn a metrics Snapshot or a Tracer into portable text.
//
//   * to_prometheus()   — Prometheus exposition format ("# TYPE" lines,
//                         cumulative histogram buckets with le labels);
//   * to_jsonl()        — one JSON object per metric per line;
//   * to_json()         — a single JSON object keyed by metric name (the
//                         stable "metrics" payload of bench JSON files);
//   * to_chrome_trace() — Chrome trace_event JSON, loadable in
//                         chrome://tracing or https://ui.perfetto.dev.
//                         Timestamps are simulated microseconds; span
//                         durations are wall-clock, so the viewer shows
//                         where wall time went along the sim timeline.
#pragma once

#include <string>
#include <string_view>

#include "obs/journal.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mdn::obs {

std::string to_prometheus(const Snapshot& snapshot);
std::string to_jsonl(const Snapshot& snapshot);
std::string to_json(const Snapshot& snapshot);
std::string to_chrome_trace(const Tracer& tracer);

/// Chrome trace with the journal overlaid: every journal record becomes
/// an instant event on a per-kind "journal/<kind>" track, and each
/// cause/cause2 link becomes a flow arrow ('s'/'f' pair) from the cause
/// record to its effect — the §4 knock chain renders as arrows from the
/// emitted tones through the FSM to the FlowMod.
std::string to_chrome_trace(const Tracer& tracer, const Journal& journal);

/// Escapes a string for inclusion inside JSON quotes.
std::string json_escape(std::string_view s);

/// Maps a hierarchical metric name to a Prometheus-legal one
/// ("net/switch/s1/queue_depth" -> "mdn_net_switch_s1_queue_depth").
/// Names must not be empty and must not start with a digit; both are
/// normalised so the output always satisfies [a-zA-Z_][a-zA-Z0-9_]*.
std::string prometheus_name(std::string_view name);

/// Escapes a Prometheus label *value* per the text exposition format:
/// backslash -> \\, double quote -> \", line feed -> \n.  Everything
/// else (including '/', tabs, UTF-8) passes through unchanged, so
/// hostile names round-trip.
std::string prometheus_label_value(std::string_view value);

/// Writes `content` to `path`; returns false (without throwing) on I/O
/// failure so instrumented binaries never die on a read-only directory.
bool write_file(const std::string& path, std::string_view content);

}  // namespace mdn::obs
