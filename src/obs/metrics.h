// Metrics registry: counters, gauges and log-bucketed histograms.
//
// Every layer of the stack registers instruments here by hierarchical
// name ("mdn/controller/blocks", "net/switch/s1/port0/queue_depth",
// "dsp/fft/wall_ns") and bumps them on its hot path.  The design rule is
// lock-free-on-hot-path: registration takes a mutex once, but add() /
// set() / record() are relaxed atomics, so instrumenting a path costs a
// few nanoseconds and never blocks — and, critically for the simulator,
// never perturbs event ordering.  Exporters (obs/export.h) turn a
// Snapshot into Prometheus text, JSONL or plain JSON.
#pragma once

#include <atomic>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.h"

namespace mdn::obs {

namespace detail {

inline void atomic_add(std::atomic<double>& a, double d) noexcept {
  // mo: lock-free accumulate; the CAS retry loop only needs atomicity
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
  }
}

inline void atomic_min(std::atomic<double>& a, double v) noexcept {
  // mo: lock-free accumulate; the CAS retry loop only needs atomicity
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

inline void atomic_max(std::atomic<double>& a, double v) noexcept {
  // mo: lock-free accumulate; the CAS retry loop only needs atomicity
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

inline void atomic_max(std::atomic<std::int64_t>& a, std::int64_t v) noexcept {
  // mo: lock-free accumulate; the CAS retry loop only needs atomicity
  std::int64_t cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace detail

/// Monotonic event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    // mo: monitoring counter, no ordering needed with other state
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  void inc() noexcept { add(1); }
  std::uint64_t value() const noexcept {
    // mo: monitoring counter, no ordering needed with other state
    return value_.load(std::memory_order_relaxed);
  }
  // mo: test/bench reset; callers quiesce writers first
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous level (queue depth, pending events).  Remembers the
/// largest value ever set so exports double as high-watermarks.
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    // mo: monitoring gauge, staleness tolerated by every reader (gauge publish)
    value_.store(v, std::memory_order_relaxed);
    detail::atomic_max(max_, v);
  }
  void add(std::int64_t d) noexcept {
    // mo: monitoring counter, no ordering needed with other state
    const std::int64_t v = value_.fetch_add(d, std::memory_order_relaxed) + d;
    detail::atomic_max(max_, v);
  }
  std::int64_t value() const noexcept {
    // mo: monitoring gauge, staleness tolerated by every reader
    return value_.load(std::memory_order_relaxed);
  }
  std::int64_t max_seen() const noexcept {
    // mo: monitoring gauge, staleness tolerated by every reader
    return max_.load(std::memory_order_relaxed);
  }
  void reset() noexcept {
    // mo: test/bench reset; callers quiesce writers first
    value_.store(0, std::memory_order_relaxed);
    // mo: test/bench reset; callers quiesce writers first
    max_.store(std::numeric_limits<std::int64_t>::min(),
               std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
  std::atomic<std::int64_t> max_{std::numeric_limits<std::int64_t>::min()};
};

/// Geometric bucket layout.  The defaults cover wall-clock nanoseconds
/// from 32 ns to ~100 s at 2^(1/8) resolution (<= ~9% relative error per
/// bucket, tightened further by in-bucket interpolation).
struct HistogramOptions {
  double first_bound = 32.0;                ///< upper bound of bucket 0
  double growth = 1.0905077326652577;       ///< 2^(1/8)
  std::size_t buckets = 256;                ///< last bucket is overflow
};

/// Read-only copy of a histogram with quantile/CDF extraction — the same
/// role dsp::Ecdf plays for exact sample sets, approximated by geometric
/// buckets so the live histogram costs O(1) per record.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::vector<double> bounds;           ///< upper bound per bucket
  std::vector<std::uint64_t> buckets;   ///< parallel counts

  double mean() const noexcept {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
  /// Smallest value v with cdf(v) >= q, by linear interpolation inside
  /// the target bucket.  Edge cases are bounds, not NaN: an empty
  /// histogram returns 0, q <= 0 returns the exact `min`, q >= 1 the
  /// exact `max` (both tracked per sample, so they are not bucket
  /// approximations), and out-of-range q clamps to [0, 1].  The single
  /// exception is q = NaN, which propagates NaN (no quantile is a less
  /// wrong answer than another).  Results are always within [min, max].
  double quantile(double q) const;
  /// Fraction of recorded values <= x.
  double cdf(double x) const;
  /// (x, F(x)) pairs at `points` evenly spaced quantiles, like
  /// dsp::Ecdf::curve — ready to print as a CDF.
  std::vector<std::pair<double, double>> curve(std::size_t points) const;
};

class Histogram {
 public:
  explicit Histogram(const HistogramOptions& options = {});

  void record(double value) noexcept;
  std::uint64_t count() const noexcept {
    // mo: monitoring gauge, staleness tolerated by every reader
    return count_.load(std::memory_order_relaxed);
  }
  // mo: monitoring gauge, staleness tolerated by every reader
  double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  HistogramSnapshot snapshot() const;
  /// Convenience: snapshot().quantile(q).
  double quantile(double q) const { return snapshot().quantile(q); }
  void reset() noexcept;

 private:
  std::size_t bucket_index(double value) const noexcept;

  HistogramOptions options_;
  double inv_log_growth_;
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

enum class Kind { kCounter, kGauge, kHistogram };

struct MetricSnapshot {
  std::string name;
  Kind kind = Kind::kCounter;
  std::uint64_t counter = 0;
  std::int64_t gauge = 0;
  std::int64_t gauge_max = 0;
  HistogramSnapshot hist;
};

/// Sorted by name (registration order is irrelevant).
using Snapshot = std::vector<MetricSnapshot>;

/// Owner of all instruments.  Lookup-or-create is mutex-guarded and
/// returns references that stay valid for the registry's lifetime, so
/// hot paths resolve their instruments once (usually at construction)
/// and then touch only atomics.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide registry every subsystem instruments by default.
  static Registry& global();

  /// Looks up `name`, creating the instrument on first use.  Requesting
  /// an existing name as a different kind throws std::logic_error.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name,
                       const HistogramOptions& options = {});

  bool contains(const std::string& name) const;
  std::size_t size() const;

  Snapshot snapshot() const;

  /// Zeroes every instrument but keeps registrations (and the pointers
  /// held by instrumented components) valid.
  void reset();

 private:
  struct Entry {
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable common::Mutex mu_;
  std::map<std::string, Entry> entries_ MDN_GUARDED_BY(mu_);
};

/// Monotonic wall clock in nanoseconds (steady_clock).
std::int64_t wall_now_ns();

/// RAII wall timer: records elapsed nanoseconds into `hist` (no-op when
/// null) at scope exit.
class ScopedTimerNs {
 public:
  explicit ScopedTimerNs(Histogram* hist) noexcept
      : hist_(hist), start_(hist ? wall_now_ns() : 0) {}
  ScopedTimerNs(const ScopedTimerNs&) = delete;
  ScopedTimerNs& operator=(const ScopedTimerNs&) = delete;
  ~ScopedTimerNs() {
    if (hist_ != nullptr) {
      hist_->record(static_cast<double>(wall_now_ns() - start_));
    }
  }

 private:
  Histogram* hist_;
  std::int64_t start_;
};

}  // namespace mdn::obs
