#include "obs/timeline.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace mdn::obs {
namespace {

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

Timeline::Timeline(TimelineOptions options)
    : capacity_(options.capacity == 0 ? 1 : options.capacity) {
  times_.resize(capacity_, 0);
}

void Timeline::add_track(Track track) {
  if (sampled_ != 0) {
    throw std::logic_error("Timeline: track_* after sample() started");
  }
  tracks_.push_back(std::move(track));
  values_.assign(capacity_ * tracks_.size(), 0.0);
}

void Timeline::track_counter(std::string_view name, const Counter& counter) {
  Track t;
  t.name.assign(name);
  t.counter = &counter;
  add_track(std::move(t));
}

void Timeline::track_gauge(std::string_view name, const Gauge& gauge) {
  Track t;
  t.name.assign(name);
  t.gauge = &gauge;
  add_track(std::move(t));
}

void Timeline::track_counter(Registry& registry, const std::string& name) {
  track_counter(name, registry.counter(name));
}

void Timeline::track_gauge(Registry& registry, const std::string& name) {
  track_gauge(name, registry.gauge(name));
}

void Timeline::sample(std::int64_t sim_ns) noexcept {
  const std::size_t slot = static_cast<std::size_t>(sampled_ % capacity_);
  times_[slot] = sim_ns;
  double* row = values_.data() + slot * tracks_.size();
  for (std::size_t t = 0; t < tracks_.size(); ++t) {
    row[t] = read(tracks_[t]);
  }
  ++sampled_;
}

std::size_t Timeline::size() const noexcept {
  return sampled_ < capacity_ ? static_cast<std::size_t>(sampled_)
                              : capacity_;
}

std::uint64_t Timeline::dropped() const noexcept {
  return sampled_ < capacity_ ? 0 : sampled_ - capacity_;
}

std::size_t Timeline::row_slot(std::size_t row) const noexcept {
  // Oldest resident row sits right after the write cursor once wrapped.
  const std::size_t oldest =
      sampled_ < capacity_ ? 0 : static_cast<std::size_t>(sampled_ % capacity_);
  return (oldest + row) % capacity_;
}

std::int64_t Timeline::time_at(std::size_t row) const {
  if (row >= size()) throw std::out_of_range("Timeline::time_at");
  return times_[row_slot(row)];
}

double Timeline::value_at(std::size_t row, std::size_t track) const {
  if (row >= size()) throw std::out_of_range("Timeline::value_at");
  if (track >= tracks_.size()) throw std::out_of_range("Timeline::value_at");
  return values_[row_slot(row) * tracks_.size() + track];
}

Timeline::Rollup Timeline::rollup(std::size_t track) const {
  Rollup r;
  const std::size_t rows = size();
  if (track >= tracks_.size() || rows == 0) return r;
  r.first = value_at(0, track);
  r.last = value_at(rows - 1, track);
  r.min = r.first;
  r.max = r.first;
  for (std::size_t i = 1; i < rows; ++i) {
    const double v = value_at(i, track);
    r.min = std::min(r.min, v);
    r.max = std::max(r.max, v);
  }
  r.delta = r.last - r.first;
  const std::int64_t window_ns = time_at(rows - 1) - time_at(0);
  if (window_ns > 0) {
    r.rate_per_s = r.delta / (static_cast<double>(window_ns) / 1e9);
  }
  return r;
}

std::string Timeline::to_timeline_jsonl() const {
  std::string out;
  const std::size_t rows = size();
  for (std::size_t i = 0; i < rows; ++i) {
    out += "{\"t_ns\":" + std::to_string(time_at(i)) + ",\"values\":{";
    for (std::size_t t = 0; t < tracks_.size(); ++t) {
      if (t != 0) out += ',';
      out += "\"" + tracks_[t].name + "\":" + format_double(value_at(i, t));
    }
    out += "}}\n";
  }
  return out;
}

std::string Timeline::to_prometheus() const {
  std::string out;
  out += "# TYPE mdn_timeline_samples gauge\n";
  out += "mdn_timeline_samples " + std::to_string(sampled_) + "\n";
  out += "# TYPE mdn_timeline_dropped gauge\n";
  out += "mdn_timeline_dropped " + std::to_string(dropped()) + "\n";
  const auto family = [&out, this](std::string_view name, auto value) {
    out += "# TYPE mdn_timeline_";
    out += name;
    out += " gauge\n";
    for (std::size_t t = 0; t < tracks_.size(); ++t) {
      const Rollup r = rollup(t);
      out += "mdn_timeline_";
      out += name;
      out += "{track=\"" + tracks_[t].name + "\"} " + value(r) + "\n";
    }
  };
  if (size() != 0) {
    family("last", [](const Rollup& r) { return format_double(r.last); });
    family("min", [](const Rollup& r) { return format_double(r.min); });
    family("max", [](const Rollup& r) { return format_double(r.max); });
    family("rate_per_second",
           [](const Rollup& r) { return format_double(r.rate_per_s); });
  }
  return out;
}

std::string Timeline::render_sparklines(std::size_t width) const {
  static constexpr const char* kLevels[] = {" ", "▁", "▂", "▃",
                                            "▄", "▅", "▆", "▇", "█"};
  constexpr std::size_t kLevelCount = 9;
  std::string out;
  const std::size_t rows = size();
  if (rows == 0 || tracks_.empty()) {
    out += "  timeline: no samples\n";
    return out;
  }
  if (width == 0) width = 1;
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "  timeline: %zu row(s), window %.3fs..%.3fs\n", rows,
                static_cast<double>(time_at(0)) / 1e9,
                static_cast<double>(time_at(rows - 1)) / 1e9);
  out += buf;
  for (std::size_t t = 0; t < tracks_.size(); ++t) {
    const Rollup r = rollup(t);
    std::snprintf(buf, sizeof(buf), "  %-26.26s ", tracks_[t].name.c_str());
    out += buf;
    const double span = r.max - r.min;
    // Bucket the window into `width` columns; each column shows the max
    // of its rows so short spikes stay visible.
    const std::size_t columns = std::min(width, rows);
    for (std::size_t c = 0; c < columns; ++c) {
      const std::size_t lo = c * rows / columns;
      const std::size_t hi = std::max(lo + 1, (c + 1) * rows / columns);
      double v = value_at(lo, t);
      for (std::size_t i = lo + 1; i < hi; ++i) {
        v = std::max(v, value_at(i, t));
      }
      std::size_t level = 0;
      if (span > 0.0) {
        level = static_cast<std::size_t>((v - r.min) / span *
                                         (kLevelCount - 1));
        level = std::min(level, kLevelCount - 1);
      } else if (v != 0.0) {
        level = kLevelCount - 1;
      }
      out += kLevels[level];
    }
    std::snprintf(buf, sizeof(buf),
                  "  last=%s min=%s max=%s rate=%s/s\n",
                  format_double(r.last).c_str(), format_double(r.min).c_str(),
                  format_double(r.max).c_str(),
                  format_double(r.rate_per_s).c_str());
    out += buf;
  }
  return out;
}

void Timeline::clear() noexcept {
  sampled_ = 0;
  std::fill(times_.begin(), times_.end(), 0);
  std::fill(values_.begin(), values_.end(), 0.0);
}

}  // namespace mdn::obs
