// ECN/DCTCP-style end-to-end congestion reaction — the in-band baseline
// of §6.
//
// The paper positions music-defined congestion signalling against
// "waiting for source reactions", "modifying the transport protocol, as
// in DataCenter TCP" and "the less efficient Explicit Congestion
// Notification mechanism of TCP".  To compare honestly we implement that
// baseline: queues mark ECN-capable packets past a threshold
// (Port::set_ecn_threshold), the receiver echoes marks back, and this
// rate-based DCTCP-like source scales its rate by the observed marking
// fraction once per update interval.
#pragma once

#include <cstdint>
#include <vector>

#include "net/host.h"

namespace mdn::net {

/// Makes `receiver` echo congestion marks: every received ECN-marked
/// data packet triggers a small ACK back to the sender with ecn_echo
/// set.  (Unmarked packets are not acked — rate control below only needs
/// the marking signal, which keeps the reverse path quiet.)
void attach_ecn_echo(Host& receiver);

struct EcnSourceConfig {
  FlowKey flow;                 ///< forward 5-tuple (reverse is derived)
  std::uint32_t packet_size = 1000;
  SimTime start = 0;
  SimTime stop = 10 * kSecond;
  double initial_pps = 100.0;
  double min_pps = 10.0;
  double max_pps = 1e6;
  /// Additive increase per update interval when no marks are seen.
  double increase_pps = 50.0;
  /// DCTCP gain g for the EWMA of the marking fraction alpha.
  double gain = 0.0625;
  SimTime update_interval = 100 * kMillisecond;
};

/// Rate-based DCTCP-like sender: rate <- rate * (1 - alpha/2) when the
/// last interval saw marks, additive increase otherwise, where alpha is
/// the EWMA'd fraction of echoed marks.
class EcnRateSource {
 public:
  EcnRateSource(Host& host, EcnSourceConfig config);

  void start();

  double current_pps() const noexcept { return rate_pps_; }
  double alpha() const noexcept { return alpha_; }
  std::uint64_t sent() const noexcept { return sent_; }
  std::uint64_t echoes_seen() const noexcept { return echoes_; }

  /// Time of the first rate reduction (-1 before any).  This is the
  /// "source reacted" instant the §6 comparison measures.
  double first_backoff_s() const noexcept { return first_backoff_s_; }

  struct RateSample {
    SimTime time;
    double pps;
  };
  const std::vector<RateSample>& rate_series() const noexcept {
    return rate_series_;
  }

 private:
  void send_next();
  bool update_rate();
  void on_ack(const Packet& pkt);

  Host& host_;
  EcnSourceConfig config_;
  double rate_pps_;
  double alpha_ = 0.0;
  std::uint64_t sent_ = 0;
  std::uint64_t echoes_ = 0;
  std::uint64_t interval_sent_ = 0;
  std::uint64_t interval_echoes_ = 0;
  double first_backoff_s_ = -1.0;
  std::vector<RateSample> rate_series_;
};

}  // namespace mdn::net
