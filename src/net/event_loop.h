// Deterministic discrete-event scheduler.
//
// All network activity — packet transmissions, queue sampling, Music
// Protocol emissions, controller reactions — is driven by this loop.
// Events at equal timestamps run in scheduling order (FIFO), which keeps
// every experiment bit-reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/sim_time.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mdn::net {

class EventLoop {
 public:
  EventLoop();

  using Callback = std::function<void()>;
  using EventId = std::uint64_t;

  SimTime now() const noexcept { return now_; }

  /// Schedules `cb` at absolute time `t` (>= now).  Events scheduled in
  /// the past run at the current time.
  EventId schedule_at(SimTime t, Callback cb);

  /// Schedules `cb` after `delay` nanoseconds.
  EventId schedule_in(SimTime delay, Callback cb);

  /// Schedules `cb` every `period`, starting at now + `first_delay`.
  /// The callback returns false to stop the series.
  void schedule_periodic(SimTime first_delay, SimTime period,
                         std::function<bool()> cb);

  /// Cancels a pending event (no-op if it already ran).
  void cancel(EventId id);

  /// Runs until the event queue is empty.
  void run();

  /// Runs all events with time <= `t`, then advances the clock to `t`.
  void run_until(SimTime t);

  /// Number of pending (non-cancelled) events.
  std::size_t pending() const noexcept { return live_; }

  /// Heap entries currently held, live plus cancelled tombstones.  The
  /// loop compacts when tombstones outnumber live events (see cancel()),
  /// so this stays within 2x pending() — tests assert that bound after
  /// heavy schedule/cancel churn.
  std::size_t heap_size() const noexcept { return heap_.size(); }

  /// Events dispatched since construction of the loop's process-wide
  /// counters (aggregated across loops under "net/loop/*").
  std::uint64_t dispatched() const noexcept { return dispatched_count_; }

  /// The loop's sim-time tracer.  Disabled by default; enabling it only
  /// records — it never schedules — so event ordering is unchanged.
  obs::Tracer& tracer() noexcept { return tracer_; }
  const obs::Tracer& tracer() const noexcept { return tracer_; }
  /// Track id for spans recorded by the loop itself.
  std::uint32_t trace_track() const noexcept { return track_; }

 private:
  // Heap node with the callback stored inline: scheduling a batch-scale
  // workload (TrafficGen fires one event per batch window, fleets
  // schedule tens of thousands of ticks) costs one heap sift per event —
  // no per-event node allocation or hash lookups, which dominated the
  // old priority_queue + unordered_map layout at fleet scale.
  struct Event {
    SimTime time;
    EventId id;  // also the FIFO tie-breaker
    Callback cb; // null = cancelled tombstone, skipped when popped
    // Min-heap order on (time, id).
    bool before(const Event& o) const noexcept {
      return time != o.time ? time < o.time : id < o.id;
    }
  };

  void push_event(Event ev);
  Event pop_event();  // precondition: !heap_.empty()
  // Drops cancelled tombstones off the top so heap_.front() is live.
  void drop_dead_heads();
  // Erases every tombstone and rebuilds the heap in place (Floyd,
  // O(live)).  Called by cancel() when tombstones exceed half the heap
  // so schedule/cancel churn cannot grow the heap without bound.
  void compact();

  // Pops and runs the next live event; returns false when drained.
  bool step();

  SimTime now_ = 0;
  EventId next_id_ = 1;
  std::vector<Event> heap_;   // binary min-heap on (time, id)
  std::size_t live_ = 0;      // heap entries with a non-null callback

  std::uint64_t dispatched_count_ = 0;
  // Process-wide instruments, resolved once at construction.
  obs::Counter* events_dispatched_;
  obs::Histogram* callback_wall_ns_;
  obs::Gauge* queue_depth_;
  obs::Tracer tracer_;
  std::uint32_t track_;
};

}  // namespace mdn::net
