// Flow tables: the OpenFlow match/action table the controller programs,
// and the workload engine's population of live synthetic flows.
//
// FlowTable — the MDN controller actuates the network by installing
// entries here (the paper's Flow-MOD messages): opening a knocked port
// (§4) or splitting traffic across two paths (§6).  Matching follows
// OpenFlow semantics — highest priority wins, absent match fields are
// wildcards, entries can carry idle/hard timeouts.
//
// FlowPopulation — the set of live 5-tuples a TrafficGen draws packets
// from: uniform or Zipf-weighted by rank (Walker alias table, O(1) per
// draw even at millions of flows), with churn support (replace a live
// flow's key with a freshly minted 5-tuple, modelling flow arrival/
// departure).  Fully deterministic: all randomness comes through the
// caller's seeded std::mt19937_64.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <random>
#include <vector>

#include "net/packet.h"

namespace mdn::net {

struct Match {
  std::optional<std::size_t> in_port;
  std::optional<std::uint32_t> src_ip;
  std::optional<std::uint32_t> dst_ip;
  std::optional<std::uint16_t> src_port;
  std::optional<std::uint16_t> dst_port;
  std::optional<IpProto> proto;

  bool matches(const Packet& pkt, std::size_t ingress) const noexcept;

  /// Fully wildcarded match (table-miss style).
  static Match any() noexcept { return {}; }
};

enum class ActionType : std::uint8_t {
  kOutput,   ///< forward out a specific port
  kDrop,     ///< discard
  kFlood,    ///< send out every port except the ingress
  kGroup,    ///< split across ports round-robin (select group, §6)
};

struct Action {
  ActionType type = ActionType::kDrop;
  std::size_t port = 0;                 ///< kOutput target
  std::vector<std::size_t> group_ports; ///< kGroup targets

  static Action output(std::size_t port) {
    return {ActionType::kOutput, port, {}};
  }
  static Action drop() { return {ActionType::kDrop, 0, {}}; }
  static Action flood() { return {ActionType::kFlood, 0, {}}; }
  static Action group(std::vector<std::size_t> ports) {
    return {ActionType::kGroup, 0, std::move(ports)};
  }
};

struct FlowEntry {
  int priority = 0;
  Match match;
  std::vector<Action> actions;
  std::uint64_t cookie = 0;
  SimTime idle_timeout = 0;  ///< 0 = never
  SimTime hard_timeout = 0;  ///< 0 = never

  // Counters maintained by the table.
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  SimTime installed_at = 0;
  SimTime last_matched = 0;
  std::size_t group_rr = 0;  ///< round-robin cursor for kGroup
};

class FlowTable {
 public:
  /// Inserts an entry; returns its cookie (auto-assigned when 0).
  std::uint64_t add(FlowEntry entry, SimTime now);

  /// Removes all entries with the given cookie; returns count removed.
  std::size_t remove_by_cookie(std::uint64_t cookie);

  /// Removes entries whose match equals `m` exactly.
  std::size_t remove_by_match(const Match& m);

  void clear() noexcept { entries_.clear(); }

  /// Highest-priority matching live entry, updating its counters; expired
  /// entries are evicted on the way.  Returns nullptr on table miss.
  FlowEntry* lookup(const Packet& pkt, std::size_t in_port, SimTime now);

  /// Evicts entries that have timed out as of `now`.
  void expire(SimTime now);

  std::size_t size() const noexcept { return entries_.size(); }
  const std::vector<FlowEntry>& entries() const noexcept { return entries_; }

 private:
  bool expired(const FlowEntry& e, SimTime now) const noexcept;

  std::vector<FlowEntry> entries_;  // kept sorted by descending priority
  std::uint64_t next_cookie_ = 1;
};

// ---------------------------------------------------------------------------
// Workload-engine flow population.

/// Uniform double in [0, 1) from raw generator bits.  Deliberately not
/// std::uniform_real_distribution: its output is implementation defined,
/// and the workload engine's golden-trace contract requires the same
/// seed to produce the same packets on every platform.
inline double rng_unit_double(std::mt19937_64& rng) {
  return static_cast<double>(rng() >> 11) * 0x1.0p-53;
}

/// Uniform integer in [0, n) without implementation-defined
/// distributions (same portability argument).  Modulo bias is
/// < n / 2^64 — irrelevant at workload-engine scales.
inline std::uint64_t rng_below(std::mt19937_64& rng, std::uint64_t n) {
  return rng() % n;
}

struct FlowPopulationConfig {
  /// Number of concurrently live flows (the synapse-klee harness's
  /// ARG_TOTAL_FLOWS; its default is 65536 too).
  std::size_t total_flows = 65536;
  /// Rank-frequency skew: 0 = uniform, otherwise flow at rank r carries
  /// weight 1/(r+1)^zipf_skew.  1.26 is the Castan [SIGCOMM'18] value
  /// the synapse-klee harness defaults to for Zipf traffic.
  double zipf_skew = 0.0;
  /// Services listen on few ports: destination ports cycle through this
  /// many values from `dst_port_base`.  Keeping the set small (default 8)
  /// separates background port tones from a scanner's sweep (§5).
  std::uint16_t dst_port_count = 8;
  std::uint16_t dst_port_base = 80;
  /// Source/destination address pools (hosts are minted as base + i).
  std::uint32_t src_ip_base = 0x0a000000;  // 10.0.0.0
  std::uint32_t dst_ip_base = 0x0a800000;  // 10.128.0.0
  IpProto proto = IpProto::kTcp;
};

/// Live flows ranked by popularity.  Rank is the unit of weight: churn
/// replaces the *key* at a rank, never the rank's weight, so the
/// rank-frequency distribution is stationary while the 5-tuples turn
/// over — exactly the knob split of the bdd-analyzer traffic harness
/// (flows / churn-fpm / zipf-param).
class FlowPopulation {
 public:
  explicit FlowPopulation(const FlowPopulationConfig& config);

  std::size_t size() const noexcept { return flows_.size(); }
  const FlowPopulationConfig& config() const noexcept { return config_; }

  /// Rank of one packet's flow: uniform, or Zipf via the alias table.
  /// O(1) regardless of population size.
  std::size_t sample_rank(std::mt19937_64& rng) const;

  const FlowKey& flow_at(std::size_t rank) const { return flows_[rank]; }
  const FlowKey& sample(std::mt19937_64& rng) const {
    return flows_[sample_rank(rng)];
  }

  /// Expires one live flow (uniformly chosen rank) and mints a fresh
  /// never-seen 5-tuple in its place.  Returns the affected rank.
  std::size_t churn_one(std::mt19937_64& rng);

  /// Total flows ever minted (initial population + churn replacements).
  std::uint64_t minted() const noexcept { return minted_; }
  /// Normalised weight of `rank` (the expected packet share).
  double weight(std::size_t rank) const;

 private:
  FlowKey mint(std::uint64_t serial) const;
  void build_alias_table();

  FlowPopulationConfig config_;
  std::vector<FlowKey> flows_;      // index = rank
  std::uint64_t minted_ = 0;
  double total_weight_ = 0.0;
  // Walker alias method: prob_[i] in [0,1] and alias_[i] give an O(1)
  // draw from the rank-weight distribution.  Empty in uniform mode.
  std::vector<double> prob_;
  std::vector<std::uint32_t> alias_;
};

}  // namespace mdn::net
