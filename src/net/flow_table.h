// OpenFlow-style match/action flow table.
//
// The MDN controller actuates the network by installing entries here (the
// paper's Flow-MOD messages): opening a knocked port (§4) or splitting
// traffic across two paths (§6).  Matching follows OpenFlow semantics —
// highest priority wins, absent match fields are wildcards, entries can
// carry idle/hard timeouts.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "net/packet.h"

namespace mdn::net {

struct Match {
  std::optional<std::size_t> in_port;
  std::optional<std::uint32_t> src_ip;
  std::optional<std::uint32_t> dst_ip;
  std::optional<std::uint16_t> src_port;
  std::optional<std::uint16_t> dst_port;
  std::optional<IpProto> proto;

  bool matches(const Packet& pkt, std::size_t ingress) const noexcept;

  /// Fully wildcarded match (table-miss style).
  static Match any() noexcept { return {}; }
};

enum class ActionType : std::uint8_t {
  kOutput,   ///< forward out a specific port
  kDrop,     ///< discard
  kFlood,    ///< send out every port except the ingress
  kGroup,    ///< split across ports round-robin (select group, §6)
};

struct Action {
  ActionType type = ActionType::kDrop;
  std::size_t port = 0;                 ///< kOutput target
  std::vector<std::size_t> group_ports; ///< kGroup targets

  static Action output(std::size_t port) {
    return {ActionType::kOutput, port, {}};
  }
  static Action drop() { return {ActionType::kDrop, 0, {}}; }
  static Action flood() { return {ActionType::kFlood, 0, {}}; }
  static Action group(std::vector<std::size_t> ports) {
    return {ActionType::kGroup, 0, std::move(ports)};
  }
};

struct FlowEntry {
  int priority = 0;
  Match match;
  std::vector<Action> actions;
  std::uint64_t cookie = 0;
  SimTime idle_timeout = 0;  ///< 0 = never
  SimTime hard_timeout = 0;  ///< 0 = never

  // Counters maintained by the table.
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  SimTime installed_at = 0;
  SimTime last_matched = 0;
  std::size_t group_rr = 0;  ///< round-robin cursor for kGroup
};

class FlowTable {
 public:
  /// Inserts an entry; returns its cookie (auto-assigned when 0).
  std::uint64_t add(FlowEntry entry, SimTime now);

  /// Removes all entries with the given cookie; returns count removed.
  std::size_t remove_by_cookie(std::uint64_t cookie);

  /// Removes entries whose match equals `m` exactly.
  std::size_t remove_by_match(const Match& m);

  void clear() noexcept { entries_.clear(); }

  /// Highest-priority matching live entry, updating its counters; expired
  /// entries are evicted on the way.  Returns nullptr on table miss.
  FlowEntry* lookup(const Packet& pkt, std::size_t in_port, SimTime now);

  /// Evicts entries that have timed out as of `now`.
  void expire(SimTime now);

  std::size_t size() const noexcept { return entries_.size(); }
  const std::vector<FlowEntry>& entries() const noexcept { return entries_; }

 private:
  bool expired(const FlowEntry& e, SimTime now) const noexcept;

  std::vector<FlowEntry> entries_;  // kept sorted by descending priority
  std::uint64_t next_cookie_ = 1;
};

}  // namespace mdn::net
