// Heavy-traffic workload engine: millions of flows, Zipf + churn.
//
// The paper's §5 scenarios drive one switch with a handful of hand-wired
// flows; serving a fleet needs the knob set of a real traffic harness
// (synapse-klee bdd-analyzer: total flows, churn in flows-per-minute,
// Zipf skew, aggregate packet rate).  TrafficGen synthesises that
// workload deterministically from one seed and feeds it to a set of
// target switches as *batched* packet-arrival events: one event-loop
// callback per batch interval delivers every packet due in that window
// directly into Switch::receive, so the discrete-event loop schedules
// O(batches) events instead of O(packets) and a 64K-flow run does not
// drown the scheduler.
//
// Flows shard to targets by flow_hash_jenkins (the second, independent
// hash family) so one flow consistently hits one switch — the invariant
// the §5 heavy-hitter attribution needs.  Optional port-scan overlays
// sweep sequential destination ports at chosen targets, providing the
// ground truth for fleet-scale scan detection.
//
// Determinism contract: the only randomness is an explicit
// std::mt19937_64 seeded from the config (no rand(), no wall clock, no
// implementation-defined <random> distributions); identical seeds yield
// byte-identical packet traces, checkable via trace_digest() /
// trace_text().
#pragma once

#include <cstdint>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "net/event_loop.h"
#include "net/flow_table.h"
#include "net/switch.h"

namespace mdn::net {

struct TrafficGenConfig {
  FlowPopulationConfig population;
  /// Aggregate packet rate across all flows (ARG_TOTAL_RATE_PPS).
  double rate_pps = 100000.0;
  /// Flow churn: live flows replaced per minute (ARG_TOTAL_CHURN_FPM).
  double churn_fpm = 0.0;
  std::uint32_t packet_size = 64;  ///< MIN_PKT_SIZE of the DPDK harness
  SimTime start = 0;
  SimTime stop = 10 * kSecond;
  /// Packet arrivals are quantised to this batch window; one event-loop
  /// event per window delivers all due packets.
  SimTime batch_interval = 5 * kMillisecond;
  std::uint64_t seed = 1;

  /// Port-scan overlays: `scan_count` scanners, each pinned to one
  /// deterministic target, sweeping sequential destination ports.
  std::size_t scan_count = 0;
  double scan_pps = 20.0;             ///< per scanner
  std::uint16_t scan_first_port = 7000;
  std::uint32_t scan_src_ip_base = 0xac100042;  // 172.16.0.66

  /// Keep the full human-readable packet trace (one line per packet).
  /// Off by default: the rolling trace_digest() is always maintained and
  /// is what benches compare; the text form is for golden-trace tests.
  bool record_trace = false;
};

class TrafficGen {
 public:
  TrafficGen(EventLoop& loop, const TrafficGenConfig& config);

  /// Registers a target switch; packets enter at `in_port`.  All targets
  /// must be added before start().
  void add_target(Switch& sw, std::size_t in_port = 0);
  std::size_t target_count() const noexcept { return targets_.size(); }

  /// Schedules the batch chain.  Requires at least one target.
  void start();

  /// Stable shard of `flow` (index into the targets), via the Jenkins
  /// hash family so it is independent of the heavy-hitter bin hash.
  std::size_t target_of(const FlowKey& flow) const;

  /// Target index of scanner `i` (valid after start()).
  const std::vector<std::size_t>& scan_targets() const noexcept {
    return scan_targets_;
  }

  const FlowPopulation& population() const noexcept { return population_; }
  const TrafficGenConfig& config() const noexcept { return config_; }

  std::uint64_t packets() const noexcept { return packets_; }
  std::uint64_t scan_packets() const noexcept { return scan_packets_; }
  std::uint64_t batches() const noexcept { return batches_; }
  std::uint64_t churn_events() const noexcept { return churned_; }

  /// FNV-1a digest over the full packet stream (sim time, 5-tuple,
  /// target).  Two runs with the same seed and config must agree.
  std::uint64_t trace_digest() const noexcept { return digest_; }
  /// One line per packet when config.record_trace is set.
  const std::string& trace_text() const noexcept { return trace_; }

 private:
  struct Target {
    Switch* sw = nullptr;
    std::size_t in_port = 0;
  };
  struct Scanner {
    std::size_t target = 0;
    std::uint32_t src_ip = 0;
    std::uint16_t next_port = 0;
    double accum = 0.0;
  };

  void run_batch(SimTime until);
  void deliver(const FlowKey& flow, std::size_t target);
  void note(const FlowKey& flow, std::size_t target);

  EventLoop& loop_;
  TrafficGenConfig config_;
  FlowPopulation population_;
  std::mt19937_64 rng_;
  std::vector<Target> targets_;
  std::vector<Scanner> scanners_;
  // Scan packets due in the current window (batch position, flow,
  // target), reused across batches so the steady-state batch path stops
  // allocating once warm.
  std::vector<std::pair<std::uint64_t, std::pair<FlowKey, std::size_t>>>
      scan_batch_;
  std::vector<std::size_t> scan_targets_;
  SimTime window_start_ = 0;  ///< end of the last processed batch window
  double packet_accum_ = 0.0;
  double churn_accum_ = 0.0;
  std::uint64_t next_packet_id_ = 1;
  std::uint64_t packets_ = 0;
  std::uint64_t scan_packets_ = 0;
  std::uint64_t batches_ = 0;
  std::uint64_t churned_ = 0;
  std::uint64_t digest_;
  std::string trace_;
  // Process-wide instruments under "net/trafficgen/*" (aggregated
  // across generators, like the loop's counters).
  obs::Counter* packets_counter_;
  obs::Counter* scan_counter_;
  obs::Counter* churn_counter_;
  obs::Counter* batches_counter_;
  obs::Gauge* flows_live_;
};

}  // namespace mdn::net
