#include "net/event_loop.h"

#include <algorithm>
#include <memory>
#include <utility>

namespace mdn::net {

EventLoop::EventLoop()
    : events_dispatched_(
          &obs::Registry::global().counter("net/loop/events_dispatched")),
      callback_wall_ns_(
          &obs::Registry::global().histogram("net/loop/callback_wall_ns")),
      queue_depth_(&obs::Registry::global().gauge("net/loop/queue_depth")),
      track_(tracer_.track("net/loop")) {}

EventLoop::EventId EventLoop::schedule_at(SimTime t, Callback cb) {
  const EventId id = next_id_++;
  queue_.push(Event{std::max(t, now_), id});
  callbacks_.emplace(id, std::move(cb));
  return id;
}

EventLoop::EventId EventLoop::schedule_in(SimTime delay, Callback cb) {
  return schedule_at(now_ + std::max<SimTime>(0, delay), std::move(cb));
}

void EventLoop::schedule_periodic(SimTime first_delay, SimTime period,
                                  std::function<bool()> cb) {
  // Each firing reschedules itself; the self-reference lives in a shared
  // holder so the chain owns its own callback.
  auto shared = std::make_shared<std::function<bool()>>(std::move(cb));
  auto holder = std::make_shared<std::function<void()>>();
  *holder = [this, shared, period, holder]() {
    if ((*shared)()) schedule_in(period, *holder);
  };
  schedule_in(first_delay, *holder);
}

void EventLoop::cancel(EventId id) { callbacks_.erase(id); }

bool EventLoop::step() {
  while (!queue_.empty()) {
    const Event ev = queue_.top();
    queue_.pop();
    const auto it = callbacks_.find(ev.id);
    if (it == callbacks_.end()) continue;  // cancelled
    Callback cb = std::move(it->second);
    callbacks_.erase(it);
    now_ = ev.time;
    {
      obs::TraceSpan span(&tracer_, "event", track_, now_);
      obs::ScopedTimerNs timer(callback_wall_ns_);
      cb();
    }
    ++dispatched_count_;
    events_dispatched_->inc();
    queue_depth_->set(static_cast<std::int64_t>(callbacks_.size()));
    return true;
  }
  return false;
}

void EventLoop::run() {
  while (step()) {
  }
}

void EventLoop::run_until(SimTime t) {
  while (!queue_.empty()) {
    // Skip cancelled heads so queue_.top() reflects a live event.
    while (!queue_.empty() && !callbacks_.contains(queue_.top().id)) {
      queue_.pop();
    }
    if (queue_.empty() || queue_.top().time > t) break;
    step();
  }
  now_ = std::max(now_, t);
}

}  // namespace mdn::net
