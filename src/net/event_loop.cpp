#include "net/event_loop.h"

#include <algorithm>
#include <memory>
#include <utility>

namespace mdn::net {

EventLoop::EventLoop()
    : events_dispatched_(
          &obs::Registry::global().counter("net/loop/events_dispatched")),
      callback_wall_ns_(
          &obs::Registry::global().histogram("net/loop/callback_wall_ns")),
      queue_depth_(&obs::Registry::global().gauge("net/loop/queue_depth")),
      track_(tracer_.track("net/loop")) {}

void EventLoop::push_event(Event ev) {
  heap_.push_back(std::move(ev));
  // Sift up.
  std::size_t i = heap_.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!heap_[i].before(heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

EventLoop::Event EventLoop::pop_event() {
  Event top = std::move(heap_.front());
  heap_.front() = std::move(heap_.back());
  heap_.pop_back();
  // Sift down.
  const std::size_t n = heap_.size();
  std::size_t i = 0;
  while (true) {
    const std::size_t l = 2 * i + 1;
    const std::size_t r = l + 1;
    std::size_t least = i;
    if (l < n && heap_[l].before(heap_[least])) least = l;
    if (r < n && heap_[r].before(heap_[least])) least = r;
    if (least == i) break;
    std::swap(heap_[i], heap_[least]);
    i = least;
  }
  return top;
}

void EventLoop::drop_dead_heads() {
  while (!heap_.empty() && !heap_.front().cb) pop_event();
}

EventLoop::EventId EventLoop::schedule_at(SimTime t, Callback cb) {
  const EventId id = next_id_++;
  push_event(Event{std::max(t, now_), id, std::move(cb)});
  ++live_;
  return id;
}

EventLoop::EventId EventLoop::schedule_in(SimTime delay, Callback cb) {
  return schedule_at(now_ + std::max<SimTime>(0, delay), std::move(cb));
}

void EventLoop::schedule_periodic(SimTime first_delay, SimTime period,
                                  std::function<bool()> cb) {
  // Each firing reschedules itself; the self-reference lives in a shared
  // holder so the chain owns its own callback.
  auto shared = std::make_shared<std::function<bool()>>(std::move(cb));
  auto holder = std::make_shared<std::function<void()>>();
  *holder = [this, shared, period, holder]() {
    if ((*shared)()) schedule_in(period, *holder);
  };
  schedule_in(first_delay, *holder);
}

void EventLoop::cancel(EventId id) {
  // Cancellation is cold (tests and teardown); a linear scan for the
  // tombstone keeps the hot schedule/dispatch path free of any per-event
  // id index.  No-op if the event already ran or was already cancelled.
  for (Event& ev : heap_) {
    if (ev.id == id) {
      if (ev.cb) {
        ev.cb = nullptr;
        --live_;
        // Tombstones are only reclaimed lazily when popped, so a
        // schedule/cancel churn loop would otherwise grow the heap
        // without bound.  Compacting at >50% dead keeps the heap within
        // 2x live while amortizing the rebuild to O(1) per cancel.
        if (heap_.size() - live_ > heap_.size() / 2) compact();
      }
      return;
    }
  }
}

void EventLoop::compact() {
  heap_.erase(std::remove_if(heap_.begin(), heap_.end(),
                             [](const Event& ev) { return !ev.cb; }),
              heap_.end());
  if (heap_.size() > 1) {
    // Floyd heapify: sift down every internal node, deepest first.
    const std::size_t n = heap_.size();
    for (std::size_t root = n / 2; root-- > 0;) {
      std::size_t i = root;
      while (true) {
        const std::size_t l = 2 * i + 1;
        const std::size_t r = l + 1;
        std::size_t least = i;
        if (l < n && heap_[l].before(heap_[least])) least = l;
        if (r < n && heap_[r].before(heap_[least])) least = r;
        if (least == i) break;
        std::swap(heap_[i], heap_[least]);
        i = least;
      }
    }
  }
  heap_.shrink_to_fit();
}

bool EventLoop::step() {
  while (!heap_.empty()) {
    Event ev = pop_event();
    if (!ev.cb) continue;  // cancelled
    --live_;
    now_ = ev.time;
    {
      obs::TraceSpan span(&tracer_, "event", track_, now_);
      obs::ScopedTimerNs timer(callback_wall_ns_);
      ev.cb();
    }
    ++dispatched_count_;
    events_dispatched_->inc();
    queue_depth_->set(static_cast<std::int64_t>(live_));
    return true;
  }
  return false;
}

void EventLoop::run() {
  while (step()) {
  }
}

void EventLoop::run_until(SimTime t) {
  while (true) {
    drop_dead_heads();
    if (heap_.empty() || heap_.front().time > t) break;
    step();
  }
  now_ = std::max(now_, t);
}

}  // namespace mdn::net
