// Network: owning container for nodes and links plus topology helpers.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "net/event_loop.h"
#include "net/host.h"
#include "net/switch.h"

namespace mdn::net {

struct LinkSpec {
  double rate_bps = 100e6;
  SimTime propagation_delay = 10 * kMicrosecond;
  std::size_t queue_capacity = 100;
};

class Network {
 public:
  Network() = default;

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  EventLoop& loop() noexcept { return loop_; }

  Switch& add_switch(std::string name);
  Host& add_host(std::string name, std::uint32_t ip);

  /// Connects two switches; adds one new port on each.  Returns the pair
  /// of new port indices (a_port, b_port).
  std::pair<std::size_t, std::size_t> connect(Switch& a, Switch& b,
                                              const LinkSpec& spec = {});

  /// Connects a host to a switch; returns the new switch port index.
  std::size_t connect(Host& h, Switch& s, const LinkSpec& spec = {});

  std::size_t switch_count() const noexcept { return switches_.size(); }
  std::size_t host_count() const noexcept { return hosts_.size(); }
  std::size_t link_count() const noexcept { return links_.size(); }
  Switch& switch_at(std::size_t i) { return *switches_.at(i); }
  Host& host_at(std::size_t i) { return *hosts_.at(i); }
  /// Links in creation (connect) order — e.g. for failure injection.
  Link& link_at(std::size_t i) { return *links_.at(i); }

  /// Finds a node by name; nullptr if absent.
  Switch* find_switch(const std::string& name) noexcept;
  Host* find_host(const std::string& name) noexcept;

 private:
  Link& add_link(const LinkSpec& spec);

  EventLoop loop_;
  std::vector<std::unique_ptr<Switch>> switches_;
  std::vector<std::unique_ptr<Host>> hosts_;
  std::vector<std::unique_ptr<Link>> links_;
};

/// The §6 load-balancing topology: src host - s1 - {s2 | s3} - s4 - dst
/// host (a rhombus with hosts on opposite vertices).
struct RhombusTopology {
  Switch* entry = nullptr;  // s1
  Switch* upper = nullptr;  // s2
  Switch* lower = nullptr;  // s3
  Switch* exit = nullptr;   // s4
  Host* src = nullptr;
  Host* dst = nullptr;
  std::size_t entry_in_port = 0;    // s1 port facing src
  std::size_t entry_upper_port = 0; // s1 port facing s2
  std::size_t entry_lower_port = 0; // s1 port facing s3
};

/// `core_spec` shapes the four switch-to-switch links (the contended
/// paths); `host_spec` shapes the host attachment links.  By default the
/// host links are 10x faster than the core so congestion forms at the
/// entry switch, not at the sender's NIC.
RhombusTopology build_rhombus(Network& net, const LinkSpec& core_spec = {});
RhombusTopology build_rhombus(Network& net, const LinkSpec& core_spec,
                              const LinkSpec& host_spec);

/// A chain: h_src - s1 - s2 - ... - sN - h_dst.  Returns the switches.
std::vector<Switch*> build_chain(Network& net, std::size_t n_switches,
                                 Host** src, Host** dst,
                                 const LinkSpec& spec = {});

}  // namespace mdn::net
