// Traffic generators for the evaluation workloads.
//
//  * CbrSource         — constant bit rate flow (background traffic).
//  * RampSource        — linearly increasing rate; drives the congestion
//                        build-up of Fig 5 ("progressively increasing
//                        rate").
//  * FlowMixSource     — many concurrent flows with weighted shares; one
//                        dominating flow is the heavy hitter of Fig 4a-b.
//  * PortScanSource    — sequential destination-port sweep (Fig 4c-d).
//  * OnOffSource       — bursty traffic for failure-injection tests.
#pragma once

#include <cstdint>
#include <vector>

#include "audio/rng.h"
#include "net/host.h"

namespace mdn::net {

/// Common knobs shared by the generators.
struct SourceConfig {
  FlowKey flow;                   ///< template 5-tuple
  std::uint32_t packet_size = 1000;
  SimTime start = 0;
  SimTime stop = 10 * kSecond;
};

/// Constant packet rate.
class CbrSource {
 public:
  CbrSource(Host& host, SourceConfig config, double packets_per_second);
  void start();
  std::uint64_t sent() const noexcept { return sent_; }

 private:
  void send_next();

  Host& host_;
  SourceConfig config_;
  SimTime interval_;
  std::uint64_t sent_ = 0;
};

/// Rate ramps linearly from `start_pps` to `end_pps` over the interval.
class RampSource {
 public:
  RampSource(Host& host, SourceConfig config, double start_pps,
             double end_pps);
  void start();
  std::uint64_t sent() const noexcept { return sent_; }
  double rate_at(SimTime t) const noexcept;

 private:
  void send_next();

  Host& host_;
  SourceConfig config_;
  double start_pps_;
  double end_pps_;
  std::uint64_t sent_ = 0;
};

/// A mix of flows sending at a combined rate; each packet is drawn from
/// the weight distribution.  With one heavy weight this produces the
/// heavy-hitter workload of §5.
class FlowMixSource {
 public:
  struct WeightedFlow {
    FlowKey flow;
    double weight = 1.0;
  };

  FlowMixSource(Host& host, std::vector<WeightedFlow> flows,
                double total_pps, SimTime start, SimTime stop,
                std::uint64_t seed, std::uint32_t packet_size = 1000);
  void start();
  std::uint64_t sent() const noexcept { return sent_; }
  std::uint64_t sent_for(const FlowKey& flow) const;

 private:
  void send_next();
  const FlowKey& pick_flow();

  Host& host_;
  std::vector<WeightedFlow> flows_;
  std::vector<std::uint64_t> per_flow_sent_;
  double total_weight_ = 0.0;
  SimTime interval_;
  SimTime start_;
  SimTime stop_;
  std::uint32_t packet_size_;
  audio::Rng rng_;
  std::uint64_t sent_ = 0;
};

/// TCP SYNs to sequential destination ports — the naive port scan of §5.
class PortScanSource {
 public:
  PortScanSource(Host& host, SourceConfig config, std::uint16_t first_port,
                 std::uint16_t last_port, SimTime per_port_interval);
  void start();
  std::uint64_t sent() const noexcept { return sent_; }

 private:
  void send_next();

  Host& host_;
  SourceConfig config_;
  std::uint16_t next_port_;
  std::uint16_t last_port_;
  SimTime interval_;
  std::uint64_t sent_ = 0;
};

/// Exponential on/off bursts of CBR traffic.
class OnOffSource {
 public:
  OnOffSource(Host& host, SourceConfig config, double on_pps,
              SimTime mean_on, SimTime mean_off, std::uint64_t seed);
  void start();
  std::uint64_t sent() const noexcept { return sent_; }

 private:
  void enter_on();
  void enter_off();
  void send_next(SimTime burst_end);

  Host& host_;
  SourceConfig config_;
  SimTime interval_;
  SimTime mean_on_;
  SimTime mean_off_;
  audio::Rng rng_;
  std::uint64_t sent_ = 0;
};

}  // namespace mdn::net
