// Ports and links.
//
// A Port is a node's attachment point with an egress drop-tail queue and a
// serialising transmitter; a Link joins two ports with a bit rate and a
// propagation delay.  Store-and-forward: a packet occupies the transmitter
// for size*8/rate, then arrives at the peer after the propagation delay.
#pragma once

#include <cstdint>
#include <string>

#include "net/event_loop.h"
#include "net/node.h"
#include "net/queue.h"

namespace mdn::net {

class Link;

class Port {
 public:
  Port(EventLoop& loop, Node& owner, std::size_t index,
       std::size_t queue_capacity);

  Port(const Port&) = delete;
  Port& operator=(const Port&) = delete;

  /// Queues `pkt` for transmission.  Returns false if the egress queue
  /// dropped it (or the port is not connected).
  bool send(Packet pkt);

  /// DCTCP-style step marking: ECN-capable packets enqueued while the
  /// backlog is at or above `threshold` get their CE bit set.  0 (the
  /// default) disables marking.  This is the in-band baseline the paper
  /// contrasts with music-defined congestion signalling (§6).
  void set_ecn_threshold(std::size_t threshold) noexcept {
    ecn_threshold_ = threshold;
  }
  std::size_t ecn_threshold() const noexcept { return ecn_threshold_; }
  std::uint64_t ecn_marked() const noexcept { return ecn_marked_; }

  std::size_t index() const noexcept { return index_; }
  bool connected() const noexcept { return link_ != nullptr; }
  Node& owner() noexcept { return owner_; }
  /// The attached link (nullptr before attach) — e.g. to fail it.
  Link* attached_link() noexcept { return link_; }

  /// Registers "<prefix>/queue_depth" (gauge) and "<prefix>/queue_drops"
  /// (counter) in the global registry and mirrors this port's egress
  /// queue into them.  Owners with meaningful names (Switch::add_port)
  /// call this; anonymous ports stay unmetered.
  void bind_queue_metrics(const std::string& prefix);

  const DropTailQueue& queue() const noexcept { return queue_; }
  /// Packets in flight through this port right now: egress queue plus the
  /// one being serialised.  This is what `tc` reports on a Linux qdisc and
  /// what the §6 applications sample.
  std::size_t backlog() const noexcept {
    return queue_.size() + (transmitting_ ? 1 : 0);
  }

  std::uint64_t tx_packets() const noexcept { return tx_packets_; }
  std::uint64_t tx_bytes() const noexcept { return tx_bytes_; }
  std::uint64_t rx_packets() const noexcept { return rx_packets_; }
  std::uint64_t rx_bytes() const noexcept { return rx_bytes_; }
  std::uint64_t drops() const noexcept { return queue_.drops() + unconnected_drops_; }

 private:
  friend class Link;

  void attach(Link& link, int end) noexcept;
  void start_transmission(Packet pkt);
  void transmission_complete();
  void count_rx(const Packet& pkt) noexcept;

  EventLoop& loop_;
  Node& owner_;
  std::size_t index_;
  DropTailQueue queue_;
  Link* link_ = nullptr;
  int end_ = 0;
  bool transmitting_ = false;
  std::uint64_t tx_packets_ = 0;
  std::uint64_t tx_bytes_ = 0;
  std::uint64_t rx_packets_ = 0;
  std::uint64_t rx_bytes_ = 0;
  std::uint64_t unconnected_drops_ = 0;
  std::size_t ecn_threshold_ = 0;
  std::uint64_t ecn_marked_ = 0;
};

class Link {
 public:
  Link(EventLoop& loop, double rate_bps, SimTime propagation_delay);

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  /// Wires the two ends.  Must be called exactly once.
  void attach(Port& a, Port& b);

  double rate_bps() const noexcept { return rate_bps_; }
  SimTime propagation_delay() const noexcept { return propagation_delay_; }

  /// Serialisation time for a packet of `bytes` bytes.
  SimTime transmit_time(std::uint32_t bytes) const noexcept;

  /// Fails or repairs the link.  While down, packets finishing
  /// transmission are lost (counted in lost_packets), like a cut cable.
  /// This is the failure mode that motivates out-of-band management
  /// (§1 of the paper): in-band control traffic dies with the link.
  void set_up(bool up) noexcept { up_ = up; }
  bool is_up() const noexcept { return up_; }
  std::uint64_t lost_packets() const noexcept { return lost_packets_; }

 private:
  friend class Port;

  /// Schedules delivery of `pkt` to the peer of `from_end`.
  void deliver_to_peer(int from_end, Packet pkt);

  EventLoop& loop_;
  double rate_bps_;
  SimTime propagation_delay_;
  bool up_ = true;
  std::uint64_t lost_packets_ = 0;
  Port* ends_[2] = {nullptr, nullptr};
};

}  // namespace mdn::net
