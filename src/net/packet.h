// Packet and flow-key model.
//
// The telemetry applications of §5 operate on the classic 5-tuple
// (src IP, dst IP, src port, dst port, protocol); the heavy-hitter
// detector hashes it to pick a tone frequency exactly as the paper does
// ("we hash a flow tuple ... and map it to a given frequency").
#pragma once

#include <cstdint>
#include <string>

#include "net/sim_time.h"

namespace mdn::net {

enum class IpProto : std::uint8_t {
  kIcmp = 1,
  kTcp = 6,
  kUdp = 17,
};

/// Builds a host-order IPv4 address from dotted-quad components.
constexpr std::uint32_t make_ipv4(std::uint8_t a, std::uint8_t b,
                                  std::uint8_t c, std::uint8_t d) noexcept {
  return (static_cast<std::uint32_t>(a) << 24) |
         (static_cast<std::uint32_t>(b) << 16) |
         (static_cast<std::uint32_t>(c) << 8) | d;
}

std::string ipv4_to_string(std::uint32_t ip);

/// The 5-tuple identifying a flow.
struct FlowKey {
  std::uint32_t src_ip = 0;
  std::uint32_t dst_ip = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  IpProto proto = IpProto::kTcp;

  bool operator==(const FlowKey&) const = default;
  std::string to_string() const;
};

/// FNV-1a over the canonical byte encoding of the key.  Stable across
/// runs and platforms, so frequency assignments are reproducible.
std::uint64_t flow_hash(const FlowKey& key) noexcept;

/// Jenkins one-at-a-time hash — a second independent family, used where
/// two uncorrelated hashes are useful (e.g. collision diagnostics).
std::uint32_t flow_hash_jenkins(const FlowKey& key) noexcept;

struct Packet {
  FlowKey flow;
  std::uint32_t size_bytes = 1000;
  bool tcp_syn = false;       ///< set on the first packet of a TCP flow
  bool tcp_ack = false;       ///< pure acknowledgement (reverse path)
  bool ecn_capable = false;   ///< ECT: transport understands ECN
  bool ecn_marked = false;    ///< CE: a congested queue marked this packet
  bool ecn_echo = false;      ///< ECE: receiver echoes CE back to sender
  std::uint64_t id = 0;       ///< unique per packet, assigned by senders
  SimTime created_at = 0;
};

}  // namespace mdn::net

template <>
struct std::hash<mdn::net::FlowKey> {
  std::size_t operator()(const mdn::net::FlowKey& k) const noexcept {
    return static_cast<std::size_t>(mdn::net::flow_hash(k));
  }
};
