// Simulated switch: the Zodiac FX / Open vSwitch stand-in.
//
// Forwards packets through an OpenFlow-style flow table and exposes the
// two hook points Music-Defined Networking relies on:
//   * a per-packet hook, where the telemetry applications of §5 attach
//     their tone emitters (one tone per packet, keyed by flow hash or
//     destination port), and
//   * its per-port egress queues, which the §6 applications sample every
//     300 ms to choose a queue-state tone.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "net/event_loop.h"
#include "net/flow_table.h"
#include "net/link.h"
#include "net/node.h"

namespace mdn::net {

class Switch : public Node {
 public:
  Switch(EventLoop& loop, std::string name);

  /// Adds a port with the given egress queue capacity; returns its index.
  Port& add_port(std::size_t queue_capacity = 100);
  Port& port(std::size_t index);
  const Port& port(std::size_t index) const;
  std::size_t port_count() const noexcept { return ports_.size(); }

  FlowTable& flow_table() noexcept { return table_; }
  const FlowTable& flow_table() const noexcept { return table_; }

  void receive(Packet pkt, std::size_t in_port) override;

  /// Observes every packet before table lookup (MDN tone emitters).
  /// Multiple hooks run in registration order.
  using PacketHook = std::function<void(const Packet&, std::size_t in_port)>;
  void add_packet_hook(PacketHook hook) {
    packet_hooks_.push_back(std::move(hook));
  }

  /// Invoked on table miss (the PacketIn path to an SDN controller).
  /// When unset, misses are dropped.
  using MissHandler = std::function<void(const Packet&, std::size_t in_port)>;
  void set_miss_handler(MissHandler handler) {
    miss_handler_ = std::move(handler);
  }

  std::uint64_t table_misses() const noexcept { return table_misses_; }
  std::uint64_t forwarded() const noexcept { return forwarded_; }
  std::uint64_t dropped() const noexcept { return dropped_; }

  EventLoop& loop() noexcept { return loop_; }

 private:
  void apply_actions(FlowEntry& entry, Packet pkt, std::size_t in_port);

  EventLoop& loop_;
  std::vector<std::unique_ptr<Port>> ports_;
  FlowTable table_;
  std::vector<PacketHook> packet_hooks_;
  MissHandler miss_handler_;
  std::uint64_t table_misses_ = 0;
  std::uint64_t forwarded_ = 0;
  std::uint64_t dropped_ = 0;
  // Registry mirrors under "net/switch/<name>/...", resolved once.
  obs::Counter* packets_counter_;
  obs::Counter* forwarded_counter_;
  obs::Counter* dropped_counter_;
  obs::Counter* miss_counter_;
};

}  // namespace mdn::net
