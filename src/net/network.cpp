#include "net/network.h"

namespace mdn::net {

Switch& Network::add_switch(std::string name) {
  switches_.push_back(std::make_unique<Switch>(loop_, std::move(name)));
  return *switches_.back();
}

Host& Network::add_host(std::string name, std::uint32_t ip) {
  hosts_.push_back(std::make_unique<Host>(loop_, std::move(name), ip));
  return *hosts_.back();
}

Link& Network::add_link(const LinkSpec& spec) {
  links_.push_back(std::make_unique<Link>(loop_, spec.rate_bps,
                                          spec.propagation_delay));
  return *links_.back();
}

std::pair<std::size_t, std::size_t> Network::connect(Switch& a, Switch& b,
                                                     const LinkSpec& spec) {
  Port& pa = a.add_port(spec.queue_capacity);
  Port& pb = b.add_port(spec.queue_capacity);
  add_link(spec).attach(pa, pb);
  return {pa.index(), pb.index()};
}

std::size_t Network::connect(Host& h, Switch& s, const LinkSpec& spec) {
  Port& ph = h.port(spec.queue_capacity);
  Port& ps = s.add_port(spec.queue_capacity);
  add_link(spec).attach(ph, ps);
  return ps.index();
}

Switch* Network::find_switch(const std::string& name) noexcept {
  for (auto& s : switches_) {
    if (s->name() == name) return s.get();
  }
  return nullptr;
}

Host* Network::find_host(const std::string& name) noexcept {
  for (auto& h : hosts_) {
    if (h->name() == name) return h.get();
  }
  return nullptr;
}

RhombusTopology build_rhombus(Network& net, const LinkSpec& core_spec) {
  LinkSpec host_spec = core_spec;
  host_spec.rate_bps = core_spec.rate_bps * 10.0;
  return build_rhombus(net, core_spec, host_spec);
}

RhombusTopology build_rhombus(Network& net, const LinkSpec& spec,
                              const LinkSpec& host_spec) {
  RhombusTopology t;
  t.entry = &net.add_switch("s1");
  t.upper = &net.add_switch("s2");
  t.lower = &net.add_switch("s3");
  t.exit = &net.add_switch("s4");
  t.src = &net.add_host("h1", make_ipv4(10, 0, 0, 1));
  t.dst = &net.add_host("h2", make_ipv4(10, 0, 0, 2));

  t.entry_in_port = net.connect(*t.src, *t.entry, host_spec);
  auto [s1_up, s2_in] = net.connect(*t.entry, *t.upper, spec);
  auto [s1_lo, s3_in] = net.connect(*t.entry, *t.lower, spec);
  auto [s2_out, s4_up] = net.connect(*t.upper, *t.exit, spec);
  auto [s3_out, s4_lo] = net.connect(*t.lower, *t.exit, spec);
  const std::size_t s4_dst = net.connect(*t.dst, *t.exit, host_spec);
  t.entry_upper_port = s1_up;
  t.entry_lower_port = s1_lo;

  // Static forwarding on the interior: everything toward the destination.
  const SimTime now = net.loop().now();
  FlowEntry fwd;
  fwd.priority = 1;
  fwd.match = Match::any();

  fwd.actions = {Action::output(s2_out)};
  t.upper->flow_table().add(fwd, now);
  fwd.actions = {Action::output(s3_out)};
  t.lower->flow_table().add(fwd, now);
  fwd.actions = {Action::output(s4_dst)};
  t.exit->flow_table().add(fwd, now);
  (void)s2_in;
  (void)s3_in;
  (void)s4_up;
  (void)s4_lo;
  return t;
}

std::vector<Switch*> build_chain(Network& net, std::size_t n_switches,
                                 Host** src, Host** dst,
                                 const LinkSpec& spec) {
  std::vector<Switch*> switches;
  switches.reserve(n_switches);
  for (std::size_t i = 0; i < n_switches; ++i) {
    switches.push_back(&net.add_switch("s" + std::to_string(i + 1)));
  }
  Host& h_src = net.add_host("h_src", make_ipv4(10, 0, 0, 1));
  Host& h_dst = net.add_host("h_dst", make_ipv4(10, 0, 0, 2));
  if (src) *src = &h_src;
  if (dst) *dst = &h_dst;

  const SimTime now = net.loop().now();
  // h_src -> s1 -> ... -> sN -> h_dst with static "forward right" rules.
  net.connect(h_src, *switches.front(), spec);
  for (std::size_t i = 0; i + 1 < n_switches; ++i) {
    auto [left_out, right_in] =
        net.connect(*switches[i], *switches[i + 1], spec);
    FlowEntry e;
    e.priority = 1;
    e.actions = {Action::output(left_out)};
    switches[i]->flow_table().add(e, now);
    (void)right_in;
  }
  const std::size_t last_out = net.connect(h_dst, *switches.back(), spec);
  FlowEntry e;
  e.priority = 1;
  e.actions = {Action::output(last_out)};
  switches.back()->flow_table().add(e, now);
  return switches;
}

}  // namespace mdn::net
