#include "net/switch.h"

#include <stdexcept>

namespace mdn::net {

Switch::Switch(EventLoop& loop, std::string name)
    : Node(std::move(name)), loop_(loop) {}

Port& Switch::add_port(std::size_t queue_capacity) {
  ports_.push_back(
      std::make_unique<Port>(loop_, *this, ports_.size(), queue_capacity));
  return *ports_.back();
}

Port& Switch::port(std::size_t index) { return *ports_.at(index); }

const Port& Switch::port(std::size_t index) const {
  return *ports_.at(index);
}

void Switch::receive(Packet pkt, std::size_t in_port) {
  for (const auto& hook : packet_hooks_) hook(pkt, in_port);

  FlowEntry* entry = table_.lookup(pkt, in_port, loop_.now());
  if (entry == nullptr) {
    ++table_misses_;
    if (miss_handler_) {
      miss_handler_(pkt, in_port);
    } else {
      ++dropped_;
    }
    return;
  }
  apply_actions(*entry, std::move(pkt), in_port);
}

void Switch::apply_actions(FlowEntry& entry, Packet pkt,
                           std::size_t in_port) {
  bool output = false;
  for (const Action& action : entry.actions) {
    switch (action.type) {
      case ActionType::kOutput:
        if (action.port < ports_.size()) {
          ports_[action.port]->send(pkt);
          output = true;
        }
        break;
      case ActionType::kDrop:
        ++dropped_;
        return;
      case ActionType::kFlood:
        for (auto& p : ports_) {
          if (p->index() != in_port && p->connected()) {
            p->send(pkt);
            output = true;
          }
        }
        break;
      case ActionType::kGroup:
        if (!action.group_ports.empty()) {
          const std::size_t chosen =
              action.group_ports[entry.group_rr % action.group_ports.size()];
          ++entry.group_rr;
          if (chosen < ports_.size()) {
            ports_[chosen]->send(pkt);
            output = true;
          }
        }
        break;
    }
  }
  if (output) {
    ++forwarded_;
  } else {
    ++dropped_;
  }
}

}  // namespace mdn::net
