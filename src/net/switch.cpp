#include "net/switch.h"

#include <stdexcept>

namespace mdn::net {

Switch::Switch(EventLoop& loop, std::string name)
    : Node(std::move(name)), loop_(loop) {
  auto& registry = obs::Registry::global();
  const std::string prefix = "net/switch/" + this->name();
  packets_counter_ = &registry.counter(prefix + "/packets");
  forwarded_counter_ = &registry.counter(prefix + "/forwarded");
  dropped_counter_ = &registry.counter(prefix + "/dropped");
  miss_counter_ = &registry.counter(prefix + "/table_misses");
}

Port& Switch::add_port(std::size_t queue_capacity) {
  ports_.push_back(
      std::make_unique<Port>(loop_, *this, ports_.size(), queue_capacity));
  Port& port = *ports_.back();
  port.bind_queue_metrics("net/switch/" + name() + "/port" +
                          std::to_string(port.index()));
  return port;
}

Port& Switch::port(std::size_t index) { return *ports_.at(index); }

const Port& Switch::port(std::size_t index) const {
  return *ports_.at(index);
}

void Switch::receive(Packet pkt, std::size_t in_port) {
  packets_counter_->inc();
  for (const auto& hook : packet_hooks_) hook(pkt, in_port);

  FlowEntry* entry = table_.lookup(pkt, in_port, loop_.now());
  if (entry == nullptr) {
    ++table_misses_;
    miss_counter_->inc();
    if (miss_handler_) {
      miss_handler_(pkt, in_port);
    } else {
      ++dropped_;
      dropped_counter_->inc();
    }
    return;
  }
  apply_actions(*entry, std::move(pkt), in_port);
}

void Switch::apply_actions(FlowEntry& entry, Packet pkt,
                           std::size_t in_port) {
  bool output = false;
  for (const Action& action : entry.actions) {
    switch (action.type) {
      case ActionType::kOutput:
        if (action.port < ports_.size()) {
          ports_[action.port]->send(pkt);
          output = true;
        }
        break;
      case ActionType::kDrop:
        ++dropped_;
        dropped_counter_->inc();
        return;
      case ActionType::kFlood:
        for (auto& p : ports_) {
          if (p->index() != in_port && p->connected()) {
            p->send(pkt);
            output = true;
          }
        }
        break;
      case ActionType::kGroup:
        if (!action.group_ports.empty()) {
          const std::size_t chosen =
              action.group_ports[entry.group_rr % action.group_ports.size()];
          ++entry.group_rr;
          if (chosen < ports_.size()) {
            ports_[chosen]->send(pkt);
            output = true;
          }
        }
        break;
    }
  }
  if (output) {
    ++forwarded_;
    forwarded_counter_->inc();
  } else {
    ++dropped_;
    dropped_counter_->inc();
  }
}

}  // namespace mdn::net
