// Simulated time for the network substrate.
//
// Time is an integer count of nanoseconds so event ordering is exact; the
// audio side of the library works in floating-point seconds, and the MP
// bridge converts at the boundary.
#pragma once

#include <cstdint>

namespace mdn::net {

using SimTime = std::int64_t;  ///< nanoseconds since simulation start

inline constexpr SimTime kNanosecond = 1;
inline constexpr SimTime kMicrosecond = 1'000;
inline constexpr SimTime kMillisecond = 1'000'000;
inline constexpr SimTime kSecond = 1'000'000'000;

constexpr SimTime from_seconds(double s) noexcept {
  return static_cast<SimTime>(s * 1e9 + (s >= 0 ? 0.5 : -0.5));
}

constexpr double to_seconds(SimTime t) noexcept {
  return static_cast<double>(t) / 1e9;
}

constexpr SimTime from_millis(double ms) noexcept {
  return from_seconds(ms / 1e3);
}

}  // namespace mdn::net
