#include "net/ecn.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mdn::net {

void attach_ecn_echo(Host& receiver) {
  receiver.add_rx_hook([&receiver](const Packet& pkt) {
    if (!pkt.ecn_marked || pkt.tcp_ack) return;
    Packet ack;
    // Reverse the 5-tuple.
    ack.flow = {pkt.flow.dst_ip, pkt.flow.src_ip, pkt.flow.dst_port,
                pkt.flow.src_port, pkt.flow.proto};
    ack.size_bytes = 64;
    ack.tcp_ack = true;
    ack.ecn_capable = true;
    ack.ecn_echo = true;
    receiver.send(ack);
  });
}

EcnRateSource::EcnRateSource(Host& host, EcnSourceConfig config)
    : host_(host), config_(config), rate_pps_(config.initial_pps) {
  if (config.initial_pps <= 0.0 || config.min_pps <= 0.0) {
    throw std::invalid_argument("EcnRateSource: rates must be positive");
  }
  host_.add_rx_hook([this](const Packet& pkt) { on_ack(pkt); });
}

void EcnRateSource::start() {
  host_.loop().schedule_at(config_.start, [this] { send_next(); });
  host_.loop().schedule_periodic(config_.start + config_.update_interval,
                                 config_.update_interval,
                                 [this] { return update_rate(); });
  rate_series_.push_back({config_.start, rate_pps_});
}

void EcnRateSource::send_next() {
  const SimTime now = host_.loop().now();
  if (now >= config_.stop) return;
  Packet pkt;
  pkt.flow = config_.flow;
  pkt.size_bytes = config_.packet_size;
  pkt.ecn_capable = true;
  host_.send(std::move(pkt));
  ++sent_;
  ++interval_sent_;
  host_.loop().schedule_in(from_seconds(1.0 / rate_pps_),
                           [this] { send_next(); });
}

void EcnRateSource::on_ack(const Packet& pkt) {
  if (!pkt.tcp_ack || !pkt.ecn_echo) return;
  ++echoes_;
  ++interval_echoes_;
}

bool EcnRateSource::update_rate() {
  const SimTime now = host_.loop().now();
  if (now >= config_.stop) return false;

  // DCTCP: alpha <- (1-g) alpha + g * F, F = marked fraction.
  const double fraction =
      interval_sent_ > 0
          ? std::min(1.0, static_cast<double>(interval_echoes_) /
                              static_cast<double>(interval_sent_))
          : 0.0;
  alpha_ = (1.0 - config_.gain) * alpha_ + config_.gain * fraction;

  if (interval_echoes_ > 0) {
    rate_pps_ = std::max(config_.min_pps, rate_pps_ * (1.0 - alpha_ / 2.0));
    if (first_backoff_s_ < 0.0) first_backoff_s_ = to_seconds(now);
  } else {
    rate_pps_ = std::min(config_.max_pps, rate_pps_ + config_.increase_pps);
  }
  rate_series_.push_back({now, rate_pps_});
  interval_sent_ = 0;
  interval_echoes_ = 0;
  return true;
}

}  // namespace mdn::net
