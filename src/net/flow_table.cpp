#include "net/flow_table.h"

#include <algorithm>

namespace mdn::net {

bool Match::matches(const Packet& pkt, std::size_t ingress) const noexcept {
  if (in_port && *in_port != ingress) return false;
  if (src_ip && *src_ip != pkt.flow.src_ip) return false;
  if (dst_ip && *dst_ip != pkt.flow.dst_ip) return false;
  if (src_port && *src_port != pkt.flow.src_port) return false;
  if (dst_port && *dst_port != pkt.flow.dst_port) return false;
  if (proto && *proto != pkt.flow.proto) return false;
  return true;
}

namespace {
bool match_equal(const Match& a, const Match& b) noexcept {
  return a.in_port == b.in_port && a.src_ip == b.src_ip &&
         a.dst_ip == b.dst_ip && a.src_port == b.src_port &&
         a.dst_port == b.dst_port && a.proto == b.proto;
}
}  // namespace

std::uint64_t FlowTable::add(FlowEntry entry, SimTime now) {
  if (entry.cookie == 0) entry.cookie = next_cookie_++;
  entry.installed_at = now;
  entry.last_matched = now;
  const std::uint64_t cookie = entry.cookie;
  // Insert keeping descending priority; stable among equal priorities
  // (later insertions go after earlier ones, as in OpenFlow overlap rules).
  const auto pos = std::find_if(
      entries_.begin(), entries_.end(),
      [&](const FlowEntry& e) { return e.priority < entry.priority; });
  entries_.insert(pos, std::move(entry));
  return cookie;
}

std::size_t FlowTable::remove_by_cookie(std::uint64_t cookie) {
  const auto before = entries_.size();
  std::erase_if(entries_,
                [cookie](const FlowEntry& e) { return e.cookie == cookie; });
  return before - entries_.size();
}

std::size_t FlowTable::remove_by_match(const Match& m) {
  const auto before = entries_.size();
  std::erase_if(entries_,
                [&](const FlowEntry& e) { return match_equal(e.match, m); });
  return before - entries_.size();
}

bool FlowTable::expired(const FlowEntry& e, SimTime now) const noexcept {
  if (e.hard_timeout > 0 && now - e.installed_at >= e.hard_timeout) {
    return true;
  }
  if (e.idle_timeout > 0 && now - e.last_matched >= e.idle_timeout) {
    return true;
  }
  return false;
}

FlowEntry* FlowTable::lookup(const Packet& pkt, std::size_t in_port,
                             SimTime now) {
  expire(now);
  for (auto& e : entries_) {
    if (e.match.matches(pkt, in_port)) {
      ++e.packets;
      e.bytes += pkt.size_bytes;
      e.last_matched = now;
      return &e;
    }
  }
  return nullptr;
}

void FlowTable::expire(SimTime now) {
  std::erase_if(entries_,
                [&](const FlowEntry& e) { return expired(e, now); });
}

}  // namespace mdn::net
