#include "net/flow_table.h"

#include <algorithm>
#include <cmath>

namespace mdn::net {

bool Match::matches(const Packet& pkt, std::size_t ingress) const noexcept {
  if (in_port && *in_port != ingress) return false;
  if (src_ip && *src_ip != pkt.flow.src_ip) return false;
  if (dst_ip && *dst_ip != pkt.flow.dst_ip) return false;
  if (src_port && *src_port != pkt.flow.src_port) return false;
  if (dst_port && *dst_port != pkt.flow.dst_port) return false;
  if (proto && *proto != pkt.flow.proto) return false;
  return true;
}

namespace {
bool match_equal(const Match& a, const Match& b) noexcept {
  return a.in_port == b.in_port && a.src_ip == b.src_ip &&
         a.dst_ip == b.dst_ip && a.src_port == b.src_port &&
         a.dst_port == b.dst_port && a.proto == b.proto;
}
}  // namespace

std::uint64_t FlowTable::add(FlowEntry entry, SimTime now) {
  if (entry.cookie == 0) entry.cookie = next_cookie_++;
  entry.installed_at = now;
  entry.last_matched = now;
  const std::uint64_t cookie = entry.cookie;
  // Insert keeping descending priority; stable among equal priorities
  // (later insertions go after earlier ones, as in OpenFlow overlap rules).
  const auto pos = std::find_if(
      entries_.begin(), entries_.end(),
      [&](const FlowEntry& e) { return e.priority < entry.priority; });
  entries_.insert(pos, std::move(entry));
  return cookie;
}

std::size_t FlowTable::remove_by_cookie(std::uint64_t cookie) {
  const auto before = entries_.size();
  std::erase_if(entries_,
                [cookie](const FlowEntry& e) { return e.cookie == cookie; });
  return before - entries_.size();
}

std::size_t FlowTable::remove_by_match(const Match& m) {
  const auto before = entries_.size();
  std::erase_if(entries_,
                [&](const FlowEntry& e) { return match_equal(e.match, m); });
  return before - entries_.size();
}

bool FlowTable::expired(const FlowEntry& e, SimTime now) const noexcept {
  if (e.hard_timeout > 0 && now - e.installed_at >= e.hard_timeout) {
    return true;
  }
  if (e.idle_timeout > 0 && now - e.last_matched >= e.idle_timeout) {
    return true;
  }
  return false;
}

FlowEntry* FlowTable::lookup(const Packet& pkt, std::size_t in_port,
                             SimTime now) {
  expire(now);
  for (auto& e : entries_) {
    if (e.match.matches(pkt, in_port)) {
      ++e.packets;
      e.bytes += pkt.size_bytes;
      e.last_matched = now;
      return &e;
    }
  }
  return nullptr;
}

void FlowTable::expire(SimTime now) {
  std::erase_if(entries_,
                [&](const FlowEntry& e) { return expired(e, now); });
}

// ---------------------------------------------------------------------------
// FlowPopulation

FlowPopulation::FlowPopulation(const FlowPopulationConfig& config)
    : config_(config) {
  flows_.reserve(config_.total_flows);
  for (std::size_t r = 0; r < config_.total_flows; ++r) {
    flows_.push_back(mint(minted_++));
  }
  if (config_.zipf_skew > 0.0) build_alias_table();
}

FlowKey FlowPopulation::mint(std::uint64_t serial) const {
  // Serial-indexed key minting: flow #s is a pure function of s, so the
  // population (and every churn replacement) is reproducible without
  // touching the RNG.  Hosts cycle through a /16-sized pool; the source
  // port advances with the serial so replacement flows never collide
  // with expired ones within a 64K-churn window per host pair.
  FlowKey key;
  key.src_ip = config_.src_ip_base + static_cast<std::uint32_t>(serial % 65521);
  key.dst_ip = config_.dst_ip_base +
               static_cast<std::uint32_t>((serial / 7) % 65519);
  key.src_port = static_cast<std::uint16_t>(1024 + (serial * 13) % 64000);
  key.dst_port = static_cast<std::uint16_t>(
      config_.dst_port_base +
      serial % std::max<std::uint16_t>(config_.dst_port_count, 1));
  key.proto = config_.proto;
  return key;
}

void FlowPopulation::build_alias_table() {
  const std::size_t n = flows_.size();
  std::vector<double> w(n);
  total_weight_ = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    w[r] = std::pow(static_cast<double>(r + 1), -config_.zipf_skew);
    total_weight_ += w[r];
  }
  // Walker alias construction: split ranks into under/over-full bins of
  // mean weight, pair each under-full bin with an over-full donor.
  prob_.assign(n, 1.0);
  alias_.assign(n, 0);
  std::vector<std::uint32_t> small, large;
  std::vector<double> scaled(n);
  for (std::size_t r = 0; r < n; ++r) {
    scaled[r] = w[r] * static_cast<double>(n) / total_weight_;
    (scaled[r] < 1.0 ? small : large).push_back(
        static_cast<std::uint32_t>(r));
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    const std::uint32_t l = large.back();
    small.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] -= 1.0 - scaled[s];
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  // Leftovers (floating-point residue) are full bins.
  for (const std::uint32_t r : small) prob_[r] = 1.0;
  for (const std::uint32_t r : large) prob_[r] = 1.0;
}

std::size_t FlowPopulation::sample_rank(std::mt19937_64& rng) const {
  const std::size_t n = flows_.size();
  const auto bin = static_cast<std::size_t>(rng_below(rng, n));
  if (prob_.empty()) return bin;  // uniform mode
  return rng_unit_double(rng) < prob_[bin] ? bin : alias_[bin];
}

std::size_t FlowPopulation::churn_one(std::mt19937_64& rng) {
  const auto rank = static_cast<std::size_t>(rng_below(rng, flows_.size()));
  flows_[rank] = mint(minted_++);
  return rank;
}

double FlowPopulation::weight(std::size_t rank) const {
  if (config_.zipf_skew <= 0.0) {
    return 1.0 / static_cast<double>(flows_.size());
  }
  return std::pow(static_cast<double>(rank + 1), -config_.zipf_skew) /
         total_weight_;
}

}  // namespace mdn::net
