// Node interface: anything that terminates a link (switch or host).
#pragma once

#include <cstddef>
#include <string>

#include "net/packet.h"

namespace mdn::net {

class Node {
 public:
  explicit Node(std::string name) : name_(std::move(name)) {}
  virtual ~Node() = default;

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  /// Delivers a packet arriving on local port `in_port`.
  virtual void receive(Packet pkt, std::size_t in_port) = 0;

  const std::string& name() const noexcept { return name_; }

 private:
  std::string name_;
};

}  // namespace mdn::net
