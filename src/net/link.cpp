#include "net/link.h"

#include <cmath>
#include <stdexcept>

namespace mdn::net {

Port::Port(EventLoop& loop, Node& owner, std::size_t index,
           std::size_t queue_capacity)
    : loop_(loop), owner_(owner), index_(index), queue_(queue_capacity) {}

void Port::attach(Link& link, int end) noexcept {
  link_ = &link;
  end_ = end;
}

void Port::bind_queue_metrics(const std::string& prefix) {
  auto& registry = obs::Registry::global();
  queue_.bind_metrics(&registry.gauge(prefix + "/queue_depth"),
                      &registry.counter(prefix + "/queue_drops"));
}

bool Port::send(Packet pkt) {
  if (link_ == nullptr) {
    ++unconnected_drops_;
    return false;
  }
  if (ecn_threshold_ > 0 && pkt.ecn_capable && !pkt.ecn_marked &&
      backlog() >= ecn_threshold_) {
    pkt.ecn_marked = true;
    ++ecn_marked_;
  }
  if (transmitting_) return queue_.push(std::move(pkt));
  start_transmission(std::move(pkt));
  return true;
}

void Port::start_transmission(Packet pkt) {
  transmitting_ = true;
  const SimTime tx = link_->transmit_time(pkt.size_bytes);
  tx_bytes_ += pkt.size_bytes;
  ++tx_packets_;
  loop_.schedule_in(tx, [this, pkt = std::move(pkt)]() mutable {
    link_->deliver_to_peer(end_, std::move(pkt));
    transmission_complete();
  });
}

void Port::transmission_complete() {
  transmitting_ = false;
  if (auto next = queue_.pop()) start_transmission(std::move(*next));
}

void Port::count_rx(const Packet& pkt) noexcept {
  ++rx_packets_;
  rx_bytes_ += pkt.size_bytes;
}

Link::Link(EventLoop& loop, double rate_bps, SimTime propagation_delay)
    : loop_(loop), rate_bps_(rate_bps), propagation_delay_(propagation_delay) {
  if (rate_bps <= 0.0) {
    throw std::invalid_argument("Link: rate must be positive");
  }
}

void Link::attach(Port& a, Port& b) {
  if (ends_[0] != nullptr || ends_[1] != nullptr) {
    throw std::logic_error("Link::attach: already attached");
  }
  ends_[0] = &a;
  ends_[1] = &b;
  a.attach(*this, 0);
  b.attach(*this, 1);
}

SimTime Link::transmit_time(std::uint32_t bytes) const noexcept {
  const double seconds = static_cast<double>(bytes) * 8.0 / rate_bps_;
  return from_seconds(seconds);
}

void Link::deliver_to_peer(int from_end, Packet pkt) {
  if (!up_) {
    ++lost_packets_;
    return;
  }
  Port* peer = ends_[from_end == 0 ? 1 : 0];
  if (peer == nullptr) return;
  loop_.schedule_in(propagation_delay_, [peer, pkt = std::move(pkt)]() mutable {
    peer->count_rx(pkt);
    peer->owner().receive(std::move(pkt), peer->index());
  });
}

}  // namespace mdn::net
