#include "net/packet.h"

#include <array>
#include <sstream>

namespace mdn::net {
namespace {

// Canonical 13-byte encoding of a flow key (network-ish field order).
std::array<std::uint8_t, 13> encode(const FlowKey& k) noexcept {
  std::array<std::uint8_t, 13> b{};
  std::size_t i = 0;
  const auto put32 = [&](std::uint32_t v) {
    b[i++] = static_cast<std::uint8_t>(v >> 24);
    b[i++] = static_cast<std::uint8_t>(v >> 16);
    b[i++] = static_cast<std::uint8_t>(v >> 8);
    b[i++] = static_cast<std::uint8_t>(v);
  };
  const auto put16 = [&](std::uint16_t v) {
    b[i++] = static_cast<std::uint8_t>(v >> 8);
    b[i++] = static_cast<std::uint8_t>(v);
  };
  put32(k.src_ip);
  put32(k.dst_ip);
  put16(k.src_port);
  put16(k.dst_port);
  b[i++] = static_cast<std::uint8_t>(k.proto);
  return b;
}

}  // namespace

std::string ipv4_to_string(std::uint32_t ip) {
  std::ostringstream os;
  os << ((ip >> 24) & 0xff) << '.' << ((ip >> 16) & 0xff) << '.'
     << ((ip >> 8) & 0xff) << '.' << (ip & 0xff);
  return os.str();
}

std::string FlowKey::to_string() const {
  std::ostringstream os;
  os << ipv4_to_string(src_ip) << ':' << src_port << "->"
     << ipv4_to_string(dst_ip) << ':' << dst_port << '/'
     << static_cast<int>(proto);
  return os.str();
}

std::uint64_t flow_hash(const FlowKey& key) noexcept {
  constexpr std::uint64_t kOffset = 0xcbf29ce484222325ULL;
  constexpr std::uint64_t kPrime = 0x100000001b3ULL;
  std::uint64_t h = kOffset;
  for (std::uint8_t byte : encode(key)) {
    h ^= byte;
    h *= kPrime;
  }
  // SplitMix64-style avalanche finaliser.  Raw FNV-1a's low bits stay
  // correlated for structured inputs (e.g. src and dst port stepping in
  // lockstep), which would pile such flows into a few `hash % bins`
  // frequency slots in the heavy-hitter application.
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  return h ^ (h >> 31);
}

std::uint32_t flow_hash_jenkins(const FlowKey& key) noexcept {
  std::uint32_t h = 0;
  for (std::uint8_t byte : encode(key)) {
    h += byte;
    h += h << 10;
    h ^= h >> 6;
  }
  h += h << 3;
  h ^= h >> 11;
  h += h << 15;
  return h;
}

}  // namespace mdn::net
