#include "net/queue.h"

#include <algorithm>

namespace mdn::net {

bool DropTailQueue::push(Packet pkt) {
  if (items_.size() >= capacity_) {
    ++drops_;
    if (drop_counter_ != nullptr) drop_counter_->inc();
    return false;
  }
  bytes_ += pkt.size_bytes;
  items_.push_back(std::move(pkt));
  ++enqueued_;
  high_watermark_ = std::max(high_watermark_, items_.size());
  if (depth_gauge_ != nullptr) {
    depth_gauge_->set(static_cast<std::int64_t>(items_.size()));
  }
  return true;
}

std::optional<Packet> DropTailQueue::pop() {
  if (items_.empty()) return std::nullopt;
  Packet pkt = std::move(items_.front());
  items_.pop_front();
  bytes_ -= pkt.size_bytes;
  ++dequeued_;
  if (depth_gauge_ != nullptr) {
    depth_gauge_->set(static_cast<std::int64_t>(items_.size()));
  }
  return pkt;
}

}  // namespace mdn::net
