// Drop-tail egress queue.
//
// Queue occupancy is the signal behind the §6 applications: switches play
// a tone band chosen by how many packets sit in this queue (<25, 25-75,
// >75 in the paper's thresholds).
#pragma once

#include <cstdint>
#include <deque>
#include <optional>

#include "net/packet.h"
#include "obs/metrics.h"

namespace mdn::net {

class DropTailQueue {
 public:
  explicit DropTailQueue(std::size_t capacity_packets)
      : capacity_(capacity_packets) {}

  /// Mirrors occupancy into `depth` and drops into `drops` (either may
  /// be null).  Called by whoever knows the queue's hierarchical name —
  /// e.g. Switch::add_port registers "net/switch/<name>/port<i>/...".
  void bind_metrics(obs::Gauge* depth, obs::Counter* drops) noexcept {
    depth_gauge_ = depth;
    drop_counter_ = drops;
  }

  /// Returns false (and counts a drop) when the queue is full.
  bool push(Packet pkt);

  /// Pops the head packet, or nullopt when empty.
  std::optional<Packet> pop();

  std::size_t size() const noexcept { return items_.size(); }
  bool empty() const noexcept { return items_.empty(); }
  std::size_t capacity() const noexcept { return capacity_; }
  std::uint64_t bytes() const noexcept { return bytes_; }

  std::uint64_t drops() const noexcept { return drops_; }
  std::uint64_t enqueued() const noexcept { return enqueued_; }
  std::uint64_t dequeued() const noexcept { return dequeued_; }

  /// Largest occupancy ever observed.
  std::size_t high_watermark() const noexcept { return high_watermark_; }

 private:
  std::size_t capacity_;
  std::deque<Packet> items_;
  std::uint64_t bytes_ = 0;
  std::uint64_t drops_ = 0;
  std::uint64_t enqueued_ = 0;
  std::uint64_t dequeued_ = 0;
  std::size_t high_watermark_ = 0;
  obs::Gauge* depth_gauge_ = nullptr;
  obs::Counter* drop_counter_ = nullptr;
};

}  // namespace mdn::net
