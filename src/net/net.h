// Umbrella header for the mdn_net library.
#pragma once

#include "net/ecn.h"
#include "net/event_loop.h"
#include "net/flow_table.h"
#include "net/host.h"
#include "net/link.h"
#include "net/network.h"
#include "net/node.h"
#include "net/packet.h"
#include "net/queue.h"
#include "net/sim_time.h"
#include "net/switch.h"
#include "net/traffic.h"
#include "net/traffic_gen.h"
