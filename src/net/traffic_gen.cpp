#include "net/traffic_gen.h"

#include <algorithm>
#include <cassert>

#include "obs/metrics.h"

namespace mdn::net {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

inline std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) noexcept {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace

TrafficGen::TrafficGen(EventLoop& loop, const TrafficGenConfig& config)
    : loop_(loop),
      config_(config),
      population_(config.population),
      rng_(config.seed),
      digest_(kFnvOffset),
      packets_counter_(
          &obs::Registry::global().counter("net/trafficgen/packets")),
      scan_counter_(
          &obs::Registry::global().counter("net/trafficgen/scan_packets")),
      churn_counter_(
          &obs::Registry::global().counter("net/trafficgen/churn_events")),
      batches_counter_(
          &obs::Registry::global().counter("net/trafficgen/batches")),
      flows_live_(&obs::Registry::global().gauge("net/trafficgen/flows_live")) {
  flows_live_->set(static_cast<std::int64_t>(population_.size()));
}

void TrafficGen::add_target(Switch& sw, std::size_t in_port) {
  targets_.push_back(Target{&sw, in_port});
}

std::size_t TrafficGen::target_of(const FlowKey& flow) const {
  return flow_hash_jenkins(flow) % targets_.size();
}

void TrafficGen::start() {
  assert(!targets_.empty() && "add_target before start");
  // Pin each scanner to a target and a source host.  The spread uses a
  // Weyl-style multiplicative step so scanners land on distinct switches
  // when there are at least as many targets as scanners — without
  // consuming RNG draws the background traffic would otherwise see.
  scanners_.clear();
  scan_targets_.clear();
  for (std::size_t i = 0; i < config_.scan_count; ++i) {
    Scanner sc;
    sc.target = (i * 2654435761ULL) % targets_.size();
    sc.src_ip = config_.scan_src_ip_base + static_cast<std::uint32_t>(i);
    sc.next_port = config_.scan_first_port;
    scanners_.push_back(sc);
    scan_targets_.push_back(sc.target);
  }
  const SimTime first = std::max(config_.start, loop_.now());
  window_start_ = first;
  loop_.schedule_at(std::min(first + config_.batch_interval, config_.stop),
                    [this, first]() {
                      run_batch(first + config_.batch_interval);
                    });
}

void TrafficGen::note(const FlowKey& flow, std::size_t target) {
  std::uint64_t h = digest_;
  h = fnv1a(h, static_cast<std::uint64_t>(loop_.now()));
  h = fnv1a(h, (static_cast<std::uint64_t>(flow.src_ip) << 32) | flow.dst_ip);
  h = fnv1a(h, (static_cast<std::uint64_t>(flow.src_port) << 32) |
                   (static_cast<std::uint64_t>(flow.dst_port) << 16) |
                   static_cast<std::uint64_t>(flow.proto));
  h = fnv1a(h, static_cast<std::uint64_t>(target));
  digest_ = h;
  if (config_.record_trace) {
    trace_ += std::to_string(loop_.now());
    trace_ += ' ';
    trace_ += std::to_string(target);
    trace_ += ' ';
    trace_ += flow.to_string();
    trace_ += '\n';
  }
}

void TrafficGen::deliver(const FlowKey& flow, std::size_t target) {
  note(flow, target);
  Packet pkt;
  pkt.flow = flow;
  pkt.size_bytes = config_.packet_size;
  pkt.id = next_packet_id_++;
  pkt.created_at = loop_.now();
  Target& t = targets_[target];
  t.sw->receive(std::move(pkt), t.in_port);
}

void TrafficGen::run_batch(SimTime until) {
  const SimTime window_end = std::min(until, config_.stop);
  const double dt_s = static_cast<double>(window_end - window_start_) /
                      static_cast<double>(kSecond);
  window_start_ = window_end;
  if (dt_s > 0.0) {
    // Churn first: flows that turned over during the window are the ones
    // the window's packets sample from.
    churn_accum_ += config_.churn_fpm * dt_s / 60.0;
    while (churn_accum_ >= 1.0) {
      churn_accum_ -= 1.0;
      population_.churn_one(rng_);
      ++churned_;
      churn_counter_->inc();
    }
    // Background packets due in this window, fractional remainder carried
    // so the long-run rate converges to rate_pps exactly.
    packet_accum_ += config_.rate_pps * dt_s;
    auto due = static_cast<std::uint64_t>(packet_accum_);
    packet_accum_ -= static_cast<double>(due);
    // Scanner overlays due this window: sequential port sweeps at the
    // pinned targets.  Each scan packet is placed at a seeded-random
    // position inside the batch, modelling real arrival mixing.
    // Delivering them all after the background would starve them of the
    // switches' rate-policed emitter slots: every packet in a batch
    // shares one sim time, so the first delivery at a switch claims the
    // freed tone slot — and that must be scanner-vs-background in
    // proportion to their rates, not always background.
    scan_batch_.clear();
    for (std::size_t si = 0; si < scanners_.size(); ++si) {
      Scanner& sc = scanners_[si];
      sc.accum += config_.scan_pps * dt_s;
      while (sc.accum >= 1.0) {
        sc.accum -= 1.0;
        FlowKey flow;
        flow.src_ip = sc.src_ip;
        flow.dst_ip = config_.population.dst_ip_base;
        flow.src_port = 31337;
        flow.dst_port = sc.next_port++;
        flow.proto = IpProto::kTcp;
        scan_batch_.push_back({rng_below(rng_, due + 1),
                               std::make_pair(flow, sc.target)});
      }
    }
    std::stable_sort(scan_batch_.begin(), scan_batch_.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
    const std::size_t nscan = scan_batch_.size();
    std::size_t next_scan = 0;
    for (std::uint64_t i = 0; i < due; ++i) {
      while (next_scan < nscan && scan_batch_[next_scan].first <= i) {
        deliver(scan_batch_[next_scan].second.first,
                scan_batch_[next_scan].second.second);
        ++next_scan;
      }
      const FlowKey& flow = population_.sample(rng_);
      deliver(flow, target_of(flow));
    }
    for (; next_scan < nscan; ++next_scan) {
      deliver(scan_batch_[next_scan].second.first,
              scan_batch_[next_scan].second.second);
    }
    packets_ += due;
    packets_counter_->add(due);
    scan_packets_ += nscan;
    scan_counter_->add(nscan);
    ++batches_;
    batches_counter_->inc();
    flows_live_->set(static_cast<std::int64_t>(population_.size()));
  }
  if (window_end < config_.stop) {
    const SimTime next = window_end + config_.batch_interval;
    loop_.schedule_at(std::min(next, config_.stop),
                      [this, next]() { run_batch(next); });
  }
}

}  // namespace mdn::net
