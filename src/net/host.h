// End host: traffic sources attach here and received traffic is counted.
//
// Fig 3a plots exactly what this class records — cumulative bytes sent by
// host 1 and received by host 2 over time.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "net/event_loop.h"
#include "net/link.h"
#include "net/node.h"

namespace mdn::net {

class Host : public Node {
 public:
  Host(EventLoop& loop, std::string name, std::uint32_t ip);

  std::uint32_t ip() const noexcept { return ip_; }

  /// Hosts have exactly one port, created lazily on first access.
  Port& port(std::size_t queue_capacity = 1000);
  bool has_port() const noexcept { return port_ != nullptr; }

  /// Sends a packet out the host's port; stamps id and creation time.
  bool send(Packet pkt);

  void receive(Packet pkt, std::size_t in_port) override;

  using RxHook = std::function<void(const Packet&)>;
  /// Appends an observer invoked on every received packet (in
  /// registration order).  Multiple applications — e.g. an ECN echoer
  /// and a byte counter — can observe the same host.
  void add_rx_hook(RxHook hook) { rx_hooks_.push_back(std::move(hook)); }
  /// Replaces all hooks with `hook` (legacy single-observer semantics).
  void set_rx_hook(RxHook hook) {
    rx_hooks_.clear();
    rx_hooks_.push_back(std::move(hook));
  }

  std::uint64_t tx_packets() const noexcept { return tx_packets_; }
  std::uint64_t tx_bytes() const noexcept { return tx_bytes_; }
  std::uint64_t rx_packets() const noexcept { return rx_packets_; }
  std::uint64_t rx_bytes() const noexcept { return rx_bytes_; }

  /// Cumulative (time, bytes) series, appended on every send/receive.
  /// Cheap enough at simulation scale and exactly what Fig 3a plots.
  struct Sample {
    SimTime time;
    std::uint64_t bytes;
  };
  const std::vector<Sample>& tx_series() const noexcept { return tx_series_; }
  const std::vector<Sample>& rx_series() const noexcept { return rx_series_; }

  EventLoop& loop() noexcept { return loop_; }

 private:
  EventLoop& loop_;
  std::uint32_t ip_;
  std::unique_ptr<Port> port_;
  std::vector<RxHook> rx_hooks_;
  std::uint64_t next_packet_id_ = 1;
  std::uint64_t tx_packets_ = 0;
  std::uint64_t tx_bytes_ = 0;
  std::uint64_t rx_packets_ = 0;
  std::uint64_t rx_bytes_ = 0;
  std::vector<Sample> tx_series_;
  std::vector<Sample> rx_series_;
};

}  // namespace mdn::net
