#include "net/traffic.h"

#include <algorithm>
#include <stdexcept>

namespace mdn::net {
namespace {

SimTime interval_for(double pps) {
  if (pps <= 0.0) throw std::invalid_argument("traffic: rate must be > 0");
  return from_seconds(1.0 / pps);
}

Packet make_packet(const FlowKey& flow, std::uint32_t size) {
  Packet pkt;
  pkt.flow = flow;
  pkt.size_bytes = size;
  return pkt;
}

}  // namespace

// ---------------------------------------------------------------- CBR --

CbrSource::CbrSource(Host& host, SourceConfig config,
                     double packets_per_second)
    : host_(host),
      config_(config),
      interval_(interval_for(packets_per_second)) {}

void CbrSource::start() {
  host_.loop().schedule_at(config_.start, [this] { send_next(); });
}

void CbrSource::send_next() {
  if (host_.loop().now() >= config_.stop) return;
  host_.send(make_packet(config_.flow, config_.packet_size));
  ++sent_;
  host_.loop().schedule_in(interval_, [this] { send_next(); });
}

// --------------------------------------------------------------- Ramp --

RampSource::RampSource(Host& host, SourceConfig config, double start_pps,
                       double end_pps)
    : host_(host),
      config_(config),
      start_pps_(start_pps),
      end_pps_(end_pps) {
  if (start_pps <= 0.0 || end_pps <= 0.0) {
    throw std::invalid_argument("RampSource: rates must be > 0");
  }
}

double RampSource::rate_at(SimTime t) const noexcept {
  if (t <= config_.start) return start_pps_;
  if (t >= config_.stop) return end_pps_;
  const double frac = to_seconds(t - config_.start) /
                      to_seconds(config_.stop - config_.start);
  return start_pps_ + (end_pps_ - start_pps_) * frac;
}

void RampSource::start() {
  host_.loop().schedule_at(config_.start, [this] { send_next(); });
}

void RampSource::send_next() {
  const SimTime now = host_.loop().now();
  if (now >= config_.stop) return;
  host_.send(make_packet(config_.flow, config_.packet_size));
  ++sent_;
  host_.loop().schedule_in(interval_for(rate_at(now)),
                           [this] { send_next(); });
}

// ----------------------------------------------------------- FlowMix --

FlowMixSource::FlowMixSource(Host& host, std::vector<WeightedFlow> flows,
                             double total_pps, SimTime start, SimTime stop,
                             std::uint64_t seed, std::uint32_t packet_size)
    : host_(host),
      flows_(std::move(flows)),
      per_flow_sent_(flows_.size(), 0),
      interval_(interval_for(total_pps)),
      start_(start),
      stop_(stop),
      packet_size_(packet_size),
      rng_(seed) {
  if (flows_.empty()) {
    throw std::invalid_argument("FlowMixSource: no flows");
  }
  for (const auto& f : flows_) {
    if (f.weight < 0.0) {
      throw std::invalid_argument("FlowMixSource: negative weight");
    }
    total_weight_ += f.weight;
  }
  if (total_weight_ <= 0.0) {
    throw std::invalid_argument("FlowMixSource: zero total weight");
  }
}

const FlowKey& FlowMixSource::pick_flow() {
  double x = rng_.uniform(0.0, total_weight_);
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    x -= flows_[i].weight;
    if (x <= 0.0) {
      ++per_flow_sent_[i];
      return flows_[i].flow;
    }
  }
  ++per_flow_sent_.back();
  return flows_.back().flow;
}

void FlowMixSource::start() {
  host_.loop().schedule_at(start_, [this] { send_next(); });
}

void FlowMixSource::send_next() {
  if (host_.loop().now() >= stop_) return;
  host_.send(make_packet(pick_flow(), packet_size_));
  ++sent_;
  host_.loop().schedule_in(interval_, [this] { send_next(); });
}

std::uint64_t FlowMixSource::sent_for(const FlowKey& flow) const {
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    if (flows_[i].flow == flow) return per_flow_sent_[i];
  }
  return 0;
}

// ---------------------------------------------------------- PortScan --

PortScanSource::PortScanSource(Host& host, SourceConfig config,
                               std::uint16_t first_port,
                               std::uint16_t last_port,
                               SimTime per_port_interval)
    : host_(host),
      config_(config),
      next_port_(first_port),
      last_port_(last_port),
      interval_(per_port_interval) {
  if (last_port < first_port) {
    throw std::invalid_argument("PortScanSource: port range");
  }
}

void PortScanSource::start() {
  host_.loop().schedule_at(config_.start, [this] { send_next(); });
}

void PortScanSource::send_next() {
  if (host_.loop().now() >= config_.stop || next_port_ > last_port_) return;
  Packet pkt = make_packet(config_.flow, 64);
  pkt.flow.dst_port = next_port_;
  pkt.flow.proto = IpProto::kTcp;
  pkt.tcp_syn = true;
  host_.send(std::move(pkt));
  ++sent_;
  if (next_port_ == last_port_) return;
  ++next_port_;
  host_.loop().schedule_in(interval_, [this] { send_next(); });
}

// ------------------------------------------------------------- OnOff --

OnOffSource::OnOffSource(Host& host, SourceConfig config, double on_pps,
                         SimTime mean_on, SimTime mean_off,
                         std::uint64_t seed)
    : host_(host),
      config_(config),
      interval_(interval_for(on_pps)),
      mean_on_(mean_on),
      mean_off_(mean_off),
      rng_(seed) {}

void OnOffSource::start() {
  host_.loop().schedule_at(config_.start, [this] { enter_on(); });
}

void OnOffSource::enter_on() {
  if (host_.loop().now() >= config_.stop) return;
  const auto burst = static_cast<SimTime>(
      rng_.exponential(static_cast<double>(mean_on_)));
  send_next(host_.loop().now() + std::max<SimTime>(burst, interval_));
}

void OnOffSource::enter_off() {
  if (host_.loop().now() >= config_.stop) return;
  const auto gap = static_cast<SimTime>(
      rng_.exponential(static_cast<double>(mean_off_)));
  host_.loop().schedule_in(std::max<SimTime>(gap, 1), [this] { enter_on(); });
}

void OnOffSource::send_next(SimTime burst_end) {
  if (host_.loop().now() >= config_.stop) return;
  host_.send(make_packet(config_.flow, config_.packet_size));
  ++sent_;
  if (host_.loop().now() + interval_ >= burst_end) {
    enter_off();
    return;
  }
  host_.loop().schedule_in(interval_,
                           [this, burst_end] { send_next(burst_end); });
}

}  // namespace mdn::net
