#include "net/host.h"

namespace mdn::net {

Host::Host(EventLoop& loop, std::string name, std::uint32_t ip)
    : Node(std::move(name)), loop_(loop), ip_(ip) {}

Port& Host::port(std::size_t queue_capacity) {
  if (!port_) {
    port_ = std::make_unique<Port>(loop_, *this, 0, queue_capacity);
  }
  return *port_;
}

bool Host::send(Packet pkt) {
  pkt.id = next_packet_id_++;
  pkt.created_at = loop_.now();
  tx_bytes_ += pkt.size_bytes;
  ++tx_packets_;
  tx_series_.push_back({loop_.now(), tx_bytes_});
  return port().send(std::move(pkt));
}

void Host::receive(Packet pkt, std::size_t /*in_port*/) {
  rx_bytes_ += pkt.size_bytes;
  ++rx_packets_;
  rx_series_.push_back({loop_.now(), rx_bytes_});
  for (const auto& hook : rx_hooks_) hook(pkt);
}

}  // namespace mdn::net
