// Umbrella header for mdn::rt — the parallel streaming detection
// runtime: lock-free ring buffers, the sharded worker pool and the
// deterministic ordered event merge.
#pragma once

#include "rt/ordered_merge.h"
#include "rt/ring_buffer.h"
#include "rt/stream_runtime.h"
#include "rt/worker_pool.h"
