#include "rt/stream_runtime.h"

#include <algorithm>
#include <stdexcept>
#include <thread>

#include "mdn/mic_array.h"
#include "net/sim_time.h"
#include "obs/journal.h"

namespace mdn::rt {
namespace {

// Drop attribution: one kBlockDropped record per ground-truth tag the
// discarded block carried (so the scoreboard can blame each missed tone
// on backpressure), or a single untagged record when none rode along.
// Returns the last minted record id (0 when the journal is disabled) so
// the health layer can cite the drop as alert evidence.
obs::CauseId journal_dropped_block(const AudioBlock& block, const char* why) {
  obs::Journal& journal = obs::Journal::global();
  if (!journal.enabled()) return 0;
  obs::JournalRecord rec;
  rec.kind = obs::JournalKind::kBlockDropped;
  rec.sim_ns = net::from_seconds(block.start_s);
  rec.mic = block.mic;
  rec.aux = block.seq;
  obs::set_journal_label(rec, why);
  if (block.tag_count == 0) {
    return journal.append(rec);
  }
  obs::CauseId last = 0;
  for (std::uint8_t k = 0; k < block.tag_count; ++k) {
    rec.cause = block.tags[k].cause;
    rec.frequency_hz = block.tags[k].frequency_hz;
    last = journal.append(rec);
  }
  return last;
}

}  // namespace

StreamRuntime::StreamRuntime(StreamRuntimeConfig config)
    : config_(std::move(config)), detector_(config_.detector) {
  if (config_.workers == 0) config_.workers = 1;
  if (config_.ring_capacity == 0) config_.ring_capacity = 2;
  config_.batch_max = std::clamp<std::size_t>(
      config_.batch_max, 1, core::ToneDetector::kMaxDetectBatch);
  auto& registry = obs::Registry::global();
  submitted_counter_ = &registry.counter("rt/runtime/blocks_submitted");
  drops_oldest_counter_ = &registry.counter("rt/runtime/drops_oldest");
  drops_newest_counter_ = &registry.counter("rt/runtime/drops_newest");
}

StreamRuntime::~StreamRuntime() {
  // Stop workers without delivering remaining events: user objects wired
  // into the handler may already be gone.  Call finish() for a clean,
  // fully delivered shutdown.
  if (pool_ != nullptr) {
    pool_->finish();
    pool_->join();
  }
}

std::uint32_t StreamRuntime::add_mic(std::string name) {
  if (started_) {
    throw std::logic_error("StreamRuntime: add_mic after start");
  }
  mic_names_.push_back(std::move(name));
  queues_.push_back(std::make_unique<MicQueue>(config_.ring_capacity));
  queues_.back()->depth = &obs::Registry::global().gauge(
      "rt/mic/" + std::to_string(mic_names_.size() - 1) + "/queue_depth");
  next_seq_.push_back(0);
  const std::uint32_t id = merge_.add_source();
  return id;
}

void StreamRuntime::deliver_to(core::MicArray& array) {
  on_event([this, &array](const StreamEvent& event) {
    array.ingest_event(mic_names_[event.mic],
                       core::ToneEvent{event.time_s, event.frequency_hz,
                                       event.amplitude, event.cause});
  });
}

void StreamRuntime::start() {
  if (started_) return;
  if (config_.health != nullptr &&
      config_.health->mic_count() < queues_.size()) {
    throw std::logic_error(
        "StreamRuntime: health engine has fewer mics than the runtime");
  }
  started_ = true;
  // Enough recycled buffers for every ring slot plus blocks in flight.
  const std::size_t pool_size =
      queues_.size() * config_.ring_capacity +
      config_.workers * config_.batch_max + queues_.size() + 1;
  free_buffers_ = std::make_unique<RingBuffer<std::vector<double>>>(pool_size);
  pool_ = std::make_unique<WorkerPool>(detector_, config_.watch_hz, queues_,
                                       merge_, *free_buffers_,
                                       config_.workers, config_.health,
                                       config_.batch_max);
  pool_->start();
}

std::vector<double> StreamRuntime::acquire_buffer() {
  std::vector<double> buffer;
  if (free_buffers_ != nullptr) {
    (void)free_buffers_->try_pop(buffer);  // empty vector when none free
  }
  return buffer;
}

bool StreamRuntime::submit_block(std::uint32_t mic, double start_s,
                                 std::span<const double> samples,
                                 std::span<const audio::EmissionTag> tags) {
  if (finished_) {
    throw std::logic_error("StreamRuntime: submit after finish()");
  }
  std::vector<double> buffer = acquire_buffer();
  buffer.assign(samples.begin(), samples.end());
  AudioBlock block{next_seq_[mic], mic, start_s, std::move(buffer)};
  block.tag_count = static_cast<std::uint8_t>(
      std::min(tags.size(), block.tags.size()));
  std::copy_n(tags.begin(), block.tag_count, block.tags.begin());
  obs::Journal& journal = obs::Journal::global();
  if (journal.enabled() && block.tag_count > 0) {
    // Ingest record, stamped at block END (when the samples exist to be
    // analysed) so it sorts between the emission and the detection it
    // will be cited by (StreamEvent::ingest -> detection cause2).
    const double block_s =
        detector_.config().sample_rate > 0.0
            ? static_cast<double>(detector_.config().block_size) /
                  detector_.config().sample_rate
            : 0.0;
    obs::JournalRecord rec;
    rec.kind = obs::JournalKind::kBlockIngested;
    rec.sim_ns = net::from_seconds(start_s + block_s);
    rec.cause = block.tags[0].cause;
    rec.mic = mic;
    rec.aux = block.seq;
    obs::set_journal_label(rec, "rt_ingest");
    block.ingest = journal.append(rec);
  }
  MicQueue& q = *queues_[mic];

  switch (config_.drop_policy) {
    case DropPolicy::kBlock:
      while (!q.ring.try_push(std::move(block))) {
        std::this_thread::yield();
      }
      break;
    case DropPolicy::kDropNewest:
      if (!q.ring.try_push(std::move(block))) {
        const obs::CauseId drop_id = journal_dropped_block(block,
                                                           "drop_newest");
        if (config_.health != nullptr) {
          config_.health->estimator(mic).note_drop(drop_id);
        }
        // mo: monitoring counter, no ordering needed with other state
        dropped_newest_.fetch_add(1, std::memory_order_relaxed);
        drops_newest_counter_->inc();
        return false;  // seq not consumed: the stream stays contiguous
      }
      break;
    case DropPolicy::kDropOldest:
      while (!q.ring.try_push(std::move(block))) {
        AudioBlock oldest;
        if (q.ring.try_pop(oldest)) {
          if (q.depth != nullptr) q.depth->add(-1);
          const obs::CauseId drop_id =
              journal_dropped_block(oldest, "drop_oldest");
          if (config_.health != nullptr) {
            config_.health->estimator(oldest.mic).note_drop(drop_id);
          }
          // mo: monitoring counter, no ordering needed with other state
          dropped_oldest_.fetch_add(1, std::memory_order_relaxed);
          drops_oldest_counter_->inc();
          oldest.samples.clear();
          if (free_buffers_ != nullptr) {
            (void)free_buffers_->try_push(std::move(oldest.samples));
          }
        } else {
          std::this_thread::yield();  // worker got there first
        }
      }
      break;
  }
  ++next_seq_[mic];
  if (q.depth != nullptr) q.depth->add(1);
  // mo: monitoring counter, no ordering needed with other state
  submitted_.fetch_add(1, std::memory_order_relaxed);
  submitted_counter_->inc();
  return true;
}

std::size_t StreamRuntime::poll() {
  ready_scratch_.clear();
  const std::size_t released = merge_.drain_ready(ready_scratch_);
  obs::Journal& journal = obs::Journal::global();
  const bool journal_on = journal.enabled();
  // Detection time = block end (the onset is only known once the block
  // has been fully recorded and analysed), matching the inline
  // controller's sim-time stamp so latencies are comparable.
  const double block_s =
      detector_.config().sample_rate > 0.0
          ? static_cast<double>(detector_.config().block_size) /
                detector_.config().sample_rate
          : 0.0;
  for (StreamEvent& event : ready_scratch_) {
    if (journal_on) {
      // Mint the detection record on the owner thread, in canonical
      // merge order, citing the emission the worker resolved; then
      // rewrite the event's cause to the detection id so downstream
      // consumers (FSMs, apps) chain from the detection, not the tone.
      obs::JournalRecord rec;
      rec.kind = obs::JournalKind::kToneDetected;
      rec.cause = event.cause;
      rec.sim_ns = net::from_seconds(event.time_s + block_s);
      rec.frequency_hz = event.frequency_hz;
      rec.value = event.amplitude;
      rec.mic = event.mic;
      rec.watch = static_cast<std::int32_t>(event.watch);
      rec.aux = event.seq;
      rec.cause2 = event.ingest;
      obs::set_journal_label(rec, "rt_onset");
      event.cause = journal.append(rec);
    }
    if (record_events_) events_.push_back(event);
    if (handler_) handler_(event);
  }
  delivered_ += released;
  // Alert engine step: drain estimator transitions, mint kHealthAlert
  // records (owner thread, after the detections they may cite).
  if (config_.health != nullptr) config_.health->poll();
  return released;
}

void StreamRuntime::finish() {
  if (finished_) return;
  // Blocks may have been queued before start(); spin the workers up so
  // nothing submitted is ever silently lost.
  if (!started_) start();
  pool_->finish();
  pool_->join();
  finished_ = true;
  poll();  // every source closed: watermark is infinite, all events out
}

StreamRuntimeStats StreamRuntime::stats() const {
  StreamRuntimeStats s;
  // mo: snapshot read, torn multi-field views are acceptable
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.processed = pool_ != nullptr ? pool_->blocks_processed() : 0;
  // mo: snapshot read, torn multi-field views are acceptable
  s.dropped_oldest = dropped_oldest_.load(std::memory_order_relaxed);
  // mo: snapshot read, torn multi-field views are acceptable
  s.dropped_newest = dropped_newest_.load(std::memory_order_relaxed);
  s.delivered = delivered_;
  return s;
}

}  // namespace mdn::rt
