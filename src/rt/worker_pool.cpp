#include "rt/worker_pool.h"

#include <algorithm>
#include <cmath>
#include <span>
#include <string>

namespace mdn::rt {

WorkerPool::WorkerPool(const core::ToneDetector& detector,
                       std::vector<double> watch_hz,
                       std::vector<std::unique_ptr<MicQueue>>& queues,
                       OrderedMerge& merge,
                       RingBuffer<std::vector<double>>& free_buffers,
                       std::size_t workers,
                       obs::Health* health,
                       std::size_t batch_max)
    : detector_(detector),
      watch_hz_(std::move(watch_hz)),
      queues_(queues),
      merge_(merge),
      free_buffers_(free_buffers),
      workers_(workers == 0 ? 1 : workers),
      health_(health),
      batch_max_(std::clamp<std::size_t>(
          batch_max, 1, core::ToneDetector::kMaxDetectBatch)) {
  auto& registry = obs::Registry::global();
  processed_counter_ = &registry.counter("rt/runtime/blocks_processed");
  events_counter_ = &registry.counter("rt/runtime/events");
  block_wall_ns_.reserve(workers_);
  for (std::size_t t = 0; t < workers_; ++t) {
    block_wall_ns_.push_back(&registry.histogram(
        "rt/worker/" + std::to_string(t) + "/block_wall_ns"));
  }
  active_.resize(queues_.size());
  for (auto& row : active_) row.assign(watch_hz_.size(), 0);
}

WorkerPool::~WorkerPool() {
  finish();
  join();
}

void WorkerPool::start() {
  if (!threads_.empty()) return;
  threads_.reserve(workers_);
  for (std::size_t t = 0; t < workers_; ++t) {
    threads_.emplace_back([this, t] { run_worker(t); });
  }
  // Warm-up handshake: don't return until every worker has built its
  // plan tables and thread-local scratch, so callers that time the
  // steady state (benches, latency SLOs) never see first-detect costs.
  // mo: pairs with each worker's release increment — warm-up writes (plans, scratch) are visible once the count matches
  while (warmed_.load(std::memory_order_acquire) < workers_) {
    std::this_thread::yield();
  }
}

void WorkerPool::join() {
  for (auto& th : threads_) {
    if (th.joinable()) th.join();
  }
}

void WorkerPool::run_worker(std::size_t index) {
  // All first-call costs — plan build, SIMD dispatch selection, this
  // thread's detect scratch — happen before the handshake completes, so
  // nothing multi-millisecond pollutes the first timed block.
  detector_.warm_up();
  // mo: release publishes this worker's warm-up state to start()'s acquire loop
  warmed_.fetch_add(1, std::memory_order_release);

  obs::Histogram* wall_ns = block_wall_ns_[index];
  BatchScratch scratch;
  std::vector<char> closed(queues_.size(), 0);
  for (;;) {
    bool did_work = false;
    bool all_closed = true;
    for (std::size_t mic = index; mic < queues_.size(); mic += workers_) {
      if (closed[mic]) continue;
      MicQueue& q = *queues_[mic];
      // Drain up to batch_max_ ready blocks of this mic — popped in seq
      // order, fused into one batched detection.
      std::size_t got = 0;
      while (got < batch_max_ && q.ring.try_pop(scratch.blocks[got])) {
        ++got;
      }
      if (got > 0) {
        if (q.depth != nullptr) {
          q.depth->add(-static_cast<std::int64_t>(got));
        }
        process_batch(scratch, got, active_[mic], wall_ns);
        did_work = true;
        all_closed = false;
      // mo: pairs with finish()'s release store — the final blocks precede the close decision
      } else if (producers_done_.load(std::memory_order_acquire)) {
        // Ring drained and no producer will refill it: this microphone
        // is finished — stop gating the merge watermark on it.
        merge_.close(static_cast<std::uint32_t>(mic));
        closed[mic] = 1;
      } else {
        all_closed = false;
      }
    }
    if (all_closed) break;
    if (!did_work) std::this_thread::yield();
  }
}

void WorkerPool::process_batch(BatchScratch& scratch, std::size_t count,
                               std::vector<char>& active,
                               obs::Histogram* wall_ns) {
  const std::int64_t batch_start = obs::wall_now_ns();
  // One batched detection for the whole run (blocks are consecutive
  // seqs of one mic), then the per-block pipeline in pop order — the
  // matching, onset and merge arithmetic below is identical to
  // MdnController::tick so the merged stream stays bit-equal to the
  // serial controller path at any batch width.
  std::array<std::span<const double>, core::ToneDetector::kMaxDetectBatch>
      samples;
  std::array<std::vector<core::DetectedTone>*,
             core::ToneDetector::kMaxDetectBatch>
      tone_ptrs;
  std::array<obs::BlockSignalStats, core::ToneDetector::kMaxDetectBatch>
      stats;
  std::array<obs::BlockSignalStats*, core::ToneDetector::kMaxDetectBatch>
      stats_ptrs;
  for (std::size_t b = 0; b < count; ++b) {
    samples[b] = scratch.blocks[b].samples;
    tone_ptrs[b] = &scratch.tones[b];
    stats_ptrs[b] = health_ != nullptr ? &stats[b] : nullptr;
  }
  detector_.detect_batch_into(
      std::span<const std::span<const double>>(samples.data(), count),
      std::span<std::vector<core::DetectedTone>* const>(tone_ptrs.data(),
                                                        count),
      health_ != nullptr
          ? std::span<obs::BlockSignalStats* const>(stats_ptrs.data(), count)
          : std::span<obs::BlockSignalStats* const>{});

  const double tolerance = detector_.config().match_tolerance_hz;
  const double rate = detector_.config().sample_rate;
  std::uint64_t batch_events = 0;
  for (std::size_t b = 0; b < count; ++b) {
    AudioBlock& block = scratch.blocks[b];
    const std::vector<core::DetectedTone>& tones = scratch.tones[b];
    obs::MicSignalEstimator* est = nullptr;
    if (health_ != nullptr) {
      // Health estimator updates ride the block in per-mic seq order —
      // the mic's single owning worker is the single writer, so the
      // estimator trajectory (and any alert it queues) is deterministic
      // regardless of worker count or batch width.
      const double block_len_s =
          rate > 0.0 ? static_cast<double>(block.samples.size()) / rate : 0.0;
      est = &health_->estimator(block.mic);
      est->begin_block(block.start_s + block_len_s, stats[b]);
    }
    for (std::size_t i = 0; i < watch_hz_.size(); ++i) {
      double best_amp = 0.0;
      bool found = false;
      for (const auto& t : tones) {
        if (std::abs(t.frequency_hz - watch_hz_[i]) <= tolerance) {
          found = true;
          best_amp = std::max(best_amp, t.amplitude);
        }
      }
      // Provenance: cite the ground-truth emission whose frequency this
      // watch matched, if one rode in with the block.  Pure per-block
      // arithmetic, so the resolved cause is identical regardless of
      // worker count.
      std::uint64_t cause = 0;
      if (found) {
        for (std::uint8_t k = 0; k < block.tag_count; ++k) {
          if (std::abs(block.tags[k].frequency_hz - watch_hz_[i]) <=
              tolerance) {
            cause = block.tags[k].cause;
            break;
          }
        }
      }
      const bool onset = found && active[i] == 0;
      if (onset) {
        merge_.push({block.seq, block.mic, static_cast<std::uint32_t>(i),
                     block.start_s, watch_hz_[i], best_amp, cause,
                     block.ingest});
        ++batch_events;
      }
      if (est != nullptr) {
        est->observe_watch(i, found, onset, best_amp, cause);
      }
      active[i] = found ? 1 : 0;
    }
    if (est != nullptr) est->end_block();
    // Events of a block are pushed before the watermark moves past it —
    // the merge relies on this ordering.
    merge_.advance(block.mic, block.seq + 1);
    // Recycle the sample buffer; if the free ring is full the buffer is
    // simply deallocated (cold path).
    block.samples.clear();
    (void)free_buffers_.try_push(std::move(block.samples));
  }

  // Amortised telemetry: one atomic flush per batch, and the per-worker
  // wall histogram gets `count` samples of the batch average so its
  // count stays one-per-block.
  // mo: monitoring counter, no ordering needed with other state
  processed_.fetch_add(count, std::memory_order_relaxed);
  processed_counter_->add(count);
  if (batch_events > 0) {
    // mo: monitoring counter, no ordering needed with other state
    events_.fetch_add(batch_events, std::memory_order_relaxed);
    events_counter_->add(batch_events);
  }
  const std::int64_t per_block = (obs::wall_now_ns() - batch_start) /
                                 static_cast<std::int64_t>(count);
  for (std::size_t b = 0; b < count; ++b) {
    wall_ns->record(static_cast<double>(per_block));
  }
}

}  // namespace mdn::rt
