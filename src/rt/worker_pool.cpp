#include "rt/worker_pool.h"

#include <cmath>
#include <string>

namespace mdn::rt {

WorkerPool::WorkerPool(const core::ToneDetector& detector,
                       std::vector<double> watch_hz,
                       std::vector<std::unique_ptr<MicQueue>>& queues,
                       OrderedMerge& merge,
                       RingBuffer<std::vector<double>>& free_buffers,
                       std::size_t workers,
                       obs::Health* health)
    : detector_(detector),
      watch_hz_(std::move(watch_hz)),
      queues_(queues),
      merge_(merge),
      free_buffers_(free_buffers),
      workers_(workers == 0 ? 1 : workers),
      health_(health) {
  auto& registry = obs::Registry::global();
  processed_counter_ = &registry.counter("rt/runtime/blocks_processed");
  events_counter_ = &registry.counter("rt/runtime/events");
  block_wall_ns_.reserve(workers_);
  for (std::size_t t = 0; t < workers_; ++t) {
    block_wall_ns_.push_back(&registry.histogram(
        "rt/worker/" + std::to_string(t) + "/block_wall_ns"));
  }
  active_.resize(queues_.size());
  for (auto& row : active_) row.assign(watch_hz_.size(), 0);
}

WorkerPool::~WorkerPool() {
  finish();
  join();
}

void WorkerPool::start() {
  if (!threads_.empty()) return;
  threads_.reserve(workers_);
  for (std::size_t t = 0; t < workers_; ++t) {
    threads_.emplace_back([this, t] { run_worker(t); });
  }
}

void WorkerPool::join() {
  for (auto& th : threads_) {
    if (th.joinable()) th.join();
  }
}

void WorkerPool::run_worker(std::size_t index) {
  obs::Histogram* wall_ns = block_wall_ns_[index];
  std::vector<core::DetectedTone> tones;
  std::vector<char> closed(queues_.size(), 0);
  AudioBlock block;
  for (;;) {
    bool did_work = false;
    bool all_closed = true;
    for (std::size_t mic = index; mic < queues_.size(); mic += workers_) {
      if (closed[mic]) continue;
      MicQueue& q = *queues_[mic];
      if (q.ring.try_pop(block)) {
        if (q.depth != nullptr) q.depth->add(-1);
        process_block(block, active_[mic], tones, wall_ns);
        did_work = true;
        all_closed = false;
      } else if (producers_done_.load(std::memory_order_acquire)) {
        // Ring drained and no producer will refill it: this microphone
        // is finished — stop gating the merge watermark on it.
        merge_.close(static_cast<std::uint32_t>(mic));
        closed[mic] = 1;
      } else {
        all_closed = false;
      }
    }
    if (all_closed) break;
    if (!did_work) std::this_thread::yield();
  }
}

void WorkerPool::process_block(AudioBlock& block, std::vector<char>& active,
                               std::vector<core::DetectedTone>& tones,
                               obs::Histogram* wall_ns) {
  {
    obs::ScopedTimerNs timer(wall_ns);
    obs::BlockSignalStats stats;
    obs::MicSignalEstimator* est = nullptr;
    detector_.detect_into(block.samples, tones,
                          health_ != nullptr ? &stats : nullptr);
    if (health_ != nullptr) {
      // Health estimator updates ride the block in per-mic seq order —
      // the mic's single owning worker is the single writer, so the
      // estimator trajectory (and any alert it queues) is deterministic
      // regardless of worker count.
      const double rate = detector_.config().sample_rate;
      const double block_len_s =
          rate > 0.0 ? static_cast<double>(block.samples.size()) / rate : 0.0;
      est = &health_->estimator(block.mic);
      est->begin_block(block.start_s + block_len_s, stats);
    }
    // Identical matching arithmetic to MdnController::tick so the merged
    // stream is bit-equal to the serial controller path.
    const double tolerance = detector_.config().match_tolerance_hz;
    for (std::size_t i = 0; i < watch_hz_.size(); ++i) {
      double best_amp = 0.0;
      bool found = false;
      for (const auto& t : tones) {
        if (std::abs(t.frequency_hz - watch_hz_[i]) <= tolerance) {
          found = true;
          best_amp = std::max(best_amp, t.amplitude);
        }
      }
      // Provenance: cite the ground-truth emission whose frequency this
      // watch matched, if one rode in with the block.  Pure per-block
      // arithmetic, so the resolved cause is identical regardless of
      // worker count.
      std::uint64_t cause = 0;
      if (found) {
        for (std::uint8_t k = 0; k < block.tag_count; ++k) {
          if (std::abs(block.tags[k].frequency_hz - watch_hz_[i]) <=
              tolerance) {
            cause = block.tags[k].cause;
            break;
          }
        }
      }
      const bool onset = found && active[i] == 0;
      if (onset) {
        merge_.push({block.seq, block.mic, static_cast<std::uint32_t>(i),
                     block.start_s, watch_hz_[i], best_amp, cause});
        events_.fetch_add(1, std::memory_order_relaxed);
        events_counter_->inc();
      }
      if (est != nullptr) {
        est->observe_watch(i, found, onset, best_amp, cause);
      }
      active[i] = found ? 1 : 0;
    }
    if (est != nullptr) est->end_block();
  }
  // Events of a block are pushed before the watermark moves past it —
  // the merge relies on this ordering.
  merge_.advance(block.mic, block.seq + 1);
  processed_.fetch_add(1, std::memory_order_relaxed);
  processed_counter_->inc();
  // Recycle the sample buffer; if the free ring is full the buffer is
  // simply deallocated (cold path).
  block.samples.clear();
  (void)free_buffers_.try_push(std::move(block.samples));
}

}  // namespace mdn::rt
