// StreamRuntime: the parallel streaming detection runtime.
//
// The paper's controller is one listener doing one FFT per 50 ms hop
// (§3).  At production scale many microphones (or switch-group channel
// taps) must be decoded concurrently; this runtime is that layer:
//
//   producers (one per microphone)
//        │  submit_block() — copy into a recycled buffer
//        ▼
//   per-mic lock-free ring (rt/ring_buffer.h, bounded, drop policy)
//        ▼
//   sharded worker pool (rt/worker_pool.h) — shared const ToneDetector,
//        │  per-thread FFT scratch, per-mic onset state
//        ▼
//   ordered merge (rt/ordered_merge.h) — deterministic (seq, mic, watch)
//        ▼
//   poll()/finish() — events delivered on the owner thread, in an order
//        that is bit-identical to the single-threaded MdnController path
//        regardless of worker count (given the lossless kBlock policy).
//
// Backpressure is explicit: every ring is fixed-capacity and the drop
// policy (Block / DropOldest / DropNewest) decides what happens when a
// worker falls behind; every drop is counted in the obs registry
// ("rt/runtime/drops_*"), queue depths are gauges ("rt/mic/<i>/
// queue_depth") and per-worker block latency is a histogram
// ("rt/worker/<t>/block_wall_ns").
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "mdn/block_sink.h"
#include "mdn/tone_detector.h"
#include "obs/metrics.h"
#include "rt/ordered_merge.h"
#include "rt/worker_pool.h"

namespace mdn::core {
class MicArray;
}  // namespace mdn::core

namespace mdn::rt {

struct StreamRuntimeConfig {
  std::size_t workers = 2;
  /// Blocks buffered per microphone before the drop policy engages.
  std::size_t ring_capacity = 64;
  /// Max consecutive ready blocks of one mic a worker fuses into a
  /// single batched detection (one SoA FFT serving up to this many
  /// blocks).  Clamped to [1, core::ToneDetector::kMaxDetectBatch];
  /// 1 reproduces one-block-one-FFT exactly.  Merged output is
  /// bit-identical at any setting.
  std::size_t batch_max = core::ToneDetector::kMaxDetectBatch;
  DropPolicy drop_policy = DropPolicy::kBlock;
  core::ToneDetectorConfig detector;
  /// Frequencies matched against detected peaks; the watch index of an
  /// event is its position in this list.
  std::vector<double> watch_hz;
  /// Optional health engine (must outlive the runtime).  Workers feed
  /// per-mic signal estimators on the hot path; poll()/finish() run the
  /// alert engine on the owner thread.  Wire health->add_mic() in the
  /// same order as StreamRuntime::add_mic() — start() verifies the
  /// counts line up.
  obs::Health* health = nullptr;
};

struct StreamRuntimeStats {
  std::uint64_t submitted = 0;
  std::uint64_t processed = 0;
  std::uint64_t dropped_oldest = 0;
  std::uint64_t dropped_newest = 0;
  std::uint64_t delivered = 0;  ///< merged events handed to poll()/handler
};

class StreamRuntime final : public core::BlockSink {
 public:
  explicit StreamRuntime(StreamRuntimeConfig config);
  ~StreamRuntime() override;

  StreamRuntime(const StreamRuntime&) = delete;
  StreamRuntime& operator=(const StreamRuntime&) = delete;

  /// Registers one microphone (before start()); returns its id — the
  /// `mic` field of submitted blocks and merged events.
  std::uint32_t add_mic(std::string name);
  std::size_t mic_count() const noexcept { return mic_names_.size(); }
  const std::string& mic_name(std::uint32_t mic) const {
    return mic_names_.at(mic);
  }

  /// Fires for every merged event, in canonical order, on the thread
  /// that calls poll()/finish().  Set before start().
  using Handler = std::function<void(const StreamEvent&)>;
  void on_event(Handler handler) { handler_ = std::move(handler); }

  /// Routes merged events into a MicArray (as if each controller had
  /// heard its own onsets serially): array.ingest_event(mic_name, event)
  /// per merged event, in canonical order.
  void deliver_to(core::MicArray& array);

  /// Spawns the worker pool.  Topology (mics, handler) is frozen.
  void start();

  /// Producer hot path; safe from one thread per microphone.  Returns
  /// false when the block was dropped (kDropNewest) — drops under
  /// kDropOldest discard an older block and still return true.  Legal
  /// before start() (blocks queue up for the workers), illegal after
  /// finish(); submitting to a full ring under kBlock before start()
  /// spins until workers exist.  `tags` (at most 8 kept) are the
  /// ground-truth emission ids overlapping the block; a drop mints a
  /// journal record citing them, a detection cites the matching one.
  using core::BlockSink::submit_block;
  bool submit_block(std::uint32_t mic, double start_s,
                    std::span<const double> samples,
                    std::span<const audio::EmissionTag> tags) override;

  /// Releases every merge-complete event: appends to events() (unless
  /// record_events is off) and invokes the handler.  Returns the number
  /// released.  Call from the owning thread only.
  std::size_t poll();

  /// Declares the end of input: waits for workers to drain every ring,
  /// joins them and performs the final poll().  Idempotent; submitting
  /// after finish() throws std::logic_error.
  void finish();

  /// All events delivered so far, in canonical order.
  const std::vector<StreamEvent>& events() const noexcept { return events_; }
  /// Keep delivered events in events() (default).  Disable to make the
  /// steady-state delivery path allocation-free for long-running use.
  void set_record_events(bool keep) noexcept { record_events_ = keep; }

  StreamRuntimeStats stats() const;
  const StreamRuntimeConfig& config() const noexcept { return config_; }
  const core::ToneDetector& detector() const noexcept { return detector_; }
  bool started() const noexcept { return started_; }
  bool finished() const noexcept { return finished_; }

 private:
  std::vector<double> acquire_buffer();

  StreamRuntimeConfig config_;
  core::ToneDetector detector_;
  std::vector<std::string> mic_names_;
  std::vector<std::unique_ptr<MicQueue>> queues_;
  std::vector<std::uint64_t> next_seq_;  // per mic, producer side
  OrderedMerge merge_;
  std::unique_ptr<RingBuffer<std::vector<double>>> free_buffers_;
  std::unique_ptr<WorkerPool> pool_;
  Handler handler_;
  std::vector<StreamEvent> events_;
  std::vector<StreamEvent> ready_scratch_;
  bool record_events_ = true;
  bool started_ = false;
  bool finished_ = false;

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> dropped_oldest_{0};
  std::atomic<std::uint64_t> dropped_newest_{0};
  std::uint64_t delivered_ = 0;
  obs::Counter* submitted_counter_;
  obs::Counter* drops_oldest_counter_;
  obs::Counter* drops_newest_counter_;
};

}  // namespace mdn::rt
