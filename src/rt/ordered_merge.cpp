#include "rt/ordered_merge.h"

#include <algorithm>
#include <limits>

namespace mdn::rt {

std::uint32_t OrderedMerge::add_source() {
  common::MutexLock lock(mu_);
  done_through_.push_back(0);
  closed_.push_back(false);
  return static_cast<std::uint32_t>(done_through_.size() - 1);
}

std::size_t OrderedMerge::source_count() const {
  common::MutexLock lock(mu_);
  return done_through_.size();
}

void OrderedMerge::push(const StreamEvent& event) {
  common::MutexLock lock(mu_);
  pending_.push_back(event);
}

void OrderedMerge::advance(std::uint32_t source, std::uint64_t through_seq) {
  common::MutexLock lock(mu_);
  if (through_seq > done_through_[source]) {
    done_through_[source] = through_seq;
  }
}

void OrderedMerge::close(std::uint32_t source) {
  common::MutexLock lock(mu_);
  closed_[source] = true;
}

std::uint64_t OrderedMerge::watermark_locked() const {
  std::uint64_t w = std::numeric_limits<std::uint64_t>::max();
  for (std::size_t i = 0; i < done_through_.size(); ++i) {
    if (!closed_[i]) w = std::min(w, done_through_[i]);
  }
  return w;
}

std::uint64_t OrderedMerge::watermark() const {
  common::MutexLock lock(mu_);
  return watermark_locked();
}

std::size_t OrderedMerge::pending() const {
  common::MutexLock lock(mu_);
  return pending_.size();
}

std::size_t OrderedMerge::drain_ready(std::vector<StreamEvent>& out) {
  common::MutexLock lock(mu_);
  const std::uint64_t w = watermark_locked();
  // std::partition (not stable_partition, which may allocate): the ready
  // prefix is sorted below and the kept suffix is sorted on a later
  // drain, so relative order inside either group is irrelevant.
  const auto mid =
      std::partition(pending_.begin(), pending_.end(),
                     [w](const StreamEvent& e) { return e.seq < w; });
  std::sort(pending_.begin(), mid, stream_event_before);
  const std::size_t released =
      static_cast<std::size_t>(mid - pending_.begin());
  out.insert(out.end(), pending_.begin(), mid);
  pending_.erase(pending_.begin(), mid);  // shift, capacity retained
  return released;
}

}  // namespace mdn::rt
