// Fixed-capacity lock-free ring buffer — the hot-path queue of the
// streaming detection runtime (rt/stream_runtime.h).
//
// Each microphone feeds its shard worker through one of these rings:
// single producer (the submitting thread), single consumer (the worker).
// The cells carry per-slot sequence numbers in the style of Vyukov's
// bounded queue, which buys two things the classic head/tail SPSC ring
// cannot offer:
//   * push and pop are safe from *any* thread, so the DropOldest
//     backpressure policy may reclaim the stalest queued block from the
//     producer side while the worker is popping — no data race, no lock;
//   * a slot is published only after its value is fully constructed
//     (seq store with release), so readers never observe torn blocks.
// Operations are lock-free and allocation-free; all memory is laid out
// at construction.  Capacity is rounded up to a power of two.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <utility>

#include "common/annotations.h"

namespace mdn::rt {

template <typename T>
class RingBuffer {
 public:
  /// Capacity is rounded up to the next power of two (minimum 2).
  explicit RingBuffer(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    mask_ = cap - 1;
    cells_ = std::make_unique<Cell[]>(cap);
    for (std::size_t i = 0; i < cap; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  RingBuffer(const RingBuffer&) = delete;
  RingBuffer& operator=(const RingBuffer&) = delete;

  std::size_t capacity() const noexcept { return mask_ + 1; }

  /// False when the ring is full (value is left untouched).
  MDN_REALTIME bool try_push(T&& value) noexcept {
    Cell* cell;
    std::size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const std::size_t seq = cell->seq.load(std::memory_order_acquire);
      const std::ptrdiff_t dif = static_cast<std::ptrdiff_t>(seq) -
                                 static_cast<std::ptrdiff_t>(pos);
      if (dif == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          break;
        }
      } else if (dif < 0) {
        return false;  // full
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
    cell->value = std::move(value);
    cell->seq.store(pos + 1, std::memory_order_release);
    return true;
  }

  /// False when the ring is empty (out is left untouched).
  MDN_REALTIME bool try_pop(T& out) noexcept {
    Cell* cell;
    std::size_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const std::size_t seq = cell->seq.load(std::memory_order_acquire);
      const std::ptrdiff_t dif = static_cast<std::ptrdiff_t>(seq) -
                                 static_cast<std::ptrdiff_t>(pos + 1);
      if (dif == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          break;
        }
      } else if (dif < 0) {
        return false;  // empty
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
    out = std::move(cell->value);
    cell->seq.store(pos + mask_ + 1, std::memory_order_release);
    return true;
  }

  /// Approximate occupancy (exact only when producers and consumers are
  /// quiescent) — feed for queue-depth gauges, never for control flow.
  std::size_t size() const noexcept {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t head = head_.load(std::memory_order_relaxed);
    return tail >= head ? tail - head : 0;
  }

  bool empty() const noexcept { return size() == 0; }
  bool full() const noexcept { return size() >= capacity(); }

 private:
  struct Cell {
    std::atomic<std::size_t> seq{0};
    T value{};
  };

  std::unique_ptr<Cell[]> cells_;
  std::size_t mask_ = 1;
  // Producer and consumer cursors on separate cache lines so a busy
  // producer does not invalidate the consumer's line on every push.
  alignas(64) std::atomic<std::size_t> tail_{0};
  alignas(64) std::atomic<std::size_t> head_{0};
};

}  // namespace mdn::rt
