// Fixed-capacity lock-free ring buffer — the hot-path queue of the
// streaming detection runtime (rt/stream_runtime.h).
//
// Each microphone feeds its shard worker through one of these rings:
// single producer (the submitting thread), single consumer (the worker).
// The cells carry per-slot sequence numbers in the style of Vyukov's
// bounded queue, which buys two things the classic head/tail SPSC ring
// cannot offer:
//   * push and pop are safe from *any* thread, so the DropOldest
//     backpressure policy may reclaim the stalest queued block from the
//     producer side while the worker is popping — no data race, no lock;
//   * a slot is published only after its value is fully constructed
//     (seq store with release), so readers never observe torn blocks.
// Operations are lock-free and allocation-free; all memory is laid out
// at construction.  Capacity is rounded up to a power of two.
//
// The atomics go through the check::Atomic shim (common/atomic.h): a
// plain std::atomic in normal builds, a scheduling point under
// -DMDN_MODEL_CHECK so tests/model/ can verify the protocol across all
// interleavings.  The slot payload is a check::Cell for the same
// reason: the release/acquire pairing on `seq` is exactly what makes
// the non-atomic payload access safe, and the model checker proves it.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <utility>

#include "common/annotations.h"
#include "common/atomic.h"

// The slot-publish order is the linchpin of the protocol: relax it and
// a consumer can read a torn/unpublished payload.  tests/model/ seeds
// exactly that bug (MDN_CHECK_SEEDED_RING_BUG, one fixture target only)
// to prove the checker catches it with a replayable counterexample.
#ifdef MDN_CHECK_SEEDED_RING_BUG
#define MDN_RING_PUBLISH_ORDER std::memory_order_relaxed
#else
#define MDN_RING_PUBLISH_ORDER std::memory_order_release
#endif

namespace mdn::rt {

template <typename T>
class RingBuffer {
 public:
  /// Capacity is rounded up to the next power of two (minimum 2).
  explicit RingBuffer(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    mask_ = cap - 1;
    cells_ = std::make_unique<Cell[]>(cap);
    for (std::size_t i = 0; i < cap; ++i) {
      // mo: pre-publication init — the ring is not shared yet
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  RingBuffer(const RingBuffer&) = delete;
  RingBuffer& operator=(const RingBuffer&) = delete;

  std::size_t capacity() const noexcept { return mask_ + 1; }

  /// False when the ring is full (value is left untouched).
  MDN_REALTIME bool try_push(T&& value) MDN_CHECK_NOEXCEPT {
    Cell* cell;
    // mo: cursor scan only; the acquire on cell->seq orders the payload
    std::size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      // mo: pairs with the release publish below — claims see the
      // consumer's slot recycle before reusing the payload
      const std::size_t seq = cell->seq.load(std::memory_order_acquire);
      const std::ptrdiff_t dif = static_cast<std::ptrdiff_t>(seq) -
                                 static_cast<std::ptrdiff_t>(pos);
      if (dif == 0) {
        // mo: the CAS only arbitrates the claim; publication happens
        // via the release store on cell->seq, not the cursor
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          break;
        }
      } else if (dif < 0) {
        return false;  // full
      } else {
        // mo: retry scan; stale reads only cost another loop
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
    cell->value.write(std::move(value));
    // mo: release publishes the fully-constructed payload to the
    // acquire load in try_pop (MDN_RING_PUBLISH_ORDER == release except
    // in the seeded-bug model fixture)
    cell->seq.store(pos + 1, MDN_RING_PUBLISH_ORDER);
    return true;
  }

  /// False when the ring is empty (out is left untouched).
  MDN_REALTIME bool try_pop(T& out) MDN_CHECK_NOEXCEPT {
    Cell* cell;
    // mo: cursor scan only; the acquire on cell->seq orders the payload
    std::size_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      // mo: pairs with the release publish in try_push — the payload
      // read below is ordered after the producer's write
      const std::size_t seq = cell->seq.load(std::memory_order_acquire);
      const std::ptrdiff_t dif = static_cast<std::ptrdiff_t>(seq) -
                                 static_cast<std::ptrdiff_t>(pos + 1);
      if (dif == 0) {
        // mo: the CAS only arbitrates the claim; slot recycling happens
        // via the release store on cell->seq, not the cursor
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          break;
        }
      } else if (dif < 0) {
        return false;  // empty
      } else {
        // mo: retry scan; stale reads only cost another loop
        pos = head_.load(std::memory_order_relaxed);
      }
    }
    out = cell->value.take();
    // mo: release recycles the emptied slot to the producer's acquire
    // load (the moved-from payload must not be overwritten early)
    cell->seq.store(pos + mask_ + 1, MDN_RING_PUBLISH_ORDER);
    return true;
  }

  /// Approximate occupancy (exact only when producers and consumers are
  /// quiescent) — feed for queue-depth gauges, never for control flow.
  std::size_t size() const MDN_CHECK_NOEXCEPT {
    // mo: monitoring estimate, torn cursor pairs are acceptable
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    // mo: monitoring estimate, torn cursor pairs are acceptable
    const std::size_t head = head_.load(std::memory_order_relaxed);
    return tail >= head ? tail - head : 0;
  }

  bool empty() const MDN_CHECK_NOEXCEPT { return size() == 0; }
  bool full() const MDN_CHECK_NOEXCEPT { return size() >= capacity(); }

  /// Labels this ring's locations in model-check counterexample
  /// timelines (no-op in normal builds).
  void name_for_model(const char* tail_label, const char* head_label,
                      const char* seq_label) const MDN_CHECK_NOEXCEPT {
    check::name(&tail_, tail_label);
    check::name(&head_, head_label);
    for (std::size_t i = 0; i <= mask_; ++i) {
      check::name(&cells_[i].seq, seq_label);
    }
  }

 private:
  struct Cell {
    check::Atomic<std::size_t> seq{0};
    check::Cell<T> value{};
  };

  std::unique_ptr<Cell[]> cells_;
  std::size_t mask_ = 1;
  // Producer and consumer cursors on separate cache lines so a busy
  // producer does not invalidate the consumer's line on every push.
  alignas(64) check::Atomic<std::size_t> tail_{0};
  alignas(64) check::Atomic<std::size_t> head_{0};
};

}  // namespace mdn::rt
