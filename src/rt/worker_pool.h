// Sharded detection workers for the streaming runtime.
//
// Microphones are sharded over workers by `mic % workers`, so every
// microphone's blocks are consumed by exactly one thread: the per-mic
// ring stays single-producer/single-consumer on the hot path, and the
// per-mic onset state machine (which watch frequencies were present in
// the previous block) needs no synchronisation at all.  All workers
// share one const ToneDetector — its detect_into() is thread-safe with
// thread-local scratch (see tone_detector.h) — and push onsets into the
// OrderedMerge, which restores the canonical (seq, mic, watch) order.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "audio/emission_tag.h"
#include "common/annotations.h"
#include "mdn/tone_detector.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "rt/ordered_merge.h"
#include "rt/ring_buffer.h"

namespace mdn::rt {

/// How submit behaves when a microphone's ring is full.
enum class DropPolicy {
  kBlock,       ///< spin until the worker frees a slot (lossless)
  kDropOldest,  ///< reclaim the stalest queued block, keep the new one
  kDropNewest,  ///< discard the incoming block, keep the queue
};

/// One microphone block in flight: per-mic sequence number, source id,
/// block start time and the samples (a recycled buffer owned by value).
/// `tags` carries up to 8 ground-truth emission tags overlapping the
/// block (journal provenance; fixed-size so the ring slot stays
/// allocation-free and trivially recyclable).
struct AudioBlock {
  std::uint64_t seq = 0;
  std::uint32_t mic = 0;
  double start_s = 0.0;
  std::vector<double> samples;
  std::array<audio::EmissionTag, 8> tags{};
  std::uint8_t tag_count = 0;
  /// kBlockIngested journal id minted at submit (0 = journal off or
  /// untagged block); rides to the worker so detections can cite the
  /// capture hop via StreamEvent::ingest.
  std::uint64_t ingest = 0;
};

/// The SPSC lane between one microphone's producer and its shard worker.
struct MicQueue {
  explicit MicQueue(std::size_t capacity) : ring(capacity) {}
  RingBuffer<AudioBlock> ring;
  obs::Gauge* depth = nullptr;  ///< "rt/mic/<i>/queue_depth"
};

class WorkerPool {
 public:
  /// `detector`, `queues`, `merge` (and `health`, when set) must outlive
  /// the pool.  The watch list is copied; onset matching uses the
  /// detector's tolerance.  A non-null `health` receives per-block
  /// estimator updates for every microphone (health->estimator(mic) must
  /// exist for every queue); each mic's estimator is touched only by the
  /// worker owning that mic, preserving the single-writer contract.
  /// `batch_max` bounds how many consecutive ready blocks of one mic a
  /// worker fuses into a single batched detection (clamped to
  /// [1, core::ToneDetector::kMaxDetectBatch]); 1 reproduces the
  /// one-block-one-FFT behaviour exactly.
  WorkerPool(const core::ToneDetector& detector,
             std::vector<double> watch_hz,
             std::vector<std::unique_ptr<MicQueue>>& queues,
             OrderedMerge& merge,
             RingBuffer<std::vector<double>>& free_buffers,
             std::size_t workers,
             obs::Health* health = nullptr,
             std::size_t batch_max = core::ToneDetector::kMaxDetectBatch);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Spawns the workers and blocks until every one has finished its
  /// thread-local warm-up (plan tables, SIMD dispatch, detect scratch),
  /// so the multi-millisecond first-detect costs land here — before the
  /// caller starts timing — not in the first processed block.
  void start();

  /// Producers promise not to submit again; workers drain their rings,
  /// close their microphones in the merge and exit.
  // mo: release pairs with the workers' acquire — every block pushed before finish() is visible to the drain pass
  void finish() noexcept { producers_done_.store(true, std::memory_order_release); }

  void join();

  std::size_t worker_count() const noexcept { return workers_; }
  std::size_t batch_max() const noexcept { return batch_max_; }
  std::uint64_t blocks_processed() const noexcept {
    // mo: monitoring counter, no ordering needed with other state
    return processed_.load(std::memory_order_relaxed);
  }
  std::uint64_t events_emitted() const noexcept {
    // mo: monitoring counter, no ordering needed with other state
    return events_.load(std::memory_order_relaxed);
  }

 private:
  /// Per-worker batch scratch: block slots and one tone vector per slot
  /// (grow-once; lives on the worker's stack frame for its lifetime).
  struct BatchScratch {
    std::array<AudioBlock, core::ToneDetector::kMaxDetectBatch> blocks;
    std::array<std::vector<core::DetectedTone>,
               core::ToneDetector::kMaxDetectBatch>
        tones;
  };

  void run_worker(std::size_t index);
  /// The worker-side hot path: one batched detection over `count`
  /// consecutive blocks of a single mic, then match + merge-push per
  /// block in pop (seq) order — per-block results and merge interleaving
  /// are bit-identical to processing the blocks one at a time.  Counter
  /// and gauge traffic is flushed once per batch, and the per-worker
  /// wall histogram receives `count` samples of the batch average, so
  /// downstream consumers keep their one-sample-per-block semantics.
  /// Steady-state allocation-free (audited in tests/rt).
  MDN_REALTIME void process_batch(BatchScratch& scratch, std::size_t count,
                                  std::vector<char>& active,
                                  obs::Histogram* wall_ns);

  const core::ToneDetector& detector_;
  std::vector<double> watch_hz_;
  std::vector<std::unique_ptr<MicQueue>>& queues_;
  OrderedMerge& merge_;
  RingBuffer<std::vector<double>>& free_buffers_;
  std::size_t workers_;
  obs::Health* health_;
  std::size_t batch_max_;

  std::vector<std::thread> threads_;
  // active_[mic][watch]: tone present in the previous block.  Each row is
  // touched only by the worker that owns the microphone.
  std::vector<std::vector<char>> active_;
  std::atomic<bool> producers_done_{false};
  std::atomic<std::size_t> warmed_{0};
  std::atomic<std::uint64_t> processed_{0};
  std::atomic<std::uint64_t> events_{0};
  obs::Counter* processed_counter_;
  obs::Counter* events_counter_;
  std::vector<obs::Histogram*> block_wall_ns_;  // per worker
};

}  // namespace mdn::rt
