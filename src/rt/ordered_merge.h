// Deterministic event-stream merge for the streaming detection runtime.
//
// Shard workers finish blocks in wall-clock order, which depends on
// thread scheduling; the runtime's contract is that the *merged* onset
// stream is nevertheless bit-identical to a single-threaded run.  The
// merge restores determinism with per-source watermarks: every onset is
// keyed by (block sequence number, microphone id, watch index), a worker
// advances its microphones' watermarks as it completes blocks, and an
// event is released only once every still-open source has moved past its
// block — at which point no earlier-keyed event can ever arrive, so
// sorting the released prefix yields the canonical order.
//
// This is the runtime's *cold* path (onsets are sparse next to audio
// blocks), so a plain mutex guards the pending buffer; the audio rings
// stay lock-free.  drain_ready() performs no heap allocation once the
// pending buffer and the caller's output vector are warm.
#pragma once

#include <cstdint>
#include <vector>

#include "common/mutex.h"

namespace mdn::rt {

/// One tone onset with its provenance in the block stream.  The triple
/// (seq, mic, watch) is the canonical total order; the trailing doubles
/// carry the detection payload (block start time in seconds, matched
/// watch frequency, strongest amplitude within tolerance).
struct StreamEvent {
  std::uint64_t seq = 0;       ///< per-microphone block index
  std::uint32_t mic = 0;       ///< microphone id (registration order)
  std::uint32_t watch = 0;     ///< index into the runtime's watch list
  double time_s = 0.0;
  double frequency_hz = 0.0;
  double amplitude = 0.0;
  /// Provenance: the obs::Journal id backing this event (the emitted
  /// tone while in flight, rewritten to the detection record at
  /// delivery).  Metadata, not identity — excluded from operator== so
  /// serial/parallel equivalence holds with the journal enabled.
  std::uint64_t cause = 0;
  /// Provenance: the kBlockIngested journal id of the block this onset
  /// was detected in (0 when the journal is off or the block was
  /// untagged).  Metadata, not identity, like `cause`.
  std::uint64_t ingest = 0;
};

inline bool stream_event_before(const StreamEvent& a,
                                const StreamEvent& b) noexcept {
  if (a.seq != b.seq) return a.seq < b.seq;
  if (a.mic != b.mic) return a.mic < b.mic;
  return a.watch < b.watch;
}

inline bool operator==(const StreamEvent& a, const StreamEvent& b) noexcept {
  return a.seq == b.seq && a.mic == b.mic && a.watch == b.watch &&
         a.time_s == b.time_s && a.frequency_hz == b.frequency_hz &&
         a.amplitude == b.amplitude;
}

class OrderedMerge {
 public:
  OrderedMerge() = default;

  /// Registers one event source (a microphone); returns its id.  Sources
  /// are added while the runtime is being wired, before workers start.
  std::uint32_t add_source();

  std::size_t source_count() const;

  /// Buffers `event` for ordered release.  Workers must push all events
  /// of a block *before* advancing past it.
  void push(const StreamEvent& event);

  /// Declares every block of `source` with seq < `through_seq` complete.
  /// Monotonic: calls that would move the watermark backwards are
  /// ignored, and sequence gaps (dropped blocks) are skipped over.
  void advance(std::uint32_t source, std::uint64_t through_seq);

  /// Declares `source` finished: it no longer gates the watermark.
  void close(std::uint32_t source);

  /// Appends every releasable event to `out` in canonical order and
  /// returns how many were released.  Successive drains never emit an
  /// event twice and never emit out of order across calls.
  std::size_t drain_ready(std::vector<StreamEvent>& out);

  /// Smallest block sequence number still gated by an open source
  /// (UINT64_MAX once every source is closed).
  std::uint64_t watermark() const;

  /// Buffered events not yet released.
  std::size_t pending() const;

 private:
  std::uint64_t watermark_locked() const MDN_REQUIRES(mu_);

  mutable common::Mutex mu_;
  std::vector<StreamEvent> pending_ MDN_GUARDED_BY(mu_);
  // Per source, exclusive.
  std::vector<std::uint64_t> done_through_ MDN_GUARDED_BY(mu_);
  std::vector<bool> closed_ MDN_GUARDED_BY(mu_);
};

}  // namespace mdn::rt
