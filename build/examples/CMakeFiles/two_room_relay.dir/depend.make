# Empty dependencies file for two_room_relay.
# This may be replaced when dependencies are built.
