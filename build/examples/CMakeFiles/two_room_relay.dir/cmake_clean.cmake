file(REMOVE_RECURSE
  "CMakeFiles/two_room_relay.dir/two_room_relay.cpp.o"
  "CMakeFiles/two_room_relay.dir/two_room_relay.cpp.o.d"
  "two_room_relay"
  "two_room_relay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/two_room_relay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
