file(REMOVE_RECURSE
  "CMakeFiles/wav_spectrogram.dir/wav_spectrogram.cpp.o"
  "CMakeFiles/wav_spectrogram.dir/wav_spectrogram.cpp.o.d"
  "wav_spectrogram"
  "wav_spectrogram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wav_spectrogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
