# Empty dependencies file for wav_spectrogram.
# This may be replaced when dependencies are built.
