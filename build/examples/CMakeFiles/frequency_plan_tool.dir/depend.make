# Empty dependencies file for frequency_plan_tool.
# This may be replaced when dependencies are built.
