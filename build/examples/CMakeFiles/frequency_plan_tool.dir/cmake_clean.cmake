file(REMOVE_RECURSE
  "CMakeFiles/frequency_plan_tool.dir/frequency_plan_tool.cpp.o"
  "CMakeFiles/frequency_plan_tool.dir/frequency_plan_tool.cpp.o.d"
  "frequency_plan_tool"
  "frequency_plan_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frequency_plan_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
