file(REMOVE_RECURSE
  "CMakeFiles/port_knocking_demo.dir/port_knocking_demo.cpp.o"
  "CMakeFiles/port_knocking_demo.dir/port_knocking_demo.cpp.o.d"
  "port_knocking_demo"
  "port_knocking_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/port_knocking_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
