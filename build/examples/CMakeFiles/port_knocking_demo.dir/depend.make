# Empty dependencies file for port_knocking_demo.
# This may be replaced when dependencies are built.
