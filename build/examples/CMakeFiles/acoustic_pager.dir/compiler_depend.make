# Empty compiler generated dependencies file for acoustic_pager.
# This may be replaced when dependencies are built.
