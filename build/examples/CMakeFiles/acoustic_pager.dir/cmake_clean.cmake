file(REMOVE_RECURSE
  "CMakeFiles/acoustic_pager.dir/acoustic_pager.cpp.o"
  "CMakeFiles/acoustic_pager.dir/acoustic_pager.cpp.o.d"
  "acoustic_pager"
  "acoustic_pager.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acoustic_pager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
