# Empty dependencies file for datacenter_fan_watch.
# This may be replaced when dependencies are built.
