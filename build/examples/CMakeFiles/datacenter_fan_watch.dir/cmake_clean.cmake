file(REMOVE_RECURSE
  "CMakeFiles/datacenter_fan_watch.dir/datacenter_fan_watch.cpp.o"
  "CMakeFiles/datacenter_fan_watch.dir/datacenter_fan_watch.cpp.o.d"
  "datacenter_fan_watch"
  "datacenter_fan_watch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datacenter_fan_watch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
