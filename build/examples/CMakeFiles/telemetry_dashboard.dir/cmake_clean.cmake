file(REMOVE_RECURSE
  "CMakeFiles/telemetry_dashboard.dir/telemetry_dashboard.cpp.o"
  "CMakeFiles/telemetry_dashboard.dir/telemetry_dashboard.cpp.o.d"
  "telemetry_dashboard"
  "telemetry_dashboard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telemetry_dashboard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
