# Empty compiler generated dependencies file for telemetry_dashboard.
# This may be replaced when dependencies are built.
