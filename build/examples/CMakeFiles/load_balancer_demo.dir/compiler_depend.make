# Empty compiler generated dependencies file for load_balancer_demo.
# This may be replaced when dependencies are built.
