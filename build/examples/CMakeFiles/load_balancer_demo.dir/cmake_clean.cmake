file(REMOVE_RECURSE
  "CMakeFiles/load_balancer_demo.dir/load_balancer_demo.cpp.o"
  "CMakeFiles/load_balancer_demo.dir/load_balancer_demo.cpp.o.d"
  "load_balancer_demo"
  "load_balancer_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/load_balancer_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
