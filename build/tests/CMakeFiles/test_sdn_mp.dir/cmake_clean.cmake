file(REMOVE_RECURSE
  "CMakeFiles/test_sdn_mp.dir/mp/test_bridge.cpp.o"
  "CMakeFiles/test_sdn_mp.dir/mp/test_bridge.cpp.o.d"
  "CMakeFiles/test_sdn_mp.dir/mp/test_message.cpp.o"
  "CMakeFiles/test_sdn_mp.dir/mp/test_message.cpp.o.d"
  "CMakeFiles/test_sdn_mp.dir/sdn/test_control_channel.cpp.o"
  "CMakeFiles/test_sdn_mp.dir/sdn/test_control_channel.cpp.o.d"
  "CMakeFiles/test_sdn_mp.dir/sdn/test_inband_management.cpp.o"
  "CMakeFiles/test_sdn_mp.dir/sdn/test_inband_management.cpp.o.d"
  "CMakeFiles/test_sdn_mp.dir/sdn/test_learning_controller.cpp.o"
  "CMakeFiles/test_sdn_mp.dir/sdn/test_learning_controller.cpp.o.d"
  "test_sdn_mp"
  "test_sdn_mp.pdb"
  "test_sdn_mp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sdn_mp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
