# Empty dependencies file for test_sdn_mp.
# This may be replaced when dependencies are built.
