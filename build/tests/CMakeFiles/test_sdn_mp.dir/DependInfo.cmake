
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/mp/test_bridge.cpp" "tests/CMakeFiles/test_sdn_mp.dir/mp/test_bridge.cpp.o" "gcc" "tests/CMakeFiles/test_sdn_mp.dir/mp/test_bridge.cpp.o.d"
  "/root/repo/tests/mp/test_message.cpp" "tests/CMakeFiles/test_sdn_mp.dir/mp/test_message.cpp.o" "gcc" "tests/CMakeFiles/test_sdn_mp.dir/mp/test_message.cpp.o.d"
  "/root/repo/tests/sdn/test_control_channel.cpp" "tests/CMakeFiles/test_sdn_mp.dir/sdn/test_control_channel.cpp.o" "gcc" "tests/CMakeFiles/test_sdn_mp.dir/sdn/test_control_channel.cpp.o.d"
  "/root/repo/tests/sdn/test_inband_management.cpp" "tests/CMakeFiles/test_sdn_mp.dir/sdn/test_inband_management.cpp.o" "gcc" "tests/CMakeFiles/test_sdn_mp.dir/sdn/test_inband_management.cpp.o.d"
  "/root/repo/tests/sdn/test_learning_controller.cpp" "tests/CMakeFiles/test_sdn_mp.dir/sdn/test_learning_controller.cpp.o" "gcc" "tests/CMakeFiles/test_sdn_mp.dir/sdn/test_learning_controller.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mdn/CMakeFiles/mdn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sdn/CMakeFiles/mdn_sdn.dir/DependInfo.cmake"
  "/root/repo/build/src/mp/CMakeFiles/mdn_mp.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mdn_net.dir/DependInfo.cmake"
  "/root/repo/build/src/audio/CMakeFiles/mdn_audio.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/mdn_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
