
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/audio/test_channel.cpp" "tests/CMakeFiles/test_audio.dir/audio/test_channel.cpp.o" "gcc" "tests/CMakeFiles/test_audio.dir/audio/test_channel.cpp.o.d"
  "/root/repo/tests/audio/test_channel_property.cpp" "tests/CMakeFiles/test_audio.dir/audio/test_channel_property.cpp.o" "gcc" "tests/CMakeFiles/test_audio.dir/audio/test_channel_property.cpp.o.d"
  "/root/repo/tests/audio/test_fan.cpp" "tests/CMakeFiles/test_audio.dir/audio/test_fan.cpp.o" "gcc" "tests/CMakeFiles/test_audio.dir/audio/test_fan.cpp.o.d"
  "/root/repo/tests/audio/test_noise.cpp" "tests/CMakeFiles/test_audio.dir/audio/test_noise.cpp.o" "gcc" "tests/CMakeFiles/test_audio.dir/audio/test_noise.cpp.o.d"
  "/root/repo/tests/audio/test_resample.cpp" "tests/CMakeFiles/test_audio.dir/audio/test_resample.cpp.o" "gcc" "tests/CMakeFiles/test_audio.dir/audio/test_resample.cpp.o.d"
  "/root/repo/tests/audio/test_rng.cpp" "tests/CMakeFiles/test_audio.dir/audio/test_rng.cpp.o" "gcc" "tests/CMakeFiles/test_audio.dir/audio/test_rng.cpp.o.d"
  "/root/repo/tests/audio/test_song.cpp" "tests/CMakeFiles/test_audio.dir/audio/test_song.cpp.o" "gcc" "tests/CMakeFiles/test_audio.dir/audio/test_song.cpp.o.d"
  "/root/repo/tests/audio/test_synth.cpp" "tests/CMakeFiles/test_audio.dir/audio/test_synth.cpp.o" "gcc" "tests/CMakeFiles/test_audio.dir/audio/test_synth.cpp.o.d"
  "/root/repo/tests/audio/test_wav.cpp" "tests/CMakeFiles/test_audio.dir/audio/test_wav.cpp.o" "gcc" "tests/CMakeFiles/test_audio.dir/audio/test_wav.cpp.o.d"
  "/root/repo/tests/audio/test_waveform.cpp" "tests/CMakeFiles/test_audio.dir/audio/test_waveform.cpp.o" "gcc" "tests/CMakeFiles/test_audio.dir/audio/test_waveform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mdn/CMakeFiles/mdn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sdn/CMakeFiles/mdn_sdn.dir/DependInfo.cmake"
  "/root/repo/build/src/mp/CMakeFiles/mdn_mp.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mdn_net.dir/DependInfo.cmake"
  "/root/repo/build/src/audio/CMakeFiles/mdn_audio.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/mdn_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
