file(REMOVE_RECURSE
  "CMakeFiles/test_audio.dir/audio/test_channel.cpp.o"
  "CMakeFiles/test_audio.dir/audio/test_channel.cpp.o.d"
  "CMakeFiles/test_audio.dir/audio/test_channel_property.cpp.o"
  "CMakeFiles/test_audio.dir/audio/test_channel_property.cpp.o.d"
  "CMakeFiles/test_audio.dir/audio/test_fan.cpp.o"
  "CMakeFiles/test_audio.dir/audio/test_fan.cpp.o.d"
  "CMakeFiles/test_audio.dir/audio/test_noise.cpp.o"
  "CMakeFiles/test_audio.dir/audio/test_noise.cpp.o.d"
  "CMakeFiles/test_audio.dir/audio/test_resample.cpp.o"
  "CMakeFiles/test_audio.dir/audio/test_resample.cpp.o.d"
  "CMakeFiles/test_audio.dir/audio/test_rng.cpp.o"
  "CMakeFiles/test_audio.dir/audio/test_rng.cpp.o.d"
  "CMakeFiles/test_audio.dir/audio/test_song.cpp.o"
  "CMakeFiles/test_audio.dir/audio/test_song.cpp.o.d"
  "CMakeFiles/test_audio.dir/audio/test_synth.cpp.o"
  "CMakeFiles/test_audio.dir/audio/test_synth.cpp.o.d"
  "CMakeFiles/test_audio.dir/audio/test_wav.cpp.o"
  "CMakeFiles/test_audio.dir/audio/test_wav.cpp.o.d"
  "CMakeFiles/test_audio.dir/audio/test_waveform.cpp.o"
  "CMakeFiles/test_audio.dir/audio/test_waveform.cpp.o.d"
  "test_audio"
  "test_audio.pdb"
  "test_audio[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_audio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
