
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_controller.cpp" "tests/CMakeFiles/test_core.dir/core/test_controller.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_controller.cpp.o.d"
  "/root/repo/tests/core/test_deployment.cpp" "tests/CMakeFiles/test_core.dir/core/test_deployment.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_deployment.cpp.o.d"
  "/root/repo/tests/core/test_fan_anomaly.cpp" "tests/CMakeFiles/test_core.dir/core/test_fan_anomaly.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_fan_anomaly.cpp.o.d"
  "/root/repo/tests/core/test_fan_failure.cpp" "tests/CMakeFiles/test_core.dir/core/test_fan_failure.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_fan_failure.cpp.o.d"
  "/root/repo/tests/core/test_frequency_plan.cpp" "tests/CMakeFiles/test_core.dir/core/test_frequency_plan.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_frequency_plan.cpp.o.d"
  "/root/repo/tests/core/test_melody_codec.cpp" "tests/CMakeFiles/test_core.dir/core/test_melody_codec.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_melody_codec.cpp.o.d"
  "/root/repo/tests/core/test_melody_property.cpp" "tests/CMakeFiles/test_core.dir/core/test_melody_property.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_melody_property.cpp.o.d"
  "/root/repo/tests/core/test_mic_array.cpp" "tests/CMakeFiles/test_core.dir/core/test_mic_array.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_mic_array.cpp.o.d"
  "/root/repo/tests/core/test_music_fsm.cpp" "tests/CMakeFiles/test_core.dir/core/test_music_fsm.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_music_fsm.cpp.o.d"
  "/root/repo/tests/core/test_relay.cpp" "tests/CMakeFiles/test_core.dir/core/test_relay.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_relay.cpp.o.d"
  "/root/repo/tests/core/test_tdm.cpp" "tests/CMakeFiles/test_core.dir/core/test_tdm.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_tdm.cpp.o.d"
  "/root/repo/tests/core/test_tone_detector.cpp" "tests/CMakeFiles/test_core.dir/core/test_tone_detector.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_tone_detector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mdn/CMakeFiles/mdn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sdn/CMakeFiles/mdn_sdn.dir/DependInfo.cmake"
  "/root/repo/build/src/mp/CMakeFiles/mdn_mp.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mdn_net.dir/DependInfo.cmake"
  "/root/repo/build/src/audio/CMakeFiles/mdn_audio.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/mdn_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
