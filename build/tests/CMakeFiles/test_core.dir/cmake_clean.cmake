file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_controller.cpp.o"
  "CMakeFiles/test_core.dir/core/test_controller.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_deployment.cpp.o"
  "CMakeFiles/test_core.dir/core/test_deployment.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_fan_anomaly.cpp.o"
  "CMakeFiles/test_core.dir/core/test_fan_anomaly.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_fan_failure.cpp.o"
  "CMakeFiles/test_core.dir/core/test_fan_failure.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_frequency_plan.cpp.o"
  "CMakeFiles/test_core.dir/core/test_frequency_plan.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_melody_codec.cpp.o"
  "CMakeFiles/test_core.dir/core/test_melody_codec.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_melody_property.cpp.o"
  "CMakeFiles/test_core.dir/core/test_melody_property.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_mic_array.cpp.o"
  "CMakeFiles/test_core.dir/core/test_mic_array.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_music_fsm.cpp.o"
  "CMakeFiles/test_core.dir/core/test_music_fsm.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_relay.cpp.o"
  "CMakeFiles/test_core.dir/core/test_relay.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_tdm.cpp.o"
  "CMakeFiles/test_core.dir/core/test_tdm.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_tone_detector.cpp.o"
  "CMakeFiles/test_core.dir/core/test_tone_detector.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
