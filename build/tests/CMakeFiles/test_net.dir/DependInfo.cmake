
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/net/test_ecn.cpp" "tests/CMakeFiles/test_net.dir/net/test_ecn.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/net/test_ecn.cpp.o.d"
  "/root/repo/tests/net/test_event_loop.cpp" "tests/CMakeFiles/test_net.dir/net/test_event_loop.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/net/test_event_loop.cpp.o.d"
  "/root/repo/tests/net/test_flow_table.cpp" "tests/CMakeFiles/test_net.dir/net/test_flow_table.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/net/test_flow_table.cpp.o.d"
  "/root/repo/tests/net/test_flow_table_property.cpp" "tests/CMakeFiles/test_net.dir/net/test_flow_table_property.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/net/test_flow_table_property.cpp.o.d"
  "/root/repo/tests/net/test_link.cpp" "tests/CMakeFiles/test_net.dir/net/test_link.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/net/test_link.cpp.o.d"
  "/root/repo/tests/net/test_link_failure.cpp" "tests/CMakeFiles/test_net.dir/net/test_link_failure.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/net/test_link_failure.cpp.o.d"
  "/root/repo/tests/net/test_packet.cpp" "tests/CMakeFiles/test_net.dir/net/test_packet.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/net/test_packet.cpp.o.d"
  "/root/repo/tests/net/test_queue.cpp" "tests/CMakeFiles/test_net.dir/net/test_queue.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/net/test_queue.cpp.o.d"
  "/root/repo/tests/net/test_switch_host.cpp" "tests/CMakeFiles/test_net.dir/net/test_switch_host.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/net/test_switch_host.cpp.o.d"
  "/root/repo/tests/net/test_traffic.cpp" "tests/CMakeFiles/test_net.dir/net/test_traffic.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/net/test_traffic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mdn/CMakeFiles/mdn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sdn/CMakeFiles/mdn_sdn.dir/DependInfo.cmake"
  "/root/repo/build/src/mp/CMakeFiles/mdn_mp.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mdn_net.dir/DependInfo.cmake"
  "/root/repo/build/src/audio/CMakeFiles/mdn_audio.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/mdn_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
