file(REMOVE_RECURSE
  "CMakeFiles/test_net.dir/net/test_ecn.cpp.o"
  "CMakeFiles/test_net.dir/net/test_ecn.cpp.o.d"
  "CMakeFiles/test_net.dir/net/test_event_loop.cpp.o"
  "CMakeFiles/test_net.dir/net/test_event_loop.cpp.o.d"
  "CMakeFiles/test_net.dir/net/test_flow_table.cpp.o"
  "CMakeFiles/test_net.dir/net/test_flow_table.cpp.o.d"
  "CMakeFiles/test_net.dir/net/test_flow_table_property.cpp.o"
  "CMakeFiles/test_net.dir/net/test_flow_table_property.cpp.o.d"
  "CMakeFiles/test_net.dir/net/test_link.cpp.o"
  "CMakeFiles/test_net.dir/net/test_link.cpp.o.d"
  "CMakeFiles/test_net.dir/net/test_link_failure.cpp.o"
  "CMakeFiles/test_net.dir/net/test_link_failure.cpp.o.d"
  "CMakeFiles/test_net.dir/net/test_packet.cpp.o"
  "CMakeFiles/test_net.dir/net/test_packet.cpp.o.d"
  "CMakeFiles/test_net.dir/net/test_queue.cpp.o"
  "CMakeFiles/test_net.dir/net/test_queue.cpp.o.d"
  "CMakeFiles/test_net.dir/net/test_switch_host.cpp.o"
  "CMakeFiles/test_net.dir/net/test_switch_host.cpp.o.d"
  "CMakeFiles/test_net.dir/net/test_traffic.cpp.o"
  "CMakeFiles/test_net.dir/net/test_traffic.cpp.o.d"
  "test_net"
  "test_net.pdb"
  "test_net[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
