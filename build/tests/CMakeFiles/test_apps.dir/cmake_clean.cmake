file(REMOVE_RECURSE
  "CMakeFiles/test_apps.dir/apps/test_ddos.cpp.o"
  "CMakeFiles/test_apps.dir/apps/test_ddos.cpp.o.d"
  "CMakeFiles/test_apps.dir/apps/test_heavy_hitter.cpp.o"
  "CMakeFiles/test_apps.dir/apps/test_heavy_hitter.cpp.o.d"
  "CMakeFiles/test_apps.dir/apps/test_port_knocking.cpp.o"
  "CMakeFiles/test_apps.dir/apps/test_port_knocking.cpp.o.d"
  "CMakeFiles/test_apps.dir/apps/test_port_scan.cpp.o"
  "CMakeFiles/test_apps.dir/apps/test_port_scan.cpp.o.d"
  "CMakeFiles/test_apps.dir/apps/test_traffic_engineering.cpp.o"
  "CMakeFiles/test_apps.dir/apps/test_traffic_engineering.cpp.o.d"
  "CMakeFiles/test_apps.dir/apps/test_zodiac_profile.cpp.o"
  "CMakeFiles/test_apps.dir/apps/test_zodiac_profile.cpp.o.d"
  "test_apps"
  "test_apps.pdb"
  "test_apps[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
