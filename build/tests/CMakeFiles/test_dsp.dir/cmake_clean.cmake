file(REMOVE_RECURSE
  "CMakeFiles/test_dsp.dir/dsp/test_ecdf.cpp.o"
  "CMakeFiles/test_dsp.dir/dsp/test_ecdf.cpp.o.d"
  "CMakeFiles/test_dsp.dir/dsp/test_fft.cpp.o"
  "CMakeFiles/test_dsp.dir/dsp/test_fft.cpp.o.d"
  "CMakeFiles/test_dsp.dir/dsp/test_goertzel.cpp.o"
  "CMakeFiles/test_dsp.dir/dsp/test_goertzel.cpp.o.d"
  "CMakeFiles/test_dsp.dir/dsp/test_mel.cpp.o"
  "CMakeFiles/test_dsp.dir/dsp/test_mel.cpp.o.d"
  "CMakeFiles/test_dsp.dir/dsp/test_spectrogram.cpp.o"
  "CMakeFiles/test_dsp.dir/dsp/test_spectrogram.cpp.o.d"
  "CMakeFiles/test_dsp.dir/dsp/test_spectrum.cpp.o"
  "CMakeFiles/test_dsp.dir/dsp/test_spectrum.cpp.o.d"
  "CMakeFiles/test_dsp.dir/dsp/test_window.cpp.o"
  "CMakeFiles/test_dsp.dir/dsp/test_window.cpp.o.d"
  "test_dsp"
  "test_dsp.pdb"
  "test_dsp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
