# Empty compiler generated dependencies file for bench_fig6_fan_spectrogram.
# This may be replaced when dependencies are built.
