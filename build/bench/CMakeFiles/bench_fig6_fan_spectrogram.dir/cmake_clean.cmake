file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_fan_spectrogram.dir/bench_fig6_fan_spectrogram.cpp.o"
  "CMakeFiles/bench_fig6_fan_spectrogram.dir/bench_fig6_fan_spectrogram.cpp.o.d"
  "bench_fig6_fan_spectrogram"
  "bench_fig6_fan_spectrogram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_fan_spectrogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
