# Empty dependencies file for bench_fig2a_multiswitch_fft.
# This may be replaced when dependencies are built.
