file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2a_multiswitch_fft.dir/bench_fig2a_multiswitch_fft.cpp.o"
  "CMakeFiles/bench_fig2a_multiswitch_fft.dir/bench_fig2a_multiswitch_fft.cpp.o.d"
  "bench_fig2a_multiswitch_fft"
  "bench_fig2a_multiswitch_fft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2a_multiswitch_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
