file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_goertzel_vs_fft.dir/bench_ablation_goertzel_vs_fft.cpp.o"
  "CMakeFiles/bench_ablation_goertzel_vs_fft.dir/bench_ablation_goertzel_vs_fft.cpp.o.d"
  "bench_ablation_goertzel_vs_fft"
  "bench_ablation_goertzel_vs_fft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_goertzel_vs_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
