file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_ecn_vs_mdn.dir/bench_ablation_ecn_vs_mdn.cpp.o"
  "CMakeFiles/bench_ablation_ecn_vs_mdn.dir/bench_ablation_ecn_vs_mdn.cpp.o.d"
  "bench_ablation_ecn_vs_mdn"
  "bench_ablation_ecn_vs_mdn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ecn_vs_mdn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
