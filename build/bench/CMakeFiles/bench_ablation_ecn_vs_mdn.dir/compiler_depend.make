# Empty compiler generated dependencies file for bench_ablation_ecn_vs_mdn.
# This may be replaced when dependencies are built.
