# Empty dependencies file for bench_fig5_queue_monitor.
# This may be replaced when dependencies are built.
