file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_queue_monitor.dir/bench_fig5_queue_monitor.cpp.o"
  "CMakeFiles/bench_fig5_queue_monitor.dir/bench_fig5_queue_monitor.cpp.o.d"
  "bench_fig5_queue_monitor"
  "bench_fig5_queue_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_queue_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
