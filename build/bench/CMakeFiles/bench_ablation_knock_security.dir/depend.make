# Empty dependencies file for bench_ablation_knock_security.
# This may be replaced when dependencies are built.
