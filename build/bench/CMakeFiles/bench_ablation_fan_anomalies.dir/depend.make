# Empty dependencies file for bench_ablation_fan_anomalies.
# This may be replaced when dependencies are built.
