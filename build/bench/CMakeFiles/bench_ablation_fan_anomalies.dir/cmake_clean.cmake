file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_fan_anomalies.dir/bench_ablation_fan_anomalies.cpp.o"
  "CMakeFiles/bench_ablation_fan_anomalies.dir/bench_ablation_fan_anomalies.cpp.o.d"
  "bench_ablation_fan_anomalies"
  "bench_ablation_fan_anomalies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_fan_anomalies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
