file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_simultaneous_tones.dir/bench_ablation_simultaneous_tones.cpp.o"
  "CMakeFiles/bench_ablation_simultaneous_tones.dir/bench_ablation_simultaneous_tones.cpp.o.d"
  "bench_ablation_simultaneous_tones"
  "bench_ablation_simultaneous_tones.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_simultaneous_tones.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
