# Empty compiler generated dependencies file for bench_ablation_simultaneous_tones.
# This may be replaced when dependencies are built.
