file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_window_kind.dir/bench_ablation_window_kind.cpp.o"
  "CMakeFiles/bench_ablation_window_kind.dir/bench_ablation_window_kind.cpp.o.d"
  "bench_ablation_window_kind"
  "bench_ablation_window_kind.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_window_kind.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
