file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_port_scan.dir/bench_fig4_port_scan.cpp.o"
  "CMakeFiles/bench_fig4_port_scan.dir/bench_fig4_port_scan.cpp.o.d"
  "bench_fig4_port_scan"
  "bench_fig4_port_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_port_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
