# Empty dependencies file for bench_fig4_port_scan.
# This may be replaced when dependencies are built.
