# Empty dependencies file for bench_fig5_load_balancing.
# This may be replaced when dependencies are built.
