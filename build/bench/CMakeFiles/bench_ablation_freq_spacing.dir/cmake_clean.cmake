file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_freq_spacing.dir/bench_ablation_freq_spacing.cpp.o"
  "CMakeFiles/bench_ablation_freq_spacing.dir/bench_ablation_freq_spacing.cpp.o.d"
  "bench_ablation_freq_spacing"
  "bench_ablation_freq_spacing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_freq_spacing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
