# Empty compiler generated dependencies file for bench_fig4_heavy_hitter.
# This may be replaced when dependencies are built.
