# Empty compiler generated dependencies file for bench_ablation_acoustic_throughput.
# This may be replaced when dependencies are built.
