file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_acoustic_throughput.dir/bench_ablation_acoustic_throughput.cpp.o"
  "CMakeFiles/bench_ablation_acoustic_throughput.dir/bench_ablation_acoustic_throughput.cpp.o.d"
  "bench_ablation_acoustic_throughput"
  "bench_ablation_acoustic_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_acoustic_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
