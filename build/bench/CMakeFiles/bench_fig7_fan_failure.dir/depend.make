# Empty dependencies file for bench_fig7_fan_failure.
# This may be replaced when dependencies are built.
