# Empty compiler generated dependencies file for bench_fig2b_fft_latency.
# This may be replaced when dependencies are built.
