
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig2b_fft_latency.cpp" "bench/CMakeFiles/bench_fig2b_fft_latency.dir/bench_fig2b_fft_latency.cpp.o" "gcc" "bench/CMakeFiles/bench_fig2b_fft_latency.dir/bench_fig2b_fft_latency.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mdn/CMakeFiles/mdn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sdn/CMakeFiles/mdn_sdn.dir/DependInfo.cmake"
  "/root/repo/build/src/mp/CMakeFiles/mdn_mp.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mdn_net.dir/DependInfo.cmake"
  "/root/repo/build/src/audio/CMakeFiles/mdn_audio.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/mdn_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
