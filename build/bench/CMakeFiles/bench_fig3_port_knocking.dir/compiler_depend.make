# Empty compiler generated dependencies file for bench_fig3_port_knocking.
# This may be replaced when dependencies are built.
