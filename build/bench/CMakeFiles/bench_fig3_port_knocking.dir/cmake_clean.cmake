file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_port_knocking.dir/bench_fig3_port_knocking.cpp.o"
  "CMakeFiles/bench_fig3_port_knocking.dir/bench_fig3_port_knocking.cpp.o.d"
  "bench_fig3_port_knocking"
  "bench_fig3_port_knocking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_port_knocking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
