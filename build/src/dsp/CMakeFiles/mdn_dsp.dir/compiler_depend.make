# Empty compiler generated dependencies file for mdn_dsp.
# This may be replaced when dependencies are built.
