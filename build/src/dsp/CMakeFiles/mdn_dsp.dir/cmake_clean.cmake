file(REMOVE_RECURSE
  "CMakeFiles/mdn_dsp.dir/ecdf.cpp.o"
  "CMakeFiles/mdn_dsp.dir/ecdf.cpp.o.d"
  "CMakeFiles/mdn_dsp.dir/fft.cpp.o"
  "CMakeFiles/mdn_dsp.dir/fft.cpp.o.d"
  "CMakeFiles/mdn_dsp.dir/goertzel.cpp.o"
  "CMakeFiles/mdn_dsp.dir/goertzel.cpp.o.d"
  "CMakeFiles/mdn_dsp.dir/mel.cpp.o"
  "CMakeFiles/mdn_dsp.dir/mel.cpp.o.d"
  "CMakeFiles/mdn_dsp.dir/spectrogram.cpp.o"
  "CMakeFiles/mdn_dsp.dir/spectrogram.cpp.o.d"
  "CMakeFiles/mdn_dsp.dir/spectrum.cpp.o"
  "CMakeFiles/mdn_dsp.dir/spectrum.cpp.o.d"
  "CMakeFiles/mdn_dsp.dir/window.cpp.o"
  "CMakeFiles/mdn_dsp.dir/window.cpp.o.d"
  "libmdn_dsp.a"
  "libmdn_dsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdn_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
