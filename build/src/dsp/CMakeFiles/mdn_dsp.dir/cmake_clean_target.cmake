file(REMOVE_RECURSE
  "libmdn_dsp.a"
)
