file(REMOVE_RECURSE
  "libmdn_audio.a"
)
