
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/audio/channel.cpp" "src/audio/CMakeFiles/mdn_audio.dir/channel.cpp.o" "gcc" "src/audio/CMakeFiles/mdn_audio.dir/channel.cpp.o.d"
  "/root/repo/src/audio/fan.cpp" "src/audio/CMakeFiles/mdn_audio.dir/fan.cpp.o" "gcc" "src/audio/CMakeFiles/mdn_audio.dir/fan.cpp.o.d"
  "/root/repo/src/audio/noise.cpp" "src/audio/CMakeFiles/mdn_audio.dir/noise.cpp.o" "gcc" "src/audio/CMakeFiles/mdn_audio.dir/noise.cpp.o.d"
  "/root/repo/src/audio/resample.cpp" "src/audio/CMakeFiles/mdn_audio.dir/resample.cpp.o" "gcc" "src/audio/CMakeFiles/mdn_audio.dir/resample.cpp.o.d"
  "/root/repo/src/audio/rng.cpp" "src/audio/CMakeFiles/mdn_audio.dir/rng.cpp.o" "gcc" "src/audio/CMakeFiles/mdn_audio.dir/rng.cpp.o.d"
  "/root/repo/src/audio/song.cpp" "src/audio/CMakeFiles/mdn_audio.dir/song.cpp.o" "gcc" "src/audio/CMakeFiles/mdn_audio.dir/song.cpp.o.d"
  "/root/repo/src/audio/synth.cpp" "src/audio/CMakeFiles/mdn_audio.dir/synth.cpp.o" "gcc" "src/audio/CMakeFiles/mdn_audio.dir/synth.cpp.o.d"
  "/root/repo/src/audio/wav.cpp" "src/audio/CMakeFiles/mdn_audio.dir/wav.cpp.o" "gcc" "src/audio/CMakeFiles/mdn_audio.dir/wav.cpp.o.d"
  "/root/repo/src/audio/waveform.cpp" "src/audio/CMakeFiles/mdn_audio.dir/waveform.cpp.o" "gcc" "src/audio/CMakeFiles/mdn_audio.dir/waveform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dsp/CMakeFiles/mdn_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
