# Empty dependencies file for mdn_audio.
# This may be replaced when dependencies are built.
