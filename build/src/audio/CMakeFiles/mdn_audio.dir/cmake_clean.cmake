file(REMOVE_RECURSE
  "CMakeFiles/mdn_audio.dir/channel.cpp.o"
  "CMakeFiles/mdn_audio.dir/channel.cpp.o.d"
  "CMakeFiles/mdn_audio.dir/fan.cpp.o"
  "CMakeFiles/mdn_audio.dir/fan.cpp.o.d"
  "CMakeFiles/mdn_audio.dir/noise.cpp.o"
  "CMakeFiles/mdn_audio.dir/noise.cpp.o.d"
  "CMakeFiles/mdn_audio.dir/resample.cpp.o"
  "CMakeFiles/mdn_audio.dir/resample.cpp.o.d"
  "CMakeFiles/mdn_audio.dir/rng.cpp.o"
  "CMakeFiles/mdn_audio.dir/rng.cpp.o.d"
  "CMakeFiles/mdn_audio.dir/song.cpp.o"
  "CMakeFiles/mdn_audio.dir/song.cpp.o.d"
  "CMakeFiles/mdn_audio.dir/synth.cpp.o"
  "CMakeFiles/mdn_audio.dir/synth.cpp.o.d"
  "CMakeFiles/mdn_audio.dir/wav.cpp.o"
  "CMakeFiles/mdn_audio.dir/wav.cpp.o.d"
  "CMakeFiles/mdn_audio.dir/waveform.cpp.o"
  "CMakeFiles/mdn_audio.dir/waveform.cpp.o.d"
  "libmdn_audio.a"
  "libmdn_audio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdn_audio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
