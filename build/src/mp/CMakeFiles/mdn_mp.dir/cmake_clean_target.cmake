file(REMOVE_RECURSE
  "libmdn_mp.a"
)
