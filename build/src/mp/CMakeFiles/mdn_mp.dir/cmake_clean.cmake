file(REMOVE_RECURSE
  "CMakeFiles/mdn_mp.dir/bridge.cpp.o"
  "CMakeFiles/mdn_mp.dir/bridge.cpp.o.d"
  "CMakeFiles/mdn_mp.dir/message.cpp.o"
  "CMakeFiles/mdn_mp.dir/message.cpp.o.d"
  "libmdn_mp.a"
  "libmdn_mp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdn_mp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
