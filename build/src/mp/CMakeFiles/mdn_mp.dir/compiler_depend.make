# Empty compiler generated dependencies file for mdn_mp.
# This may be replaced when dependencies are built.
