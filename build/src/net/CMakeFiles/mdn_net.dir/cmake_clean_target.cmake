file(REMOVE_RECURSE
  "libmdn_net.a"
)
