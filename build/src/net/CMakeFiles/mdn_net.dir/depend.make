# Empty dependencies file for mdn_net.
# This may be replaced when dependencies are built.
