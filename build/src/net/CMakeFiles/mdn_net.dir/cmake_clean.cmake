file(REMOVE_RECURSE
  "CMakeFiles/mdn_net.dir/ecn.cpp.o"
  "CMakeFiles/mdn_net.dir/ecn.cpp.o.d"
  "CMakeFiles/mdn_net.dir/event_loop.cpp.o"
  "CMakeFiles/mdn_net.dir/event_loop.cpp.o.d"
  "CMakeFiles/mdn_net.dir/flow_table.cpp.o"
  "CMakeFiles/mdn_net.dir/flow_table.cpp.o.d"
  "CMakeFiles/mdn_net.dir/host.cpp.o"
  "CMakeFiles/mdn_net.dir/host.cpp.o.d"
  "CMakeFiles/mdn_net.dir/link.cpp.o"
  "CMakeFiles/mdn_net.dir/link.cpp.o.d"
  "CMakeFiles/mdn_net.dir/network.cpp.o"
  "CMakeFiles/mdn_net.dir/network.cpp.o.d"
  "CMakeFiles/mdn_net.dir/packet.cpp.o"
  "CMakeFiles/mdn_net.dir/packet.cpp.o.d"
  "CMakeFiles/mdn_net.dir/queue.cpp.o"
  "CMakeFiles/mdn_net.dir/queue.cpp.o.d"
  "CMakeFiles/mdn_net.dir/switch.cpp.o"
  "CMakeFiles/mdn_net.dir/switch.cpp.o.d"
  "CMakeFiles/mdn_net.dir/traffic.cpp.o"
  "CMakeFiles/mdn_net.dir/traffic.cpp.o.d"
  "libmdn_net.a"
  "libmdn_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdn_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
