
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/ecn.cpp" "src/net/CMakeFiles/mdn_net.dir/ecn.cpp.o" "gcc" "src/net/CMakeFiles/mdn_net.dir/ecn.cpp.o.d"
  "/root/repo/src/net/event_loop.cpp" "src/net/CMakeFiles/mdn_net.dir/event_loop.cpp.o" "gcc" "src/net/CMakeFiles/mdn_net.dir/event_loop.cpp.o.d"
  "/root/repo/src/net/flow_table.cpp" "src/net/CMakeFiles/mdn_net.dir/flow_table.cpp.o" "gcc" "src/net/CMakeFiles/mdn_net.dir/flow_table.cpp.o.d"
  "/root/repo/src/net/host.cpp" "src/net/CMakeFiles/mdn_net.dir/host.cpp.o" "gcc" "src/net/CMakeFiles/mdn_net.dir/host.cpp.o.d"
  "/root/repo/src/net/link.cpp" "src/net/CMakeFiles/mdn_net.dir/link.cpp.o" "gcc" "src/net/CMakeFiles/mdn_net.dir/link.cpp.o.d"
  "/root/repo/src/net/network.cpp" "src/net/CMakeFiles/mdn_net.dir/network.cpp.o" "gcc" "src/net/CMakeFiles/mdn_net.dir/network.cpp.o.d"
  "/root/repo/src/net/packet.cpp" "src/net/CMakeFiles/mdn_net.dir/packet.cpp.o" "gcc" "src/net/CMakeFiles/mdn_net.dir/packet.cpp.o.d"
  "/root/repo/src/net/queue.cpp" "src/net/CMakeFiles/mdn_net.dir/queue.cpp.o" "gcc" "src/net/CMakeFiles/mdn_net.dir/queue.cpp.o.d"
  "/root/repo/src/net/switch.cpp" "src/net/CMakeFiles/mdn_net.dir/switch.cpp.o" "gcc" "src/net/CMakeFiles/mdn_net.dir/switch.cpp.o.d"
  "/root/repo/src/net/traffic.cpp" "src/net/CMakeFiles/mdn_net.dir/traffic.cpp.o" "gcc" "src/net/CMakeFiles/mdn_net.dir/traffic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/audio/CMakeFiles/mdn_audio.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/mdn_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
