# Empty compiler generated dependencies file for mdn_core.
# This may be replaced when dependencies are built.
