
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mdn/controller.cpp" "src/mdn/CMakeFiles/mdn_core.dir/controller.cpp.o" "gcc" "src/mdn/CMakeFiles/mdn_core.dir/controller.cpp.o.d"
  "/root/repo/src/mdn/ddos.cpp" "src/mdn/CMakeFiles/mdn_core.dir/ddos.cpp.o" "gcc" "src/mdn/CMakeFiles/mdn_core.dir/ddos.cpp.o.d"
  "/root/repo/src/mdn/deployment.cpp" "src/mdn/CMakeFiles/mdn_core.dir/deployment.cpp.o" "gcc" "src/mdn/CMakeFiles/mdn_core.dir/deployment.cpp.o.d"
  "/root/repo/src/mdn/fan_anomaly.cpp" "src/mdn/CMakeFiles/mdn_core.dir/fan_anomaly.cpp.o" "gcc" "src/mdn/CMakeFiles/mdn_core.dir/fan_anomaly.cpp.o.d"
  "/root/repo/src/mdn/fan_failure.cpp" "src/mdn/CMakeFiles/mdn_core.dir/fan_failure.cpp.o" "gcc" "src/mdn/CMakeFiles/mdn_core.dir/fan_failure.cpp.o.d"
  "/root/repo/src/mdn/frequency_plan.cpp" "src/mdn/CMakeFiles/mdn_core.dir/frequency_plan.cpp.o" "gcc" "src/mdn/CMakeFiles/mdn_core.dir/frequency_plan.cpp.o.d"
  "/root/repo/src/mdn/heavy_hitter.cpp" "src/mdn/CMakeFiles/mdn_core.dir/heavy_hitter.cpp.o" "gcc" "src/mdn/CMakeFiles/mdn_core.dir/heavy_hitter.cpp.o.d"
  "/root/repo/src/mdn/melody_codec.cpp" "src/mdn/CMakeFiles/mdn_core.dir/melody_codec.cpp.o" "gcc" "src/mdn/CMakeFiles/mdn_core.dir/melody_codec.cpp.o.d"
  "/root/repo/src/mdn/mic_array.cpp" "src/mdn/CMakeFiles/mdn_core.dir/mic_array.cpp.o" "gcc" "src/mdn/CMakeFiles/mdn_core.dir/mic_array.cpp.o.d"
  "/root/repo/src/mdn/music_fsm.cpp" "src/mdn/CMakeFiles/mdn_core.dir/music_fsm.cpp.o" "gcc" "src/mdn/CMakeFiles/mdn_core.dir/music_fsm.cpp.o.d"
  "/root/repo/src/mdn/port_knocking.cpp" "src/mdn/CMakeFiles/mdn_core.dir/port_knocking.cpp.o" "gcc" "src/mdn/CMakeFiles/mdn_core.dir/port_knocking.cpp.o.d"
  "/root/repo/src/mdn/port_scan.cpp" "src/mdn/CMakeFiles/mdn_core.dir/port_scan.cpp.o" "gcc" "src/mdn/CMakeFiles/mdn_core.dir/port_scan.cpp.o.d"
  "/root/repo/src/mdn/relay.cpp" "src/mdn/CMakeFiles/mdn_core.dir/relay.cpp.o" "gcc" "src/mdn/CMakeFiles/mdn_core.dir/relay.cpp.o.d"
  "/root/repo/src/mdn/tdm.cpp" "src/mdn/CMakeFiles/mdn_core.dir/tdm.cpp.o" "gcc" "src/mdn/CMakeFiles/mdn_core.dir/tdm.cpp.o.d"
  "/root/repo/src/mdn/tone_detector.cpp" "src/mdn/CMakeFiles/mdn_core.dir/tone_detector.cpp.o" "gcc" "src/mdn/CMakeFiles/mdn_core.dir/tone_detector.cpp.o.d"
  "/root/repo/src/mdn/traffic_engineering.cpp" "src/mdn/CMakeFiles/mdn_core.dir/traffic_engineering.cpp.o" "gcc" "src/mdn/CMakeFiles/mdn_core.dir/traffic_engineering.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dsp/CMakeFiles/mdn_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/audio/CMakeFiles/mdn_audio.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mdn_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sdn/CMakeFiles/mdn_sdn.dir/DependInfo.cmake"
  "/root/repo/build/src/mp/CMakeFiles/mdn_mp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
