file(REMOVE_RECURSE
  "libmdn_core.a"
)
