file(REMOVE_RECURSE
  "CMakeFiles/mdn_sdn.dir/controller.cpp.o"
  "CMakeFiles/mdn_sdn.dir/controller.cpp.o.d"
  "libmdn_sdn.a"
  "libmdn_sdn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdn_sdn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
