
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sdn/controller.cpp" "src/sdn/CMakeFiles/mdn_sdn.dir/controller.cpp.o" "gcc" "src/sdn/CMakeFiles/mdn_sdn.dir/controller.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/mdn_net.dir/DependInfo.cmake"
  "/root/repo/build/src/audio/CMakeFiles/mdn_audio.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/mdn_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
