# Empty dependencies file for mdn_sdn.
# This may be replaced when dependencies are built.
