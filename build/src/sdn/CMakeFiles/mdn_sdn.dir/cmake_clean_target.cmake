file(REMOVE_RECURSE
  "libmdn_sdn.a"
)
