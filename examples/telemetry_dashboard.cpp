// Music-defined telemetry dashboard (§5): one listener, three detectors —
// and the whole run instrumented through mdn::obs.
//
// A switch carries a mixed workload — an elephant flow, background mice,
// and (halfway through) a port scan.  Heavy-hitter, port-scan and
// superspreader detectors run simultaneously on disjoint frequency sets
// of the same switch, sharing a single microphone.  At the end the
// dashboard is rendered from the metrics registry (not ad-hoc counters),
// and the run is exported as Prometheus text, JSONL and a Chrome
// trace_event timeline you can open in chrome://tracing / Perfetto.
//
// The flight recorder runs too: the journal captures every hop from the
// reporters' emitted tones to the FlowMod the dashboard installs against
// the heavy hitter, the scoreboard reconciles emitted vs detected per
// watch, and the causal chain of the last FlowMods can be dumped with
//
//   ./telemetry_dashboard explain [n]     (default n=1)
//
// Run: ./telemetry_dashboard [explain [n]]
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "audio/audio.h"
#include "dsp/simd.h"
#include "mdn/mdn.h"
#include "mp/mp.h"
#include "net/net.h"
#include "obs/obs.h"
#include "sdn/sdn.h"

namespace {

// Renders every registry metric under `prefix` as a dashboard section.
void render_section(const mdn::obs::Snapshot& snap,
                    const std::string& title, const std::string& prefix) {
  std::printf("\n  [%s]\n", title.c_str());
  for (const auto& m : snap) {
    if (m.name.rfind(prefix, 0) != 0) continue;
    switch (m.kind) {
      case mdn::obs::Kind::kCounter:
        std::printf("    %-44s %12llu\n", m.name.c_str(),
                    static_cast<unsigned long long>(m.counter));
        break;
      case mdn::obs::Kind::kGauge:
        std::printf("    %-44s %12lld  (max %lld)\n", m.name.c_str(),
                    static_cast<long long>(m.gauge),
                    static_cast<long long>(m.gauge_max));
        break;
      case mdn::obs::Kind::kHistogram:
        if (m.hist.count == 0) break;
        std::printf("    %-44s n=%llu p50=%.3f ms p90=%.3f ms p99=%.3f ms\n",
                    m.name.c_str(),
                    static_cast<unsigned long long>(m.hist.count),
                    m.hist.quantile(0.5) / 1e6, m.hist.quantile(0.9) / 1e6,
                    m.hist.quantile(0.99) / 1e6);
        break;
    }
  }
}

std::uint64_t counter_value(const mdn::obs::Snapshot& snap,
                            const std::string& name) {
  for (const auto& m : snap) {
    if (m.name == name) return m.counter;
  }
  return 0;
}

int usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s [explain [n]]\n"
               "  n  how many recent flow-mod causal chains to dump;\n"
               "     a positive integer (default 1)\n",
               prog);
  return 2;
}

// Strict positive-integer parse: rejects signs, junk suffixes ("3x"),
// empty strings and zero instead of silently defaulting like atoi.
bool parse_count(const char* s, std::size_t* out) {
  if (s == nullptr || *s == '\0' || !std::isdigit(static_cast<unsigned char>(*s))) {
    return false;
  }
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (errno != 0 || end == s || *end != '\0' || v == 0) return false;
  *out = static_cast<std::size_t>(v);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mdn;
  constexpr double kSampleRate = 48000.0;

  std::size_t explain_n = 0;
  if (argc > 1) {
    if (std::strcmp(argv[1], "explain") != 0 || argc > 3) {
      return usage(argv[0]);
    }
    explain_n = 1;
    if (argc == 3 && !parse_count(argv[2], &explain_n)) {
      std::fprintf(stderr, "telemetry_dashboard: bad count '%s'\n", argv[2]);
      return usage(argv[0]);
    }
  }

  // Fresh registry state so the dashboard shows this run only, sim-time
  // tracing on, and the flight recorder rolling: the whole experiment
  // becomes a timeline plus a causal journal.
  obs::Registry::global().reset();
  obs::Journal& journal = obs::Journal::global();
  journal.enable(std::size_t{1} << 16);
  journal.clear();

  net::Network net;
  net.loop().tracer().enable();

  audio::AcousticChannel channel(kSampleRate);
  // Office-grade ambience.
  channel.add_ambient(audio::generate_office(
      2.0, kSampleRate, audio::spl_to_amplitude(45.0), 3));

  net::Host* h1 = nullptr;
  net::Host* h2 = nullptr;
  auto switches = net::build_chain(net, 1, &h1, &h2);
  net::Switch& sw = *switches.front();

  // Actuation path: the dashboard reacts to the first heavy-hitter alert
  // by installing a drop rule over a plain OpenFlow session — the
  // journal ties that FlowMod all the way back to the emitted tones.
  sdn::Controller null_controller;
  sdn::ControlChannel sdn_channel(net.loop(), net::kMillisecond);
  const sdn::DatapathId dpid = sdn_channel.attach(sw, null_controller);

  // Disjoint frequency sets: one per application (§3: "each task uses a
  // different set of frequencies").
  core::FrequencyPlan plan({.base_hz = 1000.0, .spacing_hz = 20.0});
  const auto hh_dev = plan.add_device("s1/heavy-hitter", 24);
  const auto ps_dev = plan.add_device("s1/port-scan", 24);
  const auto ss_dev = plan.add_device("s1/superspreader", 24);

  const auto spk = channel.add_source("s1-speaker", 0.5);
  mp::PiSpeakerBridge bridge(net.loop(), channel, spk);
  mp::MpEmitter hh_emitter(net.loop(), bridge, 100 * net::kMillisecond);
  mp::MpEmitter ps_emitter(net.loop(), bridge, 60 * net::kMillisecond);
  mp::MpEmitter ss_emitter(net.loop(), bridge, 60 * net::kMillisecond);

  // Health/SLO engine: the controller feeds per-block signal estimators
  // for its one microphone; rules judge the channel itself (a noisy or
  // dead mic shows up here before any detector misbehaves).
  obs::HealthConfig hcfg;
  hcfg.watch_count = 3 * 24;  // hh + ps + ss watch lists
  obs::Health health(hcfg);
  health.add_mic("s1-mic");
  health.add_slo({.name = "noise_floor_high",
                  .metric = obs::SloSpec::Metric::kNoiseFloor,
                  .op = obs::SloSpec::Op::kAbove,
                  .threshold = audio::spl_to_amplitude(70.0),
                  .for_s = 0.25,
                  .severity = obs::HealthState::kDegraded});
  health.add_slo({.name = "mic_silent",
                  .metric = obs::SloSpec::Metric::kSilenceS,
                  .op = obs::SloSpec::Op::kAbove,
                  .threshold = 4.0,
                  .for_s = 0.0,
                  .severity = obs::HealthState::kFailed});
  // Stage-latency SLO: the profiler's capture p99 (published below by
  // the periodic attribution poll) must stay under 150 ms.
  health.add_slo({.name = "capture_p99_slow",
                  .metric = obs::SloSpec::Metric::kStageLatencyP99,
                  .op = obs::SloSpec::Op::kAbove,
                  .threshold = 0.150,
                  .for_s = 0.0,
                  .severity = obs::HealthState::kDegraded,
                  .stage = obs::LatencyStage::kCapture});

  core::MdnController::Config ccfg;
  ccfg.detector.sample_rate = kSampleRate;
  ccfg.health = &health;
  core::MdnController controller(net.loop(), channel, ccfg);

  core::HeavyHitterConfig hh_cfg;
  hh_cfg.window_s = 2.0;
  hh_cfg.threshold = 12;
  core::HeavyHitterReporter hh_reporter(sw, hh_emitter, plan, hh_dev,
                                        hh_cfg);
  core::HeavyHitterDetector hh_detector(controller, plan, hh_dev, hh_cfg);
  obs::CauseId hh_flow_mod = 0;
  hh_detector.on_alert([&](const core::HeavyHitterDetector::Alert& a) {
    std::printf("[%6.2f s] HEAVY HITTER  bin %zu (%.0f Hz), %zu tones in "
                "window\n",
                a.time_s, a.bin, a.frequency_hz, a.count_in_window);
    if (hh_flow_mod != 0) return;
    // Throttle the elephant: the rule's provenance is the alert record,
    // which in turn cites the detected (and emitted) tone.
    net::FlowEntry drop;
    drop.priority = 300;
    drop.match.dst_port = 80;
    drop.match.proto = net::IpProto::kTcp;
    drop.actions = {net::Action::drop()};
    hh_flow_mod = sdn_channel.send_flow_mod(dpid, sdn::FlowMod::add(drop),
                                            a.cause);
  });

  core::PortScanConfig ps_cfg;
  ps_cfg.first_port = 7000;
  ps_cfg.window_s = 3.0;
  ps_cfg.distinct_threshold = 10;
  core::PortScanReporter ps_reporter(sw, ps_emitter, plan, ps_dev, ps_cfg);
  core::PortScanDetector ps_detector(controller, plan, ps_dev, ps_cfg);
  ps_detector.on_alert([&](const core::PortScanDetector::Alert& a) {
    std::printf("[%6.2f s] PORT SCAN     %zu distinct ports probed\n",
                a.time_s, a.distinct_tones);
  });

  core::SuperspreaderConfig ss_cfg;
  ss_cfg.k = 15;
  ss_cfg.window_s = 4.0;
  core::SuperspreaderReporter ss_reporter(sw, ss_emitter, plan, ss_dev,
                                          ss_cfg);
  core::SuperspreaderDetector ss_detector(controller, plan, ss_dev, ss_cfg);
  ss_detector.on_alert([&](const core::SuperspreaderDetector::Alert& a) {
    std::printf("[%6.2f s] SUPERSPREADER %zu distinct destinations\n",
                a.time_s, a.distinct_bins);
  });

  controller.start();

  // --- Timeline: sim-time series over the registry --------------------
  // Four fleet-relevant instruments sampled every 250 ms of sim time
  // into a bounded ring; rates and sparklines are derived at export.
  auto& registry = obs::Registry::global();
  obs::Timeline timeline({.capacity = 64});
  timeline.track_counter(registry, "net/switch/s1/forwarded");
  timeline.track_counter(registry, "mp/bridge/tones_played");
  timeline.track_counter(registry, "mdn/controller/blocks");
  timeline.track_counter(registry, "mdn/controller/onsets");
  const net::SimTime run_end = net::from_seconds(8.5);
  net.loop().schedule_periodic(
      net::kMillisecond * 250, net::kMillisecond * 250, [&, run_end] {
        timeline.sample(net.loop().now());
        return net.loop().now() < run_end;  // let the loop drain at stop
      });

  // Periodic latency attribution poll: walk fresh detection chains and
  // publish the capture-stage p99 so the capture_p99_slow SLO sees it.
  net.loop().schedule_periodic(net::kSecond, net::kSecond, [&, run_end] {
    obs::LatencyProfiler poll_profiler(journal);
    poll_profiler.profile(obs::JournalKind::kToneDetected);
    const auto capture =
        poll_profiler.stage_stats(obs::LatencyStage::kCapture);
    if (capture.count != 0) {
      health.publish_stage_latency(obs::LatencyStage::kCapture,
                                   capture.p99_ns / 1e9);
    }
    return net.loop().now() < run_end;
  });

  // --- Workload ------------------------------------------------------
  // Elephant + mice from t=0.
  const net::FlowKey elephant{h1->ip(), h2->ip(), 41000, 80,
                              net::IpProto::kTcp};
  std::vector<net::FlowMixSource::WeightedFlow> flows{{elephant, 15.0}};
  for (std::uint16_t p = 81; p < 85; ++p) {
    flows.push_back({{h1->ip(), h2->ip(), 41000, p, net::IpProto::kTcp},
                     1.0});
  }
  net::FlowMixSource mix(*h1, flows, 200.0, 0, net::from_seconds(8.0), 17);
  mix.start();

  // Port scan kicks in at t=4.
  net::SourceConfig scan_cfg;
  scan_cfg.flow = {net::make_ipv4(172, 16, 0, 66), h2->ip(), 50000, 0,
                   net::IpProto::kTcp};
  scan_cfg.start = net::from_seconds(4.0);
  scan_cfg.stop = net::from_seconds(8.0);
  net::PortScanSource scan(*h1, scan_cfg, 7000, 7030,
                           100 * net::kMillisecond);
  scan.start();

  std::printf("listening... (elephant flow from t=0, scan from t=4)\n");
  net.loop().schedule_at(net::from_seconds(8.5),
                         [&] { controller.stop(); });
  net.loop().run();

  std::printf("\nalerts:\n");
  std::printf("  heavy-hitter alerts : %zu (elephant bin %zu)\n",
              hh_detector.alerts().size(),
              hh_reporter.bin_for(elephant));
  std::printf("  port-scan alerts    : %zu\n", ps_detector.alerts().size());
  std::printf("  superspreader alerts: %zu\n", ss_detector.alerts().size());
  std::printf("  throttle flow mod   : %s (journal record %llu)\n",
              hh_flow_mod != 0 ? "installed" : "missing",
              static_cast<unsigned long long>(hh_flow_mod));

  // --- Scoreboard: emitted vs detected, from the journal -------------
  // export_to() feeds the registry before the snapshot so the counts and
  // latency histograms ride the standard exporters too.
  const obs::Scoreboard board = obs::Scoreboard::build(journal);
  board.export_to(obs::Registry::global());
  const std::string mic_names[] = {std::string("s1-mic")};
  std::printf("\nscoreboard (ground truth vs heard, per watch):\n%s",
              board.render(mic_names).c_str());

  // --- Health panel: the SLO engine's view of the acoustic channel ----
  health.poll();
  std::printf("\n%s", health.render().c_str());

  // --- Latency attribution: where did the milliseconds go? ------------
  // The profiler replays the journal's cause chains and attributes each
  // hop's sim-time delta to a pipeline stage; the waterfall below is the
  // heavy-hitter FlowMod decomposed hop by hop.
  obs::LatencyProfiler profiler(journal);
  profiler.profile(obs::JournalKind::kFlowMod);
  std::printf("\nlatency attribution (stage histograms, %zu action(s)):\n%s",
              profiler.actions_profiled(), profiler.render().c_str());
  if (hh_flow_mod != 0) {
    std::printf("\nwaterfall: heavy-hitter flow mod #%llu\n%s",
                static_cast<unsigned long long>(hh_flow_mod),
                profiler.breakdown(hh_flow_mod).render().c_str());
  }

  // --- Timeline panel: registry counters over sim time ----------------
  std::printf("\ntimeline sparklines (%zu rows, %llu dropped):\n%s",
              timeline.size(),
              static_cast<unsigned long long>(timeline.dropped()),
              timeline.render_sparklines().c_str());

  // --- Dashboard: rendered from the metrics registry -----------------
  const auto snap = obs::Registry::global().snapshot();
  std::printf("\ndashboard (from the obs registry):\n");
  render_section(snap, "event loop", "net/loop/");
  render_section(snap, "switch s1", "net/switch/s1/");
  render_section(snap, "MDN controller", "mdn/controller/");
  render_section(snap, "DSP", "dsp/");
  // The dsp/simd/dispatch gauge above is the Isa enum; spell it out.
  std::printf("    %-44s %12s\n", "dsp/simd/dispatch (isa)",
              dsp::simd::isa_name(dsp::simd::active_isa()));
  render_section(snap, "music protocol", "mp/");
  render_section(snap, "health", "health/");

  // --- Exports -------------------------------------------------------
  // The .prom file carries the registry metrics plus the scoreboard's
  // labeled per-(mic, watch) series.
  if (obs::write_file("telemetry_dashboard.prom",
                      obs::to_prometheus(snap) +
                          board.to_prometheus(mic_names) +
                          health.to_prometheus() +
                          profiler.to_prometheus() +
                          timeline.to_prometheus())) {
    std::printf("\nwrote telemetry_dashboard.prom\n");
  }
  if (obs::write_file("telemetry_dashboard.timeline.jsonl",
                      timeline.to_timeline_jsonl())) {
    std::printf("wrote telemetry_dashboard.timeline.jsonl "
                "(%zu rows, %zu tracks)\n",
                timeline.size(), timeline.track_count());
  }
  if (obs::write_file("telemetry_dashboard.waterfall.trace.json",
                      obs::to_chrome_trace_waterfall(profiler))) {
    std::printf("wrote telemetry_dashboard.waterfall.trace.json "
                "(per-stage spans; load in chrome://tracing)\n");
  }
  if (obs::write_file("telemetry_dashboard.health.jsonl",
                      health.to_health_jsonl())) {
    std::printf("wrote telemetry_dashboard.health.jsonl "
                "(%zu alert(s))\n", health.alerts().size());
  }
  if (obs::write_file("telemetry_dashboard.metrics.jsonl",
                      obs::to_jsonl(snap))) {
    std::printf("wrote telemetry_dashboard.metrics.jsonl\n");
  }
  if (obs::write_file("telemetry_dashboard.trace.json",
                      obs::to_chrome_trace(net.loop().tracer(), journal))) {
    std::printf("wrote telemetry_dashboard.trace.json "
                "(journal flow arrows overlaid; load in chrome://tracing "
                "or ui.perfetto.dev)\n");
  }
  if (obs::write_file("telemetry_dashboard.journal.jsonl",
                      obs::to_journal_jsonl(journal))) {
    std::printf("wrote telemetry_dashboard.journal.jsonl "
                "(canonical flight-recorder export, %zu records)\n",
                journal.size());
  }

  // --- explain [n]: causal chains of the last n FlowMods -------------
  if (explain_n > 0) {
    const auto mods = journal.recent_of(obs::JournalKind::kFlowMod,
                                        explain_n);
    std::printf("\nexplain: last %zu flow mod(s), oldest first\n",
                mods.size());
    if (mods.empty()) std::printf("  (no flow mods in the journal)\n");
    for (const obs::CauseId id : mods) {
      std::printf("-- flow mod #%llu --\n%s",
                  static_cast<unsigned long long>(id),
                  obs::explain_text(journal, id).c_str());
    }
  }

  // --- Workload panel: the fleet traffic engine at a glance -----------
  // A second, fleet-scale experiment: TrafficGen (Zipf + churn + one
  // scanner) drives two acoustic rooms of switches, and the mic-scoped
  // scoreboard summarises per-room precision/recall.  The exports above
  // are already written, so this panel's counters stay out of them.
  {
    journal.clear();
    net::EventLoop fleet_loop;
    core::FleetConfig fcfg;
    fcfg.rooms = 2;
    fcfg.switches_per_room = 3;
    fcfg.emitter_min_gap = 50 * net::kMillisecond;
    core::Fleet fleet(fleet_loop, fcfg);

    net::TrafficGenConfig tcfg;
    tcfg.population.total_flows = 4096;
    tcfg.population.zipf_skew = 1.26;
    tcfg.rate_pps = 4000.0;
    tcfg.churn_fpm = 1200.0;
    tcfg.stop = net::from_seconds(2.0);
    tcfg.seed = 42;
    tcfg.scan_count = 1;
    tcfg.scan_pps = 400.0;
    net::TrafficGen gen(fleet_loop, tcfg);
    for (std::size_t s = 0; s < fleet.switch_count(); ++s) {
      gen.add_target(fleet.switch_at(s));
    }
    fleet.start();
    gen.start();
    fleet.stop_at(net::from_seconds(2.15));
    fleet_loop.run();

    std::printf("\nworkload panel (fleet: %zu rooms x %zu switches, "
                "%zu flows, zipf %.2f, churn %.0f fpm):\n",
                fleet.room_count(), fcfg.switches_per_room,
                tcfg.population.total_flows, tcfg.population.zipf_skew,
                tcfg.churn_fpm);
    render_section(obs::Registry::global().snapshot(), "workload engine",
                   "net/trafficgen/");

    obs::ScoreboardConfig scfg;
    scfg.watch_hz = fleet.watch_hz();
    scfg.tolerance_hz = 10.0;
    scfg.mics = fleet.room_count();
    const auto fleet_board = obs::Scoreboard::build(journal, scfg);
    std::printf("\n  [fleet scoreboard]\n");
    for (std::size_t r = 0; r < fleet.room_count(); ++r) {
      const auto t = fleet_board.totals(r);
      std::printf("    room %zu mic: recall %.3f  precision %.3f  "
                  "(%llu/%llu tones heard)\n",
                  r, t.recall(), t.precision(),
                  static_cast<unsigned long long>(t.detected),
                  static_cast<unsigned long long>(t.emitted));
    }
    const auto g = fleet_board.grand_totals();
    std::printf("    fleet:       recall %.3f  precision %.3f  "
                "hh alerts %llu  ps alerts %llu\n",
                g.recall(), g.precision(),
                static_cast<unsigned long long>(fleet.hh_alert_count()),
                static_cast<unsigned long long>(fleet.ps_alert_count()));
  }

  const bool ok = !hh_detector.alerts().empty() &&
                  !ps_detector.alerts().empty() && hh_flow_mod != 0 &&
                  counter_value(snap, "mp/bridge/tones_played") > 0 &&
                  counter_value(snap, "mdn/controller/blocks") > 0;
  std::printf("%s\n", ok ? "dashboard caught both events out-of-band"
                         : "UNEXPECTED: something was missed");
  return ok ? 0 : 1;
}
