// Port-knocking demo (§4): authentication by melody.
//
// A switch guards TCP :8080 with a drop rule.  Three knock ports map to
// three tones; when the MDN controller hears the tones in the right
// order it sends the Flow-MOD that opens the port.  The demo runs the
// wrong order first (stays closed), then the right order, and saves the
// knock melody to knocks.wav so you can listen to the authentication.
//
// Run: ./port_knocking_demo [output.wav]
#include <cstdio>

#include "audio/audio.h"
#include "mdn/mdn.h"
#include "mp/mp.h"
#include "net/net.h"
#include "sdn/sdn.h"

int main(int argc, char** argv) {
  using namespace mdn;
  constexpr double kSampleRate = 48000.0;
  const char* wav_path = argc > 1 ? argv[1] : "knocks.wav";

  net::Network net;
  audio::AcousticChannel channel(kSampleRate);
  net::Host* client = nullptr;
  net::Host* server = nullptr;
  auto switches = net::build_chain(net, 1, &client, &server);
  net::Switch& sw = *switches.front();

  sdn::Controller null_controller;
  sdn::ControlChannel sdn_channel(net.loop(), net::kMillisecond);
  const auto dpid = sdn_channel.attach(sw, null_controller);

  core::FrequencyPlan plan;
  const auto dev = plan.add_device("door-switch", 3);
  const auto spk = channel.add_source("door-speaker", 0.5);
  mp::PiSpeakerBridge bridge(net.loop(), channel, spk);
  mp::MpEmitter emitter(net.loop(), bridge, 0);

  core::MdnController::Config ccfg;
  ccfg.detector.sample_rate = kSampleRate;
  ccfg.keep_recording = true;
  core::MdnController controller(net.loop(), channel, ccfg);

  core::PortKnockingConfig cfg;
  cfg.knock_ports = {7001, 7002, 7003};
  cfg.protected_port = 8080;
  cfg.open_out_port = 1;  // chain builder: port 1 faces the server
  cfg.tone_duration_s = 0.15;
  core::PortKnockingApp app(sw, emitter, controller, sdn_channel, dpid,
                            plan, dev, cfg);
  app.on_open([&] {
    std::printf("[%6.2f s] >>> sequence accepted, :8080 is OPEN <<<\n",
                net::to_seconds(net.loop().now()));
  });
  controller.start();

  const auto knock = [&](std::uint16_t port, double at_s) {
    net.loop().schedule_at(net::from_seconds(at_s), [&, port] {
      std::printf("[%6.2f s] client knocks on port %u\n", at_s, port);
      net::Packet p;
      p.flow = {client->ip(), server->ip(), 40001, port,
                net::IpProto::kTcp};
      p.size_bytes = 64;
      client->send(p);
    });
  };
  const auto probe = [&](double at_s) {
    net.loop().schedule_at(net::from_seconds(at_s), [&, at_s] {
      net::Packet p;
      p.flow = {client->ip(), server->ip(), 40000, 8080,
                net::IpProto::kTcp};
      client->send(p);
      net.loop().schedule_in(50 * net::kMillisecond, [&, at_s] {
        std::printf("[%6.2f s] probe :8080 -> %s\n", at_s,
                    app.opened() ? "delivered" : "dropped (closed)");
      });
    });
  };

  std::printf("--- attempt 1: wrong order (7001, 7003, 7002) ---\n");
  probe(0.2);
  knock(7001, 0.6);
  knock(7003, 1.0);
  knock(7002, 1.4);
  probe(1.9);

  net.loop().schedule_at(net::from_seconds(2.4), [] {
    std::printf("--- attempt 2: correct order (7001, 7002, 7003) ---\n");
  });
  knock(7001, 2.6);
  knock(7002, 3.0);
  knock(7003, 3.4);
  probe(3.9);

  net.loop().schedule_at(net::from_seconds(4.5),
                         [&] { controller.stop(); });
  net.loop().run();

  audio::write_wav(wav_path, controller.recording());
  std::printf("\nknock melody saved to %s (%.1f s of audio)\n", wav_path,
              controller.recording().duration_s());
  std::printf("knocks heard: %llu, port open: %s\n",
              static_cast<unsigned long long>(app.knocks_heard()),
              app.opened() ? "yes" : "no");
  return app.opened() ? 0 : 1;
}
