// frequency_plan_tool: generate, inspect and validate the frequency-plan
// documents that switch emitters and listening controllers share (§3:
// "the listening application knows the frequency mappings").
//
//   ./frequency_plan_tool gen <n_switches> <symbols_each> [spacing_hz]
//       prints a plan document for a deployment
//   ./frequency_plan_tool check <file>
//       parses a plan document and prints the full frequency map
//   ./frequency_plan_tool lookup <file> <frequency_hz>
//       which (device, symbol) owns a heard frequency?
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "mdn/frequency_plan.h"

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "error: cannot open %s\n", path.c_str());
    std::exit(1);
  }
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

int cmd_gen(int argc, char** argv) {
  if (argc < 4) return 2;
  const int switches = std::atoi(argv[2]);
  const int symbols = std::atoi(argv[3]);
  const double spacing = argc > 4 ? std::atof(argv[4]) : 20.0;
  mdn::core::FrequencyPlan plan(
      {.base_hz = 500.0, .spacing_hz = spacing, .max_hz = 18000.0});
  for (int i = 0; i < switches; ++i) {
    plan.add_device("switch-" + std::to_string(i + 1),
                    static_cast<std::size_t>(symbols));
  }
  std::fputs(plan.to_text().c_str(), stdout);
  std::fprintf(stderr, "(capacity left: %zu frequencies)\n",
               plan.remaining_capacity());
  return 0;
}

int cmd_check(int argc, char** argv) {
  if (argc < 3) return 2;
  const auto plan =
      mdn::core::FrequencyPlan::from_text(read_file(argv[2]));
  std::printf("plan ok: %zu devices, band %.0f..%.0f Hz step %.0f Hz, "
              "%zu slots free\n",
              plan.device_count(), plan.config().base_hz,
              plan.config().max_hz, plan.config().spacing_hz,
              plan.remaining_capacity());
  for (mdn::core::DeviceId d = 0; d < plan.device_count(); ++d) {
    std::printf("  %-16s", plan.device_name(d).c_str());
    for (std::size_t s = 0; s < plan.symbol_count(d); ++s) {
      std::printf(" %.0f", plan.frequency(d, s));
    }
    std::printf("\n");
  }
  return 0;
}

int cmd_lookup(int argc, char** argv) {
  if (argc < 4) return 2;
  const auto plan =
      mdn::core::FrequencyPlan::from_text(read_file(argv[2]));
  const double freq = std::atof(argv[3]);
  const auto hit = plan.identify(freq);
  if (!hit) {
    std::printf("%.1f Hz: not assigned to any device\n", freq);
    return 1;
  }
  std::printf("%.1f Hz -> device \"%s\" symbol %zu (slot centre %.1f Hz)\n",
              freq, plan.device_name(hit->device).c_str(), hit->symbol,
              hit->frequency_hz);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string cmd = argc > 1 ? argv[1] : "";
  int rc = 2;
  try {
    if (cmd == "gen") rc = cmd_gen(argc, argv);
    else if (cmd == "check") rc = cmd_check(argc, argv);
    else if (cmd == "lookup") rc = cmd_lookup(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  if (rc == 2) {
    std::fprintf(stderr,
                 "usage: %s gen <n_switches> <symbols_each> [spacing_hz]\n"
                 "       %s check <file>\n"
                 "       %s lookup <file> <frequency_hz>\n",
                 argv[0], argv[0], argv[0]);
  }
  return rc;
}
