// Quickstart: the smallest complete Music-Defined Networking pipeline.
//
// One switch sits between two hosts.  Every packet it forwards keys a
// Music Protocol message to its Raspberry-Pi speaker bridge, which plays
// the switch's tone into the simulated machine-room air.  An MDN
// controller listens with a microphone, FFTs each 50 ms block, and
// reports every onset of the switch's frequency — out-of-band telemetry
// with zero management packets.
//
// Run: ./quickstart
#include <cstdio>

#include "audio/audio.h"
#include "mdn/mdn.h"
#include "mp/mp.h"
#include "net/net.h"

int main() {
  constexpr double kSampleRate = 48000.0;

  // --- The air between devices, with mild office background noise.
  mdn::audio::AcousticChannel channel(kSampleRate);
  channel.add_ambient(
      mdn::audio::generate_office(2.0, kSampleRate,
                                  mdn::audio::spl_to_amplitude(45.0), 1));

  // --- A tiny network: h_src -- s1 -- h_dst.
  mdn::net::Network net;
  mdn::net::Host* src = nullptr;
  mdn::net::Host* dst = nullptr;
  auto switches = mdn::net::build_chain(net, 1, &src, &dst);
  mdn::net::Switch& s1 = *switches.front();

  // --- Frequency plan: s1 owns one 740 Hz-ish symbol.
  mdn::core::FrequencyPlan plan({.base_hz = 740.0, .spacing_hz = 20.0});
  const auto dev = plan.add_device("s1", 1);
  const double tone_hz = plan.frequency(dev, 0);

  // --- Speaker hardware: the Pi bridge 0.5 m from the microphone.
  const auto speaker = channel.add_source("s1-speaker", 0.5);
  mdn::mp::PiSpeakerBridge bridge(net.loop(), channel, speaker);
  mdn::mp::MpEmitter emitter(net.loop(), bridge,
                             /*min_gap=*/100 * mdn::net::kMillisecond);

  // --- Switch-side hook: sing on every forwarded packet.
  s1.add_packet_hook([&](const mdn::net::Packet&, std::size_t) {
    emitter.emit(tone_hz, /*duration_s=*/0.06, /*intensity_db_spl=*/70.0);
  });

  // --- The listening application.
  mdn::core::MdnController::Config listener_cfg;
  listener_cfg.detector.sample_rate = kSampleRate;
  mdn::core::MdnController controller(net.loop(), channel, listener_cfg);
  int heard = 0;
  controller.watch(tone_hz, [&](const mdn::core::ToneEvent& ev) {
    ++heard;
    std::printf("[%6.3f s] heard s1 sing at %.0f Hz (amplitude %.4f)\n",
                ev.time_s, ev.frequency_hz, ev.amplitude);
  });
  controller.start();

  // --- Traffic: five pings, 300 ms apart.
  mdn::net::SourceConfig cfg;
  cfg.flow = {src->ip(), dst->ip(), 40000, 80, mdn::net::IpProto::kTcp};
  cfg.start = 100 * mdn::net::kMillisecond;
  cfg.stop = mdn::net::from_seconds(1.6);
  mdn::net::CbrSource ping(*src, cfg, /*packets_per_second=*/3.3);
  ping.start();

  net.loop().schedule_at(mdn::net::from_seconds(2.0),
                         [&] { controller.stop(); });
  net.loop().run();

  std::printf("\npackets forwarded by s1 : %llu\n",
              static_cast<unsigned long long>(s1.forwarded()));
  std::printf("MP messages played      : %llu\n",
              static_cast<unsigned long long>(bridge.played()));
  std::printf("tone onsets heard       : %d\n", heard);
  std::printf("bytes received by h_dst : %llu\n",
              static_cast<unsigned long long>(dst->rx_bytes()));
  return heard > 0 ? 0 : 1;
}
