// Datacenter fan watch (§7): passive failure detection by listening.
//
// Three servers hum in a noisy machine room.  The watcher calibrates a
// healthy-fan fingerprint per server, then server 2's fan dies mid-run.
// Scanning the recordings segment by segment, the watcher raises an
// alert for (only) the dead fan, despite ~85 dB of room noise.
//
// Run: ./datacenter_fan_watch
#include <cstdio>
#include <vector>

#include "audio/audio.h"
#include "mdn/fan_failure.h"

int main() {
  using namespace mdn;
  constexpr double kSampleRate = 48000.0;
  constexpr double kCalib = 4.0;   // calibration recording seconds
  constexpr double kWatch = 3.0;   // monitoring recording seconds

  // The room: 20 other servers' fans plus reverberant wash (~85 dB).
  const audio::Waveform room = audio::generate_machine_room(
      20, kCalib + kWatch, kSampleRate, audio::spl_to_amplitude(85.0), 7);

  // Three monitored servers with distinct fan signatures.
  struct Server {
    const char* name;
    audio::FanSpec fan;
    bool dies;
  };
  std::vector<Server> servers{
      {"rack1/srv1", {.rpm = 4200, .blades = 7, .seed = 11}, false},
      {"rack1/srv2", {.rpm = 4800, .blades = 5, .seed = 12}, true},
      {"rack1/srv3", {.rpm = 3600, .blades = 9, .seed = 13}, false},
  };

  std::printf("calibrating healthy-fan fingerprints (%.0f s each)...\n",
              kCalib);
  std::vector<core::FanFailureDetector> detectors;
  for (const auto& s : servers) {
    audio::Waveform calib(kSampleRate,
                          static_cast<std::size_t>(kCalib * kSampleRate));
    calib.mix_at(room.slice(0, calib.size()), 0);
    calib.mix_at(audio::generate_fan(s.fan, kCalib, kSampleRate), 0);

    detectors.emplace_back(kSampleRate);
    detectors.back().calibrate(calib);
    std::printf("  %s  blade-pass %.0f Hz  threshold %.2f\n", s.name,
                audio::blade_pass_hz(s.fan), detectors.back().threshold());
  }

  std::printf("\nmonitoring (server rack1/srv2's fan has just died)...\n");
  std::printf("%-12s %10s %12s %12s  %s\n", "server", "segment", "diff",
              "threshold", "verdict");
  int alerts = 0;
  for (std::size_t i = 0; i < servers.size(); ++i) {
    // The monitoring recording: room + this server's fan unless dead.
    audio::Waveform watch(kSampleRate,
                          static_cast<std::size_t>(kWatch * kSampleRate));
    watch.mix_at(room.slice(static_cast<std::size_t>(kCalib * kSampleRate),
                            watch.size()),
                 0);
    if (!servers[i].dies) {
      auto spec = servers[i].fan;
      spec.seed += 100;  // fresh noise realisation
      watch.mix_at(audio::generate_fan(spec, kWatch, kSampleRate), 0);
    }

    const auto series = detectors[i].difference_series(watch);
    bool alerted = false;
    for (std::size_t seg = 0; seg < series.size(); ++seg) {
      const bool over = series[seg] > detectors[i].threshold();
      if (seg < 3 || over) {  // print the head and any alarms
        std::printf("%-12s %10zu %12.2f %12.2f  %s\n", servers[i].name,
                    seg, series[seg], detectors[i].threshold(),
                    over ? "!! FAN FAILURE" : "ok");
      }
      alerted |= over;
    }
    if (alerted) {
      ++alerts;
      std::printf(">>> out-of-band alert: %s fan is DOWN\n",
                  servers[i].name);
    }
  }

  const bool correct = alerts == 1;
  std::printf("\n%d alert(s) raised — %s\n", alerts,
              correct ? "exactly the dead fan, no false alarms"
                      : "UNEXPECTED");
  return correct ? 0 : 1;
}
