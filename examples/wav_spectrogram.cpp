// wav_spectrogram: ASCII mel spectrogram viewer for the library's WAV
// artifacts (knocks.wav, pager.wav, or any mono 16-bit PCM file).
// Renders time left-to-right, mel bands bottom-to-top — the same view as
// the paper's figures, in a terminal.
//
// Run: ./wav_spectrogram <file.wav> [bands] [fmax_hz]
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "audio/audio.h"
#include "dsp/dsp.h"

int main(int argc, char** argv) {
  using namespace mdn;
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <file.wav> [bands] [fmax_hz]\n",
                 argv[0]);
    return 2;
  }
  const std::string path = argv[1];
  const std::size_t bands =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 24;
  const double fmax = argc > 3 ? std::atof(argv[3]) : 4000.0;

  audio::Waveform wav;
  try {
    wav = audio::read_wav(path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::printf("%s: %.2f s at %.0f Hz, peak %.3f, rms %.4f\n", path.c_str(),
              wav.duration_s(), wav.sample_rate(), wav.peak(), wav.rms());
  if (wav.empty()) return 0;

  // Pick a hop so the picture is ~100 columns wide.
  const std::size_t target_cols = 100;
  const std::size_t hop =
      std::max<std::size_t>(256, wav.size() / target_cols);
  const std::size_t fft = dsp::next_power_of_two(std::min<std::size_t>(
      4096, std::max<std::size_t>(512, hop)));
  const auto lin = dsp::stft(wav.samples(), wav.sample_rate(),
                             {.fft_size = fft, .hop = hop});
  if (lin.frames() == 0) {
    std::printf("(file too short for a spectrogram)\n");
    return 0;
  }
  const auto mel = dsp::mel_spectrogram(lin, bands, 80.0, fmax);

  // Log-compress and normalise for display.
  double max_db = -1e9;
  std::vector<std::vector<double>> db(mel.frames.size(),
                                      std::vector<double>(bands));
  for (std::size_t f = 0; f < mel.frames.size(); ++f) {
    for (std::size_t b = 0; b < bands; ++b) {
      db[f][b] = dsp::amplitude_to_db(mel.frames[f][b], 1.0, -90.0);
      max_db = std::max(max_db, db[f][b]);
    }
  }

  static const char kShades[] = " .:-=+*#%@";
  constexpr double kRange = 50.0;  // dB of dynamic range displayed
  for (std::size_t b = bands; b-- > 0;) {
    std::printf("%7.0fHz |", mel.band_centers_hz[b]);
    for (std::size_t f = 0; f < db.size(); ++f) {
      const double rel = (db[f][b] - (max_db - kRange)) / kRange;
      const int idx = std::clamp(
          static_cast<int>(rel * (sizeof kShades - 2)), 0,
          static_cast<int>(sizeof kShades) - 2);
      std::putchar(kShades[idx]);
    }
    std::printf("|\n");
  }
  std::printf("%9s +", "");
  for (std::size_t f = 0; f < db.size(); ++f) std::putchar('-');
  std::printf("+\n%9s  0%*s%.1fs\n", "",
              static_cast<int>(db.size()) - 5, "",
              wav.duration_s());
  return 0;
}
